bench/env_report.ml: Domain Printf Scanf String Sys
