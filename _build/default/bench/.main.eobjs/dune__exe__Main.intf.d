bench/main.mli:
