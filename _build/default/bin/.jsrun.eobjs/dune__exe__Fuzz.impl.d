bin/fuzz.ml: Arg Cmd Cmdliner Jitbull_core Jitbull_fuzz Jitbull_jit Jitbull_passes List Printf Sys Term
