bin/fuzz.mli:
