bin/jitbull_db.ml: Arg Cmd Cmdliner Jitbull_core Jitbull_passes Jitbull_vdc List Printf String Sys Term
