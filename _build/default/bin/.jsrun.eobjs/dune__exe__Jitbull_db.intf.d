bin/jitbull_db.mli:
