bin/jsrun.ml: Arg Cmd Cmdliner Jitbull_core Jitbull_frontend Jitbull_interp Jitbull_jit Jitbull_passes Jitbull_runtime List Logs Printf String Term
