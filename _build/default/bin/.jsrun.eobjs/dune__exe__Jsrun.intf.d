bin/jsrun.mli:
