bin/variants.ml: Arg Cmd Cmdliner Jitbull_vdc List Printf String Term
