bin/variants.mli:
