(* jitbull-fuzz — differential fuzzing and the §IV-A fuzzer-to-database
   pipeline.

     jitbull-fuzz --count 100                        benign differential run
     jitbull-fuzz --aggressive --vuln CVE-2019-17026 --count 50
     jitbull-fuzz --aggressive --vuln ... --auto-db out.db
                                                     harvest findings' DNA *)

open Cmdliner
module F = Jitbull_fuzz
module VC = Jitbull_passes.Vuln_config
module Engine = Jitbull_jit.Engine
module Db = Jitbull_core.Db

let run count seed0 aggressive vuln_names auto_db verbose =
  let vulns =
    VC.make
      (List.map
         (fun name ->
           match VC.cve_of_name name with
           | Some cve -> cve
           | None -> failwith ("unknown CVE " ^ name))
         vuln_names)
  in
  let config =
    { Engine.default_config with Engine.baseline_threshold = 2; ion_threshold = 4; vulns }
  in
  let profile = if aggressive then `Aggressive else `Benign in
  let seeds = List.init count (fun i -> seed0 + i) in
  let report = F.Harness.campaign ~profile ~seeds ~config () in
  Printf.printf "programs: %d  agree: %d  signals: %d\n" report.F.Harness.total
    report.F.Harness.agreements
    (List.length report.F.Harness.signals);
  List.iter
    (fun (f : F.Harness.finding) ->
      Printf.printf "  seed %-6d %s\n" f.F.Harness.seed
        (F.Oracle.verdict_summary f.F.Harness.verdict);
      if verbose then print_string f.F.Harness.source)
    report.F.Harness.signals;
  (match auto_db with
  | Some path when report.F.Harness.signals <> [] ->
    let db = if Sys.file_exists path then Db.load path else Db.create () in
    let n = F.Harness.auto_harvest ~vulns ~db report.F.Harness.signals in
    Db.save db path;
    Printf.printf "auto-harvested %d DNA entries into %s\n" n path
  | Some path -> Printf.printf "no signals; %s unchanged\n" path
  | None -> ());
  (* benign campaigns are expected to be all-green: nonzero exit otherwise *)
  if (not aggressive) && report.F.Harness.signals <> [] then `Error (false, "miscompilation signals found")
  else `Ok ()

let count = Arg.(value & opt int 50 & info [ "count" ] ~docv:"N" ~doc:"Programs to generate.")
let seed0 = Arg.(value & opt int 0 & info [ "seed" ] ~docv:"N" ~doc:"First seed.")
let aggressive =
  Arg.(value & flag & info [ "aggressive" ] ~doc:"Generate exploit-shaped programs.")
let vuln_names =
  Arg.(value & opt_all string [] & info [ "vuln" ] ~docv:"CVE" ~doc:"Activate pass bugs.")
let auto_db =
  Arg.(value & opt (some string) None & info [ "auto-db" ] ~docv:"FILE"
       ~doc:"Harvest DNA of every finding into this database (paper §IV-A).")
let verbose = Arg.(value & flag & info [ "verbose" ] ~doc:"Print finding sources.")

let cmd =
  Cmd.v
    (Cmd.info "jitbull-fuzz" ~doc:"differential fuzzing with auto-harvest into JITBULL")
    Term.(ret (const run $ count $ seed0 $ aggressive $ vuln_names $ auto_db $ verbose))

let () = exit (Cmd.eval cmd)
