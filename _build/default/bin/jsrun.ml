(* jsrun — run a mini-JS script on the tiered engine.

     jsrun script.js                    full JIT
     jsrun --no-jit script.js           interpreter tier only (paper's NoJIT)
     jsrun --interp script.js           reference tree-walking interpreter
     jsrun --vuln CVE-2019-17026 ...    activate an injected pass bug
     jsrun --db jitbull.db ...          enable JITBULL with this database
     jsrun --stats ...                  print engine statistics afterwards *)

open Cmdliner
module Engine = Jitbull_jit.Engine
module Interp = Jitbull_interp.Interp
module Realm = Jitbull_runtime.Realm
module Errors = Jitbull_runtime.Errors
module VC = Jitbull_passes.Vuln_config
module Db = Jitbull_core.Db
module Jitbull = Jitbull_core.Jitbull

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let setup_logging trace =
  if trace then begin
    Logs.set_reporter (Logs.format_reporter ());
    Logs.set_level (Some Logs.Debug)
  end

let run file no_jit use_interp vuln_names db_path stats ion_threshold seed trace =
  setup_logging trace;
  let source = read_file file in
  let vulns =
    List.map
      (fun name ->
        match VC.cve_of_name name with
        | Some cve -> cve
        | None -> failwith (Printf.sprintf "unknown CVE %s (known: %s)" name
                              (String.concat ", " (List.map VC.cve_name VC.all))))
      vuln_names
  in
  let vulns = VC.make vulns in
  let realm = Realm.create ~seed ~echo:true () in
  try
    if use_interp then begin
      ignore (Interp.run_source ~realm source);
      `Ok ()
    end
    else begin
      let config =
        match db_path with
        | Some path ->
          let db = Db.load path in
          let c = Jitbull.config ~vulns db in
          { c with Engine.jit_enabled = not no_jit; ion_threshold }
        | None ->
          { Engine.default_config with Engine.vulns; jit_enabled = not no_jit; ion_threshold }
      in
      let _, engine = Engine.run_source ~realm config source in
      if stats then begin
        let s = Engine.stats engine in
        Printf.eprintf
          "-- engine statistics --\n\
           baseline compiles: %d\nion compiles:      %d\n\
           Nr_JIT: %d  Nr_DisJIT: %d  Nr_NoJIT: %d\n\
           bailouts: %d  deopts: %d\n"
          s.Engine.baseline_compiles s.Engine.ion_compiles s.Engine.nr_jit s.Engine.nr_disjit
          s.Engine.nr_nojit s.Engine.bailouts s.Engine.deopts
      end;
      `Ok ()
    end
  with
  | Errors.Shellcode_executed msg ->
    Printf.eprintf "SHELLCODE EXECUTED: %s\n" msg;
    `Error (false, "script achieved simulated code execution")
  | Errors.Crash msg ->
    Printf.eprintf "CRASH: %s\n" msg;
    `Error (false, "script crashed the simulated runtime")
  | Errors.Type_error msg -> `Error (false, "type error: " ^ msg)
  | Jitbull_frontend.Parser.Parse_error (msg, pos) ->
    `Error (false, Printf.sprintf "parse error at %d:%d: %s" pos.Jitbull_frontend.Token.line
              pos.Jitbull_frontend.Token.column msg)
  | Jitbull_frontend.Lexer.Lex_error (msg, pos) ->
    `Error (false, Printf.sprintf "lex error at %d:%d: %s" pos.Jitbull_frontend.Token.line
              pos.Jitbull_frontend.Token.column msg)

let file =
  Arg.(required & pos 0 (some non_dir_file) None & info [] ~docv:"SCRIPT" ~doc:"Script to run.")

let no_jit = Arg.(value & flag & info [ "no-jit" ] ~doc:"Disable the JIT (interpreter tier only).")

let use_interp =
  Arg.(value & flag & info [ "interp" ] ~doc:"Use the reference tree-walking interpreter.")

let vuln_names =
  Arg.(value & opt_all string [] & info [ "vuln" ] ~docv:"CVE"
         ~doc:"Activate an injected pass bug (repeatable), e.g. CVE-2019-17026.")

let db_path =
  Arg.(value & opt (some non_dir_file) None & info [ "db" ] ~docv:"FILE"
         ~doc:"JITBULL DNA database file (enables the go/no-go policy).")

let stats = Arg.(value & flag & info [ "stats" ] ~doc:"Print engine statistics to stderr.")

let ion_threshold =
  Arg.(value & opt int Engine.default_config.Engine.ion_threshold
       & info [ "ion-threshold" ] ~docv:"N" ~doc:"Invocations before Ion compilation.")

let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Math.random seed.")

let trace =
  Arg.(value & flag & info [ "trace" ] ~doc:"Log tier-up, bailout and JITBULL policy events.")

let cmd =
  let doc = "run a mini-JS script on the JITBULL engine" in
  Cmd.v
    (Cmd.info "jsrun" ~doc)
    Term.(ret (const run $ file $ no_jit $ use_interp $ vuln_names $ db_path $ stats
               $ ion_threshold $ seed $ trace))

let () = exit (Cmd.eval cmd)
