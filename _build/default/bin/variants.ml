(* jitbull-variants — apply the paper's variant transforms to a script.

     jitbull-variants rename exploit.js > variant.js
     jitbull-variants minify exploit.js
     jitbull-variants mix --seed 9 exploit.js
     jitbull-variants split exploit.js *)

open Cmdliner
module Variants = Jitbull_vdc.Variants

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let run kind_name seed script =
  let kind =
    List.find_opt
      (fun k -> String.equal (Variants.kind_name k) kind_name)
      Variants.all_kinds
  in
  match kind with
  | None ->
    `Error
      ( false,
        Printf.sprintf "unknown variant %S (choose: %s)" kind_name
          (String.concat ", " (List.map Variants.kind_name Variants.all_kinds)) )
  | Some kind ->
    print_string (Variants.apply ~seed kind (read_file script));
    `Ok ()

let kind_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"KIND"
       ~doc:"Transform: rename, minify, mix or split.")

let seed_arg =
  Arg.(value & opt int 7 & info [ "seed" ] ~docv:"N" ~doc:"Shuffle seed for mix.")

let script_arg =
  Arg.(required & pos 1 (some non_dir_file) None & info [] ~docv:"SCRIPT" ~doc:"Input script.")

let cmd =
  Cmd.v
    (Cmd.info "jitbull-variants" ~doc:"generate exploit/script variants")
    Term.(ret (const run $ kind_arg $ seed_arg $ script_arg))

let () = exit (Cmd.eval cmd)
