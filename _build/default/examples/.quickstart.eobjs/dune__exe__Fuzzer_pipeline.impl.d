examples/fuzzer_pipeline.ml: Jitbull_core Jitbull_fuzz Jitbull_jit Jitbull_passes List Printf
