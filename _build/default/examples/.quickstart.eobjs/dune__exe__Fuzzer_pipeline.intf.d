examples/fuzzer_pipeline.mli:
