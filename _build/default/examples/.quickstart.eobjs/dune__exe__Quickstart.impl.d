examples/quickstart.ml: Jitbull_interp Jitbull_jit Printf String Unix
