examples/quickstart.mli:
