examples/variant_explorer.ml: Jitbull_core Jitbull_jit Jitbull_passes Jitbull_util Jitbull_vdc List Printf String
