examples/variant_explorer.mli:
