(* The paper's §IV-A automation: "VDCs do not need to originate from human
   experts; one way to use JITBULL is to feed the output of JIT fuzzers
   directly to its database. As soon as a crashing code example is
   detected, JITBULL will be able to automatically prevent similar exploit
   codes from running."

   This example runs an exploit-shape fuzzing campaign against an engine
   carrying two unpatched bugs, auto-harvests every finding's DNA, and
   shows that (a) the findings themselves and (b) *fresh* exploit inputs
   the fuzzer never saw are neutralized afterwards.

     dune exec examples/fuzzer_pipeline.exe *)

module F = Jitbull_fuzz
module VC = Jitbull_passes.Vuln_config
module Engine = Jitbull_jit.Engine
module Db = Jitbull_core.Db
module Jitbull = Jitbull_core.Jitbull

let () =
  let vulns = VC.make [ VC.CVE_2019_17026; VC.CVE_2019_9813 ] in
  let fast cfg = { cfg with Engine.baseline_threshold = 2; ion_threshold = 4 } in
  let vulnerable = fast { Engine.default_config with Engine.vulns } in

  print_endline "[1] fuzzing the unpatched engine (exploit-shaped generator):";
  let seeds = List.init 30 (fun i -> i) in
  let report = F.Harness.campaign ~profile:`Aggressive ~seeds ~config:vulnerable () in
  Printf.printf "    %d programs, %d exploit signals\n" report.F.Harness.total
    (List.length report.F.Harness.signals);
  List.iteri
    (fun i (f : F.Harness.finding) ->
      if i < 4 then
        Printf.printf "      seed %-3d %s\n" f.F.Harness.seed
          (F.Oracle.verdict_summary f.F.Harness.verdict))
    report.F.Harness.signals;

  print_endline "\n[2] auto-harvesting every finding's JIT DNA into the database:";
  let db = Db.create () in
  let n = F.Harness.auto_harvest ~vulns ~db report.F.Harness.signals in
  Printf.printf "    %d DNA entries from %d findings\n" n (List.length report.F.Harness.signals);

  print_endline "\n[3] re-running the findings under fuzz-fed JITBULL:";
  let protected_cfg = fast (Jitbull.config ~vulns db) in
  let blocked =
    List.for_all
      (fun (f : F.Harness.finding) ->
        not (F.Oracle.is_exploit_signal (F.Oracle.run ~config:protected_cfg f.F.Harness.source)))
      report.F.Harness.signals
  in
  Printf.printf "    all findings neutralized: %b\n" blocked;

  print_endline "\n[4] fresh exploit inputs the fuzzer never saw (new seeds):";
  let fresh_seeds = List.init 15 (fun i -> 1000 + i) in
  let unprotected = F.Harness.campaign ~profile:`Aggressive ~seeds:fresh_seeds ~config:vulnerable () in
  let still_protected =
    F.Harness.campaign ~profile:`Aggressive ~seeds:fresh_seeds ~config:protected_cfg ()
  in
  Printf.printf "    without JITBULL: %d/%d exploit;  with fuzz-fed JITBULL: %d/%d exploit\n"
    (List.length unprotected.F.Harness.signals)
    unprotected.F.Harness.total
    (List.length still_protected.F.Harness.signals)
    still_protected.F.Harness.total
