(* Quickstart: embed the JS engine, run a script through all three tiers,
   and inspect what the JIT did.

     dune exec examples/quickstart.exe *)

module Engine = Jitbull_jit.Engine
module Interp = Jitbull_interp.Interp

let script =
  {|
function mean(xs) {
  var total = 0;
  for (var i = 0; i < xs.length; i++) { total += xs[i]; }
  return total / xs.length;
}
var data = [];
for (var i = 0; i < 64; i++) { data.push(i * i % 37); }
var m = 0;
for (var round = 0; round < 100; round++) { m = mean(data); }
print("mean: " + m);
|}

let () =
  print_endline "== 1. reference interpreter ==";
  let outcome = Interp.run_source script in
  print_string outcome.Interp.output;

  print_endline "\n== 2. tiered engine (interpreter -> baseline -> Ion) ==";
  let out, engine = Engine.run_source Engine.default_config script in
  print_string out;
  let s = Engine.stats engine in
  Printf.printf
    "baseline compiles: %d\nion compiles:      %d\nbailouts:          %d\n"
    s.Engine.baseline_compiles s.Engine.ion_compiles s.Engine.bailouts;

  print_endline "\n== 3. the same script with the JIT disabled (the paper's NoJIT) ==";
  let t0 = Unix.gettimeofday () in
  let out_nojit, _ =
    Engine.run_source { Engine.default_config with Engine.jit_enabled = false } script
  in
  let t_nojit = Unix.gettimeofday () -. t0 in
  let t0 = Unix.gettimeofday () in
  let _ = Engine.run_source Engine.default_config script in
  let t_jit = Unix.gettimeofday () -. t0 in
  assert (String.equal out out_nojit);
  Printf.printf "JIT %.1f ms vs NoJIT %.1f ms (%.2fx)\n" (t_jit *. 1000.0)
    (t_nojit *. 1000.0) (t_nojit /. t_jit)
