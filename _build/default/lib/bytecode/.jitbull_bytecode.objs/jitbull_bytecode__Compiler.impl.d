lib/bytecode/compiler.ml: Array Format Hashtbl Jitbull_frontend Jitbull_runtime List Op Option
