lib/bytecode/compiler.mli: Jitbull_frontend Op
