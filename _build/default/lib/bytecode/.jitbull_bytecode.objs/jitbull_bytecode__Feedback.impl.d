lib/bytecode/feedback.ml: Array Op
