lib/bytecode/op.ml: Array Buffer Jitbull_frontend Jitbull_runtime Printf String
