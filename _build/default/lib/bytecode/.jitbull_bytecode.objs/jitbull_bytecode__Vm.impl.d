lib/bytecode/vm.ml: Array Feedback Hashtbl Jitbull_runtime List Op String
