lib/bytecode/vm.mli: Feedback Hashtbl Jitbull_runtime Op
