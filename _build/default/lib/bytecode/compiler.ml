module Ast = Jitbull_frontend.Ast
module Value = Jitbull_runtime.Value

exception Compile_error of string

let compile_error fmt = Format.kasprintf (fun s -> raise (Compile_error s)) fmt

(* Growable op buffer with jump back-patching. *)
type emitter = {
  mutable ops : Op.t array;
  mutable len : int;
}

let new_emitter () = { ops = Array.make 64 Op.Pop; len = 0 }

let emit em op =
  if em.len = Array.length em.ops then begin
    let bigger = Array.make (2 * em.len) Op.Pop in
    Array.blit em.ops 0 bigger 0 em.len;
    em.ops <- bigger
  end;
  em.ops.(em.len) <- op;
  em.len <- em.len + 1

let here em = em.len

(* Emit a jump with a dummy target; returns the site to patch. *)
let emit_jump em make =
  let site = em.len in
  emit em (make (-1));
  site

let patch em site target =
  em.ops.(site) <-
    (match em.ops.(site) with
    | Op.Jump _ -> Op.Jump target
    | Op.Jump_if_false _ -> Op.Jump_if_false target
    | Op.Jump_if_true _ -> Op.Jump_if_true target
    | op -> compile_error "patch on non-jump %s" (Op.to_string op))

type ctx = {
  em : emitter;
  locals : (string, int) Hashtbl.t;  (* empty at top level *)
  toplevel : bool;
  (* break/continue patch lists for the enclosing loop *)
  mutable breaks : int list list;     (* stack of lists of jump sites *)
  mutable continues : (int * int list) list;  (* (target, pending sites) *)
}

let local_index ctx name = if ctx.toplevel then None else Hashtbl.find_opt ctx.locals name

let rec compile_expr ctx (e : Ast.expr) =
  let em = ctx.em in
  match e with
  | Ast.Number f -> emit em (Op.Push_const (Value.Number f))
  | Ast.String s -> emit em (Op.Push_const (Value.String s))
  | Ast.Bool b -> emit em (Op.Push_const (Value.Bool b))
  | Ast.Null -> emit em (Op.Push_const Value.Null)
  | Ast.Undefined -> emit em (Op.Push_const Value.Undefined)
  | Ast.Ident name -> (
    match local_index ctx name with
    | Some i -> emit em (Op.Load_local i)
    | None -> emit em (Op.Load_global name))
  | Ast.Array_lit es ->
    List.iter (compile_expr ctx) es;
    emit em (Op.New_array (List.length es))
  | Ast.Object_lit fields ->
    List.iter (fun (_, e) -> compile_expr ctx e) fields;
    emit em (Op.New_object (List.map fst fields))
  | Ast.Unary (op, e) ->
    compile_expr ctx e;
    emit em (Op.Unop op)
  | Ast.Binary (op, a, b) ->
    compile_expr ctx a;
    compile_expr ctx b;
    emit em (Op.Binop op)
  | Ast.Logical (Ast.And, a, b) ->
    compile_expr ctx a;
    emit em Op.Dup;
    let skip = emit_jump em (fun t -> Op.Jump_if_false t) in
    emit em Op.Pop;
    compile_expr ctx b;
    patch em skip (here em)
  | Ast.Logical (Ast.Or, a, b) ->
    compile_expr ctx a;
    emit em Op.Dup;
    let skip = emit_jump em (fun t -> Op.Jump_if_true t) in
    emit em Op.Pop;
    compile_expr ctx b;
    patch em skip (here em)
  | Ast.Conditional (c, t, f) ->
    compile_expr ctx c;
    let to_else = emit_jump em (fun t -> Op.Jump_if_false t) in
    compile_expr ctx t;
    let to_end = emit_jump em (fun t -> Op.Jump t) in
    patch em to_else (here em);
    compile_expr ctx f;
    patch em to_end (here em)
  | Ast.Assign (lv, rhs) -> compile_assign ctx lv rhs
  | Ast.Call (callee, args) -> compile_call ctx callee args
  | Ast.Member (o, name) ->
    compile_expr ctx o;
    emit em (Op.Get_member name)
  | Ast.Index (o, i) ->
    compile_expr ctx o;
    compile_expr ctx i;
    emit em Op.Get_index
  | Ast.Func_expr _ ->
    (* the parser lambda-lifts all function expressions *)
    compile_error "internal error: unlifted function expression"

(* Leaves the assigned value on the stack (assignment is an expression). *)
and compile_assign ctx lv rhs =
  let em = ctx.em in
  match lv with
  | Ast.Lvar name ->
    compile_expr ctx rhs;
    emit em Op.Dup;
    (match local_index ctx name with
    | Some i -> emit em (Op.Store_local i)
    | None -> emit em (Op.Store_global name))
  | Ast.Lindex (o, i) ->
    compile_expr ctx o;
    compile_expr ctx i;
    compile_expr ctx rhs;
    emit em Op.Set_index
  | Ast.Lmember (o, name) ->
    compile_expr ctx o;
    compile_expr ctx rhs;
    emit em (Op.Set_member name)

and compile_call ctx callee args =
  let em = ctx.em in
  match callee with
  | Ast.Member (o, name) ->
    compile_expr ctx o;
    List.iter (compile_expr ctx) args;
    emit em (Op.Call_method (name, List.length args))
  | _ ->
    compile_expr ctx callee;
    List.iter (compile_expr ctx) args;
    emit em (Op.Call (List.length args))

let rec compile_stmt ctx (s : Ast.stmt) =
  let em = ctx.em in
  match s with
  | Ast.Var (name, init) -> (
    match init with
    | Some e ->
      compile_expr ctx e;
      (match local_index ctx name with
      | Some i -> emit em (Op.Store_local i)
      | None -> emit em (Op.Store_global name))
    | None -> (
      (* declaration only: locals are already hoisted to Undefined; a
         top-level [var x;] defines the global if absent *)
      match local_index ctx name with
      | Some _ -> ()
      | None -> emit em (Op.Declare_global name)))
  | Ast.Expr_stmt e ->
    compile_expr ctx e;
    emit em Op.Pop
  | Ast.If (c, t, f) ->
    compile_expr ctx c;
    let to_else = emit_jump em (fun t -> Op.Jump_if_false t) in
    List.iter (compile_stmt ctx) t;
    if f = [] then patch em to_else (here em)
    else begin
      let to_end = emit_jump em (fun t -> Op.Jump t) in
      patch em to_else (here em);
      List.iter (compile_stmt ctx) f;
      patch em to_end (here em)
    end
  | Ast.While (c, body) ->
    let top = here em in
    compile_expr ctx c;
    let exit_jump = emit_jump em (fun t -> Op.Jump_if_false t) in
    compile_loop_body ctx ~continue_target:top body;
    emit em (Op.Jump top);
    let exit_ = here em in
    patch em exit_jump exit_;
    List.iter (fun site -> patch em site exit_) (List.hd ctx.breaks);
    ctx.breaks <- List.tl ctx.breaks
  | Ast.For (init, cond, update, body) ->
    Option.iter (compile_stmt ctx) init;
    let top = here em in
    let exit_jump =
      match cond with
      | Some c ->
        compile_expr ctx c;
        Some (emit_jump em (fun t -> Op.Jump_if_false t))
      | None -> None
    in
    (* continue jumps go to the update code, whose address we only know
       after the body: collect and patch *)
    compile_loop_body ctx ~continue_target:(-1) body;
    let update_addr = here em in
    Option.iter
      (fun u ->
        compile_expr ctx u;
        emit em Op.Pop)
      update;
    emit em (Op.Jump top);
    let exit_ = here em in
    Option.iter (fun site -> patch em site exit_) exit_jump;
    List.iter (fun site -> patch em site exit_) (List.hd ctx.breaks);
    ctx.breaks <- List.tl ctx.breaks;
    (match ctx.continues with
    | (_, pending) :: rest ->
      List.iter (fun site -> patch em site update_addr) pending;
      ctx.continues <- rest
    | [] -> ())
  | Ast.Return e ->
    (match e with
    | Some e ->
      compile_expr ctx e;
      emit em Op.Return
    | None -> emit em Op.Return_undefined)
  | Ast.Break -> (
    match ctx.breaks with
    | sites :: rest ->
      let site = emit_jump em (fun t -> Op.Jump t) in
      ctx.breaks <- (site :: sites) :: rest
    | [] -> compile_error "break outside of a loop")
  | Ast.Continue -> (
    match ctx.continues with
    | (target, pending) :: rest ->
      if target >= 0 then emit em (Op.Jump target)
      else begin
        let site = emit_jump em (fun t -> Op.Jump t) in
        ctx.continues <- (target, site :: pending) :: rest
      end
    | [] -> compile_error "continue outside of a loop")
  | Ast.Block body -> List.iter (compile_stmt ctx) body

(* Pushes fresh break/continue frames; [compile_stmt] for the loop pops the
   break frame (and the continue frame for [For]) after patching. *)
and compile_loop_body ctx ~continue_target body =
  ctx.breaks <- [] :: ctx.breaks;
  ctx.continues <- (continue_target, []) :: ctx.continues;
  List.iter (compile_stmt ctx) body;
  if continue_target >= 0 then ctx.continues <- List.tl ctx.continues

let compile_func (f : Ast.func) : Op.func =
  let locals = Hashtbl.create 16 in
  let names = ref [] in
  let add name =
    if not (Hashtbl.mem locals name) then begin
      Hashtbl.add locals name (Hashtbl.length locals);
      names := name :: !names
    end
  in
  List.iter add f.Ast.params;
  List.iter add (Ast.declared_vars f.Ast.body);
  let ctx = { em = new_emitter (); locals; toplevel = false; breaks = []; continues = [] } in
  List.iter (compile_stmt ctx) f.Ast.body;
  emit ctx.em Op.Return_undefined;
  {
    Op.name = f.Ast.name;
    arity = List.length f.Ast.params;
    n_locals = Hashtbl.length locals;
    local_names = Array.of_list (List.rev !names);
    code = Array.sub ctx.em.ops 0 ctx.em.len;
  }

let compile (program : Ast.program) : Op.program =
  let funcs = Array.of_list (List.map compile_func program.Ast.functions) in
  let ctx =
    { em = new_emitter (); locals = Hashtbl.create 0; toplevel = true; breaks = []; continues = [] }
  in
  List.iter (compile_stmt ctx) program.Ast.main;
  emit ctx.em Op.Return_undefined;
  let main =
    {
      Op.name = "<main>";
      arity = 0;
      n_locals = 0;
      local_names = [||];
      code = Array.sub ctx.em.ops 0 ctx.em.len;
    }
  in
  { Op.funcs; main }
