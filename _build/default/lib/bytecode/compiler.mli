(** AST → bytecode compiler.

    Locals are the function's parameters followed by its hoisted [var]s;
    any other identifier compiles to a global access. Top-level code is
    compiled into the synthetic zero-arity [main] function in which every
    identifier is global (JS top-level [var] semantics). *)

exception Compile_error of string

(** [compile program] compiles every function plus the top level. The
    function order (and hence the function indices used by
    [Value.Function]) is the source order of [program.functions]. *)
val compile : Jitbull_frontend.Ast.program -> Op.program

(** [compile_func f] compiles a single function (used by tests). *)
val compile_func : Jitbull_frontend.Ast.func -> Op.func
