(* Stack-machine bytecode. This is the input of both the VM (the
   interpreter tier) and the MIR builder (the optimizing tier), mirroring
   SpiderMonkey where the same bytecode feeds the interpreter, Baseline and
   IonMonkey (step 1 of Fig. 1 in the paper). *)

module Ast = Jitbull_frontend.Ast
module Value = Jitbull_runtime.Value

type t =
  | Push_const of Value.t
  | Load_local of int
  | Store_local of int       (* pops *)
  | Load_global of string
  | Store_global of string   (* pops *)
  | Declare_global of string  (* define as undefined if absent; no stack effect *)
  | Pop
  | Dup
  | Binop of Ast.binop
  | Unop of Ast.unop
  | Jump of int
  | Jump_if_false of int     (* pops condition *)
  | Jump_if_true of int      (* pops condition *)
  | New_array of int         (* pops n elements *)
  | New_object of string list  (* pops one value per field, in field order *)
  | Get_index                (* obj idx → v *)
  | Set_index                (* obj idx v → v *)
  | Get_member of string     (* obj → v *)
  | Set_member of string     (* obj v → v *)
  | Call of int              (* callee arg1..argn → v *)
  | Call_method of string * int  (* recv arg1..argn → v *)
  | Return                   (* pops return value *)
  | Return_undefined

type func = {
  name : string;
  arity : int;
  n_locals : int;  (* params + hoisted vars *)
  local_names : string array;
  code : t array;
}

type program = {
  funcs : func array;
  main : func;  (* synthesized zero-arity entry; identifiers are global *)
}

let to_string = function
  | Push_const v -> Printf.sprintf "push %s" (Value.to_display v)
  | Load_local i -> Printf.sprintf "load_local %d" i
  | Store_local i -> Printf.sprintf "store_local %d" i
  | Load_global g -> Printf.sprintf "load_global %s" g
  | Store_global g -> Printf.sprintf "store_global %s" g
  | Declare_global g -> Printf.sprintf "declare_global %s" g
  | Pop -> "pop"
  | Dup -> "dup"
  | Binop op -> Printf.sprintf "binop %s" (Ast.show_binop op)
  | Unop op -> Printf.sprintf "unop %s" (Ast.show_unop op)
  | Jump t -> Printf.sprintf "jump %d" t
  | Jump_if_false t -> Printf.sprintf "jump_if_false %d" t
  | Jump_if_true t -> Printf.sprintf "jump_if_true %d" t
  | New_array n -> Printf.sprintf "new_array %d" n
  | New_object fields -> Printf.sprintf "new_object {%s}" (String.concat "," fields)
  | Get_index -> "get_index"
  | Set_index -> "set_index"
  | Get_member m -> Printf.sprintf "get_member %s" m
  | Set_member m -> Printf.sprintf "set_member %s" m
  | Call n -> Printf.sprintf "call %d" n
  | Call_method (m, n) -> Printf.sprintf "call_method %s %d" m n
  | Return -> "return"
  | Return_undefined -> "return_undefined"

let disassemble (f : func) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "function %s/%d (%d locals)\n" f.name f.arity f.n_locals);
  Array.iteri
    (fun i op -> Buffer.add_string buf (Printf.sprintf "  %4d  %s\n" i (to_string op)))
    f.code;
  Buffer.contents buf
