lib/core/chains.ml: Array Depgraph List String
