lib/core/chains.mli: Depgraph
