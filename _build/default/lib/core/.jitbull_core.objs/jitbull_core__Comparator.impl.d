lib/core/comparator.ml: Delta Dna Hashtbl List
