lib/core/comparator.mli: Delta Dna Hashtbl
