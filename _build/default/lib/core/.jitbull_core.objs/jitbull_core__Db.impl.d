lib/core/db.ml: Dna Jitbull_jit Jitbull_runtime Jitbull_util List String
