lib/core/db.mli: Dna Jitbull_passes Jitbull_util
