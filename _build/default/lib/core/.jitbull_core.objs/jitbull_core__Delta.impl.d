lib/core/delta.ml: Chains Depgraph Hashtbl Jitbull_util List Option Printf String
