lib/core/delta.mli: Depgraph Hashtbl Jitbull_util
