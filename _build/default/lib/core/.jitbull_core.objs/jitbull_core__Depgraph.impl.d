lib/core/depgraph.ml: Buffer Hashtbl Jitbull_mir List Printf String
