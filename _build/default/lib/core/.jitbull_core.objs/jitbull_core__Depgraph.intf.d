lib/core/depgraph.mli: Jitbull_mir
