lib/core/dna.ml: Buffer Delta Depgraph Jitbull_mir Jitbull_util List Printf
