lib/core/dna.mli: Delta Jitbull_mir Jitbull_util
