lib/core/jitbull.ml: Comparator Db Dna Jitbull_jit Jitbull_passes List
