lib/core/jitbull.mli: Comparator Db Jitbull_jit Jitbull_passes
