type chain = string list

let default_max_chains = 4096
let default_max_length = 64

let extract ?(max_chains = default_max_chains) ?(max_length = default_max_length)
    (g : Depgraph.t) : chain list =
  let out = ref [] in
  let count = ref 0 in
  (* Algorithm 1, MAKECHAINS: extend the prefix until a node with no
     dependencies. *)
  let rec walk prefix (n : Depgraph.node) depth =
    if !count < max_chains then begin
      let prefix = n.Depgraph.opcode :: prefix in
      if n.Depgraph.deps = [] || depth >= max_length then begin
        out := List.rev prefix :: !out;
        incr count
      end
      else List.iter (fun d -> walk prefix d (depth + 1)) n.Depgraph.deps
    end
  in
  List.iter (fun r -> walk [] r 0) g.Depgraph.roots;
  List.rev !out

let ngrams n chain =
  let len = List.length chain in
  if len <= n then [ chain ]
  else begin
    let arr = Array.of_list chain in
    List.init (len - n + 1) (fun i -> Array.to_list (Array.sub arr i n))
  end

let chain_to_string chain = String.concat "->" chain
