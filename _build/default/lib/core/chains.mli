(** Dependency chains (Algorithm 1's MAKECHAINS): every path from a root
    of the dependency graph to a leaf, as a sequence of opcodes.

    Path enumeration is exponential in diamond-shaped graphs, so
    extraction is capped ([max_chains], [max_length] — defaults 4096 and
    64); hitting a cap truncates deterministically (DESIGN.md §4). *)

type chain = string list  (** opcodes, root first *)

val default_max_chains : int
val default_max_length : int

(** [extract ?max_chains ?max_length g] enumerates root→leaf opcode
    chains in deterministic order. *)
val extract : ?max_chains:int -> ?max_length:int -> Depgraph.t -> chain list

(** [ngrams n chain] — contiguous opcode n-grams of a chain, e.g. the
    paper's 2-gram sub-chains [A→B]. Chains shorter than [n] yield a
    single n-gram padded with nothing (i.e. the whole chain). *)
val ngrams : int -> chain -> chain list

val chain_to_string : chain -> string
