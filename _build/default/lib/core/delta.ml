module Sexpr = Jitbull_util.Sexpr

type t = {
  removed : (string, int) Hashtbl.t;
  added : (string, int) Hashtbl.t;
}

let key_of_ngram ng = String.concat "->" ng

(* Multiset of sub-chains of a dependency graph.
   - n = 2: the edge multiset (identical to enumerating chains and taking
     2-grams, without the path explosion);
   - n = 3 (the default): length-2 walk counts — for every node, one
     sub-chain per (user, dependency) pair. Same keys as path-enumerated
     3-grams but computed in O(Σ degᵢₙ·degₒᵤₜ), which keeps the Δ
     extractor cheap enough for the paper's 1-20% overhead envelope;
   - n ≥ 4: full chain enumeration under the standard caps. *)
let subchain_multiset ~n (g : Depgraph.t) : (string, int) Hashtbl.t =
  let counts = Hashtbl.create 64 in
  let bump ?(by = 1) k =
    Hashtbl.replace counts k (by + Option.value ~default:0 (Hashtbl.find_opt counts k))
  in
  if n = 2 then List.iter (fun (a, b) -> bump (a ^ "->" ^ b)) (Depgraph.edges g)
  else if n = 3 then begin
    (* users-per-node map *)
    let user_ops : (int, string list) Hashtbl.t = Hashtbl.create 64 in
    List.iter
      (fun (node : Depgraph.node) ->
        List.iter
          (fun (dep : Depgraph.node) ->
            let cur =
              Option.value ~default:[] (Hashtbl.find_opt user_ops dep.Depgraph.num)
            in
            Hashtbl.replace user_ops dep.Depgraph.num (node.Depgraph.opcode :: cur))
          node.Depgraph.deps)
      g.Depgraph.nodes;
    List.iter
      (fun (mid : Depgraph.node) ->
        match Hashtbl.find_opt user_ops mid.Depgraph.num with
        | None -> ()
        | Some users ->
          List.iter
            (fun user_op ->
              List.iter
                (fun (dep : Depgraph.node) ->
                  bump (user_op ^ "->" ^ mid.Depgraph.opcode ^ "->" ^ dep.Depgraph.opcode))
                mid.Depgraph.deps)
            users)
      g.Depgraph.nodes;
    (* edges whose endpoint is a root or a leaf still carry signal: count
       the boundary 2-grams as well so removals at chain ends (an unused
       guard is a root!) stay visible *)
    List.iter
      (fun (root : Depgraph.node) ->
        List.iter
          (fun (dep : Depgraph.node) ->
            bump ("^" ^ root.Depgraph.opcode ^ "->" ^ dep.Depgraph.opcode))
          root.Depgraph.deps)
      g.Depgraph.roots
  end
  else
    List.iter
      (fun chain -> List.iter (fun ng -> bump (key_of_ngram ng)) (Chains.ngrams n chain))
      (Chains.extract g);
  counts

let diff (a : (string, int) Hashtbl.t) (b : (string, int) Hashtbl.t) =
  (* multiset difference a − b *)
  let out = Hashtbl.create 16 in
  Hashtbl.iter
    (fun k ca ->
      let cb = Option.value ~default:0 (Hashtbl.find_opt b k) in
      if ca > cb then Hashtbl.replace out k (ca - cb))
    a;
  out

(* [of_multisets] lets callers that walk a whole snapshot trace compute
   each graph's multiset once instead of once per adjacent pair. *)
let of_multisets ~(before : (string, int) Hashtbl.t) ~(after : (string, int) Hashtbl.t) : t =
  { removed = diff before after; added = diff after before }

let compute ?(n = 3) (before : Depgraph.t) (after : Depgraph.t) : t =
  of_multisets ~before:(subchain_multiset ~n before) ~after:(subchain_multiset ~n after)

let is_empty t = Hashtbl.length t.removed = 0 && Hashtbl.length t.added = 0

let total side = Hashtbl.fold (fun _ c acc -> acc + c) side 0

(* serialization: (delta (removed (<key> <count>) ...) (added ...)) *)

let side_to_sexpr name side =
  let entries =
    Hashtbl.fold (fun k c acc -> (k, c) :: acc) side []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    |> List.map (fun (k, c) -> Sexpr.list [ Sexpr.atom k; Sexpr.int c ])
  in
  Sexpr.list (Sexpr.atom name :: entries)

let side_of_sexprs payload =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun s ->
      match Sexpr.to_list s with
      | [ k; c ] -> Hashtbl.replace tbl (Sexpr.to_atom k) (Sexpr.to_int c)
      | _ -> raise (Sexpr.Decode_error "bad delta entry"))
    payload;
  tbl

let to_sexpr t =
  Sexpr.list
    [ Sexpr.atom "delta"; side_to_sexpr "removed" t.removed; side_to_sexpr "added" t.added ]

let of_sexpr s =
  let removed = side_of_sexprs (Sexpr.field "removed" s) in
  let added = side_of_sexprs (Sexpr.field "added" s) in
  { removed; added }

let to_string t =
  let fmt side =
    Hashtbl.fold (fun k c acc -> Printf.sprintf "%s x%d" k c :: acc) side []
    |> List.sort String.compare |> String.concat ", "
  in
  Printf.sprintf "removed={%s} added={%s}" (fmt t.removed) (fmt t.added)
