module Sexpr = Jitbull_util.Sexpr
module Snapshot = Jitbull_mir.Snapshot

type t = {
  func_name : string;
  deltas : (string * Delta.t) list;
}

let extract ?(n = 3) (trace : (string * Snapshot.t) list) : t =
  match trace with
  | [] -> { func_name = "?"; deltas = [] }
  | (_, first) :: rest ->
    let func_name = first.Snapshot.func_name in
    let deltas = ref [] in
    let prev = ref (Delta.subchain_multiset ~n (Depgraph.build first)) in
    List.iter
      (fun (pass_name, snap) ->
        let m = Delta.subchain_multiset ~n (Depgraph.build snap) in
        deltas := (pass_name, Delta.of_multisets ~before:!prev ~after:m) :: !deltas;
        prev := m)
      rest;
    { func_name; deltas = List.rev !deltas }

let nonempty_passes t =
  List.filter_map
    (fun (name, d) -> if Delta.is_empty d then None else Some name)
    t.deltas

let to_sexpr t =
  Sexpr.list
    [
      Sexpr.atom "dna";
      Sexpr.list [ Sexpr.atom "func"; Sexpr.atom t.func_name ];
      Sexpr.list
        (Sexpr.atom "deltas"
        :: List.map
             (fun (name, d) -> Sexpr.list [ Sexpr.atom name; Delta.to_sexpr d ])
             t.deltas);
    ]

let of_sexpr s =
  let func_name =
    match Sexpr.field "func" s with
    | [ a ] -> Sexpr.to_atom a
    | _ -> raise (Sexpr.Decode_error "dna: bad func field")
  in
  let deltas =
    List.map
      (fun entry ->
        match Sexpr.to_list entry with
        | [ name; d ] -> (Sexpr.to_atom name, Delta.of_sexpr d)
        | _ -> raise (Sexpr.Decode_error "dna: bad delta entry"))
      (Sexpr.field "deltas" s)
  in
  { func_name; deltas }

let to_string t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "dna of %s:\n" t.func_name);
  List.iter
    (fun (name, d) ->
      if not (Delta.is_empty d) then
        Buffer.add_string buf (Printf.sprintf "  %-18s %s\n" name (Delta.to_string d)))
    t.deltas;
  Buffer.contents buf
