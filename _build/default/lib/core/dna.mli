(** The JIT DNA of a function: the vector (Δ₁ … Δₙ) of per-pass IR
    modifications — the Δ extractor's output (paper §IV-D). *)

type t = {
  func_name : string;
  deltas : (string * Delta.t) list;  (** pass name → Δᵢ, in pipeline order *)
}

(** [extract ?n trace] consumes the pipeline's snapshot trace
    (IR₀ … IRₙ with pass names) and computes Δᵢ between consecutive
    snapshots through the dependency graphs. [n] is the sub-chain n-gram
    size (default 3, see {!Delta}). *)
val extract : ?n:int -> (string * Jitbull_mir.Snapshot.t) list -> t

(** [nonempty_passes t] — passes that modified the IR. *)
val nonempty_passes : t -> string list

val to_sexpr : t -> Jitbull_util.Sexpr.t
val of_sexpr : Jitbull_util.Sexpr.t -> t
val to_string : t -> string
