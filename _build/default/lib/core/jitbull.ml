module Engine = Jitbull_jit.Engine
module Pipeline = Jitbull_passes.Pipeline

type record = {
  func_name : string;
  matched : (string * string list) list;
  dangerous_passes : string list;
  verdict : [ `Allow | `Disable of string list | `Forbid ];
}

type monitor = { mutable records : record list }

let new_monitor () = { records = [] }

let analyzer ?params ?monitor (db : Db.t) : Engine.analyzer =
 fun ~func_index:_ ~name ~trace ->
  let dna = Dna.extract trace in
  let matched =
    List.filter_map
      (fun (e : Db.entry) ->
        match Comparator.matching_passes ?params dna e.Db.dna with
        | [] -> None
        | passes -> Some (e.Db.cve, passes))
      (Db.entries db)
  in
  let dangerous =
    (* union in pipeline order *)
    List.filter
      (fun p -> List.exists (fun (_, ps) -> List.mem p ps) matched)
      Pipeline.pass_names
  in
  let verdict =
    if dangerous = [] then `Allow
    else if List.for_all Pipeline.can_disable dangerous then `Disable dangerous
    else `Forbid
  in
  (match monitor with
  | Some m ->
    m.records <- { func_name = name; matched; dangerous_passes = dangerous; verdict } :: m.records
  | None -> ());
  match verdict with
  | `Allow -> Engine.Allow
  | `Disable passes -> Engine.Disable_passes passes
  | `Forbid -> Engine.Forbid_jit

let config ?params ?monitor ~vulns (db : Db.t) : Engine.config =
  let analyzer = if Db.is_empty db then None else Some (analyzer ?params ?monitor db) in
  { Engine.default_config with Engine.vulns; analyzer }
