lib/frontend/lambda_lift.pp.ml: Ast Format List Option Printf String
