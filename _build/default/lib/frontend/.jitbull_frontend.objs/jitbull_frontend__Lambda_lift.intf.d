lib/frontend/lambda_lift.pp.mli: Ast
