lib/frontend/lexer.pp.ml: Buffer Format List String Token
