lib/frontend/lexer.pp.mli: Token
