lib/frontend/parser.pp.ml: Array Ast Format Lambda_lift Lexer List Printf Token
