lib/frontend/parser.pp.mli: Ast Token
