lib/frontend/printer.pp.ml: Ast Buffer Float List Printf String
