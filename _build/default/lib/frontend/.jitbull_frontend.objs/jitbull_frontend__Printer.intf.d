lib/frontend/printer.pp.mli: Ast
