lib/frontend/token.pp.ml: Ppx_deriving_runtime Printf
