(* Abstract syntax of the mini-JS subset.

   Restrictions relative to full JavaScript, chosen so that the bytecode
   compiler and the JIT stay honest but tractable (see DESIGN.md):
   - function declarations appear only at the top level (the "add
     sub-functions" variant generator splits code into further top-level
     functions, as the paper's manual variants do); anonymous function
     expressions are lambda-lifted to the top level by the parser;
   - no closures: a function body references its own parameters/locals and
     global bindings (capture is rejected — see [Lambda_lift]);
   - [x++]/[x--], compound assignments, [do…while] and [switch] are
     desugared by the parser. *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Neq
  | Strict_eq
  | Strict_neq
  | Bit_and
  | Bit_or
  | Bit_xor
  | Shl
  | Shr
  | Ushr
[@@deriving show, eq]

type unop =
  | Neg
  | Not
  | Bit_not
  | Typeof
  | To_number  (* unary [+] *)
[@@deriving show, eq]

type logical =
  | And
  | Or
[@@deriving show, eq]

type expr =
  | Number of float
  | String of string
  | Bool of bool
  | Null
  | Undefined
  | Ident of string
  | Array_lit of expr list
  | Object_lit of (string * expr) list
  | Unary of unop * expr
  | Binary of binop * expr * expr
  | Logical of logical * expr * expr
  | Conditional of expr * expr * expr
  | Assign of lvalue * expr
  | Call of expr * expr list
  | Member of expr * string
  | Index of expr * expr
  | Func_expr of string list * stmt list
      (* anonymous function expression; lambda-lifted to a top-level
         function by the parser ([Lambda_lift]), so downstream consumers
         (interpreter, compiler) never see this constructor *)

and lvalue =
  | Lvar of string
  | Lindex of expr * expr
  | Lmember of expr * string

and stmt =
  | Var of string * expr option
  | Expr_stmt of expr
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | For of stmt option * expr option * expr option * stmt list
  | Return of expr option
  | Break
  | Continue
  | Block of stmt list
[@@deriving show, eq]

type func = {
  name : string;
  params : string list;
  body : stmt list;
}
[@@deriving show, eq]

type program = {
  functions : func list;
  main : stmt list;  (* top-level statements, in source order *)
}
[@@deriving show, eq]

(* Traversals used by the variant generators and the compilers. *)

let rec fold_expr (f : 'a -> expr -> 'a) (acc : 'a) (e : expr) : 'a =
  let acc = f acc e in
  match e with
  | Number _ | String _ | Bool _ | Null | Undefined | Ident _ -> acc
  | Array_lit es -> List.fold_left (fold_expr f) acc es
  | Object_lit fields -> List.fold_left (fun acc (_, e) -> fold_expr f acc e) acc fields
  | Unary (_, e) -> fold_expr f acc e
  | Binary (_, a, b) | Logical (_, a, b) -> fold_expr f (fold_expr f acc a) b
  | Conditional (c, t, e) -> fold_expr f (fold_expr f (fold_expr f acc c) t) e
  | Assign (lv, e) -> fold_expr f (fold_lvalue f acc lv) e
  | Call (callee, args) -> List.fold_left (fold_expr f) (fold_expr f acc callee) args
  | Member (o, _) -> fold_expr f acc o
  | Index (o, i) -> fold_expr f (fold_expr f acc o) i
  | Func_expr _ -> acc  (* bodies are lifted before any fold runs *)

and fold_lvalue f acc = function
  | Lvar _ -> acc
  | Lindex (o, i) -> fold_expr f (fold_expr f acc o) i
  | Lmember (o, _) -> fold_expr f acc o

let rec fold_stmt_exprs f acc = function
  | Var (_, None) | Break | Continue | Return None -> acc
  | Var (_, Some e) | Expr_stmt e | Return (Some e) -> fold_expr f acc e
  | If (c, t, e) ->
    let acc = fold_expr f acc c in
    let acc = List.fold_left (fold_stmt_exprs f) acc t in
    List.fold_left (fold_stmt_exprs f) acc e
  | While (c, body) ->
    List.fold_left (fold_stmt_exprs f) (fold_expr f acc c) body
  | For (init, cond, update, body) ->
    let acc = match init with Some s -> fold_stmt_exprs f acc s | None -> acc in
    let acc = match cond with Some e -> fold_expr f acc e | None -> acc in
    let acc = match update with Some e -> fold_expr f acc e | None -> acc in
    List.fold_left (fold_stmt_exprs f) acc body
  | Block body -> List.fold_left (fold_stmt_exprs f) acc body

(* [map_expr f e] rebuilds [e] bottom-up, applying [f] to every node. *)
let rec map_expr (f : expr -> expr) (e : expr) : expr =
  let e' =
    match e with
    | Number _ | String _ | Bool _ | Null | Undefined | Ident _ -> e
    | Array_lit es -> Array_lit (List.map (map_expr f) es)
    | Object_lit fields -> Object_lit (List.map (fun (k, v) -> (k, map_expr f v)) fields)
    | Unary (op, e) -> Unary (op, map_expr f e)
    | Binary (op, a, b) -> Binary (op, map_expr f a, map_expr f b)
    | Logical (op, a, b) -> Logical (op, map_expr f a, map_expr f b)
    | Conditional (c, t, e) -> Conditional (map_expr f c, map_expr f t, map_expr f e)
    | Assign (lv, e) -> Assign (map_lvalue f lv, map_expr f e)
    | Call (callee, args) -> Call (map_expr f callee, List.map (map_expr f) args)
    | Member (o, p) -> Member (map_expr f o, p)
    | Index (o, i) -> Index (map_expr f o, map_expr f i)
    | Func_expr _ -> e  (* lifted before any map runs *)
  in
  f e'

and map_lvalue f = function
  | Lvar x -> Lvar x
  | Lindex (o, i) -> Lindex (map_expr f o, map_expr f i)
  | Lmember (o, p) -> Lmember (map_expr f o, p)

let rec map_stmt (f : expr -> expr) (s : stmt) : stmt =
  match s with
  | Var (x, e) -> Var (x, Option.map (map_expr f) e)
  | Expr_stmt e -> Expr_stmt (map_expr f e)
  | If (c, t, e) -> If (map_expr f c, List.map (map_stmt f) t, List.map (map_stmt f) e)
  | While (c, body) -> While (map_expr f c, List.map (map_stmt f) body)
  | For (init, cond, update, body) ->
    For
      ( Option.map (map_stmt f) init,
        Option.map (map_expr f) cond,
        Option.map (map_expr f) update,
        List.map (map_stmt f) body )
  | Return e -> Return (Option.map (map_expr f) e)
  | Break -> Break
  | Continue -> Continue
  | Block body -> Block (List.map (map_stmt f) body)

(* Identifiers referenced anywhere in an expression (reads and writes). *)
let expr_idents e =
  fold_expr
    (fun acc e -> match e with Ident x -> x :: acc | _ -> acc)
    [] e
  |> List.sort_uniq String.compare

(* [declared_vars body] — every name introduced by a [var] declaration
   anywhere in [body], in first-occurrence order. Both the interpreter and
   the bytecode compiler hoist these to function entry, like JS [var]. *)
let declared_vars (body : stmt list) : string list =
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  let add x =
    if not (Hashtbl.mem seen x) then begin
      Hashtbl.add seen x ();
      out := x :: !out
    end
  in
  let rec walk = function
    | Var (x, _) -> add x
    | If (_, t, e) ->
      List.iter walk t;
      List.iter walk e
    | While (_, b) | Block b -> List.iter walk b
    | For (init, _, _, b) ->
      Option.iter walk init;
      List.iter walk b
    | Expr_stmt _ | Return _ | Break | Continue -> ()
  in
  List.iter walk body;
  List.rev !out

let stmt_idents s =
  let from_exprs =
    fold_stmt_exprs (fun acc e -> match e with Ident x -> x :: acc | _ -> acc) [] s
  in
  let rec declared acc = function
    | Var (x, _) -> x :: acc
    | If (_, t, e) -> List.fold_left declared (List.fold_left declared acc t) e
    | While (_, b) | Block b -> List.fold_left declared acc b
    | For (init, _, _, b) ->
      let acc = match init with Some s -> declared acc s | None -> acc in
      List.fold_left declared acc b
    | Expr_stmt _ | Return _ | Break | Continue -> acc
  in
  List.sort_uniq String.compare (from_exprs @ declared [] s)
