exception Capture_error of string

let capture_error fmt = Format.kasprintf (fun s -> raise (Capture_error s)) fmt

(* free identifier *reads/writes* of a statement list with respect to the
   bindings introduced inside it (params must be added by the caller) *)
let references body =
  List.concat_map (fun s -> Ast.stmt_idents s) body |> List.sort_uniq String.compare

let lift (p : Ast.program) : Ast.program =
  let lifted = ref [] in
  let counter = ref 0 in
  let fresh () =
    let n = !counter in
    incr counter;
    Printf.sprintf "anon$%d" n
  in
  (* [enclosing] = bindings of the function (or top level) the expression
     appears in; capturing any of them is an error. *)
  let rec lift_expr ~enclosing (e : Ast.expr) : Ast.expr =
    Ast.map_expr
      (fun e ->
        match e with
        | Ast.Func_expr (params, body) ->
          (* lift inner expressions first, with THIS function's bindings
             as the enclosing scope *)
          let own = params @ Ast.declared_vars body in
          let body = List.map (lift_stmt ~enclosing:own) body in
          List.iter
            (fun id ->
              if List.mem id enclosing && not (List.mem id own) then
                capture_error
                  "function expression captures enclosing binding %S (closures are not \
                   supported by the subset)"
                  id)
            (references body);
          let name = fresh () in
          lifted := { Ast.name; params; body } :: !lifted;
          Ast.Ident name
        | e -> e)
      e

  and lift_stmt ~enclosing (s : Ast.stmt) : Ast.stmt =
    match s with
    | Ast.Var (x, init) -> Ast.Var (x, Option.map (lift_expr ~enclosing) init)
    | Ast.Expr_stmt e -> Ast.Expr_stmt (lift_expr ~enclosing e)
    | Ast.If (c, t, e) ->
      Ast.If
        ( lift_expr ~enclosing c,
          List.map (lift_stmt ~enclosing) t,
          List.map (lift_stmt ~enclosing) e )
    | Ast.While (c, b) -> Ast.While (lift_expr ~enclosing c, List.map (lift_stmt ~enclosing) b)
    | Ast.For (init, cond, update, b) ->
      Ast.For
        ( Option.map (lift_stmt ~enclosing) init,
          Option.map (lift_expr ~enclosing) cond,
          Option.map (lift_expr ~enclosing) update,
          List.map (lift_stmt ~enclosing) b )
    | Ast.Return e -> Ast.Return (Option.map (lift_expr ~enclosing) e)
    | Ast.Break -> Ast.Break
    | Ast.Continue -> Ast.Continue
    | Ast.Block b -> Ast.Block (List.map (lift_stmt ~enclosing) b)
  in
  let functions =
    List.map
      (fun (f : Ast.func) ->
        let enclosing = f.Ast.params @ Ast.declared_vars f.Ast.body in
        { f with Ast.body = List.map (lift_stmt ~enclosing) f.Ast.body })
      p.Ast.functions
  in
  (* top-level [var]s are globals, visible to lifted functions: no capture
     issue at the top level *)
  let main = List.map (lift_stmt ~enclosing:[]) p.Ast.main in
  { Ast.functions = functions @ List.rev !lifted; main }
