(** Lambda lifting of anonymous function expressions.

    The subset has no closures: a function body may reference its own
    parameters/locals and globals only. Function {e expressions} are
    therefore lifted to fresh top-level declarations (named [anon$N]) and
    replaced by a reference to that name, preserving first-class function
    values without an environment model.

    A function expression that captures a binding of its enclosing
    function (a parameter or [var] that is not also bound inside the
    expression itself) would silently change meaning under lifting, so it
    is rejected with {!Capture_error}. Nested function expressions are
    lifted innermost-first. *)

exception Capture_error of string
(** carries the captured identifier and the would-be closure's context *)

(** [lift program] returns an equivalent program with no [Func_expr] nodes
    anywhere; lifted functions are appended after the declared ones. *)
val lift : Ast.program -> Ast.program
