exception Lex_error of string * Token.position

let lex_error pos fmt = Format.kasprintf (fun s -> raise (Lex_error (s, pos))) fmt

type state = {
  source : string;
  mutable pos : int;
  mutable line : int;
  mutable column : int;
}

let position st : Token.position = { line = st.line; column = st.column }

let peek st = if st.pos < String.length st.source then Some st.source.[st.pos] else None

let peek2 st =
  if st.pos + 1 < String.length st.source then Some st.source.[st.pos + 1] else None

let advance st =
  (match peek st with
  | Some '\n' ->
    st.line <- st.line + 1;
    st.column <- 1
  | Some _ -> st.column <- st.column + 1
  | None -> ());
  st.pos <- st.pos + 1

let is_digit c = c >= '0' && c <= '9'
let is_hex c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = '$'
let is_ident_char c = is_ident_start c || is_digit c

let rec skip_trivia st =
  match peek st with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance st;
    skip_trivia st
  | Some '/' when peek2 st = Some '/' ->
    let rec to_eol () =
      match peek st with
      | Some '\n' | None -> ()
      | Some _ ->
        advance st;
        to_eol ()
    in
    to_eol ();
    skip_trivia st
  | Some '/' when peek2 st = Some '*' ->
    let start = position st in
    advance st;
    advance st;
    let rec to_close () =
      match (peek st, peek2 st) with
      | Some '*', Some '/' ->
        advance st;
        advance st
      | None, _ -> lex_error start "unterminated block comment"
      | Some _, _ ->
        advance st;
        to_close ()
    in
    to_close ();
    skip_trivia st
  | Some _ | None -> ()

let scan_number st =
  let start = st.pos in
  let pos = position st in
  (if peek st = Some '0' && (peek2 st = Some 'x' || peek2 st = Some 'X') then begin
     advance st;
     advance st;
     let digits = ref 0 in
     while match peek st with Some c when is_hex c -> true | _ -> false do
       incr digits;
       advance st
     done;
     if !digits = 0 then lex_error pos "invalid hexadecimal literal"
   end
   else begin
     while match peek st with Some c when is_digit c -> true | _ -> false do
       advance st
     done;
     (match (peek st, peek2 st) with
     | Some '.', Some c when is_digit c ->
       advance st;
       while match peek st with Some c when is_digit c -> true | _ -> false do
         advance st
       done
     | _ -> ());
     match peek st with
     | Some ('e' | 'E') ->
       advance st;
       (match peek st with
       | Some ('+' | '-') -> advance st
       | _ -> ());
       let digits = ref 0 in
       while match peek st with Some c when is_digit c -> true | _ -> false do
         incr digits;
         advance st
       done;
       if !digits = 0 then lex_error pos "invalid exponent"
     | _ -> ()
   end);
  let text = String.sub st.source start (st.pos - start) in
  match float_of_string_opt text with
  | Some f -> Token.NUMBER f
  | None -> lex_error pos "invalid number literal %S" text

let scan_string st quote =
  let pos = position st in
  advance st;
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> lex_error pos "unterminated string"
    | Some c when c = quote ->
      advance st;
      Token.STRING (Buffer.contents buf)
    | Some '\\' ->
      advance st;
      (match peek st with
      | Some 'n' -> Buffer.add_char buf '\n'
      | Some 't' -> Buffer.add_char buf '\t'
      | Some 'r' -> Buffer.add_char buf '\r'
      | Some '0' -> Buffer.add_char buf '\000'
      | Some c -> Buffer.add_char buf c
      | None -> lex_error pos "dangling escape");
      advance st;
      loop ()
    | Some '\n' -> lex_error pos "newline in string literal"
    | Some c ->
      Buffer.add_char buf c;
      advance st;
      loop ()
  in
  loop ()

let scan_ident st =
  let start = st.pos in
  while match peek st with Some c when is_ident_char c -> true | _ -> false do
    advance st
  done;
  let text = String.sub st.source start (st.pos - start) in
  match Token.keyword_of_string text with
  | Some kw -> kw
  | None -> Token.IDENT text

(* Operators are matched longest-first. *)
let scan_operator st =
  let pos = position st in
  let try3 a b c tok =
    if peek st = Some a && peek2 st = Some b
       && st.pos + 2 < String.length st.source
       && st.source.[st.pos + 2] = c
    then begin
      advance st;
      advance st;
      advance st;
      Some tok
    end
    else None
  in
  let try2 a b tok =
    if peek st = Some a && peek2 st = Some b then begin
      advance st;
      advance st;
      Some tok
    end
    else None
  in
  let try1 a tok =
    if peek st = Some a then begin
      advance st;
      Some tok
    end
    else None
  in
  let candidates =
    [
      (fun () -> try3 '>' '>' '>' Token.USHR);
      (fun () -> try3 '=' '=' '=' Token.EQEQEQ);
      (fun () -> try3 '!' '=' '=' Token.BANGEQEQ);
      (fun () -> try3 '<' '<' '=' Token.SHL_ASSIGN);
      (fun () -> try3 '>' '>' '=' Token.SHR_ASSIGN);
      (fun () -> try2 '=' '=' Token.EQEQ);
      (fun () -> try2 '!' '=' Token.BANGEQ);
      (fun () -> try2 '<' '=' Token.LE);
      (fun () -> try2 '>' '=' Token.GE);
      (fun () -> try2 '<' '<' Token.SHL);
      (fun () -> try2 '>' '>' Token.SHR);
      (fun () -> try2 '&' '&' Token.AMPAMP);
      (fun () -> try2 '|' '|' Token.PIPEPIPE);
      (fun () -> try2 '+' '+' Token.PLUSPLUS);
      (fun () -> try2 '-' '-' Token.MINUSMINUS);
      (fun () -> try2 '+' '=' Token.PLUS_ASSIGN);
      (fun () -> try2 '-' '=' Token.MINUS_ASSIGN);
      (fun () -> try2 '*' '=' Token.STAR_ASSIGN);
      (fun () -> try2 '/' '=' Token.SLASH_ASSIGN);
      (fun () -> try2 '%' '=' Token.PERCENT_ASSIGN);
      (fun () -> try2 '&' '=' Token.AMP_ASSIGN);
      (fun () -> try2 '|' '=' Token.PIPE_ASSIGN);
      (fun () -> try2 '^' '=' Token.CARET_ASSIGN);
      (fun () -> try1 '+' Token.PLUS);
      (fun () -> try1 '-' Token.MINUS);
      (fun () -> try1 '*' Token.STAR);
      (fun () -> try1 '/' Token.SLASH);
      (fun () -> try1 '%' Token.PERCENT);
      (fun () -> try1 '<' Token.LT);
      (fun () -> try1 '>' Token.GT);
      (fun () -> try1 '=' Token.ASSIGN);
      (fun () -> try1 '&' Token.AMP);
      (fun () -> try1 '|' Token.PIPE);
      (fun () -> try1 '^' Token.CARET);
      (fun () -> try1 '~' Token.TILDE);
      (fun () -> try1 '!' Token.BANG);
      (fun () -> try1 '(' Token.LPAREN);
      (fun () -> try1 ')' Token.RPAREN);
      (fun () -> try1 '{' Token.LBRACE);
      (fun () -> try1 '}' Token.RBRACE);
      (fun () -> try1 '[' Token.LBRACKET);
      (fun () -> try1 ']' Token.RBRACKET);
      (fun () -> try1 ';' Token.SEMI);
      (fun () -> try1 ',' Token.COMMA);
      (fun () -> try1 ':' Token.COLON);
      (fun () -> try1 '?' Token.QUESTION);
      (fun () -> try1 '.' Token.DOT);
    ]
  in
  match List.find_map (fun f -> f ()) candidates with
  | Some tok -> tok
  | None ->
    (match peek st with
    | Some c -> lex_error pos "unexpected character %C" c
    | None -> lex_error pos "unexpected end of input")

let tokenize source =
  let st = { source; pos = 0; line = 1; column = 1 } in
  let rec loop acc =
    skip_trivia st;
    let pos = position st in
    match peek st with
    | None -> List.rev ({ Token.token = Token.EOF; pos } :: acc)
    | Some c ->
      let token =
        if is_digit c then scan_number st
        else if c = '.' && (match peek2 st with Some d when is_digit d -> true | _ -> false)
        then scan_number st
        else if c = '"' || c = '\'' then scan_string st c
        else if is_ident_start c then scan_ident st
        else scan_operator st
      in
      loop ({ Token.token; pos } :: acc)
  in
  loop []
