(** Lexer for the mini-JS subset.

    Supports decimal and hexadecimal number literals (with fraction and
    exponent), single- and double-quoted strings with the usual escapes,
    [//] and [/* */] comments, and the full operator set of {!Token.t}. *)

exception Lex_error of string * Token.position

(** [tokenize source] scans the whole input and returns the token stream
    terminated by [EOF]. Raises {!Lex_error} on an invalid character or an
    unterminated string/comment. *)
val tokenize : string -> Token.spanned list
