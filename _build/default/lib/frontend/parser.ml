exception Parse_error of string * Token.position

let parse_error pos fmt = Format.kasprintf (fun s -> raise (Parse_error (s, pos))) fmt

type state = {
  tokens : Token.spanned array;
  mutable index : int;
  mutable fresh : int;  (* counter for desugaring temporaries *)
}

let fresh_name st prefix =
  let n = st.fresh in
  st.fresh <- n + 1;
  Printf.sprintf "%s$%d" prefix n

let current st = st.tokens.(st.index)
let token st = (current st).Token.token
let pos st = (current st).Token.pos
let advance st = if st.index < Array.length st.tokens - 1 then st.index <- st.index + 1

let expect st tok =
  if Token.equal (token st) tok then advance st
  else parse_error (pos st) "expected %s, found %s" (Token.describe tok) (Token.describe (token st))

let accept st tok =
  if Token.equal (token st) tok then begin
    advance st;
    true
  end
  else false

let expect_ident st =
  match token st with
  | Token.IDENT name ->
    advance st;
    name
  | t -> parse_error (pos st) "expected identifier, found %s" (Token.describe t)

(* Expression grammar, precedence climbing. *)

let binop_of_token : Token.t -> (Ast.binop * int) option = function
  | Token.PIPE -> Some (Ast.Bit_or, 5)
  | Token.CARET -> Some (Ast.Bit_xor, 6)
  | Token.AMP -> Some (Ast.Bit_and, 7)
  | Token.EQEQ -> Some (Ast.Eq, 8)
  | Token.BANGEQ -> Some (Ast.Neq, 8)
  | Token.EQEQEQ -> Some (Ast.Strict_eq, 8)
  | Token.BANGEQEQ -> Some (Ast.Strict_neq, 8)
  | Token.LT -> Some (Ast.Lt, 9)
  | Token.LE -> Some (Ast.Le, 9)
  | Token.GT -> Some (Ast.Gt, 9)
  | Token.GE -> Some (Ast.Ge, 9)
  | Token.SHL -> Some (Ast.Shl, 10)
  | Token.SHR -> Some (Ast.Shr, 10)
  | Token.USHR -> Some (Ast.Ushr, 10)
  | Token.PLUS -> Some (Ast.Add, 11)
  | Token.MINUS -> Some (Ast.Sub, 11)
  | Token.STAR -> Some (Ast.Mul, 12)
  | Token.SLASH -> Some (Ast.Div, 12)
  | Token.PERCENT -> Some (Ast.Mod, 12)
  | _ -> None

let compound_op : Token.t -> Ast.binop option = function
  | Token.PLUS_ASSIGN -> Some Ast.Add
  | Token.MINUS_ASSIGN -> Some Ast.Sub
  | Token.STAR_ASSIGN -> Some Ast.Mul
  | Token.SLASH_ASSIGN -> Some Ast.Div
  | Token.PERCENT_ASSIGN -> Some Ast.Mod
  | Token.AMP_ASSIGN -> Some Ast.Bit_and
  | Token.PIPE_ASSIGN -> Some Ast.Bit_or
  | Token.CARET_ASSIGN -> Some Ast.Bit_xor
  | Token.SHL_ASSIGN -> Some Ast.Shl
  | Token.SHR_ASSIGN -> Some Ast.Shr
  | _ -> None

let lvalue_of_expr st (e : Ast.expr) : Ast.lvalue =
  match e with
  | Ast.Ident x -> Ast.Lvar x
  | Ast.Index (o, i) -> Ast.Lindex (o, i)
  | Ast.Member (o, p) -> Ast.Lmember (o, p)
  | _ -> parse_error (pos st) "invalid assignment target"

let expr_of_lvalue : Ast.lvalue -> Ast.expr = function
  | Ast.Lvar x -> Ast.Ident x
  | Ast.Lindex (o, i) -> Ast.Index (o, i)
  | Ast.Lmember (o, p) -> Ast.Member (o, p)

let incr_expr st target delta ~postfix =
  let lv = lvalue_of_expr st target in
  let updated = Ast.Assign (lv, Ast.Binary (Ast.Add, expr_of_lvalue lv, Ast.Number delta)) in
  if postfix then Ast.Binary (Ast.Sub, updated, Ast.Number delta) else updated

let rec parse_expr st = parse_assignment st

and parse_assignment st =
  let left = parse_conditional st in
  match token st with
  | Token.ASSIGN ->
    let lv = lvalue_of_expr st left in
    advance st;
    Ast.Assign (lv, parse_assignment st)
  | t ->
    (match compound_op t with
    | Some op ->
      let lv = lvalue_of_expr st left in
      advance st;
      let rhs = parse_assignment st in
      Ast.Assign (lv, Ast.Binary (op, expr_of_lvalue lv, rhs))
    | None -> left)

and parse_conditional st =
  let cond = parse_logical_or st in
  if accept st Token.QUESTION then begin
    let then_ = parse_assignment st in
    expect st Token.COLON;
    let else_ = parse_assignment st in
    Ast.Conditional (cond, then_, else_)
  end
  else cond

and parse_logical_or st =
  let left = parse_logical_and st in
  if accept st Token.PIPEPIPE then Ast.Logical (Ast.Or, left, parse_logical_or st) else left

and parse_logical_and st =
  let left = parse_binary st 5 in
  if accept st Token.AMPAMP then Ast.Logical (Ast.And, left, parse_logical_and st) else left

and parse_binary st min_prec =
  let left = ref (parse_unary st) in
  let continue = ref true in
  while !continue do
    match binop_of_token (token st) with
    | Some (op, prec) when prec >= min_prec ->
      advance st;
      let right = parse_binary st (prec + 1) in
      left := Ast.Binary (op, !left, right)
    | Some _ | None -> continue := false
  done;
  !left

and parse_unary st =
  match token st with
  | Token.MINUS ->
    advance st;
    Ast.Unary (Ast.Neg, parse_unary st)
  | Token.PLUS ->
    advance st;
    Ast.Unary (Ast.To_number, parse_unary st)
  | Token.BANG ->
    advance st;
    Ast.Unary (Ast.Not, parse_unary st)
  | Token.TILDE ->
    advance st;
    Ast.Unary (Ast.Bit_not, parse_unary st)
  | Token.TYPEOF ->
    advance st;
    Ast.Unary (Ast.Typeof, parse_unary st)
  | Token.PLUSPLUS ->
    advance st;
    let target = parse_unary st in
    incr_expr st target 1.0 ~postfix:false
  | Token.MINUSMINUS ->
    advance st;
    let target = parse_unary st in
    incr_expr st target (-1.0) ~postfix:false
  | _ -> parse_postfix st

and parse_postfix st =
  let e = ref (parse_primary st) in
  let continue = ref true in
  while !continue do
    match token st with
    | Token.LPAREN ->
      advance st;
      let args = parse_arguments st in
      e := Ast.Call (!e, args)
    | Token.DOT ->
      advance st;
      e := Ast.Member (!e, expect_ident st)
    | Token.LBRACKET ->
      advance st;
      let idx = parse_expr st in
      expect st Token.RBRACKET;
      e := Ast.Index (!e, idx)
    | Token.PLUSPLUS ->
      advance st;
      e := incr_expr st !e 1.0 ~postfix:true
    | Token.MINUSMINUS ->
      advance st;
      e := incr_expr st !e (-1.0) ~postfix:true
    | _ -> continue := false
  done;
  !e

and parse_arguments st =
  if accept st Token.RPAREN then []
  else begin
    let rec loop acc =
      let arg = parse_expr st in
      if accept st Token.COMMA then loop (arg :: acc)
      else begin
        expect st Token.RPAREN;
        List.rev (arg :: acc)
      end
    in
    loop []
  end

and parse_primary st =
  match token st with
  | Token.FUNCTION ->
    (* anonymous function expression; lambda-lifted after parsing *)
    advance st;
    expect st Token.LPAREN;
    let params =
      if accept st Token.RPAREN then []
      else begin
        let rec loop acc =
          let p = expect_ident st in
          if accept st Token.COMMA then loop (p :: acc)
          else begin
            expect st Token.RPAREN;
            List.rev (p :: acc)
          end
        in
        loop []
      end
    in
    expect st Token.LBRACE;
    let body = parse_block_tail st in
    Ast.Func_expr (params, body)
  | Token.NUMBER f ->
    advance st;
    Ast.Number f
  | Token.STRING s ->
    advance st;
    Ast.String s
  | Token.TRUE ->
    advance st;
    Ast.Bool true
  | Token.FALSE ->
    advance st;
    Ast.Bool false
  | Token.NULL ->
    advance st;
    Ast.Null
  | Token.UNDEFINED ->
    advance st;
    Ast.Undefined
  | Token.IDENT name ->
    advance st;
    Ast.Ident name
  | Token.LPAREN ->
    advance st;
    let e = parse_expr st in
    expect st Token.RPAREN;
    e
  | Token.LBRACKET ->
    advance st;
    if accept st Token.RBRACKET then Ast.Array_lit []
    else begin
      let rec loop acc =
        let e = parse_expr st in
        if accept st Token.COMMA then
          if accept st Token.RBRACKET then List.rev (e :: acc) else loop (e :: acc)
        else begin
          expect st Token.RBRACKET;
          List.rev (e :: acc)
        end
      in
      Ast.Array_lit (loop [])
    end
  | Token.LBRACE ->
    advance st;
    if accept st Token.RBRACE then Ast.Object_lit []
    else begin
      let parse_field () =
        let key =
          match token st with
          | Token.IDENT k ->
            advance st;
            k
          | Token.STRING k ->
            advance st;
            k
          | Token.NUMBER f ->
            advance st;
            Printf.sprintf "%g" f
          | t -> parse_error (pos st) "expected property name, found %s" (Token.describe t)
        in
        expect st Token.COLON;
        let v = parse_expr st in
        (key, v)
      in
      let rec loop acc =
        let f = parse_field () in
        if accept st Token.COMMA then
          if accept st Token.RBRACE then List.rev (f :: acc) else loop (f :: acc)
        else begin
          expect st Token.RBRACE;
          List.rev (f :: acc)
        end
      in
      Ast.Object_lit (loop [])
    end
  | t -> parse_error (pos st) "unexpected %s in expression" (Token.describe t)

(* Statements. *)

and parse_stmt st : Ast.stmt =
  match token st with
  | Token.VAR -> parse_var st
  | Token.IF -> parse_if st
  | Token.WHILE -> parse_while st
  | Token.FOR -> parse_for st
  | Token.DO -> parse_do_while st
  | Token.SWITCH -> parse_switch st
  | Token.RETURN ->
    advance st;
    if accept st Token.SEMI then Ast.Return None
    else begin
      let e = parse_expr st in
      ignore (accept st Token.SEMI);
      Ast.Return (Some e)
    end
  | Token.BREAK ->
    advance st;
    ignore (accept st Token.SEMI);
    Ast.Break
  | Token.CONTINUE ->
    advance st;
    ignore (accept st Token.SEMI);
    Ast.Continue
  | Token.LBRACE ->
    advance st;
    Ast.Block (parse_block_tail st)
  | Token.SEMI ->
    advance st;
    Ast.Block []
  | Token.FUNCTION ->
    parse_error (pos st) "function declarations are only allowed at the top level"
  | _ ->
    let e = parse_expr st in
    ignore (accept st Token.SEMI);
    Ast.Expr_stmt e

and parse_block_tail st =
  let rec loop acc =
    if accept st Token.RBRACE then List.rev acc else loop (parse_stmt st :: acc)
  in
  loop []

and parse_var st =
  advance st;
  let parse_declarator () =
    let name = expect_ident st in
    let init = if accept st Token.ASSIGN then Some (parse_assignment st) else None in
    Ast.Var (name, init)
  in
  let rec loop acc =
    let d = parse_declarator () in
    if accept st Token.COMMA then loop (d :: acc)
    else begin
      ignore (accept st Token.SEMI);
      List.rev (d :: acc)
    end
  in
  match loop [] with
  | [ single ] -> single
  | many -> Ast.Block many

and parse_if st =
  advance st;
  expect st Token.LPAREN;
  let cond = parse_expr st in
  expect st Token.RPAREN;
  let then_ = parse_branch st in
  let else_ = if accept st Token.ELSE then parse_branch st else [] in
  Ast.If (cond, then_, else_)

and parse_branch st =
  match parse_stmt st with
  | Ast.Block body -> body
  | s -> [ s ]

and parse_while st =
  advance st;
  expect st Token.LPAREN;
  let cond = parse_expr st in
  expect st Token.RPAREN;
  Ast.While (cond, parse_branch st)

and parse_for st =
  advance st;
  expect st Token.LPAREN;
  let init =
    if Token.equal (token st) Token.SEMI then begin
      advance st;
      None
    end
    else if Token.equal (token st) Token.VAR then Some (parse_var st)
    else begin
      let e = parse_expr st in
      expect st Token.SEMI;
      Some (Ast.Expr_stmt e)
    end
  in
  let cond =
    if Token.equal (token st) Token.SEMI then None else Some (parse_expr st)
  in
  expect st Token.SEMI;
  let update =
    if Token.equal (token st) Token.RPAREN then None else Some (parse_expr st)
  in
  expect st Token.RPAREN;
  Ast.For (init, cond, update, parse_branch st)

(* [do body while (cond);] desugars to
   [var first = true; while (first || cond) { first = false; body }] —
   the flag defers the first condition evaluation past the first
   iteration, and [continue] correctly re-tests the condition. *)
and parse_do_while st =
  advance st;
  let body = parse_branch st in
  expect st Token.WHILE;
  expect st Token.LPAREN;
  let cond = parse_expr st in
  expect st Token.RPAREN;
  ignore (accept st Token.SEMI);
  let flag = fresh_name st "do" in
  Ast.Block
    [
      Ast.Var (flag, Some (Ast.Bool true));
      Ast.While
        ( Ast.Logical (Ast.Or, Ast.Ident flag, cond),
          Ast.Expr_stmt (Ast.Assign (Ast.Lvar flag, Ast.Bool false)) :: body );
    ]

(* [switch] desugars to an if-chain with fallthrough/matched flags inside
   a single-iteration loop (so [break] exits the switch). Subset
   restrictions (checked here): case labels are literals, [default] comes
   last, and [continue] may not appear directly in a case body. *)
and parse_switch st =
  let kw_pos = pos st in
  advance st;
  expect st Token.LPAREN;
  let scrutinee = parse_expr st in
  expect st Token.RPAREN;
  expect st Token.LBRACE;
  let parse_case_body () =
    let rec loop acc =
      match token st with
      | Token.CASE | Token.DEFAULT | Token.RBRACE -> List.rev acc
      | _ -> loop (parse_stmt st :: acc)
    in
    loop []
  in
  let rec parse_cases acc =
    if accept st Token.RBRACE then List.rev acc
    else if accept st Token.CASE then begin
      let label = parse_expr st in
      (match label with
      | Ast.Number _ | Ast.String _ | Ast.Bool _ -> ()
      | _ -> parse_error kw_pos "switch case labels must be literals");
      expect st Token.COLON;
      parse_cases ((Some label, parse_case_body ()) :: acc)
    end
    else if accept st Token.DEFAULT then begin
      expect st Token.COLON;
      parse_cases ((None, parse_case_body ()) :: acc)
    end
    else parse_error (pos st) "expected case, default or } in switch"
  in
  let cases = parse_cases [] in
  let rec naked_continue = function
    | Ast.Continue -> true
    | Ast.If (_, t, e) -> List.exists naked_continue t || List.exists naked_continue e
    | Ast.Block b -> List.exists naked_continue b
    | Ast.While _ | Ast.For _ -> false
    | Ast.Var _ | Ast.Expr_stmt _ | Ast.Return _ | Ast.Break -> false
  in
  List.iteri
    (fun i (label, stmts) ->
      if List.exists naked_continue stmts then
        parse_error kw_pos "continue directly inside a switch case is not supported";
      if label = None && i <> List.length cases - 1 then
        parse_error kw_pos "default must be the last switch case")
    cases;
  let t = fresh_name st "sw" in
  let fall = fresh_name st "fall" in
  let matched = fresh_name st "hit" in
  let once = fresh_name st "once" in
  let set name v = Ast.Expr_stmt (Ast.Assign (Ast.Lvar name, Ast.Bool v)) in
  let case_stmts =
    List.concat_map
      (fun (label, stmts) ->
        match label with
        | Some l ->
          [
            Ast.If
              ( Ast.Binary (Ast.Strict_eq, Ast.Ident t, l),
                [ set fall true; set matched true ],
                [] );
            Ast.If (Ast.Ident fall, stmts, []);
          ]
        | None ->
          [ Ast.If (Ast.Logical (Ast.Or, Ast.Ident fall, Ast.Unary (Ast.Not, Ast.Ident matched)),
                    stmts, []) ])
      cases
  in
  Ast.Block
    [
      Ast.Var (t, Some scrutinee);
      Ast.Var (fall, Some (Ast.Bool false));
      Ast.Var (matched, Some (Ast.Bool false));
      Ast.Var (once, Some (Ast.Bool true));
      Ast.While (Ast.Ident once, set once false :: case_stmts);
    ]

let parse_function st : Ast.func =
  expect st Token.FUNCTION;
  let name = expect_ident st in
  expect st Token.LPAREN;
  let params =
    if accept st Token.RPAREN then []
    else begin
      let rec loop acc =
        let p = expect_ident st in
        if accept st Token.COMMA then loop (p :: acc)
        else begin
          expect st Token.RPAREN;
          List.rev (p :: acc)
        end
      in
      loop []
    end
  in
  expect st Token.LBRACE;
  let body = parse_block_tail st in
  { Ast.name; params; body }

let parse_program st : Ast.program =
  let rec loop funcs main =
    match token st with
    | Token.EOF -> { Ast.functions = List.rev funcs; main = List.rev main }
    | Token.FUNCTION -> loop (parse_function st :: funcs) main
    | _ -> loop funcs (parse_stmt st :: main)
  in
  loop [] []

let parse source =
  let tokens = Array.of_list (Lexer.tokenize source) in
  Lambda_lift.lift (parse_program { tokens; index = 0; fresh = 0 })

let parse_expression source =
  let tokens = Array.of_list (Lexer.tokenize source) in
  let st = { tokens; index = 0; fresh = 0 } in
  let e = parse_expr st in
  (match token st with
  | Token.EOF -> ()
  | t -> parse_error (pos st) "trailing %s after expression" (Token.describe t));
  e
