(** Recursive-descent parser for the mini-JS subset.

    Desugarings performed here (documented because they duplicate side
    effects of the *target* subexpressions, which the bundled programs avoid):
    - [x++] / [x--] (postfix) become [(x = x + 1) - 1] / [(x = x - 1) + 1],
      preserving old-value semantics for numbers;
    - [++x] / [--x] become [x = x ± 1];
    - [a op= b] becomes [a = a op b].

    Function declarations are only accepted at the top level; a declaration
    nested in a statement raises {!Parse_error} (see DESIGN.md §2).
    Anonymous function expressions are accepted and lambda-lifted to fresh
    top-level functions (see {!Lambda_lift} — capturing an enclosing local
    raises {!Lambda_lift.Capture_error}). [do…while] and [switch] are
    desugared here; switch restrictions: literal case labels, [default]
    last, no naked [continue] in a case body. *)

exception Parse_error of string * Token.position

(** [parse source] lexes and parses a whole program. *)
val parse : string -> Ast.program

(** [parse_expression source] parses a single expression (used by tests). *)
val parse_expression : string -> Ast.expr
