(* Precedence levels mirror Parser: larger binds tighter. Parentheses are
   emitted whenever a child's precedence is below its context's. *)

let prec_of_binop : Ast.binop -> int = function
  | Ast.Bit_or -> 5
  | Ast.Bit_xor -> 6
  | Ast.Bit_and -> 7
  | Ast.Eq | Ast.Neq | Ast.Strict_eq | Ast.Strict_neq -> 8
  | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge -> 9
  | Ast.Shl | Ast.Shr | Ast.Ushr -> 10
  | Ast.Add | Ast.Sub -> 11
  | Ast.Mul | Ast.Div | Ast.Mod -> 12

let binop_symbol : Ast.binop -> string = function
  | Ast.Add -> "+"
  | Ast.Sub -> "-"
  | Ast.Mul -> "*"
  | Ast.Div -> "/"
  | Ast.Mod -> "%"
  | Ast.Lt -> "<"
  | Ast.Le -> "<="
  | Ast.Gt -> ">"
  | Ast.Ge -> ">="
  | Ast.Eq -> "=="
  | Ast.Neq -> "!="
  | Ast.Strict_eq -> "==="
  | Ast.Strict_neq -> "!=="
  | Ast.Bit_and -> "&"
  | Ast.Bit_or -> "|"
  | Ast.Bit_xor -> "^"
  | Ast.Shl -> "<<"
  | Ast.Shr -> ">>"
  | Ast.Ushr -> ">>>"

let unop_symbol : Ast.unop -> string = function
  | Ast.Neg -> "-"
  | Ast.Not -> "!"
  | Ast.Bit_not -> "~"
  | Ast.Typeof -> "typeof "
  | Ast.To_number -> "+"

let number_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else
    (* %.17g guarantees float round-trip; shorten when %g suffices *)
    let short = Printf.sprintf "%g" f in
    if float_of_string short = f then short else Printf.sprintf "%.17g" f

let string_literal s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\000' -> Buffer.add_string buf "\\0"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

type ctx = {
  compact : bool;
  buf : Buffer.t;
}

let sp ctx = if ctx.compact then "" else " "

let add ctx s = Buffer.add_string ctx.buf s

let indent ctx depth = if not ctx.compact then add ctx (String.make (2 * depth) ' ')

let newline ctx = if not ctx.compact then add ctx "\n"

(* [prec] is the minimal precedence the context accepts without parens.
   Levels: 1 assignment, 2 conditional, 3 logical-or, 4 logical-and,
   5..12 binary, 13 unary, 14 postfix/primary. *)
let rec emit_expr ctx prec (e : Ast.expr) =
  let wrap needed body =
    if needed < prec then begin
      add ctx "(";
      body ();
      add ctx ")"
    end
    else body ()
  in
  match e with
  | Ast.Number f ->
    if f < 0.0 then wrap 13 (fun () -> add ctx (number_to_string f))
    else add ctx (number_to_string f)
  | Ast.String s -> add ctx (string_literal s)
  | Ast.Bool b -> add ctx (if b then "true" else "false")
  | Ast.Null -> add ctx "null"
  | Ast.Undefined -> add ctx "undefined"
  | Ast.Ident x -> add ctx x
  | Ast.Array_lit es ->
    add ctx "[";
    List.iteri
      (fun i e ->
        if i > 0 then add ctx ("," ^ sp ctx);
        emit_expr ctx 1 e)
      es;
    add ctx "]"
  | Ast.Object_lit fields ->
    add ctx "{";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then add ctx ("," ^ sp ctx);
        add ctx k;
        add ctx (":" ^ sp ctx);
        emit_expr ctx 1 v)
      fields;
    add ctx "}"
  | Ast.Unary (op, inner) ->
    wrap 13 (fun () ->
        add ctx (unop_symbol op);
        (* avoid gluing "- -x" into "--x" *)
        (match (op, inner) with
        | Ast.Neg, Ast.Unary (Ast.Neg, _) | Ast.Neg, Ast.Number _ -> add ctx " "
        | _ -> ());
        emit_expr ctx 13 inner)
  | Ast.Binary (op, a, b) ->
    let p = prec_of_binop op in
    wrap p (fun () ->
        emit_expr ctx p a;
        add ctx (sp ctx ^ binop_symbol op ^ sp ctx);
        emit_expr ctx (p + 1) b)
  | Ast.Logical (Ast.And, a, b) ->
    wrap 4 (fun () ->
        emit_expr ctx 5 a;
        add ctx (sp ctx ^ "&&" ^ sp ctx);
        emit_expr ctx 4 b)
  | Ast.Logical (Ast.Or, a, b) ->
    wrap 3 (fun () ->
        emit_expr ctx 4 a;
        add ctx (sp ctx ^ "||" ^ sp ctx);
        emit_expr ctx 3 b)
  | Ast.Conditional (c, t, e) ->
    wrap 2 (fun () ->
        emit_expr ctx 3 c;
        add ctx (sp ctx ^ "?" ^ sp ctx);
        emit_expr ctx 1 t;
        add ctx (sp ctx ^ ":" ^ sp ctx);
        emit_expr ctx 1 e)
  | Ast.Assign (lv, rhs) ->
    wrap 1 (fun () ->
        emit_lvalue ctx lv;
        add ctx (sp ctx ^ "=" ^ sp ctx);
        emit_expr ctx 1 rhs)
  | Ast.Call (callee, args) ->
    emit_expr ctx 14 callee;
    add ctx "(";
    List.iteri
      (fun i a ->
        if i > 0 then add ctx ("," ^ sp ctx);
        emit_expr ctx 1 a)
      args;
    add ctx ")"
  | Ast.Member (o, p) ->
    emit_expr ctx 14 o;
    add ctx ".";
    add ctx p
  | Ast.Index (o, i) ->
    emit_expr ctx 14 o;
    add ctx "[";
    emit_expr ctx 1 i;
    add ctx "]"
  | Ast.Func_expr (params, body) ->
    (* only reachable when printing an un-lifted AST (tests); wrapped in
       parens so statement position never reads as a declaration *)
    add ctx "(function(";
    List.iteri
      (fun i p ->
        if i > 0 then add ctx ("," ^ sp ctx);
        add ctx p)
      params;
    add ctx (")" ^ sp ctx ^ "{");
    newline ctx;
    List.iter (emit_stmt ctx 1) body;
    add ctx "})"

and emit_lvalue ctx = function
  | Ast.Lvar x -> add ctx x
  | Ast.Lindex (o, i) ->
    emit_expr ctx 14 o;
    add ctx "[";
    emit_expr ctx 1 i;
    add ctx "]"
  | Ast.Lmember (o, p) ->
    emit_expr ctx 14 o;
    add ctx ".";
    add ctx p

and emit_stmt ctx depth (s : Ast.stmt) =
  match s with
  | Ast.Var (x, init) ->
    indent ctx depth;
    add ctx ("var " ^ x);
    (match init with
    | Some e ->
      add ctx (sp ctx ^ "=" ^ sp ctx);
      emit_expr ctx 1 e
    | None -> ());
    add ctx ";";
    newline ctx
  | Ast.Expr_stmt e ->
    indent ctx depth;
    emit_expr ctx 1 e;
    add ctx ";";
    newline ctx
  | Ast.If (c, t, e) ->
    indent ctx depth;
    add ctx ("if" ^ sp ctx ^ "(");
    emit_expr ctx 1 c;
    add ctx (")" ^ sp ctx ^ "{");
    newline ctx;
    List.iter (emit_stmt ctx (depth + 1)) t;
    indent ctx depth;
    add ctx "}";
    if e <> [] then begin
      add ctx (sp ctx ^ "else" ^ sp ctx ^ "{");
      newline ctx;
      List.iter (emit_stmt ctx (depth + 1)) e;
      indent ctx depth;
      add ctx "}"
    end;
    newline ctx
  | Ast.While (c, body) ->
    indent ctx depth;
    add ctx ("while" ^ sp ctx ^ "(");
    emit_expr ctx 1 c;
    add ctx (")" ^ sp ctx ^ "{");
    newline ctx;
    List.iter (emit_stmt ctx (depth + 1)) body;
    indent ctx depth;
    add ctx "}";
    newline ctx
  | Ast.For (init, cond, update, body) ->
    indent ctx depth;
    add ctx ("for" ^ sp ctx ^ "(");
    (match init with
    | Some (Ast.Var (x, e)) ->
      add ctx ("var " ^ x);
      (match e with
      | Some e ->
        add ctx (sp ctx ^ "=" ^ sp ctx);
        emit_expr ctx 1 e
      | None -> ())
    | Some (Ast.Expr_stmt e) -> emit_expr ctx 1 e
    | Some (Ast.Block decls) ->
      (* multiple declarators: var a = 1, b = 2 *)
      List.iteri
        (fun i d ->
          match d with
          | Ast.Var (x, e) ->
            if i = 0 then add ctx "var " else add ctx ("," ^ sp ctx);
            add ctx x;
            (match e with
            | Some e ->
              add ctx (sp ctx ^ "=" ^ sp ctx);
              emit_expr ctx 1 e
            | None -> ())
          | _ -> ())
        decls
    | Some _ | None -> ());
    add ctx ";";
    (match cond with
    | Some c ->
      if not ctx.compact then add ctx " ";
      emit_expr ctx 1 c
    | None -> ());
    add ctx ";";
    (match update with
    | Some u ->
      if not ctx.compact then add ctx " ";
      emit_expr ctx 1 u
    | None -> ());
    add ctx (")" ^ sp ctx ^ "{");
    newline ctx;
    List.iter (emit_stmt ctx (depth + 1)) body;
    indent ctx depth;
    add ctx "}";
    newline ctx
  | Ast.Return None ->
    indent ctx depth;
    add ctx "return;";
    newline ctx
  | Ast.Return (Some e) ->
    indent ctx depth;
    add ctx "return ";
    emit_expr ctx 1 e;
    add ctx ";";
    newline ctx
  | Ast.Break ->
    indent ctx depth;
    add ctx "break;";
    newline ctx
  | Ast.Continue ->
    indent ctx depth;
    add ctx "continue;";
    newline ctx
  | Ast.Block body ->
    indent ctx depth;
    add ctx "{";
    newline ctx;
    List.iter (emit_stmt ctx (depth + 1)) body;
    indent ctx depth;
    add ctx "}";
    newline ctx

let emit_func ctx (f : Ast.func) =
  add ctx ("function " ^ f.Ast.name ^ "(");
  List.iteri
    (fun i p ->
      if i > 0 then add ctx ("," ^ sp ctx);
      add ctx p)
    f.Ast.params;
  add ctx (")" ^ sp ctx ^ "{");
  newline ctx;
  List.iter (emit_stmt ctx 1) f.Ast.body;
  add ctx "}";
  newline ctx

let with_ctx compact f =
  let ctx = { compact; buf = Buffer.create 256 } in
  f ctx;
  Buffer.contents ctx.buf

let expr_to_string ?(compact = false) e = with_ctx compact (fun ctx -> emit_expr ctx 1 e)

let stmt_to_string ?(compact = false) s = with_ctx compact (fun ctx -> emit_stmt ctx 0 s)

let func_to_string ?(compact = false) f = with_ctx compact (fun ctx -> emit_func ctx f)

let program_to_string ?(compact = false) (p : Ast.program) =
  with_ctx compact (fun ctx ->
      List.iter
        (fun f ->
          emit_func ctx f;
          newline ctx)
        p.Ast.functions;
      List.iter (emit_stmt ctx 0) p.Ast.main)
