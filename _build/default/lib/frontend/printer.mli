(** AST → JavaScript source.

    Two modes: [~compact:false] (default) emits indented, readable source;
    [~compact:true] emits minified source (no layout, minimal separators),
    which is what the Terser-style "minifying" variant generator prints.
    Output re-parses to an equal AST (round-trip property, tested). *)

val expr_to_string : ?compact:bool -> Ast.expr -> string
val stmt_to_string : ?compact:bool -> Ast.stmt -> string
val func_to_string : ?compact:bool -> Ast.func -> string
val program_to_string : ?compact:bool -> Ast.program -> string
