(* Lexical tokens of the mini-JS subset. The lexer attaches a source
   position to each token; the parser reports errors in terms of it. *)

type position = {
  line : int;
  column : int;
}
[@@deriving show, eq]

type t =
  | NUMBER of float
  | STRING of string
  | IDENT of string
  (* keywords *)
  | VAR
  | FUNCTION
  | IF
  | ELSE
  | WHILE
  | FOR
  | RETURN
  | BREAK
  | CONTINUE
  | DO
  | SWITCH
  | CASE
  | DEFAULT
  | TRUE
  | FALSE
  | NULL
  | UNDEFINED
  | TYPEOF
  (* punctuation *)
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | SEMI
  | COMMA
  | COLON
  | QUESTION
  | DOT
  (* operators *)
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | LT
  | LE
  | GT
  | GE
  | EQEQ
  | BANGEQ
  | EQEQEQ
  | BANGEQEQ
  | AMP
  | PIPE
  | CARET
  | TILDE
  | BANG
  | SHL
  | SHR
  | USHR
  | AMPAMP
  | PIPEPIPE
  | ASSIGN
  | PLUS_ASSIGN
  | MINUS_ASSIGN
  | STAR_ASSIGN
  | SLASH_ASSIGN
  | PERCENT_ASSIGN
  | AMP_ASSIGN
  | PIPE_ASSIGN
  | CARET_ASSIGN
  | SHL_ASSIGN
  | SHR_ASSIGN
  | PLUSPLUS
  | MINUSMINUS
  | EOF
[@@deriving show, eq]

type spanned = {
  token : t;
  pos : position;
}
[@@deriving show, eq]

let keyword_of_string = function
  | "var" | "let" | "const" -> Some VAR
  | "function" -> Some FUNCTION
  | "if" -> Some IF
  | "else" -> Some ELSE
  | "while" -> Some WHILE
  | "for" -> Some FOR
  | "return" -> Some RETURN
  | "break" -> Some BREAK
  | "continue" -> Some CONTINUE
  | "do" -> Some DO
  | "switch" -> Some SWITCH
  | "case" -> Some CASE
  | "default" -> Some DEFAULT
  | "true" -> Some TRUE
  | "false" -> Some FALSE
  | "null" -> Some NULL
  | "undefined" -> Some UNDEFINED
  | "typeof" -> Some TYPEOF
  | _ -> None

let describe = function
  | NUMBER f -> Printf.sprintf "number %g" f
  | STRING s -> Printf.sprintf "string %S" s
  | IDENT s -> Printf.sprintf "identifier %s" s
  | t -> show t
