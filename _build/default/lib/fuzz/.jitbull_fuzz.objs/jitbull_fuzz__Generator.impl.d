lib/fuzz/generator.ml: Buffer List Printf Random String
