lib/fuzz/generator.mli:
