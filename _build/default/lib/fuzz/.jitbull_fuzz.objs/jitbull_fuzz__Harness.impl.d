lib/fuzz/harness.ml: Generator Jitbull_core Jitbull_jit List Oracle Printf
