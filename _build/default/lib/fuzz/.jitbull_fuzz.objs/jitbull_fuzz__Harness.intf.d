lib/fuzz/harness.mli: Jitbull_core Jitbull_jit Jitbull_passes Oracle
