lib/fuzz/oracle.ml: Jitbull_bytecode Jitbull_frontend Jitbull_interp Jitbull_jit Jitbull_runtime List String
