lib/fuzz/oracle.mli: Jitbull_jit
