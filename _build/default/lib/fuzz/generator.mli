(** Seeded program generators for differential testing and exploit-shape
    fuzzing (the paper's §IV-A envisions feeding a JIT fuzzer's crashing
    outputs straight into JITBULL's database; this module is that fuzzer).

    Two profiles:
    - {!benign}: type-stable, terminating, in-bounds programs. All
      execution tiers — on {e any} engine configuration, vulnerable or
      not — must agree on them; used by the differential property tests.
    - {!aggressive}: composes the memory-unsafe gadget shapes the modeled
      CVEs exploit (warm typed array accesses, then a shrink between two
      same-index accesses, stale-length loops, constant-index accesses to
      literal arrays, stores after helper calls that resize). On a
      patched engine they are still semantically safe (guards bail out);
      on a vulnerable engine some of them corrupt the simulated heap —
      exactly the crashing inputs a fuzzer hands to JITBULL. *)

val benign : seed:int -> string

val aggressive : seed:int -> string
