module Engine = Jitbull_jit.Engine
module Db = Jitbull_core.Db

type finding = {
  seed : int;
  source : string;
  verdict : Oracle.verdict;
}

type report = {
  total : int;
  agreements : int;
  signals : finding list;
}

let campaign ~profile ~seeds ?config () =
  let generate seed =
    match profile with
    | `Benign -> Generator.benign ~seed
    | `Aggressive -> Generator.aggressive ~seed
  in
  let total = ref 0 in
  let agreements = ref 0 in
  let signals = ref [] in
  List.iter
    (fun seed ->
      incr total;
      let source = generate seed in
      let verdict = Oracle.run ?config source in
      if Oracle.is_exploit_signal verdict then signals := { seed; source; verdict } :: !signals
      else
        match verdict with
        | Oracle.Agree _ -> incr agreements
        | _ -> ())
    seeds;
  { total = !total; agreements = !agreements; signals = List.rev !signals }

let auto_harvest ~vulns ~db findings =
  List.fold_left
    (fun acc (f : finding) ->
      acc + Db.harvest db ~cve:(Printf.sprintf "FUZZ-%d" f.seed) ~vulns f.source)
    0 findings
