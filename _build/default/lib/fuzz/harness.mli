(** Fuzzing campaigns, including the paper's §IV-A pipeline: "feed the
    output of JIT fuzzers directly to [JITBULL's] database — as soon as a
    crashing code example is detected, JITBULL will be able to
    automatically prevent similar exploit codes from running". *)

type finding = {
  seed : int;
  source : string;
  verdict : Oracle.verdict;
}

type report = {
  total : int;
  agreements : int;
  signals : finding list;  (** exploit signals, oldest first *)
}

(** [campaign ~profile ~seeds ?config ()] runs the generator over [seeds]
    and classifies each program. [`Benign] programs are expected to agree
    on any engine; [`Aggressive] programs surface exploit signals when
    [config] carries active vulnerabilities. *)
val campaign :
  profile:[ `Benign | `Aggressive ] ->
  seeds:int list ->
  ?config:Jitbull_jit.Engine.config ->
  unit ->
  report

(** [auto_harvest ~vulns ~db findings] implements the §IV-A loop: install
    the DNA of every signal-producing input into [db] (CVE ids are
    synthesized as ["FUZZ-<seed>"]). Returns the number of DNA entries
    added. *)
val auto_harvest :
  vulns:Jitbull_passes.Vuln_config.t -> db:Jitbull_core.Db.t -> finding list -> int
