module Engine = Jitbull_jit.Engine
module Interp = Jitbull_interp.Interp
module Vm = Jitbull_bytecode.Vm
module Compiler = Jitbull_bytecode.Compiler
module Parser = Jitbull_frontend.Parser
module Errors = Jitbull_runtime.Errors

type verdict =
  | Agree of string
  | Mismatch of {
      interp : string;
      vm : string;
      jit : string;
    }
  | Crash of string
  | Shellcode of string
  | Pwned of string
  | Runtime_error of string

let is_exploit_signal = function
  | Crash _ | Shellcode _ | Pwned _ | Mismatch _ -> true
  | Agree _ | Runtime_error _ -> false

let verdict_summary = function
  | Agree _ -> "agree"
  | Mismatch _ -> "MISMATCH"
  | Crash m -> "CRASH: " ^ m
  | Shellcode m -> "SHELLCODE: " ^ m
  | Pwned m -> "PWNED: " ^ m
  | Runtime_error m -> "runtime error: " ^ m

let has_pwned_line output =
  String.split_on_char '\n' output
  |> List.exists (fun l -> String.length l >= 5 && String.sub l 0 5 = "PWNED")

let default_config =
  { Engine.default_config with Engine.baseline_threshold = 2; ion_threshold = 4 }

let run ?(config = default_config) source =
  match Interp.run_source source with
  | exception Errors.Type_error m -> Runtime_error m
  | { Interp.output = reference; _ } -> (
    let vm_out = Vm.run_program (Compiler.compile (Parser.parse source)) in
    match Engine.run_source config source with
    | exception Errors.Crash m -> Crash m
    | exception Errors.Shellcode_executed m -> Shellcode m
    | jit_out, _ ->
      if has_pwned_line jit_out && not (has_pwned_line reference) then Pwned "exploit marker"
      else if String.equal reference vm_out && String.equal reference jit_out then
        Agree reference
      else Mismatch { interp = reference; vm = vm_out; jit = jit_out })
