(** Differential oracle: run one program on the reference interpreter, the
    bytecode VM and the tiered JIT, and classify the outcome. *)

type verdict =
  | Agree of string  (** all tiers printed this *)
  | Mismatch of {
      interp : string;
      vm : string;
      jit : string;
    }  (** a miscompilation signal *)
  | Crash of string  (** JITed code accessed memory outside the heap *)
  | Shellcode of string  (** the simulated JIT code pointer was hijacked *)
  | Pwned of string  (** the program itself reported corruption (PWNED line) *)
  | Runtime_error of string  (** a JS-level error on the reference tier too *)

val is_exploit_signal : verdict -> bool
(** [Crash], [Shellcode], [Pwned] or [Mismatch] — the outcomes a fuzzing
    campaign reports (and, per the paper's §IV-A, the inputs whose DNA is
    worth installing). *)

val verdict_summary : verdict -> string

(** [run ?config source] — [config] defaults to an aggressive-threshold
    engine with no vulnerabilities (a patched engine). The interpreter and
    VM tiers always run patched; only the JIT tier uses [config]. *)
val run : ?config:Jitbull_jit.Engine.config -> string -> verdict
