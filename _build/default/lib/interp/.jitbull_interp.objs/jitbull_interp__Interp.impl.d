lib/interp/interp.ml: Array Hashtbl Jitbull_frontend Jitbull_runtime List Option String
