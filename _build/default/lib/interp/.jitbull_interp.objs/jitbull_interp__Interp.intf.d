lib/interp/interp.mli: Jitbull_frontend Jitbull_runtime
