(** Reference tree-walking interpreter.

    This tier exists as the semantic oracle: the bytecode VM and the JIT
    (at every optimization level) must observably agree with it, which the
    property-based differential tests enforce. It is deliberately simple
    and never performs the unchecked heap accesses JITed code does.

    Scoping: [var]s are hoisted to function entry; assignment to an
    undeclared name creates/updates a global, as in sloppy-mode JS.
    Reading a never-defined variable raises {!Jitbull_runtime.Errors.Type_error}. *)

exception Timeout

type outcome = {
  result : Jitbull_runtime.Value.t;  (** value of the last top-level expression statement *)
  output : string;  (** everything [print]ed *)
}

(** [run ?realm ?max_steps program] executes a parsed program. [max_steps]
    bounds the number of statement/expression evaluations (default: no
    bound) and raises {!Timeout} when exceeded — used to keep generated
    differential-test programs finite. A fresh deterministic realm is
    created when none is supplied. *)
val run :
  ?realm:Jitbull_runtime.Realm.t ->
  ?max_steps:int ->
  Jitbull_frontend.Ast.program ->
  outcome

(** [run_source ?realm ?max_steps source] parses then runs. *)
val run_source :
  ?realm:Jitbull_runtime.Realm.t -> ?max_steps:int -> string -> outcome
