lib/jit/engine.ml: Array Hashtbl Jitbull_bytecode Jitbull_frontend Jitbull_lir Jitbull_mir Jitbull_passes Jitbull_runtime List Logs String
