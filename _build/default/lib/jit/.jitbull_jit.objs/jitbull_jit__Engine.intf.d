lib/jit/engine.mli: Jitbull_bytecode Jitbull_mir Jitbull_passes Jitbull_runtime
