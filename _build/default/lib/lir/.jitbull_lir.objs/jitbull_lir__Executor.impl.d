lib/lir/executor.ml: Array Float Format Hashtbl Jitbull_frontend Jitbull_mir Jitbull_runtime Lir String
