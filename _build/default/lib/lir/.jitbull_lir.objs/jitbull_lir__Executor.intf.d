lib/lir/executor.mli: Jitbull_runtime Lir
