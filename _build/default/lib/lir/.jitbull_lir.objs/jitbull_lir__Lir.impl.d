lib/lir/lir.ml: Array Buffer Jitbull_mir Jitbull_runtime Printf
