lib/lir/lower.ml: Array Format Hashtbl Jitbull_mir Jitbull_runtime Lir List
