lib/lir/lower.mli: Jitbull_mir Lir
