lib/lir/peephole.ml: Array Fun Lir
