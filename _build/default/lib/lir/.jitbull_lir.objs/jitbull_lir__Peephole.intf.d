lib/lir/peephole.mli: Lir
