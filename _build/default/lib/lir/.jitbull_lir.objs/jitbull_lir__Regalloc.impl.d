lib/lir/regalloc.ml: Array Int Lir List Queue Set
