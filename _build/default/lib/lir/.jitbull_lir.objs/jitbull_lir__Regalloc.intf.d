lib/lir/regalloc.mli: Lir
