(* Low-level IR — the register machine our "machine code" executor runs
   (steps 5–7 of the paper's Fig. 1: LIR generation, LIR passes, codegen).

   Instructions are flat records with integer operand fields so the
   executor's dispatch loop stays allocation-free on the hot paths.
   Register numbers below {!machine_registers} model machine registers;
   higher numbers are spill slots — the executor addresses both uniformly,
   but the register allocator works to keep hot values under the
   boundary, and [spill_count] is reported by the engine's statistics. *)

module Mir = Jitbull_mir.Mir
module Value = Jitbull_runtime.Value

let machine_registers = 12

type kind =
  | Kconst            (* dst <- consts.(imm) *)
  | Kparam            (* dst <- argument imm *)
  | Kmove             (* dst <- a *)
  | Kunbox_number     (* dst <- a, bail unless number *)
  | Kunbox_int32      (* dst <- a, bail unless int32 *)
  | Kguard_array      (* dst <- a, bail unless array *)
  | Kbounds_check     (* dst <- a, bail unless 0 <= a < b *)
  | Kadd              (* dst <- a + b (generic JS +) *)
  | Kbin of Mir.num_binop    (* dst <- a op b (numeric) *)
  | Kcompare of Mir.compare_op
  | Knegate
  | Kbitnot
  | Knot
  | Ktypeof
  | Ktonumber
  | Knew_array        (* dst <- fresh array of length imm *)
  | Knew_object       (* dst <- fresh object; field names in fields.(imm) *)
  | Kelements         (* dst <- elements handle of array a *)
  | Kinit_length      (* dst <- initialized length of elements a *)
  | Kload_element     (* dst <- a[b] unchecked *)
  | Kstore_element    (* a[b] <- c unchecked *)
  | Karray_length     (* dst <- a.length *)
  | Kset_array_length (* a.length <- b *)
  | Karray_push       (* dst <- push(a, b) *)
  | Karray_pop        (* dst <- pop(a) *)
  | Kget_prop         (* dst <- a.names.(imm) *)
  | Kset_prop         (* a.names.(imm) <- b *)
  | Kget_index_gen    (* dst <- a[b] checked generic *)
  | Kset_index_gen    (* a[b] <- c checked generic *)
  | Kload_global      (* dst <- global names.(imm) *)
  | Kstore_global     (* global names.(imm) <- a *)
  | Kdeclare_global   (* define global names.(imm) as undefined if absent *)
  | Kcall             (* dst <- call a with arg regs call_args.(imm) *)
  | Kcall_method      (* dst <- method names.(imm2) on a, args call_args.(imm) *)
  | Kgoto             (* pc <- imm *)
  | Ktest             (* pc <- if truthy a then imm else b *)
  | Kreturn           (* return a *)

type inst = {
  mutable kind : kind;
  mutable dst : int;
  mutable a : int;
  mutable b : int;
  mutable c : int;
  mutable imm : int;
  mutable imm2 : int;
}

type func = {
  name : string;
  arity : int;
  mutable code : inst array;
  consts : Value.t array;
  names : string array;
  call_args : int array array;
  fields : string list array;
  mutable n_regs : int;        (* registers+slots after allocation *)
  mutable spill_count : int;
}

let make_inst kind = { kind; dst = -1; a = -1; b = -1; c = -1; imm = -1; imm2 = -1 }

let kind_name = function
  | Kconst -> "const"
  | Kparam -> "param"
  | Kmove -> "move"
  | Kunbox_number -> "unbox_number"
  | Kunbox_int32 -> "unbox_int32"
  | Kguard_array -> "guard_array"
  | Kbounds_check -> "bounds_check"
  | Kadd -> "add"
  | Kbin _ -> "bin"
  | Kcompare _ -> "compare"
  | Knegate -> "negate"
  | Kbitnot -> "bitnot"
  | Knot -> "not"
  | Ktypeof -> "typeof"
  | Ktonumber -> "tonumber"
  | Knew_array -> "new_array"
  | Knew_object -> "new_object"
  | Kelements -> "elements"
  | Kinit_length -> "init_length"
  | Kload_element -> "load_element"
  | Kstore_element -> "store_element"
  | Karray_length -> "array_length"
  | Kset_array_length -> "set_array_length"
  | Karray_push -> "array_push"
  | Karray_pop -> "array_pop"
  | Kget_prop -> "get_prop"
  | Kset_prop -> "set_prop"
  | Kget_index_gen -> "get_index_gen"
  | Kset_index_gen -> "set_index_gen"
  | Kload_global -> "load_global"
  | Kstore_global -> "store_global"
  | Kdeclare_global -> "declare_global"
  | Kcall -> "call"
  | Kcall_method -> "call_method"
  | Kgoto -> "goto"
  | Ktest -> "test"
  | Kreturn -> "return"

let to_string (f : func) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "lir %s/%d (%d regs, %d spills)\n" f.name f.arity f.n_regs f.spill_count);
  Array.iteri
    (fun i inst ->
      Buffer.add_string buf
        (Printf.sprintf "  %4d  %-16s dst=%d a=%d b=%d c=%d imm=%d\n" i (kind_name inst.kind)
           inst.dst inst.a inst.b inst.c inst.imm))
    f.code;
  Buffer.contents buf

(* Raised by guards when a dynamic check fails: the engine re-executes the
   call in the interpreter tier (deoptimization). *)
exception Bailout of string
