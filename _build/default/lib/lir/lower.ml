module Mir = Jitbull_mir.Mir
module Value = Jitbull_runtime.Value

exception Lowering_error of string

let lowering_error fmt = Format.kasprintf (fun s -> raise (Lowering_error s)) fmt

(* Interning helpers over growable tables. *)
type 'a interner = {
  mutable items : 'a list;  (* reversed *)
  mutable count : int;
  index : ('a, int) Hashtbl.t;
}

let new_interner () = { items = []; count = 0; index = Hashtbl.create 16 }

let intern t x =
  match Hashtbl.find_opt t.index x with
  | Some i -> i
  | None ->
    let i = t.count in
    t.items <- x :: t.items;
    t.count <- i + 1;
    Hashtbl.add t.index x i;
    i

let to_array t = Array.of_list (List.rev t.items)

(* Parallel copy resolution: emit a sequence of moves implementing the
   simultaneous assignment [moves] = [(dst, src); ...]; cycles are broken
   through [fresh_temp]. *)
let sequentialize_moves moves ~fresh_temp =
  let pending = ref (List.filter (fun (d, s) -> d <> s) moves) in
  let out = ref [] in
  let emit d s = out := (d, s) :: !out in
  while !pending <> [] do
    let is_blocked (d, _) = List.exists (fun (_, s) -> s = d) !pending in
    match List.partition is_blocked !pending with
    | blocked, [] -> (
      (* all blocked: a cycle; rotate through a temp *)
      match blocked with
      | (d, s) :: rest ->
        let t = fresh_temp () in
        emit t d;  (* save dst *)
        emit d s;
        pending := List.map (fun (d', s') -> if s' = d then (d', t) else (d', s')) rest
      | [] -> assert false)
    | blocked, ready ->
      List.iter (fun (d, s) -> emit d s) ready;
      pending := blocked
  done;
  List.rev !out

let lower (g : Mir.t) : Lir.func =
  let blocks = g.Mir.blocks in
  (* virtual register per MIR instruction *)
  let vreg_of : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let next_vreg = ref 0 in
  let fresh_vreg () =
    let v = !next_vreg in
    incr next_vreg;
    v
  in
  List.iter
    (fun (i : Mir.instr) -> Hashtbl.replace vreg_of i.Mir.iid (fresh_vreg ()))
    (Mir.all_instructions g);
  let vr (i : Mir.instr) = Hashtbl.find vreg_of i.Mir.iid in
  let consts = new_interner () in
  let names = new_interner () in
  let call_args = ref [] in
  let call_args_count = ref 0 in
  let add_call_args regs =
    let i = !call_args_count in
    call_args := regs :: !call_args;
    incr call_args_count;
    i
  in
  let fields = ref [] in
  let fields_count = ref 0 in
  let add_fields fl =
    let i = !fields_count in
    fields := fl :: !fields;
    incr fields_count;
    i
  in
  (* per-block instruction lists; branch targets patched after layout *)
  let emit_block (b : Mir.block) =
    let insts = ref [] in
    let emit kind ~dst ?(a = -1) ?(b = -1) ?(c = -1) ?(imm = -1) ?(imm2 = -1) () =
      let i = Lir.make_inst kind in
      i.Lir.dst <- dst;
      i.Lir.a <- a;
      i.Lir.b <- b;
      i.Lir.c <- c;
      i.Lir.imm <- imm;
      i.Lir.imm2 <- imm2;
      insts := i :: !insts;
      i
    in
    let pending_branch = ref None in
    List.iter
      (fun (i : Mir.instr) ->
        let dst = vr i in
        let ops = Array.of_list (List.map vr i.Mir.operands) in
        let op n = ops.(n) in
        match i.Mir.opcode with
        | Mir.Phi -> ()  (* destructed below via predecessor moves *)
        | Mir.Parameter n -> ignore (emit Lir.Kparam ~dst ~imm:n ())
        | Mir.Constant v -> ignore (emit Lir.Kconst ~dst ~imm:(intern consts v) ())
        | Mir.Unbox_number -> ignore (emit Lir.Kunbox_number ~dst ~a:(op 0) ())
        | Mir.Unbox_int32 -> ignore (emit Lir.Kunbox_int32 ~dst ~a:(op 0) ())
        | Mir.Guard_array -> ignore (emit Lir.Kguard_array ~dst ~a:(op 0) ())
        | Mir.Bounds_check -> ignore (emit Lir.Kbounds_check ~dst ~a:(op 0) ~b:(op 1) ())
        | Mir.Add -> ignore (emit Lir.Kadd ~dst ~a:(op 0) ~b:(op 1) ())
        | Mir.Bin_num nop -> ignore (emit (Lir.Kbin nop) ~dst ~a:(op 0) ~b:(op 1) ())
        | Mir.Compare cop -> ignore (emit (Lir.Kcompare cop) ~dst ~a:(op 0) ~b:(op 1) ())
        | Mir.Negate -> ignore (emit Lir.Knegate ~dst ~a:(op 0) ())
        | Mir.Bit_not -> ignore (emit Lir.Kbitnot ~dst ~a:(op 0) ())
        | Mir.Not -> ignore (emit Lir.Knot ~dst ~a:(op 0) ())
        | Mir.Typeof -> ignore (emit Lir.Ktypeof ~dst ~a:(op 0) ())
        | Mir.To_number -> ignore (emit Lir.Ktonumber ~dst ~a:(op 0) ())
        | Mir.New_array n -> ignore (emit Lir.Knew_array ~dst ~imm:n ())
        | Mir.New_object fl -> ignore (emit Lir.Knew_object ~dst ~imm:(add_fields fl) ())
        | Mir.Elements -> ignore (emit Lir.Kelements ~dst ~a:(op 0) ())
        | Mir.Initialized_length -> ignore (emit Lir.Kinit_length ~dst ~a:(op 0) ())
        | Mir.Load_element -> ignore (emit Lir.Kload_element ~dst ~a:(op 0) ~b:(op 1) ())
        | Mir.Store_element ->
          ignore (emit Lir.Kstore_element ~dst:(-1) ~a:(op 0) ~b:(op 1) ~c:(op 2) ())
        | Mir.Array_length -> ignore (emit Lir.Karray_length ~dst ~a:(op 0) ())
        | Mir.Set_array_length ->
          ignore (emit Lir.Kset_array_length ~dst:(-1) ~a:(op 0) ~b:(op 1) ())
        | Mir.Array_push -> ignore (emit Lir.Karray_push ~dst ~a:(op 0) ~b:(op 1) ())
        | Mir.Array_pop -> ignore (emit Lir.Karray_pop ~dst ~a:(op 0) ())
        | Mir.Get_prop name ->
          ignore (emit Lir.Kget_prop ~dst ~a:(op 0) ~imm:(intern names name) ())
        | Mir.Set_prop name ->
          ignore (emit Lir.Kset_prop ~dst:(-1) ~a:(op 0) ~b:(op 1) ~imm:(intern names name) ())
        | Mir.Get_index_generic -> ignore (emit Lir.Kget_index_gen ~dst ~a:(op 0) ~b:(op 1) ())
        | Mir.Set_index_generic ->
          ignore (emit Lir.Kset_index_gen ~dst:(-1) ~a:(op 0) ~b:(op 1) ~c:(op 2) ())
        | Mir.Load_global name -> ignore (emit Lir.Kload_global ~dst ~imm:(intern names name) ())
        | Mir.Store_global name ->
          ignore (emit Lir.Kstore_global ~dst:(-1) ~a:(op 0) ~imm:(intern names name) ())
        | Mir.Declare_global name ->
          ignore (emit Lir.Kdeclare_global ~dst:(-1) ~imm:(intern names name) ())
        | Mir.Call _ ->
          let args = Array.sub ops 1 (Array.length ops - 1) in
          ignore (emit Lir.Kcall ~dst ~a:(op 0) ~imm:(add_call_args args) ())
        | Mir.Call_method (name, _) ->
          let args = Array.sub ops 1 (Array.length ops - 1) in
          ignore
            (emit Lir.Kcall_method ~dst ~a:(op 0) ~imm:(add_call_args args)
               ~imm2:(intern names name) ())
        | Mir.Goto _ | Mir.Test _ | Mir.Return | Mir.Unreachable ->
          (* insert phi-moves for successors before the branch *)
          (match i.Mir.opcode with
          | Mir.Goto target when target.Mir.phis <> [] ->
            let position =
              let rec find k = function
                | [] -> lowering_error "block%d not a pred of its goto target" b.Mir.bid
                | p :: rest -> if p == b then k else find (k + 1) rest
              in
              find 0 target.Mir.preds
            in
            let moves =
              List.map
                (fun (phi : Mir.instr) -> (vr phi, vr (List.nth phi.Mir.operands position)))
                target.Mir.phis
            in
            List.iter
              (fun (d, s) -> ignore (emit Lir.Kmove ~dst:d ~a:s ()))
              (sequentialize_moves moves ~fresh_temp:fresh_vreg)
          | Mir.Test (t, f) when t.Mir.phis <> [] || f.Mir.phis <> [] ->
            lowering_error "critical edge: test successor of block%d has phis" b.Mir.bid
          | _ -> ());
          (match i.Mir.opcode with
          | Mir.Goto target ->
            pending_branch := Some (`Goto target.Mir.bid);
            ignore (emit Lir.Kgoto ~dst:(-1) ())
          | Mir.Test (t, f) ->
            pending_branch := Some (`Test (t.Mir.bid, f.Mir.bid));
            ignore (emit Lir.Ktest ~dst:(-1) ~a:(op 0) ())
          | Mir.Return -> ignore (emit Lir.Kreturn ~dst:(-1) ~a:(op 0) ())
          | Mir.Unreachable -> ignore (emit Lir.Kreturn ~dst:(-1) ~a:(-1) ())
          | _ -> ()))
      (Mir.instructions b);
    (List.rev !insts, !pending_branch)
  in
  let lowered = List.map (fun b -> (b, emit_block b)) blocks in
  (* layout: concatenate block code, record start offsets *)
  let starts : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let code = ref [] in
  let offset = ref 0 in
  List.iter
    (fun ((b : Mir.block), (insts, _)) ->
      Hashtbl.replace starts b.Mir.bid !offset;
      offset := !offset + List.length insts;
      code := List.rev_append insts !code)
    lowered;
  let code = Array.of_list (List.rev !code) in
  (* patch branch targets *)
  let pos = ref 0 in
  List.iter
    (fun ((_ : Mir.block), (insts, branch)) ->
      let n = List.length insts in
      (match branch with
      | Some (`Goto bid) ->
        let inst = code.(!pos + n - 1) in
        inst.Lir.imm <- Hashtbl.find starts bid
      | Some (`Test (tbid, fbid)) ->
        let inst = code.(!pos + n - 1) in
        inst.Lir.imm <- Hashtbl.find starts tbid;
        inst.Lir.b <- Hashtbl.find starts fbid
      | None -> ());
      pos := !pos + n)
    lowered;
  {
    Lir.name = g.Mir.name;
    arity = g.Mir.arity;
    code;
    consts = to_array consts;
    names = to_array names;
    call_args = Array.of_list (List.rev !call_args);
    fields = Array.of_list (List.rev !fields);
    n_regs = !next_vreg;
    spill_count = 0;
  }
