(** MIR → LIR lowering with SSA destruction.

    Each MIR instruction gets a virtual register; phis are destructed into
    parallel-copy move groups placed at the end of each predecessor (legal
    because the mandatory critical-edge-splitting pass guarantees every
    predecessor of a phi block has a single successor). Copy cycles are
    broken with a temporary register. The block graph is then linearized
    with explicit jumps, and register numbers remain virtual until
    {!Regalloc.allocate} rewrites them. *)

exception Lowering_error of string

val lower : Jitbull_mir.Mir.t -> Lir.func
