(* Compact [code] by dropping instructions where [dead.(pc)]; branch
   targets are redirected to the next kept instruction at-or-after the
   original target (legal because only no-ops are dropped). *)
let compact (f : Lir.func) (dead : bool array) =
  let n = Array.length f.Lir.code in
  (* new_index.(pc) = index of the next kept instruction >= pc *)
  let new_index = Array.make (n + 1) 0 in
  let kept = ref 0 in
  for pc = 0 to n - 1 do
    new_index.(pc) <- !kept;
    if not dead.(pc) then incr kept
  done;
  new_index.(n) <- !kept;
  let out = Array.make (max !kept 1) (Lir.make_inst Lir.Kgoto) in
  let j = ref 0 in
  for pc = 0 to n - 1 do
    if not dead.(pc) then begin
      let i = f.Lir.code.(pc) in
      (match i.Lir.kind with
      | Lir.Kgoto -> i.Lir.imm <- new_index.(i.Lir.imm)
      | Lir.Ktest ->
        i.Lir.imm <- new_index.(i.Lir.imm);
        i.Lir.b <- new_index.(i.Lir.b)
      | _ -> ());
      out.(!j) <- i;
      incr j
    end
  done;
  f.Lir.code <- (if !kept = 0 then [||] else Array.sub out 0 !kept)

let run (f : Lir.func) =
  let removed = ref 0 in
  (* pass 1: no-op moves *)
  let n = Array.length f.Lir.code in
  if n > 0 then begin
    let dead = Array.make n false in
    Array.iteri
      (fun pc (i : Lir.inst) ->
        if i.Lir.kind = Lir.Kmove && i.Lir.dst = i.Lir.a then begin
          dead.(pc) <- true;
          incr removed
        end)
      f.Lir.code;
    if Array.exists Fun.id dead then compact f dead;
    (* pass 2 (to fixpoint): gotos to the next instruction *)
    let changed = ref true in
    while !changed do
      changed := false;
      let n = Array.length f.Lir.code in
      let dead = Array.make n false in
      Array.iteri
        (fun pc (i : Lir.inst) ->
          if i.Lir.kind = Lir.Kgoto && i.Lir.imm = pc + 1 then begin
            dead.(pc) <- true;
            incr removed;
            changed := true
          end)
        f.Lir.code;
      if !changed then compact f dead
    done
  end;
  !removed
