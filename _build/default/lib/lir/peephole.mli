(** Post-allocation LIR peephole — the paper's step 6 (LIR optimization
    passes) in miniature:
    - coalesced moves (dst = src after register assignment) are deleted;
    - gotos to the immediately following instruction become fall-through.

    Branch targets are remapped over the compacted instruction stream.
    Returns the number of instructions removed (engine statistics). *)

val run : Lir.func -> int
