(* Operand classification: which fields of an instruction hold register
   numbers (sources), and whether [dst] is a definition. [Ktest] uses [b]
   as a branch target and [Kcall]/[Kcall_method] reference registers
   through the [call_args] side table. *)

let sources (f : Lir.func) (i : Lir.inst) : int list =
  let reg x = if x >= 0 then [ x ] else [] in
  match i.Lir.kind with
  | Lir.Kconst | Lir.Kparam | Lir.Knew_array | Lir.Knew_object | Lir.Kload_global
  | Lir.Kdeclare_global | Lir.Kgoto ->
    []
  | Lir.Kmove | Lir.Kunbox_number | Lir.Kunbox_int32 | Lir.Kguard_array | Lir.Knegate
  | Lir.Kbitnot | Lir.Knot | Lir.Ktypeof | Lir.Ktonumber | Lir.Kelements
  | Lir.Kinit_length | Lir.Karray_length | Lir.Karray_pop | Lir.Kget_prop
  | Lir.Kstore_global ->
    reg i.Lir.a
  | Lir.Ktest | Lir.Kreturn -> reg i.Lir.a
  | Lir.Kbounds_check | Lir.Kadd | Lir.Kbin _ | Lir.Kcompare _ | Lir.Kload_element
  | Lir.Kset_array_length | Lir.Karray_push | Lir.Kset_prop | Lir.Kget_index_gen ->
    reg i.Lir.a @ reg i.Lir.b
  | Lir.Kstore_element | Lir.Kset_index_gen -> reg i.Lir.a @ reg i.Lir.b @ reg i.Lir.c
  | Lir.Kcall -> reg i.Lir.a @ Array.to_list f.Lir.call_args.(i.Lir.imm)
  | Lir.Kcall_method -> reg i.Lir.a @ Array.to_list f.Lir.call_args.(i.Lir.imm)

let defines (i : Lir.inst) : int list = if i.Lir.dst >= 0 then [ i.Lir.dst ] else []

(* Successor pcs of the instruction at [pc]. *)
let successors (f : Lir.func) pc =
  let i = f.Lir.code.(pc) in
  match i.Lir.kind with
  | Lir.Kgoto -> [ i.Lir.imm ]
  | Lir.Ktest -> [ i.Lir.imm; i.Lir.b ]
  | Lir.Kreturn -> []
  | _ -> [ pc + 1 ]

let allocate (f : Lir.func) =
  let n = Array.length f.Lir.code in
  let nv = f.Lir.n_regs in
  if n = 0 then ()
  else begin
    (* backward liveness over individual instructions *)
    let live_in = Array.make n [] in
    let module IS = Set.Make (Int) in
    let live_in_sets = Array.make n IS.empty in
    let changed = ref true in
    while !changed do
      changed := false;
      for pc = n - 1 downto 0 do
        let i = f.Lir.code.(pc) in
        let out =
          List.fold_left
            (fun acc s -> IS.union acc live_in_sets.(s))
            IS.empty (successors f pc)
        in
        let def = IS.of_list (defines i) in
        let use = IS.of_list (sources f i) in
        let inn = IS.union use (IS.diff out def) in
        if not (IS.equal inn live_in_sets.(pc)) then begin
          live_in_sets.(pc) <- inn;
          changed := true
        end
      done
    done;
    ignore live_in;
    (* intervals: parameters are defined at entry (pc 0) *)
    let start = Array.make nv max_int in
    let stop = Array.make nv (-1) in
    let touch v pc =
      if v >= 0 && v < nv then begin
        if pc < start.(v) then start.(v) <- pc;
        if pc > stop.(v) then stop.(v) <- pc
      end
    in
    for pc = 0 to n - 1 do
      let i = f.Lir.code.(pc) in
      List.iter (fun v -> touch v pc) (defines i);
      List.iter (fun v -> touch v pc) (sources f i);
      IS.iter (fun v -> touch v pc) live_in_sets.(pc)
    done;
    (* linear scan *)
    let assignment = Array.make nv (-1) in
    let order =
      List.filter (fun v -> stop.(v) >= 0) (List.init nv (fun v -> v))
      |> List.sort (fun v1 v2 -> compare start.(v1) start.(v2))
    in
    let free = Queue.create () in
    for r = 0 to Lir.machine_registers - 1 do
      Queue.add r free
    done;
    let active = ref [] in  (* (stop, vreg, reg) sorted by stop *)
    let next_slot = ref Lir.machine_registers in
    let spills = ref 0 in
    List.iter
      (fun v ->
        (* expire *)
        let expired, still =
          List.partition (fun (e, _, _) -> e < start.(v)) !active
        in
        List.iter (fun (_, _, r) -> Queue.add r free) expired;
        active := still;
        if Queue.is_empty free then begin
          (* spill the current interval (simple policy: new interval
             spills; hot early-start values keep registers) *)
          assignment.(v) <- !next_slot;
          incr next_slot;
          incr spills
        end
        else begin
          let r = Queue.take free in
          assignment.(v) <- r;
          active :=
            List.sort (fun (e1, _, _) (e2, _, _) -> compare e1 e2)
              ((stop.(v), v, r) :: !active)
        end)
      order;
    (* rewrite register fields *)
    let map v = if v >= 0 && assignment.(v) >= 0 then assignment.(v) else v in
    Array.iter
      (fun (i : Lir.inst) ->
        (match i.Lir.kind with
        | Lir.Ktest ->
          i.Lir.a <- map i.Lir.a  (* b is a branch target *)
        | Lir.Kcall | Lir.Kcall_method ->
          i.Lir.a <- map i.Lir.a;
          f.Lir.call_args.(i.Lir.imm) <- Array.map map f.Lir.call_args.(i.Lir.imm)
        | _ ->
          i.Lir.a <- map i.Lir.a;
          i.Lir.b <- map i.Lir.b;
          i.Lir.c <- map i.Lir.c);
        i.Lir.dst <- map i.Lir.dst)
      f.Lir.code;
    f.Lir.n_regs <- max Lir.machine_registers !next_slot;
    f.Lir.spill_count <- !spills
  end
