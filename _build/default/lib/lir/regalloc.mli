(** Linear-scan register allocation (Poletto–Sarkar) over the linearized
    LIR.

    Live intervals are derived from a proper backward liveness dataflow
    over the LIR control-flow graph (so values live around loop back edges
    get intervals covering the whole loop). Virtual registers are assigned
    to the {!Lir.machine_registers} machine registers, spilling — in
    interval order — to slot numbers at and above the boundary. The
    executor addresses registers and slots uniformly, so no reload
    instructions are required; [spill_count] reports allocation pressure
    for the engine statistics. All register fields in the code are
    rewritten in place. *)

val allocate : Lir.func -> unit
