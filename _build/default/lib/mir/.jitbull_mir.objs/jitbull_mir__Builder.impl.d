lib/mir/builder.ml: Array Format Hashtbl Jitbull_bytecode Jitbull_frontend Jitbull_runtime List Mir
