lib/mir/builder.mli: Jitbull_bytecode Mir
