lib/mir/domtree.ml: Array Hashtbl List Mir
