lib/mir/domtree.mli: Hashtbl Mir
