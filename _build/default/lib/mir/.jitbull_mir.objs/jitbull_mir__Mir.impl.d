lib/mir/mir.ml: Buffer Hashtbl Jitbull_frontend Jitbull_runtime List Printf String
