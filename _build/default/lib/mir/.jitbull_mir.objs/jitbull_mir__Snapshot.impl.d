lib/mir/snapshot.ml: Buffer List Mir Printf String
