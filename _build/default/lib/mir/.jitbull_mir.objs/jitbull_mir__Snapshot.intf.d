lib/mir/snapshot.mli: Mir
