lib/mir/verifier.ml: Domtree Format Hashtbl List Mir
