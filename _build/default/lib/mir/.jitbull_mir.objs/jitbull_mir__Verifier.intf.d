lib/mir/verifier.mli: Mir
