module Op = Jitbull_bytecode.Op
module Feedback = Jitbull_bytecode.Feedback
module Value = Jitbull_runtime.Value
module Ast = Jitbull_frontend.Ast

exception Build_error of string

let build_error fmt = Format.kasprintf (fun s -> raise (Build_error s)) fmt

(* ---- bytecode basic blocks ---- *)

type bc_block = {
  start : int;
  stop : int;  (* exclusive *)
  mutable bc_succs : int list;  (* indices into the block array *)
}

let block_boundaries (code : Op.t array) =
  let n = Array.length code in
  let leader = Array.make (n + 1) false in
  leader.(0) <- true;
  Array.iteri
    (fun pc op ->
      match op with
      | Op.Jump t ->
        leader.(t) <- true;
        leader.(pc + 1) <- true
      | Op.Jump_if_false t | Op.Jump_if_true t ->
        leader.(t) <- true;
        leader.(pc + 1) <- true
      | Op.Return | Op.Return_undefined -> leader.(pc + 1) <- true
      | _ -> ())
    code;
  let starts = ref [] in
  for pc = n - 1 downto 0 do
    if leader.(pc) then starts := pc :: !starts
  done;
  let starts = Array.of_list !starts in
  let nb = Array.length starts in
  let blocks =
    Array.init nb (fun i ->
        let stop = if i + 1 < nb then starts.(i + 1) else n in
        { start = starts.(i); stop; bc_succs = [] })
  in
  let index_of_pc = Hashtbl.create 16 in
  Array.iteri (fun i b -> Hashtbl.add index_of_pc b.start i) blocks;
  let block_at pc =
    match Hashtbl.find_opt index_of_pc pc with
    | Some i -> i
    | None -> build_error "jump target %d is not a block leader" pc
  in
  Array.iter
    (fun b ->
      let last = code.(b.stop - 1) in
      b.bc_succs <-
        (match last with
        | Op.Jump t -> [ block_at t ]
        | Op.Jump_if_false t -> [ block_at b.stop; block_at t ]  (* true; false *)
        | Op.Jump_if_true t -> [ block_at t; block_at b.stop ]
        | Op.Return | Op.Return_undefined -> []
        | _ -> [ block_at b.stop ]))
    blocks;
  blocks

(* Reverse postorder over bytecode blocks; also classifies loop headers
   (targets of back edges, i.e. edges from a block no earlier in RPO). *)
let bc_rpo (blocks : bc_block array) =
  let n = Array.length blocks in
  let visited = Array.make n false in
  let order = ref [] in
  let rec dfs i =
    if not visited.(i) then begin
      visited.(i) <- true;
      List.iter dfs blocks.(i).bc_succs;
      order := i :: !order
    end
  in
  dfs 0;
  let rpo = Array.of_list !order in
  let pos = Array.make n (-1) in
  Array.iteri (fun k i -> pos.(i) <- k) rpo;
  let is_header = Array.make n false in
  Array.iter
    (fun i ->
      List.iter
        (fun s -> if pos.(s) >= 0 && pos.(s) <= pos.(i) then is_header.(s) <- true)
        blocks.(i).bc_succs)
    rpo;
  (rpo, is_header)

(* ---- abstract state ---- *)

type state = {
  locals : Mir.instr array;
  stack : Mir.instr list;  (* top of stack first *)
}

(* ---- the builder ---- *)

let build (f : Op.func) ~feedback_row : Mir.t =
  let g = Mir.create ~name:f.Op.name ~arity:f.Op.arity in
  let code = f.Op.code in
  let bc_blocks = block_boundaries code in
  let rpo, is_header = bc_rpo bc_blocks in
  let nb = Array.length bc_blocks in
  (* one MIR block per reachable bytecode block; a synthetic entry block
     holds the parameters so that bc block 0 may itself be a loop header *)
  let entry = g.Mir.entry in
  let mir_block = Array.make nb entry in
  Array.iter (fun i -> mir_block.(i) <- Mir.new_block g) rpo;
  (* states and pending loop phis, keyed by MIR block id *)
  let exit_states : (int, state) Hashtbl.t = Hashtbl.create 16 in
  let pending_phis : (int, Mir.instr array) Hashtbl.t = Hashtbl.create 4 in
  let exit_state_of (b : Mir.block) =
    match Hashtbl.find_opt exit_states b.Mir.bid with
    | Some st -> st
    | None -> build_error "predecessor block%d has no recorded state" b.Mir.bid
  in
  (* link an edge src→dst at control-emission time, keeping preds ordered
     by link time so phi operands align *)
  let link (src : Mir.block) dst_idx =
    let dst = mir_block.(dst_idx) in
    dst.Mir.preds <- dst.Mir.preds @ [ src ];
    match Hashtbl.find_opt pending_phis dst.Mir.bid with
    | Some phis ->
      let st = exit_state_of src in
      Array.iteri
        (fun slot phi -> phi.Mir.operands <- phi.Mir.operands @ [ st.locals.(slot) ])
        phis
    | None -> ()
  in
  (* synthetic entry: parameters, undefined locals, then goto bc block 0 *)
  let () =
    let undef = ref None in
    let locals =
      Array.init f.Op.n_locals (fun i ->
          if i < f.Op.arity then Mir.append g entry (Mir.Parameter i) []
          else
            match !undef with
            | Some u -> u
            | None ->
              let u = Mir.append g entry (Mir.Constant Value.Undefined) [] in
              undef := Some u;
              u)
    in
    Hashtbl.replace exit_states entry.Mir.bid { locals; stack = [] };
    ignore (Mir.append g entry (Mir.Goto mir_block.(0)) []);
    link entry 0
  in
  let entry_state idx : state =
    let b = mir_block.(idx) in
    if is_header.(idx) then begin
      let fwd_states = List.map exit_state_of b.Mir.preds in
      (match fwd_states with
      | { stack = []; _ } :: _ -> ()
      | { stack = _ :: _; _ } :: _ -> build_error "non-empty stack at loop header"
      | [] -> build_error "loop header with no processed predecessor");
      let phis =
        Array.init f.Op.n_locals (fun slot ->
            Mir.add_phi g b (List.map (fun st -> st.locals.(slot)) fwd_states))
      in
      Hashtbl.replace pending_phis b.Mir.bid phis;
      { locals = Array.copy phis; stack = [] }
    end
    else begin
      (* all preds processed already (reducible CFG, RPO order) *)
      match List.map exit_state_of b.Mir.preds with
      | [] -> build_error "block %d has no predecessors" idx
      | [ st ] -> { locals = Array.copy st.locals; stack = st.stack }
      | first :: _ as pred_states ->
        let merge_values values =
          match values with
          | v :: rest when List.for_all (fun o -> o == v) rest -> v
          | vs -> Mir.add_phi g b vs
        in
        let locals =
          Array.init f.Op.n_locals (fun slot ->
              merge_values (List.map (fun st -> st.locals.(slot)) pred_states))
        in
        let depth = List.length first.stack in
        List.iter
          (fun st ->
            if List.length st.stack <> depth then build_error "stack depth mismatch at merge")
          pred_states;
        let stack =
          List.init depth (fun pos ->
              merge_values (List.map (fun st -> List.nth st.stack pos) pred_states))
        in
        { locals; stack }
    end
  in
  let bc_index_of_pc target_pc =
    let rec find k =
      if k >= nb then build_error "no block starts at %d" target_pc
      else if bc_blocks.(k).start = target_pc then k
      else find (k + 1)
    in
    find 0
  in
  (* translate one bytecode block *)
  let translate idx =
    let b = mir_block.(idx) in
    let bc = bc_blocks.(idx) in
    let st = entry_state idx in
    let locals = st.locals in
    let stack = ref st.stack in
    let push v = stack := v :: !stack in
    let pop () =
      match !stack with
      | v :: rest ->
        stack := rest;
        v
      | [] -> build_error "operand stack underflow"
    in
    let pop_n n =
      let rec loop n acc = if n = 0 then acc else loop (n - 1) (pop () :: acc) in
      loop n []
    in
    let emit opc operands = Mir.append g b opc operands in
    let constant v = emit (Mir.Constant v) [] in
    let save_state () = Hashtbl.replace exit_states b.Mir.bid { locals; stack = !stack } in
    let site pc = feedback_row.(pc) in
    let finished = ref false in
    for pc = bc.start to bc.stop - 1 do
      if not !finished then
        match code.(pc) with
        | Op.Push_const v -> push (constant v)
        | Op.Load_local i -> push locals.(i)
        | Op.Store_local i -> locals.(i) <- pop ()
        | Op.Load_global name -> push (emit (Mir.Load_global name) [])
        | Op.Store_global name ->
          let v = pop () in
          ignore (emit (Mir.Store_global name) [ v ])
        | Op.Declare_global name -> ignore (emit (Mir.Declare_global name) [])
        | Op.Pop -> ignore (pop ())
        | Op.Dup ->
          let v = pop () in
          push v;
          push v
        | Op.Binop op -> (
          let rhs = pop () in
          let lhs = pop () in
          let numeric nop =
            if Feedback.numeric_fast_path (site pc) then begin
              let a = emit Mir.Unbox_number [ lhs ] in
              let c = emit Mir.Unbox_number [ rhs ] in
              push (emit (Mir.Bin_num nop) [ a; c ])
            end
            else begin
              let a = emit Mir.To_number [ lhs ] in
              let c = emit Mir.To_number [ rhs ] in
              push (emit (Mir.Bin_num nop) [ a; c ])
            end
          in
          match op with
          | Ast.Add -> push (emit Mir.Add [ lhs; rhs ])
          | Ast.Sub -> numeric Mir.NSub
          | Ast.Mul -> numeric Mir.NMul
          | Ast.Div -> numeric Mir.NDiv
          | Ast.Mod -> numeric Mir.NMod
          | Ast.Bit_and -> numeric Mir.NBit_and
          | Ast.Bit_or -> numeric Mir.NBit_or
          | Ast.Bit_xor -> numeric Mir.NBit_xor
          | Ast.Shl -> numeric Mir.NShl
          | Ast.Shr -> numeric Mir.NShr
          | Ast.Ushr -> numeric Mir.NUshr
          | Ast.Lt -> push (emit (Mir.Compare Mir.CLt) [ lhs; rhs ])
          | Ast.Le -> push (emit (Mir.Compare Mir.CLe) [ lhs; rhs ])
          | Ast.Gt -> push (emit (Mir.Compare Mir.CGt) [ lhs; rhs ])
          | Ast.Ge -> push (emit (Mir.Compare Mir.CGe) [ lhs; rhs ])
          | Ast.Eq -> push (emit (Mir.Compare Mir.CEq) [ lhs; rhs ])
          | Ast.Neq -> push (emit (Mir.Compare Mir.CNeq) [ lhs; rhs ])
          | Ast.Strict_eq -> push (emit (Mir.Compare Mir.CStrict_eq) [ lhs; rhs ])
          | Ast.Strict_neq -> push (emit (Mir.Compare Mir.CStrict_neq) [ lhs; rhs ]))
        | Op.Unop op -> (
          let v = pop () in
          match op with
          | Ast.Neg ->
            let n = emit Mir.To_number [ v ] in
            push (emit Mir.Negate [ n ])
          | Ast.Not -> push (emit Mir.Not [ v ])
          | Ast.Bit_not ->
            let n = emit Mir.To_number [ v ] in
            push (emit Mir.Bit_not [ n ])
          | Ast.Typeof -> push (emit Mir.Typeof [ v ])
          | Ast.To_number -> push (emit Mir.To_number [ v ]))
        | Op.New_array n ->
          let elems = pop_n n in
          let arr = emit (Mir.New_array n) [] in
          if n > 0 then begin
            let el = emit Mir.Elements [ arr ] in
            List.iteri
              (fun i v ->
                let idx = constant (Value.Number (float_of_int i)) in
                ignore (emit Mir.Store_element [ el; idx; v ]))
              elems
          end;
          push arr
        | Op.New_object fields ->
          let vs = pop_n (List.length fields) in
          let obj = emit (Mir.New_object fields) [] in
          List.iter2 (fun name v -> ignore (emit (Mir.Set_prop name) [ obj; v ])) fields vs;
          push obj
        | Op.Get_index ->
          let idx = pop () in
          let obj = pop () in
          if Feedback.array_fast_path (site pc) then begin
            let arr = emit Mir.Guard_array [ obj ] in
            let i32 = emit Mir.Unbox_int32 [ idx ] in
            let el = emit Mir.Elements [ arr ] in
            let len = emit Mir.Initialized_length [ el ] in
            let chk = emit Mir.Bounds_check [ i32; len ] in
            push (emit Mir.Load_element [ el; chk ])
          end
          else push (emit Mir.Get_index_generic [ obj; idx ])
        | Op.Set_index ->
          let v = pop () in
          let idx = pop () in
          let obj = pop () in
          if Feedback.array_fast_path (site pc) then begin
            let arr = emit Mir.Guard_array [ obj ] in
            let i32 = emit Mir.Unbox_int32 [ idx ] in
            let el = emit Mir.Elements [ arr ] in
            let len = emit Mir.Initialized_length [ el ] in
            (* the check's pass-through value is unused on the store path:
               the store indexes with the unboxed index directly (the shape
               the vulnerable-DCE model of CVE-2019-9813 preys on) *)
            ignore (emit Mir.Bounds_check [ i32; len ]);
            ignore (emit Mir.Store_element [ el; i32; v ]);
            push v
          end
          else begin
            ignore (emit Mir.Set_index_generic [ obj; idx; v ]);
            push v
          end
        | Op.Get_member name ->
          let obj = pop () in
          if name = "length" && Feedback.array_receiver (site pc) then begin
            let arr = emit Mir.Guard_array [ obj ] in
            push (emit Mir.Array_length [ arr ])
          end
          else push (emit (Mir.Get_prop name) [ obj ])
        | Op.Set_member name ->
          let v = pop () in
          let obj = pop () in
          if name = "length" && Feedback.array_receiver (site pc) then begin
            let arr = emit Mir.Guard_array [ obj ] in
            let n = emit Mir.Unbox_number [ v ] in
            ignore (emit Mir.Set_array_length [ arr; n ]);
            push v
          end
          else begin
            ignore (emit (Mir.Set_prop name) [ obj; v ]);
            push v
          end
        | Op.Call n ->
          let args = pop_n n in
          let callee = pop () in
          push (emit (Mir.Call n) (callee :: args))
        | Op.Call_method (name, n) -> (
          let args = pop_n n in
          let recv = pop () in
          match (name, args) with
          | "push", [ v ] when Feedback.array_receiver (site pc) ->
            let arr = emit Mir.Guard_array [ recv ] in
            push (emit Mir.Array_push [ arr; v ])
          | "pop", [] when Feedback.array_receiver (site pc) ->
            let arr = emit Mir.Guard_array [ recv ] in
            push (emit Mir.Array_pop [ arr ])
          | _ -> push (emit (Mir.Call_method (name, n)) (recv :: args)))
        | Op.Jump t ->
          let target = bc_index_of_pc t in
          ignore (emit (Mir.Goto mir_block.(target)) []);
          save_state ();
          link b target;
          finished := true
        | Op.Jump_if_false t | Op.Jump_if_true t ->
          let cond = pop () in
          let jump_target = bc_index_of_pc t in
          let fall_target = bc_index_of_pc bc.stop in
          let tt, ft =
            match code.(pc) with
            | Op.Jump_if_false _ -> (fall_target, jump_target)
            | _ -> (jump_target, fall_target)
          in
          ignore (emit (Mir.Test (mir_block.(tt), mir_block.(ft))) [ cond ]);
          save_state ();
          link b tt;
          link b ft;
          finished := true
        | Op.Return ->
          let v = pop () in
          ignore (emit Mir.Return [ v ]);
          save_state ();
          finished := true
        | Op.Return_undefined ->
          let v = constant Value.Undefined in
          ignore (emit Mir.Return [ v ]);
          save_state ();
          finished := true
    done;
    if not !finished then begin
      let fall_target = bc_index_of_pc bc.stop in
      ignore (emit (Mir.Goto mir_block.(fall_target)) []);
      save_state ();
      link b fall_target
    end
  in
  Array.iter translate rpo;
  (* normalize block order; preserve the link-time pred order (phi operand
     alignment) against [refresh]'s own ordering *)
  let saved_preds =
    List.map (fun (b : Mir.block) -> (b.Mir.bid, b.Mir.preds)) g.Mir.blocks
  in
  Mir.refresh g;
  List.iter
    (fun (b : Mir.block) ->
      match List.assoc_opt b.Mir.bid saved_preds with
      | Some preds when List.length preds = List.length b.Mir.preds -> b.Mir.preds <- preds
      | Some _ | None -> ())
    g.Mir.blocks;
  Mir.renumber g;
  g
