(** Bytecode → SSA MIR translation (IonMonkey's "MIR generation", step 3 of
    the paper's Fig. 1).

    The builder abstract-interprets the operand stack and local slots of
    the bytecode per basic block, inserting phis at merges and loop
    headers. Speculation is driven by the interpreter tier's
    {!Jitbull_bytecode.Feedback}: sites the interpreter only ever saw as
    array/int accesses compile to the guarded fast path
    ([guardarray] → [elements] → [initializedlength] → [boundscheck] →
    [load/storeelement], the shape CVE-2019-17026's exploit targets);
    polymorphic sites compile to checked generic instructions. Loop
    headers pre-create one phi per local; later passes fold the trivial
    ones. *)

exception Build_error of string

(** [build func ~feedback_row] translates one bytecode function.
    [feedback_row.(pc)] is the feedback site for bytecode [pc]; pass
    [Feedback.fresh_site] rows (no evidence) to force fully generic
    code. *)
val build : Jitbull_bytecode.Op.func -> feedback_row:Jitbull_bytecode.Feedback.site array -> Mir.t
