type t = {
  idoms : (int, Mir.block) Hashtbl.t;  (* bid → immediate dominator *)
  rpo_pos : (int, int) Hashtbl.t;
  entry_bid : int;
  block_of : (int, Mir.block) Hashtbl.t;
}

let compute (g : Mir.t) : t =
  let rpo = Array.of_list g.Mir.blocks in
  let rpo_pos = Hashtbl.create 16 in
  Array.iteri (fun i b -> Hashtbl.replace rpo_pos b.Mir.bid i) rpo;
  let block_of = Hashtbl.create 16 in
  Array.iter (fun b -> Hashtbl.replace block_of b.Mir.bid b) rpo;
  let idoms : (int, Mir.block) Hashtbl.t = Hashtbl.create 16 in
  let entry = g.Mir.entry in
  Hashtbl.replace idoms entry.Mir.bid entry;
  let pos b = Hashtbl.find rpo_pos b.Mir.bid in
  let rec intersect b1 b2 =
    if b1 == b2 then b1
    else if pos b1 > pos b2 then intersect (Hashtbl.find idoms b1.Mir.bid) b2
    else intersect b1 (Hashtbl.find idoms b2.Mir.bid)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun b ->
        if b != entry then begin
          let processed_preds =
            List.filter (fun p -> Hashtbl.mem idoms p.Mir.bid) b.Mir.preds
          in
          match processed_preds with
          | [] -> ()
          | first :: rest ->
            let new_idom = List.fold_left intersect first rest in
            (match Hashtbl.find_opt idoms b.Mir.bid with
            | Some old when old == new_idom -> ()
            | _ ->
              Hashtbl.replace idoms b.Mir.bid new_idom;
              changed := true)
        end)
      rpo
  done;
  { idoms; rpo_pos; entry_bid = entry.Mir.bid; block_of }

let idom t (b : Mir.block) =
  if b.Mir.bid = t.entry_bid then None else Hashtbl.find_opt t.idoms b.Mir.bid

let dominates t (a : Mir.block) (b : Mir.block) =
  let rec climb b =
    if a == b then true
    else if b.Mir.bid = t.entry_bid then false
    else
      match Hashtbl.find_opt t.idoms b.Mir.bid with
      | Some parent when parent != b -> climb parent
      | _ -> false
  in
  climb b

(* Position of an instruction inside its block: phis come first. *)
let index_in_block (b : Mir.block) (i : Mir.instr) =
  let rec find k = function
    | [] -> None
    | x :: rest -> if x == i then Some k else find (k + 1) rest
  in
  find 0 (Mir.instructions b)

let instr_dominates t (def : Mir.instr) (use_block : Mir.block) ~(use_instr : Mir.instr) =
  match Hashtbl.find_opt t.block_of def.Mir.in_block with
  | None -> false
  | Some def_block ->
    if def_block == use_block then begin
      match (index_in_block def_block def, index_in_block use_block use_instr) with
      | Some di, Some ui -> di < ui
      | _ -> false
    end
    else dominates t def_block use_block

let loop_body t (g : Mir.t) (header : Mir.block) =
  let body = Hashtbl.create 16 in
  Hashtbl.replace body header.Mir.bid ();
  (* natural loop: for each back edge latch→header, all blocks reaching the
     latch without passing through the header *)
  let latches =
    List.filter (fun p -> dominates t header p) header.Mir.preds
  in
  let rec mark (b : Mir.block) =
    if not (Hashtbl.mem body b.Mir.bid) then begin
      Hashtbl.replace body b.Mir.bid ();
      List.iter mark b.Mir.preds
    end
  in
  List.iter mark latches;
  ignore g;
  body
