(** Dominator tree (Cooper–Harvey–Kennedy iterative algorithm).

    Used by GVN (dominance-based value numbering), LICM (hoist targets),
    the bounds-check eliminator and the verifier. Compute once per pass
    that needs it; the tree is invalidated by any CFG edit. *)

type t

val compute : Mir.t -> t

(** [idom t b] is [b]'s immediate dominator; [None] for the entry block. *)
val idom : t -> Mir.block -> Mir.block option

(** [dominates t a b] — does [a] dominate [b]? (Reflexive: a block
    dominates itself.) *)
val dominates : t -> Mir.block -> Mir.block -> bool

(** [instr_dominates t def use_block ~use_instr] — is the definition
    available at the program point just before [use_instr] in
    [use_block]? Within a block this is instruction order (phis first);
    across blocks it is block dominance. *)
val instr_dominates : t -> Mir.instr -> Mir.block -> use_instr:Mir.instr -> bool

(** [loop_body t header] — the set of block ids in the natural loop of
    every back edge into [header] (header included). *)
val loop_body : t -> Mir.t -> Mir.block -> (int, unit) Hashtbl.t
