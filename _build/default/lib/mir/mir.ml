(* Mid-level intermediate representation (MIR), modeled on IonMonkey's.

   A function is a control-flow graph of basic blocks; each block holds phi
   instructions followed by body instructions in SSA form, the last being
   the unique control instruction. Instructions reference operands
   directly (pointer graph). Every instruction has a stable identity [iid]
   and a display number [num]; the renumber pass rewrites [num]s only, so
   JITBULL's DNA (which works on opcode chains) is insensitive to it —
   exactly the property the paper needs to defeat variable renaming.

   Guards ([BoundsCheck], [UnboxNumber], [UnboxInt32], [GuardArray]) bail
   out to the interpreter tier when their dynamic check fails; eliminating
   a guard does not change the behaviour of well-typed in-bounds programs,
   which is why buggy eliminations survive testing and become CVEs. *)

module Ast = Jitbull_frontend.Ast
module Value = Jitbull_runtime.Value

type num_binop =
  | NSub
  | NMul
  | NDiv
  | NMod
  | NBit_and
  | NBit_or
  | NBit_xor
  | NShl
  | NShr
  | NUshr

type compare_op =
  | CLt
  | CLe
  | CGt
  | CGe
  | CEq
  | CNeq
  | CStrict_eq
  | CStrict_neq

type opcode =
  (* values *)
  | Parameter of int
  | Constant of Value.t
  | Phi
  (* guards: checked speculation; failure = bailout *)
  | Unbox_number  (* operand must be a Number *)
  | Unbox_int32   (* operand must be an integral Number in int32 range *)
  | Guard_array   (* operand must be an Array *)
  | Bounds_check  (* operands: index, length; passes index through *)
  (* arithmetic *)
  | Add           (* generic JS +, concatenates strings *)
  | Bin_num of num_binop  (* numeric-only binop on unboxed operands *)
  | Compare of compare_op
  | Negate
  | Bit_not
  | Not
  | Typeof
  | To_number
  (* arrays *)
  | New_array of int
  | Elements            (* array → elements pointer *)
  | Initialized_length  (* elements → length *)
  | Load_element        (* elements, index → value   (unchecked) *)
  | Store_element       (* elements, index, value    (unchecked) *)
  | Array_length        (* array → length (a.length) *)
  | Set_array_length    (* array, length *)
  | Array_push          (* array, value → new length *)
  | Array_pop           (* array → value *)
  (* objects and generic accesses *)
  | New_object of string list
  | Get_prop of string
  | Set_prop of string
  | Get_index_generic   (* checked, slow path *)
  | Set_index_generic
  (* globals *)
  | Load_global of string
  | Store_global of string
  | Declare_global of string  (* define global as undefined if absent *)
  (* calls *)
  | Call of int                  (* callee, arg1..argn *)
  | Call_method of string * int  (* recv, arg1..argn *)
  (* control *)
  | Goto of block
  | Test of block * block        (* operand: condition; (if_true, if_false) *)
  | Return                       (* operand: value *)
  | Unreachable

and instr = {
  iid : int;
  mutable num : int;
  mutable opcode : opcode;
  mutable operands : instr list;
  mutable in_block : int;  (* bid of owning block *)
}

and block = {
  bid : int;
  mutable phis : instr list;
  mutable body : instr list;  (* last one is the control instruction *)
  mutable preds : block list;
}

type t = {
  name : string;
  arity : int;
  mutable entry : block;
  mutable blocks : block list;  (* maintained in reverse-postorder *)
  mutable next_iid : int;
  mutable next_bid : int;
}

(* ---- construction ---- *)

let create ~name ~arity =
  let entry = { bid = 0; phis = []; body = []; preds = [] } in
  { name; arity; entry; blocks = [ entry ]; next_iid = 0; next_bid = 1 }

let new_block g =
  let b = { bid = g.next_bid; phis = []; body = []; preds = [] } in
  g.next_bid <- g.next_bid + 1;
  g.blocks <- g.blocks @ [ b ];
  b

let make_instr g opcode operands =
  let i =
    { iid = g.next_iid; num = g.next_iid; opcode; operands; in_block = -1 }
  in
  g.next_iid <- g.next_iid + 1;
  i

(* Append to block body (before any control instruction already present —
   callers normally add the control instruction last). *)
let append g block opcode operands =
  let i = make_instr g opcode operands in
  i.in_block <- block.bid;
  block.body <- block.body @ [ i ];
  i

let add_phi g block operands =
  let i = make_instr g Phi operands in
  i.in_block <- block.bid;
  block.phis <- block.phis @ [ i ];
  i

(* ---- shape helpers ---- *)

let successors (b : block) : block list =
  match List.rev b.body with
  | { opcode = Goto target; _ } :: _ -> [ target ]
  | { opcode = Test (t, f); _ } :: _ -> [ t; f ]
  | _ -> []

let control_instr (b : block) : instr option =
  match List.rev b.body with
  | ({ opcode = Goto _ | Test _ | Return | Unreachable; _ } as i) :: _ -> Some i
  | _ -> None

let instructions (b : block) = b.phis @ b.body

let all_instructions (g : t) = List.concat_map instructions g.blocks

(* ---- reverse postorder & bookkeeping ---- *)

let compute_rpo (g : t) : block list =
  let visited = Hashtbl.create 16 in
  let order = ref [] in
  let rec dfs b =
    if not (Hashtbl.mem visited b.bid) then begin
      Hashtbl.add visited b.bid ();
      List.iter dfs (successors b);
      order := b :: !order
    end
  in
  dfs g.entry;
  !order

(* Recompute predecessor lists and block order from the control
   instructions; unreachable blocks are dropped. Phi operands of blocks
   whose predecessor list changed are NOT adjusted here — passes that
   remove edges must fix phis themselves. *)
let refresh (g : t) =
  let rpo = compute_rpo g in
  List.iter (fun b -> b.preds <- []) rpo;
  List.iter
    (fun b -> List.iter (fun s -> s.preds <- s.preds @ [ b ]) (successors b))
    rpo;
  g.blocks <- rpo;
  List.iter
    (fun b -> List.iter (fun i -> i.in_block <- b.bid) (instructions b))
    rpo

(* ---- use replacement ---- *)

(* Replace every use of [old_i] as an operand with [new_i]. O(instrs). *)
let replace_all_uses (g : t) (old_i : instr) (new_i : instr) =
  List.iter
    (fun i ->
      if List.memq old_i i.operands then
        i.operands <- List.map (fun o -> if o == old_i then new_i else o) i.operands)
    (all_instructions g)

let has_uses (g : t) (target : instr) =
  List.exists (fun i -> List.memq target i.operands) (all_instructions g)

(* ---- renumbering ---- *)

let renumber (g : t) =
  let n = ref 0 in
  List.iter
    (fun b ->
      List.iter
        (fun i ->
          i.num <- !n;
          incr n)
        (instructions b))
    g.blocks

(* ---- opcode metadata ---- *)

let opcode_name : opcode -> string = function
  | Parameter _ -> "parameter"
  | Constant _ -> "constant"
  | Phi -> "phi"
  | Unbox_number -> "unboxnumber"
  | Unbox_int32 -> "unboxint32"
  | Guard_array -> "guardarray"
  | Bounds_check -> "boundscheck"
  | Add -> "add"
  | Bin_num NSub -> "sub"
  | Bin_num NMul -> "mul"
  | Bin_num NDiv -> "div"
  | Bin_num NMod -> "mod"
  | Bin_num NBit_and -> "bitand"
  | Bin_num NBit_or -> "bitor"
  | Bin_num NBit_xor -> "bitxor"
  | Bin_num NShl -> "lsh"
  | Bin_num NShr -> "rsh"
  | Bin_num NUshr -> "ursh"
  | Compare CLt -> "compare_lt"
  | Compare CLe -> "compare_le"
  | Compare CGt -> "compare_gt"
  | Compare CGe -> "compare_ge"
  | Compare CEq -> "compare_eq"
  | Compare CNeq -> "compare_ne"
  | Compare CStrict_eq -> "compare_stricteq"
  | Compare CStrict_neq -> "compare_strictne"
  | Negate -> "negate"
  | Bit_not -> "bitnot"
  | Not -> "not"
  | Typeof -> "typeof"
  | To_number -> "tonumber"
  | New_array _ -> "newarray"
  | Elements -> "elements"
  | Initialized_length -> "initializedlength"
  | Load_element -> "loadelement"
  | Store_element -> "storeelement"
  | Array_length -> "arraylength"
  | Set_array_length -> "setarraylength"
  | Array_push -> "arraypush"
  | Array_pop -> "arraypop"
  | New_object _ -> "newobject"
  | Get_prop _ -> "getprop"
  | Set_prop _ -> "setprop"
  | Get_index_generic -> "getelemgeneric"
  | Set_index_generic -> "setelemgeneric"
  | Load_global _ -> "loadglobal"
  | Store_global _ -> "storeglobal"
  | Declare_global _ -> "declareglobal"
  | Call _ -> "call"
  | Call_method _ -> "callmethod"
  | Goto _ -> "goto"
  | Test _ -> "test"
  | Return -> "return"
  | Unreachable -> "unreachable"

(* Alias classes for the (correct) effect model. The vulnerable pass
   variants deliberately ignore parts of this table — that IS the bug
   being modeled. *)
type alias_class =
  | Alias_elements  (* array element storage *)
  | Alias_lengths   (* array length/initializedLength *)
  | Alias_objects   (* object property slots *)
  | Alias_globals   (* global variable slots *)

let all_alias_classes = [ Alias_elements; Alias_lengths; Alias_objects; Alias_globals ]

type effect_info = {
  reads : alias_class list;
  writes : alias_class list;
  is_guard : bool;
  (* pure + movable + no reads: eligible for GVN value-numbering and LICM
     hoisting without alias reasoning *)
  is_movable : bool;
  is_control : bool;
}

let effects : opcode -> effect_info = function
  | Parameter _ | Constant _ | Phi ->
    { reads = []; writes = []; is_guard = false; is_movable = false; is_control = false }
  | Unbox_number | Unbox_int32 | Guard_array ->
    { reads = []; writes = []; is_guard = true; is_movable = true; is_control = false }
  | Bounds_check ->
    { reads = []; writes = []; is_guard = true; is_movable = true; is_control = false }
  | Add | Bin_num _ | Compare _ | Negate | Bit_not | Not | Typeof | To_number ->
    { reads = []; writes = []; is_guard = false; is_movable = true; is_control = false }
  | New_array _ | New_object _ ->
    (* allocation: not movable/dedupable, but reads nothing *)
    { reads = []; writes = []; is_guard = false; is_movable = false; is_control = false }
  | Elements ->
    (* the elements pointer changes when storage is reallocated (push /
       length growth), which writes Alias_lengths *)
    { reads = [ Alias_lengths ]; writes = []; is_guard = false; is_movable = true; is_control = false }
  | Initialized_length | Array_length ->
    { reads = [ Alias_lengths ]; writes = []; is_guard = false; is_movable = true; is_control = false }
  | Load_element ->
    { reads = [ Alias_elements ]; writes = []; is_guard = false; is_movable = true; is_control = false }
  | Store_element ->
    { reads = []; writes = [ Alias_elements ]; is_guard = false; is_movable = false; is_control = false }
  | Set_array_length ->
    { reads = []; writes = [ Alias_lengths; Alias_elements ]; is_guard = false; is_movable = false; is_control = false }
  | Array_push | Array_pop ->
    { reads = [ Alias_lengths; Alias_elements ];
      writes = [ Alias_lengths; Alias_elements ];
      is_guard = false;
      is_movable = false;
      is_control = false }
  | Get_prop _ ->
    { reads = [ Alias_objects; Alias_lengths ]; writes = []; is_guard = false; is_movable = true; is_control = false }
  | Set_prop _ ->
    (* a generic property write may hit an array's [length] and resize it,
       so it clobbers array state too *)
    { reads = [];
      writes = [ Alias_objects; Alias_lengths; Alias_elements ];
      is_guard = false;
      is_movable = false;
      is_control = false }
  | Get_index_generic ->
    { reads = all_alias_classes; writes = []; is_guard = false; is_movable = false; is_control = false }
  | Set_index_generic ->
    { reads = all_alias_classes; writes = all_alias_classes; is_guard = false; is_movable = false; is_control = false }
  | Load_global _ ->
    { reads = [ Alias_globals ]; writes = []; is_guard = false; is_movable = true; is_control = false }
  | Store_global _ ->
    { reads = []; writes = [ Alias_globals ]; is_guard = false; is_movable = false; is_control = false }
  | Declare_global _ ->
    { reads = [ Alias_globals ]; writes = [ Alias_globals ]; is_guard = false; is_movable = false; is_control = false }
  | Call _ | Call_method _ ->
    { reads = all_alias_classes; writes = all_alias_classes; is_guard = false; is_movable = false; is_control = false }
  | Goto _ | Test _ | Return | Unreachable ->
    { reads = []; writes = []; is_guard = false; is_movable = false; is_control = true }

let has_side_effects op = (effects op).writes <> []

let is_control op = (effects op).is_control

(* ---- printing ---- *)

let constant_label (v : Value.t) =
  match v with
  | Value.Number f -> Value.to_display (Value.Number f)
  | Value.String s -> Printf.sprintf "%S" s
  | v -> Value.to_display v

let instr_label (i : instr) =
  let extra =
    match i.opcode with
    | Constant v -> " " ^ constant_label v
    | Parameter n -> Printf.sprintf " %d" n
    | Load_global s | Store_global s | Declare_global s | Get_prop s | Set_prop s -> " " ^ s
    | Call_method (m, _) -> " " ^ m
    | Goto b -> Printf.sprintf " block%d" b.bid
    | Test (t, f) -> Printf.sprintf " block%d block%d" t.bid f.bid
    | _ -> ""
  in
  let operands = List.map (fun o -> string_of_int o.num) i.operands in
  Printf.sprintf "%d %s%s %s" i.num (opcode_name i.opcode) extra (String.concat " " operands)

let to_string (g : t) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "function %s/%d\n" g.name g.arity);
  List.iter
    (fun b ->
      let preds = List.map (fun p -> string_of_int p.bid) b.preds in
      Buffer.add_string buf
        (Printf.sprintf "block%d: (preds: %s)\n" b.bid (String.concat "," preds));
      List.iter
        (fun i -> Buffer.add_string buf ("  " ^ instr_label i ^ "\n"))
        (instructions b))
    g.blocks;
  Buffer.contents buf
