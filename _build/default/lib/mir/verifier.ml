exception Invalid of string

let fail fmt = Format.kasprintf (fun s -> raise (Invalid s)) fmt

let check (g : Mir.t) =
  let dom = Domtree.compute g in
  let in_graph = Hashtbl.create 64 in
  List.iter
    (fun (b : Mir.block) ->
      List.iter (fun (i : Mir.instr) -> Hashtbl.replace in_graph i.Mir.iid b) (Mir.instructions b))
    g.Mir.blocks;
  List.iter
    (fun (b : Mir.block) ->
      (* control structure *)
      (match List.rev b.Mir.body with
      | last :: earlier ->
        if not (Mir.is_control last.Mir.opcode) then
          fail "block%d does not end in a control instruction" b.Mir.bid;
        List.iter
          (fun (i : Mir.instr) ->
            if Mir.is_control i.Mir.opcode then
              fail "block%d has a control instruction %d before the end" b.Mir.bid i.Mir.num)
          earlier
      | [] -> fail "block%d has an empty body" b.Mir.bid);
      (* phi arity *)
      List.iter
        (fun (phi : Mir.instr) ->
          if phi.Mir.opcode <> Mir.Phi then
            fail "non-phi %d in phi section of block%d" phi.Mir.num b.Mir.bid;
          if List.length phi.Mir.operands <> List.length b.Mir.preds then
            fail "phi %d of block%d has %d operands for %d predecessors" phi.Mir.num b.Mir.bid
              (List.length phi.Mir.operands)
              (List.length b.Mir.preds))
        b.Mir.phis;
      List.iter
        (fun (i : Mir.instr) ->
          if i.Mir.opcode = Mir.Phi then
            fail "phi %d of block%d is in the body section" i.Mir.num b.Mir.bid)
        b.Mir.body;
      (* membership *)
      List.iter
        (fun (i : Mir.instr) ->
          if i.Mir.in_block <> b.Mir.bid then
            fail "instruction %d claims block%d but lives in block%d" i.Mir.num i.Mir.in_block
              b.Mir.bid)
        (Mir.instructions b);
      (* pred/succ consistency *)
      List.iter
        (fun (s : Mir.block) ->
          if not (List.memq b s.Mir.preds) then
            fail "edge block%d→block%d missing from preds" b.Mir.bid s.Mir.bid)
        (Mir.successors b);
      List.iter
        (fun (p : Mir.block) ->
          if not (List.memq b (Mir.successors p)) then
            fail "pred block%d of block%d has no such successor" p.Mir.bid b.Mir.bid)
        b.Mir.preds;
      (* dominance of operands *)
      List.iter
        (fun (i : Mir.instr) ->
          List.iter
            (fun (op : Mir.instr) ->
              if not (Hashtbl.mem in_graph op.Mir.iid) then
                fail "instruction %d of block%d uses dead operand %d" i.Mir.num b.Mir.bid
                  op.Mir.num
              else if i.Mir.opcode = Mir.Phi then begin
                (* the k-th operand must be available at the exit of the
                   k-th predecessor *)
                let rec nth_pred ops preds =
                  match (ops, preds) with
                  | o :: _, (p : Mir.block) :: _ when o == op -> Some p
                  | _ :: ops, _ :: preds -> nth_pred ops preds
                  | _ -> None
                in
                (* find first position of this operand; duplicates are
                   fine because we only need existence of a valid slot *)
                match nth_pred i.Mir.operands b.Mir.preds with
                | Some p ->
                  let def_block = Hashtbl.find in_graph op.Mir.iid in
                  if not (Domtree.dominates dom def_block p) then
                    fail "phi %d operand %d does not dominate pred block%d" i.Mir.num
                      op.Mir.num p.Mir.bid
                | None -> ()
              end
              else if not (Domtree.instr_dominates dom op b ~use_instr:i) then
                fail "operand %d does not dominate its use %d in block%d" op.Mir.num i.Mir.num
                  b.Mir.bid)
            i.Mir.operands)
        (Mir.instructions b))
    g.Mir.blocks

let check_bool g =
  match check g with
  | () -> true
  | exception Invalid _ -> false
