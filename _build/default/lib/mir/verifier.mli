(** MIR structural and SSA invariant checker.

    Run after building and (in tests and in the engine's paranoid mode)
    after every optimization pass, so a buggy-by-design vulnerable pass
    still has to produce structurally valid IR — like the real CVEs, the
    injected bugs are semantic (wrong effect modeling), not crashes of the
    compiler itself. *)

exception Invalid of string

(** [check g] raises {!Invalid} describing the first violated invariant:
    - every block ends in exactly one control instruction, with none
      earlier in the body;
    - phis live in the phi section and have exactly one operand per
      predecessor;
    - [in_block] fields agree with block membership;
    - every operand definition dominates its use (phi uses are checked at
      the corresponding predecessor's exit);
    - successor/predecessor lists are mutually consistent. *)
val check : Mir.t -> unit

(** [check_bool g] is [check] but returns false instead of raising. *)
val check_bool : Mir.t -> bool
