lib/passes/alias_analysis.ml: Jitbull_mir Mir_util Pass
