lib/passes/bounds_check_elim.ml: Hashtbl Jitbull_mir List Mir_util Pass Vuln_config
