lib/passes/constant_folding.ml: Bounds_check_elim Float Jitbull_frontend Jitbull_mir Jitbull_runtime List Mir_util Pass Vuln_config
