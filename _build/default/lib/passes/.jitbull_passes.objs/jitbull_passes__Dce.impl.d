lib/passes/dce.ml: Hashtbl Jitbull_mir List Pass Vuln_config
