lib/passes/edge_case_analysis.ml: Jitbull_mir List Pass
