lib/passes/empty_block_elim.ml: Jitbull_mir List Pass
