lib/passes/fold_tests.ml: Hashtbl Jitbull_mir Jitbull_runtime List Mir_util Pass
