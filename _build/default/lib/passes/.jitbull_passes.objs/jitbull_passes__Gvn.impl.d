lib/passes/gvn.ml: Hashtbl Jitbull_mir List Mir_util Pass Printf String Vuln_config
