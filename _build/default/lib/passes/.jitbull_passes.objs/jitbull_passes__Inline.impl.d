lib/passes/inline.ml: Array Hashtbl Jitbull_mir Jitbull_runtime Lazy List Pass String
