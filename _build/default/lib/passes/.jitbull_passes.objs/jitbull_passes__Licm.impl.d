lib/passes/licm.ml: Hashtbl Jitbull_mir List Mir_util Pass Vuln_config
