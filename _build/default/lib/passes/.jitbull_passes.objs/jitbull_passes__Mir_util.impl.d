lib/passes/mir_util.ml: Hashtbl Jitbull_mir Jitbull_runtime List
