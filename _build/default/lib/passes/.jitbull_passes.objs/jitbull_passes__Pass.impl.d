lib/passes/pass.ml: Hashtbl Jitbull_mir Vuln_config
