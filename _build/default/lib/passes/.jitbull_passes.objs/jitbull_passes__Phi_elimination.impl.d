lib/passes/phi_elimination.ml: Jitbull_mir List Mir_util Pass
