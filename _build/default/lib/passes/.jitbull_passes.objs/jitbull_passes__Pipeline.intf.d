lib/passes/pipeline.mli: Jitbull_mir Pass Vuln_config
