lib/passes/range_analysis.ml: Float Hashtbl Jitbull_mir Jitbull_runtime List Pass
