lib/passes/renumber.ml: Jitbull_mir Pass
