lib/passes/reorder.ml: Hashtbl Jitbull_mir List Mir_util Pass
