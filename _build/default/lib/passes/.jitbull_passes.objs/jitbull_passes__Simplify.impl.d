lib/passes/simplify.ml: Jitbull_mir Jitbull_runtime List Mir_util Pass
