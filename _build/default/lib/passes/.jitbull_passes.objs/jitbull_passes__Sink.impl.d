lib/passes/sink.ml: Hashtbl Jitbull_mir List Mir_util Pass Vuln_config
