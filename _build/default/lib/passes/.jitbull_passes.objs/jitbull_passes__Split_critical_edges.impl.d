lib/passes/split_critical_edges.ml: Jitbull_mir List Pass
