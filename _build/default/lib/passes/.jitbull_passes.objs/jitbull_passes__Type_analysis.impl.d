lib/passes/type_analysis.ml: Hashtbl Jitbull_mir Jitbull_runtime List Mir_util Pass Vuln_config
