lib/passes/vuln_config.ml: List String
