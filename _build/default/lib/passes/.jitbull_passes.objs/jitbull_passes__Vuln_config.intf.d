lib/passes/vuln_config.mli:
