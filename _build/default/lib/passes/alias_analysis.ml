(* Alias analysis: computes, for every memory load, a dependency token
   identifying the memory state it observes (see
   {!Mir_util.compute_load_deps}). The result is stored in the pass
   context for LICM; GVN recomputes its own tokens because the modeled
   GVN CVEs are precisely bugs in that computation. The IR itself is not
   modified, so this pass's Δ is always empty — as in IonMonkey, where
   Alias Analysis only annotates the graph. *)

module Mir = Jitbull_mir.Mir

let run (ctx : Pass.ctx) (g : Mir.t) =
  let deps = Mir_util.compute_load_deps g in
  ctx.Pass.aliases <- Some { Pass.load_deps = deps }

let pass : Pass.t = { Pass.name = "aliasanalysis"; can_disable = true; run }
