(* Bounds-check elimination.

   A [boundscheck(i, len)] is removed when
   (a) range analysis proves [i >= 0], and
   (b) a dominating [test] took the true branch of [compare_lt(i, len)]
       with {e the same} index and length definitions, so the check cannot
       fail (the length definition being the same SSA instruction means no
       intervening mutation was possible).

   CVE-2019-11707 variant: condition (b) accepts {e any} length load of
   the same array — ignoring that the length may have been mutated
   (pop / shrink) between the compare and the access, the incorrect
   range/bounds reasoning class of the real CVE. *)

module Mir = Jitbull_mir.Mir
module Domtree = Jitbull_mir.Domtree

(* The array instruction a length load observes: initializedlength goes
   through elements. *)
let array_of_length_load (len : Mir.instr) =
  match (len.Mir.opcode, len.Mir.operands) with
  | Mir.Array_length, [ arr ] -> Some arr
  | Mir.Initialized_length, [ el ] -> (
    match (el.Mir.opcode, el.Mir.operands) with
    | Mir.Elements, [ arr ] -> Some arr
    | _ -> None)
  | _ -> None

let run (ctx : Pass.ctx) (g : Mir.t) =
  let vulnerable = Vuln_config.is_active ctx.Pass.vulns Vuln_config.CVE_2019_11707 in
  let nonneg =
    match ctx.Pass.ranges with
    | Some r -> fun (i : Mir.instr) -> Hashtbl.mem r.Pass.nonneg i.Mir.iid
    | None -> fun _ -> false
  in
  let dom = Domtree.compute g in
  let blocks = Mir_util.block_map g in
  (* (condition instr, true successor) of every test *)
  let guards =
    List.filter_map
      (fun (b : Mir.block) ->
        match Mir.control_instr b with
        | Some { Mir.opcode = Mir.Test (t, _); operands = [ cond ]; _ } -> Some (cond, t)
        | _ -> None)
      g.Mir.blocks
  in
  (* strip unbox/tonumber wrappers when matching index operands *)
  let rec strip (i : Mir.instr) =
    match (i.Mir.opcode, i.Mir.operands) with
    | (Mir.Unbox_int32 | Mir.Unbox_number | Mir.To_number | Mir.Bounds_check), x :: _ ->
      strip x
    | _ -> i
  in
  let proves_in_bounds (chk_block : Mir.block) (idx : Mir.instr) (len : Mir.instr) =
    List.exists
      (fun ((cond : Mir.instr), (true_succ : Mir.block)) ->
        match (cond.Mir.opcode, cond.Mir.operands) with
        | Mir.Compare Mir.CLt, [ ci; cl ] ->
          let idx_matches = strip ci == strip idx in
          let len_matches =
            if vulnerable then
              (* BUG: any length load of the same array counts as proof *)
              match (array_of_length_load cl, array_of_length_load len) with
              | Some a1, Some a2 -> strip a1 == strip a2
              | _ -> cl == len
            else cl == len
          in
          idx_matches && len_matches && Domtree.dominates dom true_succ chk_block
        | _ -> false)
      guards
  in
  List.iter
    (fun (i : Mir.instr) ->
      match (i.Mir.opcode, i.Mir.operands) with
      | Mir.Bounds_check, [ idx; len ] ->
        if nonneg idx && proves_in_bounds (Hashtbl.find blocks i.Mir.in_block) idx len then begin
          Mir.replace_all_uses g i idx;
          Mir_util.remove_instr blocks i
        end
      | _ -> ())
    (Mir.all_instructions g)

let pass : Pass.t = { Pass.name = "boundscheckelim"; can_disable = true; run }
