(* Constant folding.

   Pure operations over constants are evaluated at compile time through
   the same {!Value_ops} the runtime uses, so folding can never disagree
   with execution.

   CVE-2019-9795 variant: additionally folds away a [boundscheck] whose
   index is a constant [k] when the checked array's allocation site
   ([newarray n]) is visible in the same graph and [k < n] — trusting the
   static allocation length and ignoring that the array may have been
   shrunk between allocation and access (the incorrect-assumption bug
   class of the real CVE). *)

module Mir = Jitbull_mir.Mir
module Value = Jitbull_runtime.Value
module Value_ops = Jitbull_runtime.Value_ops
module Ast = Jitbull_frontend.Ast

let ast_of_num_binop : Mir.num_binop -> Ast.binop = function
  | Mir.NSub -> Ast.Sub
  | Mir.NMul -> Ast.Mul
  | Mir.NDiv -> Ast.Div
  | Mir.NMod -> Ast.Mod
  | Mir.NBit_and -> Ast.Bit_and
  | Mir.NBit_or -> Ast.Bit_or
  | Mir.NBit_xor -> Ast.Bit_xor
  | Mir.NShl -> Ast.Shl
  | Mir.NShr -> Ast.Shr
  | Mir.NUshr -> Ast.Ushr

let ast_of_compare : Mir.compare_op -> Ast.binop = function
  | Mir.CLt -> Ast.Lt
  | Mir.CLe -> Ast.Le
  | Mir.CGt -> Ast.Gt
  | Mir.CGe -> Ast.Ge
  | Mir.CEq -> Ast.Eq
  | Mir.CNeq -> Ast.Neq
  | Mir.CStrict_eq -> Ast.Strict_eq
  | Mir.CStrict_neq -> Ast.Strict_neq

let const_of (i : Mir.instr) =
  match i.Mir.opcode with
  | Mir.Constant v -> Some v
  | _ -> None

(* Walk to the array definition behind guard/unbox wrappers. *)
let rec strip (i : Mir.instr) =
  match (i.Mir.opcode, i.Mir.operands) with
  | (Mir.Guard_array | Mir.Unbox_int32 | Mir.Unbox_number | Mir.To_number), [ x ] -> strip x
  | _ -> i

let run (ctx : Pass.ctx) (g : Mir.t) =
  let vulnerable = Vuln_config.is_active ctx.Pass.vulns Vuln_config.CVE_2019_9795 in
  let blocks = Mir_util.block_map g in
  let fold_to (i : Mir.instr) (v : Value.t) =
    (* rewrite in place into a constant: keeps the definition point, so
       dominance is untouched *)
    i.Mir.opcode <- Mir.Constant v;
    i.Mir.operands <- []
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (i : Mir.instr) ->
        match (i.Mir.opcode, List.map const_of i.Mir.operands) with
        | Mir.Bin_num op, [ Some a; Some b ] ->
          fold_to i (Value_ops.binary (ast_of_num_binop op) a b);
          changed := true
        | Mir.Add, [ Some a; Some b ] ->
          fold_to i (Value_ops.binary Ast.Add a b);
          changed := true
        | Mir.Compare op, [ Some a; Some b ] ->
          fold_to i (Value_ops.binary (ast_of_compare op) a b);
          changed := true
        | Mir.Not, [ Some a ] ->
          fold_to i (Value_ops.unary Ast.Not a);
          changed := true
        | Mir.Negate, [ Some a ] ->
          fold_to i (Value_ops.unary Ast.Neg a);
          changed := true
        | Mir.Bit_not, [ Some a ] ->
          fold_to i (Value_ops.unary Ast.Bit_not a);
          changed := true
        | Mir.Typeof, [ Some a ] ->
          fold_to i (Value.String (Value.type_name a));
          changed := true
        | Mir.To_number, [ Some a ] ->
          fold_to i (Value.Number (Value_ops.to_number a));
          changed := true
        | Mir.Unbox_number, [ Some (Value.Number f) ] ->
          fold_to i (Value.Number f);
          changed := true
        | Mir.Unbox_int32, [ Some (Value.Number f) ]
          when Float.is_integer f && Float.abs f < 2147483648.0 ->
          fold_to i (Value.Number f);
          changed := true
        | _ -> ())
      (Mir.all_instructions g)
  done;
  if vulnerable then
    List.iter
      (fun (i : Mir.instr) ->
        match (i.Mir.opcode, i.Mir.operands) with
        | Mir.Bounds_check, [ idx; len ] -> (
          match (const_of (strip idx), Bounds_check_elim.array_of_length_load len) with
          | Some (Value.Number k), Some arr -> (
            match (strip arr).Mir.opcode with
            | Mir.New_array n when k >= 0.0 && int_of_float k < n ->
              (* BUG: trusts the allocation-site length *)
              Mir.replace_all_uses g i idx;
              Mir_util.remove_instr blocks i
            | _ -> ())
          | _ -> ())
        | _ -> ())
      (Mir.all_instructions g)

let pass : Pass.t = { Pass.name = "foldconstants"; can_disable = true; run }
