(* Dead code elimination.

   Roots: control instructions, instructions with side effects (writes),
   parameters, and guards — a guard's *check* is its purpose, so it must
   survive even when its pass-through value has no uses. Everything not
   reachable from a root through operand edges is deleted.

   CVE-2019-9813 variant: bounds checks are NOT roots, so a
   [boundscheck] whose value is unused — the store fast path, where the
   store indexes with the unboxed index directly — is deleted, leaving
   the store unguarded. This reproduces the "guard dropped because its
   result looked dead" logic-bug class. *)

module Mir = Jitbull_mir.Mir

let run (ctx : Pass.ctx) (g : Mir.t) =
  let vulnerable = Vuln_config.is_active ctx.Pass.vulns Vuln_config.CVE_2019_9813 in
  let live : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let rec mark (i : Mir.instr) =
    if not (Hashtbl.mem live i.Mir.iid) then begin
      Hashtbl.replace live i.Mir.iid ();
      List.iter mark i.Mir.operands
    end
  in
  let is_root (i : Mir.instr) =
    let eff = Mir.effects i.Mir.opcode in
    eff.Mir.is_control
    || eff.Mir.writes <> []
    || (match i.Mir.opcode with
       | Mir.Parameter _ | Mir.Call _ | Mir.Call_method _ | Mir.Array_pop -> true
       | Mir.Bounds_check -> not vulnerable  (* BUG when vulnerable *)
       | Mir.Unbox_number | Mir.Unbox_int32 | Mir.Guard_array -> true
       | _ -> false)
  in
  List.iter (fun i -> if is_root i then mark i) (Mir.all_instructions g);
  List.iter
    (fun (b : Mir.block) ->
      let keep (i : Mir.instr) = Hashtbl.mem live i.Mir.iid in
      b.Mir.phis <- List.filter keep b.Mir.phis;
      b.Mir.body <- List.filter keep b.Mir.body)
    g.Mir.blocks

let pass : Pass.t = { Pass.name = "dce"; can_disable = true; run }
