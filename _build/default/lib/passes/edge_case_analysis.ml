(* Edge-case analysis (annotation only): classifies numeric operations
   that can produce NaN or negative zero ([div], [mod] and [mul] with
   possibly-negative operands), the information IonMonkey's pass of the
   same name computes for later lowering decisions. Our lowering is
   untyped so nothing consumes it, but the pass participates in the
   pipeline (its Δ is always empty) to keep pass indices comparable with
   the paper's. *)

module Mir = Jitbull_mir.Mir

let classify (g : Mir.t) =
  List.filter
    (fun (i : Mir.instr) ->
      match i.Mir.opcode with
      | Mir.Bin_num (Mir.NDiv | Mir.NMod | Mir.NMul) -> true
      | _ -> false)
    (Mir.all_instructions g)

let run (_ctx : Pass.ctx) (g : Mir.t) = ignore (classify g)

let pass : Pass.t = { Pass.name = "edgecaseanalysis"; can_disable = true; run }
