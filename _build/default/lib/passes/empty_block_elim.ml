(* Eliminate empty blocks: a block containing only a goto (and no phis) is
   bypassed by retargeting its predecessors. Kept conservative so that the
   critical-edge invariant established earlier is never violated: a block
   is only removed when each predecessor has a single successor or the
   target has this block as its only predecessor. *)

module Mir = Jitbull_mir.Mir

let retarget (ctrl : Mir.instr) (from_ : Mir.block) (to_ : Mir.block) =
  ctrl.Mir.opcode <-
    (match ctrl.Mir.opcode with
    | Mir.Goto t when t == from_ -> Mir.Goto to_
    | Mir.Test (t, f) ->
      Mir.Test ((if t == from_ then to_ else t), if f == from_ then to_ else f)
    | op -> op)

let run (_ctx : Pass.ctx) (g : Mir.t) =
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (b : Mir.block) ->
        if b != g.Mir.entry && b.Mir.phis = [] then
          match b.Mir.body with
          | [ { Mir.opcode = Mir.Goto target; _ } ]
            when target != b
                 && (List.for_all
                       (fun (p : Mir.block) -> List.length (Mir.successors p) = 1)
                       b.Mir.preds
                    (* a multi-successor pred may only take over the edge
                       when the target carries no phis — otherwise we would
                       recreate a critical edge with phi moves on it *)
                    || (List.length target.Mir.preds = 1 && target.Mir.phis = [])) ->
            (* replace b's slot in target.preds with b's predecessors,
               duplicating the corresponding phi operand as needed *)
            let position =
              let rec find k = function
                | [] -> None
                | p :: rest -> if p == b then Some k else find (k + 1) rest
              in
              find 0 target.Mir.preds
            in
            (match position with
            | None -> ()
            | Some k ->
              let expand lst inserted =
                List.concat
                  (List.mapi (fun i x -> if i = k then inserted else [ x ]) lst)
              in
              target.Mir.preds <- expand target.Mir.preds b.Mir.preds;
              List.iter
                (fun (phi : Mir.instr) ->
                  let op_k = List.nth phi.Mir.operands k in
                  phi.Mir.operands <-
                    expand phi.Mir.operands (List.map (fun _ -> op_k) b.Mir.preds))
                target.Mir.phis;
              List.iter
                (fun (p : Mir.block) ->
                  match Mir.control_instr p with
                  | Some ctrl -> retarget ctrl b target
                  | None -> ())
                b.Mir.preds;
              g.Mir.blocks <- List.filter (fun x -> x != b) g.Mir.blocks;
              changed := true)
          | _ -> ())
      g.Mir.blocks
  done

let pass : Pass.t = { Pass.name = "emptyblocks"; can_disable = true; run }
