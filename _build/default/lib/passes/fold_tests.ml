(* Fold tests on constant conditions into gotos, removing the untaken edge
   and any blocks that become unreachable (adjusting phis of surviving
   successors). *)

module Mir = Jitbull_mir.Mir
module Value_ops = Jitbull_runtime.Value_ops

(* Remove the edge [pred → b]: drop the pred and the corresponding phi
   operand (by position). *)
let remove_edge (pred : Mir.block) (b : Mir.block) =
  let position =
    let rec find k = function
      | [] -> None
      | p :: rest -> if p == pred then Some k else find (k + 1) rest
    in
    find 0 b.Mir.preds
  in
  match position with
  | None -> ()
  | Some k ->
    b.Mir.preds <- List.filteri (fun i _ -> i <> k) b.Mir.preds;
    List.iter
      (fun (phi : Mir.instr) ->
        phi.Mir.operands <- List.filteri (fun i _ -> i <> k) phi.Mir.operands)
      b.Mir.phis

let run (_ctx : Pass.ctx) (g : Mir.t) =
  List.iter
    (fun (b : Mir.block) ->
      match Mir.control_instr b with
      | Some ({ Mir.opcode = Mir.Test (t, f); operands = [ cond ]; _ } as ctrl) -> (
        match cond.Mir.opcode with
        | Mir.Constant v ->
          let taken, untaken = if Value_ops.to_boolean v then (t, f) else (f, t) in
          ctrl.Mir.opcode <- Mir.Goto taken;
          ctrl.Mir.operands <- [];
          if untaken != taken then remove_edge b untaken
        | _ -> ())
      | Some _ | None -> ())
    g.Mir.blocks;
  (* cascade unreachable-block removal *)
  let reachable = Hashtbl.create 16 in
  let rec mark (b : Mir.block) =
    if not (Hashtbl.mem reachable b.Mir.bid) then begin
      Hashtbl.replace reachable b.Mir.bid ();
      List.iter mark (Mir.successors b)
    end
  in
  mark g.Mir.entry;
  let dead = List.filter (fun (b : Mir.block) -> not (Hashtbl.mem reachable b.Mir.bid)) g.Mir.blocks in
  List.iter
    (fun (d : Mir.block) -> List.iter (fun s -> remove_edge d s) (Mir.successors d))
    dead;
  g.Mir.blocks <- List.filter (fun (b : Mir.block) -> Hashtbl.mem reachable b.Mir.bid) g.Mir.blocks;
  (* edge removal can leave single-operand (trivial) phis behind; fold them
     here so later CFG passes and lowering see a clean graph even when the
     phi-elimination pass has already run (or is disabled) *)
  let blocks = Mir_util.block_map g in
  List.iter
    (fun (b : Mir.block) ->
      List.iter
        (fun (phi : Mir.instr) ->
          match phi.Mir.operands with
          | [ v ] when v != phi ->
            Mir.replace_all_uses g phi v;
            Mir_util.remove_instr blocks phi
          | _ -> ())
        b.Mir.phis)
    g.Mir.blocks

let pass : Pass.t = { Pass.name = "foldtests"; can_disable = true; run }
