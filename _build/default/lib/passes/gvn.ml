(* Global value numbering, dominance-based.

   Movable instructions (and guards) congruent to an earlier dominating
   instruction are replaced by it. Congruence means: same opcode key, same
   operands, and — for loads — the same alias dependency token, i.e. the
   same observed memory state.

   CVE-2019-17026 variant: the dependency computation treats
   [setarraylength] as writing nothing, so length loads before and after
   an [a.length = n] shrink get the same token and the later bounds check
   is judged redundant and eliminated — the exact mechanism of the real
   CVE (GVN removing a BoundsCheck after an incorrect dependency
   analysis).

   CVE-2019-9810 variant: same omission for [arraypush] (which can
   reallocate storage and grow the length), the paper noting that 9810 and
   17026 share a root cause. *)

module Mir = Jitbull_mir.Mir
module Domtree = Jitbull_mir.Domtree

let run (ctx : Pass.ctx) (g : Mir.t) =
  let vulns = ctx.Pass.vulns in
  (* CVE-2019-9810 and CVE-2019-17026 share the root bug (paper §III-B);
     either activates the broken dependency computation *)
  let ignore_setlength =
    Vuln_config.is_active vulns Vuln_config.CVE_2019_17026
    || Vuln_config.is_active vulns Vuln_config.CVE_2019_9810
  in
  let clobbers op cls =
    match op with
    | Mir.Set_array_length when ignore_setlength -> false  (* BUG *)
    | _ -> Mir_util.default_clobbers op cls
  in
  let deps = Mir_util.compute_load_deps ~clobbers g in
  let dom = Domtree.compute g in
  let blocks = Mir_util.block_map g in
  let table : (string, Mir.instr list) Hashtbl.t = Hashtbl.create 64 in
  let key (i : Mir.instr) =
    let ops = List.map (fun (o : Mir.instr) -> string_of_int o.Mir.iid) i.Mir.operands in
    let dep =
      match Hashtbl.find_opt deps i.Mir.iid with
      | Some (s, l) -> Printf.sprintf "@%d/%d" s l
      | None -> ""
    in
    Mir_util.opcode_key i.Mir.opcode ^ "(" ^ String.concat "," ops ^ ")" ^ dep
  in
  let eligible (i : Mir.instr) =
    let eff = Mir.effects i.Mir.opcode in
    (eff.Mir.is_movable || (match i.Mir.opcode with Mir.Constant _ -> true | _ -> false))
    && not eff.Mir.is_control
    && i.Mir.opcode <> Mir.Phi
  in
  List.iter
    (fun (b : Mir.block) ->
      List.iter
        (fun (i : Mir.instr) ->
          if eligible i then begin
            let k = key i in
            let candidates =
              match Hashtbl.find_opt table k with Some l -> l | None -> []
            in
            match
              List.find_opt
                (fun (r : Mir.instr) -> Domtree.instr_dominates dom r b ~use_instr:i)
                candidates
            with
            | Some rep ->
              Mir.replace_all_uses g i rep;
              Mir_util.remove_instr blocks i
            | None -> Hashtbl.replace table k (i :: candidates)
          end)
        b.Mir.body)
    g.Mir.blocks

let pass : Pass.t = { Pass.name = "gvn"; can_disable = true; run }
