(* Function inlining (IonMonkey inlines small hot callees during graph
   building; we model it as an early pass).

   A call site is inlined when:
   - the callee operand is a [loadglobal f] for a name the engine resolved
     (bound to a function and never reassigned anywhere in the program);
   - the callee's MIR is small enough ([max_callee_size]);
   - the caller has not grown past [max_caller_size];
   - argument count handling: missing arguments become [undefined],
     extra arguments are evaluated (they already were) and ignored.

   Splicing: the call block is split at the call; the callee's blocks are
   cloned into the caller (fresh instructions, parameters replaced by the
   argument values), the callee entry is jumped to, and every cloned
   [return] becomes a goto to the continuation block, where a phi merges
   the return values and replaces the call instruction. Bailouts inside
   inlined code replay the whole caller in the interpreter, which is
   always safe. *)

module Mir = Jitbull_mir.Mir
module Value = Jitbull_runtime.Value

let max_callee_size = 40
let max_caller_size = 400
let max_inlines_per_run = 4

let graph_size (g : Mir.t) = List.length (Mir.all_instructions g)

(* Clone [callee] into [g]. Returns (entry block clone, list of
   (return_block_clone, return_value_clone)). [arg_for i] supplies the
   caller-side value for parameter [i]. *)
let splice_clone (g : Mir.t) (callee : Mir.t) ~arg_for =
  let block_map : (int, Mir.block) Hashtbl.t = Hashtbl.create 16 in
  let instr_map : (int, Mir.instr) Hashtbl.t = Hashtbl.create 64 in
  (* first create empty target blocks *)
  List.iter
    (fun (b : Mir.block) -> Hashtbl.replace block_map b.Mir.bid (Mir.new_block g))
    callee.Mir.blocks;
  let clone_block (b : Mir.block) = Hashtbl.find block_map b.Mir.bid in
  let returns = ref [] in
  (* clone instructions (two phases: create, then wire operands) *)
  List.iter
    (fun (b : Mir.block) ->
      let nb = clone_block b in
      List.iter
        (fun (i : Mir.instr) ->
          let cloned =
            match i.Mir.opcode with
            | Mir.Parameter n -> arg_for n  (* no new instruction *)
            | Mir.Phi -> Mir.add_phi g nb []
            | Mir.Goto t -> Mir.append g nb (Mir.Goto (clone_block t)) []
            | Mir.Test (t, f) -> Mir.append g nb (Mir.Test (clone_block t, clone_block f)) []
            | Mir.Return ->
              (* becomes a goto to the continuation; target patched by the
                 caller of [splice_clone] *)
              let goto = Mir.append g nb (Mir.Goto nb) [] in
              returns := (nb, i, goto) :: !returns;
              goto
            | op -> Mir.append g nb op []
          in
          Hashtbl.replace instr_map i.Mir.iid cloned)
        (Mir.instructions b))
    callee.Mir.blocks;
  (* wire operands *)
  List.iter
    (fun (b : Mir.block) ->
      List.iter
        (fun (i : Mir.instr) ->
          match i.Mir.opcode with
          | Mir.Parameter _ | Mir.Return -> ()
          | _ ->
            let cloned = Hashtbl.find instr_map i.Mir.iid in
            cloned.Mir.operands <-
              List.map (fun (o : Mir.instr) -> Hashtbl.find instr_map o.Mir.iid) i.Mir.operands)
        (Mir.instructions b))
    callee.Mir.blocks;
  (* preds *)
  List.iter
    (fun (b : Mir.block) ->
      (clone_block b).Mir.preds <- List.map clone_block b.Mir.preds)
    callee.Mir.blocks;
  let return_sites =
    List.rev_map
      (fun ((nb : Mir.block), (ret : Mir.instr), (goto : Mir.instr)) ->
        let v =
          match ret.Mir.operands with
          | [ v ] -> Hashtbl.find instr_map v.Mir.iid
          | _ -> Mir.append g nb (Mir.Constant Value.Undefined) []
        in
        (nb, v, goto))
      !returns
  in
  (clone_block callee.Mir.entry, return_sites)

let inline_call (g : Mir.t) (b : Mir.block) (call : Mir.instr) (callee : Mir.t) =
  let args =
    match call.Mir.operands with
    | _ :: args -> Array.of_list args
    | [] -> [||]
  in
  (* undefined filler for missing arguments, defined before the call *)
  let undef = lazy (Mir.make_instr g (Mir.Constant Value.Undefined) []) in
  let arg_for n = if n < Array.length args then args.(n) else Lazy.force undef in
  (* split b at the call *)
  let rec split before = function
    | [] -> (List.rev before, [])
    | i :: rest when i == call -> (List.rev before, rest)
    | i :: rest -> split (i :: before) rest
  in
  let before, after = split [] b.Mir.body in
  let cont = Mir.new_block g in
  cont.Mir.body <- after;
  List.iter (fun (i : Mir.instr) -> i.Mir.in_block <- cont.Mir.bid) after;
  (* successors of the old control now have cont as the pred where b was *)
  List.iter
    (fun (s : Mir.block) ->
      s.Mir.preds <- List.map (fun p -> if p == b then cont else p) s.Mir.preds)
    (Mir.successors cont);
  let entry_clone, return_sites = splice_clone g callee ~arg_for in
  (* materialize the undefined filler at the end of [before] if used *)
  let before =
    if Lazy.is_val undef then begin
      let u = Lazy.force undef in
      u.Mir.in_block <- b.Mir.bid;
      before @ [ u ]
    end
    else before
  in
  let goto_entry = Mir.make_instr g (Mir.Goto entry_clone) [] in
  goto_entry.Mir.in_block <- b.Mir.bid;
  b.Mir.body <- before @ [ goto_entry ];
  entry_clone.Mir.preds <- [ b ];
  (* retarget cloned returns to cont and build the result phi *)
  List.iter
    (fun ((_ : Mir.block), (_ : Mir.instr), (goto : Mir.instr)) ->
      goto.Mir.opcode <- Mir.Goto cont)
    return_sites;
  cont.Mir.preds <- List.map (fun (nb, _, _) -> nb) return_sites;
  let result =
    match return_sites with
    | [ (_, v, _) ] -> v
    | _ :: _ -> Mir.add_phi g cont (List.map (fun (_, v, _) -> v) return_sites)
    | [] ->
      (* callee never returns (infinite loop): cont is unreachable; keep a
         dummy undefined value for uses *)
      let u = Mir.make_instr g (Mir.Constant Value.Undefined) [] in
      u.Mir.in_block <- cont.Mir.bid;
      cont.Mir.body <- u :: cont.Mir.body;
      u
  in
  Mir.replace_all_uses g call result;
  g.Mir.blocks <- Mir.compute_rpo g;
  Mir.renumber g

let run (ctx : Pass.ctx) (g : Mir.t) =
  let budget = ref max_inlines_per_run in
  (* names already judged non-inlinable: don't re-resolve them each scan *)
  let rejected : (string, unit) Hashtbl.t = Hashtbl.create 4 in
  let find_site () =
    List.find_map
      (fun (b : Mir.block) ->
        List.find_map
          (fun (i : Mir.instr) ->
            match (i.Mir.opcode, i.Mir.operands) with
            | Mir.Call _, { Mir.opcode = Mir.Load_global f; _ } :: _
              when not (Hashtbl.mem rejected f) ->
              Some (b, i, f)
            | _ -> None)
          b.Mir.body)
      g.Mir.blocks
  in
  let continue_ = ref true in
  while !continue_ && !budget > 0 do
    match find_site () with
    | None -> continue_ := false
    | Some (b, call, fname) -> (
      match ctx.Pass.inline_resolver fname with
      | Some callee
        when graph_size callee <= max_callee_size
             && graph_size g + graph_size callee <= max_caller_size
             && not (String.equal callee.Mir.name g.Mir.name) ->
        inline_call g b call callee;
        decr budget
      | Some _ | None -> Hashtbl.replace rejected fname ())
  done

let pass : Pass.t = { Pass.name = "inlining"; can_disable = true; run }
