(* Loop-invariant code motion.

   An instruction is hoisted to the loop preheader when it is movable (or
   a guard), all operands are defined outside the loop (or already
   hoisted), and — for loads — no instruction in the loop writes any alias
   class it reads. Hoisted guards that fail at runtime merely bail out to
   the interpreter, which is always safe.

   CVE-2019-9792 variant: the in-loop store check is skipped for element
   and length loads, so e.g. [initializedlength] is hoisted out of a loop
   whose body shrinks the array — every later iteration then bounds-checks
   against the stale pre-shrink length, exactly an incorrect-alias LICM
   bug. *)

module Mir = Jitbull_mir.Mir
module Domtree = Jitbull_mir.Domtree

let run (ctx : Pass.ctx) (g : Mir.t) =
  let vulnerable = Vuln_config.is_active ctx.Pass.vulns Vuln_config.CVE_2019_9792 in
  let dom = Domtree.compute g in
  let headers =
    List.filter
      (fun (h : Mir.block) -> List.exists (fun p -> Domtree.dominates dom h p) h.Mir.preds)
      g.Mir.blocks
  in
  List.iter
    (fun (header : Mir.block) ->
      let body = Domtree.loop_body dom g header in
      let preheaders =
        List.filter (fun (p : Mir.block) -> not (Hashtbl.mem body p.Mir.bid)) header.Mir.preds
      in
      match preheaders with
      | [ pre ] ->
        (* alias classes written anywhere in the loop *)
        let stored = Hashtbl.create 4 in
        List.iter
          (fun (b : Mir.block) ->
            if Hashtbl.mem body b.Mir.bid then
              List.iter
                (fun (i : Mir.instr) ->
                  List.iter
                    (fun cls -> Hashtbl.replace stored cls ())
                    (Mir.effects i.Mir.opcode).Mir.writes)
                (Mir.instructions b))
          g.Mir.blocks;
        let hoisted : (int, unit) Hashtbl.t = Hashtbl.create 16 in
        let defined_outside (o : Mir.instr) =
          (not (Hashtbl.mem body o.Mir.in_block)) || Hashtbl.mem hoisted o.Mir.iid
        in
        let loads_safe (i : Mir.instr) =
          let reads = (Mir.effects i.Mir.opcode).Mir.reads in
          if vulnerable then true  (* BUG: in-loop stores ignored *)
          else not (List.exists (Hashtbl.mem stored) reads)
        in
        let changed = ref true in
        while !changed do
          changed := false;
          List.iter
            (fun (b : Mir.block) ->
              if Hashtbl.mem body b.Mir.bid then
                List.iter
                  (fun (i : Mir.instr) ->
                    let eff = Mir.effects i.Mir.opcode in
                    if
                      (not (Hashtbl.mem hoisted i.Mir.iid))
                      && eff.Mir.is_movable
                      && i.Mir.opcode <> Mir.Phi
                      && List.for_all defined_outside i.Mir.operands
                      && loads_safe i
                    then begin
                      (* move to the preheader, before its control instr *)
                      b.Mir.body <- List.filter (fun x -> x != i) b.Mir.body;
                      Mir_util.insert_before_control pre i;
                      Hashtbl.replace hoisted i.Mir.iid ();
                      changed := true
                    end)
                  b.Mir.body)
            g.Mir.blocks
        done
      | _ -> ())
    headers

let pass : Pass.t = { Pass.name = "licm"; can_disable = true; run }
