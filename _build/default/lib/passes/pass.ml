(* Pass framework.

   A pass transforms the MIR graph in place. The shared [ctx] carries the
   vulnerability configuration (which passes run their buggy variant) and
   analysis results handed from annotation passes to their consumers
   (alias → LICM, range → BCE), mirroring IonMonkey where OptimizeMIR's
   passes communicate through graph annotations. *)

module Mir = Jitbull_mir.Mir

type range_info = {
  nonneg : (int, unit) Hashtbl.t;  (* iids proven >= 0 *)
}

type alias_info = {
  (* iid of load → dependency token: (last clobbering store iid, innermost
     clobbered-loop header bid). Loads with equal tokens see the same
     memory state. *)
  load_deps : (int, int * int) Hashtbl.t;
}

type ctx = {
  vulns : Vuln_config.t;
  mutable ranges : range_info option;
  mutable aliases : alias_info option;
  (* The inlining pass asks the engine for a callee's freshly built MIR by
     global name. The engine only resolves names that are (a) bound to a
     function at compile time and (b) never reassigned anywhere in the
     program, so inlining the static target is sound. [None] = callee not
     inlinable. *)
  inline_resolver : string -> Mir.t option;
}

let make_ctx ?(inline_resolver = fun _ -> None) vulns =
  { vulns; ranges = None; aliases = None; inline_resolver }

type t = {
  name : string;
  (* Mandatory passes cannot be disabled; JITBULL falls back to no-JIT for
     a function whose dangerous-pass list contains one (scenario 3 of the
     paper's §V). *)
  can_disable : bool;
  run : ctx -> Mir.t -> unit;
}
