(* Eliminate trivial phis: a phi whose operands (ignoring itself) are all
   the same definition is replaced by that definition. Loop-header phis
   created eagerly by the MIR builder are mostly of this kind. *)

module Mir = Jitbull_mir.Mir

let run (_ctx : Pass.ctx) (g : Mir.t) =
  let blocks = Mir_util.block_map g in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (b : Mir.block) ->
        List.iter
          (fun (phi : Mir.instr) ->
            let distinct =
              List.filter (fun (o : Mir.instr) -> o != phi) phi.Mir.operands
              |> List.sort_uniq (fun (a : Mir.instr) b -> compare a.Mir.iid b.Mir.iid)
            in
            match distinct with
            | [ v ] ->
              Mir.replace_all_uses g phi v;
              Mir_util.remove_instr blocks phi;
              changed := true
            | _ -> ())
          b.Mir.phis)
      g.Mir.blocks
  done

let pass : Pass.t = { Pass.name = "eliminatephis"; can_disable = true; run }
