module Mir = Jitbull_mir.Mir
module Snapshot = Jitbull_mir.Snapshot
module Verifier = Jitbull_mir.Verifier

let passes : Pass.t list =
  [
    Inline.pass;
    Split_critical_edges.pass;
    Phi_elimination.pass;
    Type_analysis.pass;
    Simplify.pass;
    Alias_analysis.pass;
    Gvn.pass;
    Licm.pass;
    Range_analysis.pass;
    Bounds_check_elim.pass;
    Constant_folding.pass;
    Fold_tests.pass;
    Empty_block_elim.pass;
    Dce.pass;
    Sink.pass;
    Edge_case_analysis.pass;
    Reorder.pass;
    Renumber.pass;
  ]

let pass_names = List.map (fun (p : Pass.t) -> p.Pass.name) passes

let find name = List.find_opt (fun (p : Pass.t) -> String.equal p.Pass.name name) passes

let can_disable name =
  match find name with
  | Some p -> p.Pass.can_disable
  | None -> false

(* Run without snapshotting: the engine uses this when JITBULL's database
   is empty, which is how the paper gets zero overhead in that case. *)
let run_quiet vulns ?inline_resolver ?(disabled = []) ?(verify = false) (g : Mir.t) =
  let ctx = Pass.make_ctx ?inline_resolver vulns in
  List.iter
    (fun (p : Pass.t) ->
      if not (List.mem p.Pass.name disabled) then begin
        p.Pass.run ctx g;
        if verify then Verifier.check g
      end)
    passes

let run vulns ?inline_resolver ?(disabled = []) ?(verify = false) (g : Mir.t) =
  let ctx = Pass.make_ctx ?inline_resolver vulns in
  let trace = ref [ ("initial", Snapshot.take g) ] in
  List.iter
    (fun (p : Pass.t) ->
      if not (List.mem p.Pass.name disabled) then begin
        p.Pass.run ctx g;
        if verify then Verifier.check g
      end;
      trace := (p.Pass.name, Snapshot.take g) :: !trace)
    passes;
  List.rev !trace
