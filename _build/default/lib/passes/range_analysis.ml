(* Range analysis (annotation only): proves which instructions always
   yield a non-negative number. Greatest fixpoint: assume everything
   non-negative, falsify until stable. Consumed by bounds-check
   elimination; the IR is untouched, so the pass's Δ is empty. *)

module Mir = Jitbull_mir.Mir
module Value = Jitbull_runtime.Value

let run (ctx : Pass.ctx) (g : Mir.t) =
  let nonneg : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let instrs = Mir.all_instructions g in
  List.iter (fun (i : Mir.instr) -> Hashtbl.replace nonneg i.Mir.iid ()) instrs;
  let is_nonneg (i : Mir.instr) = Hashtbl.mem nonneg i.Mir.iid in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (i : Mir.instr) ->
        if is_nonneg i then begin
          let still =
            match (i.Mir.opcode, i.Mir.operands) with
            | Mir.Constant (Value.Number f), _ -> f >= 0.0 && not (Float.is_nan f)
            | Mir.Constant _, _ -> false
            | (Mir.Unbox_int32 | Mir.Unbox_number | Mir.To_number | Mir.Bounds_check), x :: _
              ->
              is_nonneg x
            | Mir.Add, [ a; b ] -> is_nonneg a && is_nonneg b
            | Mir.Bin_num Mir.NMod, [ a; b ] -> is_nonneg a && is_nonneg b
            | Mir.Bin_num Mir.NUshr, _ -> true
            | (Mir.Initialized_length | Mir.Array_length | Mir.Array_push), _ -> true
            | Mir.Phi, ops -> List.for_all is_nonneg ops
            | _ -> false
          in
          if not still then begin
            Hashtbl.remove nonneg i.Mir.iid;
            changed := true
          end
        end)
      instrs
  done;
  ctx.Pass.ranges <- Some { Pass.nonneg }

let pass : Pass.t = { Pass.name = "rangeanalysis"; can_disable = true; run }
