(* Renumber instructions in block order. Mandatory bookkeeping before
   lowering; JITBULL's opcode-chain DNA is by construction insensitive to
   it (tested), which is what lets the paper's approach survive the
   renaming/minification variants. *)

module Mir = Jitbull_mir.Mir

let run (_ctx : Pass.ctx) (g : Mir.t) = Mir.renumber g

let pass : Pass.t = { Pass.name = "renumber"; can_disable = false; run }
