(* Instruction scheduling: sink a movable, effect-free instruction with a
   single user in the same block to just before that user, shortening live
   ranges before register allocation. Dependency edges are unchanged, so
   this pass's Δ is empty — it exists because IonMonkey reorders too, and
   JITBULL must be insensitive to pure reordering. *)

module Mir = Jitbull_mir.Mir

let run (_ctx : Pass.ctx) (g : Mir.t) =
  let users = Mir_util.users_of g in
  List.iter
    (fun (b : Mir.block) ->
      let moved = ref [] in
      (* collect candidates: movable, no reads (hoisting a load past a
         store would be wrong), single user later in the same block *)
      List.iter
        (fun (i : Mir.instr) ->
          let eff = Mir.effects i.Mir.opcode in
          if eff.Mir.is_movable && (not eff.Mir.is_guard) && eff.Mir.reads = [] then
            match Hashtbl.find_opt users i.Mir.iid with
            | Some [ user ] when user.Mir.in_block = b.Mir.bid && user.Mir.opcode <> Mir.Phi ->
              moved := (i, user) :: !moved
            | _ -> ())
        b.Mir.body;
      List.iter
        (fun ((i : Mir.instr), (user : Mir.instr)) ->
          if List.memq i b.Mir.body && List.memq user b.Mir.body then begin
            let without = List.filter (fun x -> x != i) b.Mir.body in
            (* only move forward: i must currently precede user *)
            let rec insert = function
              | [] -> [ i ]
              | x :: rest when x == user -> i :: x :: rest
              | x :: rest -> x :: insert rest
            in
            b.Mir.body <- insert without
          end)
        !moved)
    g.Mir.blocks

let pass : Pass.t = { Pass.name = "reordering"; can_disable = true; run }
