(* Instruction simplification / strength reduction.

   Only identities that hold for every JS number are applied ([Bin_num]
   operands are already unboxed or converted, so they are genuine numbers;
   NaN and -0 are checked case by case):
   - x * 1, x / 1, x - 0, x + 0 (numeric side) → x
   - negate(negate x) → x
   - tonumber(tonumber x) → inner (idempotent)
   - test(not x, t, f) → test(x, f, t) (branch inversion) *)

module Mir = Jitbull_mir.Mir
module Value = Jitbull_runtime.Value

let is_const_num (i : Mir.instr) f =
  match i.Mir.opcode with
  | Mir.Constant (Value.Number g) -> g = f
  | _ -> false

let run (_ctx : Pass.ctx) (g : Mir.t) =
  let blocks = Mir_util.block_map g in
  let replace_with (i : Mir.instr) (v : Mir.instr) =
    Mir.replace_all_uses g i v;
    Mir_util.remove_instr blocks i
  in
  List.iter
    (fun (i : Mir.instr) ->
      match (i.Mir.opcode, i.Mir.operands) with
      (* x * 1 = x, 1 * x = x: exact for every float incl. NaN and ±0 *)
      | Mir.Bin_num Mir.NMul, [ x; one ] when is_const_num one 1.0 -> replace_with i x
      | Mir.Bin_num Mir.NMul, [ one; x ] when is_const_num one 1.0 -> replace_with i x
      (* x / 1 = x *)
      | Mir.Bin_num Mir.NDiv, [ x; one ] when is_const_num one 1.0 -> replace_with i x
      (* x - 0 = x (x - (-0) would also be x; x = -0 gives -0 - 0 = -0 ✓) *)
      | Mir.Bin_num Mir.NSub, [ x; zero ] when is_const_num zero 0.0 -> replace_with i x
      (* negate(negate x) = x: the inner operand is already a number *)
      | Mir.Negate, [ { Mir.opcode = Mir.Negate; operands = [ x ]; _ } ] -> replace_with i x
      (* tonumber is idempotent *)
      | Mir.To_number, [ ({ Mir.opcode = Mir.To_number; _ } as inner) ] ->
        replace_with i inner
      | _ -> ())
    (Mir.all_instructions g);
  (* branch inversion: test(not x) swaps the targets *)
  List.iter
    (fun (b : Mir.block) ->
      match Mir.control_instr b with
      | Some ({ Mir.opcode = Mir.Test (t, f); operands = [ cond ]; _ } as ctrl) -> (
        match (cond.Mir.opcode, cond.Mir.operands) with
        | Mir.Not, [ x ] ->
          ctrl.Mir.opcode <- Mir.Test (f, t);
          ctrl.Mir.operands <- [ x ]
          (* [preds] of t/f are unchanged — only which edge is "true"
             flipped, and neither block can have phis keyed on edge
             direction (operands align with preds, which still contain
             exactly this block once) *)
        | _ -> ())
      | Some _ | None -> ())
    g.Mir.blocks

let pass : Pass.t = { Pass.name = "simplify"; can_disable = true; run }
