(* Sinking / store-to-load forwarding.

   Within a basic block, a [loadelement] of an (array, index) pair whose
   value was just stored is replaced by the stored value. Accesses are
   keyed by the underlying array definition (looking through
   [elements]/[guardarray]) and the index definition. Any other write to
   array state — or a call, which may reach arbitrary user code —
   invalidates the tracked stores.

   CVE-2020-26952 variant: calls do NOT invalidate, and the forwarded
   load's now-unused bounds check is deleted with it ("the replaced access
   no longer needs its check") — so a value is forwarded across a call
   that shrinks the array, leaking stale data without any bailout. This is
   the incorrect scalar-replacement reasoning of the real CVE. *)

module Mir = Jitbull_mir.Mir

let rec origin (i : Mir.instr) =
  match (i.Mir.opcode, i.Mir.operands) with
  | (Mir.Elements | Mir.Guard_array | Mir.Unbox_int32 | Mir.Unbox_number | Mir.Bounds_check), x :: _
    ->
    origin x
  | _ -> i

let run (ctx : Pass.ctx) (g : Mir.t) =
  let vulnerable = Vuln_config.is_active ctx.Pass.vulns Vuln_config.CVE_2020_26952 in
  let blocks = Mir_util.block_map g in
  List.iter
    (fun (b : Mir.block) ->
      let available : (int * int, Mir.instr) Hashtbl.t = Hashtbl.create 8 in
      let key el idx = ((origin el).Mir.iid, (origin idx).Mir.iid) in
      List.iter
        (fun (i : Mir.instr) ->
          match (i.Mir.opcode, i.Mir.operands) with
          | Mir.Store_element, [ el; idx; v ] ->
            Hashtbl.reset available;
            Hashtbl.replace available (key el idx) v
          | Mir.Load_element, [ el; idx ] -> (
            match Hashtbl.find_opt available (key el idx) with
            | Some v ->
              Mir.replace_all_uses g i v;
              Mir_util.remove_instr blocks i;
              if vulnerable then begin
                (* BUG: also delete the check that guarded the replaced
                   load when nothing else uses it *)
                match idx.Mir.opcode with
                | Mir.Bounds_check when not (Mir.has_uses g idx) ->
                  Mir_util.remove_instr blocks idx
                | _ -> ()
              end
            | None -> ())
          | (Mir.Call _ | Mir.Call_method _), _ ->
            if not vulnerable then Hashtbl.reset available
            (* BUG when vulnerable: stores stay available across the call *)
          | op, _ ->
            if (Mir.effects op).Mir.writes <> [] then Hashtbl.reset available)
        b.Mir.body)
    g.Mir.blocks

let pass : Pass.t = { Pass.name = "sink"; can_disable = true; run }
