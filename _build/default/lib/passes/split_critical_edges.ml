(* Split critical edges: an edge A→B where A has several successors and B
   several predecessors gets an intermediate block. Mandatory — SSA
   destruction during LIR lowering places parallel copies on edges and is
   only correct on a graph without critical edges. *)

module Mir = Jitbull_mir.Mir

let run (_ctx : Pass.ctx) (g : Mir.t) =
  let blocks = g.Mir.blocks in
  List.iter
    (fun (b : Mir.block) ->
      match Mir.control_instr b with
      | Some ({ Mir.opcode = Mir.Test (t, f); _ } as ctrl) when t != f ->
        let split (target : Mir.block) =
          if List.length target.Mir.preds > 1 then begin
            let c = Mir.new_block g in
            ignore (Mir.append g c (Mir.Goto target) []);
            (* replace [b] by [c] in the same predecessor slot so phi
               operands stay aligned *)
            target.Mir.preds <-
              List.map (fun p -> if p == b then c else p) target.Mir.preds;
            c.Mir.preds <- [ b ];
            c
          end
          else target
        in
        let t' = split t in
        let f' = split f in
        ctrl.Mir.opcode <- Mir.Test (t', f')
      | Some _ | None -> ())
    blocks;
  g.Mir.blocks <- Mir.compute_rpo g

let pass : Pass.t = { Pass.name = "splitcriticaledges"; can_disable = false; run }
