(* Type analysis / specialization: removes [tonumber] conversions and
   [unboxnumber] guards on values proven to already be numbers.

   Correct proof: greatest fixpoint — start by assuming every instruction
   numeric, then repeatedly falsify. A phi is numeric only if all its
   operands (including loop-carried ones) stay numeric.

   CVE-2019-9791 variant: the phi rule only consults the first (forward)
   operand, so a loop that starts with a number but later assigns another
   type keeps its "numeric" classification, and the unbox guard protecting
   downstream arithmetic is removed. At runtime, JITed arithmetic then
   reinterprets the raw value (e.g. an array handle as its heap address) —
   the type-confusion information leak of the real CVE. *)

module Mir = Jitbull_mir.Mir
module Value = Jitbull_runtime.Value

let produces_number (op : Mir.opcode) =
  match op with
  | Mir.Constant (Value.Number _) -> true
  | Mir.Bin_num _ | Mir.Negate | Mir.Bit_not | Mir.To_number | Mir.Unbox_number
  | Mir.Unbox_int32 | Mir.Bounds_check | Mir.Array_length | Mir.Initialized_length
  | Mir.Array_push ->
    true
  | _ -> false

let run (ctx : Pass.ctx) (g : Mir.t) =
  let vulnerable = Vuln_config.is_active ctx.Pass.vulns Vuln_config.CVE_2019_9791 in
  let numeric : (int, bool) Hashtbl.t = Hashtbl.create 64 in
  let instrs = Mir.all_instructions g in
  List.iter (fun (i : Mir.instr) -> Hashtbl.replace numeric i.Mir.iid true) instrs;
  let is_numeric (i : Mir.instr) =
    match Hashtbl.find_opt numeric i.Mir.iid with Some b -> b | None -> false
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (i : Mir.instr) ->
        if is_numeric i then begin
          let still =
            match i.Mir.opcode with
            | Mir.Phi ->
              if vulnerable then
                (* BUG: trusts the first (forward-edge) operand only *)
                (match i.Mir.operands with
                | first :: _ -> is_numeric first
                | [] -> false)
              else List.for_all is_numeric i.Mir.operands
            | op -> produces_number op
          in
          if not still then begin
            Hashtbl.replace numeric i.Mir.iid false;
            changed := true
          end
        end)
      instrs
  done;
  (* To_number/Unbox_number over proven numbers are identities *)
  let blocks = Mir_util.block_map g in
  List.iter
    (fun (i : Mir.instr) ->
      match (i.Mir.opcode, i.Mir.operands) with
      | (Mir.To_number | Mir.Unbox_number), [ x ] when is_numeric x ->
        Mir.replace_all_uses g i x;
        Mir_util.remove_instr blocks i
      | _ -> ())
    instrs

let pass : Pass.t = { Pass.name = "applytypes"; can_disable = true; run }
