type cve =
  | CVE_2019_17026
  | CVE_2019_9810
  | CVE_2019_9791
  | CVE_2019_11707
  | CVE_2019_9792
  | CVE_2019_9795
  | CVE_2019_9813
  | CVE_2020_26952

let all =
  [
    CVE_2019_17026;
    CVE_2019_9810;
    CVE_2019_9791;
    CVE_2019_11707;
    CVE_2019_9792;
    CVE_2019_9795;
    CVE_2019_9813;
    CVE_2020_26952;
  ]

let cve_name = function
  | CVE_2019_17026 -> "CVE-2019-17026"
  | CVE_2019_9810 -> "CVE-2019-9810"
  | CVE_2019_9791 -> "CVE-2019-9791"
  | CVE_2019_11707 -> "CVE-2019-11707"
  | CVE_2019_9792 -> "CVE-2019-9792"
  | CVE_2019_9795 -> "CVE-2019-9795"
  | CVE_2019_9813 -> "CVE-2019-9813"
  | CVE_2020_26952 -> "CVE-2020-26952"

let cve_of_name name = List.find_opt (fun c -> String.equal (cve_name c) name) all

type t = { active : cve list }

let none = { active = [] }

let make active = { active }

let is_active t cve = List.mem cve t.active

let active_list t = t.active
