(** Injectable optimization-pass bugs, one per modeled CVE.

    Each constructor corresponds to one real IonMonkey/SpiderMonkey CVE
    from the paper's evaluation and names the specific side-effect
    mis-modeling that reproduces its mechanism in our pass pipeline (see
    DESIGN.md §2 for the full mapping). An engine built with
    [Vuln_config.none] is the "patched" engine; activating a CVE makes the
    corresponding pass perform its buggy transformation, after which the
    bundled demonstrator code genuinely corrupts the simulated heap. *)

type cve =
  | CVE_2019_17026
      (** GVN: [setarraylength] treated as not clobbering length loads, so
          a bounds check made stale by [a.length = n] is deduplicated away. *)
  | CVE_2019_9810
      (** GVN: the same dependency-analysis bug as 17026 — the paper notes
          the two CVEs "rely on the same system bug" — exercised by a
          demonstrator with a different code shape. *)
  | CVE_2019_9791
      (** Type analysis: a phi is assumed numeric from its first (forward)
          operand only, so [unboxnumber] guards protecting loop-carried
          values are removed. *)
  | CVE_2019_11707
      (** Bounds-check elimination: accepts any length load of the same
          array as proof, ignoring length mutations (pop/shrink) between
          the compare and the access. *)
  | CVE_2019_9792
      (** LICM: hoists element/length loads out of loops that contain
          stores to the same alias class. *)
  | CVE_2019_9795
      (** Constant folding: folds a [boundscheck] on a constant index
          against the allocation-site length, ignoring runtime shrinks. *)
  | CVE_2019_9813
      (** DCE: removes guards whose value has no uses (bounds checks on
          the store fast path). *)
  | CVE_2020_26952
      (** Sink/store-forwarding: forwards a stored element to a later load
          across calls that may mutate the array. *)

val all : cve list

val cve_name : cve -> string  (** e.g. ["CVE-2019-17026"] *)

val cve_of_name : string -> cve option

type t

val none : t

val make : cve list -> t

val is_active : t -> cve -> bool

val active_list : t -> cve list
