lib/runtime/builtins.ml: Char Errors Float Hashtbl Heap Int32 Jitbull_util List Realm String Value Value_ops
