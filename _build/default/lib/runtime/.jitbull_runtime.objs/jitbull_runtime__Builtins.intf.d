lib/runtime/builtins.mli: Realm Value
