lib/runtime/errors.ml: Format
