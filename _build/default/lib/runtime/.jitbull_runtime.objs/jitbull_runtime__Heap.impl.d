lib/runtime/heap.ml: Array Errors Float List Printf Value
