lib/runtime/heap.mli: Value
