lib/runtime/realm.ml: Buffer Heap Jitbull_util Value
