lib/runtime/realm.mli: Buffer Heap Jitbull_util Value
