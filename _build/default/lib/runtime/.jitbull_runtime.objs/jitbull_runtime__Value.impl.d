lib/runtime/value.ml: Float Format Hashtbl List Printf String
