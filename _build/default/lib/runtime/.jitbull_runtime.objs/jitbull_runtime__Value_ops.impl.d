lib/runtime/value_ops.ml: Bool Float Int32 Int64 Jitbull_frontend String Value
