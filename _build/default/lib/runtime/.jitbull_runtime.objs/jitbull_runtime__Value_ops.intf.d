lib/runtime/value_ops.mli: Jitbull_frontend Value
