type method_result =
  [ `Value of Value.t
  | `User_function of int * Value.t list
  ]

let is_namespace = function
  | "Math" | "String" -> true
  | _ -> false

let is_global_function = function
  | "print" | "__sentinelIntact" | "__heapCells" | "__heapSize" | "__arrayBase" -> true
  | _ -> false

let arg n args = match List.nth_opt args n with Some v -> v | None -> Value.Undefined

let num n args = Value_ops.to_number (arg n args)

let call_global (realm : Realm.t) name args =
  match name with
  | "print" ->
    List.iter (Realm.print realm) (if args = [] then [ Value.Undefined ] else args);
    Value.Undefined
  | "__sentinelIntact" -> Value.Bool (Heap.sentinel_intact realm.Realm.heap)
  | "__heapCells" -> Value.Number (float_of_int (Heap.cells_used realm.Realm.heap))
  | "__heapSize" -> Value.Number (float_of_int (Heap.size realm.Realm.heap))
  | "__arrayBase" -> (
    match arg 0 args with
    | Value.Array h -> Value.Number (float_of_int (Heap.base_addr realm.Realm.heap h))
    | _ -> Value.Undefined)
  | _ -> Errors.type_error "unknown global function %s" name

let math_constant = function
  | "PI" -> Some (Value.Number Float.pi)
  | "E" -> Some (Value.Number (Float.exp 1.0))
  | "SQRT2" -> Some (Value.Number (Float.sqrt 2.0))
  | _ -> None

let call_math (realm : Realm.t) fn args =
  let unary f = Value.Number (f (num 0 args)) in
  match fn with
  | "floor" -> unary Float.floor
  | "ceil" -> unary Float.ceil
  | "round" -> unary (fun f -> Float.floor (f +. 0.5))
  | "abs" -> unary Float.abs
  | "sqrt" -> unary Float.sqrt
  | "sin" -> unary Float.sin
  | "cos" -> unary Float.cos
  | "tan" -> unary Float.tan
  | "atan" -> unary Float.atan
  | "exp" -> unary Float.exp
  | "log" -> unary Float.log
  | "atan2" -> Value.Number (Float.atan2 (num 0 args) (num 1 args))
  | "pow" -> Value.Number (Float.pow (num 0 args) (num 1 args))
  | "min" ->
    if args = [] then Value.Number Float.infinity
    else Value.Number (List.fold_left (fun acc v -> Float.min acc (Value_ops.to_number v)) Float.infinity args)
  | "max" ->
    if args = [] then Value.Number Float.neg_infinity
    else Value.Number (List.fold_left (fun acc v -> Float.max acc (Value_ops.to_number v)) Float.neg_infinity args)
  | "random" -> Value.Number (Jitbull_util.Prng.float realm.Realm.prng)
  | _ -> Errors.type_error "Math.%s is not a function" fn

let call_string_ns fn args =
  match fn with
  | "fromCharCode" ->
    let chars =
      List.map
        (fun v ->
          let code = Int32.to_int (Value_ops.to_int32 (Value_ops.to_number v)) land 0xFF in
          String.make 1 (Char.chr code))
        args
    in
    Value.String (String.concat "" chars)
  | _ -> Errors.type_error "String.%s is not a function" fn

let call_namespace realm ns fn args =
  match ns with
  | "Math" -> call_math realm fn args
  | "String" -> call_string_ns fn args
  | _ -> Errors.type_error "unknown namespace %s" ns

let namespace_member ns name =
  match ns with
  | "Math" -> (
    match math_constant name with
    | Some v -> v
    | None -> Value.Builtin ("Math." ^ name))
  | "String" -> Value.Builtin ("String." ^ name)
  | _ -> Value.Undefined

let call_builtin realm qualified args =
  match String.index_opt qualified '.' with
  | Some i ->
    let ns = String.sub qualified 0 i in
    let fn = String.sub qualified (i + 1) (String.length qualified - i - 1) in
    call_namespace realm ns fn args
  | None -> call_global realm qualified args

(* Array methods. *)

let array_method (realm : Realm.t) h name args : method_result =
  let heap = realm.Realm.heap in
  match name with
  | "push" ->
    List.iter (Heap.push heap h) args;
    `Value (Value.Number (float_of_int (Heap.length heap h)))
  | "pop" -> `Value (Heap.pop heap h)
  | "indexOf" ->
    let target = arg 0 args in
    let len = Heap.length heap h in
    let rec find i =
      if i >= len then -1
      else if Value_ops.strict_equal (Heap.get heap h i) target then i
      else find (i + 1)
    in
    `Value (Value.Number (float_of_int (find 0)))
  | "join" ->
    let sep = match arg 0 args with Value.Undefined -> "," | v -> Value_ops.to_string v in
    let len = Heap.length heap h in
    let parts = List.init len (fun i -> Value_ops.to_string (Heap.get heap h i)) in
    `Value (Value.String (String.concat sep parts))
  | "slice" ->
    let len = Heap.length heap h in
    let clamp i = max 0 (min len i) in
    let start =
      match arg 0 args with
      | Value.Undefined -> 0
      | v ->
        let i = int_of_float (Value_ops.to_number v) in
        clamp (if i < 0 then len + i else i)
    in
    let stop =
      match arg 1 args with
      | Value.Undefined -> len
      | v ->
        let i = int_of_float (Value_ops.to_number v) in
        clamp (if i < 0 then len + i else i)
    in
    let n = max 0 (stop - start) in
    let dst = Heap.alloc_array heap ~length:n in
    for i = 0 to n - 1 do
      Heap.set heap dst i (Heap.get heap h (start + i))
    done;
    `Value (Value.Array dst)
  | _ -> Errors.type_error "array has no method %s" name

(* String methods. *)

let string_method s name args : method_result =
  match name with
  | "charCodeAt" -> (
    let i = int_of_float (num 0 args) in
    if i >= 0 && i < String.length s then `Value (Value.Number (float_of_int (Char.code s.[i])))
    else `Value (Value.Number Float.nan))
  | "charAt" -> (
    let i = int_of_float (num 0 args) in
    if i >= 0 && i < String.length s then `Value (Value.String (String.make 1 s.[i]))
    else `Value (Value.String ""))
  | "indexOf" -> (
    let needle = Value_ops.to_string (arg 0 args) in
    let n = String.length needle and m = String.length s in
    let rec find i =
      if i + n > m then -1
      else if String.sub s i n = needle then i
      else find (i + 1)
    in
    `Value (Value.Number (float_of_int (find 0))))
  | "substring" ->
    let m = String.length s in
    let clamp v = max 0 (min m v) in
    let a = clamp (int_of_float (num 0 args)) in
    let b =
      match arg 1 args with
      | Value.Undefined -> m
      | v -> clamp (int_of_float (Value_ops.to_number v))
    in
    let lo = min a b and hi = max a b in
    `Value (Value.String (String.sub s lo (hi - lo)))
  | "split" ->
    Errors.type_error "string.split is not supported by the subset"
  | _ -> Errors.type_error "string has no method %s" name

let call_method realm receiver name args : method_result =
  match receiver with
  | Value.Builtin ns when is_namespace ns -> `Value (call_namespace realm ns name args)
  | Value.Array h -> array_method realm h name args
  | Value.String s -> string_method s name args
  | Value.Object tbl -> (
    match Hashtbl.find_opt tbl name with
    | Some (Value.Function idx) -> `User_function (idx, args)
    | Some (Value.Builtin q) -> `Value (call_builtin realm q args)
    | Some v -> Errors.type_error "property %s is not a function (%s)" name (Value.type_name v)
    | None -> Errors.type_error "object has no method %s" name)
  | v -> Errors.type_error "%s has no methods" (Value.type_name v)

let get_member (realm : Realm.t) receiver name =
  match receiver with
  | Value.Builtin ns when is_namespace ns -> namespace_member ns name
  | Value.Array h ->
    if name = "length" then Value.Number (float_of_int (Heap.length realm.Realm.heap h))
    else Value.Undefined
  | Value.String s ->
    if name = "length" then Value.Number (float_of_int (String.length s)) else Value.Undefined
  | Value.Object tbl -> (
    match Hashtbl.find_opt tbl name with
    | Some v -> v
    | None -> Value.Undefined)
  | v -> Errors.type_error "cannot read property %s of %s" name (Value.type_name v)

let set_member (realm : Realm.t) receiver name v =
  match receiver with
  | Value.Array h when name = "length" ->
    let n = int_of_float (Value_ops.to_number v) in
    Heap.set_length realm.Realm.heap h n
  | Value.Object tbl -> Hashtbl.replace tbl name v
  | recv -> Errors.type_error "cannot set property %s of %s" name (Value.type_name recv)
