(** Builtin namespaces ([Math], [String]), global functions ([print] and
    the [__]-prefixed introspection hooks), and the methods of array,
    string and object values.

    All tiers (interpreter, bytecode VM, LIR executor) funnel builtin
    behaviour through this module so semantics cannot drift between
    tiers. Calls that must re-enter user code (an object property holding a
    user function) are returned as [`User_function] for the engine to
    dispatch. *)

type method_result =
  [ `Value of Value.t  (** handled internally *)
  | `User_function of int * Value.t list  (** engine must call function [i] *)
  ]

(** [is_namespace name] — [Math] and [String] are reserved global
    namespaces. *)
val is_namespace : string -> bool

(** [is_global_function name] — [print] and the introspection hooks. *)
val is_global_function : string -> bool

(** [call_global realm name args] invokes a global builtin function.
    Raises {!Errors.Type_error} for unknown names. *)
val call_global : Realm.t -> string -> Value.t list -> Value.t

(** [call_namespace realm ns fn args] invokes [ns.fn(args)], e.g.
    [Math.floor]. *)
val call_namespace : Realm.t -> string -> string -> Value.t list -> Value.t

(** [namespace_member ns name] reads a namespace constant such as
    [Math.PI]; unknown members are [Undefined]. Functions are returned as
    [Value.Builtin "ns.fn"]. *)
val namespace_member : string -> string -> Value.t

(** [call_builtin realm qualified args] invokes a [Value.Builtin] value,
    e.g. ["Math.floor"]. *)
val call_builtin : Realm.t -> string -> Value.t list -> Value.t

(** [call_method realm receiver name args] dispatches a method call on an
    array ([push], [pop], [indexOf], [join], [slice]), string ([charCodeAt],
    [charAt], [indexOf], [substring], [split]) or object (property holding a
    function). *)
val call_method : Realm.t -> Value.t -> string -> Value.t list -> method_result

(** [get_member realm receiver name] reads a property: [length] of
    arrays/strings, object fields, namespace members. Unknown properties are
    [Undefined]. *)
val get_member : Realm.t -> Value.t -> string -> Value.t

(** [set_member realm receiver name v] writes a property: [length] of an
    array resizes it; object fields are stored; anything else raises
    {!Errors.Type_error}. *)
val set_member : Realm.t -> Value.t -> string -> Value.t -> unit
