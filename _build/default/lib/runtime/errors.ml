(* Runtime error conditions shared by every execution tier. *)

(* A JS-level type error (e.g. calling a number). *)
exception Type_error of string

(* An out-of-heap memory access performed by *unchecked* (JITed) code —
   the simulator's equivalent of a segmentation fault. Reaching this means a
   bounds check that should have protected the access was not executed. *)
exception Crash of string

(* The simulated JIT code pointer sentinel was overwritten and control was
   about to transfer through it: the modeled exploit achieved "shellcode
   execution". *)
exception Shellcode_executed of string

(* The flat heap is full and cannot grow further. *)
exception Heap_exhausted

let type_error fmt = Format.kasprintf (fun s -> raise (Type_error s)) fmt
let crash fmt = Format.kasprintf (fun s -> raise (Crash s)) fmt
