let sentinel_magic = 49374.0 (* 0xC0DE *)

type free_region = {
  addr : int;
  size : int;
}

type t = {
  cells : Value.t array;
  mutable brk : int;                 (* bump pointer *)
  mutable free : free_region list;   (* reclaimed regions, first-fit *)
  mutable table : int array;         (* handle -> base address *)
  mutable next_handle : int;
  mutable sentinel_addr : int;       (* -1 when not allocated *)
}

let size t = Array.length t.cells

let create ?(size_limit = 1 lsl 18) () =
  {
    cells = Array.make size_limit Value.Undefined;
    brk = 0;
    free = [];
    table = Array.make 64 (-1);
    next_handle = 0;
    sentinel_addr = -1;
  }

(* First-fit allocation from the free list, falling back to bumping. The
   sentinel occupies the top two cells, which the bump pointer may not
   reach. *)
let alloc_cells t n =
  let rec take acc = function
    | [] -> None
    | r :: rest when r.size >= n ->
      let remainder =
        if r.size > n then [ { addr = r.addr + n; size = r.size - n } ] else []
      in
      t.free <- List.rev_append acc (remainder @ rest);
      Some r.addr
    | r :: rest -> take (r :: acc) rest
  in
  match take [] t.free with
  | Some addr -> addr
  | None ->
    let limit = if t.sentinel_addr >= 0 then t.sentinel_addr else size t in
    if t.brk + n > limit then raise Errors.Heap_exhausted;
    let base = t.brk in
    t.brk <- t.brk + n;
    base

let free_cells t addr n =
  if n > 0 then begin
    for i = addr to addr + n - 1 do
      t.cells.(i) <- Value.Undefined
    done;
    t.free <- { addr; size = n } :: t.free
  end

let fresh_handle t =
  let h = t.next_handle in
  t.next_handle <- h + 1;
  if h >= Array.length t.table then begin
    let table = Array.make (2 * Array.length t.table) (-1) in
    Array.blit t.table 0 table 0 (Array.length t.table);
    t.table <- table
  end;
  h

let write_header t base ~length ~capacity =
  t.cells.(base) <- Value.Number (float_of_int length);
  t.cells.(base + 1) <- Value.Number (float_of_int capacity)

let alloc_region t ~length ~capacity =
  let base = alloc_cells t (2 + capacity) in
  write_header t base ~length ~capacity;
  for i = 0 to length - 1 do
    t.cells.(base + 2 + i) <- Value.Undefined
  done;
  base

let alloc_array t ~length =
  let capacity = max length 1 in
  let base = alloc_region t ~length ~capacity in
  let h = fresh_handle t in
  t.table.(h) <- base;
  h

let base_addr t h = t.table.(h)

(* The sentinel lives in the top two cells of the heap: a forged
   read/write primitive built from a corrupted array length (whose reach
   is forward from the array's base) can always reach it. *)
let alloc_sentinel t =
  let base = size t - 2 in
  t.cells.(base) <- Value.Number sentinel_magic;
  t.cells.(base + 1) <- Value.Number sentinel_magic;
  t.sentinel_addr <- base;
  base

let sentinel_intact t =
  t.sentinel_addr < 0
  ||
  match t.cells.(t.sentinel_addr) with
  | Value.Number f -> f = sentinel_magic
  | _ -> false

let check_sentinel t =
  if not (sentinel_intact t) then
    raise
      (Errors.Shellcode_executed
         (Printf.sprintf "JIT code pointer at heap cell %d was overwritten" t.sentinel_addr))

(* Header reads must tolerate corruption: an exploit may have overwritten a
   length cell with an arbitrary value; a real engine reads whatever bytes
   are there. *)
let header_int t addr =
  match t.cells.(addr) with
  | Value.Number f when Float.is_nan f -> 0
  | Value.Number f -> int_of_float f
  | _ -> 0

let length t h = header_int t t.table.(h)

let capacity t h = header_int t (t.table.(h) + 1)

(* Shrinking reclaims the storage tail (SpiderMonkey "reclaims memory
   areas that no longer belong to the array" — the behaviour
   CVE-2019-17026's exploit depends on: a victim object allocated next
   lands in the reclaimed region, right after the shrunk array). Growing
   past capacity reallocates and frees the old region. *)
let set_length t h n =
  let n = max n 0 in
  let base = t.table.(h) in
  let cap = header_int t (base + 1) in
  let old_len = header_int t base in
  if n <= cap then begin
    for i = old_len to n - 1 do
      t.cells.(base + 2 + i) <- Value.Undefined
    done;
    let new_cap = max n 1 in
    if new_cap < cap then begin
      write_header t base ~length:n ~capacity:new_cap;
      free_cells t (base + 2 + new_cap) (cap - new_cap)
    end
    else t.cells.(base) <- Value.Number (float_of_int n)
  end
  else begin
    let new_cap = max n (2 * cap) in
    let new_base = alloc_region t ~length:n ~capacity:new_cap in
    Array.blit t.cells (base + 2) t.cells (new_base + 2) (min old_len n);
    for i = old_len to n - 1 do
      t.cells.(new_base + 2 + i) <- Value.Undefined
    done;
    t.table.(h) <- new_base;
    free_cells t base (2 + cap)
  end

(* Checked accesses bound the physical heap as well, so that a corrupted
   length header lets scripts read/write far beyond the array (the forged
   r/w primitive) without crashing the host. *)
let get t h i =
  let base = t.table.(h) in
  let len = header_int t base in
  let addr = base + 2 + i in
  if i >= 0 && i < len && addr < size t then t.cells.(addr) else Value.Undefined

let set t h i v =
  let base = t.table.(h) in
  let len = header_int t base in
  let addr = base + 2 + i in
  if i >= 0 && i < len then begin
    if addr < size t then t.cells.(addr) <- v
  end
  else if i = len then begin
    set_length t h (len + 1);
    let base = t.table.(h) in
    t.cells.(base + 2 + i) <- v
  end
  (* sparse writes further out are ignored: the subset only supports dense
     arrays *)

let get_unchecked t h i =
  let base = t.table.(h) in
  let addr = base + 2 + i in
  if addr < 0 || addr >= size t then
    Errors.crash "OOB read at heap address %d (heap size %d)" addr (size t)
  else t.cells.(addr)

let set_unchecked t h i v =
  let base = t.table.(h) in
  let addr = base + 2 + i in
  if addr < 0 || addr >= size t then
    Errors.crash "OOB write at heap address %d (heap size %d)" addr (size t)
  else t.cells.(addr) <- v

let push t h v =
  let base = t.table.(h) in
  let len = header_int t base in
  let cap = header_int t (base + 1) in
  if len < cap then begin
    t.cells.(base + 2 + len) <- v;
    t.cells.(base) <- Value.Number (float_of_int (len + 1))
  end
  else begin
    set_length t h (len + 1);
    let base = t.table.(h) in
    t.cells.(base + 2 + len) <- v
  end

(* pop does not reclaim storage (JS engines shrink lazily if at all). *)
let pop t h =
  let base = t.table.(h) in
  let len = header_int t base in
  if len <= 0 then Value.Undefined
  else begin
    let v = t.cells.(base + 2 + (len - 1)) in
    t.cells.(base) <- Value.Number (float_of_int (len - 1));
    v
  end

let cells_used t = t.brk
