(** Flat simulated heap for JS arrays.

    Array {e storage} is laid out contiguously, SpiderMonkey-style, as
    [| length; capacity; elem0; elem1; ... |] where the header cells hold
    [Value.Number]s. Allocation is first-fit over a free list, falling
    back to bumping, so consecutive allocations are adjacent and —
    crucially for the modeled CVEs — an object allocated after an array
    shrink lands in the {e reclaimed} region right behind the shrunk
    array, where a stale bounds check lets JITed code overwrite it.

    Array {e handles} (the [int] carried by [Value.Array]) are indices into
    an object table mapping handle → current base address, so arrays can be
    reallocated (e.g. by [push] past capacity, which frees the old region)
    without invalidating handles.

    Reclaim policy, mirroring the behaviours the CVE exploits depend on:
    - [set_length] to a smaller value shrinks capacity and frees the tail;
    - growing past capacity reallocates and frees the old region;
    - [pop] only decrements the length (lazy shrink).

    Two access families:
    - {e checked} accessors ([get]/[set]) enforce the logical length (and,
      defensively, the physical heap bound — a corrupted length header
      yields a forged read/write primitive over the whole heap rather than
      a host crash), as the interpreter and bytecode VM do;
    - {e unchecked} accessors only enforce physical heap bounds (beyond
      which they raise {!Errors.Crash}), as JITed code does once its
      [boundscheck] instruction has been (possibly wrongly) optimized
      away.

    A {e sentinel} pair of cells at the very top of the heap stands in for
    a function's JIT code pointer; a forged forward-reaching primitive can
    always reach it. [check_sentinel] raises {!Errors.Shellcode_executed}
    when the magic value has been tampered with; the engine calls it
    before transferring control to JITed code. *)

type t

(** Magic value stored in the sentinel cell (recognizable to exploit code
    scanning memory with a forged read primitive). *)
val sentinel_magic : float

(** [create ?size_limit ()] builds a heap of exactly [size_limit] cells
    (default [1 lsl 18]; the array is GC-scanned, so outsized heaps cost
    real time per realm). Exhausting it raises
    {!Errors.Heap_exhausted}. *)
val create : ?size_limit:int -> unit -> t

(** [size t] is the physical cell count. *)
val size : t -> int

(** [alloc_array t ~length] allocates an array of [length] cells
    initialized to [Undefined]; capacity is [max length 1]. Returns the
    handle. *)
val alloc_array : t -> length:int -> int

(** [base_addr t handle] is the current base address of the array's
    storage (diagnostics and exploit-facing introspection). *)
val base_addr : t -> int -> int

(** [alloc_sentinel t] installs the JIT-code-pointer sentinel in the top
    two cells and returns its address. Called by the engine when the
    first function is JIT-compiled. *)
val alloc_sentinel : t -> int

(** [check_sentinel t] raises {!Errors.Shellcode_executed} if the sentinel
    was overwritten; no-op when no sentinel was allocated. *)
val check_sentinel : t -> unit

(** [sentinel_intact t] is [false] when the sentinel has been tampered
    with. *)
val sentinel_intact : t -> bool

(** Logical length of the array behind [handle] (reads the header; a
    corrupted non-numeric header coerces through [0]). *)
val length : t -> int -> int

val capacity : t -> int -> int

(** [set_length t handle n] shrinks (reclaiming the tail) or grows
    (reallocating past capacity) the array. Stale data below the new
    length is preserved. *)
val set_length : t -> int -> int -> unit

(** Checked element access; [get] returns [Undefined] out of bounds, [set]
    grows the array when writing one-past-the-end (dense-array append) and
    ignores writes further out. *)

val get : t -> int -> int -> Value.t
val set : t -> int -> int -> Value.t -> unit

(** Unchecked element access used by JITed code. Bounds are checked only
    against the physical heap; out-of-heap access raises
    {!Errors.Crash}. *)

val get_unchecked : t -> int -> int -> Value.t
val set_unchecked : t -> int -> int -> Value.t -> unit

(** [push t handle v] appends (growing capacity by doubling when needed);
    [pop t handle] removes and returns the last element or [Undefined]
    when empty. *)

val push : t -> int -> Value.t -> unit
val pop : t -> int -> Value.t

(** [cells_used t] is the bump high-water mark (diagnostics, bench
    reporting). *)
val cells_used : t -> int
