type t = {
  heap : Heap.t;
  prng : Jitbull_util.Prng.t;
  out : Buffer.t;
  echo : bool;
}

let create ?(seed = 42) ?size_limit ?(echo = false) () =
  {
    heap = Heap.create ?size_limit ();
    prng = Jitbull_util.Prng.create seed;
    out = Buffer.create 256;
    echo;
  }

let print t v =
  let line = Value.to_display v in
  Buffer.add_string t.out line;
  Buffer.add_char t.out '\n';
  if t.echo then print_endline line

let output t = Buffer.contents t.out
