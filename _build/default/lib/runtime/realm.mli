(** A realm bundles the mutable state every execution tier shares: the flat
    heap, the seeded PRNG behind [Math.random], and the [print] sink.

    Capturing [print] output in a buffer (instead of writing to stdout) is
    what makes interpreter-vs-JIT differential testing possible; set
    [~echo:true] to also forward to stdout (used by [bin/jsrun]). *)

type t = {
  heap : Heap.t;
  prng : Jitbull_util.Prng.t;
  out : Buffer.t;
  echo : bool;
}

val create : ?seed:int -> ?size_limit:int -> ?echo:bool -> unit -> t

(** [print t v] renders [v] like JS [print]: display form plus newline. *)
val print : t -> Value.t -> unit

(** [output t] is everything printed so far. *)
val output : t -> string
