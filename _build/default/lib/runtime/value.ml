(* Runtime values of the mini-JS runtime.

   Arrays are handles (base addresses) into the flat simulated {!Heap}; this
   is what lets JIT-eliminated bounds checks corrupt adjacent objects, the
   mechanism behind the modeled CVEs. Objects are ordinary hash tables (they
   play no role in the memory-corruption model). [Function] is an index into
   the engine's function table — functions are first-class but closures are
   not (see DESIGN.md). [Builtin] values appear transiently when evaluating
   e.g. [Math.floor] before the call. *)

type t =
  | Number of float
  | String of string
  | Bool of bool
  | Null
  | Undefined
  | Array of int
  | Object of (string, t) Hashtbl.t
  | Function of int
  | Builtin of string

let type_name = function
  | Number _ -> "number"
  | String _ -> "string"
  | Bool _ -> "boolean"
  | Null -> "object"
  | Undefined -> "undefined"
  | Array _ -> "object"
  | Object _ -> "object"
  | Function _ | Builtin _ -> "function"

let rec to_display = function
  | Number f ->
    if Float.is_nan f then "NaN"
    else if f = Float.infinity then "Infinity"
    else if f = Float.neg_infinity then "-Infinity"
    else if f = 0.0 then "0" (* JS renders -0 as "0" *)
    else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
    else Printf.sprintf "%.12g" f
  | String s -> s
  | Bool b -> if b then "true" else "false"
  | Null -> "null"
  | Undefined -> "undefined"
  | Array addr -> Printf.sprintf "[array@%d]" addr
  | Object tbl ->
    let fields =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)
      |> List.map (fun (k, v) -> k ^ ": " ^ to_display v)
    in
    "{" ^ String.concat ", " fields ^ "}"
  | Function idx -> Printf.sprintf "[function#%d]" idx
  | Builtin name -> Printf.sprintf "[builtin %s]" name

let pp ppf v = Format.pp_print_string ppf (to_display v)
