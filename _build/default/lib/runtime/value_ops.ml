module Ast = Jitbull_frontend.Ast

let to_number : Value.t -> float = function
  | Value.Number f -> f
  | Value.Bool true -> 1.0
  | Value.Bool false -> 0.0
  | Value.Null -> 0.0
  | Value.Undefined -> Float.nan
  | Value.String s -> (
    let s = String.trim s in
    if s = "" then 0.0
    else
      match float_of_string_opt s with
      | Some f -> f
      | None -> Float.nan)
  | Value.Array _ | Value.Object _ | Value.Function _ | Value.Builtin _ -> Float.nan

let to_boolean : Value.t -> bool = function
  | Value.Bool b -> b
  | Value.Number f -> not (f = 0.0 || Float.is_nan f)
  | Value.String s -> s <> ""
  | Value.Null | Value.Undefined -> false
  | Value.Array _ | Value.Object _ | Value.Function _ | Value.Builtin _ -> true

let to_string = Value.to_display

(* ToInt32: modular reduction of the integral part into [-2^31, 2^31). *)
let to_int32 f =
  if Float.is_nan f || Float.abs f = Float.infinity then 0l
  else
    let i = Float.trunc f in
    let m = Float.rem i 4294967296.0 in
    let m = if m < 0.0 then m +. 4294967296.0 else m in
    if m >= 2147483648.0 then Int32.of_float (m -. 4294967296.0) else Int32.of_float m

let to_uint32 f =
  if Float.is_nan f || Float.abs f = Float.infinity then 0.0
  else
    let i = Float.trunc f in
    let m = Float.rem i 4294967296.0 in
    if m < 0.0 then m +. 4294967296.0 else m

let to_index (v : Value.t) =
  match v with
  | Value.Number f when Float.is_integer f && f >= 0.0 && f < 2147483648.0 ->
    Some (int_of_float f)
  | _ -> None

let loose_equal (a : Value.t) (b : Value.t) =
  match (a, b) with
  | Value.Number x, Value.Number y -> x = y
  | Value.String x, Value.String y -> String.equal x y
  | Value.Bool x, Value.Bool y -> Bool.equal x y
  | Value.Null, Value.Null
  | Value.Undefined, Value.Undefined
  | Value.Null, Value.Undefined
  | Value.Undefined, Value.Null -> true
  | Value.Array x, Value.Array y -> x = y
  | Value.Object x, Value.Object y -> x == y
  | Value.Function x, Value.Function y -> x = y
  | Value.Builtin x, Value.Builtin y -> String.equal x y
  (* mixed primitives coerce numerically, as in JS *)
  | (Value.Number _ | Value.String _ | Value.Bool _), (Value.Number _ | Value.String _ | Value.Bool _)
    -> to_number a = to_number b
  | _ -> false

let strict_equal (a : Value.t) (b : Value.t) =
  match (a, b) with
  | Value.Number x, Value.Number y -> x = y
  | Value.String x, Value.String y -> String.equal x y
  | Value.Bool x, Value.Bool y -> Bool.equal x y
  | Value.Null, Value.Null | Value.Undefined, Value.Undefined -> true
  | Value.Array x, Value.Array y -> x = y
  | Value.Object x, Value.Object y -> x == y
  | Value.Function x, Value.Function y -> x = y
  | Value.Builtin x, Value.Builtin y -> String.equal x y
  | _ -> false

let numeric_compare op a b =
  let x = to_number a and y = to_number b in
  if Float.is_nan x || Float.is_nan y then false
  else
    match op with
    | `Lt -> x < y
    | `Le -> x <= y
    | `Gt -> x > y
    | `Ge -> x >= y

let compare_values op (a : Value.t) (b : Value.t) =
  match (a, b) with
  | Value.String x, Value.String y -> (
    let c = String.compare x y in
    match op with
    | `Lt -> c < 0
    | `Le -> c <= 0
    | `Gt -> c > 0
    | `Ge -> c >= 0)
  | _ -> numeric_compare op a b

let int32_op f a b =
  let x = to_int32 (to_number a) and y = to_int32 (to_number b) in
  Value.Number (Int32.to_float (f x y))

let binary (op : Ast.binop) (a : Value.t) (b : Value.t) : Value.t =
  match op with
  | Ast.Add -> (
    match (a, b) with
    | Value.String _, _ | _, Value.String _ -> Value.String (to_string a ^ to_string b)
    | _ -> Value.Number (to_number a +. to_number b))
  | Ast.Sub -> Value.Number (to_number a -. to_number b)
  | Ast.Mul -> Value.Number (to_number a *. to_number b)
  | Ast.Div -> Value.Number (to_number a /. to_number b)
  | Ast.Mod -> Value.Number (Float.rem (to_number a) (to_number b))
  | Ast.Lt -> Value.Bool (compare_values `Lt a b)
  | Ast.Le -> Value.Bool (compare_values `Le a b)
  | Ast.Gt -> Value.Bool (compare_values `Gt a b)
  | Ast.Ge -> Value.Bool (compare_values `Ge a b)
  | Ast.Eq -> Value.Bool (loose_equal a b)
  | Ast.Neq -> Value.Bool (not (loose_equal a b))
  | Ast.Strict_eq -> Value.Bool (strict_equal a b)
  | Ast.Strict_neq -> Value.Bool (not (strict_equal a b))
  | Ast.Bit_and -> int32_op Int32.logand a b
  | Ast.Bit_or -> int32_op Int32.logor a b
  | Ast.Bit_xor -> int32_op Int32.logxor a b
  | Ast.Shl ->
    let x = to_int32 (to_number a) in
    let s = Int32.to_int (to_int32 (to_number b)) land 31 in
    Value.Number (Int32.to_float (Int32.shift_left x s))
  | Ast.Shr ->
    let x = to_int32 (to_number a) in
    let s = Int32.to_int (to_int32 (to_number b)) land 31 in
    Value.Number (Int32.to_float (Int32.shift_right x s))
  | Ast.Ushr ->
    let x = to_uint32 (to_number a) in
    let s = Int32.to_int (to_int32 (to_number b)) land 31 in
    let i = Int64.of_float x in
    Value.Number (Int64.to_float (Int64.shift_right_logical i s))

let unary (op : Ast.unop) (v : Value.t) : Value.t =
  match op with
  | Ast.Neg -> Value.Number (-.to_number v)
  | Ast.Not -> Value.Bool (not (to_boolean v))
  | Ast.Bit_not ->
    Value.Number (Int32.to_float (Int32.lognot (to_int32 (to_number v))))
  | Ast.Typeof -> Value.String (Value.type_name v)
  | Ast.To_number -> Value.Number (to_number v)
