(** JS value semantics shared by the interpreter, the bytecode VM and the
    LIR executor: coercions, the binary/unary operator suite, and equality.

    Semantics follow ECMAScript where the subset permits; deviations are
    deliberate and documented: [ToNumber] on arrays/objects yields [NaN]
    (rather than going through [valueOf]), and string→number coercion parses
    with OCaml's float syntax plus the empty string → 0 rule. *)

val to_number : Value.t -> float
val to_boolean : Value.t -> bool
val to_string : Value.t -> string

(** [to_int32 f] and [to_uint32 f] implement ToInt32/ToUint32 (modular
    wrap-around of the integral part). *)

val to_int32 : float -> int32
val to_uint32 : float -> float

(** [to_index v] coerces an array index: returns [None] if [v] does not
    denote an exact non-negative integer below 2^31. *)
val to_index : Value.t -> int option

(** [binary op a b] evaluates a non-short-circuit binary operator. [Add]
    concatenates when either side is a string. Comparisons return
    [Value.Bool]. *)
val binary : Jitbull_frontend.Ast.binop -> Value.t -> Value.t -> Value.t

val unary : Jitbull_frontend.Ast.unop -> Value.t -> Value.t

(** Abstract ([==]) and strict ([===]) equality. *)

val loose_equal : Value.t -> Value.t -> bool
val strict_equal : Value.t -> Value.t -> bool
