lib/util/prng.mli:
