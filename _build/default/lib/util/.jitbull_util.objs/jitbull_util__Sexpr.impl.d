lib/util/sexpr.ml: Buffer Format Fun List Printf String
