(** Deterministic pseudo-random number generator (splitmix64).

    Every stochastic component of the reproduction (the runtime's
    [Math.random], workload input generation, variant mixing) draws from an
    explicit [Prng.t] so that interpreter-vs-JIT differential tests and the
    benchmark harness are reproducible run to run. *)

type t

(** [create seed] builds an independent generator. Equal seeds give equal
    streams. *)
val create : int -> t

(** [copy t] snapshots the generator state. *)
val copy : t -> t

(** [next_int64 t] returns the next raw 64-bit draw. *)
val next_int64 : t -> int64

(** [int t bound] is uniform in [0, bound); [bound] must be positive. *)
val int : t -> int -> int

(** [float t] is uniform in [0, 1). *)
val float : t -> float

(** [bool t] is a fair coin. *)
val bool : t -> bool

(** [shuffle t arr] permutes [arr] in place (Fisher–Yates). *)
val shuffle : t -> 'a array -> unit

(** [choose t lst] picks a uniform element; raises [Invalid_argument] on an
    empty list. *)
val choose : t -> 'a list -> 'a
