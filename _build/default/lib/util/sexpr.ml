type t =
  | Atom of string
  | List of t list

exception Decode_error of string

let decode_error fmt = Format.kasprintf (fun s -> raise (Decode_error s)) fmt

let atom s = Atom s
let list l = List l
let int n = Atom (string_of_int n)
let float f = Atom (Printf.sprintf "%h" f)
let bool b = Atom (if b then "true" else "false")

let to_atom = function
  | Atom s -> s
  | List _ -> decode_error "expected atom, got list"

let to_list = function
  | List l -> l
  | Atom s -> decode_error "expected list, got atom %S" s

let to_int s =
  let a = to_atom s in
  match int_of_string_opt a with
  | Some n -> n
  | None -> decode_error "expected int, got %S" a

let to_float s =
  let a = to_atom s in
  match float_of_string_opt a with
  | Some f -> f
  | None -> decode_error "expected float, got %S" a

let to_bool s =
  match to_atom s with
  | "true" -> true
  | "false" -> false
  | a -> decode_error "expected bool, got %S" a

let field_opt name sexp =
  let items = to_list sexp in
  let matches = function
    | List (Atom n :: payload) when String.equal n name -> Some payload
    | Atom _ | List _ -> None
  in
  List.find_map matches items

let field name sexp =
  match field_opt name sexp with
  | Some payload -> payload
  | None -> decode_error "missing field %S" name

(* Quoting: an atom needs quotes if it is empty or contains a character with
   syntactic meaning. *)
let needs_quotes s =
  String.length s = 0
  || String.exists
       (fun c ->
         match c with
         | ' ' | '\t' | '\n' | '\r' | '(' | ')' | '"' | '\\' | ';' -> true
         | _ -> false)
       s

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let rec pp ppf = function
  | Atom s -> Format.pp_print_string ppf (if needs_quotes s then escape s else s)
  | List l ->
    Format.fprintf ppf "@[<hv 1>(%a)@]"
      (Format.pp_print_list ~pp_sep:Format.pp_print_space pp)
      l

let to_string s = Format.asprintf "%a" pp s

(* Parser: a hand-rolled scanner over the input string. *)

type cursor = { input : string; mutable pos : int }

let peek cur = if cur.pos < String.length cur.input then Some cur.input.[cur.pos] else None

let advance cur = cur.pos <- cur.pos + 1

let rec skip_blanks cur =
  match peek cur with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance cur;
    skip_blanks cur
  | Some ';' ->
    (* comment until end of line *)
    let rec to_eol () =
      match peek cur with
      | Some '\n' | None -> ()
      | Some _ ->
        advance cur;
        to_eol ()
    in
    to_eol ();
    skip_blanks cur
  | Some _ | None -> ()

let parse_quoted cur =
  advance cur;
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek cur with
    | None -> decode_error "unterminated string at %d" cur.pos
    | Some '"' ->
      advance cur;
      Buffer.contents buf
    | Some '\\' ->
      advance cur;
      (match peek cur with
      | Some 'n' -> Buffer.add_char buf '\n'
      | Some 't' -> Buffer.add_char buf '\t'
      | Some 'r' -> Buffer.add_char buf '\r'
      | Some c -> Buffer.add_char buf c
      | None -> decode_error "dangling escape at %d" cur.pos);
      advance cur;
      loop ()
    | Some c ->
      Buffer.add_char buf c;
      advance cur;
      loop ()
  in
  loop ()

let parse_bare cur =
  let start = cur.pos in
  let rec loop () =
    match peek cur with
    | Some (' ' | '\t' | '\n' | '\r' | '(' | ')' | '"' | ';') | None -> ()
    | Some _ ->
      advance cur;
      loop ()
  in
  loop ();
  String.sub cur.input start (cur.pos - start)

let rec parse_one cur =
  skip_blanks cur;
  match peek cur with
  | None -> decode_error "unexpected end of input"
  | Some '(' ->
    advance cur;
    let rec items acc =
      skip_blanks cur;
      match peek cur with
      | Some ')' ->
        advance cur;
        List (List.rev acc)
      | None -> decode_error "unterminated list"
      | Some _ -> items (parse_one cur :: acc)
    in
    items []
  | Some ')' -> decode_error "unexpected ')' at %d" cur.pos
  | Some '"' -> Atom (parse_quoted cur)
  | Some _ -> Atom (parse_bare cur)

let of_string input =
  let cur = { input; pos = 0 } in
  let sexp = parse_one cur in
  skip_blanks cur;
  (match peek cur with
  | None -> ()
  | Some c -> decode_error "trailing garbage %C at %d" c cur.pos);
  sexp

let load path =
  let ic = open_in_bin path in
  let finally () = close_in_noerr ic in
  Fun.protect ~finally (fun () ->
      let len = in_channel_length ic in
      of_string (really_input_string ic len))

let save path sexp =
  let oc = open_out_bin path in
  let finally () = close_out_noerr oc in
  Fun.protect ~finally (fun () -> output_string oc (to_string sexp ^ "\n"))
