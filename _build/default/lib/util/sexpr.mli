(** Minimal s-expression reader/writer.

    Used as the on-disk format for the JITBULL DNA-vector database and for
    golden-file dumps. Atoms are quoted only when they contain whitespace,
    parentheses, quotes, or are empty, so files stay human-readable. *)

type t =
  | Atom of string
  | List of t list

val atom : string -> t
val list : t list -> t

(** [int n], [float f], [bool b] build atoms from primitive values. *)

val int : int -> t
val float : float -> t
val bool : bool -> t

(** Accessors; all raise [Decode_error] on shape mismatch. *)

exception Decode_error of string

val to_atom : t -> string
val to_list : t -> t list
val to_int : t -> int
val to_float : t -> float
val to_bool : t -> bool

(** [field name sexp] finds the sub-list [(name v...)] inside a list sexp and
    returns its payload [v...]; raises [Decode_error] if absent. *)
val field : string -> t -> t list

(** [field_opt name sexp] is like {!field} but returns [None] if absent. *)
val field_opt : string -> t -> t list option

val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** [of_string s] parses one s-expression; raises [Decode_error] on syntax
    errors or trailing garbage. *)
val of_string : string -> t

(** [load path] and [save path sexp] read/write a file holding one sexp. *)

val load : string -> t
val save : string -> t -> unit
