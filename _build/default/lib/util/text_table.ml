type align =
  | Left
  | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with
    | Left -> s ^ fill
    | Right -> fill ^ s

let render ~headers ?(aligns = []) rows =
  let ncols = List.length headers in
  let normalize row =
    let len = List.length row in
    if len >= ncols then row else row @ List.init (ncols - len) (fun _ -> "")
  in
  let rows = List.map normalize rows in
  let aligns =
    let given = List.length aligns in
    aligns @ List.init (max 0 (ncols - given)) (fun _ -> Left)
  in
  let widths = Array.of_list (List.map String.length headers) in
  let fit row = List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row in
  List.iter fit rows;
  let line_of row =
    let cells = List.mapi (fun i cell -> pad (List.nth aligns i) widths.(i) cell) row in
    String.concat "  " cells
  in
  let rule =
    String.concat "  " (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (line_of headers);
  Buffer.add_char buf '\n';
  Buffer.add_string buf rule;
  List.iter
    (fun row ->
      Buffer.add_char buf '\n';
      Buffer.add_string buf (line_of row))
    rows;
  Buffer.contents buf

let print ~headers ?aligns rows =
  print_string (render ~headers ?aligns rows);
  print_newline ()

let bar ~width ~max_value value =
  if max_value <= 0.0 || value <= 0.0 then ""
  else
    let n = int_of_float (Float.round (float_of_int width *. value /. max_value)) in
    String.make (max 0 (min width n)) '#'
