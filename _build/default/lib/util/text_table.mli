(** Fixed-width text tables for the benchmark harness.

    Renders the paper's tables and figure data as aligned ASCII so that
    [bench/main.exe] output can be eyeballed against the paper. *)

type align =
  | Left
  | Right

(** [render ~headers ?aligns rows] lays out [rows] under [headers] with
    column widths fitted to content. [aligns] defaults to [Left] for every
    column; a shorter list is padded with [Left]. Rows shorter than the
    header are padded with empty cells. *)
val render : headers:string list -> ?aligns:align list -> string list list -> string

(** [print ~headers ?aligns rows] renders to stdout with a trailing
    newline. *)
val print : headers:string list -> ?aligns:align list -> string list list -> unit

(** [bar ~width ~max_value value] draws a proportional '#' bar, used for the
    figure-style outputs. [max_value <= 0] yields an empty bar. *)
val bar : width:int -> max_value:float -> float -> string
