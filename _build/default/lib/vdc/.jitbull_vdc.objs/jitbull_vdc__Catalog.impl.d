lib/vdc/catalog.ml: Jitbull_passes List String
