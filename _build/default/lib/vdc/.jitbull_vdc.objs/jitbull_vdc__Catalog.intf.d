lib/vdc/catalog.mli: Jitbull_passes
