lib/vdc/demonstrators.ml: Jitbull_jit Jitbull_passes Jitbull_runtime List Printf String
