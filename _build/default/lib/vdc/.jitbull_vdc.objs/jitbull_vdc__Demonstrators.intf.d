lib/vdc/demonstrators.mli: Jitbull_jit Jitbull_passes
