lib/vdc/variants.ml: Array Hashtbl Jitbull_frontend Jitbull_runtime Jitbull_util List Option Printf String
