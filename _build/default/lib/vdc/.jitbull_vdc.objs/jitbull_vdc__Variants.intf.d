lib/vdc/variants.mli: Jitbull_frontend
