module Vuln_config = Jitbull_passes.Vuln_config

type engine =
  | Turbofan
  | Ionmonkey
  | Chakra

type entry = {
  cve : string;
  engine : engine;
  cvss : float;
  has_vdc : bool;
  reported : string option;
  patched : string option;
  modeled : Vuln_config.cve option;
}

let engine_name = function
  | Turbofan -> "TurboFan"
  | Ionmonkey -> "IonMonkey"
  | Chakra -> "Chakra JIT"

let e ?(cvss = 8.8) ?(has_vdc = false) ?reported ?patched ?modeled engine cve =
  { cve; engine; cvss; has_vdc; reported; patched; modeled }

(* Table I. IonMonkey report/patch dates reconstructed to reproduce the
   paper's §III-C aggregates: mean window ≈ 9 days, CVE-2019-11707 = 23
   days, CVE-2020-26952 = 5 days, and exactly one overlapping pair in
   2019 (CVE-2019-9810 / CVE-2019-9813). *)
let all =
  [
    (* TurboFan (V8) *)
    e Turbofan "CVE-2021-30632" ~cvss:8.8 ~has_vdc:true;
    e Turbofan "CVE-2021-30551" ~cvss:8.8;
    e Turbofan "CVE-2020-16009" ~cvss:8.8 ~has_vdc:true;
    e Turbofan "CVE-2020-6418" ~cvss:8.8 ~has_vdc:true;
    e Turbofan "CVE-2019-2208" ~cvss:7.5;
    e Turbofan "CVE-2018-17463" ~cvss:8.8 ~has_vdc:true;
    e Turbofan "CVE-2017-5121" ~cvss:9.8 ~has_vdc:true;
    (* IonMonkey (SpiderMonkey) *)
    e Ionmonkey "CVE-2021-29982" ~cvss:7.5 ~reported:"2021-07-26" ~patched:"2021-08-03";
    e Ionmonkey "CVE-2020-26952" ~cvss:9.8 ~reported:"2020-09-27" ~patched:"2020-10-02"
      ~modeled:Vuln_config.CVE_2020_26952;
    e Ionmonkey "CVE-2020-15656" ~cvss:8.8 ~reported:"2020-07-14" ~patched:"2020-07-28";
    e Ionmonkey "CVE-2019-17026" ~cvss:8.8 ~has_vdc:true ~reported:"2019-12-31"
      ~patched:"2020-01-08" ~modeled:Vuln_config.CVE_2019_17026;
    e Ionmonkey "CVE-2019-11707" ~cvss:8.8 ~has_vdc:true ~reported:"2019-04-15"
      ~patched:"2019-05-08" ~modeled:Vuln_config.CVE_2019_11707;
    e Ionmonkey "CVE-2019-9813" ~cvss:8.8 ~reported:"2019-03-21" ~patched:"2019-03-22"
      ~modeled:Vuln_config.CVE_2019_9813;
    e Ionmonkey "CVE-2019-9810" ~cvss:8.8 ~has_vdc:true ~reported:"2019-03-20"
      ~patched:"2019-03-22" ~modeled:Vuln_config.CVE_2019_9810;
    e Ionmonkey "CVE-2019-9795" ~cvss:8.8 ~reported:"2019-02-25" ~patched:"2019-03-06"
      ~modeled:Vuln_config.CVE_2019_9795;
    e Ionmonkey "CVE-2019-9792" ~cvss:8.8 ~reported:"2019-02-10" ~patched:"2019-02-19"
      ~modeled:Vuln_config.CVE_2019_9792;
    e Ionmonkey "CVE-2019-9791" ~cvss:9.8 ~has_vdc:true ~reported:"2019-01-28"
      ~patched:"2019-02-05" ~modeled:Vuln_config.CVE_2019_9791;
    e Ionmonkey "CVE-2018-12387" ~cvss:8.8;
    e Ionmonkey "CVE-2017-5400" ~cvss:8.8;
    e Ionmonkey "CVE-2017-5375" ~cvss:8.8 ~has_vdc:true;
    e Ionmonkey "CVE-2015-4484" ~cvss:7.5;
    e Ionmonkey "CVE-2015-0817" ~cvss:9.8 ~has_vdc:true;
    (* Chakra *)
    e Chakra "CVE-2021-34480" ~cvss:7.5;
    e Chakra "CVE-2020-1380" ~cvss:8.8 ~has_vdc:true;
  ]

(* ---- date arithmetic (proleptic Gregorian, rata die) ---- *)

let days_of_iso s =
  match String.split_on_char '-' s with
  | [ y; m; d ] ->
    let y = int_of_string y and m = int_of_string m and d = int_of_string d in
    let y, m = if m <= 2 then (y - 1, m + 12) else (y, m) in
    let era = y / 400 in
    let yoe = y mod 400 in
    let doy = ((153 * (m - 3)) + 2) / 5 + d - 1 in
    let doe = (yoe * 365) + (yoe / 4) - (yoe / 100) + doy in
    (era * 146097) + doe
  | _ -> invalid_arg ("bad date " ^ s)

let window_days entry =
  match (entry.reported, entry.patched) with
  | Some r, Some p -> Some (days_of_iso p - days_of_iso r)
  | _ -> None

let mean_window_days () =
  let windows = List.filter_map window_days all in
  match windows with
  | [] -> 0.0
  | ws -> float_of_int (List.fold_left ( + ) 0 ws) /. float_of_int (List.length ws)

let max_overlapping ~year =
  let prefix = string_of_int year ^ "-" in
  let intervals =
    List.filter_map
      (fun entry ->
        match (entry.engine, entry.reported, entry.patched) with
        | Ionmonkey, Some r, Some p when String.length r >= 5 && String.sub r 0 5 = prefix ->
          Some (days_of_iso r, days_of_iso p)
        | _ -> None)
      all
  in
  let overlap_count (r, p) =
    List.length (List.filter (fun (r', p') -> r' <= p && r <= p') intervals)
  in
  List.fold_left (fun acc iv -> max acc (overlap_count iv)) 0 intervals

let find cve = List.find_opt (fun entry -> String.equal entry.cve cve) all
