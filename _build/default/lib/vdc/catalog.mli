(** The vulnerability survey of the paper's Table I (JIT-engine CVEs in
    V8/TurboFan, SpiderMonkey/IonMonkey and Chakra, 2015–2021) plus the
    vulnerability-window data of §III-C.

    CVSS scores are the NVD values where the paper quotes them (average
    8.8); report/patch dates are taken from the paper where given
    (CVE-2019-11707: 23 days; CVE-2020-26952: 5 days; yearly average 9
    days; at most two 2019 windows overlap — CVE-2019-9810 and
    CVE-2019-9813) and reconstructed to match those aggregates elsewhere
    — see EXPERIMENTS.md. *)

type engine =
  | Turbofan
  | Ionmonkey
  | Chakra

type entry = {
  cve : string;
  engine : engine;
  cvss : float;
  has_vdc : bool;  (** bolded in Table I: public demonstrator available *)
  reported : string option;  (** ISO date *)
  patched : string option;
  modeled : Jitbull_passes.Vuln_config.cve option;
      (** the injectable pass bug reproducing it, when part of our 8 *)
}

val all : entry list

val engine_name : engine -> string

(** [window_days e] — patch date − report date, when both known. *)
val window_days : entry -> int option

(** [mean_window_days ()] over entries with known dates. *)
val mean_window_days : unit -> float

(** [max_overlapping ~year] — the maximum number of simultaneously open
    vulnerability windows among IonMonkey entries of [year]. *)
val max_overlapping : year:int -> int

val find : string -> entry option
