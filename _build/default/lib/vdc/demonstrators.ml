module Vuln_config = Jitbull_passes.Vuln_config
module Engine = Jitbull_jit.Engine
module Errors = Jitbull_runtime.Errors

type observable =
  | Shellcode
  | Crash
  | Pwned_marker

type t = {
  cve : Vuln_config.cve;
  name : string;
  dangerous_pass : string;
  source : string;
  expected : observable;
}

(* Shared exploitation tail: given a global [w] whose length header was
   corrupted to a huge value, overwrite the JIT code pointer sentinel at
   the top of the heap, then transfer control through JITed code. *)
let payload_tail ~retrigger =
  Printf.sprintf
    {|
if (w.length > 100000) {
  var off = __heapSize() - 2 - (__arrayBase(w) + 2);
  w[off] = 1337;
  print("PWNED sentinel overwritten");
}
%s;
|}
    retrigger

(* CVE-2019-17026: GVN eliminates the second bounds check because its
   dependency analysis believes [a.length = 1] clobbers nothing; the
   unchecked store then lands in the victim array allocated in the
   reclaimed storage tail, corrupting its length header. Mirrors the
   public PoC's adjacent-arrays + shrink anatomy. *)
let cve_2019_17026 =
  {
    cve = Vuln_config.CVE_2019_17026;
    name = "CVE-2019-17026";
    dangerous_pass = "gvn";
    expected = Shellcode;
    source =
      {|
function pwn(v) {
  var a = [0,0,0,0,0,0,0,0];
  a[1] = v;
  a.length = 1;
  var victim = [1,1,1,1];
  a[1] = 1073741824;
  return victim;
}
var w = [0];
for (var i = 0; i < 100; i++) { w = pwn(5); }
|}
      ^ payload_tail ~retrigger:"pwn(5)";
  }

(* An independent implementation of the same flaw (the paper's second
   public implementation): different structure, helper-driven, different
   sizes and constants — but the same GVN dependency bug. *)
let second_implementation_17026 =
  {|
function groom(size, fill) {
  var arr = [];
  for (var i = 0; i < size; i++) { arr.push(fill); }
  return arr;
}
function trigger(buf, big) {
  buf[2] = 7;
  buf.length = 2;
  var spray = [9,9,9,9,9,9];
  buf[2] = big;
  return spray;
}
var w = [0];
var seed = groom(12, 3);
for (var round = 0; round < 90; round++) {
  var b = groom(12, round);
  w = trigger(b, 1073741824);
}
|}
  ^ payload_tail ~retrigger:"trigger(groom(12, 1), 1073741824)"

(* CVE-2019-9810: same root bug as 17026 (paper §III-B) through a
   different code shape — arithmetic-derived shrink and a differently
   shaped victim. *)
let cve_2019_9810 =
  {
    cve = Vuln_config.CVE_2019_9810;
    name = "CVE-2019-9810";
    dangerous_pass = "gvn";
    expected = Shellcode;
    source =
      {|
function pwn(v, big) {
  var buf = [v,v,v,v,v,v,v,v,v,v];
  buf[2] = v + 1;
  buf.length = buf.length - 8;
  var target = [2,2,2,2,2,2];
  buf[2] = big;
  return target;
}
var w = [0];
for (var i = 0; i < 90; i++) { w = pwn(i, 1073741824); }
|}
      ^ payload_tail ~retrigger:"pwn(1, 1073741824)";
  }

(* CVE-2019-9791: the vulnerable type analysis trusts only a loop phi's
   forward operand, removing the unbox guard; JITed arithmetic then
   reinterprets an array as its elements base address — an address
   disclosure. The script prints the PWNED marker when the leak
   succeeded. *)
let cve_2019_9791 =
  {
    cve = Vuln_config.CVE_2019_9791;
    name = "CVE-2019-9791";
    dangerous_pass = "applytypes";
    expected = Pwned_marker;
    source =
      {|
function confuse(n, late, obj) {
  var x = 1;
  var acc = 0;
  for (var i = 0; i < n; i++) {
    acc = acc + x * 3;
    if (late == 1) { if (i == n - 2) { x = obj; } }
  }
  return acc;
}
var secret = [7,7,7];
var r = 0;
for (var k = 0; k < 60; k++) { r = confuse(10, 0, 5); }
r = confuse(10, 1, secret);
if (r == r) { if (r != 30) { print("PWNED address leak: " + r); } }
|};
  }

(* CVE-2019-11707: vulnerable bounds-check elimination accepts the stale
   pre-loop length as proof, ignoring the in-loop shrink. *)
let cve_2019_11707 =
  {
    cve = Vuln_config.CVE_2019_11707;
    name = "CVE-2019-11707";
    dangerous_pass = "boundscheckelim";
    expected = Shellcode;
    source =
      {|
function pwn(a, big, late) {
  var n = a.length;
  var t = 0;
  for (var i = 0; i < n; i++) {
    if (late == 1) { if (i == 0) { a.length = 1; w = [3,3,3,3]; } }
    a[i] = big;
    t = t + 1;
  }
  return t;
}
var w = [0];
for (var k = 0; k < 60; k++) {
  var warm = [9,9,9,9,9,9,9,9,9,9];
  pwn(warm, 7, 0);
}
var prey = [9,9,9,9,9,9,9,9,9,9];
pwn(prey, 1073741824, 1);
|}
      ^ payload_tail ~retrigger:"pwn([1,1,1], 7, 0)";
  }

(* CVE-2019-9792: vulnerable LICM hoists the length/elements loads out of
   a loop whose body shrinks the array; every later iteration checks
   against the stale length and stores into reclaimed memory. *)
let cve_2019_9792 =
  {
    cve = Vuln_config.CVE_2019_9792;
    name = "CVE-2019-9792";
    dangerous_pass = "licm";
    expected = Shellcode;
    source =
      {|
function pwn(a, big, late) {
  var t = 0;
  for (var i = 0; i < 8; i++) {
    if (late == 1) { if (i == 0) { a.length = 1; w = [4,4,4,4]; } }
    a[i] = big;
    t = t + 1;
  }
  return t;
}
var w = [0];
for (var k = 0; k < 60; k++) {
  var warm = [9,9,9,9,9,9,9,9];
  pwn(warm, 7, 0);
}
var prey = [9,9,9,9,9,9,9,9];
pwn(prey, 1073741824, 1);
|}
      ^ payload_tail ~retrigger:"pwn([1,1,1], 7, 0)";
  }

(* CVE-2019-9795: vulnerable constant folding removes a bounds check on a
   constant index by trusting the allocation-site length, ignoring the
   intervening shrink. *)
let cve_2019_9795 =
  {
    cve = Vuln_config.CVE_2019_9795;
    name = "CVE-2019-9795";
    dangerous_pass = "foldconstants";
    expected = Shellcode;
    source =
      {|
function pwn(big, late) {
  var b = [6,6,6,6,6,6,6,6];
  if (late == 1) { b.length = 1; w = [5,5,5,5]; }
  b[1] = big;
  return 0;
}
var w = [0];
for (var k = 0; k < 60; k++) { pwn(7, 0); }
pwn(1073741824, 1);
|}
      ^ payload_tail ~retrigger:"pwn(7, 0)";
  }

(* CVE-2019-9813: vulnerable DCE deletes the store-path bounds check
   (whose pass-through value has no uses); a wildly out-of-range index
   then writes outside the physical heap — the crash-type exploit. *)
let cve_2019_9813 =
  {
    cve = Vuln_config.CVE_2019_9813;
    name = "CVE-2019-9813";
    dangerous_pass = "dce";
    expected = Crash;
    source =
      {|
function pwn(a, big, late) {
  var idx = 1;
  if (late == 1) { idx = 4000000; }
  a[idx] = big;
  return 0;
}
var base = [9,9,9,9];
for (var k = 0; k < 60; k++) { pwn(base, 7, 0); }
pwn(base, 1073741824, 1);
print("no crash");
|};
  }

(* CVE-2020-26952: vulnerable store-to-load forwarding across a call that
   shrinks the array leaks the stale element (and deletes the orphaned
   check), where the patched engine reloads and observes the shrink. *)
let cve_2020_26952 =
  {
    cve = Vuln_config.CVE_2020_26952;
    name = "CVE-2020-26952";
    dangerous_pass = "sink";
    expected = Pwned_marker;
    source =
      {|
function wipe(x) {
  var noise = 0;
  for (var i = 0; i < 20; i++) {
    noise = (noise * 31 + i) % 977;
    noise = noise + (i & 3) - (noise >> 2);
    noise = (noise ^ 5) + (i | 1);
  }
  x.length = 0;
  return noise;
}
function pwn(v) {
  var c = [8,8,8,8];
  c[0] = v;
  wipe(c);
  return c[0];
}
var r = 0;
for (var k = 0; k < 60; k++) { r = pwn(k); }
r = pwn(424242);
if (r == 424242) { print("PWNED stale read: " + r); }
|};
  }

let all =
  [
    cve_2019_17026;
    cve_2019_9810;
    cve_2019_9791;
    cve_2019_11707;
    cve_2019_9792;
    cve_2019_9795;
    cve_2019_9813;
    cve_2020_26952;
  ]

let find cve = List.find (fun d -> d.cve = cve) all

type exploit_result =
  | Exploited of string
  | Neutralized

let run_exploit (config : Engine.config) source expected : exploit_result =
  match Engine.run_source config source with
  | output, _ -> (
    match expected with
    | Pwned_marker ->
      let pwned =
        String.split_on_char '\n' output
        |> List.exists (fun line -> String.length line >= 5 && String.sub line 0 5 = "PWNED")
      in
      if pwned then Exploited "PWNED marker printed" else Neutralized
    | Shellcode | Crash ->
      (* the sentinel-overwrite tail also prints a marker before the
         control transfer; treat it as exploitation evidence in case the
         retrigger path was blacklisted *)
      let pwned =
        String.split_on_char '\n' output
        |> List.exists (fun line -> String.length line >= 5 && String.sub line 0 5 = "PWNED")
      in
      if pwned then Exploited "sentinel overwritten (no control transfer)" else Neutralized)
  | exception Errors.Shellcode_executed msg -> Exploited ("shellcode: " ^ msg)
  | exception Errors.Crash msg -> Exploited ("crash: " ^ msg)
