(** Vulnerability demonstrator codes (VDCs) — one exploit per modeled CVE,
    written against the mini-JS runtime but following the anatomy of the
    public PoCs the paper evaluates with: warm the target function with
    benign types/indices past the Ion threshold, flip to the malicious
    shape, derive a corrupted-length read/write primitive from the
    mis-optimized access, then locate and overwrite the simulated JIT code
    pointer (or crash / leak, for the CVEs whose public PoCs do that).

    Each demonstrator also records the {e expected observable} on an
    unpatched engine, so the security harness can assert both directions:
    exploit fires without JITBULL, and is neutralized with the VDC's DNA
    in the database. *)

type observable =
  | Shellcode  (** {!Jitbull_runtime.Errors.Shellcode_executed} raised *)
  | Crash  (** {!Jitbull_runtime.Errors.Crash} raised *)
  | Pwned_marker  (** the script itself prints a ["PWNED…"] line *)

type t = {
  cve : Jitbull_passes.Vuln_config.cve;
  name : string;  (** e.g. "CVE-2019-17026" *)
  dangerous_pass : string;  (** the pipeline pass the exploit abuses *)
  source : string;
  expected : observable;
}

val all : t list

val find : Jitbull_passes.Vuln_config.cve -> t

(** [second_implementation_17026] — an independent re-implementation of
    the CVE-2019-17026 exploit (the paper's "implementation 2" by a
    different developer): same flaw, different code. *)
val second_implementation_17026 : string

type exploit_result =
  | Exploited of string  (** description of the observed effect *)
  | Neutralized  (** ran with no exploit observable *)

(** [run_exploit config source expected] executes the script under the
    given engine configuration and classifies the outcome against the
    demonstrator's expected observable. *)
val run_exploit :
  Jitbull_jit.Engine.config -> string -> observable -> exploit_result
