module Ast = Jitbull_frontend.Ast
module Parser = Jitbull_frontend.Parser
module Printer = Jitbull_frontend.Printer
module Builtins = Jitbull_runtime.Builtins
module Prng = Jitbull_util.Prng

type kind =
  | Rename
  | Minify
  | Mix
  | Split

let all_kinds = [ Rename; Minify; Mix; Split ]

let kind_name = function
  | Rename -> "rename"
  | Minify -> "minify"
  | Mix -> "mix"
  | Split -> "split"

(* ---- rename ---- *)

let is_reserved name = Builtins.is_namespace name || Builtins.is_global_function name

(* Every user-controlled binding: function names, params, [var]s, and
   globals created by assignment. *)
let collect_names (p : Ast.program) =
  let names = Hashtbl.create 64 in
  let add n = if not (is_reserved n) then Hashtbl.replace names n () in
  List.iter
    (fun (f : Ast.func) ->
      add f.Ast.name;
      List.iter add f.Ast.params;
      List.iter add (Ast.declared_vars f.Ast.body);
      List.iter (fun s -> List.iter add (Ast.stmt_idents s)) f.Ast.body)
    p.Ast.functions;
  List.iter (fun s -> List.iter add (Ast.stmt_idents s)) p.Ast.main;
  names

let rename_program (p : Ast.program) : Ast.program =
  let names = collect_names p in
  let mapping = Hashtbl.create 64 in
  let counter = ref 0 in
  (* deterministic order for reproducibility *)
  let sorted = List.sort String.compare (Hashtbl.fold (fun k () acc -> k :: acc) names []) in
  List.iter
    (fun n ->
      Hashtbl.replace mapping n (Printf.sprintf "v%d" !counter);
      incr counter)
    sorted;
  let rn n = match Hashtbl.find_opt mapping n with Some n' -> n' | None -> n in
  let rename_expr e =
    Ast.map_expr
      (fun e ->
        match e with
        | Ast.Ident n -> Ast.Ident (rn n)
        | Ast.Assign (Ast.Lvar n, rhs) -> Ast.Assign (Ast.Lvar (rn n), rhs)
        | e -> e)
      e
  in
  let rec rename_stmt s =
    match s with
    | Ast.Var (n, init) -> Ast.Var (rn n, Option.map rename_expr init)
    | Ast.Expr_stmt e -> Ast.Expr_stmt (rename_expr e)
    | Ast.If (c, t, f) -> Ast.If (rename_expr c, List.map rename_stmt t, List.map rename_stmt f)
    | Ast.While (c, b) -> Ast.While (rename_expr c, List.map rename_stmt b)
    | Ast.For (init, cond, update, b) ->
      Ast.For
        ( Option.map rename_stmt init,
          Option.map rename_expr cond,
          Option.map rename_expr update,
          List.map rename_stmt b )
    | Ast.Return e -> Ast.Return (Option.map rename_expr e)
    | Ast.Break -> Ast.Break
    | Ast.Continue -> Ast.Continue
    | Ast.Block b -> Ast.Block (List.map rename_stmt b)
  in
  {
    Ast.functions =
      List.map
        (fun (f : Ast.func) ->
          {
            Ast.name = rn f.Ast.name;
            params = List.map rn f.Ast.params;
            body = List.map rename_stmt f.Ast.body;
          })
        p.Ast.functions;
    main = List.map rename_stmt p.Ast.main;
  }

(* ---- mix ---- *)

(* Reads/writes of a top-level statement, for the independence check.
   Anything containing a call is pinned (calls can touch any global). *)
let rec stmt_has_call (s : Ast.stmt) =
  Ast.fold_stmt_exprs (fun acc e -> acc || match e with Ast.Call _ -> true | _ -> acc) false s
  ||
  match s with
  | Ast.If (_, t, f) -> List.exists stmt_has_call t || List.exists stmt_has_call f
  | Ast.While (_, b) | Ast.Block b -> List.exists stmt_has_call b
  | Ast.For (i, _, _, b) ->
    (match i with Some i -> stmt_has_call i | None -> false) || List.exists stmt_has_call b
  | _ -> false

let independent a b =
  let ids s = Ast.stmt_idents s in
  (not (stmt_has_call a))
  && (not (stmt_has_call b))
  && List.for_all (fun n -> not (List.mem n (ids b))) (ids a)

let decoy_functions =
  [
    {|
function jbDecoyScan(arr, n) {
  var best = 0;
  for (var i = 0; i < n; i++) { if (arr[i] > best) { best = arr[i]; } }
  return best;
}
|};
    {|
function jbDecoyMath(x, rounds) {
  var acc = x;
  for (var i = 0; i < rounds; i++) { acc = acc * 1.5 - Math.floor(acc); }
  return acc;
}
|};
  ]

let decoy_driver =
  {|
var jbDecoyArr = [3,1,4,1,5,9,2,6,5,3,5,8,9,7,9,3];
var jbDecoyAcc = 0;
for (var jbDecoyK = 0; jbDecoyK < 80; jbDecoyK++) {
  jbDecoyAcc = jbDecoyAcc + jbDecoyScan(jbDecoyArr, 16) + jbDecoyMath(jbDecoyK, 5);
}
|}

let mix ~seed (p : Ast.program) : Ast.program =
  let prng = Prng.create seed in
  let stmts = Array.of_list p.Ast.main in
  (* a few passes of adjacent swaps where provably independent *)
  for _ = 1 to 3 do
    for i = 0 to Array.length stmts - 2 do
      if Prng.bool prng && independent stmts.(i) stmts.(i + 1) then begin
        let tmp = stmts.(i) in
        stmts.(i) <- stmts.(i + 1);
        stmts.(i + 1) <- tmp
      end
    done
  done;
  let decoys = Parser.parse (String.concat "\n" decoy_functions ^ decoy_driver) in
  {
    Ast.functions = decoys.Ast.functions @ p.Ast.functions;
    main = decoys.Ast.main @ Array.to_list stmts;
  }

(* ---- split ---- *)

let split (p : Ast.program) : Ast.program =
  let wrapper (f : Ast.func) : Ast.func =
    let args = List.map (fun a -> Ast.Ident a) f.Ast.params in
    {
      Ast.name = f.Ast.name ^ "_step";
      params = f.Ast.params;
      body = [ Ast.Return (Some (Ast.Call (Ast.Ident f.Ast.name, args))) ];
    }
  in
  let wrappers = List.map wrapper p.Ast.functions in
  let declared = List.map (fun (f : Ast.func) -> f.Ast.name) p.Ast.functions in
  let redirect e =
    Ast.map_expr
      (fun e ->
        match e with
        | Ast.Call (Ast.Ident f, args) when List.mem f declared ->
          Ast.Call (Ast.Ident (f ^ "_step"), args)
        | e -> e)
      e
  in
  let rec redirect_stmt s =
    match s with
    | Ast.Var (n, init) -> Ast.Var (n, Option.map redirect init)
    | Ast.Expr_stmt e -> Ast.Expr_stmt (redirect e)
    | Ast.If (c, t, f) ->
      Ast.If (redirect c, List.map redirect_stmt t, List.map redirect_stmt f)
    | Ast.While (c, b) -> Ast.While (redirect c, List.map redirect_stmt b)
    | Ast.For (i, c, u, b) ->
      Ast.For
        (Option.map redirect_stmt i, Option.map redirect c, Option.map redirect u,
         List.map redirect_stmt b)
    | Ast.Return e -> Ast.Return (Option.map redirect e)
    | Ast.Break | Ast.Continue -> s
    | Ast.Block b -> Ast.Block (List.map redirect_stmt b)
  in
  {
    Ast.functions = p.Ast.functions @ wrappers;
    main = List.map redirect_stmt p.Ast.main;
  }

let apply ?(seed = 7) kind source =
  let p = Parser.parse source in
  match kind with
  | Rename -> Printer.program_to_string (rename_program p)
  | Minify -> Printer.program_to_string ~compact:true (rename_program p)
  | Mix -> Printer.program_to_string (mix ~seed p)
  | Split -> Printer.program_to_string (split p)
