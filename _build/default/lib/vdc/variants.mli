(** Exploit-variant generators — the paper's four approaches (§VI-B-b):

    - {b Rename}: systematic α-renaming of every user identifier (what
      Terser's mangler does), showing JITBULL is not tied to syntax.
    - {b Minify}: renaming plus fully compacted output (Terser's
      compression at our scale).
    - {b Mix}: reordering of provably independent top-level statements
      plus injected decoy functions that get JITed but play no part in the
      exploit.
    - {b Split}: the call graph is deepened — every declared function gets
      a wrapper and top-level call sites are redirected through the
      wrappers, multiplying the JITed functions and obscuring which one
      carries the exploit. The exploit function bodies themselves are kept
      intact, as the paper's manual variants do (splitting the guarded
      access sequence across calls would genuinely defuse the exploit, in
      our engine as in IonMonkey).

    All four are source-to-source: parse → transform → print, and are
    validated (in the test suite and the security bench) to remain
    exploitable on the unpatched engine. *)

type kind =
  | Rename
  | Minify
  | Mix
  | Split

val all_kinds : kind list

val kind_name : kind -> string

(** [apply ?seed kind source] transforms the script. [seed] (default 7)
    drives [Mix]'s shuffles. *)
val apply : ?seed:int -> kind -> string -> string

(** [rename_program p] — the AST-level renamer (exposed for tests). *)
val rename_program : Jitbull_frontend.Ast.program -> Jitbull_frontend.Ast.program
