lib/workloads/workloads.ml: Buffer List Printf String
