lib/workloads/workloads.mli:
