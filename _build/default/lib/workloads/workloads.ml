type t = {
  name : string;
  description : string;
  source : string;
}

(* Richards: OS task scheduler — device/worker/handler tasks drained from
   circular work queues; object-heavy with integer state machines. *)
let richards =
  {
    name = "Richards";
    description = "task scheduler simulation (objects, queues, state machines)";
    source =
      {|
function makeQueue(cap) {
  var q = {items: [], head: 0, tail: 0, count: 0, cap: cap};
  var i = 0;
  while (i < cap) { q.items.push(0); i = i + 1; }
  return q;
}
function qPut(q, v) {
  if (q.count >= q.cap) { return 0; }
  q.items[q.tail] = v;
  q.tail = (q.tail + 1) % q.cap;
  q.count = q.count + 1;
  return 1;
}
function qGet(q) {
  if (q.count == 0) { return -1; }
  var v = q.items[q.head];
  q.head = (q.head + 1) % q.cap;
  q.count = q.count - 1;
  return v;
}
function workerStep(state, packet) {
  return (state * 131 + packet * 17 + 7) % 9973;
}
function handlerStep(state, packet) {
  var s = state;
  var p = packet;
  var j = 0;
  for (j = 0; j < 4; j++) { s = (s + p) % 4099; p = (p * 3 + 1) % 811; }
  return s;
}
function schedule(rounds) {
  var devQ = makeQueue(16);
  var workQ = makeQueue(16);
  var workerState = 1;
  var handlerState = 2;
  var produced = 0;
  var check = 0;
  var r = 0;
  for (r = 0; r < rounds; r++) {
    if (qPut(devQ, r % 251) == 1) { produced = produced + 1; }
    var pkt = qGet(devQ);
    if (pkt >= 0) {
      workerState = workerStep(workerState, pkt);
      qPut(workQ, workerState % 149);
    }
    var wp = qGet(workQ);
    if (wp >= 0) { handlerState = handlerStep(handlerState, wp); }
    check = (check + workerState + handlerState) % 1000003;
  }
  return check + produced;
}
var result = 0;
for (var iter = 0; iter < 40; iter++) { result = schedule(900); }
print("richards " + result);
|};
  }

(* DeltaBlue: one-way dataflow constraint propagation — a chain of
   constraints re-planned and re-executed with changing strengths. *)
let deltablue =
  {
    name = "DeltaBlue";
    description = "constraint propagation (object graphs, planning walks)";
    source =
      {|
function makeVar(v) { return {value: v, stay: 0, determinedBy: -1}; }
function makeChain(n) {
  var vars = [];
  var i = 0;
  for (i = 0; i <= n; i++) { vars.push(makeVar(i)); }
  return vars;
}
function planOrder(vars, strengths, n) {
  var order = [];
  var i = 0;
  for (i = 0; i < n; i++) {
    if (strengths[i] > 0) { order.push(i); }
  }
  return order;
}
function executePlan(vars, order, scale) {
  var i = 0;
  var len = order.length;
  for (i = 0; i < len; i++) {
    var c = order[i];
    var src = vars[c];
    var dst = vars[c + 1];
    dst.value = src.value * scale % 65521;
    dst.determinedBy = c;
  }
  return vars[len].value;
}
function perturb(strengths, n, round) {
  var i = 0;
  for (i = 0; i < n; i++) {
    strengths[i] = ((i + round) % 7 == 0) ? 0 : (i % 5) + 1;
  }
  return 0;
}
var n = 120;
var vars = makeChain(n);
var strengths = [];
for (var s = 0; s < n; s++) { strengths.push(1); }
var check = 0;
for (var round = 0; round < 450; round++) {
  perturb(strengths, n, round);
  var order = planOrder(vars, strengths, n);
  vars[0].value = round;
  check = (check + executePlan(vars, order, 31)) % 1000003;
}
print("deltablue " + check);
|};
  }

(* Crypto: multi-digit modular arithmetic — schoolbook multiply and a
   square-and-multiply modpow over digit arrays (int math, carries). *)
let crypto =
  {
    name = "Crypto";
    description = "bignum arithmetic (digit arrays, carries, modpow)";
    source =
      {|
function bigFrom(x, width) {
  var d = [];
  var i = 0;
  for (i = 0; i < width; i++) { d.push(x % 10000); x = Math.floor(x / 10000); }
  return d;
}
function bigMulMod(a, b, m, width) {
  var out = [];
  var i = 0;
  for (i = 0; i < width; i++) { out.push(0); }
  for (i = 0; i < width; i++) {
    var carry = 0;
    var ai = a[i];
    var j = 0;
    for (j = 0; j + i < width; j++) {
      var cell = out[i + j] + ai * b[j] + carry;
      out[i + j] = cell % 10000;
      carry = Math.floor(cell / 10000);
    }
  }
  for (i = 0; i < width; i++) { out[i] = out[i] % m; }
  return out;
}
function bigChecksum(a, width) {
  var acc = 0;
  var i = 0;
  for (i = 0; i < width; i++) { acc = (acc * 31 + a[i]) % 1000003; }
  return acc;
}
function modpowish(base, rounds, width) {
  var acc = bigFrom(base, width);
  var mul = bigFrom(base * 3 + 1, width);
  var r = 0;
  for (r = 0; r < rounds; r++) {
    acc = bigMulMod(acc, mul, 9973, width);
  }
  return bigChecksum(acc, width);
}
var check = 0;
for (var outer = 0; outer < 12; outer++) {
  check = (check + modpowish(12345 + outer, 110, 24)) % 1000003;
}
print("crypto " + check);
|};
  }

(* RayTrace: float-heavy ray/sphere intersections with diffuse shading
   over a small framebuffer. *)
let raytrace =
  {
    name = "RayTrace";
    description = "ray-sphere intersection and shading (float vectors)";
    source =
      {|
function dot(ax, ay, az, bx, by, bz) { return ax*bx + ay*by + az*bz; }
function hitSphere(ox, oy, oz, dx, dy, dz, cx, cy, cz, rad) {
  var lx = cx - ox;
  var ly = cy - oy;
  var lz = cz - oz;
  var tca = dot(lx, ly, lz, dx, dy, dz);
  if (tca < 0) { return -1; }
  var d2 = dot(lx, ly, lz, lx, ly, lz) - tca * tca;
  var r2 = rad * rad;
  if (d2 > r2) { return -1; }
  var thc = Math.sqrt(r2 - d2);
  return tca - thc;
}
function shade(t, dx, dy, dz) {
  var base = 255 - Math.floor(t * 40);
  if (base < 0) { base = 0; }
  var lambert = dx * 0.57 + dy * 0.57 + dz * 0.57;
  if (lambert < 0) { lambert = -lambert; }
  return Math.floor(base * lambert);
}
function renderRow(y, width, frame) {
  var acc = 0;
  var x = 0;
  for (x = 0; x < width; x++) {
    var dx = (x - width / 2) / width;
    var dy = (y - 24) / 48;
    var dz = 1;
    var norm = Math.sqrt(dx*dx + dy*dy + dz*dz);
    dx = dx / norm; dy = dy / norm; dz = dz / norm;
    var t1 = hitSphere(0, 0, 0, dx, dy, dz, 0.3, 0.2, 4, 1.1);
    var t2 = hitSphere(0, 0, 0, dx, dy, dz, -0.8, -0.3, 6, 1.7);
    var pixel = 10;
    if (t1 > 0) { pixel = shade(t1, dx, dy, dz); }
    else { if (t2 > 0) { pixel = shade(t2, dx, dy, dz) / 2; } }
    frame[x] = pixel;
    acc = acc + pixel;
  }
  return acc;
}
var width = 80;
var frame = [];
for (var fx = 0; fx < width; fx++) { frame.push(0); }
var check = 0;
for (var pass = 0; pass < 16; pass++) {
  for (var y = 0; y < 48; y++) {
    check = (check + renderRow(y, width, frame)) % 1000003;
  }
}
print("raytrace " + check);
|};
  }

(* RegExp: string scanning — naive pattern search plus character-class
   counting over a synthesized corpus (charCodeAt-heavy). *)
let regexp =
  {
    name = "RegExp";
    description = "string scanning and matching (charCodeAt, substring)";
    source =
      {|
function synthesize(n) {
  var s = "";
  var i = 0;
  for (i = 0; i < n; i++) {
    var c = (i * 7 + 3) % 26;
    s = s + String.fromCharCode(97 + c);
    if (i % 13 == 12) { s = s + " "; }
  }
  return s;
}
function countMatches(hay, needle) {
  var count = 0;
  var from = 0;
  var nlen = needle.length;
  var hlen = hay.length;
  while (from + nlen <= hlen) {
    var sub = hay.substring(from, from + nlen);
    if (sub == needle) { count = count + 1; from = from + nlen; }
    else { from = from + 1; }
  }
  return count;
}
function classify(s) {
  var vowels = 0;
  var spaces = 0;
  var i = 0;
  var len = s.length;
  for (i = 0; i < len; i++) {
    var c = s.charCodeAt(i);
    if (c == 32) { spaces = spaces + 1; }
    else {
      if (c == 97 || c == 101 || c == 105 || c == 111 || c == 117) { vowels = vowels + 1; }
    }
  }
  return vowels * 1000 + spaces;
}
var corpus = synthesize(1400);
var check = 0;
for (var round = 0; round < 60; round++) {
  check = (check + countMatches(corpus, "hov") + classify(corpus)) % 1000003;
}
print("regexp " + check);
|};
  }

(* Splay: splay-tree insert/lookup churn — pointer-chasing over object
   nodes, the GC-ish allocation-heavy Octane profile. *)
let splay =
  {
    name = "Splay";
    description = "splay tree insert/lookup churn (linked objects)";
    source =
      {|
function mkNode(key) { return {key: key, left: null, right: null}; }
function insert(root, key) {
  if (root == null) { return mkNode(key); }
  var cur = root;
  while (true) {
    if (key < cur.key) {
      if (cur.left == null) { cur.left = mkNode(key); break; }
      cur = cur.left;
    } else {
      if (key > cur.key) {
        if (cur.right == null) { cur.right = mkNode(key); break; }
        cur = cur.right;
      } else { break; }
    }
  }
  return root;
}
function lookupDepth(root, key) {
  var depth = 0;
  var cur = root;
  while (cur != null) {
    if (key == cur.key) { return depth; }
    if (key < cur.key) { cur = cur.left; } else { cur = cur.right; }
    depth = depth + 1;
  }
  return -1;
}
function rotateRight(node) {
  var l = node.left;
  if (l == null) { return node; }
  node.left = l.right;
  l.right = node;
  return l;
}
var root = null;
var check = 0;
var key = 1;
for (var i = 0; i < 2600; i++) {
  key = (key * 131 + 7) % 8191;
  root = insert(root, key);
  if (i % 3 == 0) { root = rotateRight(root); }
  var probe = (key * 17 + 3) % 8191;
  check = (check + lookupDepth(root, probe) + 2) % 1000003;
}
print("splay " + check);
|};
  }

(* NavierStokes: 2D diffusion/advection stencils over flat grids — the
   dense float-array kernel profile. *)
let navier_stokes =
  {
    name = "NavierStokes";
    description = "fluid stencil kernels (dense float grids)";
    source =
      {|
function idx(x, y, w) { return y * w + x; }
function diffuse(src, dst, w, h, a) {
  var y = 0;
  for (y = 1; y < h - 1; y++) {
    var x = 0;
    for (x = 1; x < w - 1; x++) {
      var c = idx(x, y, w);
      dst[c] = (src[c] + a * (src[c-1] + src[c+1] + src[c-w] + src[c+w])) / (1 + 4*a);
    }
  }
  return 0;
}
function addSource(grid, w, h, round) {
  var cx = 1 + (round % (w - 2));
  grid[idx(cx, 2, w)] = grid[idx(cx, 2, w)] + 8.5;
  return 0;
}
function total(grid, n) {
  var acc = 0;
  var i = 0;
  for (i = 0; i < n; i++) { acc = acc + grid[i]; }
  return acc;
}
var w = 42;
var h = 42;
var n = w * h;
var a = [];
var b = [];
for (var i0 = 0; i0 < n; i0++) { a.push(0); b.push(0); }
var check = 0;
for (var round = 0; round < 110; round++) {
  addSource(a, w, h, round);
  diffuse(a, b, w, h, 0.18);
  diffuse(b, a, w, h, 0.18);
  check = (check + Math.floor(total(a, n))) % 1000003;
}
print("navierstokes " + check);
|};
  }

(* pdf.js: byte-stream decoding — RLE-ish unpacking, bit manipulation and
   a Huffman-like table walk over int arrays. *)
let pdfjs =
  {
    name = "PdfJS";
    description = "byte-stream decoding (bit ops, table walks)";
    source =
      {|
function buildStream(n) {
  var s = [];
  var i = 0;
  for (i = 0; i < n; i++) { s.push((i * 37 + 11) % 256); }
  return s;
}
function unpackRun(stream, out, from) {
  var op = stream[from];
  var count = (op & 15) + 1;
  var val = (op >> 4) & 15;
  var i = 0;
  for (i = 0; i < count; i++) { out.push(val); }
  return from + 1;
}
function bitSum(out) {
  var acc = 0;
  var i = 0;
  var len = out.length;
  for (i = 0; i < len; i++) {
    var v = out[i];
    acc = acc + ((v << 2) ^ (v >> 1) ^ (acc & 255));
  }
  return acc;
}
function tableWalk(stream, table) {
  var state = 0;
  var acc = 0;
  var i = 0;
  var len = stream.length;
  for (i = 0; i < len; i++) {
    state = table[(state + stream[i]) % table.length];
    acc = (acc + state) % 1000003;
  }
  return acc;
}
var stream = buildStream(900);
var table = [];
for (var t = 0; t < 64; t++) { table.push((t * 29 + 5) % 64); }
var out = [];
var check = 0;
for (var round = 0; round < 55; round++) {
  out.length = 0;
  var pos = 0;
  while (pos < 256) { pos = unpackRun(stream, out, pos); }
  check = (check + bitSum(out) + tableWalk(stream, table)) % 1000003;
}
print("pdfjs " + check);
|};
  }

(* Box2D: rigid bodies under gravity with AABB overlap tests and impulse
   response — mixed object/float physics-engine profile. *)
let box2d =
  {
    name = "Box2D";
    description = "rigid-body physics step (AABBs, impulses)";
    source =
      {|
function makeBody(x, y, vx, vy, hw) {
  return {x: x, y: y, vx: vx, vy: vy, hw: hw};
}
function integrate(b, dt) {
  b.vy = b.vy + 9.8 * dt;
  b.x = b.x + b.vx * dt;
  b.y = b.y + b.vy * dt;
  if (b.y > 100) { b.y = 100; b.vy = 0 - b.vy * 0.45; }
  if (b.x < 0) { b.x = 0; b.vx = 0 - b.vx; }
  if (b.x > 200) { b.x = 200; b.vx = 0 - b.vx; }
  return 0;
}
function overlaps(a, b) {
  var dx = a.x - b.x;
  if (dx < 0) { dx = 0 - dx; }
  var dy = a.y - b.y;
  if (dy < 0) { dy = 0 - dy; }
  return (dx < a.hw + b.hw && dy < a.hw + b.hw) ? 1 : 0;
}
function resolve(a, b) {
  var tvx = a.vx;
  a.vx = b.vx * 0.9;
  b.vx = tvx * 0.9;
  return 0;
}
var bodies = [];
for (var bi = 0; bi < 26; bi++) {
  bodies.push(makeBody(bi * 7.3, bi * 3.1, (bi % 5) - 2.5, 0, 1.5 + (bi % 3)));
}
var check = 0;
for (var step = 0; step < 900; step++) {
  for (var i = 0; i < 26; i++) { integrate(bodies[i], 0.016); }
  for (var i2 = 0; i2 < 26; i2++) {
    for (var j2 = i2 + 1; j2 < 26; j2++) {
      if (overlaps(bodies[i2], bodies[j2]) == 1) { resolve(bodies[i2], bodies[j2]); }
    }
  }
  check = (check + Math.floor(bodies[step % 26].x * 10)) % 1000003;
}
print("box2d " + check);
|};
  }

(* TypeScript: tokenizer + nesting analyzer over a synthesized source
   string — the string/branch-heavy compiler-frontend profile. *)
let typescript =
  {
    name = "TypeScript";
    description = "tokenizer and nesting analysis (compiler frontend)";
    source =
      {|
function synthesizeCode(n) {
  var parts = "function foo(a, b) { var x = a + b * 2; if (x > 10) { return x; } return b; } ";
  var s = "";
  var i = 0;
  for (i = 0; i < n; i++) { s = s + parts; }
  return s;
}
function isIdentChar(c) {
  return (c >= 97 && c <= 122) || (c >= 65 && c <= 90) || (c >= 48 && c <= 57) || c == 95;
}
function tokenize(src, kinds) {
  var i = 0;
  var len = src.length;
  var count = 0;
  while (i < len) {
    var c = src.charCodeAt(i);
    if (c == 32) { i = i + 1; }
    else {
      if (isIdentChar(c)) {
        var start = i;
        while (i < len && isIdentChar(src.charCodeAt(i))) { i = i + 1; }
        kinds.push(1 + (i - start));
        count = count + 1;
      } else {
        kinds.push(0 - c);
        count = count + 1;
        i = i + 1;
      }
    }
  }
  return count;
}
function nesting(kinds) {
  var depth = 0;
  var maxDepth = 0;
  var i = 0;
  var len = kinds.length;
  for (i = 0; i < len; i++) {
    var k = kinds[i];
    if (k == -123) { depth = depth + 1; if (depth > maxDepth) { maxDepth = depth; } }
    if (k == -125) { depth = depth - 1; }
  }
  return maxDepth * 1000 + depth;
}
var src = synthesizeCode(26);
var check = 0;
for (var round = 0; round < 45; round++) {
  var kinds = [];
  var count = tokenize(src, kinds);
  check = (check + count + nesting(kinds)) % 1000003;
}
print("typescript " + check);
|};
  }

(* EarleyBoyer: symbolic computation — term trees as objects, rewrite
   rules, and unification-ish matching (allocation + pointer chasing). *)
let earley_boyer =
  {
    name = "EarleyBoyer";
    description = "symbolic term rewriting (object trees, rule matching)";
    source =
      {|
function mkTerm(op, l, r) { return {op: op, left: l, right: r, size: 1}; }
function leaf(v) { return {op: 0, left: null, right: null, size: v}; }
function build(depth, salt) {
  if (depth == 0) { return leaf((salt % 7) + 1); }
  var op = (salt % 3) + 1;
  return mkTerm(op, build(depth - 1, salt * 3 + 1), build(depth - 1, salt * 5 + 2));
}
function rewrite(t) {
  if (t.op == 0) { return t; }
  var l = rewrite(t.left);
  var r = rewrite(t.right);
  if (t.op == 1 && l.op == 0 && r.op == 0) { return leaf((l.size + r.size) % 97); }
  if (t.op == 2 && l.op == 0 && r.op == 0) { return leaf((l.size * r.size) % 97); }
  if (t.op == 3 && l.op == r.op) { return mkTerm(1, l, r); }
  return mkTerm(t.op, l, r);
}
function measure(t) {
  if (t.op == 0) { return t.size; }
  return measure(t.left) + measure(t.right) + 1;
}
var check = 0;
for (var round = 0; round < 180; round++) {
  var term = build(6, round);
  var reduced = rewrite(rewrite(term));
  check = (check + measure(reduced)) % 1000003;
}
print("earleyboyer " + check);
|};
  }

(* Gameboy: a toy CPU emulator — fetch/decode/execute over byte arrays
   with flags and memory-mapped I/O, the tight-dispatch-loop profile. *)
let gameboy =
  {
    name = "Gameboy";
    description = "toy CPU emulator (fetch-decode-execute, flags, memory)";
    source =
      {|
function makeCpu() { return {a: 0, b: 0, pc: 0, flags: 0, cycles: 0}; }
function step(cpu, rom, ram) {
  var op = rom[cpu.pc % rom.length];
  cpu.pc = cpu.pc + 1;
  if (op < 64) { cpu.a = (cpu.a + op) & 255; cpu.cycles = cpu.cycles + 1; }
  else {
    if (op < 128) { cpu.b = (cpu.a ^ op) & 255; cpu.cycles = cpu.cycles + 2; }
    else {
      if (op < 192) {
        ram[op & 63] = cpu.a;
        cpu.a = (cpu.a + cpu.b) & 255;
        cpu.cycles = cpu.cycles + 3;
      } else {
        cpu.a = ram[(cpu.a + op) & 63];
        cpu.flags = cpu.a == 0 ? 1 : 0;
        if (cpu.flags == 1) { cpu.pc = cpu.pc + 2; }
        cpu.cycles = cpu.cycles + 4;
      }
    }
  }
  return cpu.cycles;
}
var rom = [];
for (var i = 0; i < 512; i++) { rom.push((i * 73 + 19) % 256); }
var ram = [];
for (var j = 0; j < 64; j++) { ram.push(0); }
var cpu = makeCpu();
var check = 0;
for (var frame = 0; frame < 90; frame++) {
  for (var tick = 0; tick < 700; tick++) { step(cpu, rom, ram); }
  check = (check + cpu.a + cpu.cycles) % 1000003;
}
print("gameboy " + check);
|};
  }

(* CodeLoad: many distinct small functions each warmed past the JIT
   threshold — stresses per-function compile/analysis cost (the
   Nr_JIT-heavy profile of Octane's CodeLoad). *)
let code_load =
  let buf = Buffer.create 2048 in
  for i = 0 to 23 do
    Buffer.add_string buf
      (Printf.sprintf
         "function unit%d(x) { var t = x + %d; for (var i = 0; i < 6; i++) { t = (t * %d + i) %% 9973; } return t; }\n"
         i (i * 7) (i + 3))
  done;
  Buffer.add_string buf "var check = 0;\nfor (var round = 0; round < 60; round++) {\n";
  for i = 0 to 23 do
    Buffer.add_string buf (Printf.sprintf "  check = (check + unit%d(round)) %% 1000003;\n" i)
  done;
  Buffer.add_string buf "}\nprint(\"codeload \" + check);\n";
  {
    name = "CodeLoad";
    description = "many distinct hot functions (compile/analysis pressure)";
    source = Buffer.contents buf;
  }

(* Mandreel: compiled-C-code profile — a big switch-dispatched virtual
   machine with function-expression handlers, exercising the desugared
   [switch] and lambda-lifted function values in hot code. *)
let mandreel =
  {
    name = "Mandreel";
    description = "switch-dispatched VM with function-valued handlers";
    source =
      {|
var handlers = {
  add: function(r) { r[0] = (r[0] + r[1]) % 65521; return 1; },
  mix: function(r) { r[1] = (r[1] * 3 + r[2]) % 65521; return 1; },
  rot: function(r) { var t = r[0]; r[0] = r[1]; r[1] = r[2]; r[2] = t; return 1; }
};
function dispatch(op, r) {
  switch (op) {
    case 0: return handlers.add(r);
    case 1: return handlers.mix(r);
    case 2: return handlers.rot(r);
    case 3:
    case 4:
      r[2] = (r[2] + op) % 255;
      return 2;
    default:
      r[0] = r[0] ^ 1;
      return 0;
  }
}
function runProgram(prog, r) {
  var cost = 0;
  var i = 0;
  do {
    cost = cost + dispatch(prog[i], r);
    i = i + 1;
  } while (i < prog.length);
  return cost;
}
var prog = [];
for (var p = 0; p < 600; p++) { prog.push((p * 13 + 5) % 7); }
var regs = [1, 2, 3];
var check = 0;
for (var round = 0; round < 140; round++) {
  check = (check + runProgram(prog, regs) + regs[0]) % 1000003;
}
print("mandreel " + check);
|};
  }

let microbench1 =
  {
    name = "Microbench1";
    description = "arithmetic on variables in a for loop (paper's Microbench1)";
    source =
      {|
function kernel(n) {
  var a = 1;
  var b = 2;
  var c = 0;
  for (var i = 0; i < n; i++) {
    c = (a * 3 + b - (c >> 1)) % 65521;
    a = a + 1;
    b = b ^ c;
  }
  return c;
}
var check = 0;
for (var round = 0; round < 300; round++) { check = (check + kernel(1200)) % 1000003; }
print("microbench1 " + check);
|};
  }

let microbench2 =
  {
    name = "Microbench2";
    description = "array size manipulation in a loop (paper's Microbench2)";
    source =
      {|
function pump(arr, n) {
  var i = 0;
  for (i = 0; i < n; i++) { arr.push(i * 3 % 251); }
  for (i = 0; i < n; i++) { arr.pop(); }
  arr.length = 4;
  return arr.length + arr[0];
}
var check = 0;
var arr = [7, 7, 7, 7];
for (var round = 0; round < 2200; round++) { check = (check + pump(arr, 40)) % 1000003; }
print("microbench2 " + check);
|};
  }

let all =
  [
    richards;
    deltablue;
    crypto;
    raytrace;
    regexp;
    splay;
    navier_stokes;
    pdfjs;
    box2d;
    typescript;
    earley_boyer;
    gameboy;
    code_load;
    mandreel;
  ]

let everything = all @ [ microbench1; microbench2 ]

let find name =
  let lower = String.lowercase_ascii name in
  List.find_opt (fun w -> String.lowercase_ascii w.name = lower) everything
