(** Harmless benchmark corpus — analogues of the Octane suite the paper
    evaluates with (§VI-A-b), written in the mini-JS subset, plus the
    paper's two micro-benchmarks.

    Each program is named after and shaped like its Octane counterpart
    (task-scheduler objects for Richards, constraint propagation for
    DeltaBlue, bignum arithmetic for Crypto, float ray-sphere math for
    RayTrace, string scanning for RegExp, splay-tree objects for Splay,
    stencil grids for NavierStokes, byte-stream decoding for pdf.js, rigid
    bodies for Box2D, a tokenizer for TypeScript); they exist to provide a
    diverse population of hot JITed functions for the false-positive and
    overhead measurements, not to match Octane's absolute scores.

    Programs are deterministic and print a final checksum line, which the
    differential tests compare across execution tiers. *)

type t = {
  name : string;  (** Octane-style display name, e.g. "Richards" *)
  description : string;
  source : string;
}

val all : t list  (** the thirteen Octane analogues, paper order first *)

val microbench1 : t  (** loop arithmetic (paper §VI-A-b) *)

val microbench2 : t  (** array-size manipulation (paper §VI-A-b) *)

val everything : t list  (** [all] plus the two micro-benchmarks *)

val find : string -> t option  (** case-insensitive by name *)
