test/helpers.ml: Alcotest Array Jitbull_bytecode Jitbull_frontend Jitbull_interp Jitbull_jit Jitbull_mir Jitbull_passes List QCheck_alcotest String
