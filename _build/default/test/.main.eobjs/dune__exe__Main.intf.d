test/main.mli:
