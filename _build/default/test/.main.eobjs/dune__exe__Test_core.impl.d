test/test_core.ml: Alcotest Filename Hashtbl Helpers Jitbull_core Jitbull_jit Jitbull_mir Jitbull_passes Jitbull_util Jitbull_vdc List Sys
