test/test_differential.ml: Helpers Jitbull_fuzz Jitbull_jit Jitbull_passes List QCheck String
