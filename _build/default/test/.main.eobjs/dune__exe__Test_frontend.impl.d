test/test_frontend.ml: Alcotest Helpers Jitbull_frontend List QCheck String
