test/test_fuzz.ml: Alcotest Helpers Jitbull_core Jitbull_frontend Jitbull_fuzz Jitbull_jit Jitbull_passes List Printf String
