test/test_interp_vm.ml: Alcotest Array Helpers Jitbull_bytecode Jitbull_frontend Jitbull_interp Jitbull_runtime List String
