test/test_lang_ext.ml: Alcotest Helpers Jitbull_frontend List String
