test/test_lir.ml: Alcotest Array Hashtbl Helpers Jitbull_bytecode Jitbull_frontend Jitbull_jit Jitbull_lir Jitbull_mir Jitbull_runtime String
