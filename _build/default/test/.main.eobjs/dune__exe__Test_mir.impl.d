test/test_mir.ml: Alcotest Array Helpers Jitbull_bytecode Jitbull_frontend Jitbull_mir Jitbull_runtime List Vm
