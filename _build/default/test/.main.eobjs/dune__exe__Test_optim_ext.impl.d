test/test_optim_ext.ml: Alcotest Array Helpers Jitbull_bytecode Jitbull_frontend Jitbull_jit Jitbull_lir Jitbull_mir Jitbull_passes List String Vm
