test/test_passes.ml: Alcotest Hashtbl Helpers Jitbull_mir Jitbull_passes List
