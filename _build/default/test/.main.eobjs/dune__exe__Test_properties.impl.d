test/test_properties.ml: Hashtbl Helpers Jitbull_core Jitbull_runtime Jitbull_vdc List QCheck String Test_differential
