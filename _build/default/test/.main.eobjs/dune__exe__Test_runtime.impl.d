test/test_runtime.ml: Alcotest Float Hashtbl Helpers Jitbull_frontend Jitbull_runtime List
