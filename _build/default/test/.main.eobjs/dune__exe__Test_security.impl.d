test/test_security.ml: Alcotest Float Helpers Jitbull_core Jitbull_jit Jitbull_passes Jitbull_vdc List Printf
