test/test_util.ml: Alcotest Array Helpers Jitbull_util List QCheck String
