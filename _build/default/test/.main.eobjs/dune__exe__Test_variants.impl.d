test/test_variants.ml: Alcotest Helpers Jitbull_frontend Jitbull_vdc List String
