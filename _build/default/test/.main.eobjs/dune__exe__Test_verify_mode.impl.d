test/test_verify_mode.ml: Alcotest Helpers Jitbull_core Jitbull_jit Jitbull_passes Jitbull_vdc Jitbull_workloads List
