test/test_workloads.ml: Alcotest Helpers Jitbull_jit Jitbull_workloads List String
