(* Tests for the fuzzing subsystem and the paper's §IV-A auto-harvest
   pipeline. *)

open Helpers
module F = Jitbull_fuzz
module VC = Jitbull_passes.Vuln_config
module Engine = Jitbull_jit.Engine
module Db = Jitbull_core.Db
module Jitbull = Jitbull_core.Jitbull

let fast cfg = { cfg with Engine.baseline_threshold = 2; Engine.ion_threshold = 4 }

let seeds n = List.init n (fun i -> i)

let test_generator_determinism () =
  check_string "benign deterministic" (F.Generator.benign ~seed:5) (F.Generator.benign ~seed:5);
  check_string "aggressive deterministic" (F.Generator.aggressive ~seed:5)
    (F.Generator.aggressive ~seed:5);
  check_bool "seeds differ" true
    (not (String.equal (F.Generator.benign ~seed:1) (F.Generator.benign ~seed:2)))

let test_generated_programs_parse () =
  List.iter
    (fun seed ->
      ignore (Jitbull_frontend.Parser.parse (F.Generator.benign ~seed));
      ignore (Jitbull_frontend.Parser.parse (F.Generator.aggressive ~seed)))
    (seeds 30)

let test_benign_campaign_clean () =
  (* benign programs agree on every tier even on a fully vulnerable engine *)
  let config = fast { Engine.default_config with Engine.vulns = VC.make VC.all } in
  let r = F.Harness.campaign ~profile:`Benign ~seeds:(seeds 15) ~config () in
  check_int "all agree" r.F.Harness.total r.F.Harness.agreements;
  check_int "no signals" 0 (List.length r.F.Harness.signals)

let test_aggressive_on_patched_engine_clean () =
  let config = fast Engine.default_config in
  let r = F.Harness.campaign ~profile:`Aggressive ~seeds:(seeds 15) ~config () in
  check_int "patched engine: no signals" 0 (List.length r.F.Harness.signals)

let test_aggressive_finds_exploits () =
  let vulns = VC.make [ VC.CVE_2019_17026; VC.CVE_2019_9813 ] in
  let config = fast { Engine.default_config with Engine.vulns } in
  let r = F.Harness.campaign ~profile:`Aggressive ~seeds:(seeds 15) ~config () in
  check_bool "signals found" true (List.length r.F.Harness.signals > 0);
  (* every signal is a memory-safety observable, not a mismatch *)
  List.iter
    (fun (f : F.Harness.finding) ->
      match f.F.Harness.verdict with
      | F.Oracle.Crash _ | F.Oracle.Shellcode _ | F.Oracle.Pwned _ | F.Oracle.Mismatch _ -> ()
      | v -> Alcotest.fail ("unexpected verdict " ^ F.Oracle.verdict_summary v))
    r.F.Harness.signals

let test_auto_harvest_neutralizes () =
  let vulns = VC.make [ VC.CVE_2019_17026; VC.CVE_2019_9813 ] in
  let vulnerable = fast { Engine.default_config with Engine.vulns } in
  let r = F.Harness.campaign ~profile:`Aggressive ~seeds:(seeds 12) ~config:vulnerable () in
  check_bool "found something to harvest" true (r.F.Harness.signals <> []);
  let db = Db.create () in
  let n = F.Harness.auto_harvest ~vulns ~db r.F.Harness.signals in
  check_bool "DNA entries installed" true (n > 0);
  let protected_cfg = fast (Jitbull.config ~vulns db) in
  List.iter
    (fun (f : F.Harness.finding) ->
      check_bool
        (Printf.sprintf "seed %d neutralized" f.F.Harness.seed)
        false
        (F.Oracle.is_exploit_signal (F.Oracle.run ~config:protected_cfg f.F.Harness.source)))
    r.F.Harness.signals

let test_generalizes_to_fresh_inputs () =
  (* DNA harvested from one campaign blocks exploit inputs from different
     seeds — the similarity matching at work, not input memorization *)
  let vulns = VC.make [ VC.CVE_2019_17026; VC.CVE_2019_9813 ] in
  let vulnerable = fast { Engine.default_config with Engine.vulns } in
  let train = F.Harness.campaign ~profile:`Aggressive ~seeds:(seeds 12) ~config:vulnerable () in
  let db = Db.create () in
  ignore (F.Harness.auto_harvest ~vulns ~db train.F.Harness.signals);
  let protected_cfg = fast (Jitbull.config ~vulns db) in
  let fresh = List.init 10 (fun i -> 500 + i) in
  let unprotected = F.Harness.campaign ~profile:`Aggressive ~seeds:fresh ~config:vulnerable () in
  let guarded = F.Harness.campaign ~profile:`Aggressive ~seeds:fresh ~config:protected_cfg () in
  check_bool "fresh inputs exploit unprotected" true (unprotected.F.Harness.signals <> []);
  check_int "fresh inputs blocked under fuzz-fed JITBULL" 0
    (List.length guarded.F.Harness.signals)

let test_oracle_classifications () =
  (match F.Oracle.run "print(1 + 1);" with
  | F.Oracle.Agree out -> check_string "agree output" "2\n" out
  | v -> Alcotest.fail (F.Oracle.verdict_summary v));
  (match F.Oracle.run "print(undefinedName);" with
  | F.Oracle.Runtime_error _ -> ()
  | v -> Alcotest.fail (F.Oracle.verdict_summary v));
  check_bool "agree is not a signal" false (F.Oracle.is_exploit_signal (F.Oracle.Agree ""));
  check_bool "crash is a signal" true (F.Oracle.is_exploit_signal (F.Oracle.Crash ""))

let suite =
  ( "fuzz",
    [
      Alcotest.test_case "generator determinism" `Quick test_generator_determinism;
      Alcotest.test_case "generated programs parse" `Quick test_generated_programs_parse;
      Alcotest.test_case "benign campaign clean" `Slow test_benign_campaign_clean;
      Alcotest.test_case "aggressive clean on patched" `Slow test_aggressive_on_patched_engine_clean;
      Alcotest.test_case "aggressive finds exploits" `Slow test_aggressive_finds_exploits;
      Alcotest.test_case "auto-harvest neutralizes" `Slow test_auto_harvest_neutralizes;
      Alcotest.test_case "generalizes to fresh inputs" `Slow test_generalizes_to_fresh_inputs;
      Alcotest.test_case "oracle classifications" `Quick test_oracle_classifications;
    ] )
