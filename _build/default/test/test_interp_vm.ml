(* Semantics tests for the reference interpreter and the bytecode VM —
   each case asserts the expected output and that all tiers agree. *)

open Helpers
module Interp = Jitbull_interp.Interp
module Errors = Jitbull_runtime.Errors
module Op = Jitbull_bytecode.Op
module Compiler = Jitbull_bytecode.Compiler
module Parser = Jitbull_frontend.Parser

let case name src expected () =
  check_string name expected (interp_output src);
  assert_tiers_agree ~name src

let simple_cases =
  [
    ("arithmetic", "print(2 + 3 * 4 - 1);", "13\n");
    ("division produces floats", "print(7 / 2);", "3.5\n");
    ("modulo", "print(10 % 3);", "1\n");
    ("string concat", "print('a' + 1 + 2);", "a12\n");
    ("number plus", "print(1 + 2 + 'a');", "3a\n");
    ("comparison chain", "print(1 < 2); print(2 <= 1); print('b' > 'a');", "true\nfalse\ntrue\n");
    ("equality coercion", "print(1 == '1'); print(1 === '1'); print(null == undefined);",
     "true\nfalse\ntrue\n");
    ("logical short circuit", "var x = 0; (x = 1) && (x = 2); print(x); 0 || (x = 3); print(x);",
     "2\n3\n");
    ("logical values", "print(0 || 'd'); print(1 && 'e'); print('' && 'f');", "d\ne\n\n");
    ("conditional", "print(1 < 2 ? 'y' : 'n');", "y\n");
    ("bitwise", "print(5 & 3, 5 | 3, 5 ^ 3, ~5, 1 << 4, -16 >> 2, -16 >>> 28);",
     "1\n7\n6\n-6\n16\n-4\n15\n");
    ("typeof", "print(typeof 1, typeof 'a', typeof true, typeof undefined, typeof null, typeof [1]);",
     "number\nstring\nboolean\nundefined\nobject\nobject\n");
    ("unary", "print(-3, !0, +'5', ~0);", "-3\ntrue\n5\n-1\n");
    ("while with break/continue",
     "var s = 0; var i = 0; while (true) { i += 1; if (i % 2 == 0) continue; if (i > 7) break; s += i; } print(s);",
     "16\n");
    ("nested loops",
     "var t = 0; for (var i = 0; i < 3; i++) { for (var j = 0; j < 3; j++) { if (j == 2) break; t += 1; } } print(t);",
     "6\n");
    ("functions and recursion",
     "function fact(n) { if (n <= 1) { return 1; } return n * fact(n - 1); } print(fact(6));",
     "720\n");
    ("function value calls",
     "function inc(x) { return x + 1; } var f = inc; print(f(4));",
     "5\n");
    ("missing args are undefined",
     "function f(a, b) { return typeof b; } print(f(1));",
     "undefined\n");
    ("return without value", "function f() { return; } print(f());", "undefined\n");
    ("arrays basics",
     "var a = [1, 2, 3]; a.push(4); print(a.length, a[0], a[3], a[9]);",
     "4\n1\n4\nundefined\n");
    ("array pop", "var a = [1, 2]; print(a.pop(), a.pop(), a.pop(), a.length);",
     "2\n1\nundefined\n0\n");
    ("array shrink keeps prefix",
     "var a = [1, 2, 3, 4]; a.length = 2; print(a.length, a[1], a[2]);",
     "2\n2\nundefined\n");
    ("array grow fills undefined",
     "var a = [1]; a.length = 3; print(a.length, a[2]);",
     "3\nundefined\n");
    ("array join/indexOf/slice",
     "var a = [1, 2, 3]; print(a.join('-'), a.indexOf(2), a.slice(1).length);",
     "1-2-3\n1\n2\n");
    ("objects",
     "var o = {x: 1, s: 'hi'}; o.y = o.x + 1; o['z'] = 3; print(o.x, o.y, o.z, o.s.length, o.nothing);",
     "1\n2\n3\n2\nundefined\n");
    ("object method dispatch",
     "function m(v) { return v * 2; } var o = {f: m}; print(o.f(21));",
     "42\n");
    ("string ops",
     "var s = 'hello'; print(s.length, s.charAt(1), s.charCodeAt(0), s.indexOf('llo'), s.substring(1, 3), s[4]);",
     "5\ne\n104\n2\nel\no\n");
    ("String.fromCharCode", "print(String.fromCharCode(104, 105));", "hi\n");
    ("math namespace",
     "print(Math.floor(2.7), Math.abs(-3), Math.sqrt(16), Math.min(2, 1), Math.max(2, 8), Math.round(2.5));",
     "2\n3\n4\n1\n8\n3\n");
    ("global assignment from function",
     "function f() { g = 7; return 0; } f(); print(g);",
     "7\n");
    ("var hoisting",
     "function f() { x = 5; var x; return x; } print(f());",
     "5\n");
    ("shadowing param",
     "function f(x) { var x = 2; return x; } print(f(9));",
     "2\n");
    ("for with multiple declarators",
     "var t = 0; for (var i = 0, j = 10; i < j; i = i + 2) t += 1; print(t);",
     "5\n");
    ("division by zero", "print(1 / 0, -1 / 0, 0 / 0);", "Infinity\n-Infinity\nNaN\n");
    ("NaN propagation", "var n = 0 / 0; print(n == n, n + 1);", "false\nNaN\n");
  ]

let test_undefined_variable () =
  match interp_output "print(neverDefined);" with
  | exception Errors.Type_error _ -> ()
  | _ -> Alcotest.fail "expected type error"

let test_call_non_function () =
  match interp_output "var x = 3; x();" with
  | exception Errors.Type_error _ -> ()
  | _ -> Alcotest.fail "expected type error"

let test_max_steps () =
  match Interp.run_source ~max_steps:1000 "while (true) { }" with
  | exception Interp.Timeout -> ()
  | _ -> Alcotest.fail "expected timeout"

let test_result_value () =
  let o = Interp.run_source "1 + 2;" in
  check_bool "last expression value" true (o.Interp.result = Jitbull_runtime.Value.Number 3.0)

(* ---- bytecode-specific ---- *)

let test_compile_shapes () =
  let p = Parser.parse "function f(a) { var b = a + 1; return b; } f(1);" in
  let bc = Compiler.compile p in
  let f = bc.Op.funcs.(0) in
  check_int "arity" 1 f.Op.arity;
  check_int "locals = param + var" 2 f.Op.n_locals;
  check_string "name" "f" f.Op.name;
  check_bool "ends with return" true
    (match f.Op.code.(Array.length f.Op.code - 1) with
    | Op.Return_undefined -> true
    | _ -> false)

let test_compile_error_break () =
  match Compiler.compile (Parser.parse "break;") with
  | exception Compiler.Compile_error _ -> ()
  | _ -> Alcotest.fail "break outside loop should not compile"

let test_disassemble () =
  let p = Parser.parse "function f() { return 1; }" in
  let bc = Compiler.compile p in
  let text = Op.disassemble bc.Op.funcs.(0) in
  check_bool "disassembly mentions push" true
    (String.length text > 0
    &&
    let lines = String.split_on_char '\n' text in
    List.exists (fun l -> String.length l > 8) lines)

let test_feedback_collection () =
  let p = Parser.parse "function f(a, i) { return a[i]; } var x = [1,2]; f(x, 0); f(x, 1);" in
  let bc = Compiler.compile p in
  let vm = Helpers.Vm.create bc in
  ignore (Helpers.Vm.run vm);
  let sites = vm.Helpers.Vm.feedback.(0) in
  let saw_array =
    Array.exists (fun s -> s.Jitbull_bytecode.Feedback.saw_array_int) sites
  in
  check_bool "array feedback recorded" true saw_array

let test_feedback_polymorphic () =
  let p =
    Parser.parse
      "function f(a, i) { return a[i]; } var x = [1,2]; f(x, 0); f({k: 3}, 'k');"
  in
  let bc = Compiler.compile p in
  let vm = Helpers.Vm.create bc in
  ignore (Helpers.Vm.run vm);
  let sites = vm.Helpers.Vm.feedback.(0) in
  let mixed =
    Array.exists
      (fun s ->
        s.Jitbull_bytecode.Feedback.saw_array_int && s.Jitbull_bytecode.Feedback.saw_other_index)
      sites
  in
  check_bool "polymorphic site recorded both" true mixed

let suite =
  ( "interp+vm",
    List.map (fun (name, src, expected) -> Alcotest.test_case name `Quick (case name src expected))
      simple_cases
    @ [
        Alcotest.test_case "undefined variable" `Quick test_undefined_variable;
        Alcotest.test_case "call non-function" `Quick test_call_non_function;
        Alcotest.test_case "interpreter fuel" `Quick test_max_steps;
        Alcotest.test_case "top-level result value" `Quick test_result_value;
        Alcotest.test_case "bytecode shapes" `Quick test_compile_shapes;
        Alcotest.test_case "break outside loop" `Quick test_compile_error_break;
        Alcotest.test_case "disassembler" `Quick test_disassemble;
        Alcotest.test_case "feedback collection" `Quick test_feedback_collection;
        Alcotest.test_case "feedback polymorphic" `Quick test_feedback_polymorphic;
      ] )
