(* Tests for the language extensions: do-while, switch, and lambda-lifted
   function expressions. Every case asserts the expected output and that
   all three execution tiers agree. *)

open Helpers
module Parser = Jitbull_frontend.Parser
module Lambda_lift = Jitbull_frontend.Lambda_lift
module Ast = Jitbull_frontend.Ast

let case name src expected () =
  check_string name expected (interp_output src);
  assert_tiers_agree ~name src

let cases =
  [
    (* do-while *)
    ("do-while runs body first", "var i = 10; do { i += 1; } while (i < 5); print(i);", "11\n");
    ("do-while loops", "var i = 0; do { i += 1; } while (i < 5); print(i);", "5\n");
    ("do-while with continue",
     "var s = 0; var i = 0; do { i += 1; if (i % 2 == 0) continue; s += i; } while (i < 7); print(s);",
     "16\n");
    ("do-while with break",
     "var i = 0; do { i += 1; if (i == 3) break; } while (true); print(i);",
     "3\n");
    ("nested do-while",
     "var t = 0; var i = 0; do { var j = 0; do { t += 1; j += 1; } while (j < 2); i += 1; } while (i < 3); print(t);",
     "6\n");
    (* switch *)
    ("switch basic",
     "function f(x) { switch (x) { case 1: return 'one'; case 2: return 'two'; default: return 'many'; } } print(f(1), f(2), f(3));",
     "one\ntwo\nmany\n");
    ("switch fallthrough",
     "var r = ''; switch (2) { case 1: r += 'a'; case 2: r += 'b'; case 3: r += 'c'; break; case 4: r += 'd'; } print(r);",
     "bc\n");
    ("switch default only when unmatched",
     "var r = ''; switch (9) { case 1: r += 'a'; default: r += 'z'; } print(r);",
     "z\n");
    ("switch matched then fallthrough to default",
     "var r = ''; switch (1) { case 1: r += 'a'; default: r += 'z'; } print(r);",
     "az\n");
    ("switch string labels",
     "function kind(s) { switch (s) { case 'a': return 1; case 'b': return 2; default: return 0; } } print(kind('a') + kind('b') + kind('c'));",
     "3\n");
    ("switch strict matching",
     "var r = 'none'; switch (1) { case '1': r = 'string'; break; case 1: r = 'number'; break; } print(r);",
     "number\n");
    ("switch inside loop with break",
     "var t = 0; for (var i = 0; i < 5; i++) { switch (i % 3) { case 0: t += 10; break; case 1: t += 1; break; default: t += 100; } } print(t);",
     "122\n");
    (* function expressions *)
    ("function expression value", "var f = function(x) { return x * 2; }; print(f(21));", "42\n");
    ("higher-order argument",
     "function apply(g, v) { return g(v); } print(apply(function(x) { return x + 1; }, 4));",
     "5\n");
    ("object methods from expressions",
     "var ops = {inc: function(x) { return x + 1; }, dec: function(x) { return x - 1; }}; print(ops.inc(5), ops.dec(5));",
     "6\n4\n");
    ("function expression using globals",
     "var base = 100; var f = function(x) { return base + x; }; print(f(1));",
     "101\n");
    ("array of function expressions",
     "var fs = [function(x) { return x + 1; }, function(x) { return x * 2; }]; print(fs[0](3), fs[1](3));",
     "4\n6\n");
    ("immediately invoked", "print((function(x) { return x * x; })(7));", "49\n");
  ]

let test_capture_rejected () =
  let fails src =
    match Parser.parse src with
    | exception Lambda_lift.Capture_error _ -> ()
    | _ -> Alcotest.fail ("capture should be rejected: " ^ src)
  in
  fails "function outer(a) { var f = function(x) { return x + a; }; return f(1); }";
  fails "function outer() { var loc = 3; return (function() { return loc; })(); }"

let test_capture_shadowing_allowed () =
  (* the inner function re-binds the name: not a capture *)
  check_string "shadowed param ok" "7\n"
    (interp_output
       "function outer(a) { var f = function(a) { return a + 1; }; return f(6); } print(outer(99));")

let test_lift_produces_top_level () =
  let p = Parser.parse "var f = function(x) { return x; }; print(f(1));" in
  check_int "one lifted function" 1 (List.length p.Ast.functions);
  check_bool "anon name" true
    (String.length (List.hd p.Ast.functions).Ast.name >= 4
    && String.sub (List.hd p.Ast.functions).Ast.name 0 4 = "anon")

let test_nested_function_expressions () =
  (* inner expression lifted first; outer references it by name *)
  check_string "nested lift" "9\n"
    (interp_output
       "var make = function() { return function(x) { return x * 3; }; }; var f = make(); print(f(3));")

let test_switch_restrictions () =
  let fails src =
    match Parser.parse src with
    | exception Parser.Parse_error _ -> ()
    | _ -> Alcotest.fail ("should not parse: " ^ src)
  in
  fails "switch (x) { case y: break; }"  (* non-literal label *)
  ;
  fails "switch (x) { default: break; case 1: break; }"  (* default not last *)
  ;
  fails "while (1) { switch (x) { case 1: continue; } }"  (* naked continue *)

let test_desugared_temps_are_hoistable () =
  (* do/switch temporaries live inside functions and hoist like vars *)
  assert_tiers_agree ~name:"switch in function"
    "function f(x) { var r = 0; switch (x) { case 1: r = 10; break; default: r = 20; } return r; } for (var k = 0; k < 9; k++) { print(f(k % 2)); }"

let suite =
  ( "lang-ext",
    List.map (fun (name, src, expected) -> Alcotest.test_case name `Quick (case name src expected))
      cases
    @ [
        Alcotest.test_case "capture rejected" `Quick test_capture_rejected;
        Alcotest.test_case "shadowing allowed" `Quick test_capture_shadowing_allowed;
        Alcotest.test_case "lift to top level" `Quick test_lift_produces_top_level;
        Alcotest.test_case "nested function expressions" `Quick test_nested_function_expressions;
        Alcotest.test_case "switch restrictions" `Quick test_switch_restrictions;
        Alcotest.test_case "desugared temps" `Quick test_desugared_temps_are_hoistable;
      ] )
