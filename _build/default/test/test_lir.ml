(* Tests for LIR lowering, the parallel-move resolver, the register
   allocator and the executor. *)

open Helpers
module Mir = Jitbull_mir.Mir
module Lir = Jitbull_lir.Lir
module Lower = Jitbull_lir.Lower
module Regalloc = Jitbull_lir.Regalloc
module Executor = Jitbull_lir.Executor
module Parser = Jitbull_frontend.Parser
module Compiler = Jitbull_bytecode.Compiler
module Op = Jitbull_bytecode.Op
module Value = Jitbull_runtime.Value
module Realm = Jitbull_runtime.Realm
module Engine = Jitbull_jit.Engine

(* Lower function [idx] of [src] after full optimization with warmup. *)
let lowered ?(idx = 0) ?(allocate = true) src =
  let g, _ = optimized_mir ~func:idx src in
  let lir = Lower.lower g in
  if allocate then Regalloc.allocate lir;
  lir

(* Execute a single LIR function with trivial callbacks. *)
let exec lir args =
  let realm = Realm.create ~size_limit:65536 () in
  let globals = Hashtbl.create 8 in
  let cb =
    {
      Executor.call_function = (fun _ _ -> Alcotest.fail "no calls expected");
      lookup_global =
        (fun n ->
          match Hashtbl.find_opt globals n with
          | Some v -> v
          | None -> Value.Undefined);
      store_global = (fun n v -> Hashtbl.replace globals n v);
      declare_global = (fun n -> if not (Hashtbl.mem globals n) then Hashtbl.replace globals n Value.Undefined);
    }
  in
  Executor.run lir realm cb args

let test_lower_simple () =
  let lir = lowered "function f(a, b) { return a * b + 1; } for (var k = 0; k < 5; k++) f(k, 2);" in
  check_bool "has code" true (Array.length lir.Lir.code > 0);
  check_string "name" "f" lir.Lir.name;
  check_bool "execute" true
    (exec lir [ Value.Number 6.0; Value.Number 7.0 ] = Value.Number 43.0)

let test_lower_loop () =
  let lir =
    lowered
      "function f(n) { var t = 0; for (var i = 0; i < n; i++) { t += i; } return t; } for (var k = 0; k < 5; k++) f(4);"
  in
  check_bool "loop result" true (exec lir [ Value.Number 10.0 ] = Value.Number 45.0)

let test_lower_branch_phis () =
  let lir =
    lowered
      "function f(c, a, b) { var x = 0; if (c) { x = a; } else { x = b; } return x; } for (var k = 0; k < 5; k++) { f(1, 2, 3); f(0, 2, 3); }"
  in
  check_bool "true branch" true (exec lir [ Value.Bool true; Value.Number 2.0; Value.Number 3.0 ] = Value.Number 2.0);
  check_bool "false branch" true (exec lir [ Value.Bool false; Value.Number 2.0; Value.Number 3.0 ] = Value.Number 3.0)

let test_parallel_move_swap () =
  (* swap in a loop is the classic parallel-copy cycle *)
  let lir =
    lowered
      "function f(n) { var a = 1; var b = 2; for (var i = 0; i < n; i++) { var t = a; a = b; b = t; } return a * 10 + b; } for (var k = 0; k < 6; k++) { f(3); f(4); }"
  in
  check_bool "odd swaps" true (exec lir [ Value.Number 3.0 ] = Value.Number 21.0);
  check_bool "even swaps" true (exec lir [ Value.Number 4.0 ] = Value.Number 12.0)

let test_sequentialize_moves_cycle () =
  (* three-way rotation through the resolver *)
  let lir =
    lowered
      "function f(n) { var a = 1; var b = 2; var c = 3; for (var i = 0; i < n; i++) { var t = a; a = b; b = c; c = t; } return a * 100 + b * 10 + c; } for (var k = 0; k < 6; k++) { f(1); f(2); f(3); }"
  in
  check_bool "one rotation" true (exec lir [ Value.Number 1.0 ] = Value.Number 231.0);
  check_bool "three rotations" true (exec lir [ Value.Number 3.0 ] = Value.Number 123.0)

let test_regalloc_bounded_registers () =
  (* many simultaneously live values force spill slots *)
  let src =
    "function f(a) { var v0 = a+1; var v1 = a+2; var v2 = a+3; var v3 = a+4; var v4 = a+5; var v5 = a+6; var v6 = a+7; var v7 = a+8; var v8 = a+9; var v9 = a+10; var v10 = a+11; var v11 = a+12; var v12 = a+13; var v13 = a+14; var v14 = a+15; var v15 = a+16; return v0+v1+v2+v3+v4+v5+v6+v7+v8+v9+v10+v11+v12+v13+v14+v15; } for (var k = 0; k < 5; k++) f(k);"
  in
  let lir = lowered src in
  check_bool "spilled" true (lir.Lir.spill_count > 0);
  check_bool "registers reused" true (lir.Lir.n_regs < 80);
  check_bool "still correct" true (exec lir [ Value.Number 0.0 ] = Value.Number 136.0)

let test_regalloc_reuses_registers () =
  let lir =
    lowered
      "function f(a) { var x = a + 1; var y = x + 1; var z = y + 1; return z; } for (var k = 0; k < 5; k++) f(k);"
  in
  check_bool "fits in machine registers" true (lir.Lir.spill_count = 0);
  check_bool "correct" true (exec lir [ Value.Number 1.0 ] = Value.Number 4.0)

let test_bailout_on_type_guard () =
  let lir =
    lowered "function f(a, b) { return a - b; } for (var k = 0; k < 6; k++) f(k, 1);"
  in
  match exec lir [ Value.String "zz"; Value.Number 1.0 ] with
  | exception Lir.Bailout _ -> ()
  | v -> Alcotest.fail ("expected bailout, got " ^ Value.to_display v)

let test_bailout_on_bounds () =
  let lir =
    lowered "function f(a, i) { return a[i]; } var x = [1,2,3]; for (var k = 0; k < 6; k++) f(x, 1);"
  in
  let realm = Realm.create ~size_limit:65536 () in
  let h = Jitbull_runtime.Heap.alloc_array realm.Realm.heap ~length:2 in
  let cb =
    {
      Executor.call_function = (fun _ _ -> Value.Undefined);
      lookup_global = (fun _ -> Value.Undefined);
      store_global = (fun _ _ -> ());
      declare_global = (fun _ -> ());
    }
  in
  match Executor.run lir realm cb [ Value.Array h; Value.Number 99.0 ] with
  | exception Lir.Bailout _ -> ()
  | v -> Alcotest.fail ("expected bailout, got " ^ Value.to_display v)

let test_executor_generic_paths () =
  (* polymorphic access sites compile generic and keep full semantics *)
  let src =
    "function f(o, k) { return o[k]; } var a = [7]; var obj = {x: 9}; print(f(a, 0)); print(f(obj, 'x')); print(f(a, 0)); print(f(obj, 'x')); print(f(a, 0)); print(f(obj, 'x')); print(f(a, 0));"
  in
  assert_tiers_agree ~name:"generic index" src

let test_to_string_roundtrip () =
  let lir = lowered "function f(a) { return a + 1; } for (var k = 0; k < 5; k++) f(k);" in
  let text = Lir.to_string lir in
  check_bool "dump mentions lir" true (String.length text > 10 && String.sub text 0 3 = "lir")

(* ---- engine-level tiering ---- *)

let test_tier_up_sequence () =
  let config =
    { Engine.default_config with Engine.baseline_threshold = 3; ion_threshold = 6 }
  in
  let out, t =
    Engine.run_source config
      "function f(x) { return x * 2; } var s = 0; for (var i = 0; i < 20; i++) { s = f(i); } print(s);"
  in
  check_string "result" "38\n" out;
  let st = Engine.stats t in
  check_int "one baseline compile" 1 st.Engine.baseline_compiles;
  check_int "one ion compile" 1 st.Engine.ion_compiles

let test_nojit_config () =
  let config = { Engine.default_config with Engine.jit_enabled = false } in
  let out, t =
    Engine.run_source config
      "function f(x) { return x + 1; } for (var i = 0; i < 50; i++) { f(i); } print(f(1));"
  in
  check_string "result" "2\n" out;
  check_int "no compiles" 0 (Engine.stats t).Engine.ion_compiles

let test_deopt_blacklists () =
  (* repeated guard failures must blacklist the function and fall back to
     the interpreter, preserving semantics *)
  let config =
    { Engine.default_config with Engine.baseline_threshold = 2; ion_threshold = 3; max_bailouts = 2 }
  in
  let src =
    "function f(a, i) { return a[i]; } var x = [1,2,3]; var s = 0; for (var k = 0; k < 30; k++) { s = f(x, 5); } print(s);"
  in
  let out, t = Engine.run_source config src in
  check_string "OOB read is undefined" "undefined\n" out;
  let st = Engine.stats t in
  check_bool "bailouts happened" true (st.Engine.bailouts > 0);
  check_int "function deopted" 1 st.Engine.deopts

let test_bailout_replay_semantics () =
  (* a guard that fails only sometimes: the bailed calls replay in the
     interpreter and produce correct values *)
  let config =
    { Engine.default_config with Engine.baseline_threshold = 2; ion_threshold = 4; max_bailouts = 1000 }
  in
  let src =
    "function f(a, i) { return a[i]; } var x = [10,20,30]; var s = 0; for (var k = 0; k < 12; k++) { var v = f(x, k % 4); if (typeof v == 'number') { s += v; } } print(s);"
  in
  let out, _ = Engine.run_source config src in
  check_string "mixed in/out of bounds" (interp_output src) out

let suite =
  ( "lir+engine",
    [
      Alcotest.test_case "lower simple" `Quick test_lower_simple;
      Alcotest.test_case "lower loop" `Quick test_lower_loop;
      Alcotest.test_case "branch phis" `Quick test_lower_branch_phis;
      Alcotest.test_case "parallel move swap" `Quick test_parallel_move_swap;
      Alcotest.test_case "parallel move rotation" `Quick test_sequentialize_moves_cycle;
      Alcotest.test_case "regalloc spills" `Quick test_regalloc_bounded_registers;
      Alcotest.test_case "regalloc reuses" `Quick test_regalloc_reuses_registers;
      Alcotest.test_case "bailout on type guard" `Quick test_bailout_on_type_guard;
      Alcotest.test_case "bailout on bounds" `Quick test_bailout_on_bounds;
      Alcotest.test_case "generic paths" `Quick test_executor_generic_paths;
      Alcotest.test_case "lir dump" `Quick test_to_string_roundtrip;
      Alcotest.test_case "tier-up sequence" `Quick test_tier_up_sequence;
      Alcotest.test_case "nojit config" `Quick test_nojit_config;
      Alcotest.test_case "deopt blacklists" `Quick test_deopt_blacklists;
      Alcotest.test_case "bailout replay" `Quick test_bailout_replay_semantics;
    ] )
