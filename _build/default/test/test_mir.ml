(* Tests for MIR construction, dominators, the verifier and snapshots. *)

open Helpers
module Mir = Jitbull_mir.Mir
module Builder = Jitbull_mir.Builder
module Domtree = Jitbull_mir.Domtree
module Verifier = Jitbull_mir.Verifier
module Snapshot = Jitbull_mir.Snapshot
module Parser = Jitbull_frontend.Parser
module Compiler = Jitbull_bytecode.Compiler
module Feedback = Jitbull_bytecode.Feedback
module Op = Jitbull_bytecode.Op

(* Build MIR for function [idx] with fully generic feedback (no warmup). *)
let generic_mir ?(idx = 0) src =
  let bc = Compiler.compile (Parser.parse src) in
  let f = bc.Op.funcs.(idx) in
  let feedback_row = Array.init (Array.length f.Op.code) (fun _ -> Feedback.fresh_site ()) in
  Builder.build f ~feedback_row

(* Build MIR with warmed feedback. *)
let warmed_mir ?(idx = 0) src =
  let bc = Compiler.compile (Parser.parse src) in
  let vm = Vm.create bc in
  (try ignore (Vm.run vm) with _ -> ());
  Builder.build bc.Op.funcs.(idx) ~feedback_row:vm.Vm.feedback.(idx)

let test_straight_line () =
  let g = generic_mir "function f(a, b) { return a + b; } f(1, 2);" in
  Verifier.check g;
  check_int "parameters" 2 (count_opcode g "parameter");
  check_int "one add" 1 (count_opcode g "add");
  check_int "one return" 1 (count_opcode g "return")

let test_loop_builds_phis () =
  let g = generic_mir "function f(n) { var t = 0; for (var i = 0; i < n; i++) { t += i; } return t; } f(3);" in
  Verifier.check g;
  check_bool "has phis" true (count_opcode g "phi" > 0);
  (* loop structure: some block has a back edge *)
  let dom = Domtree.compute g in
  let has_loop =
    List.exists
      (fun (b : Mir.block) -> List.exists (fun p -> Domtree.dominates dom b p) b.Mir.preds)
      g.Mir.blocks
  in
  check_bool "loop header found" true has_loop

let test_function_starting_with_loop () =
  (* bc block 0 is itself a loop header: needs the synthetic entry *)
  let g = generic_mir "function f(n) { while (n > 0) { n -= 1; } return n; } f(2);" in
  Verifier.check g;
  check_bool "entry has goto" true
    (match Mir.control_instr g.Mir.entry with
    | Some { Mir.opcode = Mir.Goto _; _ } -> true
    | _ -> false)

let test_generic_vs_guarded_access () =
  let src = "function f(a, i) { return a[i]; } var x = [1,2,3]; for (var k = 0; k < 5; k++) f(x, 1);" in
  let generic = generic_mir src in
  check_int "no feedback: generic access" 1 (count_opcode generic "getelemgeneric");
  check_int "no feedback: no guard" 0 (count_opcode generic "guardarray");
  let warmed = warmed_mir src in
  check_int "warmed: guarded fast path" 1 (count_opcode warmed "boundscheck");
  check_int "warmed: guard present" 1 (count_opcode warmed "guardarray");
  check_int "warmed: no generic" 0 (count_opcode warmed "getelemgeneric")

let test_store_check_value_unused () =
  (* the store fast path leaves the boundscheck result unused (the shape
     the CVE-2019-9813 model preys on) *)
  let g = warmed_mir "function f(a, i, v) { a[i] = v; } var x = [1,2,3]; for (var k = 0; k < 5; k++) f(x, 1, k);" in
  Verifier.check g;
  let chk =
    List.find
      (fun (i : Mir.instr) -> i.Mir.opcode = Mir.Bounds_check)
      (Mir.all_instructions g)
  in
  check_bool "check result unused" false (Mir.has_uses g chk)

let test_logical_and_stack_merge () =
  let g = generic_mir "function f(a, b) { return a && b; } f(1, 2);" in
  Verifier.check g;
  check_bool "merge phi for stack slot" true (count_opcode g "phi" >= 1)

let test_verifier_rejects_bad_graph () =
  let g = generic_mir "function f(a) { return a; } f(1);" in
  (* corrupt: drop the control instruction of the entry block *)
  let b = List.hd g.Mir.blocks in
  b.Mir.body <- List.filter (fun (i : Mir.instr) -> not (Mir.is_control i.Mir.opcode)) b.Mir.body;
  check_bool "invalid" false (Verifier.check_bool g)

let test_verifier_rejects_bad_phi_arity () =
  let g = generic_mir "function f(n) { var t = 0; while (n > 0) { n -= 1; t += 1; } return t; } f(2);" in
  let phi =
    List.find (fun (i : Mir.instr) -> i.Mir.opcode = Mir.Phi) (Mir.all_instructions g)
  in
  phi.Mir.operands <- List.tl phi.Mir.operands;
  check_bool "invalid arity" false (Verifier.check_bool g)

let test_dominators () =
  let g = generic_mir "function f(c) { var x = 0; if (c) { x = 1; } else { x = 2; } return x; } f(1);" in
  let dom = Domtree.compute g in
  let entry = g.Mir.entry in
  List.iter
    (fun b -> check_bool "entry dominates all" true (Domtree.dominates dom entry b))
    g.Mir.blocks;
  (* the two branch arms do not dominate each other *)
  let arms =
    List.filter
      (fun (b : Mir.block) ->
        List.length b.Mir.preds = 1 && b != entry
        && match Mir.control_instr b with
           | Some { Mir.opcode = Mir.Goto _; _ } -> true
           | _ -> false)
      g.Mir.blocks
  in
  match arms with
  | a :: b :: _ ->
    check_bool "arms incomparable" false (Domtree.dominates dom a b || Domtree.dominates dom b a)
  | _ -> ()  (* shape changed; other assertions still cover dominance *)

let test_renumber_stability () =
  let g = generic_mir "function f(a) { return a + 1; } f(1);" in
  let snap1 = Snapshot.take g in
  Mir.renumber g;
  Mir.renumber g;
  let snap2 = Snapshot.take g in
  (* renumbering twice is idempotent on an already-ordered graph *)
  check_bool "snapshots equal" true (snap1 = snap2)

let test_snapshot_contents () =
  let g = generic_mir "function f(a) { return a * 2; } f(1);" in
  let snap = Snapshot.take g in
  check_int "snapshot covers all instructions" (List.length (Mir.all_instructions g))
    (Snapshot.entry_count snap);
  check_bool "operands referenced by number" true
    (List.exists (fun (e : Snapshot.entry) -> e.Snapshot.operands <> []) snap.Snapshot.entries)

let test_replace_all_uses () =
  let g = generic_mir "function f(a) { return a + a; } f(1);" in
  let param =
    List.find (fun (i : Mir.instr) -> i.Mir.opcode = Mir.Parameter 0) (Mir.all_instructions g)
  in
  let b = List.hd g.Mir.blocks in
  let c = Mir.append g b (Mir.Constant (Jitbull_runtime.Value.Number 5.0)) [] in
  (* move the constant before uses to keep dominance: prepend *)
  b.Mir.body <- c :: List.filter (fun x -> x != c) b.Mir.body;
  Mir.replace_all_uses g param c;
  check_bool "no more uses of param" false (Mir.has_uses g param)

let suite =
  ( "mir",
    [
      Alcotest.test_case "straight line" `Quick test_straight_line;
      Alcotest.test_case "loop phis" `Quick test_loop_builds_phis;
      Alcotest.test_case "function starting with loop" `Quick test_function_starting_with_loop;
      Alcotest.test_case "generic vs guarded access" `Quick test_generic_vs_guarded_access;
      Alcotest.test_case "store check unused" `Quick test_store_check_value_unused;
      Alcotest.test_case "logical-and stack merge" `Quick test_logical_and_stack_merge;
      Alcotest.test_case "verifier rejects bad graph" `Quick test_verifier_rejects_bad_graph;
      Alcotest.test_case "verifier rejects bad phi" `Quick test_verifier_rejects_bad_phi_arity;
      Alcotest.test_case "dominators" `Quick test_dominators;
      Alcotest.test_case "renumber stability" `Quick test_renumber_stability;
      Alcotest.test_case "snapshot contents" `Quick test_snapshot_contents;
      Alcotest.test_case "replace_all_uses" `Quick test_replace_all_uses;
    ] )
