(* Tests for the later-added optimizations: inlining, instruction
   simplification, and the LIR peephole. *)

open Helpers
module Mir = Jitbull_mir.Mir
module VC = Jitbull_passes.Vuln_config
module Pipeline = Jitbull_passes.Pipeline
module Engine = Jitbull_jit.Engine
module Lir = Jitbull_lir.Lir
module Lower = Jitbull_lir.Lower
module Regalloc = Jitbull_lir.Regalloc
module Peephole = Jitbull_lir.Peephole
module Parser = Jitbull_frontend.Parser
module Compiler = Jitbull_bytecode.Compiler
module Op = Jitbull_bytecode.Op

(* Build + optimize function [func] with an inline resolver over all other
   functions of the program. *)
let optimized_with_inlining ~func:idx src =
  let bc = Compiler.compile (Parser.parse src) in
  let vm = Vm.create bc in
  (try ignore (Vm.run vm) with _ -> ());
  let build i = Jitbull_mir.Builder.build bc.Op.funcs.(i) ~feedback_row:vm.Vm.feedback.(i) in
  let resolver name =
    let rec find i =
      if i >= Array.length bc.Op.funcs then None
      else if String.equal bc.Op.funcs.(i).Op.name name && i <> idx then Some (build i)
      else find (i + 1)
    in
    find 0
  in
  let g = build idx in
  ignore (Pipeline.run VC.none ~inline_resolver:resolver ~verify:true g);
  g

let inline_src =
  {|
function double(x) { return x * 2; }
function addmul(a, b) { return double(a) + double(b); }
var s = 0;
for (var k = 0; k < 30; k++) { s = addmul(k, 3); }
print(s);
|}

let test_inline_removes_calls () =
  let g = optimized_with_inlining ~func:1 inline_src in
  check_int "both calls inlined" 0 (count_opcode g "call");
  check_bool "callee body present" true (count_opcode g "mul" >= 2)

let test_inline_preserves_semantics () =
  assert_tiers_agree ~name:"inline semantics" inline_src;
  assert_tiers_agree ~name:"inline with branches"
    {|
function absish(x) { if (x < 0) { return 0 - x; } return x; }
function f(a) { return absish(a) + absish(0 - a); }
var s = 0;
for (var k = 0; k < 30; k++) { s = f(k - 15); }
print(s);
|};
  assert_tiers_agree ~name:"inline missing args"
    {|
function pick(a, b) { if (typeof b == 'undefined') { return a; } return b; }
function f(x) { return pick(x) + pick(x, 5); }
var s = 0;
for (var k = 0; k < 30; k++) { s = f(k); }
print(s);
|}

let test_inline_respects_reassignment () =
  (* f is rebound at runtime: inlining its static body would be wrong *)
  let src =
    {|
function orig(x) { return x + 1; }
function evil(x) { return x - 1; }
function caller(x) { return target(x); }
var target = orig;
var s = 0;
for (var k = 0; k < 40; k++) { s = caller(k); }
target = evil;
s = caller(100);
print(s);
|}
  in
  assert_tiers_agree ~name:"rebinding" src;
  check_string "rebound call uses new target" "99\n" (jit_output src)

let test_inline_skips_recursion () =
  assert_tiers_agree ~name:"recursion not inlined"
    {|
function fact(n) { if (n <= 1) { return 1; } return n * fact(n - 1); }
var s = 0;
for (var k = 0; k < 30; k++) { s = fact(6); }
print(s);
|}

let test_inline_skips_large_callees () =
  let src =
    {|
function big(x) {
  var t = x;
  for (var i = 0; i < 3; i++) { t = t * 2 + 1; t = t - (t >> 2); t = (t ^ 3) + (t & 7); t = t % 1009; t = t + i * 5; }
  return t;
}
function caller(a) { return big(a) + 1; }
var s = 0;
for (var k = 0; k < 30; k++) { s = caller(k); }
print(s);
|}
  in
  let g = optimized_with_inlining ~func:1 src in
  check_int "large callee kept as call" 1 (count_opcode g "call");
  assert_tiers_agree ~name:"large callee" src

(* ---- simplify ---- *)

let test_simplify_identities () =
  let g, _ =
    optimized_mir ~disabled:[ "foldconstants" ] ~func:0
      "function f(a, b) { return (a * 1) + (b - 0) + (a / 1); } for (var k = 0; k < 5; k++) f(k, 2);"
  in
  check_int "mul-by-1 gone" 0 (count_opcode g "mul");
  check_int "sub-0 gone" 0 (count_opcode g "sub");
  check_int "div-by-1 gone" 0 (count_opcode g "div")

let test_simplify_preserves_nan_and_strings () =
  assert_tiers_agree ~name:"NaN * 1"
    "function f(x) { return x * 1; } print(f(0/0)); print(f(0/0)); print(f(0/0)); print(f(0/0)); print(f(0/0));";
  (* '+ 0' on a string must NOT be simplified: 's' + 0 = 's0' *)
  assert_tiers_agree ~name:"string + 0"
    "function f(x) { return x + 0; } print(f('s')); print(f('s')); print(f('s')); print(f('s')); print(f('s'));"

let test_simplify_branch_inversion () =
  let g, _ =
    optimized_mir ~func:0
      "function f(a, b) { if (!(a < b)) { return 1; } return 2; } for (var k = 0; k < 6; k++) { f(k, 3); f(3, k); }"
  in
  check_int "not folded into branch" 0 (count_opcode g "not");
  assert_tiers_agree ~name:"inverted branch"
    "function f(a, b) { if (!(a < b)) { return 1; } return 2; } for (var k = 0; k < 6; k++) { print(f(k, 3)); }"

(* ---- LIR peephole ---- *)

let lowered src =
  let g, _ = optimized_mir ~func:0 src in
  let lir = Lower.lower g in
  Regalloc.allocate lir;
  lir

let test_peephole_removes_noop_moves () =
  (* a loop-carried swap generates phi moves; after allocation some become
     dst = src *)
  let lir =
    lowered
      "function f(n) { var t = 0; for (var i = 0; i < n; i++) { t = t + i; } return t; } for (var k = 0; k < 6; k++) f(5);"
  in
  let before = Array.length lir.Lir.code in
  let removed = Peephole.run lir in
  check_int "length shrank by removed" (before - removed) (Array.length lir.Lir.code);
  (* no no-op move survives *)
  Array.iter
    (fun (i : Lir.inst) ->
      if i.Lir.kind = Lir.Kmove then check_bool "no noop move" false (i.Lir.dst = i.Lir.a))
    lir.Lir.code

let test_peephole_removes_goto_next () =
  let lir =
    lowered
      "function f(c) { var x = 0; if (c) { x = 1; } else { x = 2; } return x; } for (var k = 0; k < 6; k++) { f(1); f(0); }"
  in
  ignore (Peephole.run lir);
  Array.iteri
    (fun pc (i : Lir.inst) ->
      if i.Lir.kind = Lir.Kgoto then check_bool "no goto-to-next" false (i.Lir.imm = pc + 1))
    lir.Lir.code

let test_peephole_preserves_semantics () =
  (* engine runs peephole internally; diverse control flow must agree *)
  List.iter
    (fun src -> assert_tiers_agree ~name:"peephole semantics" src)
    [
      "function f(n) { var a = 1; var b = 2; for (var i = 0; i < n; i++) { var t = a; a = b; b = t; } return a * 10 + b; } for (var k = 0; k < 8; k++) print(f(k));";
      "function g(c, d) { if (c) { if (d) { return 3; } return 2; } return 1; } for (var k = 0; k < 8; k++) { print(g(k % 2, k % 3)); }";
    ]

let test_engine_reports_peephole () =
  let config = { Engine.default_config with Engine.baseline_threshold = 2; ion_threshold = 4 } in
  let _, t =
    Engine.run_source config
      "function f(n) { var t = 0; for (var i = 0; i < n; i++) { t += i; } return t; } for (var k = 0; k < 10; k++) f(6);"
  in
  check_bool "peephole counted" true ((Engine.stats t).Engine.peephole_removed >= 0)

let suite =
  ( "optim-ext",
    [
      Alcotest.test_case "inline removes calls" `Quick test_inline_removes_calls;
      Alcotest.test_case "inline semantics" `Quick test_inline_preserves_semantics;
      Alcotest.test_case "inline respects rebinding" `Quick test_inline_respects_reassignment;
      Alcotest.test_case "inline skips recursion" `Quick test_inline_skips_recursion;
      Alcotest.test_case "inline skips large callees" `Quick test_inline_skips_large_callees;
      Alcotest.test_case "simplify identities" `Quick test_simplify_identities;
      Alcotest.test_case "simplify NaN/strings" `Quick test_simplify_preserves_nan_and_strings;
      Alcotest.test_case "simplify branch inversion" `Quick test_simplify_branch_inversion;
      Alcotest.test_case "peephole noop moves" `Quick test_peephole_removes_noop_moves;
      Alcotest.test_case "peephole goto-next" `Quick test_peephole_removes_goto_next;
      Alcotest.test_case "peephole semantics" `Quick test_peephole_preserves_semantics;
      Alcotest.test_case "engine peephole stats" `Quick test_engine_reports_peephole;
    ] )
