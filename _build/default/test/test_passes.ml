(* Tests for the optimization passes: per-pass transformations, semantic
   preservation, and the injected CVE bugs firing only when activated. *)

open Helpers
module Mir = Jitbull_mir.Mir
module VC = Jitbull_passes.Vuln_config
module Pipeline = Jitbull_passes.Pipeline

let src_redundant_length =
  (* two same-index stores around a shrink: the second check must survive
     correct GVN and disappear under the 17026 bug *)
  {|
function f(a, v) {
  a[1] = v;
  a.length = 1;
  a[1] = v;
  return 0;
}
var x = [1,2,3,4];
for (var k = 0; k < 5; k++) { f([1,2,3,4], k); }
|}

let test_gvn_correct_keeps_check () =
  let g, _ = optimized_mir ~func:0 src_redundant_length in
  check_int "both checks survive" 2 (count_opcode g "boundscheck")

let test_gvn_vulnerable_removes_check () =
  let g, _ = optimized_mir ~vulns:(VC.make [ VC.CVE_2019_17026 ]) ~func:0 src_redundant_length in
  check_int "one check eliminated" 1 (count_opcode g "boundscheck")

let test_gvn_dedups_pure () =
  let g, _ =
    optimized_mir ~func:0
      {|
function f(a, b) { return (a + b) * (a + b); }
for (var k = 0; k < 5; k++) { f(k, 2); }
|}
  in
  check_int "common subexpression merged" 1 (count_opcode g "add")

let test_gvn_no_dedup_across_store () =
  (* sink would legally forward the store here; disable it to observe GVN
     in isolation *)
  let g, _ =
    optimized_mir ~disabled:[ "sink" ] ~func:0
      {|
function f(a) { var x = a[0]; a[0] = x + 1; return x + a[0]; }
for (var k = 0; k < 5; k++) { f([1,2]); }
|}
  in
  (* the load after the store must not merge with the one before *)
  check_int "loads distinct" 2 (count_opcode g "loadelement")

let src_loop_invariant =
  {|
function f(a, n) {
  var t = 0;
  for (var i = 0; i < n; i++) { t = t + a[0]; }
  return t;
}
for (var k = 0; k < 5; k++) { f([5,6], 3); }
|}

let test_licm_hoists () =
  let g, _ = optimized_mir ~func:0 src_loop_invariant in
  (* the guard/elements/length/check/load chain for a[0] is invariant (no
     stores in the loop) and must end up in the preheader, outside the
     loop body *)
  let dom = Jitbull_mir.Domtree.compute g in
  let headers =
    List.filter
      (fun (b : Mir.block) ->
        List.exists (fun p -> Jitbull_mir.Domtree.dominates dom b p) b.Mir.preds)
      g.Mir.blocks
  in
  match headers with
  | [ header ] ->
    let body = Jitbull_mir.Domtree.loop_body dom g header in
    let load_in_loop =
      List.exists
        (fun (i : Mir.instr) ->
          i.Mir.opcode = Mir.Load_element && Hashtbl.mem body i.Mir.in_block)
        (Mir.all_instructions g)
    in
    check_bool "load hoisted out of loop" false load_in_loop
  | _ -> Alcotest.fail "expected exactly one loop"

let src_licm_with_store =
  {|
function f(a, n) {
  var t = 0;
  for (var i = 0; i < n; i++) { t = t + a[0]; a.length = 2; }
  return t;
}
for (var k = 0; k < 5; k++) { f([5,6], 3); }
|}

let test_licm_blocked_by_store () =
  let g, _ = optimized_mir ~func:0 src_licm_with_store in
  let dom = Jitbull_mir.Domtree.compute g in
  let header =
    List.find
      (fun (b : Mir.block) ->
        List.exists (fun p -> Jitbull_mir.Domtree.dominates dom b p) b.Mir.preds)
      g.Mir.blocks
  in
  let body = Jitbull_mir.Domtree.loop_body dom g header in
  let length_load_in_loop =
    List.exists
      (fun (i : Mir.instr) ->
        i.Mir.opcode = Mir.Initialized_length && Hashtbl.mem body i.Mir.in_block)
      (Mir.all_instructions g)
  in
  check_bool "length load stays in loop" true length_load_in_loop

let test_licm_vulnerable_hoists_anyway () =
  let g, _ =
    optimized_mir ~vulns:(VC.make [ VC.CVE_2019_9792 ]) ~func:0 src_licm_with_store
  in
  let dom = Jitbull_mir.Domtree.compute g in
  let header =
    List.find
      (fun (b : Mir.block) ->
        List.exists (fun p -> Jitbull_mir.Domtree.dominates dom b p) b.Mir.preds)
      g.Mir.blocks
  in
  let body = Jitbull_mir.Domtree.loop_body dom g header in
  let length_load_in_loop =
    List.exists
      (fun (i : Mir.instr) ->
        i.Mir.opcode = Mir.Initialized_length && Hashtbl.mem body i.Mir.in_block)
      (Mir.all_instructions g)
  in
  check_bool "stale length hoisted (bug)" false length_load_in_loop

let test_phi_elimination () =
  let g, _ =
    optimized_mir ~func:0
      "function f(n) { var t = 0; for (var i = 0; i < n; i++) { t += 1; } return t; } f(2); f(2); f(2);"
  in
  (* only the two genuinely loop-carried phis (t, i) survive *)
  check_bool "trivial phis folded" true (count_opcode g "phi" <= 2)

let test_constant_folding () =
  let g, _ =
    optimized_mir ~func:0 "function f() { return (2 * 3 + 4 < 11) ? 1 : 0; } f(); f(); f();"
  in
  (* everything folds; the branch disappears *)
  check_int "no compare left" 0 (count_opcode g "compare_lt");
  check_int "no test left" 0 (count_opcode g "test")

let test_fold_constants_matches_runtime_semantics () =
  (* folded '+' must still concatenate strings *)
  assert_tiers_agree ~name:"constant concat"
    "function f() { return 'a' + 1 + 2; } print(f()); print(f()); print(f()); print(f()); print(f());"

let test_dce_keeps_guards () =
  let g, _ =
    optimized_mir ~func:0
      "function f(a, i, v) { a[i] = v; } var x = [1,2,3]; for (var k = 0; k < 5; k++) f(x, 1, k);"
  in
  check_int "unused store check kept" 1 (count_opcode g "boundscheck")

let test_dce_vulnerable_drops_unused_guard () =
  let g, _ =
    optimized_mir ~vulns:(VC.make [ VC.CVE_2019_9813 ]) ~func:0
      "function f(a, i, v) { a[i] = v; } var x = [1,2,3]; for (var k = 0; k < 5; k++) f(x, 1, k);"
  in
  check_int "store check dropped (bug)" 0 (count_opcode g "boundscheck")

let test_dce_removes_dead_code () =
  let g, _ =
    optimized_mir ~func:0
      "function f(a, b) { var dead = a * b + 17; return a; } for (var k = 0; k < 5; k++) f(k, 2);"
  in
  check_int "dead multiply removed" 0 (count_opcode g "mul")

let test_bce_removes_dominated_check () =
  let g, _ =
    optimized_mir ~func:0
      {|
function f(a) {
  var t = 0;
  for (var i = 0; i < a.length; i++) { t = t + a[i]; }
  return t;
}
for (var k = 0; k < 5; k++) { f([1,2,3]); }
|}
  in
  (* the loop condition compares i against the same freshly loaded length
     used by the check... the check's length is a separate load, so the
     correct pass must keep it *)
  check_int "check kept (different length load)" 1 (count_opcode g "boundscheck")

let test_bce_removes_same_load_check () =
  let g, _ =
    optimized_mir ~func:0
      {|
function f(a, i) {
  var el = 0;
  var len = a.length;
  if (i < len) { el = 1; }
  return el;
}
for (var k = 0; k < 5; k++) { f([1,2,3], 1); }
|}
  in
  ignore g;
  (* shape-level: no bounds check in this function at all; this test
     pins that bce does not crash on checkless graphs *)
  check_int "no checks" 0 (count_opcode g "boundscheck")

let test_bce_vulnerable_accepts_stale_length () =
  let src =
    {|
function f(a, v) {
  var n = a.length;
  for (var i = 0; i < n; i++) { a[i] = v; }
  return 0;
}
for (var k = 0; k < 5; k++) { f([1,2,3,4], k); }
|}
  in
  let g_ok, _ = optimized_mir ~func:0 src in
  check_int "correct: check kept" 1 (count_opcode g_ok "boundscheck");
  let g_bug, _ = optimized_mir ~vulns:(VC.make [ VC.CVE_2019_11707 ]) ~func:0 src in
  check_int "vulnerable: check removed" 0 (count_opcode g_bug "boundscheck")

let test_type_analysis_removes_known_number_conversions () =
  let g, _ =
    optimized_mir ~func:0
      "function f(a, b) { return -(a - b); } for (var k = 0; k < 5; k++) f(k, 2);"
  in
  (* negate's tonumber operand is the sub result, already a number *)
  check_int "tonumber folded away" 0 (count_opcode g "tonumber")

let test_sink_forwards_store_to_load () =
  let g, _ =
    optimized_mir ~func:0
      "function f(a, v) { a[0] = v; return a[0]; } for (var k = 0; k < 5; k++) f([1,2], k);"
  in
  check_int "load forwarded" 0 (count_opcode g "loadelement")

let test_sink_blocked_by_call () =
  let src =
    {|
function g(a) { a.length = 0; return 0; }
function f(a, v) { a[0] = v; g(a); return a[0]; }
for (var k = 0; k < 5; k++) { f([1,2], k); }
|}
  in
  let g_ok, _ = optimized_mir ~func:1 src in
  check_int "correct: load reloads after call" 1 (count_opcode g_ok "loadelement");
  let g_bug, _ = optimized_mir ~vulns:(VC.make [ VC.CVE_2020_26952 ]) ~func:1 src in
  check_int "vulnerable: forwarded across call" 0 (count_opcode g_bug "loadelement")

let test_empty_block_elimination () =
  let _, trace =
    optimized_mir ~func:0
      "function f(c) { if (c) { return 1; } return 2; } f(1); f(0); f(1); f(0); f(1);"
  in
  (* pipeline must stay verifiable (checked inside optimized_mir via
     ~verify:true) and produce a trace entry for the pass *)
  check_bool "emptyblocks pass ran" true (List.mem_assoc "emptyblocks" trace)

let test_disabled_pass_is_skipped () =
  let g, _ =
    optimized_mir ~disabled:[ "gvn" ] ~func:0
      "function f(a, b) { return (a + b) * (a + b); } for (var k = 0; k < 5; k++) f(k, 2);"
  in
  check_int "no dedup when gvn disabled" 2 (count_opcode g "add")

let test_every_pass_produces_snapshot () =
  let _, trace = optimized_mir ~func:0 "function f(a) { return a + 1; } f(1); f(2); f(3);" in
  check_int "initial + one per pass" (1 + List.length Pipeline.passes) (List.length trace)

let test_mandatory_passes () =
  check_bool "split mandatory" false (Pipeline.can_disable "splitcriticaledges");
  check_bool "renumber mandatory" false (Pipeline.can_disable "renumber");
  check_bool "gvn optional" true (Pipeline.can_disable "gvn");
  check_bool "unknown pass" false (Pipeline.can_disable "nosuchpass")

(* Semantic preservation: a batch of behaviourally diverse programs run
   identically on the interpreter and the fully optimizing JIT. *)
let preservation_programs =
  [
    "var t = 0; function f(n) { for (var i = 0; i < n; i++) { t += i; } return t; } for (var k = 0; k < 9; k++) print(f(4));";
    "function g(a) { return a[0] + a[a.length - 1]; } var x = [3,4,5]; for (var k = 0; k < 9; k++) print(g(x));";
    "function h(s) { var t = 0; for (var i = 0; i < s.length; i++) { t += s.charCodeAt(i); } return t; } for (var k = 0; k < 9; k++) print(h('abcd'));";
    "function m(o) { o.n = o.n + 1; return o.n; } var obj = {n: 0}; for (var k = 0; k < 9; k++) print(m(obj));";
    "function p(a) { a.push(a.length); return a.pop() + a.length; } var arr = [1]; for (var k = 0; k < 9; k++) print(p(arr));";
    "function q(x) { return x == 0 ? 'z' : (x < 0 ? 'n' : 'p'); } for (var k = -4; k < 5; k++) print(q(k));";
    "function r(n) { var a = []; for (var i = 0; i < n; i++) { a.push(i * i); } var s = 0; for (var j = 0; j < a.length; j++) { s += a[j]; } return s; } for (var k = 0; k < 9; k++) print(r(k));";
  ]

let test_semantic_preservation () =
  List.iter (fun src -> assert_tiers_agree ~name:"preservation" src) preservation_programs

let suite =
  ( "passes",
    [
      Alcotest.test_case "gvn keeps check (patched)" `Quick test_gvn_correct_keeps_check;
      Alcotest.test_case "gvn removes check (17026)" `Quick test_gvn_vulnerable_removes_check;
      Alcotest.test_case "gvn dedups pure" `Quick test_gvn_dedups_pure;
      Alcotest.test_case "gvn respects stores" `Quick test_gvn_no_dedup_across_store;
      Alcotest.test_case "licm hoists invariant load" `Quick test_licm_hoists;
      Alcotest.test_case "licm blocked by store" `Quick test_licm_blocked_by_store;
      Alcotest.test_case "licm hoists anyway (9792)" `Quick test_licm_vulnerable_hoists_anyway;
      Alcotest.test_case "phi elimination" `Quick test_phi_elimination;
      Alcotest.test_case "constant folding" `Quick test_constant_folding;
      Alcotest.test_case "folding matches runtime" `Quick test_fold_constants_matches_runtime_semantics;
      Alcotest.test_case "dce keeps guards" `Quick test_dce_keeps_guards;
      Alcotest.test_case "dce drops guard (9813)" `Quick test_dce_vulnerable_drops_unused_guard;
      Alcotest.test_case "dce removes dead code" `Quick test_dce_removes_dead_code;
      Alcotest.test_case "bce keeps fresh-length check" `Quick test_bce_removes_dominated_check;
      Alcotest.test_case "bce on checkless graph" `Quick test_bce_removes_same_load_check;
      Alcotest.test_case "bce stale length (11707)" `Quick test_bce_vulnerable_accepts_stale_length;
      Alcotest.test_case "type analysis" `Quick test_type_analysis_removes_known_number_conversions;
      Alcotest.test_case "sink forwards" `Quick test_sink_forwards_store_to_load;
      Alcotest.test_case "sink blocked by call (26952)" `Quick test_sink_blocked_by_call;
      Alcotest.test_case "empty block elimination" `Quick test_empty_block_elimination;
      Alcotest.test_case "disabled pass skipped" `Quick test_disabled_pass_is_skipped;
      Alcotest.test_case "snapshot per pass" `Quick test_every_pass_produces_snapshot;
      Alcotest.test_case "mandatory passes" `Quick test_mandatory_passes;
      Alcotest.test_case "semantic preservation" `Quick test_semantic_preservation;
    ] )
