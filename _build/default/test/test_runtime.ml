(* Tests for the runtime: value coercions, flat heap, builtins. *)

open Helpers
module Value = Jitbull_runtime.Value
module Value_ops = Jitbull_runtime.Value_ops
module Heap = Jitbull_runtime.Heap
module Realm = Jitbull_runtime.Realm
module Builtins = Jitbull_runtime.Builtins
module Errors = Jitbull_runtime.Errors
module Ast = Jitbull_frontend.Ast

let num f = Value.Number f

let test_to_number () =
  let cases =
    [
      (Value.Number 3.5, 3.5);
      (Value.Bool true, 1.0);
      (Value.Bool false, 0.0);
      (Value.Null, 0.0);
      (Value.String "", 0.0);
      (Value.String "  42 ", 42.0);
    ]
  in
  List.iter
    (fun (v, expected) ->
      Alcotest.(check (float 0.0)) (Value.to_display v) expected (Value_ops.to_number v))
    cases;
  check_bool "undefined is NaN" true (Float.is_nan (Value_ops.to_number Value.Undefined));
  check_bool "junk string is NaN" true (Float.is_nan (Value_ops.to_number (Value.String "zz")))

let test_to_boolean () =
  check_bool "0 falsy" false (Value_ops.to_boolean (num 0.0));
  check_bool "NaN falsy" false (Value_ops.to_boolean (num Float.nan));
  check_bool "'' falsy" false (Value_ops.to_boolean (Value.String ""));
  check_bool "null falsy" false (Value_ops.to_boolean Value.Null);
  check_bool "array truthy" true (Value_ops.to_boolean (Value.Array 0));
  check_bool "'0' truthy" true (Value_ops.to_boolean (Value.String "0"))

let test_int32 () =
  Alcotest.(check int32) "wraps" (-294967296l) (Value_ops.to_int32 4000000000.0);
  Alcotest.(check int32) "negative" (-5l) (Value_ops.to_int32 (-5.9));
  Alcotest.(check int32) "nan is 0" 0l (Value_ops.to_int32 Float.nan);
  Alcotest.(check int32) "inf is 0" 0l (Value_ops.to_int32 Float.infinity);
  Alcotest.(check (float 0.0)) "uint32 of -1" 4294967295.0 (Value_ops.to_uint32 (-1.0))

let test_to_index () =
  check_bool "3 ok" true (Value_ops.to_index (num 3.0) = Some 3);
  check_bool "negative rejected" true (Value_ops.to_index (num (-1.0)) = None);
  check_bool "fraction rejected" true (Value_ops.to_index (num 1.5) = None);
  check_bool "string rejected" true (Value_ops.to_index (Value.String "1") = None)

let test_binary_add () =
  check_bool "num add" true (Value_ops.binary Ast.Add (num 1.0) (num 2.0) = num 3.0);
  check_bool "string concat" true
    (Value_ops.binary Ast.Add (Value.String "a") (num 1.0) = Value.String "a1");
  check_bool "concat right" true
    (Value_ops.binary Ast.Add (num 1.0) (Value.String "a") = Value.String "1a")

let test_equality () =
  check_bool "1 == '1'" true (Value_ops.loose_equal (num 1.0) (Value.String "1"));
  check_bool "null == undefined" true (Value_ops.loose_equal Value.Null Value.Undefined);
  check_bool "null !== undefined" false (Value_ops.strict_equal Value.Null Value.Undefined);
  check_bool "NaN != NaN" false (Value_ops.loose_equal (num Float.nan) (num Float.nan));
  check_bool "arrays by handle" true (Value_ops.strict_equal (Value.Array 2) (Value.Array 2));
  check_bool "different arrays" false (Value_ops.strict_equal (Value.Array 2) (Value.Array 3))

let test_comparisons () =
  check_bool "string lt" true (Value_ops.binary Ast.Lt (Value.String "abc") (Value.String "abd") = Value.Bool true);
  check_bool "NaN compare false" true (Value_ops.binary Ast.Le (num Float.nan) (num 1.0) = Value.Bool false);
  check_bool "shift" true (Value_ops.binary Ast.Shl (num 1.0) (num 4.0) = num 16.0);
  check_bool "ushr" true (Value_ops.binary Ast.Ushr (num (-8.0)) (num 28.0) = num 15.0)

(* ---- heap ---- *)

let test_heap_alloc_adjacent () =
  let h = Heap.create ~size_limit:4096 () in
  let a = Heap.alloc_array h ~length:4 in
  let b = Heap.alloc_array h ~length:4 in
  check_int "adjacent regions" (Heap.base_addr h a + 6) (Heap.base_addr h b);
  check_int "length" 4 (Heap.length h a);
  check_int "capacity" 4 (Heap.capacity h a)

let test_heap_checked_access () =
  let h = Heap.create ~size_limit:4096 () in
  let a = Heap.alloc_array h ~length:2 in
  Heap.set h a 0 (num 7.0);
  check_bool "get in bounds" true (Heap.get h a 0 = num 7.0);
  check_bool "get OOB is undefined" true (Heap.get h a 5 = Value.Undefined);
  check_bool "get negative is undefined" true (Heap.get h a (-1) = Value.Undefined);
  (* append one-past-end grows *)
  Heap.set h a 2 (num 9.0);
  check_int "append grew" 3 (Heap.length h a);
  (* sparse write ignored *)
  Heap.set h a 10 (num 1.0);
  check_int "sparse ignored" 3 (Heap.length h a)

let test_heap_shrink_reclaims () =
  let h = Heap.create ~size_limit:4096 () in
  let a = Heap.alloc_array h ~length:10 in
  let base = Heap.base_addr h a in
  Heap.set_length h a 2;
  check_int "length shrunk" 2 (Heap.length h a);
  check_int "capacity shrunk" 2 (Heap.capacity h a);
  (* next allocation lands in the reclaimed tail, adjacent to the shrunk
     array — the CVE-2019-17026 precondition *)
  let victim = Heap.alloc_array h ~length:3 in
  check_int "victim in reclaimed space" (base + 4) (Heap.base_addr h victim)

let test_heap_shrink_keeps_stale () =
  let h = Heap.create ~size_limit:4096 () in
  let a = Heap.alloc_array h ~length:4 in
  Heap.set h a 3 (num 99.0);
  (* pop is a lazy shrink: the popped cell is not cleared and remains
     readable through the unchecked accessor (the stale-data leak JITed
     code without its check can observe) *)
  ignore (Heap.pop h a);
  check_int "popped" 3 (Heap.length h a);
  check_bool "stale data leaks via unchecked read" true (Heap.get_unchecked h a 3 = num 99.0)

let test_heap_grow_reallocates () =
  let h = Heap.create ~size_limit:4096 () in
  let a = Heap.alloc_array h ~length:2 in
  let old_base = Heap.base_addr h a in
  Heap.set h a 0 (num 5.0);
  Heap.set_length h a 50;
  check_bool "moved" true (Heap.base_addr h a <> old_base);
  check_bool "contents preserved" true (Heap.get h a 0 = num 5.0);
  check_bool "new cells undefined" true (Heap.get h a 30 = Value.Undefined)

let test_heap_push_pop () =
  let h = Heap.create ~size_limit:4096 () in
  let a = Heap.alloc_array h ~length:1 in
  Heap.set h a 0 (num 1.0);
  Heap.push h a (num 2.0);
  Heap.push h a (num 3.0);
  check_int "pushed" 3 (Heap.length h a);
  check_bool "pop last" true (Heap.pop h a = num 3.0);
  check_int "popped" 2 (Heap.length h a);
  ignore (Heap.pop h a);
  ignore (Heap.pop h a);
  check_bool "pop empty" true (Heap.pop h a = Value.Undefined)

let test_heap_unchecked_corruption () =
  let h = Heap.create ~size_limit:4096 () in
  let a = Heap.alloc_array h ~length:2 in
  let b = Heap.alloc_array h ~length:2 in
  (* OOB write through a corrupts b's length header *)
  Heap.set_unchecked h a 2 (num 1000000.0);
  check_int "neighbour length corrupted" 1000000 (Heap.length h b)

let test_heap_unchecked_crash () =
  let h = Heap.create ~size_limit:256 () in
  let a = Heap.alloc_array h ~length:2 in
  (match Heap.set_unchecked h a 100000 (num 1.0) with
  | exception Errors.Crash _ -> ()
  | () -> Alcotest.fail "expected crash");
  match Heap.get_unchecked h a (-100000) with
  | exception Errors.Crash _ -> ()
  | _ -> Alcotest.fail "expected crash on negative"

let test_heap_sentinel () =
  let h = Heap.create ~size_limit:1024 () in
  let addr = Heap.alloc_sentinel h in
  check_int "sentinel at top" 1022 addr;
  Heap.check_sentinel h;
  check_bool "intact" true (Heap.sentinel_intact h);
  (* a corrupted-length array can reach it *)
  let a = Heap.alloc_array h ~length:2 in
  Heap.set_unchecked h a (addr - Heap.base_addr h a - 2) (num 1337.0);
  check_bool "tampered" false (Heap.sentinel_intact h);
  match Heap.check_sentinel h with
  | exception Errors.Shellcode_executed _ -> ()
  | () -> Alcotest.fail "expected shellcode detection"

let test_heap_exhaustion () =
  let h = Heap.create ~size_limit:64 () in
  match
    for _ = 1 to 100 do
      ignore (Heap.alloc_array h ~length:4)
    done
  with
  | exception Errors.Heap_exhausted -> ()
  | () -> Alcotest.fail "expected exhaustion"

let test_heap_corrupted_header_is_tolerated () =
  let h = Heap.create ~size_limit:4096 () in
  let a = Heap.alloc_array h ~length:2 in
  let b = Heap.alloc_array h ~length:2 in
  (* write a non-number over b's length header *)
  Heap.set_unchecked h a 2 (Value.String "junk");
  check_int "corrupted header reads as 0" 0 (Heap.length h b)

(* ---- builtins ---- *)

let realm () = Realm.create ~size_limit:4096 ()

let test_math_builtins () =
  let r = realm () in
  check_bool "floor" true (Builtins.call_namespace r "Math" "floor" [ num 3.7 ] = num 3.0);
  check_bool "max multi" true (Builtins.call_namespace r "Math" "max" [ num 1.0; num 9.0; num 4.0 ] = num 9.0);
  check_bool "min empty" true (Builtins.call_namespace r "Math" "min" [] = num Float.infinity);
  check_bool "pow" true (Builtins.call_namespace r "Math" "pow" [ num 2.0; num 10.0 ] = num 1024.0);
  match Builtins.call_namespace r "Math" "nosuch" [] with
  | exception Errors.Type_error _ -> ()
  | _ -> Alcotest.fail "unknown Math function should raise"

let test_string_methods () =
  let r = realm () in
  (match Builtins.call_method r (Value.String "hello") "charCodeAt" [ num 1.0 ] with
  | `Value v -> check_bool "charCodeAt" true (v = num 101.0)
  | _ -> Alcotest.fail "expected value");
  (match Builtins.call_method r (Value.String "hello") "indexOf" [ Value.String "ll" ] with
  | `Value v -> check_bool "indexOf" true (v = num 2.0)
  | _ -> Alcotest.fail "expected value");
  match Builtins.call_method r (Value.String "hello") "substring" [ num 1.0; num 3.0 ] with
  | `Value v -> check_bool "substring" true (v = Value.String "el")
  | _ -> Alcotest.fail "expected value"

let test_array_methods () =
  let r = realm () in
  let h = Heap.alloc_array r.Realm.heap ~length:0 in
  (match Builtins.call_method r (Value.Array h) "push" [ num 1.0; num 2.0 ] with
  | `Value v -> check_bool "push returns length" true (v = num 2.0)
  | _ -> Alcotest.fail "expected value");
  (match Builtins.call_method r (Value.Array h) "indexOf" [ num 2.0 ] with
  | `Value v -> check_bool "indexOf" true (v = num 1.0)
  | _ -> Alcotest.fail "expected value");
  (match Builtins.call_method r (Value.Array h) "join" [ Value.String "-" ] with
  | `Value v -> check_bool "join" true (v = Value.String "1-2")
  | _ -> Alcotest.fail "expected value");
  match Builtins.call_method r (Value.Array h) "slice" [ num 1.0 ] with
  | `Value (Value.Array h2) -> check_int "slice length" 1 (Heap.length r.Realm.heap h2)
  | _ -> Alcotest.fail "expected array"

let test_member_access () =
  let r = realm () in
  let h = Heap.alloc_array r.Realm.heap ~length:5 in
  check_bool "array length" true (Builtins.get_member r (Value.Array h) "length" = num 5.0);
  check_bool "string length" true (Builtins.get_member r (Value.String "abc") "length" = num 3.0);
  Builtins.set_member r (Value.Array h) "length" (num 2.0);
  check_int "length write resizes" 2 (Heap.length r.Realm.heap h);
  let obj = Hashtbl.create 4 in
  Builtins.set_member r (Value.Object obj) "x" (num 1.0);
  check_bool "object field" true (Builtins.get_member r (Value.Object obj) "x" = num 1.0);
  check_bool "missing field undefined" true
    (Builtins.get_member r (Value.Object obj) "nope" = Value.Undefined)

let test_user_function_property () =
  let r = realm () in
  let obj = Hashtbl.create 4 in
  Hashtbl.replace obj "m" (Value.Function 3);
  match Builtins.call_method r (Value.Object obj) "m" [ num 1.0 ] with
  | `User_function (3, [ v ]) -> check_bool "args forwarded" true (v = num 1.0)
  | _ -> Alcotest.fail "expected user function dispatch"

let suite =
  ( "runtime",
    [
      Alcotest.test_case "to_number" `Quick test_to_number;
      Alcotest.test_case "to_boolean" `Quick test_to_boolean;
      Alcotest.test_case "int32/uint32" `Quick test_int32;
      Alcotest.test_case "to_index" `Quick test_to_index;
      Alcotest.test_case "binary add" `Quick test_binary_add;
      Alcotest.test_case "equality" `Quick test_equality;
      Alcotest.test_case "comparisons/shifts" `Quick test_comparisons;
      Alcotest.test_case "heap adjacency" `Quick test_heap_alloc_adjacent;
      Alcotest.test_case "heap checked access" `Quick test_heap_checked_access;
      Alcotest.test_case "heap shrink reclaims" `Quick test_heap_shrink_reclaims;
      Alcotest.test_case "heap stale data" `Quick test_heap_shrink_keeps_stale;
      Alcotest.test_case "heap grow reallocates" `Quick test_heap_grow_reallocates;
      Alcotest.test_case "heap push/pop" `Quick test_heap_push_pop;
      Alcotest.test_case "heap unchecked corruption" `Quick test_heap_unchecked_corruption;
      Alcotest.test_case "heap unchecked crash" `Quick test_heap_unchecked_crash;
      Alcotest.test_case "heap sentinel" `Quick test_heap_sentinel;
      Alcotest.test_case "heap exhaustion" `Quick test_heap_exhaustion;
      Alcotest.test_case "heap corrupted header" `Quick test_heap_corrupted_header_is_tolerated;
      Alcotest.test_case "Math builtins" `Quick test_math_builtins;
      Alcotest.test_case "string methods" `Quick test_string_methods;
      Alcotest.test_case "array methods" `Quick test_array_methods;
      Alcotest.test_case "member access" `Quick test_member_access;
      Alcotest.test_case "user function property" `Quick test_user_function_property;
    ] )
