(* The paper's security evaluation as a test suite (§VI-B):
   for every modeled CVE —
   - the exploit does nothing on a patched engine;
   - it fires on the unpatched (vulnerable) engine;
   - with the VDC's DNA in the database, JITBULL neutralizes the original
     and all four generated variants (the 100 % detection result);
   - the two independent implementations of CVE-2019-17026 cross-detect. *)

open Helpers
module V = Jitbull_vdc.Demonstrators
module Variants = Jitbull_vdc.Variants
module VC = Jitbull_passes.Vuln_config
module Engine = Jitbull_jit.Engine
module Db = Jitbull_core.Db
module Jitbull = Jitbull_core.Jitbull

let patched_config = { Engine.default_config with Engine.vulns = VC.none }

let exploited = function
  | V.Exploited _ -> true
  | V.Neutralized -> false

let test_patched_engine_is_safe (d : V.t) () =
  check_bool (d.V.name ^ " on patched engine") false
    (exploited (V.run_exploit patched_config d.V.source d.V.expected))

let test_vulnerable_engine_exploited (d : V.t) () =
  let config = { Engine.default_config with Engine.vulns = VC.make [ d.V.cve ] } in
  check_bool (d.V.name ^ " on vulnerable engine") true
    (exploited (V.run_exploit config d.V.source d.V.expected))

let protected_config (d : V.t) =
  let vulns = VC.make [ d.V.cve ] in
  let db = Db.create () in
  let n = Db.harvest db ~cve:d.V.name ~vulns d.V.source in
  check_bool (d.V.name ^ " harvest yields entries") true (n > 0);
  Jitbull.config ~vulns db

let test_jitbull_neutralizes_original (d : V.t) () =
  let config = protected_config d in
  check_bool (d.V.name ^ " original neutralized") false
    (exploited (V.run_exploit config d.V.source d.V.expected))

let test_variants_matrix (d : V.t) () =
  let vulns = VC.make [ d.V.cve ] in
  let vulnerable = { Engine.default_config with Engine.vulns } in
  let config = protected_config d in
  List.iter
    (fun kind ->
      let variant = Variants.apply kind d.V.source in
      check_bool
        (Printf.sprintf "%s %s variant still exploitable" d.V.name (Variants.kind_name kind))
        true
        (exploited (V.run_exploit vulnerable variant d.V.expected));
      check_bool
        (Printf.sprintf "%s %s variant neutralized" d.V.name (Variants.kind_name kind))
        false
        (exploited (V.run_exploit config variant d.V.expected)))
    Variants.all_kinds

let test_17026_cross_implementation () =
  let d = V.find VC.CVE_2019_17026 in
  let vulns = VC.make [ d.V.cve ] in
  (* the second implementation is exploitable on its own *)
  let vulnerable = { Engine.default_config with Engine.vulns } in
  check_bool "impl 2 exploitable" true
    (exploited (V.run_exploit vulnerable V.second_implementation_17026 V.Shellcode));
  (* installing impl 1's DNA neutralizes impl 2 — the paper's §VI-B-a *)
  let db = Db.create () in
  ignore (Db.harvest db ~cve:d.V.name ~vulns d.V.source);
  let config = Jitbull.config ~vulns db in
  check_bool "impl 2 neutralized by impl 1's DNA" false
    (exploited (V.run_exploit config V.second_implementation_17026 V.Shellcode))

let test_patch_lifecycle_restores_performance_path () =
  (* after removing the DNA (patch applied), the analyzer disappears and
     the exploit on a *patched* engine still does nothing *)
  let d = V.find VC.CVE_2019_9795 in
  let db = Db.create () in
  ignore (Db.harvest db ~cve:d.V.name ~vulns:(VC.make [ d.V.cve ]) d.V.source);
  Db.remove_cve db d.V.name;
  let config = Jitbull.config ~vulns:VC.none db in
  check_bool "analyzer gone after patch" true (config.Engine.analyzer = None);
  check_bool "patched engine safe" false (exploited (V.run_exploit config d.V.source d.V.expected))

let test_multi_vuln_db () =
  (* a crowded database (the paper's #8 scalability setting): all eight
     VDC DNAs installed, the engine carrying the one live bug being
     exploited — detection must not be diluted by unrelated entries.

     (Activating all eight pass bugs *simultaneously* is a composition the
     paper never faces — one real engine version has one bug — and it
     genuinely defeats the single-shot go/no-go policy: a function
     recompiled with its matched passes disabled can still be broken by a
     different CVE's pass whose delta did not match. EXPERIMENTS.md
     discusses this re-analysis gap.) *)
  let db = Db.create () in
  List.iter
    (fun (d : V.t) ->
      ignore (Db.harvest db ~cve:d.V.name ~vulns:(VC.make [ d.V.cve ]) d.V.source))
    V.all;
  check_int "eight CVEs installed" 8 (List.length (Db.cves db));
  List.iter
    (fun (d : V.t) ->
      let config = Jitbull.config ~vulns:(VC.make [ d.V.cve ]) db in
      check_bool (d.V.name ^ " neutralized under #8 DB") false
        (exploited (V.run_exploit config d.V.source d.V.expected)))
    V.all

let test_catalog_aggregates () =
  let module C = Jitbull_vdc.Catalog in
  (* paper §III-A: CVSS average 8.8; §III-C: mean window ≈ 9 days,
     CVE-2019-11707 = 23 days, CVE-2020-26952 = 5 days, max 2 overlapping
     in 2019 *)
  let avg =
    List.fold_left (fun acc (e : C.entry) -> acc +. e.C.cvss) 0.0 C.all
    /. float_of_int (List.length C.all)
  in
  check_bool "mean CVSS ~8.8" true (Float.abs (avg -. 8.8) < 0.31);
  (match C.find "CVE-2019-11707" with
  | Some e -> check_bool "11707 window 23d" true (C.window_days e = Some 23)
  | None -> Alcotest.fail "11707 missing");
  (match C.find "CVE-2020-26952" with
  | Some e -> check_bool "26952 window 5d" true (C.window_days e = Some 5)
  | None -> Alcotest.fail "26952 missing");
  check_bool "mean window ~9 days" true (Float.abs (C.mean_window_days () -. 9.0) < 1.5);
  check_int "max overlap 2019" 2 (C.max_overlapping ~year:2019);
  check_int "modeled CVEs" 8
    (List.length (List.filter (fun (e : C.entry) -> e.C.modeled <> None) C.all))

let per_cve_cases =
  List.concat_map
    (fun (d : V.t) ->
      [
        Alcotest.test_case (d.V.name ^ " patched safe") `Quick (test_patched_engine_is_safe d);
        Alcotest.test_case (d.V.name ^ " vulnerable exploited") `Quick
          (test_vulnerable_engine_exploited d);
        Alcotest.test_case (d.V.name ^ " jitbull neutralizes") `Quick
          (test_jitbull_neutralizes_original d);
        Alcotest.test_case (d.V.name ^ " 4 variants") `Slow (test_variants_matrix d);
      ])
    V.all

let suite =
  ( "security",
    per_cve_cases
    @ [
        Alcotest.test_case "17026 cross-implementation" `Quick test_17026_cross_implementation;
        Alcotest.test_case "patch lifecycle" `Quick test_patch_lifecycle_restores_performance_path;
        Alcotest.test_case "multi-vuln DB (#8)" `Slow test_multi_vuln_db;
        Alcotest.test_case "catalog aggregates" `Quick test_catalog_aggregates;
      ] )
