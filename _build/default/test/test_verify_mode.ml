(* Paranoid-mode integration tests: run real workloads with the MIR
   verifier enabled after every optimization pass (including the inliner's
   graph surgery and the recompile-with-disabled-passes path), asserting
   that every intermediate graph is structurally valid SSA. *)

open Helpers
module W = Jitbull_workloads.Workloads
module Engine = Jitbull_jit.Engine
module VC = Jitbull_passes.Vuln_config
module Db = Jitbull_core.Db
module Jitbull = Jitbull_core.Jitbull
module V = Jitbull_vdc.Demonstrators

let verified_config = { Engine.default_config with Engine.verify_passes = true }

let test_workload_verified name () =
  match W.find name with
  | None -> Alcotest.fail ("unknown workload " ^ name)
  | Some w ->
    let reference = interp_output w.W.source in
    let out, _ = Engine.run_source verified_config w.W.source in
    check_string (name ^ " verified-mode output") reference out

let test_vulnerable_passes_still_produce_valid_ir () =
  (* the injected bugs are semantic, not structural: even the buggy
     transformations must pass the SSA verifier *)
  List.iter
    (fun (d : V.t) ->
      let config =
        { Engine.default_config with
          Engine.vulns = VC.make [ d.V.cve ];
          verify_passes = true }
      in
      (* exploits may detonate; IR validity is checked before that *)
      ignore (V.run_exploit config d.V.source d.V.expected))
    V.all

let test_jitbull_recompile_path_verified () =
  (* the go/no-go recompilation (disabled passes) also runs under the
     verifier *)
  let d = V.find VC.CVE_2019_17026 in
  let vulns = VC.make [ d.V.cve ] in
  let db = Db.create () in
  ignore (Db.harvest db ~cve:d.V.name ~vulns d.V.source);
  let config = { (Jitbull.config ~vulns db) with Engine.verify_passes = true } in
  match V.run_exploit config d.V.source d.V.expected with
  | V.Neutralized -> ()
  | V.Exploited m -> Alcotest.fail ("exploited under verifier: " ^ m)

let suite =
  ( "verify-mode",
    [
      Alcotest.test_case "Richards verified" `Slow (test_workload_verified "Richards");
      Alcotest.test_case "Mandreel verified" `Slow (test_workload_verified "Mandreel");
      Alcotest.test_case "CodeLoad verified" `Slow (test_workload_verified "CodeLoad");
      Alcotest.test_case "Splay verified" `Slow (test_workload_verified "Splay");
      Alcotest.test_case "vulnerable passes valid IR" `Slow
        test_vulnerable_passes_still_produce_valid_ir;
      Alcotest.test_case "recompile path verified" `Slow test_jitbull_recompile_path_verified;
    ] )
