(* The Octane-analogue corpus: each workload is deterministic, runs on all
   tiers with identical output, and contains enough hot functions to
   exercise the JIT. *)

open Helpers
module W = Jitbull_workloads.Workloads
module Engine = Jitbull_jit.Engine

let test_workload_all_tiers (w : W.t) () =
  let reference = interp_output w.W.source in
  check_bool "produces output" true (String.length reference > 0);
  check_string (w.W.name ^ " vm") reference (vm_output w.W.source);
  let out, t = Engine.run_source Engine.default_config w.W.source in
  check_string (w.W.name ^ " jit") reference out;
  let s = Engine.stats t in
  check_bool (w.W.name ^ " reached Ion") true (s.Engine.ion_compiles > 0)

let test_workload_determinism (w : W.t) () =
  check_string (w.W.name ^ " deterministic") (jit_output w.W.source) (jit_output w.W.source)

let test_registry () =
  check_int "fourteen Octane analogues" 14 (List.length W.all);
  check_int "sixteen with microbenches" 16 (List.length W.everything);
  check_bool "find case-insensitive" true (W.find "richards" <> None);
  check_bool "find missing" true (W.find "nope" = None)

let test_names_match_paper () =
  let names = List.map (fun (w : W.t) -> w.W.name) W.everything in
  List.iter
    (fun expected -> check_bool (expected ^ " present") true (List.mem expected names))
    [ "Richards"; "DeltaBlue"; "Crypto"; "RayTrace"; "RegExp"; "Splay"; "NavierStokes";
      "PdfJS"; "Box2D"; "TypeScript"; "EarleyBoyer"; "Gameboy"; "CodeLoad"; "Mandreel";
      "Microbench1"; "Microbench2" ]

let suite =
  ( "workloads",
    List.concat_map
      (fun (w : W.t) ->
        [
          Alcotest.test_case (w.W.name ^ " tiers agree") `Slow (test_workload_all_tiers w);
        ])
      W.everything
    @ [
        Alcotest.test_case "Microbench1 deterministic" `Quick
          (test_workload_determinism W.microbench1);
        Alcotest.test_case "registry" `Quick test_registry;
        Alcotest.test_case "paper names" `Quick test_names_match_paper;
      ] )
