(* Table II equivalent: the configuration of the machine the harness
   actually runs on (the paper reports its i7-11850H testbed; absolute
   numbers are not expected to transfer — see EXPERIMENTS.md). *)

let read_first_line path =
  try
    let ic = open_in path in
    let line = try input_line ic with End_of_file -> "" in
    close_in ic;
    Some line
  with Sys_error _ -> None

let cpu_model () =
  try
    let ic = open_in "/proc/cpuinfo" in
    let rec find () =
      match input_line ic with
      | line ->
        if String.length line > 10 && String.sub line 0 10 = "model name" then begin
          close_in ic;
          match String.index_opt line ':' with
          | Some i -> String.trim (String.sub line (i + 1) (String.length line - i - 1))
          | None -> line
        end
        else find ()
      | exception End_of_file ->
        close_in ic;
        "unknown"
    in
    find ()
  with Sys_error _ -> "unknown"

let memory_gb () =
  try
    let ic = open_in "/proc/meminfo" in
    let line = input_line ic in
    close_in ic;
    Scanf.sscanf line "MemTotal: %d kB" (fun kb -> Printf.sprintf "%.1f GB" (float_of_int kb /. 1048576.0))
  with _ -> "unknown"

let os () =
  match read_first_line "/proc/version" with
  | Some v when String.length v > 40 -> String.sub v 0 40 ^ "…"
  | Some v -> v
  | None -> Sys.os_type

let rows () =
  [
    [ "CPU"; cpu_model () ];
    [ "Cores"; string_of_int (Domain.recommended_domain_count ()) ];
    [ "Memory"; memory_gb () ];
    [ "OS"; os () ];
    [ "OCaml"; Sys.ocaml_version ];
    [ "Word size"; string_of_int Sys.word_size ^ " bit" ];
  ]

(* The same facts as a JSON object, embedded in --json output so archived
   benchmark numbers carry the host they were measured on. *)
let to_json () =
  let module Jsonx = Jitbull_obs.Jsonx in
  Jsonx.Assoc
    [
      ("cpu", Jsonx.String (cpu_model ()));
      ("cores", Jsonx.Int (Domain.recommended_domain_count ()));
      ("memory", Jsonx.String (memory_gb ()));
      ("os", Jsonx.String (os ()));
      ("ocaml", Jsonx.String Sys.ocaml_version);
      ("word_size", Jsonx.Int Sys.word_size);
    ]
