(* JITBULL benchmark harness: regenerates every table and figure of the
   paper's evaluation (see DESIGN.md §5 for the experiment index and
   EXPERIMENTS.md for paper-vs-measured results).

   Usage:
     bench/main.exe                    run everything
     bench/main.exe SECTION            run one section
     bench/main.exe ... --json OUT     also dump machine-readable results
     bench/main.exe table1       vulnerability survey (Table I)
     bench/main.exe table2       machine configuration (Table II)
     bench/main.exe window       vulnerability-window statistics (§III-C)
     bench/main.exe security     detection matrix (§VI-B, 8 CVEs × 4 variants)
     bench/main.exe fig4         false-positive rates (#1 vs #4 VDCs)
     bench/main.exe fig5         execution times (NoJIT / JIT / JITBULL #0 #1 #4)
     bench/main.exe fig6         scalability (#1..#8 VDCs)
     bench/main.exe fuzz         fuzzer-to-database pipeline (paper §IV-A)
     bench/main.exe telemetry    pipeline pass percentiles + comparator throughput
     bench/main.exe telemetry --audit   also audit-trail throughput and verdict mix
     bench/main.exe ablation     Thr/Ratio/n-gram parameter sweep (beyond the paper)
     bench/main.exe overhead     decision cost vs DB size: indexed vs naive + policy cache
     bench/main.exe concurrency  off-main-thread Ion compilation (jobs=0/1/2/4)
     bench/main.exe native       native x86-64 Ion tier vs the LIR executor
                                 (numeric-loop corpus, byte-equal outputs)
     bench/main.exe service      jitbulld verdict-service throughput: client
                                 concurrency x batch size x index shards
                                 (JITBULL_BENCH_SERVICE_BUDGET_S / _MAXC trim it)
     bench/main.exe bechamel     Bechamel micro-benchmarks of the JITBULL machinery *)

module W = Jitbull_workloads.Workloads
module V = Jitbull_vdc.Demonstrators
module Variants = Jitbull_vdc.Variants
module Catalog = Jitbull_vdc.Catalog
module VC = Jitbull_passes.Vuln_config
module Engine = Jitbull_jit.Engine
module Compile_queue = Jitbull_jit.Compile_queue
module Db = Jitbull_core.Db
module Jitbull = Jitbull_core.Jitbull
module Dna = Jitbull_core.Dna
module Depgraph = Jitbull_core.Depgraph
module Chains = Jitbull_core.Chains
module Comparator = Jitbull_core.Comparator
module Table = Jitbull_util.Text_table
module Intern = Jitbull_util.Intern
module Delta = Jitbull_core.Delta
module Interp = Jitbull_interp.Interp
module Obs = Jitbull_obs.Obs
module Audit = Jitbull_obs.Audit
module Metrics = Jitbull_obs.Metrics
module Report = Jitbull_obs.Report
module Jsonx = Jitbull_obs.Jsonx
module Clock = Jitbull_obs.Clock
module Sexpr = Jitbull_util.Sexpr
module Http = Jitbull_obs.Http_export
module Proto = Jitbull_service.Proto
module Service = Jitbull_service.Service
module Client = Jitbull_service.Client

(* Machine-readable results, accumulated by sections and written out when
   --json OUT is given (the repo's BENCH_*.json perf trajectory). *)
let json_sections : (string * Jsonx.t) list ref = ref []

let emit name payload = json_sections := !json_sections @ [ (name, payload) ]

(* --audit: the telemetry section additionally measures the go/no-go
   audit trail (append throughput, bytes/record, engine-integrated
   verdict mix). *)
let audit_mode = ref false

let stats_json (s : Engine.stats) =
  Jsonx.Assoc
    [
      ("nr_jit", Jsonx.Int s.Engine.nr_jit);
      ("nr_disjit", Jsonx.Int s.Engine.nr_disjit);
      ("nr_nojit", Jsonx.Int s.Engine.nr_nojit);
      ("baseline_compiles", Jsonx.Int s.Engine.baseline_compiles);
      ("ion_compiles", Jsonx.Int s.Engine.ion_compiles);
      ("bailouts", Jsonx.Int s.Engine.bailouts);
      ("deopts", Jsonx.Int s.Engine.deopts);
    ]

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* The paper's DB build-up order: the four public-VDC vulnerabilities
   first (#1..#4), then the four reconstructed ones (#5..#8, §VI-D). *)
let cve_order =
  [
    VC.CVE_2019_17026;
    VC.CVE_2019_9810;
    VC.CVE_2019_9791;
    VC.CVE_2019_11707;
    VC.CVE_2019_9792;
    VC.CVE_2019_9795;
    VC.CVE_2019_9813;
    VC.CVE_2020_26952;
  ]

let first_n n lst = List.filteri (fun i _ -> i < n) lst

(* Build a database holding the first [n] VDCs' DNA (each harvested on an
   engine carrying just that bug, as its reporter would). *)
let build_db n =
  let db = Db.create () in
  List.iter
    (fun cve ->
      let d = V.find cve in
      ignore (Db.harvest db ~cve:d.V.name ~vulns:(VC.make [ cve ]) d.V.source))
    (first_n n cve_order);
  db

(* All durations go through the injectable clock so a manual source can
   drive the harness deterministically in tests. *)
let time f =
  let t0 = Clock.now () in
  let r = f () in
  (r, Clock.now () -. t0)

(* Deterministic workloads: best-of-3 is a stable point estimate. *)
let time_best f =
  let once () = snd (time f) in
  min (once ()) (min (once ()) (once ()))

(* ---- Table I ---- *)

let table1 () =
  section "Table I: JIT-engine vulnerabilities 2015-2021 ([VDC] = demonstrator available)";
  let rows =
    List.map
      (fun (e : Catalog.entry) ->
        [
          Catalog.engine_name e.Catalog.engine;
          (if e.Catalog.has_vdc then e.Catalog.cve ^ " [VDC]" else e.Catalog.cve);
          Printf.sprintf "%.1f" e.Catalog.cvss;
          (match e.Catalog.modeled with
          | Some _ -> "modeled in this repo"
          | None -> "");
        ])
      Catalog.all
  in
  Table.print ~headers:[ "Target"; "Vulnerability"; "CVSS"; "Notes" ] rows;
  let avg =
    List.fold_left (fun acc (e : Catalog.entry) -> acc +. e.Catalog.cvss) 0.0 Catalog.all
    /. float_of_int (List.length Catalog.all)
  in
  Printf.printf "\nMean CVSS: %.1f (paper: 8.8)\n" avg

(* ---- Table II ---- *)

let table2 () =
  section "Table II: hardware/software configuration (this host)";
  Table.print ~headers:[ "Component"; "Characteristics" ] (Env_report.rows ())

(* ---- §III-C vulnerability windows ---- *)

let window () =
  section "Vulnerability-window statistics (paper §III-C)";
  let rows =
    List.filter_map
      (fun (e : Catalog.entry) ->
        match Catalog.window_days e with
        | Some d ->
          Some
            [ e.Catalog.cve;
              Option.value ~default:"" e.Catalog.reported;
              Option.value ~default:"" e.Catalog.patched;
              string_of_int d ^ " days" ]
        | None -> None)
      Catalog.all
  in
  Table.print ~headers:[ "CVE"; "Reported"; "Patched"; "Window" ] rows;
  Printf.printf "\nMean window: %.1f days (paper: 9 days)\n" (Catalog.mean_window_days ());
  Printf.printf "Max overlapping windows in 2019: %d (paper: 2, CVE-2019-9810/-9813)\n"
    (Catalog.max_overlapping ~year:2019)

(* ---- §VI-B security evaluation ---- *)

let exploited = function
  | V.Exploited _ -> true
  | V.Neutralized -> false

let security () =
  section "Security evaluation (paper §VI-B): detection of exploit variants";
  Printf.printf
    "For each CVE: exploit on patched / unpatched engine, then unpatched +\n\
     JITBULL with only the original VDC's DNA installed, against the original\n\
     and the four generated variants (rename / minify / mix / split).\n\n";
  let detections = ref 0 in
  let attempts = ref 0 in
  let rows =
    List.map
      (fun (d : V.t) ->
        let vulns = VC.make [ d.V.cve ] in
        let patched = { Engine.default_config with Engine.vulns = VC.none } in
        let vulnerable = { Engine.default_config with Engine.vulns } in
        let db = Db.create () in
        ignore (Db.harvest db ~cve:d.V.name ~vulns d.V.source);
        let monitor = Jitbull.new_monitor () in
        let protected_cfg = Jitbull.config ~monitor ~vulns db in
        let orig_patched = exploited (V.run_exploit patched d.V.source d.V.expected) in
        let orig_vuln = exploited (V.run_exploit vulnerable d.V.source d.V.expected) in
        let variant_cells =
          List.map
            (fun kind ->
              let variant = Variants.apply kind d.V.source in
              let still = exploited (V.run_exploit vulnerable variant d.V.expected) in
              let neutralized =
                not (exploited (V.run_exploit protected_cfg variant d.V.expected))
              in
              incr attempts;
              if still && neutralized then incr detections;
              Printf.sprintf "%s%s" (if still then "expl/" else "dead/")
                (if neutralized then "BLOCKED" else "MISSED"))
            Variants.all_kinds
        in
        let orig_blocked =
          not (exploited (V.run_exploit protected_cfg d.V.source d.V.expected))
        in
        incr attempts;
        if orig_vuln && orig_blocked then incr detections;
        let flagged =
          List.concat_map (fun (r : Jitbull.record) -> r.Jitbull.dangerous_passes)
            monitor.Jitbull.records
          |> List.sort_uniq String.compare
        in
        [ d.V.name;
          (if orig_patched then "EXPLOITED!" else "safe");
          (if orig_vuln then "exploited" else "MISSED!");
          (if orig_blocked then "BLOCKED" else "MISSED") ]
        @ variant_cells
        @ [ String.concat "," flagged ])
      V.all
  in
  Table.print
    ~headers:
      [ "CVE"; "patched"; "unpatched"; "original"; "rename"; "minify"; "mix"; "split";
        "flagged passes" ]
    rows;
  Printf.printf "\nDetection rate: %d/%d = %.0f%% (paper: 100%%)\n" !detections !attempts
    (100.0 *. float_of_int !detections /. float_of_int !attempts);
  emit "security"
    (Jsonx.Assoc
       [ ("detections", Jsonx.Int !detections); ("attempts", Jsonx.Int !attempts) ]);
  (* the paper's §VI-B-a: two independent implementations of 17026 *)
  let d = V.find VC.CVE_2019_17026 in
  let vulns = VC.make [ d.V.cve ] in
  let db = Db.create () in
  ignore (Db.harvest db ~cve:d.V.name ~vulns d.V.source);
  let monitor = Jitbull.new_monitor () in
  let cfg = Jitbull.config ~monitor ~vulns db in
  let blocked =
    not (exploited (V.run_exploit cfg V.second_implementation_17026 V.Shellcode))
  in
  let gvn_flagged =
    List.exists
      (fun (r : Jitbull.record) -> List.mem "gvn" r.Jitbull.dangerous_passes)
      monitor.Jitbull.records
  in
  Printf.printf
    "\nCVE-2019-17026 independent implementation: %s, GVN flagged: %b (paper: detected, GVN disabled)\n"
    (if blocked then "BLOCKED" else "MISSED") gvn_flagged

(* ---- Figure 4: false positives ---- *)

(* Databases are harvested once per size and shared: building one runs
   the demonstrators, which must never be part of a timed region. *)
let db_cache : (int, Db.t) Hashtbl.t = Hashtbl.create 8

let cached_db n =
  match Hashtbl.find_opt db_cache n with
  | Some db -> db
  | None ->
    let db = build_db n in
    Hashtbl.replace db_cache n db;
    db

let protected_config ?obs n =
  let vulns = VC.make (first_n n cve_order) in
  Jitbull.config ?obs ~vulns (cached_db n)

(* Run a workload under a #n-VDC JITBULL configuration; return engine
   stats and output. *)
let run_protected n (w : W.t) =
  let out, t = Engine.run_source (protected_config n) w.W.source in
  (out, Engine.stats t)

let fig4 () =
  section "Figure 4: false-positive rates on harmless benchmarks (#1 vs #4 VDCs)";
  Printf.printf
    "%%PassDis = JITed functions with >=1 pass disabled; %%NoJIT = functions\n\
     denied JIT entirely. Annotated with the number of Ion-compiled functions.\n\n";
  let rows =
    List.map
      (fun (w : W.t) ->
        let reference = (Interp.run_source w.W.source).Interp.output in
        let cell n =
          let out, s = run_protected n w in
          assert (String.equal out reference);
          let nr = max s.Engine.nr_jit 1 in
          Printf.sprintf "%.0f%% / %.0f%%"
            (100.0 *. float_of_int s.Engine.nr_disjit /. float_of_int nr)
            (100.0 *. float_of_int s.Engine.nr_nojit /. float_of_int nr)
        in
        let _, s1 = run_protected 1 w in
        [ w.W.name; string_of_int s1.Engine.nr_jit; cell 1; cell 4 ])
      W.everything
  in
  Table.print
    ~headers:[ "Benchmark"; "Nr_JIT"; "#1: %PassDis/%NoJIT"; "#4: %PassDis/%NoJIT" ]
    rows;
  Printf.printf
    "\nPaper shape: 0-5%% with one VDC (no function ever fully denied JIT);\n\
     10-65%% with four VDCs.\n"

(* ---- Figure 5: execution times ---- *)

let fig5 () =
  section "Figure 5: execution time - NoJIT vs JIT vs JITBULL (#0, #1, #4 VDCs)";
  let json_rows = ref [] in
  let rows =
    List.map
      (fun (w : W.t) ->
        let reference = (Interp.run_source w.W.source).Interp.output in
        let run config =
          let out = fst (Engine.run_source config w.W.source) in
          assert (String.equal out reference);
          time_best (fun () -> ignore (Engine.run_source config w.W.source))
        in
        let t_jit = run Engine.default_config in
        let t_nojit = run { Engine.default_config with Engine.jit_enabled = false } in
        let t_db0 =
          (* empty DB: analyzer omitted - the zero-overhead case *)
          run (Jitbull.config ~vulns:VC.none (Db.create ()))
        in
        let t_db n = run (protected_config n) in
        let t1 = t_db 1 and t4 = t_db 4 in
        let _, s4 = run_protected 4 w in
        json_rows :=
          Jsonx.Assoc
            [
              ("name", Jsonx.String w.W.name);
              ("jit_ms", Jsonx.Float (t_jit *. 1000.0));
              ("nojit_ms", Jsonx.Float (t_nojit *. 1000.0));
              ("jitbull0_ms", Jsonx.Float (t_db0 *. 1000.0));
              ("jitbull1_ms", Jsonx.Float (t1 *. 1000.0));
              ("jitbull4_ms", Jsonx.Float (t4 *. 1000.0));
              ("stats_jitbull4", stats_json s4);
            ]
          :: !json_rows;
        let pct t = Printf.sprintf "%+.0f%%" (100.0 *. (t -. t_jit) /. t_jit) in
        [ w.W.name;
          Printf.sprintf "%.0f ms" (t_jit *. 1000.0);
          Printf.sprintf "%.0f ms (%s)" (t_nojit *. 1000.0) (pct t_nojit);
          Printf.sprintf "%.0f ms (%s)" (t_db0 *. 1000.0) (pct t_db0);
          Printf.sprintf "%.0f ms (%s)" (t1 *. 1000.0) (pct t1);
          Printf.sprintf "%.0f ms (%s)" (t4 *. 1000.0) (pct t4) ])
      W.everything
  in
  emit "fig5" (Jsonx.List (List.rev !json_rows));
  Table.print
    ~headers:[ "Benchmark"; "JIT"; "NoJIT"; "JITBULL #0"; "JITBULL #1"; "JITBULL #4" ]
    rows;
  Printf.printf
    "\nPaper shape: #0 ~= JIT (zero overhead); #1..#4 within 1-20%% of JIT;\n\
     NoJIT far slower than everything else (its slowdown is compressed in\n\
     this simulator: both tiers are OCaml interpreters - see EXPERIMENTS.md).\n"

(* ---- Figure 6: scalability ---- *)

let fig6 () =
  section "Figure 6: scalability with #1..#8 VDCs in the database";
  let sizes = [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
  let json_rows = ref [] in
  let rows =
    List.map
      (fun (w : W.t) ->
        let t_jit =
          time_best (fun () -> ignore (Engine.run_source Engine.default_config w.W.source))
        in
        let overheads =
          List.map
            (fun n ->
              let t = time_best (fun () -> ignore (run_protected n w)) in
              (n, 100.0 *. (t -. t_jit) /. t_jit))
            sizes
        in
        json_rows :=
          Jsonx.Assoc
            [
              ("name", Jsonx.String w.W.name);
              ("jit_ms", Jsonx.Float (t_jit *. 1000.0));
              ( "overhead_pct",
                Jsonx.List (List.map (fun (_, pct) -> Jsonx.Float pct) overheads) );
            ]
          :: !json_rows;
        let cells = List.map (fun (_, pct) -> Printf.sprintf "%+.0f%%" pct) overheads in
        w.W.name :: cells)
      W.everything
  in
  emit "fig6" (Jsonx.List (List.rev !json_rows));
  Table.print
    ~headers:("Benchmark" :: List.map (fun n -> "#" ^ string_of_int n) sizes)
    rows;
  Printf.printf
    "\nPaper shape: overhead grows with DB size and flattens beyond ~4 VDCs\n\
     (max 22%%, min 5%% at #8).\n"

(* ---- §IV-A: the fuzzer-to-database pipeline ---- *)

let fuzz_pipeline () =
  section "Fuzzer-to-database pipeline (paper §IV-A)";
  Printf.printf
    "Exploit-shaped fuzzing against an engine carrying two unpatched bugs;\n\
     every finding's DNA is auto-harvested; fresh inputs are then re-tried.\n\n";
  let module F = Jitbull_fuzz in
  let vulns = VC.make [ VC.CVE_2019_17026; VC.CVE_2019_9813 ] in
  let fast cfg = { cfg with Engine.baseline_threshold = 2; Engine.ion_threshold = 4 } in
  let vulnerable = fast { Engine.default_config with Engine.vulns } in
  let train_seeds = List.init 30 (fun i -> i) in
  let train = F.Harness.campaign ~profile:`Aggressive ~seeds:train_seeds ~config:vulnerable () in
  Printf.printf "training campaign: %d programs, %d exploit signals\n" train.F.Harness.total
    (List.length train.F.Harness.signals);
  let db = Db.create () in
  let n = F.Harness.auto_harvest ~vulns ~db train.F.Harness.signals in
  Printf.printf "auto-harvested DNA entries: %d\n" n;
  let protected_cfg = fast (Jitbull.config ~vulns db) in
  let fresh = List.init 15 (fun i -> 1000 + i) in
  let before = F.Harness.campaign ~profile:`Aggressive ~seeds:fresh ~config:vulnerable () in
  let after = F.Harness.campaign ~profile:`Aggressive ~seeds:fresh ~config:protected_cfg () in
  Printf.printf
    "fresh never-seen inputs: %d/%d exploit without JITBULL, %d/%d with the fuzz-fed DB\n"
    (List.length before.F.Harness.signals)
    before.F.Harness.total
    (List.length after.F.Harness.signals)
    after.F.Harness.total;
  (* and benign code stays untouched *)
  let benign = F.Harness.campaign ~profile:`Benign ~seeds:train_seeds ~config:protected_cfg () in
  Printf.printf "benign corpus under the same DB: %d/%d agree, %d signals\n"
    benign.F.Harness.agreements benign.F.Harness.total
    (List.length benign.F.Harness.signals);

  (* ---- coverage-guided vs blind generation at equal exec count ---- *)
  Printf.printf
    "\ncoverage-guided vs blind generation (fully vulnerable engine, equal budget):\n";
  let all_vulns = fast { Engine.default_config with Engine.vulns = VC.make VC.all } in
  let execs = 60 in
  let guided = F.Harness.guided_campaign ~config:all_vulns ~max_execs:execs () in
  let blind = F.Harness.blind_sweep ~config:all_vulns ~max_execs:execs () in
  let rate (g : F.Harness.guided) =
    float_of_int g.F.Harness.g_execs /. Float.max 1e-9 g.F.Harness.g_seconds
  in
  Printf.printf "  %-8s %6s %9s %8s %8s  %s\n" "mode" "execs" "coverage" "signals"
    "execs/s" "corpus";
  let row name (g : F.Harness.guided) =
    Printf.printf "  %-8s %6d %9d %8d %8.0f  %d\n" name g.F.Harness.g_execs
      g.F.Harness.g_coverage
      (List.length g.F.Harness.g_signals)
      (rate g) g.F.Harness.g_corpus_size
  in
  row "guided" guided;
  row "blind" blind;
  let curve_string (g : F.Harness.guided) =
    g.F.Harness.g_curve
    |> List.map (fun (p : F.Harness.curve_point) ->
           Printf.sprintf "%d:%d" p.F.Harness.cp_execs p.F.Harness.cp_coverage)
    |> String.concat " "
  in
  Printf.printf "  guided coverage curve (exec:features): %s\n" (curve_string guided);
  Printf.printf "  blind  coverage curve (exec:features): %s\n" (curve_string blind);
  Printf.printf "  guided %s blind at equal exec count\n"
    (if guided.F.Harness.g_coverage > blind.F.Harness.g_coverage then "dominates"
     else "DOES NOT dominate");
  let curve_json (g : F.Harness.guided) =
    Jsonx.List
      (List.map
         (fun (p : F.Harness.curve_point) ->
           Jsonx.List [ Jsonx.Int p.F.Harness.cp_execs; Jsonx.Int p.F.Harness.cp_coverage ])
         g.F.Harness.g_curve)
  in
  let mode_json (g : F.Harness.guided) =
    Jsonx.Assoc
      [
        ("execs", Jsonx.Int g.F.Harness.g_execs);
        ("coverage", Jsonx.Int g.F.Harness.g_coverage);
        ("signals", Jsonx.Int (List.length g.F.Harness.g_signals));
        ("corpus", Jsonx.Int g.F.Harness.g_corpus_size);
        ("execs_per_sec", Jsonx.Float (rate g));
        ("coverage_curve", curve_json g);
      ]
  in

  (* ---- typed-IL vs AST mutation yield (A/B at equal budget) ---- *)
  Printf.printf "\ntyped-IL vs AST mutation yield (equal budget, same engine):\n";
  let yield_budget = 400 in
  let il_run =
    F.Harness.guided_campaign ~config:all_vulns ~il:true ~rng_seed:7
      ~max_execs:yield_budget ()
  in
  let ast_run =
    F.Harness.guided_campaign ~config:all_vulns ~rng_seed:7 ~max_execs:yield_budget ()
  in
  let yield_row name (y : F.Harness.yield) =
    Printf.printf "  %-4s %5d mutants %5d valid  %5.1f%% yield\n" name
      y.F.Harness.y_mutants y.F.Harness.y_valid
      (100.0 *. F.Harness.yield_ratio y)
  in
  yield_row "il" il_run.F.Harness.g_il_yield;
  yield_row "ast" ast_run.F.Harness.g_ast_yield;
  Printf.printf
    "  typed IL keeps %.1f%% of mutants clean on the reference tier vs %.1f%% for AST splicing\n"
    (100.0 *. F.Harness.yield_ratio il_run.F.Harness.g_il_yield)
    (100.0 *. F.Harness.yield_ratio ast_run.F.Harness.g_ast_yield);
  let yield_json (y : F.Harness.yield) =
    Jsonx.Assoc
      [
        ("mutants", Jsonx.Int y.F.Harness.y_mutants);
        ("valid", Jsonx.Int y.F.Harness.y_valid);
        ("ratio", Jsonx.Float (F.Harness.yield_ratio y));
      ]
  in

  (* ---- distributed campaign: worker-scaling curves + CVE attribution ---- *)
  let topo_execs = 200 and topo_rounds = 2 in
  Printf.printf
    "\ndistributed campaign (in-process master + N worker threads, typed IL,\n\
     %d execs/round x %d rounds per worker, all 8 CVEs live, attribution on):\n"
    topo_execs topo_rounds;
  let run_topology n =
    let master = F.Sync.Master.start ~config:all_vulns ~port:0 () in
    let port = F.Sync.Master.port master in
    let t0 = Unix.gettimeofday () in
    let results = Array.make n None in
    let threads =
      List.init n (fun i ->
          Thread.create
            (fun i ->
              results.(i) <-
                Some
                  (F.Sync.Worker.run ~config:all_vulns ~il:true ~track_cves:true
                     ~rounds:topo_rounds ~execs_per_round:topo_execs
                     ~rng_seed:(97 * n + i)
                     ~id:(Printf.sprintf "bench-w%d" (i + 1))
                     ~port ()))
            i)
    in
    List.iter Thread.join threads;
    let secs = Unix.gettimeofday () -. t0 in
    let rs = List.filter_map Fun.id (Array.to_list results) in
    let execs = List.fold_left (fun a r -> a + r.F.Sync.Worker.w_execs) 0 rs in
    let cves =
      List.sort_uniq compare
        (List.concat_map (fun r -> List.map fst r.F.Sync.Worker.w_cve_execs) rs)
    in
    let coverage = F.Sync.Master.coverage_count master in
    let corpus = F.Sync.Master.corpus_size master in
    let syncs = F.Sync.Master.syncs master in
    F.Sync.Master.stop master;
    (execs, secs, coverage, corpus, syncs, cves)
  in
  Printf.printf "  %-7s %6s %7s %8s %9s %7s %6s  %s\n" "workers" "execs" "secs" "execs/s"
    "coverage" "corpus" "syncs" "CVEs";
  let topo_json = ref [] in
  let rates = ref [] in
  List.iter
    (fun n ->
      let execs, secs, coverage, corpus, syncs, cves = run_topology n in
      let r = float_of_int execs /. Float.max 1e-9 secs in
      rates := !rates @ [ (n, r) ];
      Printf.printf "  %-7d %6d %7.1f %8.0f %9d %7d %6d  %d/8\n" n execs secs r coverage
        corpus syncs (List.length cves);
      topo_json :=
        !topo_json
        @ [
            Jsonx.Assoc
              [
                ("workers", Jsonx.Int n);
                ("execs", Jsonx.Int execs);
                ("seconds", Jsonx.Float secs);
                ("execs_per_sec", Jsonx.Float r);
                ("coverage", Jsonx.Int coverage);
                ("corpus", Jsonx.Int corpus);
                ("syncs", Jsonx.Int syncs);
                ( "cves_attributed",
                  Jsonx.List (List.map (fun c -> Jsonx.String (VC.cve_name c)) cves) );
              ];
          ])
    [ 1; 2; 4 ];
  let cores = Domain.recommended_domain_count () in
  let scaling_1_2 =
    match (List.assoc_opt 1 !rates, List.assoc_opt 2 !rates) with
    | Some r1, Some r2 when r1 > 0.0 -> r2 /. r1
    | _ -> 0.0
  in
  Printf.printf "  aggregate throughput 1 -> 2 workers: %.2fx\n" scaling_1_2;
  Printf.printf
    "  (workers are systhreads sharing one runtime domain: compute scaling is bounded\n\
    \   by host cores — this host has %d, so any gain above 1x here comes from corpus\n\
    \   sharing lowering per-exec cost, not from parallel execution)\n"
    cores;
  emit "fuzz"
    (Jsonx.Assoc
       [
         ("env_report", Env_report.to_json ());
         ("train_signals", Jsonx.Int (List.length train.F.Harness.signals));
         ("harvested_entries", Jsonx.Int n);
         ("fresh_exploits_unprotected", Jsonx.Int (List.length before.F.Harness.signals));
         ("fresh_exploits_protected", Jsonx.Int (List.length after.F.Harness.signals));
         ("guided", mode_json guided);
         ("blind", mode_json blind);
         ( "guided_dominates",
           Jsonx.Bool (guided.F.Harness.g_coverage > blind.F.Harness.g_coverage) );
         ("il_yield", yield_json il_run.F.Harness.g_il_yield);
         ("ast_yield", yield_json ast_run.F.Harness.g_ast_yield);
         ("topologies", Jsonx.List !topo_json);
         ("scaling_1_to_2_workers", Jsonx.Float scaling_1_2);
       ])

(* ---- Ablation: comparator parameters and sub-chain size ----

   The paper fixes Thr = 3, Ratio = 0.5 "to optimize for a high detection
   rate" without reporting a sweep; this section measures both sides of
   the trade-off across the (Thr, Ratio, n-gram) grid:
   - detection: the 8 originals plus their rename variants must be
     neutralized on the unpatched engine (16 attempts);
   - false positives: mean %PassDis over a workload sample with the #4
     database installed. *)

let ablation () =
  section "Ablation: Δ-comparator threshold / ratio / sub-chain size";
  (* harvest + analyze with explicit parameters *)
  let harvest_with ~n db ~cve ~vulns source =
    let analyzer ~ctx:_ ~func_index:_ ~name:_ ~trace =
      let dna = Dna.extract ~n trace in
      if Dna.nonempty_passes dna <> [] then Db.add db { Db.cve; dna };
      Engine.Allow
    in
    let config = { Engine.default_config with Engine.vulns; analyzer = Some analyzer } in
    try ignore (Engine.run_source config source) with _ -> ()
  in
  let analyzer_with ~n ~params db counters =
    let jit_count, dis_count = counters in
   fun ~ctx:_ ~func_index:_ ~name:_ ~trace ->
    incr jit_count;
    let dna = Dna.extract ~n trace in
    let matched =
      List.concat_map
        (fun (e : Db.entry) -> Comparator.matching_passes ~params dna e.Db.dna)
        (Db.entries db)
      |> List.sort_uniq String.compare
    in
    if matched = [] then Engine.Allow
    else begin
      incr dis_count;
      Engine.Disable_passes matched
    end
  in
  let fp_sample =
    List.filter_map W.find [ "Richards"; "RayTrace"; "Splay"; "TypeScript"; "Microbench1" ]
  in
  let grid =
    List.concat_map
      (fun n ->
        List.concat_map
          (fun thr ->
            List.map (fun ratio -> (n, { Comparator.thr; ratio })) [ 0.25; 0.5; 0.75 ])
          [ 1; 2; 3 ])
      [ 2; 3 ]
  in
  let rows =
    List.map
      (fun (n, params) ->
        (* per-CVE databases, harvested at this n *)
        let detections = ref 0 in
        let attempts = ref 0 in
        List.iter
          (fun (d : V.t) ->
            let vulns = VC.make [ d.V.cve ] in
            let db = Db.create () in
            harvest_with ~n db ~cve:d.V.name ~vulns d.V.source;
            let counters = (ref 0, ref 0) in
            let cfg =
              { Engine.default_config with
                Engine.vulns;
                analyzer = Some (analyzer_with ~n ~params db counters) }
            in
            List.iter
              (fun source ->
                incr attempts;
                match V.run_exploit cfg source d.V.expected with
                | V.Neutralized -> incr detections
                | V.Exploited _ -> ())
              [ d.V.source; Variants.apply Variants.Rename d.V.source ])
          V.all;
        (* FP: #4 database at this n *)
        let db4 = Db.create () in
        List.iter
          (fun cve ->
            let d = V.find cve in
            harvest_with ~n db4 ~cve:d.V.name ~vulns:(VC.make [ cve ]) d.V.source)
          (first_n 4 cve_order);
        let fp_total = ref 0.0 in
        List.iter
          (fun (w : W.t) ->
            let counters = (ref 0, ref 0) in
            let cfg =
              { Engine.default_config with
                Engine.vulns = VC.make (first_n 4 cve_order);
                analyzer = Some (analyzer_with ~n ~params db4 counters) }
            in
            ignore (Engine.run_source cfg w.W.source);
            let jit, dis = counters in
            fp_total := !fp_total +. (100.0 *. float_of_int !dis /. float_of_int (max 1 !jit)))
          fp_sample;
        [
          string_of_int n;
          string_of_int params.Comparator.thr;
          Printf.sprintf "%.2f" params.Comparator.ratio;
          Printf.sprintf "%d/%d" !detections !attempts;
          Printf.sprintf "%.0f%%" (!fp_total /. float_of_int (List.length fp_sample));
        ])
      grid
  in
  Table.print
    ~headers:[ "n-gram"; "Thr"; "Ratio"; "detection"; "mean FP %PassDis (#4)" ]
    rows;
  Printf.printf
    "\nShipping defaults: n = 3, Thr = 2, Ratio = 0.5 — full detection at the\n\
     lowest false-positive cost on this corpus (the paper's Thr = 3 assumes\n\
     its pairwise chain counting; see DESIGN.md §4).\n"

(* ---- Telemetry: the observability layer measuring itself ---- *)

(* --audit mode: what does the audit trail itself cost? A synthetic
   append microbench (records/sec through the mutexed ring) and the
   JSONL footprint (bytes/record), plus the verdict mix the workload
   run above actually produced. *)
let telemetry_audit obs =
  Printf.printf "\n-- audit trail (--audit) --\n";
  let au = Obs.audit obs in
  let verdict_counts records =
    List.fold_left
      (fun (a, d, f) (r : Audit.record) ->
        match r.Audit.verdict with
        | Audit.Allow -> (a + 1, d, f)
        | Audit.Disable _ -> (a, d + 1, f)
        | Audit.Forbid -> (a, d, f + 1))
      (0, 0, 0) records
  in
  let engine_json =
    let records = Audit.records au in
    let allow, disable, forbid = verdict_counts records in
    let cache_hits =
      List.length
        (List.filter (fun r -> r.Audit.source = Audit.Cache_hit) records)
    in
    Printf.printf
      "workload run: %d decisions audited (allow %d / disable %d / forbid %d), %d cache hits\n"
      (Audit.total au) allow disable forbid cache_hits;
    Jsonx.Assoc
      [
        ("records_total", Jsonx.Int (Audit.total au));
        ("allow", Jsonx.Int allow);
        ("disable", Jsonx.Int disable);
        ("forbid", Jsonx.Int forbid);
        ("cache_hits", Jsonx.Int cache_hits);
      ]
  in
  (* Synthetic append throughput: a fresh ring, records shaped like a
     real disable verdict (one CVE, one matched pass). *)
  let n = 100_000 in
  let fresh = Audit.create () in
  let append ring i =
    ignore
      (Audit.append ring ~func_name:(Printf.sprintf "f%d" (i land 15))
         ~func_index:(i land 15) ~bytecode_hash:(i * 2654435761)
         ~feedback_hash:(i * 40503)
         ~verdict:(Audit.Disable [ "gvn" ])
         ~matches:
           [
             {
               Audit.cm_cve = "CVE-2019-17026";
               cm_passes =
                 [
                   {
                     Audit.pm_pass = "gvn";
                     pm_side = "removed";
                     pm_eq_chains = 3;
                     pm_max_eq_chains = 6;
                     pm_chains =
                       [ ("boundscheck->loadelement", 2); ("^guard->boundscheck", 1) ];
                   };
                 ];
             };
           ]
         ~thr:2 ~ratio:0.5 ~prefilter_candidates:8 ~prefilter_hits:1
         ~db_generation:4 ~db_size:8 ~source:Audit.Fresh ~duration:1e-5 ())
  in
  let (), dt =
    time (fun () ->
        for i = 0 to n - 1 do
          append fresh i
        done)
  in
  let rate = float_of_int n /. dt in
  let bytes =
    let sample = Audit.last fresh 64 in
    let total =
      List.fold_left
        (fun acc r ->
          (* +1: the newline each JSONL sink line costs on disk *)
          acc + String.length (Jsonx.to_string (Audit.record_to_json r)) + 1)
        0 sample
    in
    float_of_int total /. float_of_int (max 1 (List.length sample))
  in
  (* The ring estimate above re-serialises retained records; the number
     operators budget disk by is what the JSONL *file sink* actually
     writes. Run a second, smaller batch through [set_file_sink] and
     stat the file: real bytes/record and append throughput with the
     sink's serialise+write on the hot path. *)
  let sink_n = 10_000 in
  let sink_path = Filename.temp_file "jitbull_bench_audit" ".jsonl" in
  let sink_dt, sink_bytes =
    let sunk = Audit.create () in
    Audit.set_file_sink sunk sink_path;
    let (), sdt =
      time (fun () ->
          for i = 0 to sink_n - 1 do
            append sunk i
          done)
    in
    Audit.close sunk;
    let size = (Unix.stat sink_path).Unix.st_size in
    Sys.remove sink_path;
    (sdt, float_of_int size /. float_of_int sink_n)
  in
  let sink_rate = float_of_int sink_n /. sink_dt in
  Printf.printf
    "append microbench: %d records in %.2f ms — %.0f records/s, %.1f ns/record\n"
    n (dt *. 1000.0) rate (dt /. float_of_int n *. 1e9);
  Printf.printf "JSONL footprint (ring estimate): %.0f bytes/record\n" bytes;
  Printf.printf
    "JSONL file sink: %d records in %.2f ms — %.0f records/s, %.0f bytes/record on disk\n"
    sink_n (sink_dt *. 1000.0) sink_rate sink_bytes;
  emit "telemetry.audit"
    (Jsonx.Assoc
       [
         ("engine", engine_json);
         ("bench_records", Jsonx.Int n);
         ("seconds", Jsonx.Float dt);
         ("records_per_sec", Jsonx.Float rate);
         ("bytes_per_record", Jsonx.Float bytes);
         ("sink_records", Jsonx.Int sink_n);
         ("sink_seconds", Jsonx.Float sink_dt);
         ("sink_records_per_sec", Jsonx.Float sink_rate);
         ("sink_bytes_per_record", Jsonx.Float sink_bytes);
       ])

let telemetry () =
  section "Telemetry: pipeline pass percentiles and comparator throughput (#4 VDC DB)";
  Printf.printf
    "A fully instrumented run (metrics registry + tracer installed) over a\n\
     workload sample with four VDCs in the database: per-pass latency\n\
     percentiles from the fixed-bucket histograms, comparator throughput,\n\
     and tier dispatch counts.\n\n";
  let obs = Obs.create () in
  let sample =
    List.filter_map W.find [ "Richards"; "RayTrace"; "Splay"; "TypeScript"; "Microbench1" ]
  in
  List.iter
    (fun (w : W.t) -> ignore (Engine.run_source (protected_config ~obs 4) w.W.source))
    sample;
  let view = Metrics.snapshot (Obs.metrics obs) in
  let headers, rows = Report.pass_profile view in
  Table.print ~headers rows;
  let counter name = Option.value ~default:0 (Metrics.find_counter view name) in
  (* Tail latency comes from the live registry via [Metrics.quantile] —
     the snapshot view only carries the fixed p50/p90 — so the figure
     printed here is the same estimator /healthz alarms on. *)
  let p99 name = Metrics.quantile (Metrics.histogram (Obs.metrics obs) name) 0.99 in
  (match Metrics.find_histogram view "comparator.seconds" with
  | Some hv when hv.Metrics.hv_count > 0 ->
    Printf.printf
      "\ncomparator: %d DNA-pair comparisons in %.2f ms (p50 %.1f us, p90 %.1f us, p99 %.1f us) — %.0f pairs/s, %d pass matches\n"
      hv.Metrics.hv_count
      (hv.Metrics.hv_sum *. 1000.0)
      (hv.Metrics.hv_p50 *. 1e6)
      (hv.Metrics.hv_p90 *. 1e6)
      (p99 "comparator.seconds" *. 1e6)
      (float_of_int hv.Metrics.hv_count /. hv.Metrics.hv_sum)
      (counter "comparator.matches")
  | _ -> ());
  (match Metrics.find_histogram view "policy_decide.seconds" with
  | Some hv when hv.Metrics.hv_count > 0 ->
    Printf.printf
      "policy_decide: %d verdicts (allow %d / disable %d / forbid %d), p90 %.1f us, p99 %.1f us\n"
      hv.Metrics.hv_count (counter "policy.allow") (counter "policy.disable")
      (counter "policy.forbid") (hv.Metrics.hv_p90 *. 1e6)
      (p99 "policy_decide.seconds" *. 1e6)
  | _ -> ());
  Printf.printf "dispatch: %d calls (%d interpreted, %d through JIT code)\n"
    (counter "vm.calls") (counter "vm.dispatch.interp") (counter "vm.dispatch.jit");
  Printf.printf "trace events recorded: %d (ring keeps the newest %d)\n"
    (Jitbull_obs.Tracer.total_recorded (Obs.tracer obs))
    (List.length (Jitbull_obs.Tracer.events (Obs.tracer obs)));
  (* the section payload carries its own host report: telemetry numbers
     archived out of a full --json document stay self-describing *)
  emit "telemetry"
    (Jsonx.Assoc
       [
         ("env_report", Env_report.to_json ());
         ("metrics", Metrics.view_to_json view);
       ]);
  if !audit_mode then telemetry_audit obs

(* ---- Overhead: go/no-go query cost vs database size ----

   The paper's evaluation stops at #8 VDCs; this section measures how the
   decision cost scales past that, comparing the naive comparator fold
   (O(entries)) against the inverted sub-chain index at 1/8/32/128
   entries. Databases beyond the 8 harvested CVEs are padded with
   synthetic clones whose sub-chain keys are renamed per clone — the
   realistic regime where distinct vulnerabilities share few keys. Every
   timed query is also checked for decision equivalence between the two
   paths, and the policy-decision cache is measured on repeated runs of a
   real workload. *)

let overhead () =
  section "Overhead: go/no-go decision cost vs DB size (indexed vs naive)";
  Printf.printf
    "Per-query latency of the DB comparison for a function DNA, naive fold\n\
     over every entry vs the inverted sub-chain index, at 1/8/32/128 entries\n\
     (8 harvested CVE DNAs + key-renamed synthetic clones). Decisions are\n\
     asserted identical on every timed query.\n\n";
  let params = Comparator.default_params in
  let real_entries = Db.entries (cached_db 8) in
  let nreal = List.length real_entries in
  (* clone [idx]-th entry with per-clone key renaming: synthetic CVEs must
     not collide with each other or the real ones *)
  let perturb_side k side =
    Delta.side_of_list
      (Hashtbl.fold
         (fun id c acc -> (Printf.sprintf "v%d:%s" k (Intern.to_string id), c) :: acc)
         side [])
  in
  let synth_entry k (e : Db.entry) =
    {
      Db.cve = Printf.sprintf "%s-syn%d" e.Db.cve k;
      dna =
        {
          e.Db.dna with
          Dna.deltas =
            List.map
              (fun (pass, (d : Delta.t)) ->
                ( pass,
                  { Delta.removed = perturb_side k d.Delta.removed;
                    added = perturb_side k d.Delta.added } ))
              e.Db.dna.Dna.deltas;
        };
    }
  in
  let db_of_size s =
    let db = Db.create () in
    for i = 0 to s - 1 do
      let e = List.nth real_entries (i mod nreal) in
      Db.add db (if i < nreal then e else synth_entry (i / nreal) e)
    done;
    db
  in
  (* query set: benign DNAs from workload functions (the common case) plus
     one exploit DNA straight from the database (the hit path) *)
  let dna_of_source source =
    let prog = Jitbull_frontend.Parser.parse source in
    let bc = Jitbull_bytecode.Compiler.compile prog in
    let vm = Jitbull_bytecode.Vm.create bc in
    (try ignore (Jitbull_bytecode.Vm.run vm) with _ -> ());
    let g =
      Jitbull_mir.Builder.build bc.Jitbull_bytecode.Op.funcs.(0)
        ~feedback_row:vm.Jitbull_bytecode.Vm.feedback.(0)
    in
    Dna.extract (Jitbull_passes.Pipeline.run VC.none g)
  in
  let queries =
    List.map (fun (w : W.t) -> dna_of_source w.W.source)
      (List.filter_map W.find [ "Richards"; "RayTrace"; "Splay"; "Microbench1" ])
    @ [ (List.hd real_entries).Db.dna ]
  in
  let naive db dna =
    List.filter_map
      (fun (e : Db.entry) ->
        match Comparator.matching_passes ~params dna e.Db.dna with
        | [] -> None
        | passes -> Some (e.Db.cve, passes))
      (Db.entries db)
  in
  let reps = 20 in
  let nq = List.length queries in
  let per_query t = t /. float_of_int (reps * nq) *. 1e6 in
  let json_rows = ref [] in
  let speedup_at_128 = ref 0.0 in
  let rows =
    List.map
      (fun s ->
        let db = db_of_size s in
        let equal =
          List.for_all (fun dna -> Db.matching ~params db dna = naive db dna) queries
        in
        assert equal;
        let t_naive =
          time_best (fun () ->
              for _ = 1 to reps do
                List.iter (fun dna -> ignore (naive db dna)) queries
              done)
        in
        let t_indexed =
          time_best (fun () ->
              for _ = 1 to reps do
                List.iter (fun dna -> ignore (Db.matching ~params db dna)) queries
              done)
        in
        let speedup = t_naive /. t_indexed in
        if s = 128 then speedup_at_128 := speedup;
        json_rows :=
          Jsonx.Assoc
            [
              ("entries", Jsonx.Int s);
              ("naive_us_per_query", Jsonx.Float (per_query t_naive));
              ("indexed_us_per_query", Jsonx.Float (per_query t_indexed));
              ("speedup", Jsonx.Float speedup);
              ("decisions_equal", Jsonx.Bool equal);
            ]
          :: !json_rows;
        [
          string_of_int s;
          Printf.sprintf "%.1f us" (per_query t_naive);
          Printf.sprintf "%.1f us" (per_query t_indexed);
          Printf.sprintf "%.1fx" speedup;
          (if equal then "identical" else "DIVERGED!");
        ])
      [ 1; 8; 32; 128 ]
  in
  Table.print
    ~headers:[ "DB entries"; "naive/query"; "indexed/query"; "speedup"; "verdicts" ]
    rows;
  Printf.printf "\nIndexed speedup at 128 entries: %.1fx (target: >= 3x)\n" !speedup_at_128;
  (* policy-decision cache: repeated runs of a real workload under one
     shared configuration — every re-JIT after the first run hits *)
  let obs = Obs.create () in
  let cfg = protected_config ~obs 4 in
  let w = Option.get (W.find "Microbench1") in
  for _ = 1 to 5 do
    ignore (Engine.run_source cfg w.W.source)
  done;
  let view = Metrics.snapshot (Obs.metrics obs) in
  let counter name = Option.value ~default:0 (Metrics.find_counter view name) in
  let hits = counter "policy.cache_hits" and misses = counter "policy.cache_misses" in
  Printf.printf
    "Policy-decision cache over 5 runs of %s (#4 DB): %d hits / %d misses\n\
     (every Ion compile after the first run skips DNA extraction + comparison)\n"
    w.W.name hits misses;
  (* explain capture A/B: the acceptance bar for the explainability layer
     is that overhead with capture *disabled* is unchanged — the capture
     branch must stay behind the [Obs.irdiff] option. Same workload, one
     configuration without a diff ring and one with; the capture side
     also reports the time the diff summarisation billed to
     [explain.capture_seconds]. *)
  let explain_ab explain =
    let obs = if explain then Obs.create ~explain_capacity:64 () else Obs.create () in
    let cfg = protected_config ~obs 4 in
    let (), wall =
      time (fun () ->
          for _ = 1 to 5 do
            ignore (Engine.run_source cfg w.W.source)
          done)
    in
    let view = Metrics.snapshot (Obs.metrics obs) in
    let hist_sum name =
      match Metrics.find_histogram view name with
      | Some hv -> hv.Metrics.hv_sum
      | None -> 0.0
    in
    (wall, hist_sum "policy_decide.seconds", hist_sum "explain.capture_seconds")
  in
  let off_wall, off_decide, _ = explain_ab false in
  let on_wall, on_decide, on_capture = explain_ab true in
  Printf.printf
    "Explain capture A/B over 5 runs of %s:\n\
    \  capture off: %.1f ms wall, %.2f ms in policy_decide\n\
    \  capture on:  %.1f ms wall, %.2f ms in policy_decide, %.2f ms in IR-diff capture\n"
    w.W.name (off_wall *. 1000.0) (off_decide *. 1000.0) (on_wall *. 1000.0)
    (on_decide *. 1000.0) (on_capture *. 1000.0);
  emit "overhead"
    (Jsonx.Assoc
       [
         ("sizes", Jsonx.List (List.rev !json_rows));
         ("speedup_at_128", Jsonx.Float !speedup_at_128);
         ( "policy_cache",
           Jsonx.Assoc [ ("hits", Jsonx.Int hits); ("misses", Jsonx.Int misses) ] );
         ( "explain_capture",
           Jsonx.Assoc
             [
               ("off_wall_seconds", Jsonx.Float off_wall);
               ("off_policy_decide_seconds", Jsonx.Float off_decide);
               ("on_wall_seconds", Jsonx.Float on_wall);
               ("on_policy_decide_seconds", Jsonx.Float on_decide);
               ("on_capture_seconds", Jsonx.Float on_capture);
             ] );
       ])

(* ---- Concurrency: off-main-thread Ion compilation ----

   Runs a workload sample under the #4-VDC JITBULL configuration with the
   Ion tier-up offloaded to 0/1/2/4 helper domains. jobs=0 is the
   synchronous reference: every other job count must produce the same
   output, and every function analyzed in both runs must receive the
   identical go/no-go verdict (the background pipeline analyzes frozen
   enqueue-time snapshots, so per-function verdicts are deterministic;
   the *set* of hot functions can legitimately grow by one or two, since
   a caller keeps executing baseline code during its compile window and
   its callees — which synchronous inlining would have starved of
   invocations — may cross the Ion threshold themselves). Reported per
   cell: best-of-3 wall time and the main-thread stall — the time the
   main thread spends blocked on compilation (the whole compile at
   jobs=0, only end-of-run drain waits otherwise). Wall-time wins need
   real cores; stall shrinks regardless. *)

let concurrency () =
  section "Concurrency: off-main-thread Ion compilation (0/1/2/4 helper domains)";
  Printf.printf
    "Host reports %d core(s); helper domains beyond that shrink main-thread\n\
     stall but cannot shrink wall time.\n\n"
    (Domain.recommended_domain_count ());
  let job_counts = [ 0; 1; 2; 4 ] in
  let sample =
    List.filter_map W.find [ "Richards"; "RayTrace"; "Splay"; "TypeScript"; "Microbench1" ]
  in
  let with_pool jobs f =
    if jobs = 0 then f None
    else begin
      let pool = Compile_queue.create ~jobs () in
      Fun.protect ~finally:(fun () -> Compile_queue.shutdown pool) (fun () -> f (Some pool))
    end
  in
  let run_one pool (w : W.t) =
    let monitor = Jitbull.new_monitor () in
    let vulns = VC.make (first_n 4 cve_order) in
    let cfg = Jitbull.config ~monitor ?compile_pool:pool ~vulns (cached_db 4) in
    let out, e = Engine.run_source cfg w.W.source in
    (out, Engine.stats e, monitor.Jitbull.records)
  in
  (* func → verdict pairs, deduplicated *)
  let verdict_set records =
    List.map
      (fun (r : Jitbull.record) ->
        let v =
          match r.Jitbull.verdict with
          | `Allow -> "allow"
          | `Disable ps -> "disable:" ^ String.concat "," ps
          | `Forbid -> "forbid"
        in
        (r.Jitbull.func_name, v))
      records
    |> List.sort_uniq compare
  in
  (* every function analyzed in both runs got the identical verdict(s) *)
  let verdicts_agree a b =
    let funcs l = List.sort_uniq compare (List.map fst l) in
    let common = List.filter (fun f -> List.mem f (funcs b)) (funcs a) in
    List.for_all
      (fun f ->
        List.filter (fun (g, _) -> String.equal g f) a
        = List.filter (fun (g, _) -> String.equal g f) b)
      common
  in
  let json_rows = ref [] in
  let rows =
    List.map
      (fun (w : W.t) ->
        let out0, _, records0 = with_pool 0 (fun pool -> run_one pool w) in
        let v0 = verdict_set records0 in
        let cells =
          List.map
            (fun jobs ->
              with_pool jobs (fun pool ->
                  let out, s, records = run_one pool w in
                  (* identity vs the synchronous reference *)
                  assert (String.equal out out0);
                  assert (verdicts_agree v0 (verdict_set records));
                  let wall =
                    time_best (fun () -> ignore (run_one pool w))
                  in
                  json_rows :=
                    Jsonx.Assoc
                      [
                        ("name", Jsonx.String w.W.name);
                        ("jobs", Jsonx.Int jobs);
                        ("wall_ms", Jsonx.Float (wall *. 1000.0));
                        ("stall_ms", Jsonx.Float (s.Engine.main_stall_seconds *. 1000.0));
                        ("async_installs", Jsonx.Int s.Engine.async_installs);
                        ("stale_results", Jsonx.Int s.Engine.stale_results);
                        ("verdicts_identical", Jsonx.Bool true);
                      ]
                    :: !json_rows;
                  Printf.sprintf "%.0f / %.2f ms" (wall *. 1000.0)
                    (s.Engine.main_stall_seconds *. 1000.0)))
            job_counts
        in
        (w.W.name :: cells) @ [ "identical" ])
      sample
  in
  Table.print
    ~headers:
      ("Benchmark"
      :: List.map (fun j -> Printf.sprintf "jobs=%d wall/stall" j) job_counts
      @ [ "verdicts" ])
    rows;
  emit "concurrency"
    (Jsonx.Assoc
       [
         ("cores", Jsonx.Int (Domain.recommended_domain_count ()));
         ("rows", Jsonx.List (List.rev !json_rows));
       ])

(* ---- Fleet-scale verdict service: jitbulld throughput ----

   Records a compile stream once — every Ion compile of a workload
   sample plus the eight demonstrators, captured as the exact
   [Proto.verdict_req] the remote analyzer would send, with the local
   verdict computed at record time — then replays it against a live
   in-process [Service] over raw keep-alive connections
   ([Client.verdict_roundtrip], one systhread per simulated engine).
   Replayed requests perturb the feedback hash per iteration so every
   request misses the server's req_key verdict cache and pays the full
   DNA parse + sharded scatter/gather — the cold path the sharding
   exists for; cache-hit throughput is far higher and less interesting.

   Swept: client concurrency C (1/8/64/256), batch size K (1/8/32) and
   index shards N (1 vs 4). Every response is checked against the
   verdict recorded locally for that stream entry — the remote==local
   oracle holds on every benched request or the section fails.

   JITBULL_BENCH_SERVICE_BUDGET_S (default 0.6) is the per-config time
   budget; JITBULL_BENCH_SERVICE_MAXC caps the concurrency sweep (CI
   smoke runs with MAXC=8 and a small budget). *)

(* The recorded stream: requests in compile order plus the expected
   verdict per request id. *)
let record_stream () =
  let params = Comparator.default_params in
  let db = cached_db 8 in
  let reqs = ref [] in
  let expected : (int, Proto.verdict) Hashtbl.t = Hashtbl.create 64 in
  let next_id = ref 0 in
  let analyzer ~ctx ~func_index:_ ~name ~trace =
    let dna = Dna.extract trace in
    let matched = Db.matching ~params db dna in
    let _, verdict = Jitbull.verdict_of_matches matched in
    let id = !next_id in
    incr next_id;
    reqs :=
      {
        Proto.vr_id = id;
        vr_func = name;
        vr_bytecode_hash = ctx.Engine.cc_bytecode_hash;
        vr_feedback_hash = ctx.Engine.cc_feedback_hash;
        vr_dna = Sexpr.to_string (Dna.to_sexpr dna);
      }
      :: !reqs;
    Hashtbl.replace expected id verdict;
    Proto.decision_of_verdict verdict
  in
  let sample =
    List.filter_map W.find [ "Richards"; "RayTrace"; "Splay"; "TypeScript"; "Microbench1" ]
  in
  List.iter
    (fun (w : W.t) ->
      let cfg = { Engine.default_config with Engine.analyzer = Some analyzer } in
      ignore (Engine.run_source cfg w.W.source))
    sample;
  (* the hit path: demonstrators on an engine carrying their bug *)
  List.iter
    (fun (d : V.t) ->
      let cfg =
        { Engine.default_config with
          Engine.vulns = VC.make [ d.V.cve ]; analyzer = Some analyzer }
      in
      try ignore (Engine.run_source cfg d.V.source) with _ -> ())
    V.all;
  (Array.of_list (List.rev !reqs), expected)

(* Weighted percentile over (round-trip latency, requests in that
   round-trip) samples: each request in a batch experienced the batch's
   round-trip latency. *)
let latency_percentile samples p =
  let samples = List.sort compare samples in
  let total = List.fold_left (fun a (_, c) -> a + c) 0 samples in
  if total = 0 then 0.0
  else begin
    let target = max 1 (int_of_float (ceil (p *. float_of_int total))) in
    let rec go acc = function
      | [] -> 0.0
      | (dt, c) :: rest -> if acc + c >= target then dt else go (acc + c) rest
    in
    go 0 samples
  end

type service_run = {
  sr_requests : int;
  sr_seconds : float;
  sr_rps : float;
  sr_p50_ms : float;
  sr_p99_ms : float;
  sr_mismatches : int;
  sr_errors : int;
}

(* One configuration: [clients] threads, each with its own keep-alive
   connection, pulling [batch]-sized windows off a shared cursor into
   the stream until the budget expires.

   [mode] is the replay flavour:
   - [`Hot]: the stream is replayed verbatim, so after the first pass
     every request hits the server's line cache — the fleet regime,
     where many engines compile the same hot functions. Batch bodies
     are pre-encoded once (one per cursor offset), keeping client-side
     serialization off the measured path too.
   - [`Cold]: every replayed request perturbs its feedback hash with
     the replay counter, so every request misses both server caches and
     pays the full JSON parse + DNA parse + sharded query. This is the
     path the shard A/B exercises; the verdict (a function of the DNA
     alone) is unchanged, so the oracle still applies. *)
(* Cheap oracle check without a full JSON parse. [Proto.resp_to_json]
   renders compactly with [id] first and [verdict] second
   ({"id":N,"verdict":"allow",...}), so the measured loop can extract
   both with a linear scan — the full decoder, which would dominate the
   client side of the hot path on a small host, runs only on the warm-up
   round-trip. Verdict kinds are distinguished by their first letter.
   Returns the number of response lines; mismatched or malformed lines
   count into [mismatches]. *)
let scan_oracle ~expected ~mismatches body =
  let n = String.length body in
  let count = ref 0 in
  let pos = ref 0 in
  while !pos < n do
    let eol = match String.index_from_opt body !pos '\n' with
      | Some e -> e
      | None -> n
    in
    if eol > !pos then begin
      incr count;
      let ok =
        let i = !pos in
        if eol - i > 8 && String.sub body i 6 = {|{"id":|} then begin
          let j = ref (i + 6) in
          let neg = body.[!j] = '-' in
          if neg then incr j;
          let id = ref 0 in
          let digits = ref 0 in
          while !j < eol && body.[!j] >= '0' && body.[!j] <= '9' do
            id := (!id * 10) + (Char.code body.[!j] - 48);
            incr digits;
            incr j
          done;
          let id = if neg then - !id else !id in
          let vkey = {|,"verdict":"|} in
          let vl = String.length vkey in
          if !digits > 0 && !j + vl < eol && String.sub body !j vl = vkey then
            match (Hashtbl.find_opt expected id, body.[!j + vl]) with
            | Some `Allow, 'a' -> true
            | Some (`Disable _), 'd' -> true
            | Some `Forbid, 'f' -> true
            | _ -> false
          else false
        end
        else false
      in
      if not ok then Atomic.incr mismatches
    end;
    pos := eol + 1
  done;
  !count

let service_run ~port ~clients ~batch ~budget_s ~mode ~stream ~expected =
  let conns =
    Array.init clients (fun _ -> Http.Conn.connect ~timeout_s:30.0 ~port ())
  in
  let n = Array.length stream in
  (* hot mode: body for the window starting at offset r, encoded once *)
  let hot_bodies =
    match mode with
    | `Cold -> [||]
    | `Hot ->
      Array.init n (fun r ->
          Proto.encode_reqs
            (List.init batch (fun k -> stream.((r + k) mod n))))
  in
  let cursor = Atomic.make 0 in
  let mismatches = Atomic.make 0 in
  let errors = Atomic.make 0 in
  let completed = Atomic.make 0 in
  let lats = Array.make clients [] in
  (* one warm-up round-trip so connection setup and first-touch costs sit
     outside the timed region *)
  (match Client.verdict_roundtrip conns.(0) [ stream.(0) ] with
  | Ok _ -> ()
  | Error msg -> failwith ("service bench warm-up failed: " ^ msg));
  let stop_at = Unix.gettimeofday () +. budget_s in
  let worker i =
    let conn = ref conns.(i) in
    let rec loop acc =
      if Unix.gettimeofday () >= stop_at then acc
      else begin
        let base = Atomic.fetch_and_add cursor batch in
        let body =
          match mode with
          | `Hot -> hot_bodies.(base mod n)
          | `Cold ->
            Proto.encode_reqs
              (List.init batch (fun k ->
                   let r = stream.((base + k) mod n) in
                   { r with
                     Proto.vr_feedback_hash =
                       r.Proto.vr_feedback_hash lxor ((base + k) * 0x9E3779B1)
                   }))
        in
        let t0 = Unix.gettimeofday () in
        match Http.Conn.request !conn ~meth:"POST" ~body "/verdict" with
        | 200, _, rbody ->
          let dt = Unix.gettimeofday () -. t0 in
          let got = scan_oracle ~expected ~mismatches rbody in
          if got <> batch then Atomic.incr mismatches;
          ignore (Atomic.fetch_and_add completed got);
          loop ((dt, got) :: acc)
        | _, _, _ | (exception _) -> (
          (* dead connection (timeout / hang-up): count it, reconnect
             and keep replaying; only an unreachable server stops us *)
          Atomic.incr errors;
          match Http.Conn.connect ~timeout_s:30.0 ~port () with
          | c ->
            (try Http.Conn.close !conn with _ -> ());
            conn := c;
            loop acc
          | exception _ -> acc)
      end
    in
    lats.(i) <- loop [];
    try Http.Conn.close !conn with _ -> ()
  in
  let t_start = Unix.gettimeofday () in
  let threads = Array.init clients (fun i -> Thread.create worker i) in
  Array.iter Thread.join threads;
  let elapsed = Unix.gettimeofday () -. t_start in
  let samples = Array.to_list lats |> List.concat in
  {
    sr_requests = Atomic.get completed;
    sr_seconds = elapsed;
    sr_rps = float_of_int (Atomic.get completed) /. Float.max 1e-9 elapsed;
    sr_p50_ms = latency_percentile samples 0.50 *. 1000.0;
    sr_p99_ms = latency_percentile samples 0.99 *. 1000.0;
    sr_mismatches = Atomic.get mismatches;
    sr_errors = Atomic.get errors;
  }

let service_bench () =
  section "Fleet-scale verdict service: jitbulld throughput (shards x batch x concurrency)";
  let budget_s =
    match Sys.getenv_opt "JITBULL_BENCH_SERVICE_BUDGET_S" with
    | Some s -> (try float_of_string s with _ -> 0.6)
    | None -> 0.6
  in
  let maxc =
    match Sys.getenv_opt "JITBULL_BENCH_SERVICE_MAXC" with
    | Some s -> (try int_of_string s with _ -> 256)
    | None -> 256
  in
  (* long-lived verdict service tuning, mirrored in jitbulld: a larger
     minor heap keeps request-body allocation from forcing frequent
     stop-the-world minor collections across the server domains — on a
     small host those syncs are the dominant latency stragglers *)
  Gc.set { (Gc.get ()) with Gc.minor_heap_size = 4 * 1024 * 1024 };
  let stream, expected = record_stream () in
  let stream_bytes =
    Array.fold_left
      (fun a r -> a + String.length (Proto.encode_reqs [ r ]))
      0 stream
  in
  Printf.printf
    "recorded compile stream: %d requests (%d non-allow verdicts, avg\n\
     request line %d bytes); every response is checked against the\n\
     verdict recorded locally for that stream entry. 'hot' replays the\n\
     stream verbatim (server line-cache hits: the fleet regime); 'cold'\n\
     perturbs each request's feedback hash so every request pays the\n\
     full JSON parse + DNA parse + sharded query.\n\n"
    (Array.length stream)
    (Hashtbl.fold (fun _ v n -> if v <> `Allow then n + 1 else n) expected 0)
    (stream_bytes / max 1 (Array.length stream));
  let cs = List.filter (fun c -> c <= maxc) [ 1; 8; 64; 256 ] in
  let cs = if cs = [] then [ 1 ] else cs in
  (* the acceptance comparison is anchored at C=64 (or the largest
     available concurrency below it when MAXC caps the sweep) *)
  let anchor_c =
    List.fold_left max 1 (List.filter (fun c -> c <= 64) cs)
  in
  let cold_c = min 8 anchor_c in
  (* hot: concurrency sweep at K=8, batch sweep at the anchor
     concurrency; cold: the shard A/B at one moderate configuration *)
  let configs shards =
    List.map (fun c -> (`Hot, shards, c, 8)) cs
    @ [ (`Hot, shards, anchor_c, 1); (`Hot, shards, anchor_c, 32);
        (`Cold, shards, cold_c, 8) ]
  in
  let results = ref [] in
  let mode_name = function `Hot -> "hot" | `Cold -> "cold" in
  (* [workers] sized to the host: extra accept domains on a small
     machine only add stop-the-world GC participants *)
  let workers = max 1 (min 4 (Domain.recommended_domain_count ())) in
  List.iter
    (fun shards ->
      let svc = Service.create ~shards ~workers ~db:(cached_db 8) ~port:0 () in
      Fun.protect ~finally:(fun () -> Service.stop svc) (fun () ->
          List.iter
            (fun (mode, shards, clients, batch) ->
              let r =
                service_run ~port:(Service.port svc) ~clients ~batch ~budget_s
                  ~mode ~stream ~expected
              in
              results := ((mode_name mode, shards, clients, batch), r) :: !results)
            (configs shards)))
    [ 1; 4 ];
  (* the pre-service baseline: unsharded, unbatched, server caches off —
     every request pays full JSON parse + DNA parse + query, as a naive
     verdict server would *)
  (let svc =
     Service.create ~shards:1 ~workers ~server_cache:false ~db:(cached_db 8)
       ~port:0 ()
   in
   Fun.protect ~finally:(fun () -> Service.stop svc) (fun () ->
       let r =
         service_run ~port:(Service.port svc) ~clients:anchor_c ~batch:1
           ~budget_s ~mode:`Hot ~stream ~expected
       in
       results := (("naive", 1, anchor_c, 1), r) :: !results));
  let results = List.rev !results in
  let rows =
    List.map
      (fun ((label, shards, clients, batch), r) ->
        [
          label;
          string_of_int shards;
          string_of_int clients;
          string_of_int batch;
          string_of_int r.sr_requests;
          Printf.sprintf "%.0f" r.sr_rps;
          Printf.sprintf "%.2f" r.sr_p50_ms;
          Printf.sprintf "%.2f" r.sr_p99_ms;
          (if r.sr_mismatches = 0 then "identical"
           else Printf.sprintf "%d DIVERGED!" r.sr_mismatches);
          string_of_int r.sr_errors;
        ])
      results
  in
  Table.print
    ~headers:
      [ "mode"; "shards"; "clients"; "batch"; "requests"; "req/s"; "p50 ms";
        "p99 ms"; "oracle"; "errors" ]
    rows;
  let find key = List.assoc_opt key results in
  let speedup =
    match (find ("hot", 4, anchor_c, 8), find ("naive", 1, anchor_c, 1)) with
    | Some fast, Some base when base.sr_rps > 0.0 -> fast.sr_rps /. base.sr_rps
    | _ -> 0.0
  in
  let batch_only =
    match (find ("hot", 4, anchor_c, 8), find ("hot", 1, anchor_c, 1)) with
    | Some fast, Some base when base.sr_rps > 0.0 -> fast.sr_rps /. base.sr_rps
    | _ -> 0.0
  in
  let cold_ab =
    match (find ("cold", 4, cold_c, 8), find ("cold", 1, cold_c, 8)) with
    | Some s4, Some s1 when s1.sr_rps > 0.0 -> s4.sr_rps /. s1.sr_rps
    | _ -> 0.0
  in
  let total_mismatches =
    List.fold_left (fun a (_, r) -> a + r.sr_mismatches) 0 results
  in
  Printf.printf
    "\nbatched (K=8) + sharded (N=4) + server cache vs the naive baseline\n\
     (unsharded, batch-1, caches off) at C=%d: %.1fx (target: >= 5x)\n\
     batching alone (same server, K=8 N=4 vs K=1 N=1): %.1fx\n\
     cold-path shards 4 vs 1 at C=%d, K=8: %.2fx\n\
     (this host has %d core(s) — parallel shard wins need real cores,\n\
     the batching + server-cache wins do not)\n\
     remote==local oracle: %s\n"
    anchor_c speedup batch_only cold_c cold_ab
    (Domain.recommended_domain_count ())
    (if total_mismatches = 0 then "held on every request"
     else Printf.sprintf "%d MISMATCHES" total_mismatches);
  if total_mismatches <> 0 then failwith "service bench: remote verdicts diverged from local";
  emit "service"
    (Jsonx.Assoc
       [
         ("stream_requests", Jsonx.Int (Array.length stream));
         ("budget_s", Jsonx.Float budget_s);
         ("cores", Jsonx.Int (Domain.recommended_domain_count ()));
         ( "runs",
           Jsonx.List
             (List.map
                (fun ((label, shards, clients, batch), r) ->
                  Jsonx.Assoc
                    [
                      ("mode", Jsonx.String label);
                      ("shards", Jsonx.Int shards);
                      ("clients", Jsonx.Int clients);
                      ("batch", Jsonx.Int batch);
                      ("requests", Jsonx.Int r.sr_requests);
                      ("seconds", Jsonx.Float r.sr_seconds);
                      ("requests_per_sec", Jsonx.Float r.sr_rps);
                      ("p50_ms", Jsonx.Float r.sr_p50_ms);
                      ("p99_ms", Jsonx.Float r.sr_p99_ms);
                      ("mismatches", Jsonx.Int r.sr_mismatches);
                      ("errors", Jsonx.Int r.sr_errors);
                    ])
                results) );
         ("speedup_batched_sharded", Jsonx.Float speedup);
         ("speedup_batch_only", Jsonx.Float batch_only);
         ("cold_shard_speedup", Jsonx.Float cold_ab);
         ("oracle_held", Jsonx.Bool (total_mismatches = 0));
       ])

(* ---- Bechamel micro-benchmarks ---- *)

let bechamel () =
  section "Bechamel micro-benchmarks of the JITBULL machinery";
  (* time the coarse end-to-end number first, before Bechamel's sampling
     data inflates the live heap *)
  let compile_src =
    "function hot(a, b) { var t = 0; for (var i = 0; i < 10; i++) { t = t + a * i - b; } return t; } for (var k = 0; k < 40; k++) hot(k, 2);"
  in
  let t_end_to_end =
    time_best (fun () ->
        ignore
          (Engine.run_source { Engine.default_config with Engine.ion_threshold = 8 } compile_src))
  in
  let open Bechamel in
  (* fixtures: a representative optimized trace and DNA pair *)
  let trace =
    let prog = Jitbull_frontend.Parser.parse W.microbench1.W.source in
    let bc = Jitbull_bytecode.Compiler.compile prog in
    let vm = Jitbull_bytecode.Vm.create bc in
    (try ignore (Jitbull_bytecode.Vm.run vm) with _ -> ());
    let g =
      Jitbull_mir.Builder.build bc.Jitbull_bytecode.Op.funcs.(0)
        ~feedback_row:vm.Jitbull_bytecode.Vm.feedback.(0)
    in
    Jitbull_passes.Pipeline.run VC.none g
  in
  let dna = Dna.extract trace in
  let snapshot = snd (List.hd trace) in
  let depgraph_fixture = Depgraph.build snapshot in
  let tests =
    [
      Test.make ~name:"depgraph build" (Staged.stage (fun () -> Depgraph.build snapshot));
      Test.make ~name:"chains extract" (Staged.stage (fun () -> Chains.extract depgraph_fixture));
      Test.make ~name:"dna extract (18 passes)" (Staged.stage (fun () -> Dna.extract trace));
      Test.make ~name:"comparator (self)"
        (Staged.stage (fun () -> Comparator.matching_passes dna dna));
    ]
  in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
  let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"jitbull" ~fmt:"%s %s" tests) in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let estimate =
          match Analyze.OLS.estimates ols with
          | Some [ e ] -> Printf.sprintf "%12.1f ns/run" e
          | _ -> "n/a"
        in
        [ name; estimate ] :: acc)
      results []
    |> List.sort compare
  in
  Table.print ~headers:[ "micro-benchmark"; "time" ] rows;
  Printf.printf "\nion compile + run (end-to-end, best of 3): %.2f ms\n"
    (t_end_to_end *. 1000.0)

(* ---- native x86-64 Ion tier vs the LIR executor ---- *)

(* Numeric-loop corpus: the shapes the native backend keeps entirely in
   machine code (float arithmetic, int32 bit mixing, compares, branches).
   Each script warms its [work] function past the Ion threshold; the
   measured call then runs a larger argument against installed code. *)
let native_corpus =
  [
    ( "sum_loop",
      "function work(n) { var s = 0; for (var i = 0; i < n; i = i + 1) { s \
       = s + i; } return s; }\n\
       var w = 0;\n\
       for (var k = 0; k < 8; k = k + 1) { w = work(100); }\n\
       print(w);\n",
      300000.0 );
    ( "fib_iter",
      "function work(n) { var a = 0; var b = 1; for (var i = 0; i < n; i = \
       i + 1) { var t = a + b; a = b; b = t; } return a; }\n\
       var w = 0;\n\
       for (var k = 0; k < 8; k = k + 1) { w = work(90); }\n\
       print(w);\n",
      300000.0 );
    ( "bit_mix",
      "function work(n) { var h = 123456789; for (var i = 0; i < n; i = i \
       + 1) { h = h ^ (h << 13); h = h ^ (h >>> 17); h = h ^ (h << 5); h = \
       h & 2147483647; } return h; }\n\
       var w = 0;\n\
       for (var k = 0; k < 8; k = k + 1) { w = work(50); }\n\
       print(w);\n",
      200000.0 );
    ( "newton",
      "function work(n) { var s = 0; for (var i = 1; i < n; i = i + 1) { \
       var x = i; var g = x; g = (g + x / g) * 0.5; g = (g + x / g) * 0.5; \
       g = (g + x / g) * 0.5; s = s + g; } return s; }\n\
       var w = 0;\n\
       for (var k = 0; k < 8; k = k + 1) { w = work(50); }\n\
       print(w);\n",
      150000.0 );
    ( "poly_eval",
      "function work(n) { var s = 0; for (var i = 0; i < n; i = i + 1) { \
       var x = i * 0.001; s = s + (((2.1 * x + 1.3) * x + 0.7) * x + 0.2); \
       } return s; }\n\
       var w = 0;\n\
       for (var k = 0; k < 8; k = k + 1) { w = work(100); }\n\
       print(w);\n",
      200000.0 );
  ]

let native_bench () =
  section "Native x86-64 Ion tier vs the LIR executor";
  let module Vm = Jitbull_bytecode.Vm in
  let module Op = Jitbull_bytecode.Op in
  let module Value = Jitbull_runtime.Value in
  if not (Jitbull_native.Native.enabled ()) then begin
    Printf.printf
      "native backend unavailable here (non-x86-64 host or JITBULL_NO_NATIVE \
       set); nothing to compare.\n";
    emit "native" (Jsonx.Assoc [ ("available", Jsonx.Bool false) ])
  end
  else begin
    Printf.printf
      "Same engine configuration, same scripts; only the Ion tier's backend \
       differs.\nOutputs are asserted byte-equal and the go/no-go verdict \
       counters identical.\n\n";
    (* run the whole script (warmup + Ion compile), then locate [work] *)
    let prep ~native source =
      let config =
        {
          Engine.default_config with
          Engine.baseline_threshold = 2;
          ion_threshold = 4;
          native;
        }
      in
      let out, engine = Engine.run_source config source in
      let vm = Engine.vm engine in
      let idx = ref (-1) in
      Array.iteri
        (fun i (f : Op.func) -> if String.equal f.Op.name "work" then idx := i)
        vm.Vm.program.Op.funcs;
      if !idx < 0 then failwith "native bench: no function named work";
      (out, engine, vm, !idx)
    in
    let json_rows = ref [] in
    let log_ratios = ref [] in
    let rows =
      List.map
        (fun (name, source, arg) ->
          let out_n, eng_n, vm_n, idx_n = prep ~native:true source in
          let out_e, eng_e, vm_e, idx_e = prep ~native:false source in
          if not (String.equal out_n out_e) then
            failwith (Printf.sprintf "native bench: %s outputs diverge" name);
          let sn = Engine.stats eng_n and se = Engine.stats eng_e in
          if
            (sn.Engine.nr_jit, sn.Engine.nr_disjit, sn.Engine.nr_nojit)
            <> (se.Engine.nr_jit, se.Engine.nr_disjit, se.Engine.nr_nojit)
          then failwith (Printf.sprintf "native bench: %s verdicts diverge" name);
          if sn.Engine.native_installs < 1 then
            failwith (Printf.sprintf "native bench: %s never installed native code" name);
          if Engine.tier_of eng_n idx_n <> Engine.Ion then
            failwith (Printf.sprintf "native bench: %s work not Ion-tiered" name);
          let args = [ Value.Number arg ] in
          let r_n = Vm.call_function vm_n idx_n args in
          let r_e = Vm.call_function vm_e idx_e args in
          if not (String.equal (Value.to_display r_n) (Value.to_display r_e))
          then failwith (Printf.sprintf "native bench: %s timed results diverge" name);
          let t_n = time_best (fun () -> ignore (Vm.call_function vm_n idx_n args)) in
          let t_e = time_best (fun () -> ignore (Vm.call_function vm_e idx_e args)) in
          let speedup = t_e /. Float.max 1e-9 t_n in
          log_ratios := log speedup :: !log_ratios;
          json_rows :=
            Jsonx.Assoc
              [
                ("name", Jsonx.String name);
                ("lir_executor_ms", Jsonx.Float (t_e *. 1000.0));
                ("native_ms", Jsonx.Float (t_n *. 1000.0));
                ("speedup", Jsonx.Float speedup);
              ]
            :: !json_rows;
          [
            name;
            Printf.sprintf "%.2f" (t_e *. 1000.0);
            Printf.sprintf "%.2f" (t_n *. 1000.0);
            Printf.sprintf "%.2fx" speedup;
          ])
        native_corpus
    in
    let n = List.length !log_ratios in
    let geomean =
      exp (List.fold_left ( +. ) 0.0 !log_ratios /. float_of_int (max 1 n))
    in
    Table.print
      ~headers:[ "benchmark"; "LIR executor (ms)"; "native (ms)"; "speedup" ]
      rows;
    Printf.printf "\ngeomean speedup: %.2fx (outputs byte-equal, verdicts identical)\n"
      geomean;
    emit "native"
      (Jsonx.Assoc
         [
           ("available", Jsonx.Bool true);
           ("rows", Jsonx.List (List.rev !json_rows));
           ("geomean_speedup", Jsonx.Float geomean);
           ("outputs_byte_equal", Jsonx.Bool true);
           ("verdicts_identical", Jsonx.Bool true);
         ])
  end

(* ---- sampling profiler: overhead A/B and attribution ---- *)

let profile_bench () =
  section "Sampling profiler: overhead (off vs on) and attribution";
  let module Profile = Jitbull_obs.Profile in
  let module Vm = Jitbull_bytecode.Vm in
  let module Op = Jitbull_bytecode.Op in
  let module Value = Jitbull_runtime.Value in
  if not (Profile.available ()) then begin
    Printf.printf
      "sampler unavailable here (needs Linux/x86-64); nothing to measure.\n";
    emit "profile" (Jsonx.Assoc [ ("available", Jsonx.Bool false) ])
  end
  else begin
    Printf.printf
      "The same Ion-tiered numeric workload, measured with sampling off and\n\
       with the 997 Hz SIGPROF sampler armed: the A/B is the profiler's\n\
       whole-run cost, and the attribution split is where its ticks went.\n\n";
    let name, source, arg =
      match native_corpus with e :: _ -> e | [] -> assert false
    in
    let config =
      {
        Engine.default_config with
        Engine.baseline_threshold = 2;
        ion_threshold = 4;
      }
    in
    let _, engine = Engine.run_source config source in
    let vm = Engine.vm engine in
    let idx = ref (-1) in
    Array.iteri
      (fun i (f : Op.func) -> if String.equal f.Op.name "work" then idx := i)
      vm.Vm.program.Op.funcs;
    if !idx < 0 then failwith "profile bench: no function named work";
    let args = [ Value.Number arg ] in
    let call () = ignore (Vm.call_function vm !idx args) in
    (* one untimed run: steady state before either arm *)
    call ();
    (* scale each measured arm to ~0.5 s of CPU so the ON arm collects
       hundreds of ticks at 997 Hz (one call is only ~a millisecond) *)
    let t_once = time_best call in
    let reps = max 20 (int_of_float (0.5 /. Float.max 1e-6 t_once)) in
    let run_arm () =
      let (), dt = time (fun () -> for _ = 1 to reps do call () done) in
      dt /. float_of_int reps
    in
    let t_off = run_arm () in
    Profile.reset ();
    if not (Profile.start ()) then
      failwith "profile bench: sampler failed to arm";
    let t_on = run_arm () in
    Profile.stop ();
    let samples = Profile.total_samples () in
    let attributed = Profile.attributed_fraction () in
    let overhead = (t_on -. t_off) /. Float.max 1e-9 t_off in
    let frames = Profile.report () in
    Table.print ~headers:[ "frame"; "ticks" ]
      (List.map (fun (n, c) -> [ n; string_of_int c ]) frames);
    Printf.printf
      "\n%s: off %.2f ms, on %.2f ms — overhead %+.1f%%\n\
       %d samples, %.1f%% attributed to named frames\n"
      name (t_off *. 1000.0) (t_on *. 1000.0) (100.0 *. overhead) samples
      (100.0 *. attributed);
    emit "profile"
      (Jsonx.Assoc
         [
           ("available", Jsonx.Bool true);
           ("workload", Jsonx.String name);
           ("off_ms", Jsonx.Float (t_off *. 1000.0));
           ("on_ms", Jsonx.Float (t_on *. 1000.0));
           ("overhead_fraction", Jsonx.Float overhead);
           ("samples", Jsonx.Int samples);
           ("attributed_fraction", Jsonx.Float attributed);
           ( "frames",
             Jsonx.Assoc (List.map (fun (n, c) -> (n, Jsonx.Int c)) frames) );
         ])
  end

(* ---- driver ---- *)

let sections_in_order =
  [
    ("table1", table1);
    ("table2", table2);
    ("window", window);
    ("security", security);
    ("fig4", fig4);
    ("fig5", fig5);
    ("fig6", fig6);
    ("fuzz", fuzz_pipeline);
    ("telemetry", telemetry);
    ("ablation", ablation);
    ("overhead", overhead);
    ("concurrency", concurrency);
    ("service", service_bench);
    ("native", native_bench);
    ("profile", profile_bench);
    ("bechamel", bechamel);
  ]

let write_json path command timings =
  let doc =
    Jsonx.Assoc
      [
        ("schema", Jsonx.String "jitbull-bench/1");
        ("command", Jsonx.String command);
        ("unix_time", Jsonx.Float (Unix.time ()));
        ("host", Env_report.to_json ());
        ( "section_seconds",
          Jsonx.Assoc (List.map (fun (name, dt) -> (name, Jsonx.Float dt)) timings) );
        ("sections", Jsonx.Assoc !json_sections);
      ]
  in
  let oc = open_out path in
  output_string oc (Jsonx.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "\nwrote machine-readable results to %s\n" path

let () =
  let rec split cmds json = function
    | "--json" :: path :: rest -> split cmds (Some path) rest
    | "--json" :: [] ->
      Printf.eprintf "--json requires an output path\n";
      exit 1
    | "--audit" :: rest ->
      audit_mode := true;
      split cmds json rest
    | a :: rest -> split (a :: cmds) json rest
    | [] -> (List.rev cmds, json)
  in
  let cmds, json_path = split [] None (List.tl (Array.to_list Sys.argv)) in
  let command = match cmds with [] -> "all" | [ c ] -> c | _ ->
    Printf.eprintf "usage: bench/main.exe [SECTION] [--json OUT] [--audit]\n";
    exit 1
  in
  let chosen =
    if String.equal command "all" then sections_in_order
    else
      match List.assoc_opt command sections_in_order with
      | Some f -> [ (command, f) ]
      | None ->
        Printf.eprintf "unknown command %s (known: %s)\n" command
          (String.concat ", " ("all" :: List.map fst sections_in_order));
        exit 1
  in
  let timings =
    List.map
      (fun (name, f) ->
        let (), dt = time f in
        (name, dt))
      chosen
  in
  match json_path with
  | Some path -> write_json path command timings
  | None -> ()
