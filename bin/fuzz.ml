(* jitbull-fuzz — differential fuzzing and the §IV-A fuzzer-to-database
   pipeline.

     jitbull-fuzz --count 100                        benign differential run
     jitbull-fuzz --aggressive --vuln all --count 50
     jitbull-fuzz --aggressive --vuln all --corpus corpus/ --time-budget 60
                                                     coverage-guided campaign
     jitbull-fuzz --aggressive --vuln all --auto-db out.db --minimize
                                                     harvest + shrink findings
     jitbull-fuzz --il --guided --vuln all           typed-IL mutation mode
     jitbull-fuzz --master --port 9300 --corpus c/   corpus-sync master
     jitbull-fuzz --worker w1 --connect 9300 --il    one sync worker
     jitbull-fuzz --workers 2 --il --vuln all        in-process 2-worker fleet
     jitbull-fuzz --corpus c/ --distill distilled/   coverage-preserving subset

   Exit status is nonzero whenever the campaign ends with un-harvested
   signals: any signal at all without --auto-db, or a signal the freshly
   harvested database fails to neutralize with it — so CI can gate on the
   binary directly. *)

open Cmdliner
module F = Jitbull_fuzz
module VC = Jitbull_passes.Vuln_config
module Engine = Jitbull_jit.Engine
module Compile_queue = Jitbull_jit.Compile_queue
module Db = Jitbull_core.Db
module Jitbull = Jitbull_core.Jitbull

let parse_vulns vuln_names =
  if List.mem "all" vuln_names then VC.make VC.all
  else
    VC.make
      (List.map
         (fun name ->
           match VC.cve_of_name name with
           | Some cve -> cve
           | None -> failwith ("unknown CVE " ^ name))
         vuln_names)

let fast cfg = { cfg with Engine.baseline_threshold = 2; Engine.ion_threshold = 4 }

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc contents)

let print_yields (il_y : F.Harness.yield) (ast_y : F.Harness.yield) =
  if il_y.F.Harness.y_mutants > 0 || ast_y.F.Harness.y_mutants > 0 then
    Printf.printf
      "yield: il %d/%d (%.1f%%)  ast %d/%d (%.1f%%)\n"
      il_y.F.Harness.y_valid il_y.F.Harness.y_mutants
      (100. *. F.Harness.yield_ratio il_y)
      ast_y.F.Harness.y_valid ast_y.F.Harness.y_mutants
      (100. *. F.Harness.yield_ratio ast_y)

(* --distill: minimize the persisted corpus to a coverage-preserving
   subset and commit it (MANIFEST + renumbered entries) to OUT. *)
let run_distill config corpus_dir out =
  match corpus_dir with
  | None -> `Error (false, "--distill requires --corpus DIR (the corpus to minimize)")
  | Some dir ->
    let corpus = F.Corpus.create ~dir () in
    let d = F.Sync.distill ~config (F.Corpus.entries corpus) in
    F.Sync.write_distilled ~dir:out d;
    Printf.printf "distilled %d -> %d entries, %d features preserved -> %s\n"
      d.F.Sync.d_total
      (List.length d.F.Sync.d_entries)
      d.F.Sync.d_features out;
    `Ok ()

(* --master: serve the corpus-sync endpoints until killed (or for
   --serve-seconds, which CI uses). *)
let run_master config corpus_dir port serve_seconds =
  let m = F.Sync.Master.start ~config ?corpus_dir ~port () in
  Printf.printf "master on 127.0.0.1:%d (corpus: %s)\n%!" (F.Sync.Master.port m)
    (match corpus_dir with Some d -> d | None -> "in-memory");
  (match serve_seconds with
  | Some s -> Unix.sleepf s
  | None ->
    let forever = Mutex.create () in
    let never = Condition.create () in
    Mutex.lock forever;
    while true do
      Condition.wait never forever
    done);
  Printf.printf "master: coverage %d, corpus %d, syncs %d\n"
    (F.Sync.Master.coverage_count m)
    (F.Sync.Master.corpus_size m) (F.Sync.Master.syncs m);
  F.Sync.Master.stop m;
  `Ok ()

let print_worker id (r : F.Sync.Worker.result) =
  Printf.printf
    "worker %s: %d rounds, %d execs, coverage %d, corpus %d, uploaded %d, imported %d, signals %d\n"
    id r.F.Sync.Worker.w_rounds r.w_execs r.w_coverage r.w_corpus_size r.w_uploaded
    r.w_imported (List.length r.w_signals);
  print_yields r.w_il_yield r.w_ast_yield;
  match r.w_cve_execs with
  | [] -> ()
  | l ->
    Printf.printf "  attributed: %s\n"
      (String.concat ", "
         (List.map (fun (c, e) -> Printf.sprintf "%s@%d" (VC.cve_name c) e) l))

let run count seed0 aggressive vuln_names auto_db verbose corpus_dir guided minimize
    time_budget jobs il master worker connect port rounds serve_seconds workers
    distill_out =
  let vulns = parse_vulns vuln_names in
  let pool = if jobs > 0 then Some (Compile_queue.create ~jobs ()) else None in
  Fun.protect
    ~finally:(fun () -> Option.iter Compile_queue.shutdown pool)
    (fun () ->
      let config =
        fast { Engine.default_config with Engine.vulns; compile_pool = pool }
      in
      match (distill_out, master, worker) with
      | Some out, _, _ -> run_distill config corpus_dir out
      | None, true, _ -> run_master config corpus_dir port serve_seconds
      | None, false, Some id ->
        let r =
          F.Sync.Worker.run ~config ~il ~rounds ~execs_per_round:count
            ~rng_seed:seed0 ~id ~port:connect ()
        in
        print_worker id r;
        if r.F.Sync.Worker.w_signals = [] then `Ok ()
        else
          `Error
            ( false,
              Printf.sprintf "%d signal%s"
                (List.length r.F.Sync.Worker.w_signals)
                (if List.length r.F.Sync.Worker.w_signals = 1 then "" else "s") )
      | None, false, None when workers > 0 ->
        (* in-process topology: one master + N worker threads *)
        let m = F.Sync.Master.start ~config ?corpus_dir ~port () in
        let results = Array.make workers None in
        let threads =
          List.init workers (fun i ->
              Thread.create
                (fun i ->
                  let id = Printf.sprintf "w%d" (i + 1) in
                  results.(i) <-
                    Some
                      ( id,
                        F.Sync.Worker.run ~config ~il ~rounds ~execs_per_round:count
                          ~rng_seed:(seed0 + i) ~id ~port:(F.Sync.Master.port m) () ))
                i)
        in
        List.iter Thread.join threads;
        let signals = ref [] in
        Array.iter
          (function
            | None -> ()
            | Some (id, r) ->
              print_worker id r;
              signals := !signals @ r.F.Sync.Worker.w_signals)
          results;
        Printf.printf "master: coverage %d, corpus %d, syncs %d\n"
          (F.Sync.Master.coverage_count m)
          (F.Sync.Master.corpus_size m) (F.Sync.Master.syncs m);
        F.Sync.Master.stop m;
        if !signals = [] then `Ok ()
        else
          `Error
            ( false,
              Printf.sprintf "%d signal%s" (List.length !signals)
                (if List.length !signals = 1 then "" else "s") )
      | None, false, None ->
      let use_guided = guided || corpus_dir <> None || il in
      let signals, total =
        if use_guided then begin
          let corpus = F.Corpus.create ?dir:corpus_dir () in
          let seed_sources =
            if aggressive then F.Harness.default_seed_sources ()
            else List.init 8 (fun i -> F.Generator.benign ~seed:(seed0 + i))
          in
          let g =
            F.Harness.guided_campaign ~config ~corpus ~rng_seed:seed0 ?time_budget
              ~seed_sources ~il ~max_execs:count ()
          in
          Printf.printf
            "execs: %d  coverage: %d features  corpus: %d entries  signals: %d  (%.1f execs/s)\n"
            g.F.Harness.g_execs g.F.Harness.g_coverage g.F.Harness.g_corpus_size
            (List.length g.F.Harness.g_signals)
            (float_of_int g.F.Harness.g_execs /. Float.max 1e-9 g.F.Harness.g_seconds);
          print_yields g.F.Harness.g_il_yield g.F.Harness.g_ast_yield;
          (g.F.Harness.g_signals, g.F.Harness.g_execs)
        end
        else begin
          let profile = if aggressive then `Aggressive else `Benign in
          let seeds = List.init count (fun i -> seed0 + i) in
          let report = F.Harness.campaign ~profile ~seeds ~config () in
          Printf.printf "programs: %d  agree: %d  signals: %d\n" report.F.Harness.total
            report.F.Harness.agreements
            (List.length report.F.Harness.signals);
          (report.F.Harness.signals, report.F.Harness.total)
        end
      in
      ignore total;
      List.iter
        (fun (f : F.Harness.finding) ->
          Printf.printf "  %s %-6d %s\n"
            (if use_guided then "exec" else "seed")
            f.F.Harness.seed
            (F.Oracle.verdict_summary f.F.Harness.verdict);
          if verbose then print_string f.F.Harness.source)
        signals;
      let shrink_errors = ref 0 in
      if minimize && signals <> [] then begin
        let crash_dir =
          match corpus_dir with
          | Some d ->
            let dir = Filename.concat d "crashes" in
            if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
            Some dir
          | None -> None
        in
        List.iter
          (fun (f : F.Harness.finding) ->
            let small =
              F.Shrink.shrink_signal ~config ~seed:seed0 ~errors:shrink_errors
                ~verdict:f.F.Harness.verdict f.F.Harness.source
            in
            Printf.printf "  minimized %d: %d -> %d bytes\n" f.F.Harness.seed
              (String.length f.F.Harness.source)
              (String.length small);
            match crash_dir with
            | Some dir -> write_file (Filename.concat dir (Printf.sprintf "min-%06d.js" f.F.Harness.seed)) small
            | None -> if verbose then print_string small)
          signals;
        if !shrink_errors > 0 then
          Printf.eprintf "warning: %d predicate crash%s during shrinking\n"
            !shrink_errors
            (if !shrink_errors = 1 then "" else "es")
      end;
      let unharvested =
        match auto_db with
        | Some path when signals <> [] ->
          let db = if Sys.file_exists path then Db.load path else Db.create () in
          let n = F.Harness.auto_harvest ~vulns ~db signals in
          Db.save db path;
          Printf.printf "auto-harvested %d DNA entries into %s\n" n path;
          (* does the fuzz-fed database actually neutralize what was found? *)
          let protected_cfg = fast (Jitbull.config ~vulns db) in
          F.Harness.unharvested ~config:protected_cfg signals
        | Some path ->
          Printf.printf "no signals; %s unchanged\n" path;
          []
        | None -> signals
      in
      match (unharvested, !shrink_errors) with
      | [], 0 -> `Ok ()
      | [], n ->
        (* the shrinker's oracle predicate crashed: the minimized
           reproducers are untrustworthy — fail the run even though every
           signal was harvested *)
        `Error
          (false, Printf.sprintf "%d predicate crash%s during shrinking" n
                    (if n = 1 then "" else "es"))
      | fs, _ ->
        `Error
          ( false,
            Printf.sprintf "%d un-harvested signal%s" (List.length fs)
              (if List.length fs = 1 then "" else "s") ))

let count =
  Arg.(value & opt int 50 & info [ "count" ] ~docv:"N" ~doc:"Programs to execute.")
let seed0 = Arg.(value & opt int 0 & info [ "seed" ] ~docv:"N" ~doc:"First seed.")
let aggressive =
  Arg.(value & flag & info [ "aggressive" ] ~doc:"Generate exploit-shaped programs.")
let vuln_names =
  Arg.(value & opt_all string [] & info [ "vuln" ] ~docv:"CVE"
       ~doc:"Activate pass bugs ($(b,all) = every modeled CVE).")
let auto_db =
  Arg.(value & opt (some string) None & info [ "auto-db" ] ~docv:"FILE"
       ~doc:"Harvest DNA of every finding into this database (paper §IV-A).")
let verbose = Arg.(value & flag & info [ "verbose" ] ~doc:"Print finding sources.")
let corpus_dir =
  Arg.(value & opt (some string) None & info [ "corpus" ] ~docv:"DIR"
       ~doc:"Coverage-guided mode, corpus persisted to (and reloaded from) $(docv).")
let guided =
  Arg.(value & flag & info [ "guided" ]
       ~doc:"Coverage-guided mode without persistence (implied by $(b,--corpus)).")
let minimize =
  Arg.(value & flag & info [ "minimize" ]
       ~doc:"Delta-debug each finding to a small reproducer (saved under \
             CORPUS/crashes/ when a corpus directory is set).")
let time_budget =
  Arg.(value & opt (some float) None & info [ "time-budget" ] ~docv:"S"
       ~doc:"Stop the guided campaign after $(docv) seconds.")
let jobs =
  Arg.(value & opt int 0 & info [ "jobs" ] ~docv:"N"
       ~doc:"Background-compile the campaign engine with $(docv) helper domains.")
let il =
  Arg.(value & flag & info [ "il" ]
       ~doc:"Typed-IL mutation mode: mutate at the verifier-safe IL level and \
             report the IL-vs-AST mutation yield (implies $(b,--guided)).")
let master =
  Arg.(value & flag & info [ "master" ]
       ~doc:"Serve the corpus-sync master ($(b,/fuzz/*), $(b,/push), $(b,/fleet)) \
             on $(b,--port).")
let worker =
  Arg.(value & opt (some string) None & info [ "worker" ] ~docv:"ID"
       ~doc:"Run one sync worker against the master at $(b,--connect).")
let connect =
  Arg.(value & opt int 9300 & info [ "connect" ] ~docv:"PORT"
       ~doc:"Master port a $(b,--worker) dials.")
let port =
  Arg.(value & opt int 0 & info [ "port" ] ~docv:"PORT"
       ~doc:"Master listen port (0 picks a free one).")
let rounds =
  Arg.(value & opt int 2 & info [ "rounds" ] ~docv:"N"
       ~doc:"Sync rounds per worker (each runs $(b,--count) executions).")
let serve_seconds =
  Arg.(value & opt (some float) None & info [ "serve-seconds" ] ~docv:"S"
       ~doc:"Stop a $(b,--master) after $(docv) seconds (default: run until killed).")
let workers =
  Arg.(value & opt int 0 & info [ "workers" ] ~docv:"N"
       ~doc:"In-process topology: one master plus $(docv) worker threads.")
let distill_out =
  Arg.(value & opt (some string) None & info [ "distill" ] ~docv:"DIR"
       ~doc:"Minimize the $(b,--corpus) directory to a coverage-preserving \
             subset written to $(docv) (MANIFEST + renumbered entries).")

let cmd =
  Cmd.v
    (Cmd.info "jitbull-fuzz" ~doc:"differential fuzzing with auto-harvest into JITBULL")
    Term.(
      ret
        (const run $ count $ seed0 $ aggressive $ vuln_names $ auto_db $ verbose
       $ corpus_dir $ guided $ minimize $ time_budget $ jobs $ il $ master $ worker
       $ connect $ port $ rounds $ serve_seconds $ workers $ distill_out))

let () = exit (Cmd.eval cmd)
