(* jitbull-fuzz — differential fuzzing and the §IV-A fuzzer-to-database
   pipeline.

     jitbull-fuzz --count 100                        benign differential run
     jitbull-fuzz --aggressive --vuln all --count 50
     jitbull-fuzz --aggressive --vuln all --corpus corpus/ --time-budget 60
                                                     coverage-guided campaign
     jitbull-fuzz --aggressive --vuln all --auto-db out.db --minimize
                                                     harvest + shrink findings

   Exit status is nonzero whenever the campaign ends with un-harvested
   signals: any signal at all without --auto-db, or a signal the freshly
   harvested database fails to neutralize with it — so CI can gate on the
   binary directly. *)

open Cmdliner
module F = Jitbull_fuzz
module VC = Jitbull_passes.Vuln_config
module Engine = Jitbull_jit.Engine
module Compile_queue = Jitbull_jit.Compile_queue
module Db = Jitbull_core.Db
module Jitbull = Jitbull_core.Jitbull

let parse_vulns vuln_names =
  if List.mem "all" vuln_names then VC.make VC.all
  else
    VC.make
      (List.map
         (fun name ->
           match VC.cve_of_name name with
           | Some cve -> cve
           | None -> failwith ("unknown CVE " ^ name))
         vuln_names)

let fast cfg = { cfg with Engine.baseline_threshold = 2; Engine.ion_threshold = 4 }

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc contents)

let run count seed0 aggressive vuln_names auto_db verbose corpus_dir guided minimize
    time_budget jobs =
  let vulns = parse_vulns vuln_names in
  let pool = if jobs > 0 then Some (Compile_queue.create ~jobs ()) else None in
  Fun.protect
    ~finally:(fun () -> Option.iter Compile_queue.shutdown pool)
    (fun () ->
      let config =
        fast { Engine.default_config with Engine.vulns; compile_pool = pool }
      in
      let use_guided = guided || corpus_dir <> None in
      let signals, total =
        if use_guided then begin
          let corpus = F.Corpus.create ?dir:corpus_dir () in
          let seed_sources =
            if aggressive then F.Harness.default_seed_sources ()
            else List.init 8 (fun i -> F.Generator.benign ~seed:(seed0 + i))
          in
          let g =
            F.Harness.guided_campaign ~config ~corpus ~rng_seed:seed0 ?time_budget
              ~seed_sources ~max_execs:count ()
          in
          Printf.printf
            "execs: %d  coverage: %d features  corpus: %d entries  signals: %d  (%.1f execs/s)\n"
            g.F.Harness.g_execs g.F.Harness.g_coverage g.F.Harness.g_corpus_size
            (List.length g.F.Harness.g_signals)
            (float_of_int g.F.Harness.g_execs /. Float.max 1e-9 g.F.Harness.g_seconds);
          (g.F.Harness.g_signals, g.F.Harness.g_execs)
        end
        else begin
          let profile = if aggressive then `Aggressive else `Benign in
          let seeds = List.init count (fun i -> seed0 + i) in
          let report = F.Harness.campaign ~profile ~seeds ~config () in
          Printf.printf "programs: %d  agree: %d  signals: %d\n" report.F.Harness.total
            report.F.Harness.agreements
            (List.length report.F.Harness.signals);
          (report.F.Harness.signals, report.F.Harness.total)
        end
      in
      ignore total;
      List.iter
        (fun (f : F.Harness.finding) ->
          Printf.printf "  %s %-6d %s\n"
            (if use_guided then "exec" else "seed")
            f.F.Harness.seed
            (F.Oracle.verdict_summary f.F.Harness.verdict);
          if verbose then print_string f.F.Harness.source)
        signals;
      if minimize && signals <> [] then begin
        let crash_dir =
          match corpus_dir with
          | Some d ->
            let dir = Filename.concat d "crashes" in
            if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
            Some dir
          | None -> None
        in
        List.iter
          (fun (f : F.Harness.finding) ->
            let small =
              F.Shrink.shrink_signal ~config ~verdict:f.F.Harness.verdict
                f.F.Harness.source
            in
            Printf.printf "  minimized %d: %d -> %d bytes\n" f.F.Harness.seed
              (String.length f.F.Harness.source)
              (String.length small);
            match crash_dir with
            | Some dir -> write_file (Filename.concat dir (Printf.sprintf "min-%06d.js" f.F.Harness.seed)) small
            | None -> if verbose then print_string small)
          signals
      end;
      let unharvested =
        match auto_db with
        | Some path when signals <> [] ->
          let db = if Sys.file_exists path then Db.load path else Db.create () in
          let n = F.Harness.auto_harvest ~vulns ~db signals in
          Db.save db path;
          Printf.printf "auto-harvested %d DNA entries into %s\n" n path;
          (* does the fuzz-fed database actually neutralize what was found? *)
          let protected_cfg = fast (Jitbull.config ~vulns db) in
          F.Harness.unharvested ~config:protected_cfg signals
        | Some path ->
          Printf.printf "no signals; %s unchanged\n" path;
          []
        | None -> signals
      in
      match unharvested with
      | [] -> `Ok ()
      | fs ->
        `Error
          ( false,
            Printf.sprintf "%d un-harvested signal%s" (List.length fs)
              (if List.length fs = 1 then "" else "s") ))

let count =
  Arg.(value & opt int 50 & info [ "count" ] ~docv:"N" ~doc:"Programs to execute.")
let seed0 = Arg.(value & opt int 0 & info [ "seed" ] ~docv:"N" ~doc:"First seed.")
let aggressive =
  Arg.(value & flag & info [ "aggressive" ] ~doc:"Generate exploit-shaped programs.")
let vuln_names =
  Arg.(value & opt_all string [] & info [ "vuln" ] ~docv:"CVE"
       ~doc:"Activate pass bugs ($(b,all) = every modeled CVE).")
let auto_db =
  Arg.(value & opt (some string) None & info [ "auto-db" ] ~docv:"FILE"
       ~doc:"Harvest DNA of every finding into this database (paper §IV-A).")
let verbose = Arg.(value & flag & info [ "verbose" ] ~doc:"Print finding sources.")
let corpus_dir =
  Arg.(value & opt (some string) None & info [ "corpus" ] ~docv:"DIR"
       ~doc:"Coverage-guided mode, corpus persisted to (and reloaded from) $(docv).")
let guided =
  Arg.(value & flag & info [ "guided" ]
       ~doc:"Coverage-guided mode without persistence (implied by $(b,--corpus)).")
let minimize =
  Arg.(value & flag & info [ "minimize" ]
       ~doc:"Delta-debug each finding to a small reproducer (saved under \
             CORPUS/crashes/ when a corpus directory is set).")
let time_budget =
  Arg.(value & opt (some float) None & info [ "time-budget" ] ~docv:"S"
       ~doc:"Stop the guided campaign after $(docv) seconds.")
let jobs =
  Arg.(value & opt int 0 & info [ "jobs" ] ~docv:"N"
       ~doc:"Background-compile the campaign engine with $(docv) helper domains.")

let cmd =
  Cmd.v
    (Cmd.info "jitbull-fuzz" ~doc:"differential fuzzing with auto-harvest into JITBULL")
    Term.(
      ret
        (const run $ count $ seed0 $ aggressive $ vuln_names $ auto_db $ verbose
       $ corpus_dir $ guided $ minimize $ time_budget $ jobs))

let () = exit (Cmd.eval cmd)
