(* jitbull-db — manage a JITBULL DNA-vector database.

     jitbull-db harvest --cve CVE-2019-17026 --db out.db exploit.js
     jitbull-db harvest --cve ... --vuln CVE-... --db out.db exploit.js
     jitbull-db list --db out.db
     jitbull-db show --db out.db --cve CVE-2019-17026
     jitbull-db remove --cve CVE-2019-17026 --db out.db     (patch applied)
     jitbull-db builtin --db out.db CVE-2019-17026 ...      (bundled VDCs)
     jitbull-db explain audit.jsonl                          (offline reports)
     jitbull-db explain --func tri --all audit.jsonl *)

open Cmdliner
module Db = Jitbull_core.Db
module Dna = Jitbull_core.Dna
module VC = Jitbull_passes.Vuln_config
module V = Jitbull_vdc.Demonstrators
module Audit = Jitbull_obs.Audit
module Explain = Jitbull_obs.Explain
module Jsonx = Jitbull_obs.Jsonx
module Pipeline = Jitbull_passes.Pipeline

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let load_or_create path = if Sys.file_exists path then Db.load path else Db.create ()

let parse_cves names =
  List.map
    (fun name ->
      match VC.cve_of_name name with
      | Some cve -> cve
      | None -> failwith ("unknown CVE " ^ name))
    names

(* harvest *)
let harvest cve vuln_names db_path script =
  let vulns =
    match vuln_names with
    | [] -> (
      (* default: if the CVE is one of the modeled ones, activate its bug *)
      match VC.cve_of_name cve with
      | Some c -> VC.make [ c ]
      | None -> VC.none)
    | names -> VC.make (parse_cves names)
  in
  let db = load_or_create db_path in
  let n = Db.harvest db ~cve ~vulns (read_file script) in
  Db.save db db_path;
  Printf.printf "harvested %d DNA vector(s) for %s into %s\n" n cve db_path;
  `Ok ()

let list_cmd db_path =
  let db = Db.load db_path in
  List.iter
    (fun (e : Db.entry) ->
      Printf.printf "%-18s function %-16s non-empty passes: %s\n" e.Db.cve
        e.Db.dna.Dna.func_name
        (String.concat ", " (Dna.nonempty_passes e.Db.dna)))
    (Db.entries db);
  Printf.printf "%d entries, %d distinct CVEs\n" (List.length (Db.entries db))
    (List.length (Db.cves db));
  `Ok ()

let show db_path cve =
  let db = Db.load db_path in
  List.iter
    (fun (e : Db.entry) ->
      if String.equal e.Db.cve cve then print_string (Dna.to_string e.Db.dna))
    (Db.entries db);
  `Ok ()

let remove db_path cve =
  let db = Db.load db_path in
  let before = List.length (Db.entries db) in
  Db.remove_cve db cve;
  Db.save db db_path;
  Printf.printf "removed %d entries for %s (patch applied)\n"
    (before - List.length (Db.entries db))
    cve;
  `Ok ()

let builtin db_path cves =
  let db = load_or_create db_path in
  let targets = if cves = [] then VC.all else parse_cves cves in
  List.iter
    (fun cve ->
      let d = V.find cve in
      let n = Db.harvest db ~cve:d.V.name ~vulns:(VC.make [ cve ]) d.V.source in
      Printf.printf "harvested %d DNA vector(s) for %s (bundled demonstrator)\n" n d.V.name)
    targets;
  Db.save db db_path;
  `Ok ()

(* explain: offline causal reports from a --audit-file JSONL trail.
   Cache-hit decisions replay the stored evidence of the fresh record
   they were copied from, exactly like the live /explain endpoint; the
   per-pass IR diff sections are live-only (the diff ring is in-memory)
   and render as "not captured" here. *)
let explain_cmd audit_path func all =
  let records = ref [] in
  let ic = open_in audit_path in
  (try
     let lineno = ref 0 in
     while true do
       let line = input_line ic in
       incr lineno;
       if String.trim line <> "" then
         match Audit.record_of_json (Jsonx.parse line) with
         | r -> records := r :: !records
         | exception Jsonx.Parse_error msg ->
           failwith (Printf.sprintf "%s:%d: %s" audit_path !lineno msg)
     done
   with End_of_file -> close_in ic);
  let records = List.rev !records in
  let interesting (r : Audit.record) =
    (match func with Some f -> String.equal r.Audit.func_name f | None -> true)
    && (all || r.Audit.matches <> [] || r.Audit.verdict <> Audit.Allow)
  in
  let selected = List.filter interesting records in
  Printf.printf "%d of %d decisions in %s\n" (List.length selected)
    (List.length records) audit_path;
  List.iter
    (fun r ->
      let e = Explain.resolve ~history:records r in
      print_string (Explain.to_text ~can_disable:Pipeline.can_disable e);
      print_newline ())
    selected;
  `Ok ()

let db_arg =
  Arg.(required & opt (some string) None & info [ "db" ] ~docv:"FILE" ~doc:"Database file.")

let cve_arg =
  Arg.(required & opt (some string) None & info [ "cve" ] ~docv:"CVE" ~doc:"CVE identifier.")

let vulns_arg =
  Arg.(value & opt_all string [] & info [ "vuln" ] ~docv:"CVE"
       ~doc:"Pass bug(s) to activate while harvesting (default: the CVE itself when modeled).")

let script_arg =
  Arg.(required & pos 0 (some non_dir_file) None & info [] ~docv:"SCRIPT"
       ~doc:"Demonstrator script.")

let cves_pos =
  Arg.(value & pos_all string [] & info [] ~docv:"CVE" ~doc:"CVEs to install (default: all 8).")

let cmds =
  [
    Cmd.v (Cmd.info "harvest" ~doc:"extract a demonstrator's DNA into the database")
      Term.(ret (const harvest $ cve_arg $ vulns_arg $ db_arg $ script_arg));
    Cmd.v (Cmd.info "list" ~doc:"list database entries")
      Term.(ret (const list_cmd $ db_arg));
    Cmd.v (Cmd.info "show" ~doc:"dump the DNA vectors of one CVE")
      Term.(ret (const show $ db_arg $ cve_arg));
    Cmd.v (Cmd.info "remove" ~doc:"drop a CVE's entries (the patch was applied)")
      Term.(ret (const remove $ db_arg $ cve_arg));
    Cmd.v (Cmd.info "builtin" ~doc:"install bundled demonstrators' DNA")
      Term.(ret (const builtin $ db_arg $ cves_pos));
    (let audit_pos =
       Arg.(required & pos 0 (some non_dir_file) None
            & info [] ~docv:"AUDIT" ~doc:"Audit trail (JSON lines, from jsrun --audit-file).")
     in
     let func_arg =
       Arg.(value & opt (some string) None
            & info [ "func" ] ~docv:"NAME" ~doc:"Only explain decisions for this function.")
     in
     let all_arg =
       Arg.(value & flag
            & info [ "all" ]
                ~doc:"Explain every decision, including clean allows (default: \
                      only decisions that matched a CVE or restricted JIT).")
     in
     Cmd.v
       (Cmd.info "explain"
          ~doc:"render causal go/no-go reports from an audit trail")
       Term.(ret (const explain_cmd $ audit_pos $ func_arg $ all_arg)));
  ]

let () =
  exit (Cmd.eval (Cmd.group (Cmd.info "jitbull-db" ~doc:"manage JITBULL DNA databases") cmds))
