(* jitbulld — the fleet-scale go/no-go verdict daemon.

     jitbulld --db jitbull.db                serve an existing database
     jitbulld --builtin                      self-harvest the bundled VDCs' DNA
     jitbulld --port 7433 ...                fixed port (default 0: pick + print)
     jitbulld --shards 8 --workers 8 ...     index shards / server domains
     jitbulld --hold 30 ...                  exit after SECONDS (CI smoke)
     jitbulld --thr 4 --ratio 0.5 ...        comparator thresholds

     jitbulld --audit-file out.jsonl ...     server-side decision trail
     jitbulld --audit-rotate-bytes N ...     rotate it after N bytes

   Serves POST /verdict (JSONL batches), GET /subscribe (generation long
   poll), GET /delta (replica catch-up), GET /warm (hottest verdicts),
   POST /install, POST /remove, POST /push + GET /fleet (fleet
   telemetry) — plus the observability routes (/metrics, /healthz,
   /audit, /explain, /profile) from the same listener. *)

open Cmdliner
module Db = Jitbull_core.Db
module Comparator = Jitbull_core.Comparator
module VC = Jitbull_passes.Vuln_config
module V = Jitbull_vdc.Demonstrators
module Obs = Jitbull_obs.Obs
module Service = Jitbull_service.Service

let setup_logging ~quiet ~verbose =
  Logs.set_reporter (Logs.format_reporter ());
  let level =
    if quiet then Logs.Error
    else if verbose >= 2 then Logs.Debug
    else if verbose = 1 then Logs.Info
    else Logs.Warning
  in
  Logs.set_level (Some level)

(* Without --db, self-harvest: run every bundled demonstrator with its
   pass bug active and install the harvested DNA. A freshly started
   daemon is then immediately useful (and CI needs no fixture file). *)
let harvested_db () =
  let db = Db.create () in
  List.iter
    (fun cve ->
      let d = V.find cve in
      let n = Db.harvest db ~cve:d.V.name ~vulns:(VC.make [ cve ]) d.V.source in
      Logs.info (fun m -> m "harvested %d DNA vector(s) for %s" n d.V.name))
    VC.all;
  db

let run port shards workers db_path builtin hold thr ratio no_cache audit_file
    audit_rotate_bytes quiet verbose =
  setup_logging ~quiet ~verbose:(List.length verbose);
  (* Long-lived server: a larger minor heap keeps per-request body
     allocation from forcing frequent stop-the-world minor collections
     across the worker domains. *)
  Gc.set { (Gc.get ()) with Gc.minor_heap_size = 4 * 1024 * 1024 };
  let db =
    match (db_path, builtin) with
    | Some path, _ -> Db.load path
    | None, true -> harvested_db ()
    | None, false ->
      failwith "no database: pass --db FILE or --builtin to self-harvest"
  in
  let params = { Comparator.thr; ratio } in
  let obs = Obs.create () in
  (match audit_file with
  | Some path -> Obs.set_audit_file obs ?max_bytes:audit_rotate_bytes path
  | None -> ());
  let t =
    Service.create ~params ~shards ~workers ~obs ~server_cache:(not no_cache)
      ~db ~port ()
  in
  (* CI smoke parses this line to find the port; keep the format stable *)
  Printf.printf "jitbulld listening on 127.0.0.1:%d (%d entries, %d shards, %d workers)\n%!"
    (Service.port t)
    (List.length (Db.entries db))
    shards workers;
  let finish () =
    Service.stop t;
    Obs.close (Some obs)
  in
  Fun.protect ~finally:finish (fun () ->
      if hold > 0.0 then Unix.sleepf hold
      else
        (* serve until killed *)
        while true do
          Unix.sleepf 3600.0
        done);
  `Ok ()

let port =
  Arg.(value & opt int 0
       & info [ "port"; "p" ] ~docv:"PORT"
           ~doc:"Listen on 127.0.0.1:$(docv). 0 picks a free port (printed \
                 on stdout).")

let shards =
  Arg.(value & opt int 4
       & info [ "shards" ] ~docv:"N"
           ~doc:"Shard the sub-chain postings index across $(docv) \
                 per-shard-locked partitions (scatter/gather queries).")

let workers =
  Arg.(value & opt int 4
       & info [ "workers" ] ~docv:"N"
           ~doc:"Accept/serve domains sharing the listening socket. Each \
                 long-poll subscriber occupies one for the duration of its \
                 wait; size to shards + expected subscribers.")

let db_path =
  Arg.(value & opt (some non_dir_file) None
       & info [ "db" ] ~docv:"FILE" ~doc:"DNA database to serve.")

let builtin =
  Arg.(value & flag
       & info [ "builtin" ]
           ~doc:"Without --db: self-harvest the bundled vulnerability \
                 demonstrators' DNA at startup and serve that.")

let hold =
  Arg.(value & opt float 0.0
       & info [ "hold" ] ~docv:"SECONDS"
           ~doc:"Exit cleanly after $(docv) seconds (CI smoke jobs). \
                 Default 0: serve until killed.")

let thr =
  Arg.(value & opt int Comparator.default_params.Comparator.thr
       & info [ "thr" ] ~docv:"N" ~doc:"EqChains match threshold.")

let ratio =
  Arg.(value & opt float Comparator.default_params.Comparator.ratio
       & info [ "ratio" ] ~docv:"R" ~doc:"MaxEqChains ratio threshold.")

let no_cache =
  Arg.(value & flag
       & info [ "no-server-cache" ]
           ~doc:"Disable the server-side verdict caches; every request \
                 pays the full parse + sharded query (A/B baseline).")

let audit_file =
  Arg.(value & opt (some string) None
       & info [ "audit-file" ] ~docv:"FILE"
           ~doc:"Stream the server-side go/no-go audit trail (one JSON \
                 record per decision, stamped with the requesting client's \
                 id and remote span when the request carried them) to \
                 $(docv) as JSON lines.")

let audit_rotate_bytes =
  Arg.(value & opt (some int) None
       & info [ "audit-rotate-bytes" ] ~docv:"N"
           ~doc:"With --audit-file: rotate the sink to FILE.1 once it \
                 exceeds $(docv) bytes (bounds disk use at roughly twice \
                 $(docv)).")

let quiet =
  Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"Only log errors.")

let verbose =
  Arg.(value & flag_all
       & info [ "v"; "verbose" ] ~doc:"Increase log verbosity. Repeatable.")

let cmd =
  let doc = "serve go/no-go verdicts and DNA-DB deltas to a fleet of engines" in
  Cmd.v
    (Cmd.info "jitbulld" ~doc)
    Term.(ret (const run $ port $ shards $ workers $ db_path $ builtin $ hold
               $ thr $ ratio $ no_cache $ audit_file $ audit_rotate_bytes
               $ quiet $ verbose))

let () = exit (Cmd.eval cmd)
