(* jsrun — run a mini-JS script on the tiered engine.

     jsrun script.js                    full JIT
     jsrun --no-jit script.js           interpreter tier only (paper's NoJIT)
     jsrun --interp script.js           reference tree-walking interpreter
     jsrun --vuln CVE-2019-17026 ...    activate an injected pass bug
     jsrun --db jitbull.db ...          enable JITBULL with this database
     jsrun --verdict-server ADDR ...    ask a jitbulld daemon instead of a
                                        local DB (ADDR = PORT or HOST:PORT,
                                        loopback only)
     jsrun --stats ...                  print engine statistics afterwards
     jsrun --metrics[=FILE] ...         telemetry snapshot at exit
     jsrun --trace-file out.jsonl ...   structured event trace (JSON lines)
     jsrun --naive-comparator ...       fold over every DB entry (A/B reference)
     jsrun --no-policy-cache ...        re-analyze DNA on every Ion compile
     jsrun --jobs N ...                 N helper domains for background Ion compiles
     jsrun --sync-compile ...           force on-main-thread compilation (= --jobs 0)
     jsrun --native / --no-native       x86-64 machine code for the Ion tier
                                        (default on; falls back to the LIR
                                        executor off x86-64 or under
                                        JITBULL_NO_NATIVE=1)
     jsrun --audit-file out.jsonl ...   go/no-go decision audit trail (JSON lines)
     jsrun --audit-rotate-bytes N ...   rotate the audit sink once it exceeds N bytes
     jsrun --push SECONDS ...           with --verdict-server: push telemetry
                                        snapshots + audit deltas to the daemon
                                        every SECONDS (and once at exit)
     jsrun --client-id NAME ...         fleet label on pushes and verdict requests
     jsrun --profile[=FILE] ...         CPU sampling profile (SIGPROF, Linux/x86-64);
                                        collapsed stacks to FILE or stderr at exit
     jsrun --explain[=FUNC] ...         capture per-pass IR diffs; print causal
                                        go/no-go reports at exit (all flagged
                                        decisions, or just FUNC's)
     jsrun --explain-capacity K ...     keep the last K compiles' IR diffs
     jsrun --serve-metrics PORT ...     live HTTP /metrics + /healthz + /audit + /explain
     jsrun --serve-hold SECONDS ...     keep serving after the script finishes
     jsrun --quiet / -v ...             verbosity control (errors only / info / -vv debug) *)

open Cmdliner
module Engine = Jitbull_jit.Engine
module Compile_queue = Jitbull_jit.Compile_queue
module Interp = Jitbull_interp.Interp
module Realm = Jitbull_runtime.Realm
module Errors = Jitbull_runtime.Errors
module VC = Jitbull_passes.Vuln_config
module Db = Jitbull_core.Db
module Jitbull = Jitbull_core.Jitbull
module Obs = Jitbull_obs.Obs
module Metrics = Jitbull_obs.Metrics
module Report = Jitbull_obs.Report
module Jsonx = Jitbull_obs.Jsonx
module Audit = Jitbull_obs.Audit
module Explain = Jitbull_obs.Explain
module Profile = Jitbull_obs.Profile
module Pipeline = Jitbull_passes.Pipeline
module Table = Jitbull_util.Text_table
module Client = Jitbull_service.Client

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* A reporter is always installed so the engine's warnings and errors are
   never silently dropped. Default level Warning; --quiet drops to Error,
   -v raises to Info, -vv (or the legacy --trace) to Debug. *)
let setup_logging ~quiet ~verbose trace =
  Logs.set_reporter (Logs.format_reporter ());
  let level =
    if quiet then Logs.Error
    else if trace || verbose >= 2 then Logs.Debug
    else if verbose = 1 then Logs.Info
    else Logs.Warning
  in
  Logs.set_level (Some level)

let has_suffix suf s =
  let ls = String.length suf and l = String.length s in
  l >= ls && String.equal (String.sub s (l - ls) ls) suf

(* Dump the metrics snapshot: the per-pass compile profile as a table on
   stderr, then the registry itself — Prometheus text by default, JSON
   when the destination ends in .json, stderr when it is "-". *)
let report_metrics obs dest =
  let view = Obs.view obs in
  let headers, rows = Report.pass_profile view in
  if rows <> [] then begin
    Printf.eprintf "-- per-pass compile profile --\n";
    prerr_string (Table.render ~headers rows);
    prerr_newline ()
  end;
  let as_json = has_suffix ".json" dest in
  let body =
    if as_json then Jsonx.to_string (Metrics.view_to_json view) ^ "\n"
    else Metrics.render_prometheus view
  in
  if String.equal dest "-" then begin
    Printf.eprintf "-- metrics --\n";
    prerr_string body
  end
  else begin
    let oc = open_out dest in
    output_string oc body;
    close_out oc
  end

(* Print a causal report per flagged decision: all non-allow verdicts and
   allow-with-matches (an empty filter), or every decision of one
   function. *)
let report_explanations obs ~filter =
  match obs with
  | None -> ()
  | Some o ->
    let records = Audit.records (Obs.audit o) in
    let interesting (r : Audit.record) =
      match filter with
      | "" -> r.Audit.matches <> [] || r.Audit.verdict <> Audit.Allow
      | f -> String.equal r.Audit.func_name f
    in
    let selected = List.filter interesting records in
    Printf.eprintf "-- go/no-go explanations (%d of %d decisions) --\n"
      (List.length selected) (List.length records);
    if selected = [] then
      Printf.eprintf "(nothing to explain%s)\n"
        (if filter = "" then " - every decision was a clean allow"
         else ": no decision for function " ^ filter);
    List.iter
      (fun r ->
        let e = Explain.resolve ?irdiff:(Obs.irdiff o) ~history:records r in
        prerr_string (Explain.to_text ~can_disable:Pipeline.can_disable e);
        prerr_newline ())
      selected;
    (* the process may be killed during --serve-hold; don't leave the
       report in the channel buffer *)
    flush stderr

(* --verdict-server accepts a bare port or HOST:PORT; the daemon binds
   loopback only, so reject anything else early with a clear message. *)
let parse_verdict_server addr =
  let port_str =
    match String.rindex_opt addr ':' with
    | Some i ->
      let host = String.sub addr 0 i in
      if host <> "" && host <> "127.0.0.1" && host <> "localhost" then
        failwith ("verdict server must be loopback (127.0.0.1), got " ^ host);
      String.sub addr (i + 1) (String.length addr - i - 1)
    | None -> addr
  in
  match int_of_string_opt port_str with
  | Some p when p > 0 && p < 65536 -> p
  | _ -> failwith ("bad --verdict-server address: " ^ addr)

let run file no_jit use_interp vuln_names db_path verdict_server push_interval
    client_id stats ion_threshold seed trace metrics
    trace_file audit_file audit_rotate_bytes explain explain_capacity
    serve_metrics serve_hold profile
    naive_comparator no_policy_cache jobs sync_compile native quiet verbose =
  setup_logging ~quiet ~verbose:(List.length verbose) trace;
  let source = read_file file in
  let vulns =
    List.map
      (fun name ->
        match VC.cve_of_name name with
        | Some cve -> cve
        | None -> failwith (Printf.sprintf "unknown CVE %s (known: %s)" name
                              (String.concat ", " (List.map VC.cve_name VC.all))))
      vuln_names
  in
  let vulns = VC.make vulns in
  let realm = Realm.create ~seed ~echo:true () in
  try
    let obs =
      (* --push counts: a telemetry pusher with nothing to push would be
         an empty fleet series *)
      match
        (metrics, trace_file, audit_file, serve_metrics, explain,
         push_interval)
      with
      | None, None, None, None, None, None -> None
      | _ ->
        let explain_capacity =
          match explain with Some _ -> Some explain_capacity | None -> None
        in
        let o = Obs.create ?explain_capacity () in
        (match trace_file with
        | Some path -> Obs.set_trace_file o path
        | None -> ());
        (match audit_file with
        | Some path ->
          Obs.set_audit_file o ?max_bytes:audit_rotate_bytes path
        | None -> ());
        Some o
    in
    (match profile with
    | Some _ ->
      if not (Profile.start ()) then
        Logs.warn (fun m ->
            m "--profile: sampling unsupported on this platform (need \
               Linux/x86-64); the profile will be empty")
    | None -> ());
    if push_interval <> None && verdict_server = None then
      Logs.warn (fun m -> m "--push has no effect without --verdict-server");
    let server =
      match (serve_metrics, obs) with
      | Some port, Some o ->
        let s =
          Jitbull_obs.Http_export.start ~can_disable:Pipeline.can_disable ~obs:o
            ~port ()
        in
        Printf.eprintf
          "serving /metrics /healthz /audit /explain on 127.0.0.1:%d\n%!"
          (Jitbull_obs.Http_export.port s);
        Some s
      | _ -> None
    in
    let jobs =
      if sync_compile then 0
      else match jobs with Some n -> max 0 n | None -> Compile_queue.default_jobs ()
    in
    let pool = if jobs > 0 then Some (Compile_queue.create ~jobs ()) else None in
    let remote = ref None in
    let finish () =
      (* stop sampling before teardown so shutdown work isn't profiled *)
      (match profile with
      | Some dest ->
        Profile.stop ();
        Printf.eprintf "-- profile: %d samples, %.1f%% attributed --\n"
          (Profile.total_samples ())
          (100.0 *. Profile.attributed_fraction ());
        let body = Profile.collapsed () in
        if String.equal dest "-" then prerr_string body
        else begin
          let oc = open_out dest in
          output_string oc body;
          close_out oc
        end
      | None -> ());
      (match !remote with Some c -> Client.close c | None -> ());
      (match pool with Some p -> Compile_queue.shutdown p | None -> ());
      (match explain with
      | Some filter -> report_explanations obs ~filter
      | None -> ());
      (match metrics with
      | Some dest -> report_metrics obs dest
      | None -> ());
      (* hold the scrape endpoint open (CI smoke, manual curl) before
         tearing it down *)
      (match server with
      | Some s ->
        if serve_hold > 0.0 then Unix.sleepf serve_hold;
        Jitbull_obs.Http_export.stop s
      | None -> ());
      Obs.close obs
    in
    Fun.protect ~finally:finish (fun () ->
        if use_interp then begin
          ignore (Interp.run_source ~realm source);
          `Ok ()
        end
        else begin
          let config =
            match (verdict_server, db_path) with
            | Some addr, _ ->
              if db_path <> None then
                Logs.warn (fun m ->
                    m "--verdict-server overrides --db: verdicts come from \
                       the daemon (its DB syncs into the fallback replica)");
              let port = parse_verdict_server addr in
              let client =
                Client.connect ?obs ?client_id
                  ?push_interval_s:push_interval ~port ()
              in
              remote := Some client;
              let c = Client.engine_config client ~vulns () in
              {
                c with
                Engine.jit_enabled = not no_jit;
                ion_threshold;
                native;
                compile_pool = pool;
                policy_cache = (if no_policy_cache then None else c.Engine.policy_cache);
              }
            | None, Some path ->
              let db = Db.load path in
              let comparator = if naive_comparator then `Naive else `Indexed in
              let c =
                Jitbull.config ?obs ?compile_pool:pool ~comparator
                  ~policy_cache:(not no_policy_cache) ~vulns db
              in
              { c with Engine.jit_enabled = not no_jit; ion_threshold; native }
            | None, None ->
              { Engine.default_config with Engine.vulns; jit_enabled = not no_jit;
                ion_threshold; native; obs; compile_pool = pool }
          in
          let _, engine = Engine.run_source ~realm config source in
          if stats then begin
            let s = Engine.stats engine in
            Printf.eprintf
              "-- engine statistics --\n\
               baseline compiles: %d\nion compiles:      %d\n\
               Nr_JIT: %d  Nr_DisJIT: %d  Nr_NoJIT: %d\n\
               bailouts: %d  deopts: %d\n"
              s.Engine.baseline_compiles s.Engine.ion_compiles s.Engine.nr_jit
              s.Engine.nr_disjit s.Engine.nr_nojit s.Engine.bailouts s.Engine.deopts;
            Printf.eprintf "native installs:   %d\n" s.Engine.native_installs;
            if jobs > 0 then
              Printf.eprintf
                "compile jobs: %d\nasync installs: %d  stale results: %d\n\
                 main-thread stall: %.6fs\n"
                jobs s.Engine.async_installs s.Engine.stale_results
                s.Engine.main_stall_seconds
          end;
          `Ok ()
        end)
  with
  | Errors.Shellcode_executed msg ->
    Printf.eprintf "SHELLCODE EXECUTED: %s\n" msg;
    `Error (false, "script achieved simulated code execution")
  | Errors.Crash msg ->
    Printf.eprintf "CRASH: %s\n" msg;
    `Error (false, "script crashed the simulated runtime")
  | Errors.Type_error msg -> `Error (false, "type error: " ^ msg)
  | Sys_error msg | Fun.Finally_raised (Sys_error msg) -> `Error (false, msg)
  | Jitbull_frontend.Parser.Parse_error (msg, pos) ->
    `Error (false, Printf.sprintf "parse error at %d:%d: %s" pos.Jitbull_frontend.Token.line
              pos.Jitbull_frontend.Token.column msg)
  | Jitbull_frontend.Lexer.Lex_error (msg, pos) ->
    `Error (false, Printf.sprintf "lex error at %d:%d: %s" pos.Jitbull_frontend.Token.line
              pos.Jitbull_frontend.Token.column msg)

let file =
  Arg.(required & pos 0 (some non_dir_file) None & info [] ~docv:"SCRIPT" ~doc:"Script to run.")

let no_jit = Arg.(value & flag & info [ "no-jit" ] ~doc:"Disable the JIT (interpreter tier only).")

let use_interp =
  Arg.(value & flag & info [ "interp" ] ~doc:"Use the reference tree-walking interpreter.")

let vuln_names =
  Arg.(value & opt_all string [] & info [ "vuln" ] ~docv:"CVE"
         ~doc:"Activate an injected pass bug (repeatable), e.g. CVE-2019-17026.")

let db_path =
  Arg.(value & opt (some non_dir_file) None & info [ "db" ] ~docv:"FILE"
         ~doc:"JITBULL DNA database file (enables the go/no-go policy).")

let verdict_server =
  Arg.(value & opt (some string) None
       & info [ "verdict-server" ] ~docv:"ADDR"
           ~doc:"Ask a running jitbulld daemon for go/no-go verdicts instead \
                 of analyzing against a local DB. $(docv) is a port or \
                 HOST:PORT (loopback only). Compile-time queries are \
                 coalesced into JSONL batches; generation pushes from the \
                 daemon invalidate the local policy cache; if the daemon is \
                 unreachable, verdicts fall back to a synced local replica. \
                 Overrides --db.")

let push_interval =
  Arg.(value & opt (some float) None
       & info [ "push" ] ~docv:"SECONDS"
           ~doc:"With --verdict-server: push a cumulative telemetry snapshot \
                 (audit verdict totals, install-latency p99, the metrics \
                 view) plus the audit-record delta to the daemon's /push \
                 every $(docv) seconds, and once more at exit. The daemon \
                 aggregates pushes into per-client fleet series served at \
                 /fleet.")

let client_id =
  Arg.(value & opt (some string) None
       & info [ "client-id" ] ~docv:"NAME"
           ~doc:"Fleet label this engine reports as: the x-jitbull-client \
                 header on verdict requests and the series label on \
                 telemetry pushes. Defaults to pid-<pid>.")

let stats = Arg.(value & flag & info [ "stats" ] ~doc:"Print engine statistics to stderr.")

let ion_threshold =
  Arg.(value & opt int Engine.default_config.Engine.ion_threshold
       & info [ "ion-threshold" ] ~docv:"N" ~doc:"Invocations before Ion compilation.")

let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Math.random seed.")

let trace =
  Arg.(value & flag & info [ "trace" ] ~doc:"Log tier-up, bailout and JITBULL policy events.")

let metrics =
  Arg.(value & opt ~vopt:(Some "-") (some string) None
       & info [ "metrics" ] ~docv:"FILE"
           ~doc:"Record telemetry and dump a metrics snapshot at exit: the per-pass \
                 compile profile plus the full registry (Prometheus text, or JSON when \
                 $(docv) ends in .json). Without $(docv), prints to stderr.")

let trace_file =
  Arg.(value & opt (some string) None
       & info [ "trace-file" ] ~docv:"FILE"
           ~doc:"Stream structured engine events (compile spans, per-pass spans, tier-ups, \
                 bailouts, go/no-go verdicts) to $(docv) as JSON lines.")

let audit_file =
  Arg.(value & opt (some string) None
       & info [ "audit-file" ] ~docv:"FILE"
           ~doc:"Stream the go/no-go audit trail — one JSON record per policy \
                 decision, with the matched CVEs, per-pass EqChains scores, \
                 verdict, DB generation and deciding domain — to $(docv) as \
                 JSON lines.")

let audit_rotate_bytes =
  Arg.(value & opt (some int) None
       & info [ "audit-rotate-bytes" ] ~docv:"N"
           ~doc:"With --audit-file: once the sink exceeds $(docv) bytes, \
                 rotate it (the file moves to FILE.1, replacing any previous \
                 FILE.1, and the trail continues in a fresh FILE). Bounds \
                 long-run disk use at roughly twice $(docv).")

let explain =
  Arg.(value & opt ~vopt:(Some "") (some string) None
       & info [ "explain" ] ~docv:"FUNC"
           ~doc:"Capture per-pass IR diffs during compilation and print a \
                 causal go/no-go report per decision at exit: the matched \
                 CVEs, the contributing passes with their EqChains evidence \
                 and matching sub-chains, and the IR transformations that \
                 introduced them. Without $(docv), reports every decision \
                 that matched or restricted JIT; with $(docv), every \
                 decision for that function.")

let explain_capacity =
  Arg.(value & opt int 64
       & info [ "explain-capacity" ] ~docv:"K"
           ~doc:"With --explain: keep the IR diffs of the last $(docv) \
                 compiles (older ones are evicted; their audit records \
                 remain).")

let serve_metrics =
  Arg.(value & opt (some int) None
       & info [ "serve-metrics" ] ~docv:"PORT"
           ~doc:"Serve live observability over HTTP on 127.0.0.1:$(docv) while \
                 the script runs: /metrics (Prometheus text), /healthz \
                 (200/503 against queue-depth, stall, stale-result and \
                 install-latency-p99 thresholds), /audit?n=K (recent \
                 go/no-go decisions as JSON), /explain (recent-decisions \
                 index) and /explain?id=N (single-decision report, HTML or \
                 &format=text). PORT 0 picks a free port (printed to \
                 stderr).")

let serve_hold =
  Arg.(value & opt float 0.0
       & info [ "serve-hold" ] ~docv:"SECONDS"
           ~doc:"With --serve-metrics: keep the HTTP endpoint up for $(docv) \
                 seconds after the script finishes, so external scrapers can \
                 observe the final state.")

let profile =
  Arg.(value & opt ~vopt:(Some "-") (some string) None
       & info [ "profile" ] ~docv:"FILE"
           ~doc:"Sample the process at ~997 Hz CPU time (SIGPROF; \
                 Linux/x86-64 only) and write collapsed-stack lines \
                 (flamegraph.pl / speedscope input) to $(docv) at exit — \
                 native code pages by function, plus VM dispatch, pass \
                 pipeline, comparator and host-call frames. Without \
                 $(docv), prints to stderr. With --serve-metrics, the live \
                 profile is also served at /profile.")

let naive_comparator =
  Arg.(value & flag
       & info [ "naive-comparator" ]
           ~doc:"Answer go/no-go queries by folding the comparator over every DB entry \
                 instead of through the inverted sub-chain index. Verdicts are identical; \
                 useful for A/B measurement and as the executable specification.")

let no_policy_cache =
  Arg.(value & flag
       & info [ "no-policy-cache" ]
           ~doc:"Disable the policy-decision cache: re-analyze the function DNA on every \
                 Ion compilation instead of reusing the cached verdict.")

let jobs =
  Arg.(value & opt (some int) None
       & info [ "jobs" ] ~docv:"N"
           ~doc:"Helper domains for background Ion compilation. 0 compiles \
                 synchronously on the main thread. Defaults to the machine's \
                 recommended domain count minus one, capped at 4.")

let sync_compile =
  Arg.(value & flag
       & info [ "sync-compile" ]
           ~doc:"Force on-main-thread Ion compilation (equivalent to --jobs 0); \
                 overrides --jobs.")

let native =
  Arg.(value
       & vflag true
           [
             ( true,
               info [ "native" ]
                 ~doc:"Back Ion-tier compiles with generated x86-64 machine \
                       code (the default). Automatically falls back to the \
                       LIR executor on non-x86-64 hosts or when \
                       JITBULL_NO_NATIVE is set." );
             ( false,
               info [ "no-native" ]
                 ~doc:"Run Ion-tier code on the LIR executor instead of \
                       generated machine code." );
           ])

let quiet =
  Arg.(value & flag
       & info [ "quiet"; "q" ] ~doc:"Only log errors (suppresses warnings).")

let verbose =
  Arg.(value & flag_all
       & info [ "v"; "verbose" ]
           ~doc:"Increase log verbosity: -v logs tier-up and policy decisions \
                 (info), -vv everything (debug). Repeatable.")

let cmd =
  let doc = "run a mini-JS script on the JITBULL engine" in
  Cmd.v
    (Cmd.info "jsrun" ~doc)
    Term.(ret (const run $ file $ no_jit $ use_interp $ vuln_names $ db_path
               $ verdict_server $ push_interval $ client_id $ stats
               $ ion_threshold $ seed $ trace $ metrics $ trace_file $ audit_file
               $ audit_rotate_bytes $ explain $ explain_capacity
               $ serve_metrics $ serve_hold $ profile
               $ naive_comparator $ no_policy_cache $ jobs $ sync_compile $ native
               $ quiet $ verbose))

let () = exit (Cmd.eval cmd)
