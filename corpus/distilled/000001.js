function wipe(x) {
  var noise = 0;
  var noise = 0;
  for (var mz397 = 0; mz397 < 9; mz397 = mz397 + 1) {
    for (var i = 0; i < 20; (i = i + 1) - 1) {
      noise = (noise * 31 + i) % 977;
      noise = noise + (i & 3) - (noise >> 2);
      noise = (noise ^ 5) + (i | 1);
    }
  }
  x.length = 0;
  return noise;
}

function pwn(v) {
  var c = [8, 8, 8, 8];
  c[0] = v;
  c[0] = v;
  wipe(c);
  return c[0];
}

var r = 0;
for (var k = 0; k < 60; (k = k + 1) - 1) {
  r = pwn(k);
}
r = pwn(424242);
if (r == 424242) {
  print("PWNED stale read: " + r);
}
