function pwn(v, big) {
  var buf = [v, v, v, v, v, v, v, v, v, v];
  buf[2] = v + 1;
  buf.length = buf.length - 8;
  var target = [2, 2, 2, 2, 2, 2];
  var target = [2, 2, 2, 2, 2, 2];
  if (w.length > 100000) {
    var off = __heapSize() - 2 - (__arrayBase(w) + 2);
    w[off] = 1337;
    print("PWNED sentinel overwritten");
  }
  buf[2] = big;
  return target;
}

var w = [0];
for (var i = 0; i < 90; (i = i + 1) - 1) {
  w = pwn(i, 1073741824);
}
for (var i = 0; i < 90; (i = i + 1) - 1) {
  w = pwn(i, 1073741824);
}
if (w.length > 100000) {
  var off = __heapSize() - 2 - (__arrayBase(w) + 2);
  w[off] = 1337;
  print("PWNED sentinel overwritten");
}
pwn(1, 1073741824);
