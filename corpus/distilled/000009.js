function f0(f0v0) {
  var f0v1 = 0;
  for (var f0v2 = 0; f0v2 < 16; f0v2 = f0v2 + 1) {
    var f0v3 = (f0v2 * f0v0);
    f0v1 = (f0v1 + f0v3);
  }
  return f0v1;
}
var v0 = 0;
for (var v1 = 0; v1 < 50; v1 = v1 + 1) {
  var v2 = f0(v1);
  v0 = (v0 + v2);
}
print(v0);
