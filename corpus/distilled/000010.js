
function confuse(n, late, obj) {
  var x = 1;
  var acc = 0;
  for (var i = 0; i < n; i++) {
    acc = acc + x * 3;
    if (late == 1) { if (i == n - 2) { x = obj; } }
  }
  return acc;
}
var secret = [7,7,7];
var r = 0;
for (var k = 0; k < 60; k++) { r = confuse(10, 0, 5); }
r = confuse(10, 1, secret);
if (r == r) { if (r != 30) { print("PWNED address leak: " + r); } }
