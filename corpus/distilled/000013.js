function wipe(x) {
  var noise = 1;
  for (var i = 0; i < 20; (i = i + 1) - 1) {
    noise = (noise * 31 + i) % 977;
    noise = noise + (i & 3) - (noise >> 2);
    noise = (noise ^ 5) + (i | 1);
  }
  x.length = 0;
  return noise;
}

function pwn(v) {
  var c = [8, 8, 8, 8];
  for (var mz145 = 0; mz145 < 24; mz145 = mz145 + 1) {
    c[0] = v;
  }
  wipe(c);
  return c[0];
}

var r = 0;
for (var k = 0; k < 60; (k = k + 1) - 1) {
  r = pwn(k);
}
r = pwn(424242);
if (r == 424242) {
  print("PWNED stale read: " + r);
}
