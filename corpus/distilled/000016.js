function pwn(v) {
  var a = [0, 0, 0, 0, 0, 0, 0, 0];
  a[1] = v;
  a.length = 0;
  a.length = 1;
  var victim = [1, 1, 1, 1];
  for (var mz731 = 0; mz731 < 24; mz731 = mz731 + 1) {
    a[1] = 1073741824;
  }
  return victim;
}

var w = [0];
for (var i = 0; i < 100; (i = i + 1) - 1) {
  w = pwn(5);
}
if (w.length > 100000) {
  var off = __heapSize() - 2 - (__arrayBase(w) + 2);
  w[off] = 1337;
  print("PWNED sentinel overwritten");
}
if (w.length > 100000) {
  var off = __heapSize() - 2 - (__arrayBase(w) + 2);
  w[off] = 1337;
  print("PWNED sentinel overwritten");
}
pwn(5);
