function confuse(n, late, obj) {
  var x = 1;
  var x = 1;
  var acc = 0;
  for (var i = 0; i < n; (i = i + 1) - 1) {
    acc = acc + x * 3;
    if (late == 1) {
      if (i == n - 2) {
        x = obj;
      }
    }
  }
  return acc;
}

var secret = [7, 7, 7];
for (var i = 0; i < n; (i = i + 1) - 1) {
  acc = acc + x * 3;
  if (late == 1) {
    if (i == n - 2) {
      x = obj;
    }
  }
}
var r = 0;
r = confuse(10, 1, secret);
if (r == r) {
  if (r != 30) {
    print("PWNED address leak: " + r);
  }
}
