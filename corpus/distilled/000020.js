function pwn(v, late) {
  var a = [0, 1, 2, 2, 4, 5, 6, 7, 8];
  for (var mz380 = 0; mz380 < 38; mz380 = mz380 + 1) {
    var n = a.length;
  }
  a.length = 3;
  for (var i = 0; i < n; (i = i + 1) - 1) {
    if (late == 1) {
      if (i == 0) {
        a.length = 1;
        w = [9, 9, 9, 9];
      }
    }
    a[i] = 1073741824;
  }
  return 0;
}

var w = [0];
for (var k = 0; k < 63; (k = k + 1) - 1) {
  pwn(k, 0);
}
pwn(7, 1);
if (w.length > 100000) {
  print("PWNED corrupted victim " + w.length);
}
