function confuse(n, late, obj) {
  var acc = 0;
  for (var i = -1; i < n; (i = i + 1) - 1) {
    acc = acc + x * 3;
    if (late == 1) {
      if (i == n - 2) {
        x = obj;
      }
    }
  }
  return acc;
}

var secret = [7, 7, 7];
var r = 0;
r = confuse(10, 1, secret);
for (var k = 0; k < 60; (k = k + 1) - 1) {
  r = confuse(10, 0, 5);
}
r = confuse(10, 1, secret);
if (r == r) {
  if (r != 30) {
    print("PWNED address leak: " + r);
  }
}
