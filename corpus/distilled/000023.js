
function pwn(a, big, late) {
  var n = a.length;
  var t = 0;
  for (var i = 0; i < n; i++) {
    if (late == 1) { if (i == 0) { a.length = 1; w = [3,3,3,3]; } }
    a[i] = big;
    t = t + 1;
  }
  return t;
}
var w = [0];
for (var k = 0; k < 60; k++) {
  var warm = [9,9,9,9,9,9,9,9,9,9];
  pwn(warm, 7, 0);
}
var prey = [9,9,9,9,9,9,9,9,9,9];
pwn(prey, 1073741824, 1);

if (w.length > 100000) {
  var off = __heapSize() - 2 - (__arrayBase(w) + 2);
  w[off] = 1337;
  print("PWNED sentinel overwritten");
}
pwn([1,1,1], 7, 0);
