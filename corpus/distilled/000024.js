
function pwn(a, big, late) {
  var idx = 1;
  if (late == 1) { idx = 4000000; }
  a[idx] = big;
  return 0;
}
var base = [9,9,9,9];
for (var k = 0; k < 60; k++) { pwn(base, 7, 0); }
pwn(base, 1073741824, 1);
print("no crash");
