function f0(f0v0, f0v1) {
  var f0v2 = 7;
  var f0v3 = [f0v2, f0v2, f0v2, f0v2, f0v2, f0v2, f0v2, f0v2];
  var f0v4 = 1;
  f0v3[f0v4] = f0v0;
  var f0v5 = 1;
  var f0v6 = (f0v1 == f0v5);
  if (f0v6) {
    f0v3.length = 1;
    var f0v7 = 9;
    g0 = [f0v7, f0v7, f0v7, f0v7];
  } else {
    var f0v11 = [f0v4, f0v4, f0v4, f0v4, f0v4, f0v4, f0v4, f0v4];
  }
  var f0v8 = 1073741824;
  f0v3[f0v4] = f0v8;
  var f0v9 = 0;
  var f0v10 = f0v3[f0v9];
  return f0v10;
}
var g0 = [0];
var v0 = 0;
g0 = [v0];
for (var v1 = 0; v1 < 60; v1 = v1 + 1) {
  var v2 = f0(v1, v0);
}
var v3 = 7;
var v4 = 1;
var v5 = f0(v3, v4);
var v6 = g0.length;
var v7 = 100000;
var v8 = (v6 > v7);
if (v8) {
  print("PWNED corrupted victim " + v6);
}
