function wipe(x) {
  var noise = 0;
  return noise;
}

function pwn(v) {
  var c = [8, 8, 8, 8];
  c[0] = v;
  wipe(c);
  c.length = 1;
  return c[0];
}

var r = 0;
for (var k = 0; k < 60; (k = k + 1) - 1) {
  r = pwn(k);
}
r = pwn(424242);
if (r == 424242) {
  print("PWNED stale read: " + r);
}
