(* Explore what the variant generators do to a demonstrator and why the
   JIT DNA survives all of them: print each variant's source head and the
   per-pass similarity verdicts against the original's DNA.

     dune exec examples/variant_explorer.exe *)

module V = Jitbull_vdc.Demonstrators
module Variants = Jitbull_vdc.Variants
module VC = Jitbull_passes.Vuln_config
module Engine = Jitbull_jit.Engine
module Db = Jitbull_core.Db
module Dna = Jitbull_core.Dna
module Comparator = Jitbull_core.Comparator
module Table = Jitbull_util.Text_table

(* Harvest every Ion-compiled function's DNA from a source. *)
let harvest_dnas ~vulns source =
  let acc = ref [] in
  let analyzer ~ctx:_ ~func_index:_ ~name:_ ~trace =
    let dna = Dna.extract trace in
    if Dna.nonempty_passes dna <> [] then acc := dna :: !acc;
    Engine.Allow
  in
  let config = { Engine.default_config with Engine.vulns; analyzer = Some analyzer } in
  (try ignore (Engine.run_source config source) with _ -> ());
  List.rev !acc

let head source n =
  let lines = String.split_on_char '\n' (String.trim source) in
  String.concat "\n" (List.filteri (fun i _ -> i < n) lines)

let () =
  let d = V.find VC.CVE_2019_17026 in
  let vulns = VC.make [ d.V.cve ] in
  Printf.printf "Original demonstrator (%s), first lines:\n%s\n  ...\n\n" d.V.name
    (head d.V.source 6);
  let original = harvest_dnas ~vulns d.V.source in
  Printf.printf "DNA vectors extracted from the original: %d\n" (List.length original);
  List.iter
    (fun (dna : Dna.t) ->
      Printf.printf "  %s: non-empty passes: %s\n" dna.Dna.func_name
        (String.concat ", " (Dna.nonempty_passes dna)))
    original;
  print_newline ();
  let rows =
    List.map
      (fun kind ->
        let variant = Variants.apply kind d.V.source in
        let dnas = harvest_dnas ~vulns variant in
        (* which original functions find a matching variant function, and
           on which passes? *)
        let matches =
          List.concat_map
            (fun (o : Dna.t) ->
              List.concat_map (fun (v : Dna.t) -> Comparator.matching_passes o v) dnas)
            original
          |> List.sort_uniq String.compare
        in
        [
          Variants.kind_name kind;
          string_of_int (List.length dnas);
          String.concat "," matches;
          string_of_int (String.length variant) ^ " bytes";
        ])
      Variants.all_kinds
  in
  Table.print
    ~headers:[ "variant"; "JITed DNAs"; "passes matching original"; "size" ]
    rows;
  print_newline ();
  Printf.printf "Variant sources (first lines):\n";
  List.iter
    (fun kind ->
      Printf.printf "\n--- %s ---\n%s\n  ...\n" (Variants.kind_name kind)
        (head (Variants.apply kind d.V.source) 5))
    Variants.all_kinds
