(* Per-bytecode-site type feedback collected by the interpreter tier, in the
   role of SpiderMonkey's Baseline inline caches: the MIR builder speculates
   (and inserts guards) only where the interpreter has seen a stable type. *)

type site = {
  mutable saw_array_int : bool;  (* Get/Set_index: Array receiver & int index *)
  mutable saw_other_index : bool;  (* Get/Set_index: anything else *)
  mutable saw_number : bool;  (* Binop: both operands numbers *)
  mutable saw_non_number : bool;
  mutable saw_array_recv : bool;  (* member/method sites: Array receiver *)
  mutable saw_other_recv : bool;
}

type t = site array array  (* function index → pc → site *)

let fresh_site () =
  {
    saw_array_int = false;
    saw_other_index = false;
    saw_number = false;
    saw_non_number = false;
    saw_array_recv = false;
    saw_other_recv = false;
  }

let create (program : Op.program) : t =
  Array.map
    (fun (f : Op.func) -> Array.init (Array.length f.Op.code) (fun _ -> fresh_site ()))
    program.Op.funcs

let copy_site s =
  {
    saw_array_int = s.saw_array_int;
    saw_other_index = s.saw_other_index;
    saw_number = s.saw_number;
    saw_non_number = s.saw_non_number;
    saw_array_recv = s.saw_array_recv;
    saw_other_recv = s.saw_other_recv;
  }

(* Snapshot of one function's row, taken at compile-enqueue time so a
   helper domain reads frozen feedback while the interpreter keeps
   mutating the live sites. *)
let copy_row (row : site array) = Array.map copy_site row

(* Site accessors used by the MIR builder. *)

let site (t : t) ~func ~pc = t.(func).(pc)

(* An index site is a candidate for the guarded array fast path when the
   interpreter only ever saw array/int accesses there (and saw at least
   one, so we have evidence). *)
let array_fast_path (s : site) = s.saw_array_int && not s.saw_other_index

let numeric_fast_path (s : site) = s.saw_number && not s.saw_non_number

let array_receiver (s : site) = s.saw_array_recv && not s.saw_other_recv
