(* Bytecode verifier: a worklist abstract interpretation tracking only
   the operand-stack depth. Depth is a complete abstraction here — no
   opcode's stack effect depends on operand values — so one pass proves
   stack discipline for every execution. *)

exception Invalid of string

let invalid fmt = Printf.ksprintf (fun s -> raise (Invalid s)) fmt

let max_depth = 4096

(* pops, pushes, and whether control continues to pc+1 / a jump target *)
type effect = {
  pops : int;
  pushes : int;
  next : [ `Fall | `Jump of int | `Branch of int | `Stop ];
}

let effect : Op.t -> effect = function
  | Op.Push_const _ -> { pops = 0; pushes = 1; next = `Fall }
  | Load_local _ -> { pops = 0; pushes = 1; next = `Fall }
  | Store_local _ -> { pops = 1; pushes = 0; next = `Fall }
  | Load_global _ -> { pops = 0; pushes = 1; next = `Fall }
  | Store_global _ -> { pops = 1; pushes = 0; next = `Fall }
  | Declare_global _ -> { pops = 0; pushes = 0; next = `Fall }
  | Pop -> { pops = 1; pushes = 0; next = `Fall }
  | Dup -> { pops = 1; pushes = 2; next = `Fall }
  | Binop _ -> { pops = 2; pushes = 1; next = `Fall }
  | Unop _ -> { pops = 1; pushes = 1; next = `Fall }
  | Jump t -> { pops = 0; pushes = 0; next = `Jump t }
  | Jump_if_false t | Jump_if_true t -> { pops = 1; pushes = 0; next = `Branch t }
  | New_array n -> { pops = n; pushes = 1; next = `Fall }
  | New_object fields -> { pops = List.length fields; pushes = 1; next = `Fall }
  | Get_index -> { pops = 2; pushes = 1; next = `Fall }
  | Set_index -> { pops = 3; pushes = 1; next = `Fall }
  | Get_member _ -> { pops = 1; pushes = 1; next = `Fall }
  | Set_member _ -> { pops = 2; pushes = 1; next = `Fall }
  | Call n -> { pops = n + 1; pushes = 1; next = `Fall }
  | Call_method (_, n) -> { pops = n + 1; pushes = 1; next = `Fall }
  | Return -> { pops = 1; pushes = 0; next = `Stop }
  | Return_undefined -> { pops = 0; pushes = 0; next = `Stop }

let check_func (f : Op.func) =
  let code = f.Op.code in
  let len = Array.length code in
  if len = 0 then invalid "%s: empty code array" f.Op.name;
  (* depth.(pc) = stack depth on entry to pc; -1 = not yet reached *)
  let depth = Array.make len (-1) in
  let work = Queue.create () in
  let schedule ~from pc d =
    if pc < 0 || pc >= len then
      invalid "%s: pc %d jumps out of range (target %d, code length %d)" f.Op.name from
        pc len;
    if depth.(pc) = -1 then begin
      depth.(pc) <- d;
      Queue.add pc work
    end
    else if depth.(pc) <> d then
      invalid "%s: inconsistent stack depth at pc %d (%d vs %d)" f.Op.name pc depth.(pc)
        d
  in
  depth.(0) <- 0;
  Queue.add 0 work;
  while not (Queue.is_empty work) do
    let pc = Queue.pop work in
    let op = code.(pc) in
    (match op with
    | Op.Load_local i | Op.Store_local i ->
      if i < 0 || i >= f.Op.n_locals then
        invalid "%s: pc %d local index %d out of range (n_locals %d)" f.Op.name pc i
          f.Op.n_locals
    | Op.New_array n ->
      if n < 0 then invalid "%s: pc %d new_array with negative count" f.Op.name pc
    | Op.Call n | Op.Call_method (_, n) ->
      if n < 0 then invalid "%s: pc %d call with negative arity" f.Op.name pc
    | _ -> ());
    let e = effect op in
    let d = depth.(pc) in
    if d < e.pops then
      invalid "%s: pc %d (%s) pops %d from a stack of depth %d" f.Op.name pc
        (Op.to_string op) e.pops d;
    let d' = d - e.pops + e.pushes in
    if d' > max_depth then
      invalid "%s: pc %d stack depth %d exceeds the sanity bound" f.Op.name pc d';
    match e.next with
    | `Stop -> ()
    | `Jump t -> schedule ~from:pc t d'
    | `Fall ->
      if pc + 1 >= len then invalid "%s: pc %d falls off the end of the code" f.Op.name pc;
      schedule ~from:pc (pc + 1) d'
    | `Branch t ->
      if pc + 1 >= len then invalid "%s: pc %d falls off the end of the code" f.Op.name pc;
      schedule ~from:pc (pc + 1) d';
      schedule ~from:pc t d'
  done

let check_program (p : Op.program) =
  check_func p.Op.main;
  Array.iter check_func p.Op.funcs

let check_bool p =
  match check_program p with () -> true | exception Invalid _ -> false
