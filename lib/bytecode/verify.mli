(** Bytecode verifier — the validity gate of the IL fuzzing layer.

    An abstract interpretation over each function's instruction array
    proving the static well-formedness the VM, the MIR builder and the
    JIT tiers all silently assume:

    - every jump target lands inside the code array;
    - operand-stack discipline: no pop from an empty stack, and every
      program point has one consistent stack depth no matter which path
      reaches it (the MIR builder keys its virtual stack on exactly this
      invariant);
    - the stack is empty-height-compatible at [Return]/[Return_undefined]
      (at least the popped return value is present);
    - [Load_local]/[Store_local] indices are within [n_locals];
    - execution cannot fall off the end of the code array (the compiler
      always seals a body with [Return_undefined]);
    - the stack stays under a sanity bound (4096) so a mutated constant
      cannot smuggle in unbounded growth.

    Every program the AST compiler emits passes; the typed mutation IL
    ({!Jitbull_fuzz.Il}) promises that every mutant it lowers passes
    too — the fuzzing campaigns assert it per mutant and report the
    yield. *)

exception Invalid of string

(** [check_func f] raises {!Invalid} describing the first violated
    invariant. *)
val check_func : Op.func -> unit

(** [check_program p] checks [main] and every function. *)
val check_program : Op.program -> unit

(** [check_bool p] is [check_program] but returns [false] instead of
    raising. *)
val check_bool : Op.program -> bool
