module Value = Jitbull_runtime.Value
module Value_ops = Jitbull_runtime.Value_ops
module Heap = Jitbull_runtime.Heap
module Realm = Jitbull_runtime.Realm
module Builtins = Jitbull_runtime.Builtins
module Errors = Jitbull_runtime.Errors
module Metrics = Jitbull_obs.Metrics
module Profile = Jitbull_obs.Profile

(* Sampling-profiler frame for interpreter ticks (the "baseline tier"
   share of a profile; JITed frames attribute via their code pages). *)
let prof_vm = Profile.tag "vm;dispatch"

(* Pre-resolved metric handles: the dispatch path is the hottest loop in
   the engine, so counters are looked up by name once at installation and
   each call pays a single option match plus an integer bump. *)
type vm_counters = {
  calls : Metrics.counter;
  interp_dispatch : Metrics.counter;
  jit_dispatch : Metrics.counter;
}

type t = {
  realm : Realm.t;
  program : Op.program;
  globals : (string, Value.t) Hashtbl.t;
  counters : int array;
  dispatch : (Value.t list -> Value.t) option array;
  feedback : Feedback.t;
  mutable on_invoke : (t -> int -> int -> unit) option;
  mutable obs_counters : vm_counters option;
}

let create ?realm (program : Op.program) =
  let realm = match realm with Some r -> r | None -> Realm.create () in
  let globals = Hashtbl.create 64 in
  Array.iteri
    (fun i (f : Op.func) -> Hashtbl.replace globals f.Op.name (Value.Function i))
    program.Op.funcs;
  {
    realm;
    program;
    globals;
    counters = Array.make (Array.length program.Op.funcs) 0;
    dispatch = Array.make (Array.length program.Op.funcs) None;
    feedback = Feedback.create program;
    on_invoke = None;
    obs_counters = None;
  }

let install_obs vm obs =
  let m = Jitbull_obs.Obs.metrics obs in
  vm.obs_counters <-
    Some
      {
        calls = Metrics.counter m "vm.calls";
        interp_dispatch = Metrics.counter m "vm.dispatch.interp";
        jit_dispatch = Metrics.counter m "vm.dispatch.jit";
      }

let store_global vm name v = Hashtbl.replace vm.globals name v

let declare_global vm name =
  if not (Hashtbl.mem vm.globals name) then Hashtbl.replace vm.globals name Value.Undefined

let load_global vm name =
  match Hashtbl.find_opt vm.globals name with
  | Some v -> v
  | None ->
    if Builtins.is_namespace name || Builtins.is_global_function name then Value.Builtin name
    else Errors.type_error "%s is not defined" name

(* Operand stack: growable value array. *)
type stack = {
  mutable cells : Value.t array;
  mutable sp : int;
}

let new_stack () = { cells = Array.make 64 Value.Undefined; sp = 0 }

let push st v =
  if st.sp = Array.length st.cells then begin
    let bigger = Array.make (2 * st.sp) Value.Undefined in
    Array.blit st.cells 0 bigger 0 st.sp;
    st.cells <- bigger
  end;
  st.cells.(st.sp) <- v;
  st.sp <- st.sp + 1

let pop st =
  st.sp <- st.sp - 1;
  st.cells.(st.sp)

let pop_n st n =
  let vs = ref [] in
  for _ = 1 to n do
    vs := pop st :: !vs
  done;
  !vs

let rec call_function vm idx args =
  vm.counters.(idx) <- vm.counters.(idx) + 1;
  (match vm.on_invoke with
  | Some hook -> hook vm idx vm.counters.(idx)
  | None -> ());
  match vm.dispatch.(idx) with
  | Some compiled ->
    (match vm.obs_counters with
    | Some c ->
      Metrics.incr c.calls;
      Metrics.incr c.jit_dispatch
    | None -> ());
    (* control transfers through the simulated JIT code pointer *)
    Heap.check_sentinel vm.realm.Realm.heap;
    compiled args
  | None ->
    (match vm.obs_counters with
    | Some c ->
      Metrics.incr c.calls;
      Metrics.incr c.interp_dispatch
    | None -> ());
    interpret vm ~func_index:idx vm.program.Op.funcs.(idx) args

(* [func_index] = -1 for the top level, which collects no feedback (it is
   never JITed). *)
and interpret vm ~func_index (f : Op.func) args =
  Profile.with_tag prof_vm (fun () -> interpret_body vm ~func_index f args)

and interpret_body vm ~func_index (f : Op.func) args =
  let locals = Array.make (max f.Op.n_locals 1) Value.Undefined in
  List.iteri (fun i v -> if i < f.Op.arity then locals.(i) <- v) args;
  let st = new_stack () in
  let code = f.Op.code in
  let pc = ref 0 in
  let result = ref None in
  let feedback_site () =
    if func_index >= 0 then Some (Feedback.site vm.feedback ~func:func_index ~pc:(!pc - 1))
    else None
  in
  while !result = None do
    let op = code.(!pc) in
    incr pc;
    match op with
    | Op.Push_const v -> push st v
    | Op.Load_local i -> push st locals.(i)
    | Op.Store_local i -> locals.(i) <- pop st
    | Op.Load_global name -> push st (load_global vm name)
    | Op.Store_global name -> Hashtbl.replace vm.globals name (pop st)
    | Op.Declare_global name -> declare_global vm name
    | Op.Pop -> ignore (pop st)
    | Op.Dup ->
      let v = pop st in
      push st v;
      push st v
    | Op.Binop op ->
      let b = pop st in
      let a = pop st in
      (match feedback_site () with
      | Some site -> (
        match (a, b) with
        | Value.Number _, Value.Number _ -> site.Feedback.saw_number <- true
        | _ -> site.Feedback.saw_non_number <- true)
      | None -> ());
      push st (Value_ops.binary op a b)
    | Op.Unop op -> push st (Value_ops.unary op (pop st))
    | Op.Jump target -> pc := target
    | Op.Jump_if_false target -> if not (Value_ops.to_boolean (pop st)) then pc := target
    | Op.Jump_if_true target -> if Value_ops.to_boolean (pop st) then pc := target
    | Op.New_array n ->
      let vs = pop_n st n in
      let h = Heap.alloc_array vm.realm.Realm.heap ~length:n in
      List.iteri (fun i v -> Heap.set vm.realm.Realm.heap h i v) vs;
      push st (Value.Array h)
    | Op.New_object fields ->
      let vs = pop_n st (List.length fields) in
      let tbl = Hashtbl.create (max 4 (List.length fields)) in
      List.iter2 (fun k v -> Hashtbl.replace tbl k v) fields vs;
      push st (Value.Object tbl)
    | Op.Get_index -> (
      let idx = pop st in
      let recv = pop st in
      (match feedback_site () with
      | Some site -> (
        match (recv, Value_ops.to_index idx) with
        | Value.Array _, Some _ -> site.Feedback.saw_array_int <- true
        | _ -> site.Feedback.saw_other_index <- true)
      | None -> ());
      match (recv, Value_ops.to_index idx) with
      | Value.Array h, Some i -> push st (Heap.get vm.realm.Realm.heap h i)
      | Value.Object tbl, _ ->
        push st
          (match Hashtbl.find_opt tbl (Value_ops.to_string idx) with
          | Some v -> v
          | None -> Value.Undefined)
      | Value.String s, Some i ->
        push st
          (if i < String.length s then Value.String (String.make 1 s.[i]) else Value.Undefined)
      | Value.Array _, None -> push st Value.Undefined
      | recv, _ -> Errors.type_error "cannot index %s" (Value.type_name recv))
    | Op.Set_index -> (
      let v = pop st in
      let idx = pop st in
      let recv = pop st in
      (match feedback_site () with
      | Some site -> (
        match (recv, Value_ops.to_index idx) with
        | Value.Array _, Some _ -> site.Feedback.saw_array_int <- true
        | _ -> site.Feedback.saw_other_index <- true)
      | None -> ());
      (match (recv, Value_ops.to_index idx) with
      | Value.Array h, Some i -> Heap.set vm.realm.Realm.heap h i v
      | Value.Object tbl, _ -> Hashtbl.replace tbl (Value_ops.to_string idx) v
      | Value.Array _, None -> Errors.type_error "invalid array index %s" (Value.to_display idx)
      | recv, _ -> Errors.type_error "cannot index %s" (Value.type_name recv));
      push st v)
    | Op.Get_member name ->
      let recv = pop st in
      (match feedback_site () with
      | Some site -> (
        match recv with
        | Value.Array _ -> site.Feedback.saw_array_recv <- true
        | _ -> site.Feedback.saw_other_recv <- true)
      | None -> ());
      push st (Builtins.get_member vm.realm recv name)
    | Op.Set_member name ->
      let v = pop st in
      let recv = pop st in
      (match feedback_site () with
      | Some site -> (
        match recv with
        | Value.Array _ -> site.Feedback.saw_array_recv <- true
        | _ -> site.Feedback.saw_other_recv <- true)
      | None -> ());
      Builtins.set_member vm.realm recv name v;
      push st v
    | Op.Call n -> (
      let args = pop_n st n in
      let callee = pop st in
      match callee with
      | Value.Function idx -> push st (call_function vm idx args)
      | Value.Builtin name -> push st (Builtins.call_builtin vm.realm name args)
      | v -> Errors.type_error "%s is not a function" (Value.type_name v))
    | Op.Call_method (name, n) -> (
      let args = pop_n st n in
      let recv = pop st in
      (match feedback_site () with
      | Some site -> (
        match recv with
        | Value.Array _ -> site.Feedback.saw_array_recv <- true
        | _ -> site.Feedback.saw_other_recv <- true)
      | None -> ());
      match Builtins.call_method vm.realm recv name args with
      | `Value v -> push st v
      | `User_function (idx, args) -> push st (call_function vm idx args))
    | Op.Return -> result := Some (pop st)
    | Op.Return_undefined -> result := Some Value.Undefined
  done;
  match !result with
  | Some v -> v
  | None -> assert false

let run vm =
  ignore (interpret vm ~func_index:(-1) vm.program.Op.main []);
  Realm.output vm.realm

let run_program ?realm program =
  let vm = create ?realm program in
  run vm
