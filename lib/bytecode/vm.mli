(** Invocation-counting stack VM — the interpreter tier of the engine.

    The VM executes bytecode directly, using checked heap accesses only.
    Tier-up is delegated: before running a function body it consults
    [dispatch], an array of optional compiled entry points installed by the
    JIT engine, and a [on_invoke] hook fires on every call with the fresh
    invocation count so the engine can decide to compile. The VM itself has
    no knowledge of MIR or JITBULL, mirroring the layering of a real
    runtime. *)

module Value = Jitbull_runtime.Value

(** Pre-resolved dispatch counters ([vm.calls], [vm.dispatch.interp],
    [vm.dispatch.jit]): name lookup happens once in {!install_obs}, the
    per-call cost is one option match and an integer increment. *)
type vm_counters

type t = {
  realm : Jitbull_runtime.Realm.t;
  program : Op.program;
  globals : (string, Value.t) Hashtbl.t;
  counters : int array;  (** invocation counts, indexed by function *)
  dispatch : (Value.t list -> Value.t) option array;
      (** compiled entry points; [call_function] prefers these *)
  feedback : Feedback.t;
      (** per-site type feedback collected while interpreting *)
  mutable on_invoke : (t -> int -> int -> unit) option;
      (** [on_invoke vm func_index count] fires before dispatch *)
  mutable obs_counters : vm_counters option;
      (** dispatch telemetry; [None] (the default) records nothing *)
}

(** [create ?realm program] sets up globals (each declared function is
    pre-bound to its [Value.Function]) and zeroed counters. *)
val create : ?realm:Jitbull_runtime.Realm.t -> Op.program -> t

(** [install_obs vm obs] resolves the dispatch counters against [obs]'s
    metrics registry and starts counting calls per tier. *)
val install_obs : t -> Jitbull_obs.Obs.t -> unit

(** [load_global vm name] reads a global binding, falling back to builtin
    namespaces/functions; raises for undefined names. [store_global]
    creates or updates a global. Used by JITed code through the executor
    callbacks. *)

val load_global : t -> string -> Value.t
val store_global : t -> string -> Value.t -> unit
val declare_global : t -> string -> unit

(** [call_function vm idx args] applies the tier-up protocol: bump counter,
    fire [on_invoke], then run the compiled entry if installed (checking
    the heap sentinel first, as a real engine transfers control through the
    JIT code pointer) else interpret the bytecode. *)
val call_function : t -> int -> Value.t list -> Value.t

(** [interpret vm ~func_index f args] runs [f]'s bytecode directly in the
    interpreter, bypassing dispatch — the engine uses it to replay a call
    after a JIT bailout. [func_index] = -1 disables feedback recording. *)
val interpret : t -> func_index:int -> Op.func -> Value.t list -> Value.t

(** [run vm] executes the program's top level; returns the printed
    output. *)
val run : t -> string

(** [run_program ?realm program] — create + run. *)
val run_program : ?realm:Jitbull_runtime.Realm.t -> Op.program -> string
