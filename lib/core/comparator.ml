type params = {
  thr : int;
  ratio : float;
}

(* The paper uses Thr = 3 with per-chain-pair sub-chain counting; our edge
   multiset yields about two sub-chain instances per eliminated bounds
   check, so the absolute threshold scales to 2 (Ratio is unchanged). See
   DESIGN.md §4. *)
let default_params = { thr = 2; ratio = 0.5 }

let side_score (d : Delta.side) (d' : Delta.side) =
  (* EqChains = Σ over common sub-chains of min(multiplicities) *)
  let eq_chains =
    Hashtbl.fold
      (fun k c acc ->
        match Hashtbl.find_opt d' k with
        | Some c' -> acc + min c c'
        | None -> acc)
      d 0
  in
  (eq_chains, min (Delta.total d) (Delta.total d'))

let passes_thresholds params (eq_chains, max_eq_chains) =
  eq_chains >= params.thr
  && float_of_int eq_chains >= params.ratio *. float_of_int max_eq_chains

let compare_sides ?(params = default_params) (d : Delta.side) (d' : Delta.side) =
  passes_thresholds params (side_score d d')

let similar ?params (a : Delta.t) (b : Delta.t) =
  compare_sides ?params a.Delta.removed b.Delta.removed
  || compare_sides ?params a.Delta.added b.Delta.added

type match_detail = {
  md_pass : string;
  md_side : [ `Removed | `Added ];
  md_eq_chains : int;
  md_max_eq_chains : int;
  md_common : (string * int) list;
}

(* The common sub-chains behind an EqChains score, materialized to
   strings and sorted by key. Only computed on the cold path (a pass
   actually matched), never during scoring. *)
let side_common (d : Delta.side) (d' : Delta.side) =
  Hashtbl.fold
    (fun k c acc ->
      match Hashtbl.find_opt d' k with
      | Some c' -> (Jitbull_util.Intern.to_string k, min c c') :: acc
      | None -> acc)
    d []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let matching_passes_detailed ?(params = default_params) ?obs (dna : Dna.t)
    (dna' : Dna.t) =
  let module Obs = Jitbull_obs.Obs in
  Obs.incr obs "comparator.pairs";
  let matches =
    (* histogram-only timing: one DNA-pair comparison per DB entry per
       Ion compile is too frequent for a trace event each *)
    Obs.time obs "comparator.seconds" (fun () ->
        List.filter_map
          (fun (pass, d) ->
            match List.assoc_opt pass dna'.Dna.deltas with
            | Some d' ->
              (* mirror [similar]: the removed side is checked first, and
                 the reported score is the side that matched *)
              let rm = side_score d.Delta.removed d'.Delta.removed in
              if passes_thresholds params rm then
                Some
                  {
                    md_pass = pass;
                    md_side = `Removed;
                    md_eq_chains = fst rm;
                    md_max_eq_chains = snd rm;
                    md_common = side_common d.Delta.removed d'.Delta.removed;
                  }
              else
                let ad = side_score d.Delta.added d'.Delta.added in
                if passes_thresholds params ad then
                  Some
                    {
                      md_pass = pass;
                      md_side = `Added;
                      md_eq_chains = fst ad;
                      md_max_eq_chains = snd ad;
                      md_common = side_common d.Delta.added d'.Delta.added;
                    }
                else None
            | None -> None)
          dna.Dna.deltas)
  in
  Obs.add obs "comparator.matches" (List.length matches);
  matches

let matching_passes ?params ?obs (dna : Dna.t) (dna' : Dna.t) =
  List.map
    (fun md -> md.md_pass)
    (matching_passes_detailed ?params ?obs dna dna')
