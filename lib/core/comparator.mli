(** The Δ comparator (paper §IV-E, Algorithm 2).

    Two per-pass deltas are similar when either their removed or their
    added sub-chain multisets are: the number of sub-chains in common
    ([EqChains], counting multiplicity) reaches both the absolute
    threshold [Thr] and the fraction [Ratio] of the maximum possible
    ([MaxEqChains = min(|δ|, |δ'|)]). The paper sets [Thr = 3] and
    [Ratio = 0.5], tuned for detection rate over false positives. *)

type params = {
  thr : int;
  ratio : float;
}

val default_params : params  (** Thr = 3, Ratio = 0.5 *)

(** [side_score d d'] = ([EqChains], [MaxEqChains]) for one side — the
    raw inputs to the Thr/Ratio test, exposed so the audit trail can
    record {e why} a pass matched, not just that it did. *)
val side_score : Delta.side -> Delta.side -> int * int

(** [compare_sides ?params d d'] — the COMPARECHAINS function on one side
    (removed or added). Sides are interned-key multisets ({!Delta.side});
    the fold hashes ints only. *)
val compare_sides : ?params:params -> Delta.side -> Delta.side -> bool

(** [similar ?params delta delta'] — Δᵢ ≈ Δ'ᵢ (either side matches). *)
val similar : ?params:params -> Delta.t -> Delta.t -> bool

(** Evidence for one matching pass: which side satisfied the Thr/Ratio
    test ([`Removed] is tried first, as in {!similar}), its scores, and
    the common sub-chains themselves ([md_common], key → min
    multiplicity, sorted; multiplicities sum to [md_eq_chains]) — the
    explanation layer's "matching sub-chains". *)
type match_detail = {
  md_pass : string;
  md_side : [ `Removed | `Added ];
  md_eq_chains : int;
  md_max_eq_chains : int;
  md_common : (string * int) list;
}

(** [side_common d d'] — the multiset intersection behind
    {!side_score}'s EqChains, materialized and sorted by key. Cold-path
    only: called once per {e matching} pass, not during scoring. *)
val side_common : Delta.side -> Delta.side -> (string * int) list

(** [matching_passes_detailed ?params ?obs dna dna'] — one
    {!match_detail} per pass [i] with Δᵢ ≈ Δ'ᵢ, in [dna]'s pass order.
    With [obs]: [comparator.pairs]/[comparator.matches] counters and a
    [comparator.seconds] latency histogram (no trace events — this is the
    policy's hot path). *)
val matching_passes_detailed :
  ?params:params -> ?obs:Jitbull_obs.Obs.t -> Dna.t -> Dna.t -> match_detail list

(** [matching_passes ?params ?obs dna dna'] — pass names [i] with
    Δᵢ ≈ Δ'ᵢ (Algorithm 2's DisPass contribution of one DB entry);
    [matching_passes_detailed] with the evidence dropped. *)
val matching_passes :
  ?params:params -> ?obs:Jitbull_obs.Obs.t -> Dna.t -> Dna.t -> string list
