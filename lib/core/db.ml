module Sexpr = Jitbull_util.Sexpr
module Intern = Jitbull_util.Intern
module Rwlock = Jitbull_util.Rwlock
module Engine = Jitbull_jit.Engine

type entry = {
  cve : string;
  dna : Dna.t;
}

(* Entries live in a growable array (insertion order), with the naive
   [entries] list memoized. Alongside it sits the inverted index used by
   {!matching}: for every DB entry, pass and delta side, one posting per
   sub-chain key. Keys are (pass id, added?, sub-chain id) triples of
   {!Intern} ids, so a lookup hashes three machine words. *)
type t = {
  mutable arr : entry array;
  mutable count : int;
  mutable fwd_cache : entry list option;
  mutable generation : int;
  mutable base_gen : int;
      (** generation of the last {!remove_cve} (0 if none): history from
          [base_gen] to [generation] is append-only, one entry per bump,
          which is what lets {!delta_since} answer with a suffix *)
  lock : Rwlock.t;
      (** queries ([matching]/[entries]/…) run under the read side so
          helper compile domains can consult the DB while [add] /
          [remove_cve] — writers, rare by the paper's lifecycle — mutate
          it exclusively. [generation] is read under the same lock, so a
          policy-cache revalidation never observes a half-applied
          mutation. *)
  postings : (Intern.id * bool * Intern.id, (int * int) list ref) Hashtbl.t;
      (** (pass, side, sub-chain) → (entry index, multiplicity) postings *)
  totals : (int * Intern.id * bool, int) Hashtbl.t;
      (** (entry index, pass, side) → total multiplicity (the |δ'| of the
          comparator's MaxEqChains) *)
}

let create () =
  {
    arr = Array.make 8 { cve = ""; dna = { Dna.func_name = ""; deltas = [] } };
    count = 0;
    fwd_cache = None;
    generation = 0;
    base_gen = 0;
    lock = Rwlock.create ();
    postings = Hashtbl.create 256;
    totals = Hashtbl.create 64;
  }

let is_empty t = Rwlock.with_read t.lock (fun () -> t.count = 0)

let size t = Rwlock.with_read t.lock (fun () -> t.count)

let generation t = Rwlock.with_read t.lock (fun () -> t.generation)

(* Memoizing under the read lock is a benign race: concurrent readers may
   both build the list, but both values are equal and the single-word
   store cannot tear. *)
let entries_unlocked t =
  match t.fwd_cache with
  | Some l -> l
  | None ->
    let l = Array.to_list (Array.sub t.arr 0 t.count) in
    t.fwd_cache <- Some l;
    l

let entries t = Rwlock.with_read t.lock (fun () -> entries_unlocked t)

let index_entry t idx (e : entry) =
  List.iter
    (fun (pass, (d : Delta.t)) ->
      let pid = Intern.intern pass in
      let index_side flag (side : Delta.side) =
        let total = ref 0 in
        Hashtbl.iter
          (fun k c ->
            total := !total + c;
            let key = (pid, flag, k) in
            match Hashtbl.find_opt t.postings key with
            | Some lst -> lst := (idx, c) :: !lst
            | None -> Hashtbl.add t.postings key (ref [ (idx, c) ]))
          side;
        if !total > 0 then Hashtbl.replace t.totals (idx, pid, flag) !total
      in
      index_side false d.Delta.removed;
      index_side true d.Delta.added)
    e.dna.Dna.deltas

let add t entry =
  Rwlock.with_write t.lock (fun () ->
      if t.count = Array.length t.arr then begin
        let bigger = Array.make (2 * t.count) entry in
        Array.blit t.arr 0 bigger 0 t.count;
        t.arr <- bigger
      end;
      t.arr.(t.count) <- entry;
      index_entry t t.count entry;
      t.count <- t.count + 1;
      t.fwd_cache <- None;
      t.generation <- t.generation + 1)

let remove_cve t cve =
  Rwlock.with_write t.lock (fun () ->
      let kept =
        List.filter (fun e -> not (String.equal e.cve cve)) (entries_unlocked t)
      in
      Hashtbl.reset t.postings;
      Hashtbl.reset t.totals;
      t.count <- 0;
      t.fwd_cache <- None;
      List.iter
        (fun e ->
          t.arr.(t.count) <- e;
          index_entry t t.count e;
          t.count <- t.count + 1)
        kept;
      t.fwd_cache <- Some kept;
      t.generation <- t.generation + 1;
      t.base_gen <- t.generation)

let cves t =
  let seen = Hashtbl.create 16 in
  let out =
    List.fold_left
      (fun acc e ->
        if Hashtbl.mem seen e.cve then acc
        else begin
          Hashtbl.add seen e.cve ();
          e.cve :: acc
        end)
      [] (entries t)
  in
  List.rev out

(* ---- the Δ comparison against the whole database ---- *)

type query = {
  q_matches : (string * Comparator.match_detail list) list;
  q_prefilter_candidates : int;
  q_prefilter_hits : int;
  q_generation : int;
  q_size : int;
}

let naive_matching_detailed ?params ?obs t (dna : Dna.t) =
  List.filter_map
    (fun e ->
      match Comparator.matching_passes_detailed ?params ?obs dna e.dna with
      | [] -> None
      | mds -> Some (e.cve, mds))
    (entries_unlocked t)

(* The Thr/Ratio phase shared by the single-table and sharded scans:
   given the accumulated EqChains cells [acc] and the function's
   per-(pass, side) totals, apply the prefilter and the Ratio bound and
   materialize the matches in entry order. Must run under the DB read
   lock — it reads [t.totals], [t.arr] and [t.count]. *)
let finalize_matching ~params ?obs t ~acc ~func_totals (dna : Dna.t) =
  let module Obs = Jitbull_obs.Obs in
  (* (entry, pass) → (added?, EqChains, MaxEqChains) of the side that
     matched; when both sides match, the removed side wins, mirroring the
     or-ordering in [Comparator.similar] *)
  let matched : (int * Intern.id, bool * int * int) Hashtbl.t = Hashtbl.create 16 in
  let hits = ref 0 in
  Hashtbl.iter
    (fun (eidx, pid, flag) eq ->
      if eq >= params.Comparator.thr then begin
        incr hits;
        let ft = Option.value ~default:0 (Hashtbl.find_opt func_totals (pid, flag)) in
        let et = Option.value ~default:0 (Hashtbl.find_opt t.totals (eidx, pid, flag)) in
        let max_eq = min ft et in
        if float_of_int eq >= params.Comparator.ratio *. float_of_int max_eq then
          let keep =
            match Hashtbl.find_opt matched (eidx, pid) with
            | None -> true
            | Some (prev_added, _, _) -> prev_added && not flag
          in
          if keep then Hashtbl.replace matched (eidx, pid) (flag, eq, max_eq)
      end)
    acc;
  Obs.add obs "comparator.prefilter_candidates" (Hashtbl.length acc);
  Obs.add obs "comparator.prefilter_hits" !hits;
  Obs.add obs "comparator.matches" (Hashtbl.length matched);
  let out =
    if Hashtbl.length matched = 0 then []
    else begin
      let out = ref [] in
      for i = t.count - 1 downto 0 do
        let passes =
          List.filter_map
            (fun (pass, (d : Delta.t)) ->
              match Hashtbl.find_opt matched (i, Intern.intern pass) with
              | Some (added, eq, max_eq) ->
                (* materializing the common sub-chains re-reads both deltas
                   but only for matched (entry, pass) cells — the cold
                   path, exactly like the naive comparator *)
                let common =
                  match List.assoc_opt pass t.arr.(i).dna.Dna.deltas with
                  | None -> []
                  | Some (d' : Delta.t) ->
                    if added then Comparator.side_common d.Delta.added d'.Delta.added
                    else Comparator.side_common d.Delta.removed d'.Delta.removed
                in
                Some
                  {
                    Comparator.md_pass = pass;
                    md_side = (if added then `Added else `Removed);
                    md_eq_chains = eq;
                    md_max_eq_chains = max_eq;
                    md_common = common;
                  }
              | None -> None)
            dna.Dna.deltas
        in
        if passes <> [] then out := (t.arr.(i).cve, passes) :: !out
      done;
      !out
    end
  in
  (out, Hashtbl.length acc, !hits)

(* Indexed query: walk the function's sub-chain keys through the postings
   and accumulate EqChains = Σ min(c, c') per (entry, pass, side) cell —
   only cells with at least one overlapping key ever materialize, which is
   the sub-linear early-out for benign functions. Cells reaching Thr
   ("prefilter hits") are then checked against the Ratio bound using the
   precomputed totals. Produces bit-for-bit the same result, in the same
   order (including each match's side and scores), as folding
   {!Comparator.matching_passes_detailed} over [entries]. Returns the
   matches plus the prefilter (candidate, hit) counts. *)
let indexed_matching ~params ?obs t (dna : Dna.t) =
  let acc : (int * Intern.id * bool, int) Hashtbl.t = Hashtbl.create 64 in
  let func_totals : (Intern.id * bool, int) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (pass, (d : Delta.t)) ->
      let pid = Intern.intern pass in
      let scan flag (side : Delta.side) =
        let total = ref 0 in
        Hashtbl.iter
          (fun k c ->
            total := !total + c;
            match Hashtbl.find_opt t.postings (pid, flag, k) with
            | None -> ()
            | Some lst ->
              List.iter
                (fun (eidx, c') ->
                  let key = (eidx, pid, flag) in
                  let cur = Option.value ~default:0 (Hashtbl.find_opt acc key) in
                  Hashtbl.replace acc key (cur + min c c'))
                !lst)
          side;
        if !total > 0 then Hashtbl.replace func_totals (pid, flag) !total
      in
      scan false d.Delta.removed;
      scan true d.Delta.added)
    dna.Dna.deltas;
  finalize_matching ~params ?obs t ~acc ~func_totals dna

let matching_detailed ?(params = Comparator.default_params) ?obs t (dna : Dna.t) =
  let module Obs = Jitbull_obs.Obs in
  Rwlock.with_read t.lock (fun () ->
      let matches, candidates, hits =
        if params.Comparator.thr < 1 then
          (* Thr ≤ 0 lets key-disjoint (even empty) sides match, which the
             overlap-driven index cannot see — use the exhaustive scan
             (no prefilter: every entry is a candidate and a survivor) *)
          (naive_matching_detailed ~params ?obs t dna, t.count, t.count)
        else
          Obs.time obs "comparator.indexed.seconds" (fun () ->
              indexed_matching ~params ?obs t dna)
      in
      {
        q_matches = matches;
        q_prefilter_candidates = candidates;
        q_prefilter_hits = hits;
        q_generation = t.generation;
        q_size = t.count;
      })

let drop_details q_matches =
  List.map
    (fun (cve, mds) -> (cve, List.map (fun md -> md.Comparator.md_pass) mds))
    q_matches

let matching ?params ?obs t (dna : Dna.t) =
  drop_details (matching_detailed ?params ?obs t dna).q_matches

let harvest ?obs t ~cve ~vulns source =
  let module Obs = Jitbull_obs.Obs in
  Obs.span obs
    ~fields:[ ("cve", Jitbull_obs.Jsonx.String cve) ]
    ~fields_of:(fun n -> [ ("entries", Jitbull_obs.Jsonx.Int n) ])
    "db_harvest"
    (fun () ->
      let harvested = ref [] in
      let analyzer ~ctx:_ ~func_index:_ ~name:_ ~trace =
        let dna = Obs.span obs "dna_extract" (fun () -> Dna.extract trace) in
        if Dna.nonempty_passes dna <> [] then harvested := dna :: !harvested;
        Engine.Allow
      in
      let config =
        { Engine.default_config with Engine.vulns; analyzer = Some analyzer; obs }
      in
      (* the demonstrator may crash or detonate — DNA extraction happens at
         compile time, before or despite that *)
      (try ignore (Engine.run_source config source) with
      | Jitbull_runtime.Errors.Crash _
      | Jitbull_runtime.Errors.Shellcode_executed _
      | Jitbull_runtime.Errors.Type_error _ ->
        ());
      let added = List.rev !harvested in
      List.iter (fun dna -> add t { cve; dna }) added;
      Obs.add obs "db.harvested_entries" (List.length added);
      List.length added)

let entry_to_sexpr e =
  Sexpr.list [ Sexpr.atom "entry"; Sexpr.atom e.cve; Dna.to_sexpr e.dna ]

let entry_of_sexpr s =
  match Sexpr.to_list s with
  | [ Sexpr.Atom "entry"; cve; dna ] ->
    { cve = Sexpr.to_atom cve; dna = Dna.of_sexpr dna }
  | _ -> raise (Sexpr.Decode_error "bad db entry")

let to_sexpr t =
  Sexpr.list (Sexpr.atom "jitbull-db" :: List.map entry_to_sexpr (entries t))

let of_sexpr s =
  match Sexpr.to_list s with
  | Sexpr.Atom "jitbull-db" :: rest ->
    let t = create () in
    List.iter (fun e -> add t (entry_of_sexpr e)) rest;
    t
  | _ -> raise (Sexpr.Decode_error "not a jitbull-db file")

let save t path = Sexpr.save path (to_sexpr t)

let load path = of_sexpr (Sexpr.load path)

(* ---- generation deltas (replica sync) ---- *)

type sync = Append of entry list | Resync of entry list

let rec list_drop n l =
  if n <= 0 then l else match l with [] -> [] | _ :: tl -> list_drop (n - 1) tl

(* [add] bumps the generation exactly once per appended entry, and
   [remove_cve] raises [base_gen] to fence off the non-append-only past —
   so for any g in [base_gen, generation] the entries a replica at g is
   missing are precisely the last (generation - g). *)
let delta_since t g =
  Rwlock.with_read t.lock (fun () ->
      let gen = t.generation in
      if g >= t.base_gen && g <= gen then
        (gen, Append (list_drop (t.count - (gen - g)) (entries_unlocked t)))
      else (gen, Resync (entries_unlocked t)))

(* ---- the sharded postings index ---- *)

module Sharded = struct
  type db = t

  type shard = {
    sh_lock : Rwlock.t;
    mutable sh_postings :
      (Intern.id * bool * Intern.id, (int * int) list ref) Hashtbl.t;
  }

  type t = {
    sdb : db;
    shards : shard array;
    indexed_gen : int Atomic.t;  (** DB generation the shards reflect *)
    indexed_count : int Atomic.t;  (** entries reflected in the shards *)
    refresh_mu : Mutex.t;  (** serializes {!refresh}; queries never take it *)
  }

  let shards t = Array.length t.shards
  let generation t = Atomic.get t.indexed_gen
  let db t = t.sdb

  (* Shard by sub-chain key id: ids are dense small ints ({!Intern}), so
     mod spreads a function's keys across shards roughly uniformly
     regardless of which passes produced them. Sharding by pass instead
     would put all load of a hot pass (LICM, GVN dominate real DNA) on
     one shard. *)
  let shard_of n (k : Intern.id) = k land max_int mod n

  let add_posting tbl (key, posting) =
    match Hashtbl.find_opt tbl key with
    | Some lst -> lst := posting :: !lst
    | None -> Hashtbl.add tbl key (ref [ posting ])

  (* Per-shard posting additions for [ents] numbered from [base_idx] —
     grouped so each shard's write lock is taken once per refresh. *)
  let collect_adds n ~base_idx ents =
    let buckets = Array.make n [] in
    List.iteri
      (fun j (e : entry) ->
        let idx = base_idx + j in
        List.iter
          (fun (pass, (d : Delta.t)) ->
            let pid = Intern.intern pass in
            let side flag (sd : Delta.side) =
              Hashtbl.iter
                (fun k c ->
                  let si = shard_of n k in
                  buckets.(si) <- ((pid, flag, k), (idx, c)) :: buckets.(si))
                sd
            in
            side false d.Delta.removed;
            side true d.Delta.added)
          e.dna.Dna.deltas)
      ents;
    buckets

  let refresh t =
    Mutex.lock t.refresh_mu;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.refresh_mu)
      (fun () ->
        let db = t.sdb in
        let gen, base_gen, ents =
          Rwlock.with_read db.lock (fun () ->
              (db.generation, db.base_gen, entries_unlocked db))
        in
        let cur = Atomic.get t.indexed_gen in
        if gen <> cur then begin
          let n = Array.length t.shards in
          let count = List.length ents in
          let icount = Atomic.get t.indexed_count in
          if cur >= base_gen && count >= icount then begin
            (* append-only since our snapshot: index only the new suffix *)
            let buckets =
              collect_adds n ~base_idx:icount (list_drop icount ents)
            in
            Array.iteri
              (fun i adds ->
                if adds <> [] then
                  let sh = t.shards.(i) in
                  Rwlock.with_write sh.sh_lock (fun () ->
                      List.iter (add_posting sh.sh_postings) adds))
              buckets
          end
          else begin
            (* a removal rebuilt the entry numbering: rebuild the shard
               tables off-lock from the snapshot, then swap each in *)
            let fresh = Array.init n (fun _ -> Hashtbl.create 256) in
            let buckets = collect_adds n ~base_idx:0 ents in
            Array.iteri
              (fun i adds -> List.iter (add_posting fresh.(i)) adds)
              buckets;
            Array.iteri
              (fun i sh ->
                Rwlock.with_write sh.sh_lock (fun () ->
                    sh.sh_postings <- fresh.(i)))
              t.shards
          end;
          Atomic.set t.indexed_count count;
          Atomic.set t.indexed_gen gen
        end)

  let create ?(shards = 4) db =
    let n = max 1 shards in
    let t =
      {
        sdb = db;
        shards =
          Array.init n (fun _ ->
              { sh_lock = Rwlock.create (); sh_postings = Hashtbl.create 64 });
        indexed_gen = Atomic.make 0;
        indexed_count = Atomic.make 0;
        refresh_mu = Mutex.create ();
      }
    in
    refresh t;
    t

  (* Scatter/gather query. Lock discipline: every phase releases all its
     locks before the next acquires any — shard read locks one at a time
     during the scatter, then the DB read lock alone for the Thr/Ratio
     finalization — so there is no hold-and-wait against [refresh] (which
     takes the DB read lock, releases it, then shard write locks one at a
     time). Consistency comes from validation instead: the finalize phase
     re-checks that neither the DB generation nor the indexed generation
     moved since the scatter began, and retries (after a refresh) when
     one did. *)
  let rec matching_attempt ~params ?obs t (dna : Dna.t) ~attempts =
    let module Obs = Jitbull_obs.Obs in
    let db = t.sdb in
    let g0 = Atomic.get t.indexed_gen in
    let n = Array.length t.shards in
    let acc : (int * Intern.id * bool, int) Hashtbl.t = Hashtbl.create 64 in
    let func_totals : (Intern.id * bool, int) Hashtbl.t = Hashtbl.create 16 in
    let buckets = Array.make n [] in
    List.iter
      (fun (pass, (d : Delta.t)) ->
        let pid = Intern.intern pass in
        let scan flag (side : Delta.side) =
          let total = ref 0 in
          Hashtbl.iter
            (fun k c ->
              total := !total + c;
              let si = shard_of n k in
              buckets.(si) <- (pid, flag, k, c) :: buckets.(si))
            side;
          if !total > 0 then Hashtbl.replace func_totals (pid, flag) !total
        in
        scan false d.Delta.removed;
        scan true d.Delta.added)
      dna.Dna.deltas;
    Array.iteri
      (fun i sh ->
        match buckets.(i) with
        | [] -> ()
        | keys ->
          (* the verdict service is the only sharded-index consumer, hence
             the service-namespaced per-shard series *)
          Obs.time obs
            (Printf.sprintf "service.shard_lookup.shard%d" i)
            (fun () ->
              Rwlock.with_read sh.sh_lock (fun () ->
                  List.iter
                    (fun (pid, flag, k, c) ->
                      match Hashtbl.find_opt sh.sh_postings (pid, flag, k) with
                      | None -> ()
                      | Some lst ->
                        List.iter
                          (fun (eidx, c') ->
                            let key = (eidx, pid, flag) in
                            let cur =
                              Option.value ~default:0 (Hashtbl.find_opt acc key)
                            in
                            Hashtbl.replace acc key (cur + min c c'))
                          !lst)
                    keys)))
      t.shards;
    let result =
      Rwlock.with_read db.lock (fun () ->
          if db.generation <> g0 || Atomic.get t.indexed_gen <> g0 then None
          else
            let out, candidates, hits =
              finalize_matching ~params ?obs db ~acc ~func_totals dna
            in
            Some
              {
                q_matches = out;
                q_prefilter_candidates = candidates;
                q_prefilter_hits = hits;
                q_generation = g0;
                q_size = db.count;
              })
    in
    match result with
    | Some q -> q
    | None ->
      if attempts <= 0 then
        (* mutations arriving faster than we can validate — the unsharded
           path answers atomically under the DB read lock *)
        matching_detailed ~params ?obs db dna
      else begin
        refresh t;
        matching_attempt ~params ?obs t dna ~attempts:(attempts - 1)
      end

  let matching_detailed ?(params = Comparator.default_params) ?obs t
      (dna : Dna.t) =
    if params.Comparator.thr < 1 then
      (* same naive-scan fallback as the unsharded path *)
      matching_detailed ~params ?obs t.sdb dna
    else matching_attempt ~params ?obs t dna ~attempts:3
end
