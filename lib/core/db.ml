module Sexpr = Jitbull_util.Sexpr
module Engine = Jitbull_jit.Engine

type entry = {
  cve : string;
  dna : Dna.t;
}

type t = { mutable items : entry list }

let create () = { items = [] }

let is_empty t = t.items = []

let entries t = t.items

let add t entry = t.items <- t.items @ [ entry ]

let remove_cve t cve =
  t.items <- List.filter (fun e -> not (String.equal e.cve cve)) t.items

let cves t =
  List.fold_left
    (fun acc e -> if List.mem e.cve acc then acc else acc @ [ e.cve ])
    [] t.items

let harvest ?obs t ~cve ~vulns source =
  let module Obs = Jitbull_obs.Obs in
  Obs.span obs
    ~fields:[ ("cve", Jitbull_obs.Jsonx.String cve) ]
    ~fields_of:(fun n -> [ ("entries", Jitbull_obs.Jsonx.Int n) ])
    "db_harvest"
    (fun () ->
      let harvested = ref [] in
      let analyzer ~func_index:_ ~name:_ ~trace =
        let dna = Obs.span obs "dna_extract" (fun () -> Dna.extract trace) in
        if Dna.nonempty_passes dna <> [] then harvested := dna :: !harvested;
        Engine.Allow
      in
      let config =
        { Engine.default_config with Engine.vulns; analyzer = Some analyzer; obs }
      in
      (* the demonstrator may crash or detonate — DNA extraction happens at
         compile time, before or despite that *)
      (try ignore (Engine.run_source config source) with
      | Jitbull_runtime.Errors.Crash _
      | Jitbull_runtime.Errors.Shellcode_executed _
      | Jitbull_runtime.Errors.Type_error _ ->
        ());
      let added = List.rev !harvested in
      List.iter (fun dna -> add t { cve; dna }) added;
      Obs.add obs "db.harvested_entries" (List.length added);
      List.length added)

let to_sexpr t =
  Sexpr.list
    (Sexpr.atom "jitbull-db"
    :: List.map
         (fun e ->
           Sexpr.list [ Sexpr.atom "entry"; Sexpr.atom e.cve; Dna.to_sexpr e.dna ])
         t.items)

let of_sexpr s =
  match Sexpr.to_list s with
  | Sexpr.Atom "jitbull-db" :: rest ->
    let items =
      List.map
        (fun e ->
          match Sexpr.to_list e with
          | [ Sexpr.Atom "entry"; cve; dna ] ->
            { cve = Sexpr.to_atom cve; dna = Dna.of_sexpr dna }
          | _ -> raise (Sexpr.Decode_error "bad db entry"))
        rest
    in
    { items }
  | _ -> raise (Sexpr.Decode_error "not a jitbull-db file")

let save t path = Sexpr.save path (to_sexpr t)

let load path = of_sexpr (Sexpr.load path)
