(** The JITBULL vulnerability database: DNA vectors of every JITed
    function of every installed vulnerability demonstrator code (VDC).

    Lifecycle (paper §IV-C): when a vulnerability is reported, the
    maintainer extracts the demonstrator's DNA and ships it to users as an
    update; when the patch is applied, the entry is removed. The database
    can hold several concurrent vulnerabilities (the paper measured at
    most 2 overlapping in 2019).

    The on-disk format is a single s-expression file; see
    [bin/jitbull_db] for the management CLI.

    The database is domain-safe: queries ({!matching}, {!entries},
    {!generation}, …) take an internal reader lock while {!add} /
    {!remove_cve} take the writer side, so helper compile domains can run
    the go/no-go comparison concurrently with a DB update arriving on the
    main thread. The engine treats a compile whose enqueue-time
    {!generation} no longer matches as stale and re-analyzes. *)

type entry = {
  cve : string;  (** e.g. "CVE-2019-17026" *)
  dna : Dna.t;  (** one per JITed function of the VDC *)
}

type t

val create : unit -> t

val is_empty : t -> bool

val size : t -> int  (** number of entries, O(1) *)

(** [generation t] increments on every {!add} / {!remove_cve} — the
    engine's policy-decision cache keys on it so any DB mutation
    invalidates previously cached verdicts. *)
val generation : t -> int

val entries : t -> entry list  (** insertion order; memoized *)

(** [add t entry] appends in O(index size of the entry) — amortized O(1)
    array growth plus one posting per (pass, side, sub-chain) of its DNA. *)
val add : t -> entry -> unit

(** [remove_cve t cve] drops every entry of a vulnerability (= the patch
    has been applied) and rebuilds the inverted index. *)
val remove_cve : t -> string -> unit

val cves : t -> string list  (** distinct, insertion order *)

(** [matching ?params ?obs t dna] — every DB entry with ≥1 pass whose Δ is
    similar to the function's, with the matching passes: exactly
    [List.filter_map (fun e -> Comparator.matching_passes dna e.dna …)]
    over {!entries} (same entries, same pass order, same list order), but
    answered through the inverted sub-chain index: only (entry, pass,
    side) cells sharing at least one sub-chain key with the function's
    DNA are ever touched, and only cells whose overlap reaches [Thr] (the
    "prefilter hits") proceed to the Ratio bound — sub-linear in the DB
    size for benign functions, which share few keys with exploit DNA.

    With [obs]: [comparator.indexed.seconds] histogram and
    [comparator.prefilter_candidates] / [comparator.prefilter_hits] /
    [comparator.matches] counters.

    [params.thr < 1] falls back to the naive scan (a non-positive
    threshold matches key-disjoint sides, invisible to an overlap
    index). *)
val matching :
  ?params:Comparator.params ->
  ?obs:Jitbull_obs.Obs.t ->
  t ->
  Dna.t ->
  (string * string list) list

(** One query's full evidence, captured atomically under the read lock —
    the audit trail's raw material. *)
type query = {
  q_matches : (string * Comparator.match_detail list) list;
      (** as {!matching}, with each pass's side and EqChains scores *)
  q_prefilter_candidates : int;
      (** (entry, pass, side) cells sharing ≥1 sub-chain key (naive
          fallback: entries scanned) *)
  q_prefilter_hits : int;  (** cells surviving the Thr prefilter *)
  q_generation : int;  (** DB generation the answer is valid against *)
  q_size : int;  (** entries at query time *)
}

(** {!matching} with the evidence kept: [(matching_detailed t dna).q_matches]
    with details dropped equals [matching t dna] exactly. *)
val matching_detailed :
  ?params:Comparator.params -> ?obs:Jitbull_obs.Obs.t -> t -> Dna.t -> query

(** Drop each match's evidence, keeping CVE and pass names. *)
val drop_details :
  (string * Comparator.match_detail list) list -> (string * string list) list

(** [harvest t ~cve ~vulns source] runs the demonstrator [source] on an
    engine with the given vulnerability configuration active (the engine
    is unpatched during the vulnerability window), extracting the DNA of
    every Ion-compiled function and installing the entries. Returns the
    number of entries added. Functions whose DNA has no non-empty delta
    are skipped (they carry no signal).

    With [obs], harvesting is traced as a [db_harvest] span (fields
    [cve], [entries]) and counted in [db.harvested_entries]. *)
val harvest :
  ?obs:Jitbull_obs.Obs.t ->
  t ->
  cve:string ->
  vulns:Jitbull_passes.Vuln_config.t ->
  string ->
  int

val to_sexpr : t -> Jitbull_util.Sexpr.t
val of_sexpr : Jitbull_util.Sexpr.t -> t

(** One entry in the on-disk / on-wire format ([(entry CVE (dna …))]) —
    the unit of {!delta_since} payloads shipped to verdict-service
    replicas. [entry_of_sexpr] raises [Sexpr.Decode_error] on anything
    else. *)
val entry_to_sexpr : entry -> Jitbull_util.Sexpr.t

val entry_of_sexpr : Jitbull_util.Sexpr.t -> entry

(** What a replica at generation [g] must do to catch up: [Append]
    entries in order (possibly none), or discard everything and
    [Resync] from the full list. *)
type sync = Append of entry list | Resync of entry list

(** [delta_since t g] — (current generation, catch-up payload), captured
    atomically under the read lock. {!add} bumps the generation exactly
    once per appended entry, so any [g] between the last {!remove_cve}
    and now is answered with the missing suffix ([Append]); a [g] from
    before a removal (or from another DB's history) gets [Resync]. *)
val delta_since : t -> int -> int * sync

val save : t -> string -> unit
val load : string -> t

(** The postings index sharded by interned sub-chain key across N
    per-shard reader/writer locks, for the verdict service: concurrent
    queries whose DNA lands on different shards never contend, and a
    DB-generation bump only write-locks one shard at a time.

    The shards are a derived index over an existing {!t}: mutate the DB
    through {!add} / {!remove_cve} as usual, then {!Sharded.refresh} to
    bring the shards up to date (append-only growth indexes just the new
    suffix; a removal rebuilds off-lock and swaps). Queries validate
    generations instead of holding cross-shard locks — a query racing a
    refresh retries and, if the DB keeps moving, falls back to the
    unsharded {!matching_detailed} — so {!Sharded.matching_detailed}
    always equals the unsharded answer at its [q_generation]. *)
module Sharded : sig
  type db = t

  type t

  (** [create ?shards db] (default 4) builds the sharded index and
      refreshes it to [db]'s current generation. *)
  val create : ?shards:int -> db -> t

  val shards : t -> int

  (** The DB generation the shards currently reflect. *)
  val generation : t -> int

  val db : t -> db

  (** Bring the shards up to date with the DB; serialized internally,
      cheap no-op when already current. *)
  val refresh : t -> unit

  (** Scatter/gather {!matching_detailed}: same matches, same order,
      same prefilter counts as the unsharded query at [q_generation].
      With [obs]: per-shard [service.shard_lookup.shard<i>.seconds]
      histograms (plus the comparator counters recorded by the shared
      finalization). *)
  val matching_detailed :
    ?params:Comparator.params ->
    ?obs:Jitbull_obs.Obs.t ->
    t ->
    Dna.t ->
    query
end
