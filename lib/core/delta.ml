module Sexpr = Jitbull_util.Sexpr
module Intern = Jitbull_util.Intern

type side = (Intern.id, int) Hashtbl.t

type t = {
  removed : side;
  added : side;
}

let key_of_ngram ng = String.concat "->" ng

(* Multiset of sub-chains of a dependency graph, keyed by interned
   sub-chain ids.
   - n = 2: the edge multiset (identical to enumerating chains and taking
     2-grams, without the path explosion);
   - n = 3 (the default): length-2 walk counts — for every node, one
     sub-chain per (user, dependency) pair. Same keys as path-enumerated
     3-grams but computed in O(Σ degᵢₙ·degₒᵤₜ), which keeps the Δ
     extractor cheap enough for the paper's 1-20% overhead envelope;
   - n ≥ 4: full chain enumeration under the standard caps. *)
let subchain_multiset ~n (g : Depgraph.t) : side =
  let counts = Hashtbl.create 64 in
  let bump ?(by = 1) k =
    Hashtbl.replace counts k (by + Option.value ~default:0 (Hashtbl.find_opt counts k))
  in
  if n = 2 then
    List.iter
      (fun (node : Depgraph.node) ->
        List.iter
          (fun (dep : Depgraph.node) ->
            bump (Intern.pair node.Depgraph.opcode_id dep.Depgraph.opcode_id))
          node.Depgraph.deps)
      g.Depgraph.nodes
  else if n = 3 then begin
    (* users-per-node map *)
    let user_ops : (int, Intern.id list) Hashtbl.t = Hashtbl.create 64 in
    List.iter
      (fun (node : Depgraph.node) ->
        List.iter
          (fun (dep : Depgraph.node) ->
            let cur =
              Option.value ~default:[] (Hashtbl.find_opt user_ops dep.Depgraph.num)
            in
            Hashtbl.replace user_ops dep.Depgraph.num (node.Depgraph.opcode_id :: cur))
          node.Depgraph.deps)
      g.Depgraph.nodes;
    List.iter
      (fun (mid : Depgraph.node) ->
        match Hashtbl.find_opt user_ops mid.Depgraph.num with
        | None -> ()
        | Some users ->
          List.iter
            (fun user_op ->
              List.iter
                (fun (dep : Depgraph.node) ->
                  bump (Intern.triple user_op mid.Depgraph.opcode_id dep.Depgraph.opcode_id))
                mid.Depgraph.deps)
            users)
      g.Depgraph.nodes;
    (* edges whose endpoint is a root or a leaf still carry signal: count
       the boundary 2-grams as well so removals at chain ends (an unused
       guard is a root!) stay visible *)
    List.iter
      (fun (root : Depgraph.node) ->
        List.iter
          (fun (dep : Depgraph.node) ->
            bump (Intern.pair (Intern.rooted root.Depgraph.opcode_id) dep.Depgraph.opcode_id))
          root.Depgraph.deps)
      g.Depgraph.roots
  end
  else
    List.iter
      (fun chain ->
        List.iter (fun ng -> bump (Intern.intern (key_of_ngram ng))) (Chains.ngrams n chain))
      (Chains.extract g);
  counts

let diff (a : side) (b : side) =
  (* multiset difference a − b *)
  let out = Hashtbl.create 16 in
  Hashtbl.iter
    (fun k ca ->
      let cb = Option.value ~default:0 (Hashtbl.find_opt b k) in
      if ca > cb then Hashtbl.replace out k (ca - cb))
    a;
  out

(* [of_multisets] lets callers that walk a whole snapshot trace compute
   each graph's multiset once instead of once per adjacent pair. *)
let of_multisets ~(before : side) ~(after : side) : t =
  { removed = diff before after; added = diff after before }

let compute ?(n = 3) (before : Depgraph.t) (after : Depgraph.t) : t =
  of_multisets ~before:(subchain_multiset ~n before) ~after:(subchain_multiset ~n after)

let is_empty t = Hashtbl.length t.removed = 0 && Hashtbl.length t.added = 0

let total side = Hashtbl.fold (fun _ c acc -> acc + c) side 0

let side_of_list entries : side =
  let tbl = Hashtbl.create (max 8 (List.length entries)) in
  List.iter (fun (k, c) -> Hashtbl.replace tbl (Intern.intern k) c) entries;
  tbl

let find_key (side : side) key = Hashtbl.find_opt side (Intern.intern key)

let mem_key side key = find_key side key <> None

(* serialization: (delta (removed (<key> <count>) ...) (added ...)) —
   keys are written back as strings, so the on-disk format is unchanged
   by the in-memory interning *)

let side_to_sexpr name side =
  let entries =
    Hashtbl.fold (fun k c acc -> (Intern.to_string k, c) :: acc) side []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    |> List.map (fun (k, c) -> Sexpr.list [ Sexpr.atom k; Sexpr.int c ])
  in
  Sexpr.list (Sexpr.atom name :: entries)

let side_of_sexprs payload : side =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun s ->
      match Sexpr.to_list s with
      | [ k; c ] -> Hashtbl.replace tbl (Intern.intern (Sexpr.to_atom k)) (Sexpr.to_int c)
      | _ -> raise (Sexpr.Decode_error "bad delta entry"))
    payload;
  tbl

let to_sexpr t =
  Sexpr.list
    [ Sexpr.atom "delta"; side_to_sexpr "removed" t.removed; side_to_sexpr "added" t.added ]

let of_sexpr s =
  let removed = side_of_sexprs (Sexpr.field "removed" s) in
  let added = side_of_sexprs (Sexpr.field "added" s) in
  { removed; added }

let to_string t =
  let fmt side =
    Hashtbl.fold (fun k c acc -> Printf.sprintf "%s x%d" (Intern.to_string k) c :: acc) side []
    |> List.sort String.compare |> String.concat ", "
  in
  Printf.sprintf "removed={%s} added={%s}" (fmt t.removed) (fmt t.added)
