(** Δᵢ — the modifications one optimization pass made to the IR,
    represented as the multiset of {e removed} and {e added} dependency
    sub-chains (the paper's δ⁻/δ⁺).

    Sub-chains are opcode n-grams drawn from the enumerated root→leaf
    chains; with [n = 2] they coincide with dependency {e edges}, which is
    exactly what the paper's worked example computes ([A→B→C→D] vs
    [B→C→E] ⇒ δ⁻ = \{A→B, C→D\}, δ⁺ = \{C→E\}). We count multiplicity so
    the comparator's [Thr] threshold counts sub-chain instances as the
    pairwise chain loop of Algorithm 1 does. The default is [n = 3]:
    measured against the corpus it keeps variant detection at 100%% while
    dropping the single-VDC false-positive rate to the paper's 0-5%% band
    (see DESIGN.md §4 and EXPERIMENTS.md). *)

type side = (Jitbull_util.Intern.id, int) Hashtbl.t
(** interned sub-chain key → multiplicity. Keys are {!Jitbull_util.Intern}
    ids of ["a->b"] / ["a->b->c"] strings: the comparator's inner loop
    hashes machine words, never strings (the on-disk format is still
    string-keyed; see {!to_sexpr}). *)

type t = {
  removed : side;
  added : side;
}

(** [compute ?n before after] diffs two dependency graphs. *)
val compute : ?n:int -> Depgraph.t -> Depgraph.t -> t

(** [subchain_multiset ~n g] — the n-gram multiset of a graph;
    [of_multisets] diffs two precomputed multisets (used by {!Dna.extract}
    to compute each trace snapshot's multiset exactly once). *)

val subchain_multiset : n:int -> Depgraph.t -> side
val of_multisets : before:side -> after:side -> t

(** [is_empty t] — the pass changed nothing (or was disabled). *)
val is_empty : t -> bool

(** [size side] — total multiplicity (the paper's |δ|). *)
val total : side -> int

(** [side_of_list entries] — build a side from string keys (tests, bench
    synthesis); [find_key]/[mem_key] look a string key up in a side. *)
val side_of_list : (string * int) list -> side

val find_key : side -> string -> int option
val mem_key : side -> string -> bool

(** Serialization for the on-disk DNA database. *)

val to_sexpr : t -> Jitbull_util.Sexpr.t
val of_sexpr : Jitbull_util.Sexpr.t -> t

val to_string : t -> string
