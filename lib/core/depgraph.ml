module Snapshot = Jitbull_mir.Snapshot
module Intern = Jitbull_util.Intern

type node = {
  num : int;
  opcode : string;
  opcode_id : Intern.id;
  mutable deps : node list;
}

type t = {
  nodes : node list;
  roots : node list;
}

(* Algorithm 1, lines 1–15: for every instruction V with operands, add V
   as a root if absent; each operand V' loses root status and becomes a
   dependency of V. *)
let build (snapshot : Snapshot.t) : t =
  let by_num : (int, node) Hashtbl.t = Hashtbl.create 64 in
  let nodes =
    List.map
      (fun (e : Snapshot.entry) ->
        let n =
          {
            num = e.Snapshot.num;
            opcode = e.Snapshot.opcode;
            opcode_id = Intern.intern e.Snapshot.opcode;
            deps = [];
          }
        in
        Hashtbl.replace by_num e.Snapshot.num n;
        n)
      snapshot.Snapshot.entries
  in
  let in_graph : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let is_root : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (e : Snapshot.entry) ->
      if e.Snapshot.operands <> [] then begin
        let v = Hashtbl.find by_num e.Snapshot.num in
        if not (Hashtbl.mem in_graph v.num) then begin
          Hashtbl.replace in_graph v.num ();
          Hashtbl.replace is_root v.num ()
        end;
        (* deps accumulate newest-first here and are flipped once below —
           the old per-operand [deps @ [v']] append was quadratic in the
           operand count *)
        List.iter
          (fun op_num ->
            match Hashtbl.find_opt by_num op_num with
            | None -> ()
            | Some v' ->
              Hashtbl.remove is_root v'.num;
              Hashtbl.replace in_graph v'.num ();
              v.deps <- v' :: v.deps)
          e.Snapshot.operands
      end)
    snapshot.Snapshot.entries;
  List.iter (fun n -> n.deps <- List.rev n.deps) nodes;
  let roots = List.filter (fun n -> Hashtbl.mem is_root n.num) nodes in
  let nodes = List.filter (fun n -> Hashtbl.mem in_graph n.num) nodes in
  { nodes; roots }

let edges t =
  List.concat_map (fun n -> List.map (fun d -> (n.opcode, d.opcode)) n.deps) t.nodes

let node_count t = List.length t.nodes

let edge_count t =
  List.fold_left (fun acc n -> acc + List.length n.deps) 0 t.nodes

let to_string t =
  let buf = Buffer.create 256 in
  List.iter
    (fun n ->
      let root = if List.memq n t.roots then "*" else " " in
      Buffer.add_string buf
        (Printf.sprintf "%s %d %s -> [%s]\n" root n.num n.opcode
           (String.concat "; " (List.map (fun d -> Printf.sprintf "%d %s" d.num d.opcode) n.deps))))
    t.nodes;
  Buffer.contents buf
