(** Instruction dependency graph (Algorithm 1's BUILDGRAPH).

    Built from an IR {!Jitbull_mir.Snapshot}: every instruction that has
    operands enters the graph; an instruction used as an operand of
    another becomes a dependency of it and stops being a root. Roots are
    therefore the instructions no other instruction uses.

    Nodes carry opcodes, not instruction numbers — chains must compare
    across different functions and across renumbering. *)

type node = {
  num : int;  (** snapshot display number (diagnostics only) *)
  opcode : string;
  opcode_id : Jitbull_util.Intern.id;
      (** interned [opcode] — the Δ extractor builds sub-chain keys from
          ids so the hot path never re-hashes opcode strings *)
  mutable deps : node list;  (** dependencies = operands, in operand order *)
}

type t = {
  nodes : node list;  (** every node, in snapshot order *)
  roots : node list;  (** nodes not used as an operand of any other *)
}

(** [build snapshot] runs Algorithm 1's BUILDGRAPH. Operand references to
    numbers missing from the snapshot (impossible for well-formed
    snapshots) are ignored. *)
val build : Jitbull_mir.Snapshot.t -> t

(** [edges t] — every dependency edge as an (user opcode, dependency
    opcode) pair, one per instruction-level edge. This is the multiset the
    2-gram Δ works on. *)
val edges : t -> (string * string) list

val node_count : t -> int
val edge_count : t -> int

val to_string : t -> string
