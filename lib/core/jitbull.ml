module Engine = Jitbull_jit.Engine
module Pipeline = Jitbull_passes.Pipeline
module Obs = Jitbull_obs.Obs
module Jsonx = Jitbull_obs.Jsonx

(* Sampling-profiler frame for the DB comparison (the go/no-go cost). *)
let prof_comparator = Jitbull_obs.Profile.tag "comparator"

type record = {
  func_name : string;
  matched : (string * string list) list;
  dangerous_passes : string list;
  verdict : [ `Allow | `Disable of string list | `Forbid ];
}

type monitor = {
  mu : Mutex.t;
  mutable records : record list;
}

let new_monitor () = { mu = Mutex.create (); records = [] }

let verdict_name = function
  | `Allow -> "allow"
  | `Disable _ -> "disable"
  | `Forbid -> "forbid"

module Audit = Jitbull_obs.Audit
module Irdiff = Jitbull_obs.Irdiff
module Snapshot = Jitbull_mir.Snapshot
module Intern = Jitbull_util.Intern

let audit_verdict = function
  | `Allow -> Audit.Allow
  | `Disable ps -> Audit.Disable ps
  | `Forbid -> Audit.Forbid

let audit_matches detailed =
  List.map
    (fun (cve, mds) ->
      {
        Audit.cm_cve = cve;
        cm_passes =
          List.map
            (fun (md : Comparator.match_detail) ->
              {
                Audit.pm_pass = md.Comparator.md_pass;
                pm_side =
                  (match md.Comparator.md_side with
                  | `Removed -> "removed"
                  | `Added -> "added");
                pm_eq_chains = md.Comparator.md_eq_chains;
                pm_max_eq_chains = md.Comparator.md_max_eq_chains;
                pm_chains = md.Comparator.md_common;
              })
            mds;
      })
    detailed

(* ---- explain capture: summarize the snapshot trace into an IR diff ---- *)

let opcode_multiset (s : Snapshot.t) =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (e : Snapshot.entry) ->
      Hashtbl.replace tbl e.Snapshot.opcode
        (1 + Option.value ~default:0 (Hashtbl.find_opt tbl e.Snapshot.opcode)))
    s.Snapshot.entries;
  tbl

let opcode_multiset_diff a b =
  Hashtbl.fold
    (fun k ca acc ->
      let cb = Option.value ~default:0 (Hashtbl.find_opt b k) in
      if ca > cb then (k, ca - cb) :: acc else acc)
    a []
  |> List.sort (fun (x, _) (y, _) -> String.compare x y)

let chain_side_to_list (side : Delta.side) =
  Hashtbl.fold (fun k c acc -> (k, c) :: acc) side []
  |> List.sort (fun (a, _) (b, _) ->
         String.compare (Intern.to_string a) (Intern.to_string b))

(* One [Irdiff.pass_diff] per pass that changed the IR: instruction and
   block counts from adjacent snapshots, the opcode multiset diff, and
   the Δ sides the comparator scored (shared with [dna], so capture never
   re-extracts sub-chains). *)
let capture_diff ~(trace : (string * Snapshot.t) list) ~(dna : Dna.t) =
  match trace with
  | [] ->
    {
      Irdiff.cd_func = dna.Dna.func_name;
      cd_total_passes = 0;
      cd_passes = [];
      cd_capture_seconds = 0.0;
    }
  | (_, first) :: rest ->
    let prev = ref first in
    let prev_ops = ref (opcode_multiset first) in
    let passes =
      List.filter_map
        (fun (pass, (snap : Snapshot.t)) ->
          let ops = opcode_multiset snap in
          let chains_added, chains_removed =
            match List.assoc_opt pass dna.Dna.deltas with
            | Some (d : Delta.t) ->
              (chain_side_to_list d.Delta.added, chain_side_to_list d.Delta.removed)
            | None -> ([], [])
          in
          let pd =
            {
              Irdiff.pd_pass = pass;
              pd_instrs_before = Snapshot.entry_count !prev;
              pd_instrs_after = Snapshot.entry_count snap;
              pd_blocks_before = !prev.Snapshot.n_blocks;
              pd_blocks_after = snap.Snapshot.n_blocks;
              pd_opcodes_added = opcode_multiset_diff ops !prev_ops;
              pd_opcodes_removed = opcode_multiset_diff !prev_ops ops;
              pd_chains_added = chains_added;
              pd_chains_removed = chains_removed;
            }
          in
          prev := snap;
          prev_ops := ops;
          if
            pd.Irdiff.pd_instrs_before = pd.Irdiff.pd_instrs_after
            && pd.Irdiff.pd_blocks_before = pd.Irdiff.pd_blocks_after
            && pd.Irdiff.pd_opcodes_added = []
            && pd.Irdiff.pd_opcodes_removed = []
            && chains_added = [] && chains_removed = []
          then None
          else Some pd)
        rest
    in
    {
      Irdiff.cd_func = dna.Dna.func_name;
      cd_total_passes = List.length rest;
      cd_passes = passes;
      cd_capture_seconds = 0.0;
    }

(* The go/no-go rule on a query's matches, shared by the in-process
   analyzer and the verdict service: the dangerous-pass union in pipeline
   order, and the verdict it implies. *)
let verdict_of_matches matched =
  let dangerous =
    List.filter
      (fun p -> List.exists (fun (_, ps) -> List.mem p ps) matched)
      Pipeline.pass_names
  in
  let verdict =
    if dangerous = [] then `Allow
    else if List.for_all Pipeline.can_disable dangerous then `Disable dangerous
    else `Forbid
  in
  (dangerous, verdict)

let analyzer ?params ?monitor ?obs ?(comparator = `Indexed) (db : Db.t) : Engine.analyzer =
 fun ~ctx ~func_index ~name ~trace ->
  (* the whole go/no-go decision is one [policy_decide] span whose fields
     carry the verdict and the matched CVE → pass evidence *)
  let matched_ref = ref [] in
  let dangerous_ref = ref [] in
  let dna_ref = ref { Dna.func_name = name; deltas = [] } in
  let query_ref =
    ref
      {
        Db.q_matches = [];
        q_prefilter_candidates = 0;
        q_prefilter_hits = 0;
        q_generation = 0;
        q_size = 0;
      }
  in
  let verdict_fields verdict =
    [
      ("verdict", Jsonx.String (verdict_name verdict));
      ("passes", Jsonx.List (List.map (fun p -> Jsonx.String p) !dangerous_ref));
      ( "matched",
        Jsonx.Assoc
          (List.map
             (fun (cve, ps) -> (cve, Jsonx.List (List.map (fun p -> Jsonx.String p) ps)))
             !matched_ref) );
    ]
  in
  let t0 = Obs.now obs in
  let verdict =
    Obs.span obs
      ~fields:[ ("func", Jsonx.String name) ]
      ~fields_of:verdict_fields "policy_decide"
      (fun () ->
        let dna = Obs.span obs "dna_extract" (fun () -> Dna.extract trace) in
        dna_ref := dna;
        let query =
          Obs.span obs
            ~fields:[ ("entries", Jsonx.Int (Db.size db)) ]
            "db_compare"
            (fun () ->
              Jitbull_obs.Profile.with_tag prof_comparator @@ fun () ->
              match comparator with
              | `Indexed -> Db.matching_detailed ?params ?obs db dna
              | `Naive ->
                (* fold the executable specification over every entry;
                   evidence fields mirror the indexed path's semantics *)
                let detailed =
                  List.filter_map
                    (fun (e : Db.entry) ->
                      match
                        Comparator.matching_passes_detailed ?params ?obs dna
                          e.Db.dna
                      with
                      | [] -> None
                      | mds -> Some (e.Db.cve, mds))
                    (Db.entries db)
                in
                let n = Db.size db in
                {
                  Db.q_matches = detailed;
                  q_prefilter_candidates = n;
                  q_prefilter_hits = n;
                  q_generation = Db.generation db;
                  q_size = n;
                })
        in
        query_ref := query;
        let matched = Db.drop_details query.Db.q_matches in
        matched_ref := matched;
        let dangerous, verdict = verdict_of_matches matched in
        dangerous_ref := dangerous;
        Obs.incr obs ("policy." ^ verdict_name verdict);
        verdict)
  in
  (match obs with
  | Some o ->
    let q = !query_ref in
    let p = Option.value ~default:Comparator.default_params params in
    (* capture the IR diff before appending, so the diff is in the ring by
       the time the record's seq is observable; helper compile domains run
       this whole block, which attaches the diff to the same record the
       safepoint install will expose *)
    let diff =
      match Obs.irdiff o with
      | None -> None
      | Some _ ->
        let t0c = Obs.now obs in
        let d = capture_diff ~trace ~dna:!dna_ref in
        let dt = Float.max 0.0 (Obs.now obs -. t0c) in
        Obs.observe obs "explain.capture_seconds" dt;
        Some { d with Irdiff.cd_capture_seconds = dt }
    in
    let r =
      Audit.append (Obs.audit o) ~func_name:name ~func_index
        ~bytecode_hash:ctx.Engine.cc_bytecode_hash
        ~feedback_hash:ctx.Engine.cc_feedback_hash
        ~verdict:(audit_verdict verdict)
        ~matches:(audit_matches q.Db.q_matches)
        ~thr:p.Comparator.thr ~ratio:p.Comparator.ratio
        ~prefilter_candidates:q.Db.q_prefilter_candidates
        ~prefilter_hits:q.Db.q_prefilter_hits
        ~db_generation:q.Db.q_generation ~db_size:q.Db.q_size
        ~source:Audit.Fresh
        ~duration:(Float.max 0.0 (Obs.now obs -. t0))
        ()
    in
    (match Obs.irdiff o, diff with
    | Some ring, Some d ->
      Irdiff.attach ring ~seq:r.Audit.seq d;
      List.iter
        (fun (cve, mds) ->
          List.iter
            (fun (md : Comparator.match_detail) ->
              let introduced =
                List.fold_left
                  (fun acc (pd : Irdiff.pass_diff) ->
                    if String.equal pd.Irdiff.pd_pass md.Comparator.md_pass then
                      acc
                      + List.fold_left (fun a (_, c) -> a + c) 0
                          pd.Irdiff.pd_chains_added
                    else acc)
                  0 d.Irdiff.cd_passes
              in
              Irdiff.record_contribution ring ~pass:md.Comparator.md_pass ~cve
                introduced)
            mds)
        q.Db.q_matches
    | _ -> ())
  | None -> ());
  (match monitor with
  | Some m ->
    (* analyses run on helper compile domains in background mode *)
    Mutex.lock m.mu;
    m.records <-
      { func_name = name; matched = !matched_ref; dangerous_passes = !dangerous_ref; verdict }
      :: m.records;
    Mutex.unlock m.mu
  | None -> ());
  match verdict with
  | `Allow -> Engine.Allow
  | `Disable passes -> Engine.Disable_passes passes
  | `Forbid -> Engine.Forbid_jit

let config ?params ?monitor ?obs ?comparator ?(policy_cache = true) ?compile_pool
    ~vulns (db : Db.t) : Engine.config =
  let analyzer =
    if Db.is_empty db then None
    else Some (analyzer ?params ?monitor ?obs ?comparator db)
  in
  let policy_cache =
    if policy_cache && analyzer <> None then
      Some (Engine.Policy_cache.create ~generation:(fun () -> Db.generation db) ())
    else None
  in
  { Engine.default_config with Engine.vulns; analyzer; obs; policy_cache; compile_pool }
