module Engine = Jitbull_jit.Engine
module Pipeline = Jitbull_passes.Pipeline
module Obs = Jitbull_obs.Obs
module Jsonx = Jitbull_obs.Jsonx

type record = {
  func_name : string;
  matched : (string * string list) list;
  dangerous_passes : string list;
  verdict : [ `Allow | `Disable of string list | `Forbid ];
}

type monitor = {
  mu : Mutex.t;
  mutable records : record list;
}

let new_monitor () = { mu = Mutex.create (); records = [] }

let verdict_name = function
  | `Allow -> "allow"
  | `Disable _ -> "disable"
  | `Forbid -> "forbid"

let analyzer ?params ?monitor ?obs ?(comparator = `Indexed) (db : Db.t) : Engine.analyzer =
 fun ~func_index:_ ~name ~trace ->
  (* the whole go/no-go decision is one [policy_decide] span whose fields
     carry the verdict and the matched CVE → pass evidence *)
  let matched_ref = ref [] in
  let dangerous_ref = ref [] in
  let verdict_fields verdict =
    [
      ("verdict", Jsonx.String (verdict_name verdict));
      ("passes", Jsonx.List (List.map (fun p -> Jsonx.String p) !dangerous_ref));
      ( "matched",
        Jsonx.Assoc
          (List.map
             (fun (cve, ps) -> (cve, Jsonx.List (List.map (fun p -> Jsonx.String p) ps)))
             !matched_ref) );
    ]
  in
  let verdict =
    Obs.span obs
      ~fields:[ ("func", Jsonx.String name) ]
      ~fields_of:verdict_fields "policy_decide"
      (fun () ->
        let dna = Obs.span obs "dna_extract" (fun () -> Dna.extract trace) in
        let matched =
          Obs.span obs
            ~fields:[ ("entries", Jsonx.Int (Db.size db)) ]
            "db_compare"
            (fun () ->
              match comparator with
              | `Indexed -> Db.matching ?params ?obs db dna
              | `Naive ->
                List.filter_map
                  (fun (e : Db.entry) ->
                    match Comparator.matching_passes ?params ?obs dna e.Db.dna with
                    | [] -> None
                    | passes -> Some (e.Db.cve, passes))
                  (Db.entries db))
        in
        matched_ref := matched;
        let dangerous =
          (* union in pipeline order *)
          List.filter
            (fun p -> List.exists (fun (_, ps) -> List.mem p ps) matched)
            Pipeline.pass_names
        in
        dangerous_ref := dangerous;
        let verdict =
          if dangerous = [] then `Allow
          else if List.for_all Pipeline.can_disable dangerous then `Disable dangerous
          else `Forbid
        in
        Obs.incr obs ("policy." ^ verdict_name verdict);
        verdict)
  in
  (match monitor with
  | Some m ->
    (* analyses run on helper compile domains in background mode *)
    Mutex.lock m.mu;
    m.records <-
      { func_name = name; matched = !matched_ref; dangerous_passes = !dangerous_ref; verdict }
      :: m.records;
    Mutex.unlock m.mu
  | None -> ());
  match verdict with
  | `Allow -> Engine.Allow
  | `Disable passes -> Engine.Disable_passes passes
  | `Forbid -> Engine.Forbid_jit

let config ?params ?monitor ?obs ?comparator ?(policy_cache = true) ?compile_pool
    ~vulns (db : Db.t) : Engine.config =
  let analyzer =
    if Db.is_empty db then None
    else Some (analyzer ?params ?monitor ?obs ?comparator db)
  in
  let policy_cache =
    if policy_cache && analyzer <> None then
      Some (Engine.Policy_cache.create ~generation:(fun () -> Db.generation db) ())
    else None
  in
  { Engine.default_config with Engine.vulns; analyzer; obs; policy_cache; compile_pool }
