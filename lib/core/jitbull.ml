module Engine = Jitbull_jit.Engine
module Pipeline = Jitbull_passes.Pipeline
module Obs = Jitbull_obs.Obs
module Jsonx = Jitbull_obs.Jsonx

type record = {
  func_name : string;
  matched : (string * string list) list;
  dangerous_passes : string list;
  verdict : [ `Allow | `Disable of string list | `Forbid ];
}

type monitor = {
  mu : Mutex.t;
  mutable records : record list;
}

let new_monitor () = { mu = Mutex.create (); records = [] }

let verdict_name = function
  | `Allow -> "allow"
  | `Disable _ -> "disable"
  | `Forbid -> "forbid"

module Audit = Jitbull_obs.Audit

let audit_verdict = function
  | `Allow -> Audit.Allow
  | `Disable ps -> Audit.Disable ps
  | `Forbid -> Audit.Forbid

let audit_matches detailed =
  List.map
    (fun (cve, mds) ->
      {
        Audit.cm_cve = cve;
        cm_passes =
          List.map
            (fun (md : Comparator.match_detail) ->
              {
                Audit.pm_pass = md.Comparator.md_pass;
                pm_side =
                  (match md.Comparator.md_side with
                  | `Removed -> "removed"
                  | `Added -> "added");
                pm_eq_chains = md.Comparator.md_eq_chains;
                pm_max_eq_chains = md.Comparator.md_max_eq_chains;
              })
            mds;
      })
    detailed

let analyzer ?params ?monitor ?obs ?(comparator = `Indexed) (db : Db.t) : Engine.analyzer =
 fun ~ctx ~func_index ~name ~trace ->
  (* the whole go/no-go decision is one [policy_decide] span whose fields
     carry the verdict and the matched CVE → pass evidence *)
  let matched_ref = ref [] in
  let dangerous_ref = ref [] in
  let query_ref =
    ref
      {
        Db.q_matches = [];
        q_prefilter_candidates = 0;
        q_prefilter_hits = 0;
        q_generation = 0;
        q_size = 0;
      }
  in
  let verdict_fields verdict =
    [
      ("verdict", Jsonx.String (verdict_name verdict));
      ("passes", Jsonx.List (List.map (fun p -> Jsonx.String p) !dangerous_ref));
      ( "matched",
        Jsonx.Assoc
          (List.map
             (fun (cve, ps) -> (cve, Jsonx.List (List.map (fun p -> Jsonx.String p) ps)))
             !matched_ref) );
    ]
  in
  let t0 = Obs.now obs in
  let verdict =
    Obs.span obs
      ~fields:[ ("func", Jsonx.String name) ]
      ~fields_of:verdict_fields "policy_decide"
      (fun () ->
        let dna = Obs.span obs "dna_extract" (fun () -> Dna.extract trace) in
        let query =
          Obs.span obs
            ~fields:[ ("entries", Jsonx.Int (Db.size db)) ]
            "db_compare"
            (fun () ->
              match comparator with
              | `Indexed -> Db.matching_detailed ?params ?obs db dna
              | `Naive ->
                (* fold the executable specification over every entry;
                   evidence fields mirror the indexed path's semantics *)
                let detailed =
                  List.filter_map
                    (fun (e : Db.entry) ->
                      match
                        Comparator.matching_passes_detailed ?params ?obs dna
                          e.Db.dna
                      with
                      | [] -> None
                      | mds -> Some (e.Db.cve, mds))
                    (Db.entries db)
                in
                let n = Db.size db in
                {
                  Db.q_matches = detailed;
                  q_prefilter_candidates = n;
                  q_prefilter_hits = n;
                  q_generation = Db.generation db;
                  q_size = n;
                })
        in
        query_ref := query;
        let matched = Db.drop_details query.Db.q_matches in
        matched_ref := matched;
        let dangerous =
          (* union in pipeline order *)
          List.filter
            (fun p -> List.exists (fun (_, ps) -> List.mem p ps) matched)
            Pipeline.pass_names
        in
        dangerous_ref := dangerous;
        let verdict =
          if dangerous = [] then `Allow
          else if List.for_all Pipeline.can_disable dangerous then `Disable dangerous
          else `Forbid
        in
        Obs.incr obs ("policy." ^ verdict_name verdict);
        verdict)
  in
  (match obs with
  | Some o ->
    let q = !query_ref in
    let p = Option.value ~default:Comparator.default_params params in
    ignore
      (Audit.append (Obs.audit o) ~func_name:name ~func_index
         ~bytecode_hash:ctx.Engine.cc_bytecode_hash
         ~feedback_hash:ctx.Engine.cc_feedback_hash
         ~verdict:(audit_verdict verdict)
         ~matches:(audit_matches q.Db.q_matches)
         ~thr:p.Comparator.thr ~ratio:p.Comparator.ratio
         ~prefilter_candidates:q.Db.q_prefilter_candidates
         ~prefilter_hits:q.Db.q_prefilter_hits
         ~db_generation:q.Db.q_generation ~db_size:q.Db.q_size
         ~source:Audit.Fresh
         ~duration:(Float.max 0.0 (Obs.now obs -. t0))
         ())
  | None -> ());
  (match monitor with
  | Some m ->
    (* analyses run on helper compile domains in background mode *)
    Mutex.lock m.mu;
    m.records <-
      { func_name = name; matched = !matched_ref; dangerous_passes = !dangerous_ref; verdict }
      :: m.records;
    Mutex.unlock m.mu
  | None -> ());
  match verdict with
  | `Allow -> Engine.Allow
  | `Disable passes -> Engine.Disable_passes passes
  | `Forbid -> Engine.Forbid_jit

let config ?params ?monitor ?obs ?comparator ?(policy_cache = true) ?compile_pool
    ~vulns (db : Db.t) : Engine.config =
  let analyzer =
    if Db.is_empty db then None
    else Some (analyzer ?params ?monitor ?obs ?comparator db)
  in
  let policy_cache =
    if policy_cache && analyzer <> None then
      Some (Engine.Policy_cache.create ~generation:(fun () -> Db.generation db) ())
    else None
  in
  { Engine.default_config with Engine.vulns; analyzer; obs; policy_cache; compile_pool }
