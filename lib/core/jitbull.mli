(** JITBULL — the go/no-go policy, wired into the engine.

    [analyzer db] produces the {!Jitbull_jit.Engine.analyzer} implementing
    the paper's step 2: on every Ion compilation, extract the function's
    DNA from the pass snapshots and compare it against every VDC DNA in
    the database; the union of matching passes becomes the dangerous-pass
    list. An empty list allows the compilation; otherwise the engine
    recompiles with those passes disabled, or refuses JIT for the function
    when a mandatory pass matched.

    A {!record} is appended to the monitor for every analyzed function so
    the evaluation harness can compute the paper's
    %Safe / %PassDis / %NoJIT metrics and inspect {e which} passes were
    flagged (e.g. GVN for CVE-2019-17026 variants). *)

type record = {
  func_name : string;
  matched : (string * string list) list;  (** CVE → matching passes *)
  dangerous_passes : string list;  (** union, pipeline order *)
  verdict : [ `Allow | `Disable of string list | `Forbid ];
}

type monitor = {
  mutable records : record list;  (** newest first *)
}

val new_monitor : unit -> monitor

(** [analyzer ?params ?monitor ?obs db] builds the engine hook. The
    database is consulted live: entries added or removed later affect
    subsequent compilations (the patch-applied lifecycle).

    With [obs] installed, every analysis is traced: a [policy_decide]
    span (fields [func], [verdict], [passes], [matched]) wrapping
    [dna_extract] and [db_compare] child spans, plus
    [policy.allow]/[policy.disable]/[policy.forbid] counters. *)
val analyzer :
  ?params:Comparator.params ->
  ?monitor:monitor ->
  ?obs:Jitbull_obs.Obs.t ->
  Db.t ->
  Jitbull_jit.Engine.analyzer

(** [config ?params ?monitor ?obs ~vulns db] — an engine configuration
    with JITBULL installed, the vulnerability window's unpatched engine.
    When [db] is empty the analyzer is omitted entirely (zero overhead,
    paper §V). [obs] is installed both into the analyzer and the engine
    configuration. *)
val config :
  ?params:Comparator.params ->
  ?monitor:monitor ->
  ?obs:Jitbull_obs.Obs.t ->
  vulns:Jitbull_passes.Vuln_config.t ->
  Db.t ->
  Jitbull_jit.Engine.config
