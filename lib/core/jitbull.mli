(** JITBULL — the go/no-go policy, wired into the engine.

    [analyzer db] produces the {!Jitbull_jit.Engine.analyzer} implementing
    the paper's step 2: on every Ion compilation, extract the function's
    DNA from the pass snapshots and compare it against every VDC DNA in
    the database; the union of matching passes becomes the dangerous-pass
    list. An empty list allows the compilation; otherwise the engine
    recompiles with those passes disabled, or refuses JIT for the function
    when a mandatory pass matched.

    A {!record} is appended to the monitor for every analyzed function so
    the evaluation harness can compute the paper's
    %Safe / %PassDis / %NoJIT metrics and inspect {e which} passes were
    flagged (e.g. GVN for CVE-2019-17026 variants). *)

type record = {
  func_name : string;
  matched : (string * string list) list;  (** CVE → matching passes *)
  dangerous_passes : string list;  (** union, pipeline order *)
  verdict : [ `Allow | `Disable of string list | `Forbid ];
}

type monitor = {
  mu : Mutex.t;  (** guards [records]: analyses may run on helper domains *)
  mutable records : record list;  (** newest first *)
}

val new_monitor : unit -> monitor

(** [verdict_of_matches matched] — the go/no-go rule on a query's
    CVE → matching-passes list: the dangerous-pass union (pipeline
    order) and the verdict it implies. Shared by {!analyzer} and the
    verdict service, so a remote verdict is by construction the same
    function of the same DB query as a local one. *)
val verdict_of_matches :
  (string * string list) list ->
  string list * [ `Allow | `Disable of string list | `Forbid ]

(** Converters into [lib/obs]'s audit vocabulary, shared with the
    verdict service so server-side audit records carry the same
    evidence shape as local ones. *)
val audit_verdict :
  [ `Allow | `Disable of string list | `Forbid ] -> Jitbull_obs.Audit.verdict

val audit_matches :
  (string * Comparator.match_detail list) list ->
  Jitbull_obs.Audit.cve_match list

(** [analyzer ?params ?monitor ?obs ?comparator db] builds the engine
    hook. The database is consulted live: entries added or removed later
    affect subsequent compilations (the patch-applied lifecycle).

    [comparator] selects how the DB comparison runs: [`Indexed] (default)
    answers through {!Db.matching}'s inverted sub-chain index, [`Naive]
    folds {!Comparator.matching_passes} over every entry. Both produce
    identical verdicts (a property test asserts it); the naive path is
    kept as the executable specification and for A/B measurement
    ([bench overhead], [jsrun --naive-comparator]).

    With [obs] installed, every analysis is traced: a [policy_decide]
    span (fields [func], [verdict], [passes], [matched]) wrapping
    [dna_extract] and [db_compare] child spans, plus
    [policy.allow]/[policy.disable]/[policy.forbid] counters. *)
val analyzer :
  ?params:Comparator.params ->
  ?monitor:monitor ->
  ?obs:Jitbull_obs.Obs.t ->
  ?comparator:[ `Indexed | `Naive ] ->
  Db.t ->
  Jitbull_jit.Engine.analyzer

(** [config ?params ?monitor ?obs ?comparator ?policy_cache ~vulns db] —
    an engine configuration with JITBULL installed, the vulnerability
    window's unpatched engine. When [db] is empty the analyzer is omitted
    entirely (zero overhead, paper §V). [obs] is installed both into the
    analyzer and the engine configuration.

    [policy_cache] (default [true]) installs an
    {!Jitbull_jit.Engine.Policy_cache} wired to [db]'s generation counter,
    so re-JITs of an already-decided function — across engines sharing
    this configuration — skip DNA extraction and comparison; any
    [Db.add]/[Db.remove_cve] invalidates it. Pass [false] to analyze
    every Ion compile afresh (every compile then produces a monitor
    record, which some tests rely on).

    [compile_pool] hands the engine a helper-domain pool for
    off-main-thread Ion compilation (see
    {!Jitbull_jit.Compile_queue}); the caller owns and shuts it down. *)
val config :
  ?params:Comparator.params ->
  ?monitor:monitor ->
  ?obs:Jitbull_obs.Obs.t ->
  ?comparator:[ `Indexed | `Naive ] ->
  ?policy_cache:bool ->
  ?compile_pool:Jitbull_jit.Compile_queue.t ->
  vulns:Jitbull_passes.Vuln_config.t ->
  Db.t ->
  Jitbull_jit.Engine.config
