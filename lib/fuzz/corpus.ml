module Prng = Jitbull_util.Prng

type entry = {
  id : int;
  source : string;
  gain : int;
  il : string option;
}

type t = {
  dir : string option;
  mutable next_id : int;
  mutable items : entry list;  (* newest first *)
  mutable total_gain : int;
}

let rec mkdir_p path =
  if path <> "" && path <> "/" && path <> "." && not (Sys.file_exists path) then begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

let entry_path dir id = Filename.concat dir (Printf.sprintf "%06d.js" id)
let il_path dir id = Filename.concat dir (Printf.sprintf "%06d.il" id)

let load_dir dir =
  mkdir_p dir;
  Sys.readdir dir |> Array.to_list
  |> List.filter_map (fun name ->
         if Filename.check_suffix name ".js" then
           match int_of_string_opt (Filename.chop_suffix name ".js") with
           | Some id -> Some (id, Filename.concat dir name)
           | None -> None
         else None)
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.map (fun (id, path) ->
         let il =
           let p = il_path dir id in
           if Sys.file_exists p then Some (read_file p) else None
         in
         { id; source = read_file path; gain = 1; il })

let create ?dir () =
  let items = match dir with None -> [] | Some d -> List.rev (load_dir d) in
  let next_id = List.fold_left (fun acc e -> max acc (e.id + 1)) 0 items in
  { dir; next_id; items; total_gain = List.fold_left (fun acc e -> acc + e.gain) 0 items }

let length t = List.length t.items
let entries t = List.rev t.items
let dir t = t.dir

let add t ?il ~gain source =
  let gain = max 1 gain in
  let e = { id = t.next_id; source; gain; il } in
  t.next_id <- t.next_id + 1;
  t.items <- e :: t.items;
  t.total_gain <- t.total_gain + gain;
  (match t.dir with
  | None -> ()
  | Some d ->
    write_file (entry_path d e.id) source;
    match il with None -> () | Some text -> write_file (il_path d e.id) text);
  e

let pick rng t =
  match t.items with
  | [] -> None
  | items ->
    let target = Prng.int rng (max 1 t.total_gain) in
    let rec walk acc = function
      | [] -> List.hd items
      | e :: rest -> if acc + e.gain > target then e else walk (acc + e.gain) rest
    in
    Some (walk 0 items)
