(** Corpus of coverage-increasing inputs.

    The harness adds an input only when it contributed new coverage
    features (or produced a signal); {!pick} draws a mutation parent,
    weighted by how much coverage the entry gained when admitted, so
    inputs that opened new engine behavior are mutated more often.

    With a [dir], entries persist as [NNNNNN.js] files; {!create} reloads
    whatever a previous campaign left there (the nightly CI job keeps the
    directory as a cached artifact), and {!add} writes through. Entries
    born from the typed mutation IL additionally carry their serialized
    {!Il} program (persisted as an [NNNNNN.il] sidecar) so later
    campaigns and sync peers can keep mutating them at the IL level. *)

type entry = {
  id : int;
  source : string;
  gain : int;  (** new coverage features when admitted (≥ 1) *)
  il : string option;  (** serialized {!Il.prog} this entry lowers from *)
}

type t

(** [create ?dir ()] — an empty corpus, or one reloaded from [dir]
    (created if missing; reloaded entries get [gain = 1]). *)
val create : ?dir:string -> unit -> t

val length : t -> int
val entries : t -> entry list
val dir : t -> string option

(** [add t ?il ~gain source] — admit, persist when backed by a
    directory ([?il] is the serialized IL form, if the input has one). *)
val add : t -> ?il:string -> gain:int -> string -> entry

(** Gain-weighted random draw; [None] on an empty corpus. *)
val pick : Jitbull_util.Prng.t -> t -> entry option
