module Op = Jitbull_bytecode.Op
module Dna = Jitbull_core.Dna
module Delta = Jitbull_core.Delta
module Intern = Jitbull_util.Intern

type t = (int, unit) Hashtbl.t

let create () : t = Hashtbl.create 1024
let count (t : t) = Hashtbl.length t
let seen (t : t) f = Hashtbl.mem t f

let features (t : t) =
  List.sort compare (Hashtbl.fold (fun f () acc -> f :: acc) t [])

let add_features (t : t) fs =
  List.fold_left
    (fun gained f ->
      if Hashtbl.mem t f then gained
      else begin
        Hashtbl.add t f ();
        gained + 1
      end)
    0 fs

(* FNV-style mixing; features are kept positive so they can double as
   array indices in any future fixed-size bitmap implementation. *)
let mix h x = ((h * 16777619) lxor x) land max_int

(* Operand-insensitive opcode kind, except that binop/unop keep their
   operator: [a + b] and [a << b] reach different compiler paths, while
   [Push_const 1] vs [Push_const 2] do not. *)
let op_tag : Op.t -> int = function
  | Op.Push_const _ -> 1
  | Load_local _ -> 2
  | Store_local _ -> 3
  | Load_global _ -> 4
  | Store_global _ -> 5
  | Declare_global _ -> 6
  | Pop -> 7
  | Dup -> 8
  | Binop op -> 0x100 lor (Hashtbl.hash op land 0xff)
  | Unop op -> 0x200 lor (Hashtbl.hash op land 0xff)
  | Jump _ -> 9
  | Jump_if_false _ -> 10
  | Jump_if_true _ -> 11
  | New_array _ -> 12
  | New_object _ -> 13
  | Get_index -> 14
  | Set_index -> 15
  | Get_member _ -> 16
  | Set_member _ -> 17
  | Call _ -> 18
  | Call_method _ -> 19
  | Return -> 20
  | Return_undefined -> 21

let features_of_func acc (f : Op.func) =
  let acc = ref acc in
  let n = Array.length f.Op.code in
  for i = 0 to n - 2 do
    let bigram = mix (mix 0x42 (op_tag f.Op.code.(i))) (op_tag f.Op.code.(i + 1)) in
    acc := bigram :: !acc
  done;
  !acc

let features_of_bytecode (p : Op.program) =
  let acc = Array.fold_left features_of_func [] p.Op.funcs in
  features_of_func acc p.Op.main

let side_features acc ~pass ~tag (side : Delta.side) =
  let base = mix (mix 0x444e41 (Hashtbl.hash pass)) tag in
  Hashtbl.fold (fun key _count acc -> mix base (Hashtbl.hash (Intern.to_string key)) :: acc) side acc

let features_of_dna (dna : Dna.t) =
  List.fold_left
    (fun acc (pass, (d : Delta.t)) ->
      let acc = side_features acc ~pass ~tag:0 d.Delta.removed in
      side_features acc ~pass ~tag:1 d.Delta.added)
    [] dna.Dna.deltas

let feature_of_flag s = mix 0xf1a6 (Hashtbl.hash s)

let features_of_run (r : Oracle.instrumented) =
  let acc =
    match r.Oracle.i_bytecode with
    | Some bc -> features_of_bytecode bc
    | None -> []
  in
  let acc = List.fold_left (fun acc dna -> List.rev_append (features_of_dna dna) acc) acc r.Oracle.i_dnas in
  let acc = List.fold_left (fun acc flag -> feature_of_flag flag :: acc) acc r.Oracle.i_events in
  feature_of_flag ("verdict:" ^ Oracle.verdict_kind r.Oracle.i_verdict) :: acc
