(** Coverage map for the coverage-guided fuzzer.

    "Coverage" here is deliberately cheap: no per-edge instrumentation of
    the engine, just features derived from artifacts the pipeline already
    produces —

    - bytecode opcode {e bigrams} (adjacent opcode-kind pairs per
      function), a proxy for which VM/compiler shapes an input reaches;
    - per-pass Δ sub-chain keys from the DNA the go/no-go machinery
      extracts anyway (pass name × removed/added side × interned
      sub-chain), a proxy for which optimizer rewrites fired;
    - engine events (bailout/deopt/blacklist observed, go/no-go verdict
      kinds, per-pass "changed the graph" bits), read from the
      [Obs]-pattern counters the engine and pipeline publish.

    Each feature is hashed to an [int]; the map is the set of feature
    hashes ever seen. An input is "interesting" (kept in the corpus) iff
    it contributes at least one unseen feature — the classic AFL-style
    keep rule, over compiler-level rather than branch-level signals. *)

type t

val create : unit -> t

(** Distinct features seen so far. *)
val count : t -> int

(** [add_features t fs] marks every feature in [fs] as seen and returns
    how many of them were new. *)
val add_features : t -> int list -> int

val seen : t -> int -> bool

(** Every feature hash in the map, sorted — the payload of a
    master/worker coverage sync ({!Sync}). *)
val features : t -> int list

(** {2 Feature extraction} *)

(** Opcode-kind bigrams over every function (and main) of a compiled
    program. Operand-insensitive apart from binop/unop operators, so two
    programs differing only in constants map to the same features. *)
val features_of_bytecode : Jitbull_bytecode.Op.program -> int list

(** One feature per (pass, side, sub-chain key) present in a DNA — the
    same Δ sub-chains the go/no-go comparator matches on. *)
val features_of_dna : Jitbull_core.Dna.t -> int list

(** Hash an engine-event flag (e.g. ["bailout"], ["verdict:forbid"],
    ["pass-changed:gvn"]) into feature space. *)
val feature_of_flag : string -> int

(** All features of one instrumented oracle run: bytecode bigrams, DNA
    sub-chains, engine-event flags, and the oracle verdict kind. *)
val features_of_run : Oracle.instrumented -> int list
