(* Program generators. Implementation notes:
   - generation is pure over a Random.State seeded per call, so a seed
     identifies a program forever (fuzzing campaigns are replayable);
   - benign programs use bounded loops, numeric-only hot arithmetic, and
     in-bounds array accesses, so no guard ever fails (no bailouts, hence
     no replay-divergence concerns — see DESIGN.md);
   - aggressive programs deliberately stage the CVE gadget shapes. *)

type g = {
  rng : Random.State.t;
  mutable n_vars : int;
}

let pick g lst = List.nth lst (Random.State.int g.rng (List.length lst))

let fresh g =
  let v = Printf.sprintf "x%d" g.n_vars in
  g.n_vars <- g.n_vars + 1;
  v

(* ---- benign ---- *)

let rec num_expr g vars depth =
  if depth <= 0 || vars = [] then
    match Random.State.int g.rng 3 with
    | 0 -> string_of_int (Random.State.int g.rng 100)
    | 1 when vars <> [] -> pick g vars
    | _ -> string_of_int (Random.State.int g.rng 10)
  else
    match Random.State.int g.rng 8 with
    | 0 -> Printf.sprintf "(%s + %s)" (num_expr g vars (depth - 1)) (num_expr g vars (depth - 1))
    | 1 -> Printf.sprintf "(%s - %s)" (num_expr g vars (depth - 1)) (num_expr g vars (depth - 1))
    | 2 -> Printf.sprintf "(%s * %s)" (num_expr g vars (depth - 1)) (num_expr g vars (depth - 1))
    | 3 -> Printf.sprintf "(%s %% 7 + 7)" (num_expr g vars (depth - 1))
    | 4 -> Printf.sprintf "(%s & 255)" (num_expr g vars (depth - 1))
    | 5 -> Printf.sprintf "(%s | 1)" (num_expr g vars (depth - 1))
    | 6 ->
      Printf.sprintf "(%s < %s ? %s : %s)" (num_expr g vars 0) (num_expr g vars 0)
        (num_expr g vars (depth - 1)) (num_expr g vars (depth - 1))
    | _ -> Printf.sprintf "Math.floor(%s / 3)" (num_expr g vars (depth - 1))

type params = {
  p_seed : int;
  p_funcs : int;  (* top-level functions (≥ 1) *)
  p_rounds : int;  (* warm-up rounds in the top-level driver loop (≥ 1) *)
  p_depth : int;  (* expression nesting depth (≥ 0) *)
}

let show_params p =
  Printf.sprintf "{seed=%d; funcs=%d; rounds=%d; depth=%d}" p.p_seed p.p_funcs p.p_rounds
    p.p_depth

let benign_function g ~depth idx =
  let name = Printf.sprintf "fn%d" idx in
  let params = [ "p0"; "p1" ] in
  let body = Buffer.create 128 in
  let vars = ref params in
  let emit fmt = Printf.ksprintf (fun s -> Buffer.add_string body ("  " ^ s ^ "\n")) fmt in
  for _ = 1 to 1 + Random.State.int g.rng 3 do
    let v = fresh g in
    emit "var %s = %s;" v (num_expr g !vars depth);
    vars := v :: !vars
  done;
  let acc = fresh g in
  let i = fresh g in
  emit "var %s = 0;" acc;
  emit "for (var %s = 0; %s < %d; %s++) {" i i (2 + Random.State.int g.rng 6) i;
  emit "  %s = (%s + %s) %% 100003;" acc acc (num_expr g (i :: !vars) depth);
  (match Random.State.int g.rng 4 with
  | 0 -> emit "  if (%s %% 2 == 0) { %s = %s + 1; } else { %s = %s - 1; }" i acc acc acc acc
  | 1 -> emit "  if (%s > 50) { continue; }" acc
  | 2 ->
    emit "  switch (%s %% 3) { case 0: %s = %s + 2; break; case 1: %s = %s - 1; break; default: %s = %s + 5; }"
      i acc acc acc acc acc acc
  | _ -> ());
  emit "}";
  if Random.State.bool g.rng then begin
    let arr = fresh g in
    emit "var %s = [1, 2, 3, 4, 5];" arr;
    emit "%s = %s + %s[%s %% 5];" acc acc arr i;
    emit "%s[(%s + 1) %% 5] = %s;" arr i acc
  end;
  emit "return %s;" acc;
  Printf.sprintf "function %s(%s) {\n%s}\n" name (String.concat ", " params)
    (Buffer.contents body)

let benign_params { p_seed; p_funcs; p_rounds; p_depth } =
  let g = { rng = Random.State.make [| p_seed; 0x6265 |]; n_vars = 0 } in
  let n_funcs = max 1 p_funcs in
  let rounds = max 1 p_rounds in
  let depth = max 0 p_depth in
  let buf = Buffer.create 512 in
  for i = 0 to n_funcs - 1 do
    Buffer.add_string buf (benign_function g ~depth i)
  done;
  Buffer.add_string buf "var total = 0;\n";
  Buffer.add_string buf (Printf.sprintf "for (var round = 0; round < %d; round++) {\n" rounds);
  for i = 0 to n_funcs - 1 do
    Buffer.add_string buf
      (Printf.sprintf "  total = (total + fn%d(round, %d)) %% 1000003;\n" i (i + 3))
  done;
  Buffer.add_string buf "}\nprint(total);\n";
  Buffer.contents buf

let default_params ~seed =
  let rng = Random.State.make [| seed; 0x6265 |] in
  { p_seed = seed; p_funcs = 1 + Random.State.int rng 3; p_rounds = 12; p_depth = 2 }

let benign ~seed = benign_params (default_params ~seed)

(* ---- aggressive ---- *)

(* Gadgets parameterized over sizes and indices; each returns the body of
   a candidate exploit function [pwn(v, late)]. *)
let gadget_shrink_between_accesses g =
  let size = 4 + Random.State.int g.rng 8 in
  let idx = 1 + Random.State.int g.rng (size - 2) in
  Printf.sprintf
    {|  var a = [%s];
  a[%d] = v;
  if (late == 1) { a.length = 1; w = [9,9,9,9]; }
  a[%d] = 1073741824;
  return 0;
|}
    (String.concat "," (List.init size (fun _ -> "0")))
    idx idx

let gadget_stale_length_loop g =
  let size = 6 + Random.State.int g.rng 6 in
  Printf.sprintf
    {|  var a = [%s];
  var n = a.length;
  for (var i = 0; i < n; i++) {
    if (late == 1) { if (i == 0) { a.length = 1; w = [9,9,9,9]; } }
    a[i] = 1073741824;
  }
  return 0;
|}
    (String.concat "," (List.init size (fun j -> string_of_int j)))

let gadget_constant_index g =
  let size = 4 + Random.State.int g.rng 6 in
  let idx = 1 + Random.State.int g.rng (size - 2) in
  Printf.sprintf
    {|  var b = [%s];
  if (late == 1) { b.length = 1; w = [9,9,9,9]; }
  b[%d] = 1073741824;
  return 0;
|}
    (String.concat "," (List.init size (fun _ -> "6")))
    idx

let gadget_wild_store g =
  let wild = 500000 + Random.State.int g.rng 4000000 in
  Printf.sprintf
    {|  var c = [1,2,3,4];
  var idx = 1;
  if (late == 1) { idx = %d; }
  c[idx] = v;
  return 0;
|}
    wild

let aggressive ~seed =
  let g = { rng = Random.State.make [| seed; 0xA66E |]; n_vars = 0 } in
  let body =
    (pick g
       [ gadget_shrink_between_accesses; gadget_stale_length_loop; gadget_constant_index;
         gadget_wild_store ])
      g
  in
  let warm = 40 + Random.State.int g.rng 40 in
  Printf.sprintf
    {|function pwn(v, late) {
%s}
var w = [0];
for (var k = 0; k < %d; k++) { pwn(k, 0); }
pwn(7, 1);
if (w.length > 100000) { print("PWNED corrupted victim " + w.length); }
|}
    body warm
