(** Seeded program generators for differential testing and exploit-shape
    fuzzing (the paper's §IV-A envisions feeding a JIT fuzzer's crashing
    outputs straight into JITBULL's database; this module is that fuzzer).

    Two profiles:
    - {!benign}: type-stable, terminating, in-bounds programs. All
      execution tiers — on {e any} engine configuration, vulnerable or
      not — must agree on them; used by the differential property tests.
    - {!aggressive}: composes the memory-unsafe gadget shapes the modeled
      CVEs exploit (warm typed array accesses, then a shrink between two
      same-index accesses, stale-length loops, constant-index accesses to
      literal arrays, stores after helper calls that resize). On a
      patched engine they are still semantically safe (guards bail out);
      on a vulnerable engine some of them corrupt the simulated heap —
      exactly the crashing inputs a fuzzer hands to JITBULL. *)

(** Explicit benign-generator parameters, so property tests can shrink a
    failing case structurally (fewer functions, fewer warm-up rounds,
    shallower expressions) instead of reporting an opaque seed. *)
type params = {
  p_seed : int;
  p_funcs : int;  (** top-level functions (clamped ≥ 1) *)
  p_rounds : int;  (** warm-up rounds in the driver loop (clamped ≥ 1) *)
  p_depth : int;  (** expression nesting depth (clamped ≥ 0) *)
}

val show_params : params -> string

(** The parameters {!benign} uses for [seed] (funcs drawn from the seed,
    12 rounds, depth 2). *)
val default_params : seed:int -> params

val benign_params : params -> string

val benign : seed:int -> string

val aggressive : seed:int -> string
