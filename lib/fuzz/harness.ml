module Engine = Jitbull_jit.Engine
module Db = Jitbull_core.Db
module VC = Jitbull_passes.Vuln_config
module Demonstrators = Jitbull_vdc.Demonstrators
module Prng = Jitbull_util.Prng

type finding = {
  seed : int;
  source : string;
  verdict : Oracle.verdict;
}

type report = {
  total : int;
  agreements : int;
  signals : finding list;
}

let campaign ~profile ~seeds ?config () =
  let generate seed =
    match profile with
    | `Benign -> Generator.benign ~seed
    | `Aggressive -> Generator.aggressive ~seed
  in
  let total = ref 0 in
  let agreements = ref 0 in
  let signals = ref [] in
  List.iter
    (fun seed ->
      incr total;
      let source = generate seed in
      let verdict = Oracle.run ?config source in
      if Oracle.is_exploit_signal verdict then signals := { seed; source; verdict } :: !signals
      else
        match verdict with
        | Oracle.Agree _ -> incr agreements
        | _ -> ())
    seeds;
  { total = !total; agreements = !agreements; signals = List.rev !signals }

let auto_harvest ~vulns ~db findings =
  List.fold_left
    (fun acc (f : finding) ->
      acc + Db.harvest db ~cve:(Printf.sprintf "FUZZ-%d" f.seed) ~vulns f.source)
    0 findings

(* ---- coverage-guided campaigns ---- *)

type curve_point = {
  cp_execs : int;
  cp_coverage : int;
}

type yield = {
  y_mutants : int;
  y_valid : int;
}

let yield_ratio y =
  if y.y_mutants = 0 then 1.0 else float_of_int y.y_valid /. float_of_int y.y_mutants

type guided = {
  g_execs : int;
  g_signals : finding list;
  g_coverage : int;
  g_curve : curve_point list;
  g_corpus_size : int;
  g_seconds : float;
  g_cve_execs : (VC.cve * int) list;
  g_il_yield : yield;
  g_ast_yield : yield;
}

let vdc_seed_sources () =
  List.map (fun (d : Demonstrators.t) -> d.Demonstrators.source) Demonstrators.all

let default_seed_sources ?(benign = 4) ?(aggressive = 8) ?(vdc = true) () =
  List.init benign (fun i -> Generator.benign ~seed:i)
  @ List.init aggressive (fun i -> Generator.aggressive ~seed:i)
  @ (if vdc then vdc_seed_sources () else [])

(* Does [source] exploit an engine where {e only} [cve] is live? Probing
   with the analyzer/cache/pool stripped keeps attribution independent of
   whatever mitigation the campaign config carries. *)
let exploits_single_cve ~base cve source =
  let config =
    {
      base with
      Engine.vulns = VC.make [ cve ];
      analyzer = None;
      policy_cache = None;
      compile_pool = None;
      obs = None;
    }
  in
  Oracle.is_exploit_signal (Oracle.run ~config source)

let il_seed_sources () =
  List.map (fun p -> (Il.to_source p, Some (Il.serialize p))) (Il.seeds ())

let guided_campaign ?(config = Oracle.default_config) ?corpus ?coverage ?(rng_seed = 0)
    ?time_budget ?seed_sources ?(mutation = true) ?(il = false) ?(track_cves = false)
    ~max_execs () =
  let cov = match coverage with Some c -> c | None -> Coverage.create () in
  let corpus = match corpus with Some c -> c | None -> Corpus.create () in
  let rng = Prng.create (0x6a21b011 + rng_seed) in
  let obs = config.Engine.obs in
  let t0 = Unix.gettimeofday () in
  (* inputs a previous campaign persisted: replay them to repopulate the
     coverage map without re-admitting them *)
  let replay =
    ref (List.map (fun e -> (e.Corpus.source, e.Corpus.il)) (Corpus.entries corpus))
  in
  let seeds =
    let plain = match seed_sources with Some l -> l | None -> default_seed_sources () in
    ref (List.map (fun s -> (s, None)) plain @ if il then il_seed_sources () else [])
  in
  let il_seed_pool = lazy (Array.of_list (Il.seeds ())) in
  (* donor for splice/combine: a random IL-carrying corpus entry, or a
     hand-written IL seed when the corpus has none yet *)
  let pick_donor () =
    let texts = List.filter_map (fun e -> e.Corpus.il) (Corpus.entries corpus) in
    let fallback () =
      let pool = Lazy.force il_seed_pool in
      pool.(Prng.int rng (Array.length pool))
    in
    match texts with
    | [] -> fallback ()
    | l -> (
      match Il.parse (List.nth l (Prng.int rng (List.length l))) with
      | Ok p -> p
      | Error _ -> fallback ())
  in
  let execs = ref 0 in
  let signals = ref [] in
  let curve = ref [] in
  let il_mutants = ref 0 in
  let il_valid = ref 0 in
  let ast_mutants = ref 0 in
  let ast_valid = ref 0 in
  let unattributed = ref (if track_cves then VC.all else []) in
  let cve_execs = ref [] in
  let within_budget () =
    !execs < max_execs
    &&
    match time_budget with
    | None -> true
    | Some s -> Unix.gettimeofday () -. t0 < s
  in
  while within_budget () do
    let ast_mutant e = (Mutator.mutate rng e.Corpus.source, None, `Ast_mut) in
    let source, il_payload, family =
      match !replay with
      | (s, payload) :: rest ->
        replay := rest;
        (s, payload, `Replay)
      | [] -> (
        match !seeds with
        | (s, payload) :: rest ->
          seeds := rest;
          (s, payload, `Seed)
        | [] ->
          if mutation then (
            match Corpus.pick rng corpus with
            | Some e -> (
              match (if il then e.Corpus.il else None) with
              | None -> ast_mutant e
              | Some text -> (
                match Il.parse text with
                | Error _ -> ast_mutant e
                | Ok parent -> (
                  match Il_mutate.mutate rng ~donor:(pick_donor ()) parent with
                  | Some m -> (Il.to_source m, Some (Il.serialize m), `Il_mut)
                  | None -> ast_mutant e)))
            | None -> (Generator.aggressive ~seed:!execs, None, `Seed))
          else (Generator.aggressive ~seed:!execs, None, `Seed))
    in
    incr execs;
    let inst = Oracle.run_instrumented ~config source in
    (* mutation yield: a mutant is "valid" when it executes cleanly on the
       reference tier — the property the typed IL guarantees by
       construction modulo OOB-driven [undefined] propagation *)
    let clean =
      match inst.Oracle.i_verdict with Oracle.Runtime_error _ -> false | _ -> true
    in
    (match family with
    | `Il_mut ->
      incr il_mutants;
      if clean then incr il_valid;
      Jitbull_obs.Obs.incr obs "fuzz.il_mutants";
      Jitbull_obs.Obs.set_gauge obs "fuzz.valid_ratio"
        (yield_ratio { y_mutants = !il_mutants; y_valid = !il_valid })
    | `Ast_mut ->
      incr ast_mutants;
      if clean then incr ast_valid;
      Jitbull_obs.Obs.incr obs "fuzz.ast_mutants"
    | `Seed | `Replay -> ());
    let gained = Coverage.add_features cov (Coverage.features_of_run inst) in
    if gained > 0 then begin
      curve := { cp_execs = !execs; cp_coverage = Coverage.count cov } :: !curve;
      if family <> `Replay then
        ignore (Corpus.add corpus ?il:il_payload ~gain:gained source)
    end;
    if Oracle.is_exploit_signal inst.Oracle.i_verdict then begin
      signals := { seed = !execs; source; verdict = inst.Oracle.i_verdict } :: !signals;
      if !unattributed <> [] then begin
        let hit = List.filter (fun cve -> exploits_single_cve ~base:config cve source) !unattributed in
        unattributed := List.filter (fun c -> not (List.mem c hit)) !unattributed;
        List.iter (fun c -> cve_execs := (c, !execs) :: !cve_execs) hit
      end
    end
  done;
  {
    g_execs = !execs;
    g_signals = List.rev !signals;
    g_coverage = Coverage.count cov;
    g_curve = List.rev !curve;
    g_corpus_size = Corpus.length corpus;
    g_seconds = Unix.gettimeofday () -. t0;
    g_cve_execs = List.rev !cve_execs;
    g_il_yield = { y_mutants = !il_mutants; y_valid = !il_valid };
    g_ast_yield = { y_mutants = !ast_mutants; y_valid = !ast_valid };
  }

let blind_sweep ?(config = Oracle.default_config) ?(track_cves = false) ~max_execs () =
  guided_campaign ~config ~mutation:false ~seed_sources:[] ~track_cves ~max_execs ()

let unharvested ~config findings =
  List.filter
    (fun (f : finding) -> Oracle.is_exploit_signal (Oracle.run ~config f.source))
    findings
