module Engine = Jitbull_jit.Engine
module Db = Jitbull_core.Db
module VC = Jitbull_passes.Vuln_config
module Demonstrators = Jitbull_vdc.Demonstrators
module Prng = Jitbull_util.Prng

type finding = {
  seed : int;
  source : string;
  verdict : Oracle.verdict;
}

type report = {
  total : int;
  agreements : int;
  signals : finding list;
}

let campaign ~profile ~seeds ?config () =
  let generate seed =
    match profile with
    | `Benign -> Generator.benign ~seed
    | `Aggressive -> Generator.aggressive ~seed
  in
  let total = ref 0 in
  let agreements = ref 0 in
  let signals = ref [] in
  List.iter
    (fun seed ->
      incr total;
      let source = generate seed in
      let verdict = Oracle.run ?config source in
      if Oracle.is_exploit_signal verdict then signals := { seed; source; verdict } :: !signals
      else
        match verdict with
        | Oracle.Agree _ -> incr agreements
        | _ -> ())
    seeds;
  { total = !total; agreements = !agreements; signals = List.rev !signals }

let auto_harvest ~vulns ~db findings =
  List.fold_left
    (fun acc (f : finding) ->
      acc + Db.harvest db ~cve:(Printf.sprintf "FUZZ-%d" f.seed) ~vulns f.source)
    0 findings

(* ---- coverage-guided campaigns ---- *)

type curve_point = {
  cp_execs : int;
  cp_coverage : int;
}

type guided = {
  g_execs : int;
  g_signals : finding list;
  g_coverage : int;
  g_curve : curve_point list;
  g_corpus_size : int;
  g_seconds : float;
  g_cve_execs : (VC.cve * int) list;
}

let vdc_seed_sources () =
  List.map (fun (d : Demonstrators.t) -> d.Demonstrators.source) Demonstrators.all

let default_seed_sources ?(benign = 4) ?(aggressive = 8) ?(vdc = true) () =
  List.init benign (fun i -> Generator.benign ~seed:i)
  @ List.init aggressive (fun i -> Generator.aggressive ~seed:i)
  @ (if vdc then vdc_seed_sources () else [])

(* Does [source] exploit an engine where {e only} [cve] is live? Probing
   with the analyzer/cache/pool stripped keeps attribution independent of
   whatever mitigation the campaign config carries. *)
let exploits_single_cve ~base cve source =
  let config =
    {
      base with
      Engine.vulns = VC.make [ cve ];
      analyzer = None;
      policy_cache = None;
      compile_pool = None;
      obs = None;
    }
  in
  Oracle.is_exploit_signal (Oracle.run ~config source)

let guided_campaign ?(config = Oracle.default_config) ?corpus ?coverage ?(rng_seed = 0)
    ?time_budget ?seed_sources ?(mutation = true) ?(track_cves = false) ~max_execs () =
  let cov = match coverage with Some c -> c | None -> Coverage.create () in
  let corpus = match corpus with Some c -> c | None -> Corpus.create () in
  let rng = Prng.create (0x6a21b011 + rng_seed) in
  let t0 = Unix.gettimeofday () in
  (* inputs a previous campaign persisted: replay them to repopulate the
     coverage map without re-admitting them *)
  let replay = ref (List.map (fun e -> e.Corpus.source) (Corpus.entries corpus)) in
  let seeds =
    ref (match seed_sources with Some l -> l | None -> default_seed_sources ())
  in
  let execs = ref 0 in
  let signals = ref [] in
  let curve = ref [] in
  let unattributed = ref (if track_cves then VC.all else []) in
  let cve_execs = ref [] in
  let within_budget () =
    !execs < max_execs
    &&
    match time_budget with
    | None -> true
    | Some s -> Unix.gettimeofday () -. t0 < s
  in
  while within_budget () do
    let source, replaying =
      match !replay with
      | s :: rest ->
        replay := rest;
        (s, true)
      | [] -> (
        match !seeds with
        | s :: rest ->
          seeds := rest;
          (s, false)
        | [] ->
          if mutation then (
            match Corpus.pick rng corpus with
            | Some e -> (Mutator.mutate rng e.Corpus.source, false)
            | None -> (Generator.aggressive ~seed:!execs, false))
          else (Generator.aggressive ~seed:!execs, false))
    in
    incr execs;
    let inst = Oracle.run_instrumented ~config source in
    let gained = Coverage.add_features cov (Coverage.features_of_run inst) in
    if gained > 0 then begin
      curve := { cp_execs = !execs; cp_coverage = Coverage.count cov } :: !curve;
      if not replaying then ignore (Corpus.add corpus ~gain:gained source)
    end;
    if Oracle.is_exploit_signal inst.Oracle.i_verdict then begin
      signals := { seed = !execs; source; verdict = inst.Oracle.i_verdict } :: !signals;
      if !unattributed <> [] then begin
        let hit = List.filter (fun cve -> exploits_single_cve ~base:config cve source) !unattributed in
        unattributed := List.filter (fun c -> not (List.mem c hit)) !unattributed;
        List.iter (fun c -> cve_execs := (c, !execs) :: !cve_execs) hit
      end
    end
  done;
  {
    g_execs = !execs;
    g_signals = List.rev !signals;
    g_coverage = Coverage.count cov;
    g_curve = List.rev !curve;
    g_corpus_size = Corpus.length corpus;
    g_seconds = Unix.gettimeofday () -. t0;
    g_cve_execs = List.rev !cve_execs;
  }

let blind_sweep ?(config = Oracle.default_config) ?(track_cves = false) ~max_execs () =
  guided_campaign ~config ~mutation:false ~seed_sources:[] ~track_cves ~max_execs ()

let unharvested ~config findings =
  List.filter
    (fun (f : finding) -> Oracle.is_exploit_signal (Oracle.run ~config f.source))
    findings
