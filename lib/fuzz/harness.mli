(** Fuzzing campaigns, including the paper's §IV-A pipeline ("feed the
    output of JIT fuzzers directly to [JITBULL's] database") and the
    coverage-guided loop layered on top of it. *)

type finding = {
  seed : int;
      (** generator seed for {!campaign}; execution index (1-based) for
          {!guided_campaign} *)
  source : string;
  verdict : Oracle.verdict;
}

type report = {
  total : int;
  agreements : int;
  signals : finding list;  (** exploit signals, oldest first *)
}

(** [campaign ~profile ~seeds ?config ()] — the blind sweep: run the
    generator over [seeds] and classify each program. [`Benign] programs
    are expected to agree on any engine; [`Aggressive] programs surface
    exploit signals when [config] carries active vulnerabilities. *)
val campaign :
  profile:[ `Benign | `Aggressive ] ->
  seeds:int list ->
  ?config:Jitbull_jit.Engine.config ->
  unit ->
  report

(** [auto_harvest ~vulns ~db findings] implements the §IV-A loop: install
    the DNA of every signal-producing input into [db] (CVE ids are
    synthesized as ["FUZZ-<seed>"]). Returns the number of DNA entries
    added. *)
val auto_harvest :
  vulns:Jitbull_passes.Vuln_config.t -> db:Jitbull_core.Db.t -> finding list -> int

(** {2 Coverage-guided campaigns} *)

type curve_point = {
  cp_execs : int;
  cp_coverage : int;
}

(** Mutation yield of one mutant family: how many mutants were executed
    and how many ran cleanly on the reference tier (no
    {!Oracle.Runtime_error}) — the metric the typed IL exists to move. *)
type yield = {
  y_mutants : int;
  y_valid : int;
}

(** [y_valid / y_mutants]; [1.0] when no mutants ran. *)
val yield_ratio : yield -> float

type guided = {
  g_execs : int;
  g_signals : finding list;  (** oldest first *)
  g_coverage : int;  (** distinct features at the end *)
  g_curve : curve_point list;
      (** one point per coverage-increasing execution, oldest first *)
  g_corpus_size : int;
  g_seconds : float;
  g_cve_execs : (Jitbull_passes.Vuln_config.cve * int) list;
      (** with [track_cves]: execution index at which each CVE was first
          attributed to a signal (single-CVE engine probes) *)
  g_il_yield : yield;  (** typed-IL mutants ({!Il_mutate}) *)
  g_ast_yield : yield;  (** AST-level mutants ({!Mutator}) *)
}

(** The VDC catalog's demonstrator sources, in catalog order. *)
val vdc_seed_sources : unit -> string list

(** Default seed schedule of {!guided_campaign}: a few benign programs,
    the first aggressive gadget compositions, then the VDC catalog. *)
val default_seed_sources :
  ?benign:int -> ?aggressive:int -> ?vdc:bool -> unit -> string list

(** The {!Il.seeds} programs as [(lowered source, serialized IL)] pairs —
    appended to the seed schedule when the campaign runs with [il:true]. *)
val il_seed_sources : unit -> (string * string option) list

(** [guided_campaign ?config ... ~max_execs ()] — the coverage-guided
    loop: replay any inputs already in [corpus], run the seed schedule,
    then mutate gain-weighted corpus picks ({!Mutator}); every execution
    is instrumented ({!Oracle.run_instrumented}) and admitted to [corpus]
    iff it contributed new {!Coverage} features. [time_budget] (seconds)
    bounds wall-clock in addition to [max_execs]. With [track_cves],
    every signal is attributed against single-CVE engines until all
    modeled CVEs are accounted for. [mutation:false] degrades to the
    blind generator sweep (still instrumented — used as the baseline the
    guided mode must dominate). Deterministic for fixed inputs and
    [rng_seed] apart from [time_budget] and [g_seconds].

    With [il:true] the campaign fuzzes at the typed-IL level: the
    {!Il.seeds} join the seed schedule, corpus entries carrying an IL
    payload are mutated with {!Il_mutate.mutate} (donor drawn from the
    IL-carrying corpus, falling back to the seeds) and their mutants are
    admitted with their serialized IL so the lineage stays mutable at the
    IL level; entries without IL still go through {!Mutator}. Per-family
    yields land in [g_il_yield]/[g_ast_yield], and when [config] carries
    an [obs] handle the campaign maintains the [fuzz.il_mutants] /
    [fuzz.ast_mutants] counters and the [fuzz.valid_ratio] gauge. *)
val guided_campaign :
  ?config:Jitbull_jit.Engine.config ->
  ?corpus:Corpus.t ->
  ?coverage:Coverage.t ->
  ?rng_seed:int ->
  ?time_budget:float ->
  ?seed_sources:string list ->
  ?mutation:bool ->
  ?il:bool ->
  ?track_cves:bool ->
  max_execs:int ->
  unit ->
  guided

(** Blind aggressive generator sweep (seed = execution index) with the
    same instrumentation — the baseline for coverage comparisons. *)
val blind_sweep :
  ?config:Jitbull_jit.Engine.config ->
  ?track_cves:bool ->
  max_execs:int ->
  unit ->
  guided

(** [unharvested ~config findings] — the findings that still produce an
    exploit signal under [config] (typically a go/no-go-armed engine
    built from the freshly harvested DB): what the nightly CI job fails
    on. *)
val unharvested :
  config:Jitbull_jit.Engine.config -> finding list -> finding list
