(* Typed mutation IL: see il.mli for the design rationale. *)

type ty =
  | Num
  | Bool
  | Str
  | Arr

type binop = Add | Sub | Mul | Div | Mod | BAnd | BOr | BXor | Shl | Shr | Ushr
type cmpop = Lt | Le | Gt | Ge | Eq | Neq

let binop_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Mod -> "mod"
  | BAnd -> "and"
  | BOr -> "or"
  | BXor -> "xor"
  | Shl -> "shl"
  | Shr -> "shr"
  | Ushr -> "ushr"

let cmpop_name = function
  | Lt -> "lt"
  | Le -> "le"
  | Gt -> "gt"
  | Ge -> "ge"
  | Eq -> "eq"
  | Neq -> "neq"

let all_binops = [ Add; Sub; Mul; Div; Mod; BAnd; BOr; BXor; Shl; Shr; Ushr ]
let all_cmpops = [ Lt; Le; Gt; Ge; Eq; Neq ]

let binop_of_name s = List.find_opt (fun o -> binop_name o = s) all_binops
let cmpop_of_name s = List.find_opt (fun o -> cmpop_name o = s) all_cmpops

let binop_js = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | BAnd -> "&"
  | BOr -> "|"
  | BXor -> "^"
  | Shl -> "<<"
  | Shr -> ">>"
  | Ushr -> ">>>"

let cmpop_js = function
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Eq -> "=="
  | Neq -> "!="

type var = int

type instr =
  | Const of var * float
  | Str_const of var * string
  | Bool_const of var * bool
  | Binop of var * binop * var * var
  | Cmp of var * cmpop * var * var
  | Not of var * var
  | Copy of var * var
  | Update of var * binop * var
  | Array_of of var * var list
  | Get_len of var * var
  | Set_len of var * int
  | Get_elem of var * var * var
  | Set_elem of var * var * var
  | Gnew of int * var list
  | Gget_len of var * int
  | Gset_len of int * int
  | Gget_elem of var * int * var
  | Gset_elem of int * var * var
  | Call of var * int * var list
  | Print of var
  | Print_tag of string * var
  | If of var * instr list * instr list
  | Loop of var * int * instr list
  | Loop_n of var * var * instr list

type func = { arity : int; body : instr list; ret : var option }
type prog = { globals : int; funcs : func list; main : instr list }

let max_loop_bound = 64
let max_set_len = 15
let max_globals = 8
let max_nesting = 4
let max_func_instrs = 2048
let max_funcs = 8
let max_arity = 3
let max_elems = 16

(* ------------------------------------------------------------------ *)
(* Static semantics                                                   *)
(* ------------------------------------------------------------------ *)

exception Type_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Type_error s)) fmt

let rec count_instrs body =
  List.fold_left
    (fun acc i ->
      acc + 1
      +
      match i with
      | If (_, a, b) -> count_instrs a + count_instrs b
      | Loop (_, _, b) | Loop_n (_, _, b) -> count_instrs b
      | _ -> 0)
    0 body

let string_ok s =
  String.length s <= 80
  && String.for_all (fun c -> c >= ' ' && c <= '~' && c <> '"' && c <> '\\') s

(* Environment entry for an in-scope variable. [tainted] marks a value
   obtained from [.length] — the only variables allowed as Loop_n
   bounds. [counter] marks a live loop counter (never writable). *)
type entry = { e_ty : ty; tainted : bool; counter : bool }

let check_func_body ~where ~in_main ~globals ~callable ~funcs ~arity body ret =
  let defined = Hashtbl.create 32 in
  let def v =
    if v < 0 then err "%s: negative variable id v%d" where v;
    if Hashtbl.mem defined v then err "%s: v%d defined twice" where v;
    Hashtbl.add defined v ()
  in
  let ty_name = function Num -> "num" | Bool -> "bool" | Str -> "str" | Arr -> "arr" in
  let lookup env v =
    match List.assoc_opt v env with
    | Some e -> e
    | None -> err "%s: v%d used out of scope" where v
  in
  let want env v t =
    let e = lookup env v in
    if e.e_ty <> t then
      err "%s: v%d has type %s, expected %s" where v (ty_name e.e_ty) (ty_name t)
  in
  let slot_ok k = if k < 0 || k >= globals then err "%s: global slot g%d out of range" where k in
  let bind env v t = (v, { e_ty = t; tainted = false; counter = false }) :: env in
  let rec walk depth env instrs = List.fold_left (step depth) env instrs
  and step depth env = function
    | Const (d, x) ->
      if not (Float.is_finite x) then err "%s: non-finite constant for v%d" where d;
      def d;
      bind env d Num
    | Str_const (d, s) ->
      if not (string_ok s) then err "%s: string for v%d has unsafe characters" where d;
      def d;
      bind env d Str
    | Bool_const (d, _) ->
      def d;
      bind env d Bool
    | Binop (d, _, a, b) ->
      want env a Num;
      want env b Num;
      def d;
      bind env d Num
    | Cmp (d, _, a, b) ->
      want env a Num;
      want env b Num;
      def d;
      bind env d Bool
    | Not (d, a) ->
      want env a Bool;
      def d;
      bind env d Bool
    | Copy (d, s) ->
      let e = lookup env d in
      if e.e_ty <> Num then err "%s: copy target v%d is not num" where d;
      if e.counter then err "%s: copy writes loop counter v%d" where d;
      want env s Num;
      env
    | Update (d, _, s) ->
      let e = lookup env d in
      if e.e_ty <> Num then err "%s: update target v%d is not num" where d;
      if e.counter then err "%s: update writes loop counter v%d" where d;
      want env s Num;
      env
    | Array_of (d, elems) ->
      if List.length elems > max_elems then err "%s: array literal for v%d too long" where d;
      List.iter (fun v -> want env v Num) elems;
      def d;
      bind env d Arr
    | Get_len (d, a) ->
      want env a Arr;
      def d;
      (d, { e_ty = Num; tainted = true; counter = false }) :: env
    | Set_len (a, k) ->
      want env a Arr;
      if k < 0 || k > max_set_len then err "%s: set_len %d out of range" where k;
      env
    | Get_elem (d, a, i) ->
      want env a Arr;
      want env i Num;
      def d;
      bind env d Num
    | Set_elem (a, i, x) ->
      want env a Arr;
      want env i Num;
      want env x Num;
      env
    | Gnew (k, elems) ->
      slot_ok k;
      if List.length elems > max_elems then err "%s: global literal g%d too long" where k;
      List.iter (fun v -> want env v Num) elems;
      env
    | Gget_len (d, k) ->
      if not in_main then err "%s: global reads are main-only (bailout replay)" where;
      slot_ok k;
      def d;
      (d, { e_ty = Num; tainted = true; counter = false }) :: env
    | Gset_len (k, n) ->
      slot_ok k;
      if n < 0 || n > max_set_len then err "%s: gset_len %d out of range" where n;
      env
    | Gget_elem (d, k, i) ->
      if not in_main then err "%s: global reads are main-only (bailout replay)" where;
      slot_ok k;
      want env i Num;
      def d;
      bind env d Num
    | Gset_elem (k, i, x) ->
      slot_ok k;
      want env i Num;
      want env x Num;
      env
    | Call (d, k, args) ->
      if k < 0 || k >= callable then
        err "%s: call to f%d not allowed (only lower-indexed functions)" where k;
      let callee = List.nth funcs k in
      if List.length args <> callee.arity then
        err "%s: f%d expects %d args, got %d" where k callee.arity (List.length args);
      List.iter (fun v -> want env v Num) args;
      def d;
      bind env d Num
    | Print v ->
      if not in_main then err "%s: print is main-only (bailout replay)" where;
      ignore (lookup env v);
      env
    | Print_tag (tag, v) ->
      if not in_main then err "%s: print is main-only (bailout replay)" where;
      if not (string_ok tag) then err "%s: print tag has unsafe characters" where tag;
      ignore (lookup env v);
      env
    | If (c, a, b) ->
      want env c Bool;
      if depth + 1 > max_nesting then err "%s: nesting exceeds %d" where max_nesting;
      ignore (walk (depth + 1) env a);
      ignore (walk (depth + 1) env b);
      env
    | Loop (c, k, body) ->
      if k < 1 || k > max_loop_bound then err "%s: loop bound %d out of range" where k;
      if depth + 1 > max_nesting then err "%s: nesting exceeds %d" where max_nesting;
      def c;
      let inner = (c, { e_ty = Num; tainted = false; counter = true }) :: env in
      ignore (walk (depth + 1) inner body);
      env
    | Loop_n (c, n, body) ->
      let e = lookup env n in
      if e.e_ty <> Num || not e.tainted then
        err "%s: loop_n bound v%d must come from a .length read" where n;
      if depth + 1 > max_nesting then err "%s: nesting exceeds %d" where max_nesting;
      def c;
      let inner = (c, { e_ty = Num; tainted = false; counter = true }) :: env in
      ignore (walk (depth + 1) inner body);
      env
  in
  if arity < 0 || arity > max_arity then err "%s: arity %d out of range" where arity;
  let params = List.init arity (fun i -> i) in
  List.iter def params;
  let env0 = List.fold_left (fun env p -> bind env p Num) [] params in
  let env_end = walk 0 env0 body in
  match ret with
  | None -> ()
  | Some v ->
    let e =
      match List.assoc_opt v env_end with
      | Some e -> e
      | None -> err "%s: return variable v%d not in scope at end of body" where v
    in
    if e.e_ty <> Num then err "%s: return variable v%d is not num" where v

let max_work = 500_000
let loop_n_work_bound = 96

(* Worst-case dynamic instruction count: structural loops multiply by
   their bound, [Loop_n] by [loop_n_work_bound] (arrays start ≤
   [max_elems] and only grow one element per OOB append, so observed
   lengths stay far below it), calls by the callee's precomputed work.
   Keeping this under [max_work] both guarantees campaign throughput and
   keeps typed mutants away from the model heap and oracle step limits,
   so resource exhaustion cannot masquerade as low mutation yield. *)
let prog_work p =
  let func_work = Array.make (List.length p.funcs) 0 in
  let rec body_work body = List.fold_left (fun acc i -> acc + instr_work i) 0 body
  and instr_work = function
    | If (_, t, f) -> 1 + max (body_work t) (body_work f)
    | Loop (_, k, body) -> 1 + (k * (1 + body_work body))
    | Loop_n (_, _, body) -> 1 + (loop_n_work_bound * (1 + body_work body))
    | Call (_, k, _) -> 1 + (if k < Array.length func_work then func_work.(k) else 0)
    | _ -> 1
  in
  List.iteri (fun i (f : func) -> func_work.(i) <- body_work f.body) p.funcs;
  body_work p.main

let typecheck p =
  try
    if p.globals < 0 || p.globals > max_globals then
      err "prog: %d global slots out of range" p.globals;
    if List.length p.funcs > max_funcs then err "prog: too many functions";
    List.iteri
      (fun i (f : func) ->
        let where = Printf.sprintf "f%d" i in
        if count_instrs f.body > max_func_instrs then err "%s: body too large" where;
        check_func_body ~where ~in_main:false ~globals:p.globals ~callable:i
          ~funcs:p.funcs ~arity:f.arity f.body f.ret)
      p.funcs;
    if count_instrs p.main > max_func_instrs then err "main: body too large";
    check_func_body ~where:"main" ~in_main:true ~globals:p.globals
      ~callable:(List.length p.funcs) ~funcs:p.funcs ~arity:0 p.main None;
    let work = prog_work p in
    if work > max_work then err "prog: work estimate %d exceeds budget" work;
    Ok ()
  with Type_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Lowering to mini-JS                                                *)
(* ------------------------------------------------------------------ *)

let num_lit x =
  if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.0f" x
  else Printf.sprintf "%.17g" x

let to_source p =
  let buf = Buffer.create 1024 in
  let line indent fmt =
    Printf.ksprintf
      (fun s ->
        Buffer.add_string buf (String.make (2 * indent) ' ');
        Buffer.add_string buf s;
        Buffer.add_char buf '\n')
      fmt
  in
  (* Function-local variables get a per-function prefix so that a
     function's v0 never shadows (or collides with) main's global v0. *)
  let emit_body ~vname indent body =
    let v = vname in
    let rec emit indent i =
      match i with
      | Const (d, x) -> line indent "var %s = %s;" (v d) (num_lit x)
      | Str_const (d, s) -> line indent "var %s = \"%s\";" (v d) s
      | Bool_const (d, b) -> line indent "var %s = %b;" (v d) b
      | Binop (d, op, a, b) ->
        line indent "var %s = (%s %s %s);" (v d) (v a) (binop_js op) (v b)
      | Cmp (d, op, a, b) ->
        line indent "var %s = (%s %s %s);" (v d) (v a) (cmpop_js op) (v b)
      | Not (d, a) -> line indent "var %s = !%s;" (v d) (v a)
      | Copy (d, s) -> line indent "%s = %s;" (v d) (v s)
      | Update (d, op, s) ->
        line indent "%s = (%s %s %s);" (v d) (v d) (binop_js op) (v s)
      | Array_of (d, elems) ->
        line indent "var %s = [%s];" (v d) (String.concat ", " (List.map v elems))
      | Get_len (d, a) -> line indent "var %s = %s.length;" (v d) (v a)
      | Set_len (a, k) -> line indent "%s.length = %d;" (v a) k
      | Get_elem (d, a, i) -> line indent "var %s = %s[%s];" (v d) (v a) (v i)
      | Set_elem (a, i, x) -> line indent "%s[%s] = %s;" (v a) (v i) (v x)
      | Gnew (k, elems) ->
        line indent "g%d = [%s];" k (String.concat ", " (List.map v elems))
      | Gget_len (d, k) -> line indent "var %s = g%d.length;" (v d) k
      | Gset_len (k, n) -> line indent "g%d.length = %d;" k n
      | Gget_elem (d, k, i) -> line indent "var %s = g%d[%s];" (v d) k (v i)
      | Gset_elem (k, i, x) -> line indent "g%d[%s] = %s;" k (v i) (v x)
      | Call (d, k, args) ->
        line indent "var %s = f%d(%s);" (v d) k (String.concat ", " (List.map v args))
      | Print x -> line indent "print(%s);" (v x)
      | Print_tag (tag, x) -> line indent "print(\"%s\" + %s);" tag (v x)
      | If (c, a, []) ->
        line indent "if (%s) {" (v c);
        List.iter (emit (indent + 1)) a;
        line indent "}"
      | If (c, a, b) ->
        line indent "if (%s) {" (v c);
        List.iter (emit (indent + 1)) a;
        line indent "} else {";
        List.iter (emit (indent + 1)) b;
        line indent "}"
      | Loop (c, k, body) ->
        line indent "for (var %s = 0; %s < %d; %s = %s + 1) {" (v c) (v c) k (v c) (v c);
        List.iter (emit (indent + 1)) body;
        line indent "}"
      | Loop_n (c, n, body) ->
        line indent "for (var %s = 0; %s < %s; %s = %s + 1) {" (v c) (v c) (v n) (v c)
          (v c);
        List.iter (emit (indent + 1)) body;
        line indent "}"
    in
    List.iter (emit indent) body
  in
  List.iteri
    (fun i (f : func) ->
      let v n = Printf.sprintf "f%dv%d" i n in
      let params = List.init f.arity v in
      line 0 "function f%d(%s) {" i (String.concat ", " params);
      emit_body ~vname:v 1 f.body;
      (match f.ret with
      | Some r -> line 1 "return %s;" (v r)
      | None -> line 1 "return 0;");
      line 0 "}")
    p.funcs;
  for k = 0 to p.globals - 1 do
    line 0 "var g%d = [0];" k
  done;
  emit_body ~vname:(Printf.sprintf "v%d") 0 p.main;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Wire format                                                        *)
(* ------------------------------------------------------------------ *)

let serialize p =
  let buf = Buffer.create 1024 in
  let line indent fmt =
    Printf.ksprintf
      (fun s ->
        Buffer.add_string buf (String.make (2 * indent) ' ');
        Buffer.add_string buf s;
        Buffer.add_char buf '\n')
      fmt
  in
  let v n = Printf.sprintf "v%d" n in
  let vars vs = String.concat " " (List.map v vs) in
  let rec emit indent = function
    | Const (d, x) -> line indent "num %s %.17g" (v d) x
    | Str_const (d, s) -> line indent "str %s %S" (v d) s
    | Bool_const (d, b) -> line indent "bool %s %b" (v d) b
    | Binop (d, op, a, b) -> line indent "bin %s %s %s %s" (v d) (binop_name op) (v a) (v b)
    | Cmp (d, op, a, b) -> line indent "cmp %s %s %s %s" (v d) (cmpop_name op) (v a) (v b)
    | Not (d, a) -> line indent "not %s %s" (v d) (v a)
    | Copy (d, s) -> line indent "copy %s %s" (v d) (v s)
    | Update (d, op, s) -> line indent "upd %s %s %s" (v d) (binop_name op) (v s)
    | Array_of (d, elems) ->
      line indent "arr %s%s" (v d) (if elems = [] then "" else " " ^ vars elems)
    | Get_len (d, a) -> line indent "len %s %s" (v d) (v a)
    | Set_len (a, k) -> line indent "setlen %s %d" (v a) k
    | Get_elem (d, a, i) -> line indent "get %s %s %s" (v d) (v a) (v i)
    | Set_elem (a, i, x) -> line indent "set %s %s %s" (v a) (v i) (v x)
    | Gnew (k, elems) ->
      line indent "gnew %d%s" k (if elems = [] then "" else " " ^ vars elems)
    | Gget_len (d, k) -> line indent "glen %s %d" (v d) k
    | Gset_len (k, n) -> line indent "gsetlen %d %d" k n
    | Gget_elem (d, k, i) -> line indent "gget %s %d %s" (v d) k (v i)
    | Gset_elem (k, i, x) -> line indent "gset %d %s %s" k (v i) (v x)
    | Call (d, k, args) ->
      line indent "call %s %d%s" (v d) k (if args = [] then "" else " " ^ vars args)
    | Print x -> line indent "print %s" (v x)
    | Print_tag (tag, x) -> line indent "ptag %s %S" (v x) tag
    | If (c, a, b) ->
      line indent "if %s" (v c);
      List.iter (emit (indent + 1)) a;
      if b <> [] then begin
        line indent "else";
        List.iter (emit (indent + 1)) b
      end;
      line indent "endif"
    | Loop (c, k, body) ->
      line indent "loop %s %d" (v c) k;
      List.iter (emit (indent + 1)) body;
      line indent "endloop"
    | Loop_n (c, n, body) ->
      line indent "loopn %s %s" (v c) (v n);
      List.iter (emit (indent + 1)) body;
      line indent "endloop"
  in
  line 0 "il v1";
  line 0 "globals %d" p.globals;
  List.iter
    (fun (f : func) ->
      line 0 "func %d" f.arity;
      List.iter (emit 1) f.body;
      (match f.ret with
      | Some r -> line 0 "ret %s" (v r)
      | None -> line 0 "ret -");
      line 0 "endfunc")
    p.funcs;
  line 0 "main";
  List.iter (emit 1) p.main;
  line 0 "endmain";
  Buffer.contents buf

exception Parse_error of string

let perr fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let parse text =
  let lines =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun l -> l <> "")
    |> Array.of_list
  in
  let pos = ref 0 in
  let peek () = if !pos < Array.length lines then Some lines.(!pos) else None in
  let next () =
    match peek () with
    | Some l ->
      incr pos;
      l
    | None -> perr "unexpected end of input"
  in
  let toks l = String.split_on_char ' ' l |> List.filter (fun t -> t <> "") in
  let var tok =
    match Scanf.sscanf_opt tok "v%d%!" (fun n -> n) with
    | Some n when n >= 0 -> n
    | _ -> perr "bad variable token %S" tok
  in
  let int tok =
    match int_of_string_opt tok with Some n -> n | None -> perr "bad integer %S" tok
  in
  (* Quoted payloads (str / ptag) may contain spaces: re-split the raw
     line so the %S field is parsed as one token. *)
  let quoted l n_prefix =
    let rec skip i k =
      if k = 0 then i
      else
        let i = ref i in
        while !i < String.length l && l.[!i] = ' ' do incr i done;
        while !i < String.length l && l.[!i] <> ' ' do incr i done;
        skip !i (k - 1)
    in
    let start = skip 0 n_prefix in
    let s = String.trim (String.sub l start (String.length l - start)) in
    match Scanf.sscanf_opt s "%S%!" (fun x -> x) with
    | Some x -> x
    | None -> perr "bad quoted string in %S" l
  in
  let rec block_until stop_pred =
    let acc = ref [] in
    let result = ref None in
    while !result = None do
      let l = next () in
      if stop_pred l then result := Some l
      else acc := instr l :: !acc
    done;
    ( List.rev !acc,
      match !result with Some s -> s | None -> assert false )
  and block stop = block_until (fun l -> List.mem l stop)
  and instr l =
    match toks l with
    | [ "num"; d; _x ] -> Const (var d, float_of_string (List.nth (toks l) 2))
    | "str" :: d :: _ -> Str_const (var d, quoted l 2)
    | [ "bool"; d; b ] -> Bool_const (var d, bool_of_string b)
    | [ "bin"; d; op; a; b ] -> (
      match binop_of_name op with
      | Some op -> Binop (var d, op, var a, var b)
      | None -> perr "unknown binop %S" op)
    | [ "cmp"; d; op; a; b ] -> (
      match cmpop_of_name op with
      | Some op -> Cmp (var d, op, var a, var b)
      | None -> perr "unknown cmpop %S" op)
    | [ "not"; d; a ] -> Not (var d, var a)
    | [ "copy"; d; s ] -> Copy (var d, var s)
    | [ "upd"; d; op; s ] -> (
      match binop_of_name op with
      | Some op -> Update (var d, op, var s)
      | None -> perr "unknown binop %S" op)
    | "arr" :: d :: elems -> Array_of (var d, List.map var elems)
    | [ "len"; d; a ] -> Get_len (var d, var a)
    | [ "setlen"; a; k ] -> Set_len (var a, int k)
    | [ "get"; d; a; i ] -> Get_elem (var d, var a, var i)
    | [ "set"; a; i; x ] -> Set_elem (var a, var i, var x)
    | "gnew" :: k :: elems -> Gnew (int k, List.map var elems)
    | [ "glen"; d; k ] -> Gget_len (var d, int k)
    | [ "gsetlen"; k; n ] -> Gset_len (int k, int n)
    | [ "gget"; d; k; i ] -> Gget_elem (var d, int k, var i)
    | [ "gset"; k; i; x ] -> Gset_elem (int k, var i, var x)
    | "call" :: d :: k :: args -> Call (var d, int k, List.map var args)
    | [ "print"; x ] -> Print (var x)
    | "ptag" :: x :: _ -> Print_tag (quoted l 2, var x)
    | [ "if"; c ] ->
      let then_, stop = block [ "else"; "endif" ] in
      if stop = "endif" then If (var c, then_, [])
      else
        let else_, stop = block [ "endif" ] in
        ignore stop;
        If (var c, then_, else_)
    | [ "loop"; c; k ] ->
      let body, _ = block [ "endloop" ] in
      Loop (var c, int k, body)
    | [ "loopn"; c; n ] ->
      let body, _ = block [ "endloop" ] in
      Loop_n (var c, var n, body)
    | _ -> perr "unrecognized instruction %S" l
  in
  try
    (match peek () with
    | Some "il v1" -> ignore (next ())
    | _ -> perr "missing 'il v1' header");
    let globals =
      match toks (next ()) with
      | [ "globals"; n ] -> int n
      | _ -> perr "expected 'globals <n>'"
    in
    let funcs = ref [] in
    let in_funcs = ref true in
    while !in_funcs do
      match toks (next ()) with
      | [ "func"; a ] ->
        let is_ret l = match toks l with "ret" :: _ -> true | _ -> false in
        let body, ret_line = block_until is_ret in
        let ret =
          match toks ret_line with
          | [ "ret"; "-" ] -> None
          | [ "ret"; r ] -> Some (var r)
          | _ -> perr "bad ret line %S" ret_line
        in
        (match next () with
        | "endfunc" -> ()
        | l -> perr "expected endfunc, got %S" l);
        funcs := { arity = int a; body; ret } :: !funcs
      | [ "main" ] -> in_funcs := false
      | _ :: _ as t -> perr "expected 'func <arity>' or 'main', got %S" (String.concat " " t)
      | [] -> perr "expected 'func <arity>' or 'main'"
    done;
    let main, _ = block [ "endmain" ] in
    let p = { globals; funcs = List.rev !funcs; main } in
    match typecheck p with
    | Ok () -> Ok p
    | Error msg -> Error (Printf.sprintf "ill-typed program: %s" msg)
  with
  | Parse_error msg -> Error msg
  | Failure msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Seeds                                                              *)
(* ------------------------------------------------------------------ *)

let big = 1073741824.

(* Shared driver for the gadget seeds: warm the function at late=0 for
   60 calls (past every tier-up threshold), trigger once with late=1,
   then check whether the victim array in g0 was corrupted. *)
let gadget_main =
  [
    Const (0, 0.);
    Gnew (0, [ 0 ]);
    Loop (1, 60, [ Call (2, 0, [ 1; 0 ]) ]);
    Const (3, 7.);
    Const (4, 1.);
    Call (5, 0, [ 3; 4 ]);
    Gget_len (6, 0);
    Const (7, 100000.);
    Cmp (8, Gt, 6, 7);
    If (8, [ Print_tag ("PWNED corrupted victim ", 6) ], []);
  ]

let gadget f = { globals = 1; funcs = [ f ]; main = gadget_main }

(* Gadget 1: shrink the array between two stores to the same index. *)
let seed_shrink_between_accesses =
  gadget
    {
      arity = 2;
      body =
        [
          Const (2, 7.);
          Array_of (3, [ 2; 2; 2; 2; 2; 2; 2; 2 ]);
          Const (4, 1.);
          Set_elem (3, 4, 0);
          Const (5, 1.);
          Cmp (6, Eq, 1, 5);
          If (6, [ Set_len (3, 1); Const (7, 9.); Gnew (0, [ 7; 7; 7; 7 ]) ], []);
          Const (8, big);
          Set_elem (3, 4, 8);
          Const (9, 0.);
          Get_elem (10, 3, 9);
        ];
      ret = Some 10;
    }

(* Gadget 2: loop bounded by a stale .length read, shrink at i = 0. *)
let seed_stale_length_loop =
  gadget
    {
      arity = 2;
      body =
        [
          Const (2, 5.);
          Array_of (3, [ 2; 2; 2; 2; 2; 2; 2; 2 ]);
          Get_len (4, 3);
          Const (5, 1.);
          Const (6, 0.);
          Const (7, big);
          Const (8, 9.);
          Loop_n
            ( 9,
              4,
              [
                Cmp (10, Eq, 1, 5);
                If
                  ( 10,
                    [
                      Cmp (11, Eq, 9, 6);
                      If (11, [ Set_len (3, 1); Gnew (0, [ 8; 8; 8; 8 ]) ], []);
                    ],
                    [] );
                Set_elem (3, 9, 7);
              ] );
        ];
      ret = None;
    }

(* Gadget 3: constant-index store proven in-bounds, then invalidated. *)
let seed_constant_index =
  gadget
    {
      arity = 2;
      body =
        [
          Const (2, 6.);
          Array_of (3, [ 2; 2; 2; 2; 2; 2; 2; 2 ]);
          Const (4, 1.);
          Set_elem (3, 4, 0);
          Const (5, 1.);
          Cmp (6, Eq, 1, 5);
          If (6, [ Set_len (3, 1); Const (7, 9.); Gnew (0, [ 7; 7; 7; 7 ]) ], []);
          Const (8, big);
          Set_elem (3, 4, 8);
          Get_elem (9, 3, 4);
        ];
      ret = Some 9;
    }

(* Gadget 4: index variable rewritten to a wild value on the late path. *)
let seed_wild_store =
  gadget
    {
      arity = 2;
      body =
        [
          Const (2, 1.);
          Array_of (3, [ 2; 2; 2; 2; 2; 2; 2; 2 ]);
          Const (4, 1.);
          Const (5, 5000000.);
          Const (6, 1.);
          Cmp (7, Eq, 1, 6);
          If
            ( 7,
              [ Set_len (3, 1); Const (8, 9.); Gnew (0, [ 8; 8; 8; 8 ]); Copy (4, 5) ],
              [] );
          Const (9, big);
          Set_elem (3, 4, 9);
        ];
      ret = None;
    }

(* Benign hot arithmetic — keeps the population from being all-exploit
   and gives splice a source of harmless material. *)
let seed_benign =
  {
    globals = 0;
    funcs =
      [
        {
          arity = 1;
          body =
            [
              Const (1, 0.);
              Loop (2, 16, [ Binop (3, Mul, 2, 0); Update (1, Add, 3) ]);
            ];
          ret = Some 1;
        };
      ];
    main =
      [
        Const (0, 0.);
        Loop (1, 50, [ Call (2, 0, [ 1 ]); Update (0, Add, 2) ]);
        Print 0;
      ];
  }

let seeds () =
  [
    seed_shrink_between_accesses;
    seed_stale_length_loop;
    seed_constant_index;
    seed_wild_store;
    seed_benign;
  ]
