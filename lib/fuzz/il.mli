(** Typed mutation IL over the bytecode layer (FuzzIL-style).

    PR 5's AST mutators edit source trees, so most mutants are
    semantically fragile: an inserted statement references names that do
    not exist, a perturbed literal turns a loop bound infinite, a spliced
    chunk reads a variable of the wrong shape. This IL makes the mutation
    space typed instead: every instruction declares the types of its
    input and output variables, control flow is structured (bounded
    counted loops, two-armed ifs), and programs carry their own
    function table and global-array slots — so splice/combine/code-gen
    mutators ({!Il_mutate}) can only produce programs that

    - lower to parseable mini-JS ({!to_source}),
    - compile to bytecode that passes the verifier
      ({!Jitbull_bytecode.Verify}), and
    - terminate (loop bounds are structural constants or array lengths,
      and calls can only reach strictly lower-indexed functions, so there
      is no recursion).

    The campaign measures that promise as the {e mutation yield}: the
    fraction of executed mutants that run to completion without a
    runtime error. Out-of-bounds array traffic is deliberately still
    expressible — an OOB read is [undefined] (arithmetic turns it into
    [NaN], which is still a number), an OOB write is absorbed or grows
    the array by one — because those are exactly the shapes that reach
    the modeled CVEs. *)

(** Variable types. [Num]-typed variables may dynamically hold
    [undefined]/[NaN] after OOB reads; every operation consuming them is
    total. *)
type ty =
  | Num
  | Bool
  | Str
  | Arr

(** Numeric binary operators (Num × Num → Num, all total). *)
type binop = Add | Sub | Mul | Div | Mod | BAnd | BOr | BXor | Shl | Shr | Ushr

(** Comparisons (Num × Num → Bool). *)
type cmpop = Lt | Le | Gt | Ge | Eq | Neq

val binop_name : binop -> string
val cmpop_name : cmpop -> string
val all_binops : binop list
val all_cmpops : cmpop list

(** Variables are small ints, rendered [v<n>]. Within one function (or
    main) every defining occurrence uses a fresh id. *)
type var = int

type instr =
  | Const of var * float  (** v := literal *)
  | Str_const of var * string  (** v := "literal" *)
  | Bool_const of var * bool
  | Binop of var * binop * var * var
  | Cmp of var * cmpop * var * var
  | Not of var * var  (** Bool → Bool *)
  | Copy of var * var  (** reassign: dst = src, both Num *)
  | Update of var * binop * var  (** dst = dst op src, both Num *)
  | Array_of of var * var list  (** v := [nums…] *)
  | Get_len of var * var  (** Num := arr.length; result is length-tainted
                              and usable as a {!Loop_n} bound *)
  | Set_len of var * int  (** arr.length = k, structural 0 ≤ k ≤ 15 *)
  | Get_elem of var * var * var  (** Num := arr[idx] *)
  | Set_elem of var * var * var  (** arr[idx] = num *)
  | Gnew of int * var list  (** g<slot> = [nums…] — fresh allocation *)
  | Gget_len of var * int  (** main-only, see below *)
  | Gset_len of int * int
  | Gget_elem of var * int * var  (** main-only, see below *)
  | Gset_elem of int * var * var
  | Call of var * int * var list  (** Num := f<k>(nums…) *)
  | Print of var  (** main-only, see below *)
  | Print_tag of string * var  (** main-only; print("tag" + v) *)
  | If of var * instr list * instr list  (** cond is Bool *)
  | Loop of var * int * instr list
      (** for (var v = 0; v < k; v++), structural 1 ≤ k ≤ {!max_loop_bound} *)
  | Loop_n of var * var * instr list
      (** counted loop whose bound is a length-tainted variable *)

type func = {
  arity : int;  (** 0‥3 Num params, ids [0 ‥ arity-1] *)
  body : instr list;
  ret : var option;  (** Num in scope at body end; None = return 0 *)
}

type prog = {
  globals : int;  (** global array slots g0‥g(n-1), 0 ≤ n ≤ {!max_globals} *)
  funcs : func list;  (** f<i> may only call f<j>, j < i *)
  main : instr list;
}

val max_loop_bound : int  (** 64 *)

val max_set_len : int  (** 15 *)

val max_globals : int  (** 8 *)

val max_nesting : int  (** 4 — loop/if structural nesting bound *)

val max_func_instrs : int  (** 2048 static instructions per body *)

val max_funcs : int  (** 8 functions per program *)

val max_arity : int  (** 3 parameters per function *)

val max_elems : int  (** 16 elements per array literal *)

val max_work : int
(** 500_000 — budget for the worst-case dynamic instruction estimate
    (structural loops multiply by their bound, [Loop_n] by a fixed
    length bound, calls by the callee's estimate). {!typecheck} rejects
    programs over budget so typed mutants can never exhaust the model
    heap or the oracle's step limit. *)

(** {2 Static semantics} *)

(** [typecheck p] — [Ok ()] iff every variable use is in scope with the
    right type, defining ids are fresh, loop bounds/slots/calls are in
    range, loop counters are never written, [Loop_n] bounds are
    length-tainted, nesting and size stay under the caps, and [ret]
    variables are in-scope [Num]s.

    Two rules exist because a JIT bailout replays the whole function
    from its entry in the VM tier ({!Jitbull_jit.Engine}): [Print]/
    [Print_tag] and the global reads [Gget_len]/[Gget_elem] are allowed
    in [main] only (main never tiers up). Function bodies may still
    {e write} globals — their stored values derive only from arguments
    and locals, so a replay stores the same values and the observable
    output is bailout-stable. Without this, a mutant placing a print
    before a bounds-check bailout would "mismatch" on a patched engine —
    a false positive. Mutators must only emit programs for which
    [typecheck] holds; the property tests assert it. *)
val typecheck : prog -> (unit, string) result

(** {2 Lowering and wire format} *)

(** Lower to mini-JS source. For a typechecked program the result
    parses, compiles, passes the bytecode verifier, and terminates. *)
val to_source : prog -> string

(** Line-oriented textual encoding (the distilled-corpus and sync wire
    format — stable, golden-tested). *)
val serialize : prog -> string

(** Strict inverse of {!serialize}. The result additionally passes
    {!typecheck} or an [Error] is returned. *)
val parse : string -> (prog, string) result

(** {2 Seeds} *)

(** Hand-written IL seed programs: the four aggressive gadget shapes
    from {!Generator} (shrink-between-accesses, stale-length loop,
    constant index, wild store) re-expressed in the IL, plus a benign
    hot-arithmetic program — the initial population of IL campaigns. *)
val seeds : unit -> prog list
