(* Typed mutators over Il programs. See il_mutate.mli.

   All mutators follow the same two-pass shape: one deterministic walk
   over the program enumerates candidate sites (with the typing
   environment at each), the Prng picks one, and a second walk applies
   the edit at that site. A final Il.typecheck guards every construction
   so a [Some] result is valid by construction. *)

open Il
module Prng = Jitbull_util.Prng

type kind = Splice | Combine | Codegen | Retarget | Perturb | Wrap_loop

let kinds = [ Splice; Combine; Codegen; Retarget; Perturb; Wrap_loop ]

let kind_name = function
  | Splice -> "splice"
  | Combine -> "combine"
  | Codegen -> "codegen"
  | Retarget -> "retarget"
  | Perturb -> "perturb"
  | Wrap_loop -> "wrap_loop"

(* ------------------------------------------------------------------ *)
(* Environment walk                                                   *)
(* ------------------------------------------------------------------ *)

type entry = { e_ty : ty; tainted : bool; counter : bool }

(* Which body a site lives in: main sees every function as callable,
   f<i> only lower-indexed ones. *)
type ctx = { fn : int option; callable : int }

let extend env = function
  | Const (d, _) -> (d, { e_ty = Num; tainted = false; counter = false }) :: env
  | Str_const (d, _) -> (d, { e_ty = Str; tainted = false; counter = false }) :: env
  | Bool_const (d, _) -> (d, { e_ty = Bool; tainted = false; counter = false }) :: env
  | Binop (d, _, _, _) -> (d, { e_ty = Num; tainted = false; counter = false }) :: env
  | Cmp (d, _, _, _) -> (d, { e_ty = Bool; tainted = false; counter = false }) :: env
  | Not (d, _) -> (d, { e_ty = Bool; tainted = false; counter = false }) :: env
  | Array_of (d, _) -> (d, { e_ty = Arr; tainted = false; counter = false }) :: env
  | Get_len (d, _) | Gget_len (d, _) ->
    (d, { e_ty = Num; tainted = true; counter = false }) :: env
  | Get_elem (d, _, _) | Gget_elem (d, _, _) | Call (d, _, _) ->
    (d, { e_ty = Num; tainted = false; counter = false }) :: env
  | Copy _ | Update _ | Set_len _ | Set_elem _ | Gnew _ | Gset_len _ | Gset_elem _
  | Print _ | Print_tag _ | If _ | Loop _ | Loop_n _ ->
    env

(* Rebuild a program, letting [gap] inject instructions at every gap
   (before each instruction and at each body end) and [ins] replace each
   instruction. Visit order is fixed: functions in order, then main;
   within a body, gap 0, instr 0, gap 1, instr 1, …, trailing gap; an
   instruction's nested bodies are visited after the instruction itself.
   Callbacks see the typing environment and structural depth of the
   site, and number sites themselves (the visit order is deterministic
   so one counting pass and one applying pass line up exactly). *)
let walk p ~(gap : ctx -> entry_env:(var * entry) list -> depth:int -> instr list)
    ~(ins : ctx -> entry_env:(var * entry) list -> depth:int -> instr -> instr) =
  let rec body ctx env depth instrs =
    let out = ref [] in
    let env = ref env in
    List.iter
      (fun i ->
        out := List.rev_append (gap ctx ~entry_env:!env ~depth) !out;
        let i = ins ctx ~entry_env:!env ~depth i in
        let i =
          match i with
          | If (c, a, b) ->
            If (c, body ctx !env (depth + 1) a, body ctx !env (depth + 1) b)
          | Loop (c, k, b) ->
            let inner = (c, { e_ty = Num; tainted = false; counter = true }) :: !env in
            Loop (c, k, body ctx inner (depth + 1) b)
          | Loop_n (c, n, b) ->
            let inner = (c, { e_ty = Num; tainted = false; counter = true }) :: !env in
            Loop_n (c, n, body ctx inner (depth + 1) b)
          | i -> i
        in
        out := i :: !out;
        env := extend !env i)
      instrs;
    out := List.rev_append (gap ctx ~entry_env:!env ~depth) !out;
    List.rev !out
  in
  let funcs =
    List.mapi
      (fun i (f : func) ->
        let ctx = { fn = Some i; callable = i } in
        let env0 =
          List.init f.arity (fun p ->
              (p, { e_ty = Num; tainted = false; counter = false }))
        in
        { f with body = body ctx env0 0 f.body })
      p.funcs
  in
  let main =
    body { fn = None; callable = List.length p.funcs } [] 0 p.main
  in
  { p with funcs; main }

let no_gap _ ~entry_env:_ ~depth:_ = []
let no_ins _ ~entry_env:_ ~depth:_ i = i

(* ------------------------------------------------------------------ *)
(* Structural helpers                                                 *)
(* ------------------------------------------------------------------ *)

let rec instr_depth = function
  | If (_, a, b) -> 1 + max (body_depth a) (body_depth b)
  | Loop (_, _, b) | Loop_n (_, _, b) -> 1 + body_depth b
  | _ -> 0

and body_depth b = List.fold_left (fun acc i -> max acc (instr_depth i)) 0 b

(* All defining occurrences in an instruction, nested bodies included
   (loop counters count). *)
let rec defs_rec acc = function
  | Const (d, _) | Str_const (d, _) | Bool_const (d, _) | Binop (d, _, _, _)
  | Cmp (d, _, _, _) | Not (d, _) | Array_of (d, _) | Get_len (d, _)
  | Get_elem (d, _, _) | Gget_len (d, _) | Gget_elem (d, _, _) | Call (d, _, _) ->
    d :: acc
  | Copy _ | Update _ | Set_len _ | Set_elem _ | Gnew _ | Gset_len _ | Gset_elem _
  | Print _ | Print_tag _ ->
    acc
  | If (_, a, b) -> List.fold_left defs_rec (List.fold_left defs_rec acc a) b
  | Loop (c, _, b) | Loop_n (c, _, b) -> List.fold_left defs_rec (c :: acc) b

(* Requirements a replacement variable must satisfy when a use is
   remapped during splice. *)
type req = { r_ty : ty option; r_tainted : bool; r_writable : bool }

let any_req = { r_ty = None; r_tainted = false; r_writable = false }
let num_req = { any_req with r_ty = Some Num }
let bool_req = { any_req with r_ty = Some Bool }
let arr_req = { any_req with r_ty = Some Arr }

let merge_req a b =
  {
    r_ty = (match a.r_ty with None -> b.r_ty | Some _ -> a.r_ty);
    r_tainted = a.r_tainted || b.r_tainted;
    r_writable = a.r_writable || b.r_writable;
  }

let satisfies (e : entry) req =
  (match req.r_ty with None -> true | Some t -> e.e_ty = t)
  && ((not req.r_tainted) || e.tainted)
  && ((not req.r_writable) || ((not e.counter) && e.e_ty = Num))

(* All variable uses of an instruction with their requirements, nested
   bodies included. *)
let rec uses_rec acc = function
  | Const _ | Str_const _ | Bool_const _ | Gset_len _ | Gget_len _ -> acc
  | Binop (_, _, a, b) | Cmp (_, _, a, b) -> (a, num_req) :: (b, num_req) :: acc
  | Not (_, a) -> (a, bool_req) :: acc
  | Copy (d, s) | Update (d, _, s) ->
    (d, { num_req with r_writable = true }) :: (s, num_req) :: acc
  | Array_of (_, elems) | Gnew (_, elems) ->
    List.fold_left (fun acc v -> (v, num_req) :: acc) acc elems
  | Get_len (_, a) -> (a, arr_req) :: acc
  | Set_len (a, _) -> (a, arr_req) :: acc
  | Get_elem (_, a, i) -> (a, arr_req) :: (i, num_req) :: acc
  | Set_elem (a, i, x) -> (a, arr_req) :: (i, num_req) :: (x, num_req) :: acc
  | Gget_elem (_, _, i) -> (i, num_req) :: acc
  | Gset_elem (_, i, x) -> (i, num_req) :: (x, num_req) :: acc
  | Call (_, _, args) -> List.fold_left (fun acc v -> (v, num_req) :: acc) acc args
  | Print v | Print_tag (_, v) -> (v, any_req) :: acc
  | If (c, a, b) ->
    (c, bool_req) :: List.fold_left uses_rec (List.fold_left uses_rec acc a) b
  | Loop (_, _, b) -> List.fold_left uses_rec acc b
  | Loop_n (_, n, b) ->
    (n, { num_req with r_tainted = true }) :: List.fold_left uses_rec acc b

let rec has_call = function
  | Call _ -> true
  | If (_, a, b) -> List.exists has_call a || List.exists has_call b
  | Loop (_, _, b) | Loop_n (_, _, b) -> List.exists has_call b
  | _ -> false

(* Apply a variable renaming (defaulting to identity) everywhere. *)
let rec rename r = function
  | Const (d, x) -> Const (r d, x)
  | Str_const (d, s) -> Str_const (r d, s)
  | Bool_const (d, b) -> Bool_const (r d, b)
  | Binop (d, op, a, b) -> Binop (r d, op, r a, r b)
  | Cmp (d, op, a, b) -> Cmp (r d, op, r a, r b)
  | Not (d, a) -> Not (r d, r a)
  | Copy (d, s) -> Copy (r d, r s)
  | Update (d, op, s) -> Update (r d, op, r s)
  | Array_of (d, elems) -> Array_of (r d, List.map r elems)
  | Get_len (d, a) -> Get_len (r d, r a)
  | Set_len (a, k) -> Set_len (r a, k)
  | Get_elem (d, a, i) -> Get_elem (r d, r a, r i)
  | Set_elem (a, i, x) -> Set_elem (r a, r i, r x)
  | Gnew (k, elems) -> Gnew (k, List.map r elems)
  | Gget_len (d, k) -> Gget_len (r d, k)
  | Gset_len (k, n) -> Gset_len (k, n)
  | Gget_elem (d, k, i) -> Gget_elem (r d, k, r i)
  | Gset_elem (k, i, x) -> Gset_elem (k, r i, r x)
  | Call (d, k, args) -> Call (r d, k, List.map r args)
  | Print v -> Print (r v)
  | Print_tag (t, v) -> Print_tag (t, r v)
  | If (c, a, b) -> If (r c, List.map (rename r) a, List.map (rename r) b)
  | Loop (c, k, b) -> Loop (r c, k, List.map (rename r) b)
  | Loop_n (c, n, b) -> Loop_n (r c, r n, List.map (rename r) b)

(* First unused variable id in the body that owns [ctx]'s sites. *)
let fresh_base p ctx =
  let scan arity body extra =
    let m = List.fold_left defs_rec [] body in
    let m = List.fold_left (fun acc v -> max acc v) (arity - 1) m in
    let m = match extra with Some v -> max m v | None -> m in
    m + 1
  in
  match ctx.fn with
  | None -> scan 0 p.main None
  | Some i ->
    let f = List.nth p.funcs i in
    scan f.arity f.body f.ret

(* Candidate-site bookkeeping: mutators count matching sites in one walk,
   draw an index, and apply on a second identical walk. *)
let guard p = match Il.typecheck p with Ok () -> Some p | Error _ -> None

let const_pool = [| 0.; 1.; 2.; 3.; 5.; 7.; 12.; 255.; 65536.; 5000000.; 1073741824. |]

let rand_const rng = const_pool.(Prng.int rng (Array.length const_pool))

(* ------------------------------------------------------------------ *)
(* Perturb                                                            *)
(* ------------------------------------------------------------------ *)

let perturb rng p =
  let nudge_float rng x =
    match Prng.int rng 6 with
    | 0 -> x +. 1.
    | 1 -> x -. 1.
    | 2 -> x *. 2.
    | 3 -> Float.of_int (Prng.int rng 16)
    | 4 -> rand_const rng
    | _ -> if Float.abs x > 1. then x /. 2. else x +. 3.
  in
  let candidate = function
    | Const _ | Bool_const _ | Binop _ | Cmp _ | Update _ | Set_len _ | Gset_len _
    | Loop _ ->
      true
    | _ -> false
  in
  let n = ref 0 in
  ignore
    (walk p ~gap:no_gap ~ins:(fun _ ~entry_env:_ ~depth:_ i ->
         if candidate i then incr n;
         i));
  if !n = 0 then None
  else begin
    let target = Prng.int rng !n in
    let seen = ref 0 in
    let apply i =
      match i with
      | Const (d, x) ->
        let x' = nudge_float rng x in
        Const (d, (if Float.is_finite x' then x' else 1.))
      | Bool_const (d, b) -> Bool_const (d, not b)
      | Binop (d, _, a, b) ->
        Binop (d, List.nth all_binops (Prng.int rng (List.length all_binops)), a, b)
      | Cmp (d, _, a, b) ->
        Cmp (d, List.nth all_cmpops (Prng.int rng (List.length all_cmpops)), a, b)
      | Update (d, _, s) ->
        Update (d, List.nth all_binops (Prng.int rng (List.length all_binops)), s)
      | Set_len (a, _) -> Set_len (a, Prng.int rng (max_set_len + 1))
      | Gset_len (k, _) -> Gset_len (k, Prng.int rng (max_set_len + 1))
      | Loop (c, _, b) -> Loop (c, 1 + Prng.int rng 24, b)
      | i -> i
    in
    let p' =
      walk p ~gap:no_gap ~ins:(fun _ ~entry_env:_ ~depth:_ i ->
          if candidate i then begin
            let here = !seen in
            incr seen;
            if here = target then apply i else i
          end
          else i)
    in
    guard p'
  end

(* ------------------------------------------------------------------ *)
(* Retarget                                                           *)
(* ------------------------------------------------------------------ *)

(* Rewire one operand to a different in-scope variable of a compatible
   type. Operand slots are numbered per instruction; defs are not
   operands. *)
let operand_slots env i =
  let compat req = List.filter (fun (_, e) -> satisfies e req) env in
  let slot k req rebuild =
    let alts = List.map fst (compat req) in
    if alts = [] then None else Some (k, alts, rebuild)
  in
  match i with
  | Binop (d, op, a, b) ->
    [
      slot 0 num_req (fun v -> Binop (d, op, v, b));
      slot 1 num_req (fun v -> Binop (d, op, a, v));
    ]
  | Cmp (d, op, a, b) ->
    [
      slot 0 num_req (fun v -> Cmp (d, op, v, b));
      slot 1 num_req (fun v -> Cmp (d, op, a, v));
    ]
  | Not (d, _) -> [ slot 0 bool_req (fun v -> Not (d, v)) ]
  | Copy (d, _) -> [ slot 0 num_req (fun v -> Copy (d, v)) ]
  | Update (d, op, _) -> [ slot 0 num_req (fun v -> Update (d, op, v)) ]
  | Get_elem (d, a, _) -> [ slot 0 num_req (fun v -> Get_elem (d, a, v)) ]
  | Set_elem (a, i', x) ->
    [
      slot 0 num_req (fun v -> Set_elem (a, v, x));
      slot 1 num_req (fun v -> Set_elem (a, i', v));
    ]
  | Gget_elem (d, k, _) -> [ slot 0 num_req (fun v -> Gget_elem (d, k, v)) ]
  | Gset_elem (k, i', x) ->
    [
      slot 0 num_req (fun v -> Gset_elem (k, v, x));
      slot 1 num_req (fun v -> Gset_elem (k, i', v));
    ]
  | Set_len (_, k) -> [ slot 0 arr_req (fun v -> Set_len (v, k)) ]
  | Get_len (d, _) -> [ slot 0 arr_req (fun v -> Get_len (d, v)) ]
  | Print _ -> [ slot 0 any_req (fun v -> Print v) ]
  | Print_tag (t, _) -> [ slot 0 any_req (fun v -> Print_tag (t, v)) ]
  | If (_, a, b) -> [ slot 0 bool_req (fun v -> If (v, a, b)) ]
  | Loop_n (c, _, b) ->
    [ slot 0 { num_req with r_tainted = true } (fun v -> Loop_n (c, v, b)) ]
  | Call (d, k, args) ->
    List.mapi
      (fun idx _ ->
        slot idx num_req (fun v ->
            Call (d, k, List.mapi (fun j a -> if j = idx then v else a) args)))
      args
  | _ -> []

let retarget rng p =
  let n = ref 0 in
  ignore
    (walk p ~gap:no_gap ~ins:(fun _ ~entry_env ~depth:_ i ->
         List.iter
           (function Some _ -> incr n | None -> ())
           (operand_slots entry_env i);
         i));
  if !n = 0 then None
  else begin
    let target = Prng.int rng !n in
    let seen = ref 0 in
    let p' =
      walk p ~gap:no_gap ~ins:(fun _ ~entry_env ~depth:_ i ->
          let slots = List.filter_map Fun.id (operand_slots entry_env i) in
          let chosen =
            List.find_opt
              (fun _ ->
                let here = !seen in
                incr seen;
                here = target)
              slots
          in
          match chosen with
          | Some (_, alts, rebuild) -> rebuild (List.nth alts (Prng.int rng (List.length alts)))
          | None -> i)
    in
    guard p'
  end

(* ------------------------------------------------------------------ *)
(* Codegen                                                            *)
(* ------------------------------------------------------------------ *)

(* Generate a small typed snippet valid in [env]. Fresh ids are handed
   out by [next]. *)
let gen_snippet rng p ctx env depth next =
  let nums = List.filter (fun (_, e) -> e.e_ty = Num) env in
  let wnums = List.filter (fun (_, e) -> satisfies e { num_req with r_writable = true }) env in
  let bools = List.filter (fun (_, e) -> e.e_ty = Bool) env in
  let arrs = List.filter (fun (_, e) -> e.e_ty = Arr) env in
  let pick l = fst (List.nth l (Prng.int rng (List.length l))) in
  (* Ensure a Num operand exists, synthesizing a constant if needed. *)
  let with_num k =
    match nums with
    | [] ->
      let c = next () in
      Const (c, rand_const rng) :: k c
    | _ -> k (pick nums)
  in
  let simple () =
    match Prng.int rng 6 with
    | 0 -> [ Const (next (), rand_const rng) ]
    | 1 -> with_num (fun a -> with_num (fun b ->
        [ Binop (next (), List.nth all_binops (Prng.int rng 11), a, b) ]))
    | 2 when wnums <> [] ->
      with_num (fun s -> [ Update (pick wnums, List.nth all_binops (Prng.int rng 11), s) ])
    | 3 when arrs <> [] -> with_num (fun i -> [ Get_elem (next (), pick arrs, i) ])
    | 4 when arrs <> [] ->
      with_num (fun i -> with_num (fun x -> [ Set_elem (pick arrs, i, x) ]))
    | _ -> with_num (fun a -> with_num (fun b ->
        [ Cmp (next (), List.nth all_cmpops (Prng.int rng 6), a, b) ]))
  in
  match Prng.int rng 10 with
  | 0 | 1 | 2 -> simple ()
  | 3 ->
    (* array material *)
    with_num (fun x ->
        let elems = List.init (Prng.int rng 6) (fun _ -> x) in
        [ Array_of (next (), elems) ])
  | 4 when arrs <> [] ->
    let a = pick arrs in
    (match Prng.int rng 3 with
    | 0 -> [ Get_len (next (), a) ]
    | 1 -> [ Set_len (a, Prng.int rng (max_set_len + 1)) ]
    | _ -> with_num (fun i -> [ Get_elem (next (), a, i) ]))
  | 5 when p.globals > 0 ->
    let k = Prng.int rng p.globals in
    (* global reads are main-only: a bailed-out function replays from its
       entry, so reads of state it already wrote would diverge *)
    (match Prng.int rng 3 with
    | 0 when ctx.fn = None -> [ Gget_len (next (), k) ]
    | 1 when ctx.fn = None -> with_num (fun i -> [ Gget_elem (next (), k, i) ])
    | _ -> with_num (fun i -> with_num (fun x -> [ Gset_elem (k, i, x) ])))
  | 6 when ctx.callable > 0 ->
    let k = Prng.int rng ctx.callable in
    let callee = List.nth p.funcs k in
    let rec args acc pre n =
      if n = 0 then List.rev pre @ [ Call (next (), k, List.rev acc) ]
      else
        match nums with
        | [] ->
          let c = next () in
          args (c :: acc) (Const (c, rand_const rng) :: pre) (n - 1)
        | _ -> args (pick nums :: acc) pre (n - 1)
    in
    args [] [] callee.arity
  | 7 when depth < max_nesting ->
    (* a guarded block; synthesize the condition if no Bool is around *)
    let body = simple () in
    (match bools with
    | [] ->
      with_num (fun a ->
          with_num (fun b ->
              let c = next () in
              [ Cmp (c, List.nth all_cmpops (Prng.int rng 6), a, b); If (c, body, []) ]))
    | _ -> [ If (pick bools, body, []) ])
  | 8 when depth < max_nesting ->
    let c = next () in
    (* loop body may use the counter *)
    let body =
      match Prng.int rng 2 with
      | 0 when wnums <> [] ->
        [ Update (pick wnums, List.nth all_binops (Prng.int rng 11), c) ]
      | _ -> [ Binop (next (), Mul, c, c) ]
    in
    [ Loop (c, 1 + Prng.int rng 16, body) ]
  | _ when ctx.fn = None && env <> [] ->
    let v = fst (List.nth env (Prng.int rng (List.length env))) in
    [ Print_tag ("probe ", v) ]
  | _ -> simple ()

let codegen rng p =
  let n = ref 0 in
  ignore (walk p ~gap:(fun _ ~entry_env:_ ~depth:_ -> incr n; []) ~ins:no_ins);
  if !n = 0 then None
  else begin
    let target = Prng.int rng !n in
    let seen = ref 0 in
    let fresh = ref (-1) in
    let p' =
      walk p
        ~gap:(fun ctx ~entry_env ~depth ->
          let here = !seen in
          incr seen;
          if here <> target then []
          else begin
            if !fresh < 0 then fresh := fresh_base p ctx;
            let next () =
              let v = !fresh in
              incr fresh;
              v
            in
            gen_snippet rng p ctx entry_env depth next
          end)
        ~ins:no_ins
    in
    guard p'
  end

(* ------------------------------------------------------------------ *)
(* Splice                                                             *)
(* ------------------------------------------------------------------ *)

(* Enumerate donor slices: contiguous call-free runs of up to 4
   instructions at any body level. Returns (instrs, free-var reqs,
   structural depth). *)
let donor_slices donor =
  let out = ref [] in
  let record slice =
    if slice <> [] && not (List.exists has_call slice) then begin
      let defined = Hashtbl.create 16 in
      let free = Hashtbl.create 16 in
      List.iter
        (fun i ->
          List.iter
            (fun (v, req) ->
              if not (Hashtbl.mem defined v) then
                Hashtbl.replace free v
                  (match Hashtbl.find_opt free v with
                  | Some r -> merge_req r req
                  | None -> req))
            (List.rev (uses_rec [] i));
          List.iter (fun d -> Hashtbl.replace defined d ()) (defs_rec [] i))
        slice;
      let free = Hashtbl.fold (fun v r acc -> (v, r) :: acc) free [] in
      let free = List.sort (fun (a, _) (b, _) -> compare a b) free in
      out := (slice, free, body_depth slice) :: !out
    end
  in
  let rec bodies b =
    let arr = Array.of_list b in
    let n = Array.length arr in
    for start = 0 to n - 1 do
      for len = 1 to min 4 (n - start) do
        record (Array.to_list (Array.sub arr start len))
      done
    done;
    List.iter
      (function
        | If (_, a, b) ->
          bodies a;
          bodies b
        | Loop (_, _, b) | Loop_n (_, _, b) -> bodies b
        | _ -> ())
      b
  in
  List.iter (fun (f : func) -> bodies f.body) donor.funcs;
  bodies donor.main;
  List.rev !out

let splice rng ~donor p =
  match donor_slices donor with
  | [] -> None
  | slices ->
    let slice, free, sdepth = List.nth slices (Prng.int rng (List.length slices)) in
    (* eligible gaps: depth budget holds *)
    let n = ref 0 in
    ignore
      (walk p
         ~gap:(fun _ ~entry_env:_ ~depth ->
           if depth + sdepth <= max_nesting then incr n;
           [])
         ~ins:no_ins);
    if !n = 0 then None
    else begin
      let target = Prng.int rng !n in
      let seen = ref 0 in
      let fresh = ref (-1) in
      let max_slot = ref (-1) in
      List.iter
        (fun i ->
          let rec slots = function
            | Gnew (k, _) | Gget_len (_, k) | Gset_len (k, _) | Gget_elem (_, k, _)
            | Gset_elem (k, _, _) ->
              max_slot := max !max_slot k
            | If (_, a, b) ->
              List.iter slots a;
              List.iter slots b
            | Loop (_, _, b) | Loop_n (_, _, b) -> List.iter slots b
            | _ -> ()
          in
          slots i)
        slice;
      let globals' = min max_globals (max p.globals (!max_slot + 1)) in
      let remap_slot k = if globals' = 0 then 0 else k mod globals' in
      let p' =
        walk p
          ~gap:(fun ctx ~entry_env ~depth ->
            if depth + sdepth > max_nesting then []
            else begin
              let here = !seen in
              incr seen;
              if here <> target then []
              else begin
                if !fresh < 0 then fresh := fresh_base p ctx;
                let next () =
                  let v = !fresh in
                  incr fresh;
                  v
                in
                (* Map donor vars: defs to fresh target ids, free vars to
                   compatible in-scope vars or synthesized material. *)
                let map = Hashtbl.create 32 in
                let prelude = ref [] in
                List.iter
                  (fun (v, req) ->
                    let candidates =
                      List.filter (fun (_, e) -> satisfies e req) entry_env
                    in
                    match candidates with
                    | _ :: _ ->
                      Hashtbl.replace map v
                        (fst (List.nth candidates (Prng.int rng (List.length candidates))))
                    | [] ->
                      let synth =
                        match req.r_ty with
                        | Some Bool ->
                          let d = next () in
                          prelude := Bool_const (d, Prng.bool rng) :: !prelude;
                          d
                        | Some Str ->
                          let d = next () in
                          prelude := Str_const (d, "s") :: !prelude;
                          d
                        | Some Arr ->
                          let d = next () in
                          prelude := Array_of (d, []) :: !prelude;
                          d
                        | Some Num when req.r_tainted ->
                          let a = next () in
                          let d = next () in
                          prelude :=
                            Get_len (d, a) :: Array_of (a, []) :: !prelude;
                          d
                        | _ ->
                          let d = next () in
                          prelude := Const (d, rand_const rng) :: !prelude;
                          d
                      in
                      Hashtbl.replace map v synth)
                  free;
                List.iter
                  (fun i ->
                    List.iter
                      (fun d ->
                        if not (Hashtbl.mem map d) then Hashtbl.replace map d (next ()))
                      (List.rev (defs_rec [] i)))
                  slice;
                let r v = match Hashtbl.find_opt map v with Some v' -> v' | None -> v in
                let fix_slots i =
                  let rec go = function
                    | Gnew (k, e) -> Gnew (remap_slot k, e)
                    | Gget_len (d, k) -> Gget_len (d, remap_slot k)
                    | Gset_len (k, n) -> Gset_len (remap_slot k, n)
                    | Gget_elem (d, k, i) -> Gget_elem (d, remap_slot k, i)
                    | Gset_elem (k, i, x) -> Gset_elem (remap_slot k, i, x)
                    | If (c, a, b) -> If (c, List.map go a, List.map go b)
                    | Loop (c, k, b) -> Loop (c, k, List.map go b)
                    | Loop_n (c, n, b) -> Loop_n (c, n, List.map go b)
                    | i -> i
                  in
                  go i
                in
                List.rev !prelude @ List.map (fun i -> fix_slots (rename r i)) slice
              end
            end)
          ~ins:no_ins
      in
      guard { p' with globals = globals' }
    end

(* ------------------------------------------------------------------ *)
(* Combine                                                            *)
(* ------------------------------------------------------------------ *)

let combine rng ~donor p =
  let importable =
    List.filter (fun (f : func) -> not (List.exists has_call f.body)) donor.funcs
  in
  if importable = [] || List.length p.funcs >= max_funcs then None
  else begin
    let f = List.nth importable (Prng.int rng (List.length importable)) in
    let globals' =
      let max_slot = ref (-1) in
      let rec slots = function
        | Gnew (k, _) | Gget_len (_, k) | Gset_len (k, _) | Gget_elem (_, k, _)
        | Gset_elem (k, _, _) ->
          max_slot := max !max_slot k
        | If (_, a, b) ->
          List.iter slots a;
          List.iter slots b
        | Loop (_, _, b) | Loop_n (_, _, b) -> List.iter slots b
        | _ -> ()
      in
      List.iter slots f.body;
      min max_globals (max p.globals (!max_slot + 1))
    in
    let new_idx = List.length p.funcs in
    (* insert a call to the import at a random gap in main *)
    let n = ref 0 in
    ignore
      (walk p
         ~gap:(fun ctx ~entry_env:_ ~depth:_ ->
           if ctx.fn = None then incr n;
           [])
         ~ins:no_ins);
    if !n = 0 then None
    else begin
      let target = Prng.int rng !n in
      let seen = ref 0 in
      let fresh = ref (-1) in
      let p' =
        walk p
          ~gap:(fun ctx ~entry_env ~depth:_ ->
            if ctx.fn <> None then []
            else begin
              let here = !seen in
              incr seen;
              if here <> target then []
              else begin
                if !fresh < 0 then fresh := fresh_base p ctx;
                let next () =
                  let v = !fresh in
                  incr fresh;
                  v
                in
                let nums = List.filter (fun (_, e) -> e.e_ty = Num) entry_env in
                let rec args acc pre n =
                  if n = 0 then List.rev pre @ [ Call (next (), new_idx, List.rev acc) ]
                  else
                    match nums with
                    | [] ->
                      let c = next () in
                      args (c :: acc) (Const (c, rand_const rng) :: pre) (n - 1)
                    | _ ->
                      args
                        (fst (List.nth nums (Prng.int rng (List.length nums))) :: acc)
                        pre (n - 1)
                in
                args [] [] f.arity
              end
            end)
          ~ins:no_ins
      in
      guard { p' with funcs = p'.funcs @ [ f ]; globals = globals' }
    end
  end

(* ------------------------------------------------------------------ *)
(* Wrap_loop                                                          *)
(* ------------------------------------------------------------------ *)

(* Wrap a run of instructions in a counted loop. Only runs whose defs
   are not used later in the enclosing body stay scope-correct, so the
   candidate enumeration works on body lists directly (no walk engine:
   we need "uses after the run" which the gap/ins callbacks don't see). *)
let wrap_loop rng p =
  let candidates = ref 0 in
  let rec scan depth body =
    let arr = Array.of_list body in
    let n = Array.length arr in
    for start = 0 to n - 1 do
      for len = 1 to min 3 (n - start) do
        let slice = Array.to_list (Array.sub arr start len) in
        let after = Array.to_list (Array.sub arr (start + len) (n - start - len)) in
        let defs = List.fold_left defs_rec [] slice in
        let used_after =
          List.exists
            (fun i -> List.exists (fun (v, _) -> List.mem v defs) (uses_rec [] i))
            after
        in
        if
          (not used_after)
          && depth + 1 + body_depth slice <= max_nesting
          && not (List.exists has_call slice)
        then incr candidates
      done
    done;
    List.iter
      (function
        | If (_, a, b) ->
          scan (depth + 1) a;
          scan (depth + 1) b
        | Loop (_, _, b) | Loop_n (_, _, b) -> scan (depth + 1) b
        | _ -> ())
      body
  in
  List.iter (fun (f : func) -> scan 0 f.body) p.funcs;
  scan 0 p.main;
  if !candidates = 0 then None
  else begin
    let target = Prng.int rng !candidates in
    let seen = ref (-1) in
    let fresh = ref (-1) in
    let applied = ref false in
    let rec rewrite owner depth body =
      let arr = Array.of_list body in
      let n = Array.length arr in
      let hit = ref None in
      for start = 0 to n - 1 do
        for len = 1 to min 3 (n - start) do
          let slice = Array.to_list (Array.sub arr start len) in
          let after = Array.to_list (Array.sub arr (start + len) (n - start - len)) in
          let defs = List.fold_left defs_rec [] slice in
          let used_after =
            List.exists
              (fun i -> List.exists (fun (v, _) -> List.mem v defs) (uses_rec [] i))
              after
          in
          if
            (not used_after)
            && depth + 1 + body_depth slice <= max_nesting
            && not (List.exists has_call slice)
          then begin
            incr seen;
            if !seen = target then hit := Some (start, len)
          end
        done
      done;
      match !hit with
      | Some (start, len) ->
        applied := true;
        if !fresh < 0 then fresh := owner ();
        let c = !fresh in
        incr fresh;
        let before = Array.to_list (Array.sub arr 0 start) in
        let slice = Array.to_list (Array.sub arr start len) in
        let after = Array.to_list (Array.sub arr (start + len) (n - start - len)) in
        before @ [ Loop (c, 2 + Prng.int rng 14, slice) ] @ after
      | None ->
        List.map
          (function
            | If (c, a, b) -> If (c, rewrite owner (depth + 1) a, rewrite owner (depth + 1) b)
            | Loop (c, k, b) -> Loop (c, k, rewrite owner (depth + 1) b)
            | Loop_n (c, nn, b) -> Loop_n (c, nn, rewrite owner (depth + 1) b)
            | i -> i)
          body
    in
    let funcs =
      List.mapi
        (fun i (f : func) ->
          let owner () = fresh_base p { fn = Some i; callable = i } in
          { f with body = rewrite owner 0 f.body })
        p.funcs
    in
    let main =
      rewrite (fun () -> fresh_base p { fn = None; callable = List.length p.funcs }) 0 p.main
    in
    if !applied then guard { p with funcs; main } else None
  end

(* ------------------------------------------------------------------ *)
(* Dispatch                                                           *)
(* ------------------------------------------------------------------ *)

let mutate_k rng kind ~donor p =
  match kind with
  | Splice -> splice rng ~donor p
  | Combine -> combine rng ~donor p
  | Codegen -> codegen rng p
  | Retarget -> retarget rng p
  | Perturb -> perturb rng p
  | Wrap_loop -> wrap_loop rng p

let weighted rng =
  (* splice/codegen/perturb carry most of the search; combine and
     wrap_loop reshape programs more rarely *)
  match Prng.int rng 12 with
  | 0 | 1 | 2 -> Splice
  | 3 -> Combine
  | 4 | 5 | 6 -> Codegen
  | 7 | 8 -> Retarget
  | 9 | 10 -> Perturb
  | _ -> Wrap_loop

let mutate_info rng ~donor p =
  let rec try_kinds tried =
    if List.length tried >= List.length kinds then None
    else
      let k = weighted rng in
      if List.mem k tried then try_kinds tried
      else
        match mutate_k rng k ~donor p with
        | Some p' -> Some (p', k)
        | None -> try_kinds (k :: tried)
  in
  try_kinds []

let mutate rng ~donor p = Option.map fst (mutate_info rng ~donor p)
