(** Typed mutators over {!Il} programs.

    Every mutator is scope- and type-aware: it only builds programs that
    satisfy {!Il.typecheck} (a final typecheck guards the construction,
    so a [Some] result is always valid — the validity-by-construction
    promise the campaign measures as mutation yield). All randomness
    comes from the supplied {!Jitbull_util.Prng} handle, so mutation
    chains are deterministic under a fixed seed. *)

type kind =
  | Splice  (** copy a call-free slice from the donor, remapping its free
                variables onto type-compatible in-scope variables (or
                synthesized constants) at the insertion point *)
  | Combine  (** import a call-free donor function wholesale and call it
                 from main *)
  | Codegen  (** generate a fresh typed snippet from the environment at a
                 random program point *)
  | Retarget  (** rewire one instruction operand to another in-scope
                  variable of the same type *)
  | Perturb  (** nudge a constant, loop bound, set-length value or
                 operator *)
  | Wrap_loop  (** wrap a def-locally-closed slice in a counted loop to
                   raise its JIT heat *)

val kinds : kind list
val kind_name : kind -> string

(** [mutate_k rng k ~donor p] applies one mutation of kind [k]; [None]
    when the kind has no candidate site in [p] (e.g. [Combine] when the
    function table is full). *)
val mutate_k : Jitbull_util.Prng.t -> kind -> donor:Il.prog -> Il.prog -> Il.prog option

(** [mutate rng ~donor p] picks a kind at random (retrying across kinds
    until one applies); [None] only if no mutator applies at all. *)
val mutate : Jitbull_util.Prng.t -> donor:Il.prog -> Il.prog -> Il.prog option

(** Like {!mutate} but also reports which kind produced the mutant. *)
val mutate_info :
  Jitbull_util.Prng.t -> donor:Il.prog -> Il.prog -> (Il.prog * kind) option
