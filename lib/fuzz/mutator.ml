module Ast = Jitbull_frontend.Ast
module Parser = Jitbull_frontend.Parser
module Printer = Jitbull_frontend.Printer
module Prng = Jitbull_util.Prng

type kind =
  | Splice
  | Dup_stmt
  | Drop_stmt
  | Perturb_number
  | Resize_around_access
  | Hot_loop

let kinds = [ Splice; Dup_stmt; Drop_stmt; Perturb_number; Resize_around_access; Hot_loop ]

let kind_name = function
  | Splice -> "splice"
  | Dup_stmt -> "dup-stmt"
  | Drop_stmt -> "drop-stmt"
  | Perturb_number -> "perturb-number"
  | Resize_around_access -> "resize-around-access"
  | Hot_loop -> "hot-loop"

(* Bodies are addressed 0 = main, k+1 = k-th top-level function; mutations
   insert/remove/replace at the top level of one body (the generators put
   the interesting statements there). *)

let n_bodies (p : Ast.program) = 1 + List.length p.Ast.functions

let nth_body (p : Ast.program) k =
  if k = 0 then p.Ast.main else (List.nth p.Ast.functions (k - 1)).Ast.body

let set_body (p : Ast.program) k body =
  if k = 0 then { p with Ast.main = body }
  else
    {
      p with
      Ast.functions =
        List.mapi
          (fun i fn -> if i = k - 1 then { fn with Ast.body } else fn)
          p.Ast.functions;
    }

let insert_at lst i x =
  let rec go i = function
    | rest when i = 0 -> x :: rest
    | [] -> [ x ]
    | y :: rest -> y :: go (i - 1) rest
  in
  go i lst

let remove_at lst i = List.filteri (fun j _ -> j <> i) lst

let replace_at lst i x = List.mapi (fun j y -> if j = i then x else y) lst

let fold_program_exprs f acc (p : Ast.program) =
  let acc =
    List.fold_left
      (fun acc (fn : Ast.func) -> List.fold_left (Ast.fold_stmt_exprs f) acc fn.Ast.body)
      acc p.Ast.functions
  in
  List.fold_left (Ast.fold_stmt_exprs f) acc p.Ast.main

(* pick a random body, optionally requiring it non-empty; None when every
   candidate is empty *)
let pick_body rng p ~nonempty =
  let candidates =
    List.init (n_bodies p) (fun k -> k)
    |> List.filter (fun k -> (not nonempty) || nth_body p k <> [])
  in
  match candidates with [] -> None | ks -> Some (Prng.choose rng ks)

let all_stmts p =
  List.concat_map (fun (fn : Ast.func) -> fn.Ast.body) p.Ast.functions @ p.Ast.main

let splice rng p =
  match all_stmts p with
  | [] -> p
  | donors -> (
    let stmt = Prng.choose rng donors in
    match pick_body rng p ~nonempty:false with
    | None -> p
    | Some k ->
      let body = nth_body p k in
      set_body p k (insert_at body (Prng.int rng (List.length body + 1)) stmt))

let dup_stmt rng p =
  match pick_body rng p ~nonempty:true with
  | None -> p
  | Some k ->
    let body = nth_body p k in
    let i = Prng.int rng (List.length body) in
    set_body p k (insert_at body i (List.nth body i))

let drop_stmt rng p =
  match pick_body rng p ~nonempty:true with
  | None -> p
  | Some k ->
    let body = nth_body p k in
    set_body p k (remove_at body (Prng.int rng (List.length body)))

(* Number-literal perturbation. Literals inside loop headers (condition
   and update) only get strictly-growing nudges: turning a bound into
   2^30 would make the mutant run for minutes on the reference
   interpreter, and turning the [1] of [k = k + 1] into [0] would make it
   run forever (the oracle has no fuel limit). Everywhere else — array
   indices especially — large constants are exactly the OOB shapes we
   want. *)
let header_perturbs n = [ n +. 1.; n *. 2. ]
let wild_perturbs n =
  [ n +. 1.; n -. 1.; n *. 2.; 0.; 1.; 1073741824.; n +. 1000000. ]

let perturb_number rng p =
  let total =
    fold_program_exprs
      (fun acc e -> match e with Ast.Number _ -> acc + 1 | _ -> acc)
      0 p
  in
  if total = 0 then p
  else begin
    let target = Prng.int rng total in
    let counter = ref (-1) in
    (* mirror of [Ast.map_expr]/[Ast.map_stmt] carrying an "inside a loop
       condition" flag; traversal order must only be self-consistent
       (counter vs [fold_program_exprs] totals both count every Number) *)
    let perturb in_cond n =
      incr counter;
      if !counter = target then
        Prng.choose rng (if in_cond then header_perturbs n else wild_perturbs n)
      else n
    in
    let rec pexpr in_cond (e : Ast.expr) : Ast.expr =
      match e with
      | Ast.Number n -> Ast.Number (perturb in_cond n)
      | Ast.String _ | Ast.Bool _ | Ast.Null | Ast.Undefined | Ast.Ident _ -> e
      | Ast.Array_lit es -> Ast.Array_lit (List.map (pexpr in_cond) es)
      | Ast.Object_lit fields ->
        Ast.Object_lit (List.map (fun (k, v) -> (k, pexpr in_cond v)) fields)
      | Ast.Unary (op, e) -> Ast.Unary (op, pexpr in_cond e)
      | Ast.Binary (op, a, b) -> Ast.Binary (op, pexpr in_cond a, pexpr in_cond b)
      | Ast.Logical (op, a, b) -> Ast.Logical (op, pexpr in_cond a, pexpr in_cond b)
      | Ast.Conditional (c, t, e) ->
        Ast.Conditional (pexpr in_cond c, pexpr in_cond t, pexpr in_cond e)
      | Ast.Assign (lv, e) -> Ast.Assign (plvalue in_cond lv, pexpr in_cond e)
      | Ast.Call (callee, args) ->
        Ast.Call (pexpr in_cond callee, List.map (pexpr in_cond) args)
      | Ast.Member (o, m) -> Ast.Member (pexpr in_cond o, m)
      | Ast.Index (o, i) -> Ast.Index (pexpr in_cond o, pexpr in_cond i)
      | Ast.Func_expr _ -> e
    and plvalue in_cond = function
      | Ast.Lvar x -> Ast.Lvar x
      | Ast.Lindex (o, i) -> Ast.Lindex (pexpr in_cond o, pexpr in_cond i)
      | Ast.Lmember (o, m) -> Ast.Lmember (pexpr in_cond o, m)
    in
    let rec pstmt (s : Ast.stmt) : Ast.stmt =
      match s with
      | Ast.Var (x, e) -> Ast.Var (x, Option.map (pexpr false) e)
      | Ast.Expr_stmt e -> Ast.Expr_stmt (pexpr false e)
      | Ast.If (c, t, e) -> Ast.If (pexpr false c, List.map pstmt t, List.map pstmt e)
      | Ast.While (c, body) -> Ast.While (pexpr true c, List.map pstmt body)
      | Ast.For (init, cond, update, body) ->
        Ast.For
          ( Option.map pstmt init,
            Option.map (pexpr true) cond,
            Option.map (pexpr true) update,
            List.map pstmt body )
      | Ast.Return e -> Ast.Return (Option.map (pexpr false) e)
      | Ast.Break -> Ast.Break
      | Ast.Continue -> Ast.Continue
      | Ast.Block body -> Ast.Block (List.map pstmt body)
    in
    {
      Ast.functions =
        List.map
          (fun (fn : Ast.func) -> { fn with Ast.body = List.map pstmt fn.Ast.body })
          p.Ast.functions;
      main = List.map pstmt p.Ast.main;
    }
  end

(* Names of arrays that are indexed anywhere ([a[i]] reads or writes). *)
let indexed_arrays p =
  fold_program_exprs
    (fun acc e ->
      match e with
      | Ast.Index (Ast.Ident a, _) -> a :: acc
      | Ast.Assign (Ast.Lindex (Ast.Ident a, _), _) -> a :: acc
      | _ -> acc)
    [] p
  |> List.sort_uniq String.compare

let body_mentions name body =
  List.exists (fun s -> List.mem name (Ast.stmt_idents s)) body

let resize_around_access rng p =
  match indexed_arrays p with
  | [] -> p
  | arrays -> (
    let a = Prng.choose rng arrays in
    let candidates =
      List.init (n_bodies p) (fun k -> k)
      |> List.filter (fun k -> body_mentions a (nth_body p k))
    in
    match candidates with
    | [] -> p
    | ks ->
      let k = Prng.choose rng ks in
      let body = nth_body p k in
      let resize =
        Ast.Expr_stmt
          (Ast.Assign
             (Ast.Lmember (Ast.Ident a, "length"), Ast.Number (float_of_int (Prng.int rng 4))))
      in
      set_body p k (insert_at body (Prng.int rng (List.length body + 1)) resize))

let hot_loop rng p =
  match pick_body rng p ~nonempty:true with
  | None -> p
  | Some k ->
    let body = nth_body p k in
    let i = Prng.int rng (List.length body) in
    let v = Printf.sprintf "mz%d" (Prng.int rng 1000) in
    let bound = float_of_int (8 + Prng.int rng 57) in
    let wrapped =
      Ast.For
        ( Some (Ast.Var (v, Some (Ast.Number 0.))),
          Some (Ast.Binary (Ast.Lt, Ast.Ident v, Ast.Number bound)),
          Some (Ast.Assign (Ast.Lvar v, Ast.Binary (Ast.Add, Ast.Ident v, Ast.Number 1.))),
          [ List.nth body i ] )
    in
    set_body p k (replace_at body i wrapped)

let mutate_program rng kind p =
  match kind with
  | Splice -> splice rng p
  | Dup_stmt -> dup_stmt rng p
  | Drop_stmt -> drop_stmt rng p
  | Perturb_number -> perturb_number rng p
  | Resize_around_access -> resize_around_access rng p
  | Hot_loop -> hot_loop rng p

let mutate ?rounds rng source =
  match Parser.parse source with
  | exception _ -> source
  | p ->
    let n = match rounds with Some r -> r | None -> 1 + Prng.int rng 3 in
    let rec go p i =
      if i = 0 then p else go (mutate_program rng (Prng.choose rng kinds) p) (i - 1)
    in
    Printer.program_to_string (go p n)
