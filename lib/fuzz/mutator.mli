(** AST-level mutation engine for the coverage-guided fuzzer.

    Mutations parse the input, rewrite the AST and re-print it, so every
    mutant is syntactically valid by construction (the printer round-trip
    property is tested in the frontend suite). Mutants need {e not}
    preserve semantics — the differential oracle decides what an outcome
    means — but they are biased toward the shapes that matter to a JIT:
    duplicating/splicing statements (new optimizer input), perturbing
    numeric constants and bounds (guard and bounds-check pressure),
    injecting [a.length = k] near array accesses (the shrink-between-
    accesses CVE shape), and wrapping statements in warm loops (tier-up
    pressure). *)

type kind =
  | Splice  (** copy a statement from anywhere into a random body *)
  | Dup_stmt
  | Drop_stmt
  | Perturb_number  (** ±1, ×2, 0/1, 2^30, +10^6 on one numeric literal *)
  | Resize_around_access
      (** insert [a.length = k] into a body that indexes array [a] *)
  | Hot_loop  (** wrap one statement in a bounded warm-up loop *)

val kinds : kind list
val kind_name : kind -> string

(** [mutate_program rng kind p] — apply one mutation; returns [p]
    unchanged when the mutation has no applicable site (e.g. no array
    accesses for [Resize_around_access]). *)
val mutate_program : Jitbull_util.Prng.t -> kind -> Jitbull_frontend.Ast.program -> Jitbull_frontend.Ast.program

(** [mutate ?rounds rng source] — parse, apply [rounds] (default 1–3,
    drawn from [rng]) random mutations, print. Returns [source] unchanged
    if it does not parse. Deterministic in the [rng] state. *)
val mutate : ?rounds:int -> Jitbull_util.Prng.t -> string -> string
