module Engine = Jitbull_jit.Engine
module Compile_queue = Jitbull_jit.Compile_queue
module Interp = Jitbull_interp.Interp
module Vm = Jitbull_bytecode.Vm
module Compiler = Jitbull_bytecode.Compiler
module Parser = Jitbull_frontend.Parser
module Errors = Jitbull_runtime.Errors
module Pipeline = Jitbull_passes.Pipeline
module Dna = Jitbull_core.Dna
module Obs = Jitbull_obs.Obs
module Metrics = Jitbull_obs.Metrics

type verdict =
  | Agree of string
  | Mismatch of {
      interp : string;
      vm : string;
      jit : string;
    }
  | Crash of string
  | Shellcode of string
  | Pwned of string
  | Runtime_error of string

let is_exploit_signal = function
  | Crash _ | Shellcode _ | Pwned _ | Mismatch _ -> true
  | Agree _ | Runtime_error _ -> false

let verdict_summary = function
  | Agree _ -> "agree"
  | Mismatch _ -> "MISMATCH"
  | Crash m -> "CRASH: " ^ m
  | Shellcode m -> "SHELLCODE: " ^ m
  | Pwned m -> "PWNED: " ^ m
  | Runtime_error m -> "runtime error: " ^ m

let verdict_kind = function
  | Agree _ -> "agree"
  | Mismatch _ -> "mismatch"
  | Crash _ -> "crash"
  | Shellcode _ -> "shellcode"
  | Pwned _ -> "pwned"
  | Runtime_error _ -> "runtime_error"

let same_kind a b = String.equal (verdict_kind a) (verdict_kind b)

let has_pwned_line output =
  String.split_on_char '\n' output
  |> List.exists (fun l -> String.length l >= 5 && String.sub l 0 5 = "PWNED")

let default_config =
  { Engine.default_config with Engine.baseline_threshold = 2; ion_threshold = 4 }

let classify ~reference ~vm_out ~jit_out =
  if has_pwned_line jit_out && not (has_pwned_line reference) then Pwned "exploit marker"
  else if String.equal reference vm_out && String.equal reference jit_out then
    Agree reference
  else Mismatch { interp = reference; vm = vm_out; jit = jit_out }

(* Allocation-heavy fuzzer mutants can exhaust the model heap on any
   tier; that is a resource limit of the input, not an engine divergence,
   so it classifies as a runtime error rather than killing the campaign. *)
let heap_exhausted = Runtime_error "heap exhausted"

(* Reference-tier step budget. AST-level mutants can accidentally build
   unbounded programs (e.g. splice a call into the callee's own body);
   since the reference tier always runs first, bounding it keeps such
   inputs classified as runtime errors instead of hanging the campaign.
   Generous: every legitimate generated/typed-IL program finishes in a
   small fraction of this. *)
let max_steps = 10_000_000

let run ?(config = default_config) source =
  match Interp.run_source ~max_steps source with
  | exception Errors.Type_error m -> Runtime_error m
  | exception Errors.Heap_exhausted -> heap_exhausted
  | exception Interp.Timeout -> Runtime_error "step limit"
  | { Interp.output = reference; _ } -> (
    match Vm.run_program (Compiler.compile (Parser.parse source)) with
    | exception Errors.Heap_exhausted -> heap_exhausted
    | exception Errors.Type_error m -> Runtime_error ("vm tier: " ^ m)
    | vm_out -> (
      match Engine.run_source config source with
      | exception Errors.Crash m -> Crash m
      | exception Errors.Shellcode_executed m -> Shellcode m
      | exception Errors.Heap_exhausted -> heap_exhausted
      | exception Errors.Type_error m -> Runtime_error ("jit tier: " ^ m)
      (* a vulnerable pass's wild write can corrupt heap metadata badly
         enough that the model itself indexes out of bounds — the moral
         equivalent of a segfault, and only reachable on this tier *)
      | exception Invalid_argument m -> Crash ("memory corruption: " ^ m)
      | jit_out, _ -> classify ~reference ~vm_out ~jit_out))

(* ---- instrumented runs: the coverage-guided fuzzer's input ---- *)

type instrumented = {
  i_verdict : verdict;
  i_bytecode : Jitbull_bytecode.Op.program option;
  i_dnas : Dna.t list;
  i_events : string list;
}

(* Engine-event flags derived from stats + the Obs counters the engine
   and pipeline publish (pass.<name>.changed, engine.verdict.allow/
   disable/forbid). *)
let event_flags (stats : Engine.stats option) view =
  let flags = ref [] in
  let flag name = flags := name :: !flags in
  (match stats with
  | None -> ()
  | Some s ->
    if s.Engine.bailouts > 0 then flag "bailout";
    if s.Engine.deopts > 0 then flag "deopt";
    if s.Engine.nr_disjit > 0 then flag "disjit";
    if s.Engine.nr_nojit > 0 then flag "nojit";
    if s.Engine.nr_jit > 0 then flag "ion");
  let counter_flag counter name =
    match Metrics.find_counter view counter with
    | Some n when n > 0 -> flag name
    | _ -> ()
  in
  counter_flag "engine.verdict.allow" "policy:allow";
  counter_flag "engine.verdict.disable" "policy:disable";
  counter_flag "engine.verdict.forbid" "policy:forbid";
  List.iter
    (fun pass ->
      counter_flag ("pass." ^ pass ^ ".changed") ("pass-changed:" ^ pass))
    Pipeline.pass_names;
  !flags

let run_instrumented ?(config = default_config) source =
  match Parser.parse source with
  | exception _ ->
    { i_verdict = Runtime_error "parse error"; i_bytecode = None; i_dnas = []; i_events = [] }
  | prog -> (
    let bc = Compiler.compile prog in
    match Interp.run_source ~max_steps source with
    | exception Errors.Type_error m ->
      { i_verdict = Runtime_error m; i_bytecode = Some bc; i_dnas = []; i_events = [] }
    | exception Errors.Heap_exhausted ->
      { i_verdict = heap_exhausted; i_bytecode = Some bc; i_dnas = []; i_events = [] }
    | exception Interp.Timeout ->
      { i_verdict = Runtime_error "step limit"; i_bytecode = Some bc; i_dnas = []; i_events = [] }
    | { Interp.output = reference; _ } -> (
      match Vm.run_program (Compiler.compile (Parser.parse source)) with
      | exception Errors.Heap_exhausted ->
        { i_verdict = heap_exhausted; i_bytecode = Some bc; i_dnas = []; i_events = [] }
      | exception Errors.Type_error m ->
        { i_verdict = Runtime_error ("vm tier: " ^ m); i_bytecode = Some bc; i_dnas = []; i_events = [] }
      | vm_out ->
      let obs = Obs.create ~capacity:16 ~audit_capacity:8 () in
      let dnas = ref [] in
      let dnas_mu = Mutex.create () in
      let inner = config.Engine.analyzer in
      (* Wrap the configured analyzer (or a pass-through Allow) so every
         traced Ion compile also contributes its DNA to the coverage
         signal, without changing any engine decision. *)
      let analyzer ~ctx ~func_index ~name ~trace =
        let dna = Dna.extract trace in
        if Dna.nonempty_passes dna <> [] then begin
          Mutex.lock dnas_mu;
          dnas := dna :: !dnas;
          Mutex.unlock dnas_mu
        end;
        match inner with
        | Some analyze -> analyze ~ctx ~func_index ~name ~trace
        | None -> Engine.Allow
      in
      let config' =
        { config with Engine.analyzer = Some analyzer; obs = Some obs; policy_cache = None }
      in
      let verdict, stats =
        match Engine.run_source config' source with
        | exception Errors.Crash m -> (Crash m, None)
        | exception Errors.Shellcode_executed m -> (Shellcode m, None)
        | exception Errors.Heap_exhausted -> (heap_exhausted, None)
        | exception Errors.Type_error m -> (Runtime_error ("jit tier: " ^ m), None)
        | exception Invalid_argument m -> (Crash ("memory corruption: " ^ m), None)
        | jit_out, engine ->
          (classify ~reference ~vm_out ~jit_out, Some (Engine.stats engine))
      in
      let events = event_flags stats (Obs.view (Some obs)) in
      { i_verdict = verdict; i_bytecode = Some bc; i_dnas = List.rev !dnas; i_events = events }))

(* ---- metamorphic invariants ---- *)

type violation = {
  mv_invariant : string;
  mv_detail : string;
}

let trunc s = if String.length s <= 160 then s else String.sub s 0 157 ^ "..."

let jit_result config source =
  match Engine.run_source config source with
  | exception Errors.Crash m -> Error ("CRASH: " ^ m)
  | exception Errors.Shellcode_executed m -> Error ("SHELLCODE: " ^ m)
  | out, _ -> Ok out

let check_metamorphic ?(config = default_config) ?subsets ?(jobs = 2) ?(alt_configs = [])
    source =
  match Interp.run_source source with
  | exception Errors.Type_error _ -> []
  | { Interp.output = reference; _ } ->
    let violations = ref [] in
    let add inv detail =
      violations := { mv_invariant = inv; mv_detail = trunc detail } :: !violations
    in
    let expect inv = function
      | Error m -> add inv m
      | Ok out when not (String.equal out reference) ->
        add inv (Printf.sprintf "got %S, want %S" (trunc out) (trunc reference))
      | Ok _ -> ()
    in
    let base = { config with Engine.policy_cache = None } in
    let vm_out =
      try Ok (Vm.run_program (Compiler.compile (Parser.parse source)))
      with e -> Error (Printexc.to_string e)
    in
    expect "interp==vm" vm_out;
    expect "interp==jit" (jit_result base source);
    (* tier-agreement: with the native backend live (the default), the
       leg above ran generated x86-64; re-run the same configuration on
       the LIR executor so all four tiers must agree (interp == VM ==
       native == executor). Skipped when the backend cannot run here —
       the two legs would be identical. *)
    if Jitbull_native.Native.enabled () && base.Engine.native then
      expect "interp==jit[lir-executor]"
        (jit_result { base with Engine.native = false } source);
    let subsets =
      match subsets with
      | Some s -> s
      | None ->
        List.filter Pipeline.can_disable Pipeline.pass_names |> List.map (fun p -> [ p ])
    in
    List.iter
      (fun subset ->
        let analyzer ~ctx:_ ~func_index:_ ~name:_ ~trace:_ = Engine.Disable_passes subset in
        let c = { base with Engine.analyzer = Some analyzer } in
        expect
          (Printf.sprintf "disable[%s]==full" (String.concat "," subset))
          (jit_result c source))
      subsets;
    if jobs > 0 then begin
      let pool = Compile_queue.create ~jobs () in
      Fun.protect
        ~finally:(fun () -> Compile_queue.shutdown pool)
        (fun () ->
          let c = { base with Engine.compile_pool = Some pool } in
          expect (Printf.sprintf "sync==async[jobs=%d]" jobs) (jit_result c source))
    end;
    List.iter (fun (name, c) -> expect name (jit_result c source)) alt_configs;
    List.rev !violations

(* ---- analyzer equivalence (remote==local) ---- *)

let decision_repr = function
  | Engine.Allow -> "allow"
  | Engine.Disable_passes ps -> "disable[" ^ String.concat "," ps ^ "]"
  | Engine.Forbid_jit -> "forbid"

let check_analyzer_equiv ?(config = default_config) ~name_a ~analyzer_a ~name_b
    ~analyzer_b source =
  match Interp.run_source source with
  | exception Errors.Type_error _ -> []
  | { Interp.output = reference; _ } ->
    let violations = ref [] in
    let add inv detail =
      violations := { mv_invariant = inv; mv_detail = trunc detail } :: !violations
    in
    let inv = Printf.sprintf "analyzer[%s==%s]" name_a name_b in
    (* record every (function, decision) the engine asks for, in compile
       order, so the check is decision-level — two analyzers that happen
       to produce the same output through different verdicts still fail *)
    let record analyzer log ~ctx ~func_index ~name ~trace =
      let d = analyzer ~ctx ~func_index ~name ~trace in
      log := (name, d) :: !log;
      d
    in
    let run_with analyzer log =
      let c =
        {
          config with
          Engine.analyzer = Some (record analyzer log);
          policy_cache = None;
        }
      in
      jit_result c source
    in
    let la = ref [] and lb = ref [] in
    let ra = run_with analyzer_a la and rb = run_with analyzer_b lb in
    (match ra with
    | Error m -> add inv (name_a ^ ": " ^ m)
    | Ok out when not (String.equal out reference) ->
      add inv (Printf.sprintf "%s output %S, want %S" name_a (trunc out) (trunc reference))
    | Ok _ -> ());
    (match rb with
    | Error m -> add inv (name_b ^ ": " ^ m)
    | Ok out when not (String.equal out reference) ->
      add inv (Printf.sprintf "%s output %S, want %S" name_b (trunc out) (trunc reference))
    | Ok _ -> ());
    let da = List.rev !la and db = List.rev !lb in
    if List.length da <> List.length db then
      add inv
        (Printf.sprintf "%s made %d decisions, %s made %d" name_a
           (List.length da) name_b (List.length db))
    else
      List.iter2
        (fun (fa, a) (fb, b) ->
          if not (String.equal fa fb) || a <> b then
            add inv
              (Printf.sprintf "%s: %s=%s but %s=%s" fa name_a (decision_repr a)
                 name_b (decision_repr b)))
        da db;
    List.rev !violations
