(** Differential oracle: run one program on the reference interpreter, the
    bytecode VM and the tiered JIT, and classify the outcome. *)

type verdict =
  | Agree of string  (** all tiers printed this *)
  | Mismatch of {
      interp : string;
      vm : string;
      jit : string;
    }  (** a miscompilation signal *)
  | Crash of string  (** JITed code accessed memory outside the heap *)
  | Shellcode of string  (** the simulated JIT code pointer was hijacked *)
  | Pwned of string  (** the program itself reported corruption (PWNED line) *)
  | Runtime_error of string  (** a JS-level error on the reference tier too *)

val is_exploit_signal : verdict -> bool
(** [Crash], [Shellcode], [Pwned] or [Mismatch] — the outcomes a fuzzing
    campaign reports (and, per the paper's §IV-A, the inputs whose DNA is
    worth installing). *)

val verdict_summary : verdict -> string

(** Stable lowercase class name ([agree]/[mismatch]/[crash]/[shellcode]/
    [pwned]/[runtime_error]); the shrinker preserves this class. *)
val verdict_kind : verdict -> string

(** Same {!verdict_kind}, payloads ignored. *)
val same_kind : verdict -> verdict -> bool

(** The config every oracle entry point defaults to: fast tier-up
    thresholds (baseline 2, Ion 4) on a patched engine with no
    analyzer. *)
val default_config : Jitbull_jit.Engine.config

(** [run ?config source] — [config] defaults to {!default_config}. The
    interpreter and VM tiers always run patched; only the JIT tier uses
    [config]. *)
val run : ?config:Jitbull_jit.Engine.config -> string -> verdict

(** {2 Instrumented runs}

    {!run_instrumented} is {!run} plus the cheap artifacts the
    coverage-guided fuzzer maps into feature space (see {!Coverage}):
    the compiled bytecode, every DNA the traced Ion compiles produced
    (collected by wrapping the configured analyzer; decisions are
    unchanged), and engine-event flags read from stats and the
    [Obs]-pattern counters ([engine.verdict.*], [pass.<name>.changed]).
    A fresh private [Obs.t] is installed per run; the policy cache is
    bypassed so every compile is analyzed (and traced) afresh. *)

type instrumented = {
  i_verdict : verdict;
  i_bytecode : Jitbull_bytecode.Op.program option;
      (** [None] only when the source does not parse *)
  i_dnas : Jitbull_core.Dna.t list;  (** one per traced Ion compile *)
  i_events : string list;
      (** e.g. ["bailout"; "policy:forbid"; "pass-changed:gvn"] *)
}

val run_instrumented : ?config:Jitbull_jit.Engine.config -> string -> instrumented

(** {2 Metamorphic invariants}

    Configuration changes that must not change observable behavior
    (after "Understanding and Finding JIT Compiler Performance Bugs":
    when there is no ground-truth spec, vary the configuration and
    require agreement). *)

type violation = {
  mv_invariant : string;
      (** e.g. ["disable[gvn]==full"], ["sync==async[jobs=2]"] *)
  mv_detail : string;
}

(** [check_metamorphic ?config ?subsets ?jobs ?alt_configs source] checks,
    against the reference interpreter's output:
    - interpreter == VM == JIT under [config];
    - tier agreement: when the native x86-64 backend is enabled (the
      default), the JIT leg above ran machine code; the same config with
      [native = false] re-runs on the LIR executor and must also agree —
      a four-way interp == VM == native == executor oracle. Auto-skipped
      where the backend is unavailable;
    - for each pass subset in [subsets] (default: every optional pass as
      a singleton), an engine forced to disable that subset agrees;
    - sync == async: a compile pool with [jobs] helpers (default 2;
      [0] skips) agrees;
    - each named engine in [alt_configs] agrees — callers pass
      indexed-vs-naive comparator configs and a DB-growth chain here.

    Returns the violated invariants (empty = all hold). A source whose
    reference tier raises a JS-level error is vacuous (returns []). The
    policy cache is bypassed throughout. *)
val check_metamorphic :
  ?config:Jitbull_jit.Engine.config ->
  ?subsets:string list list ->
  ?jobs:int ->
  ?alt_configs:(string * Jitbull_jit.Engine.config) list ->
  string ->
  violation list

(** [check_analyzer_equiv ~name_a ~analyzer_a ~name_b ~analyzer_b source]
    — decision-level equivalence of two go/no-go analyzers: runs [source]
    under each (policy cache bypassed), requires both outputs to match
    the reference interpreter AND the full (function, decision) sequences
    to be identical, so two analyzers that reach the same output through
    different verdicts still violate. This is the remote==local oracle:
    pass the in-process {!Jitbull_core.Jitbull.analyzer} and a verdict-
    service client's analyzer. Vacuous (returns []) when the reference
    tier raises a JS-level error. *)
val check_analyzer_equiv :
  ?config:Jitbull_jit.Engine.config ->
  name_a:string ->
  analyzer_a:Jitbull_jit.Engine.analyzer ->
  name_b:string ->
  analyzer_b:Jitbull_jit.Engine.analyzer ->
  string ->
  violation list
