module Ast = Jitbull_frontend.Ast
module Parser = Jitbull_frontend.Parser
module Printer = Jitbull_frontend.Printer

let remove_at lst i = List.filteri (fun j _ -> j <> i) lst
let replace_at lst i x = List.mapi (fun j y -> if j = i then x else y) lst

(* Candidate bodies with one contiguous chunk removed (halves, quarters,
   singles), plus structural variants of individual statements. [While]
   bodies are left alone apart from unwrapping the loop itself: removing
   the statement that makes a [while] progress could produce a
   non-terminating candidate, and the oracle has no fuel limit. *)
let rec stmt_list_variants ~depth (body : Ast.stmt list) : Ast.stmt list list =
  let n = List.length body in
  let removals =
    if n = 0 then []
    else
      let sizes = List.sort_uniq compare [ max 1 (n / 2); max 1 (n / 4); 1 ] in
      List.rev sizes
      |> List.concat_map (fun size ->
             if size > n then []
             else
               List.init
                 (n - size + 1)
                 (fun start ->
                   List.filteri (fun i _ -> i < start || i >= start + size) body))
  in
  let structural =
    if depth <= 0 then []
    else
      List.concat
        (List.mapi
           (fun i s -> List.map (replace_at body i) (stmt_variants ~depth s))
           body)
  in
  removals @ structural

and stmt_variants ~depth (s : Ast.stmt) : Ast.stmt list =
  match s with
  | Ast.If (c, t, e) ->
    [ Ast.Block t; Ast.Block e ]
    @ List.map (fun t' -> Ast.If (c, t', e)) (stmt_list_variants ~depth:(depth - 1) t)
    @ List.map (fun e' -> Ast.If (c, t, e')) (stmt_list_variants ~depth:(depth - 1) e)
  | Ast.For (init, cond, update, b) ->
    [ Ast.Block b ]
    @ List.map
        (fun b' -> Ast.For (init, cond, update, b'))
        (stmt_list_variants ~depth:(depth - 1) b)
  | Ast.While (_, b) -> [ Ast.Block b ]
  | Ast.Block b ->
    List.map (fun b' -> Ast.Block b') (stmt_list_variants ~depth:(depth - 1) b)
  | _ -> []

let fold_program_exprs f acc (p : Ast.program) =
  let acc =
    List.fold_left
      (fun acc (fn : Ast.func) -> List.fold_left (Ast.fold_stmt_exprs f) acc fn.Ast.body)
      acc p.Ast.functions
  in
  List.fold_left (Ast.fold_stmt_exprs f) acc p.Ast.main

let map_program_exprs f (p : Ast.program) =
  {
    Ast.functions =
      List.map
        (fun (fn : Ast.func) -> { fn with Ast.body = List.map (Ast.map_stmt f) fn.Ast.body })
        p.Ast.functions;
    main = List.map (Ast.map_stmt f) p.Ast.main;
  }

(* One candidate per (literal occurrence, smaller value). *)
let number_variants (p : Ast.program) =
  let total =
    fold_program_exprs (fun acc e -> match e with Ast.Number _ -> acc + 1 | _ -> acc) 0 p
  in
  List.init total (fun target ->
      [ 0.; 1.; 2. ]
      |> List.filter_map (fun repl ->
             let counter = ref (-1) in
             let changed = ref false in
             let p' =
               map_program_exprs
                 (fun e ->
                   match e with
                   | Ast.Number n ->
                     incr counter;
                     if !counter = target && Float.abs n > 2. then begin
                       changed := true;
                       Ast.Number repl
                     end
                     else e
                   | _ -> e)
                 p
             in
             if !changed then Some p' else None))
  |> List.concat

let program_variants (p : Ast.program) =
  let drop_funcs =
    List.mapi (fun i _ -> { p with Ast.functions = remove_at p.Ast.functions i }) p.Ast.functions
  in
  let main_vars =
    List.map (fun m -> { p with Ast.main = m }) (stmt_list_variants ~depth:3 p.Ast.main)
  in
  let func_vars =
    List.concat
      (List.mapi
         (fun i (fn : Ast.func) ->
           List.map
             (fun b ->
               { p with Ast.functions = replace_at p.Ast.functions i { fn with Ast.body = b } })
             (stmt_list_variants ~depth:3 fn.Ast.body))
         p.Ast.functions)
  in
  drop_funcs @ main_vars @ func_vars @ number_variants p

let shrink ?(max_checks = 400) ?seed ?errors ~keep source =
  match Parser.parse source with
  | exception _ -> source
  | p0 ->
    let rng = Option.map Jitbull_util.Prng.create seed in
    let order variants =
      match rng with
      | None -> variants
      | Some rng ->
        let arr = Array.of_list variants in
        Jitbull_util.Prng.shuffle rng arr;
        Array.to_list arr
    in
    let checks = ref 0 in
    let try_keep src =
      if !checks >= max_checks then false
      else begin
        incr checks;
        try keep src
        with _ ->
          (match errors with None -> () | Some r -> incr r);
          false
      end
    in
    let s0 = Printer.program_to_string p0 in
    if not (try_keep s0) then source
    else begin
      (* printing can be longer than the raw input (normalized layout);
         never return a "minimized" reproducer bigger than the original *)
      let clamp s = if String.length s < String.length source then s else source in
      let best = ref p0 in
      let best_src = ref s0 in
      let progress = ref true in
      while !progress && !checks < max_checks do
        progress := false;
        try
          List.iter
            (fun cand ->
              if !checks >= max_checks then raise Exit;
              let s = Printer.program_to_string cand in
              if String.length s < String.length !best_src && try_keep s then begin
                best := cand;
                best_src := s;
                progress := true;
                raise Exit
              end)
            (order (program_variants !best))
        with Exit -> ()
      done;
      clamp !best_src
    end

let shrink_signal ?config ?max_checks ?seed ?errors ~verdict source =
  shrink ?max_checks ?seed ?errors
    ~keep:(fun s -> Oracle.same_kind (Oracle.run ?config s) verdict)
    source
