(** Delta-debugging shrinker: minimize a program while a predicate holds.

    Works on the AST (candidates always re-parse): drops whole functions,
    removes statement chunks ddmin-style (halves, quarters, then
    singles — recursing into [if]/[for]/block bodies), simplifies
    compound statements ([if] → one branch, loop → its body once), and
    shrinks numeric literals. Greedy with restart: whenever a smaller
    candidate keeps the predicate it becomes the new best and the
    candidate generation starts over from it.

    The predicate evaluation budget ([max_checks]) bounds total work;
    each check typically runs the full differential oracle, so the
    default keeps shrinking under a few seconds. *)

(** [shrink ?max_checks ?seed ?errors ~keep source] — smallest found
    source (by printed length) with [keep] still true. [keep] must hold
    on [source]'s parse-and-reprint normalization, else [source] is
    returned unchanged.

    The shrinker is deterministic: for fixed inputs it always explores
    candidates in the same order and returns the same result. [seed]
    varies that order (a deterministic shuffle per greedy restart) —
    two seeds may find different local minima, but each seed is fully
    reproducible.

    An exception raised by [keep] counts as [false] (the candidate is
    not kept), but it is {e not} silent: each one increments [errors]
    when provided. A predicate that evaluates the differential oracle
    only raises when the infrastructure itself breaks, so callers (the
    [--minimize] CLI path) fail the run when the counter is nonzero
    instead of reporting a "successful" minimization. *)
val shrink :
  ?max_checks:int ->
  ?seed:int ->
  ?errors:int ref ->
  keep:(string -> bool) ->
  string ->
  string

(** [shrink_signal ?config ?max_checks ?seed ?errors ~verdict source] —
    specialize [keep] to "the oracle still classifies the program as
    {!Oracle.verdict_kind}[ verdict] under [config]": minimize a crash to
    a crash, a mismatch to a mismatch, etc. *)
val shrink_signal :
  ?config:Jitbull_jit.Engine.config ->
  ?max_checks:int ->
  ?seed:int ->
  ?errors:int ref ->
  verdict:Oracle.verdict ->
  string ->
  string
