(** Delta-debugging shrinker: minimize a program while a predicate holds.

    Works on the AST (candidates always re-parse): drops whole functions,
    removes statement chunks ddmin-style (halves, quarters, then
    singles — recursing into [if]/[for]/block bodies), simplifies
    compound statements ([if] → one branch, loop → its body once), and
    shrinks numeric literals. Greedy with restart: whenever a smaller
    candidate keeps the predicate it becomes the new best and the
    candidate generation starts over from it.

    The predicate evaluation budget ([max_checks]) bounds total work;
    each check typically runs the full differential oracle, so the
    default keeps shrinking under a few seconds. *)

(** [shrink ?max_checks ~keep source] — smallest found source (by printed
    length) with [keep] still true. [keep] must hold on [source]'s
    parse-and-reprint normalization, else [source] is returned unchanged;
    exceptions from [keep] count as [false]. *)
val shrink : ?max_checks:int -> keep:(string -> bool) -> string -> string

(** [shrink_signal ?config ?max_checks ~verdict source] — specialize
    [keep] to "the oracle still classifies the program as
    {!Oracle.verdict_kind}[ verdict] under [config]": minimize a crash to
    a crash, a mismatch to a mismatch, etc. *)
val shrink_signal :
  ?config:Jitbull_jit.Engine.config ->
  ?max_checks:int ->
  verdict:Oracle.verdict ->
  string ->
  string
