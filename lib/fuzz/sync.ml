module Engine = Jitbull_jit.Engine
module Http = Jitbull_obs.Http_export
module Jsonx = Jitbull_obs.Jsonx
module Fleet = Jitbull_obs.Fleet
module Obs = Jitbull_obs.Obs
module Metrics = Jitbull_obs.Metrics
module Audit = Jitbull_obs.Audit
module Prng = Jitbull_util.Prng
module VC = Jitbull_passes.Vuln_config

let json body = Http.respond ~content_type:"application/json" body

let json_error status msg =
  Http.respond ~status ~content_type:"application/json"
    (Jsonx.to_string (Jsonx.Assoc [ ("error", Jsonx.String msg) ]))

let digest s = Digest.to_hex (Digest.string s)

let entry_to_json (e : Corpus.entry) =
  Jsonx.Assoc
    [
      ("id", Jsonx.Int e.Corpus.id);
      ("gain", Jsonx.Int e.Corpus.gain);
      ("source", Jsonx.String e.Corpus.source);
      ("il", match e.Corpus.il with None -> Jsonx.Null | Some t -> Jsonx.String t);
    ]

let features_to_json fs = Jsonx.List (List.map (fun f -> Jsonx.Int f) fs)

let features_of_json j = List.map Jsonx.to_int (Jsonx.to_list_exn j)

(* Features an input contributes, recomputed deterministically from an
   instrumented replay — what both admission and distillation score. *)
let features_of_source ~config source =
  Coverage.features_of_run (Oracle.run_instrumented ~config source)

(* ------------------------------------------------------------------ *)
(* Master                                                             *)
(* ------------------------------------------------------------------ *)

module Master = struct
  type lease = {
    mutable l_worker : string;
    l_lo : int;
    l_hi : int;
    mutable l_issued : float;
  }

  type t = {
    server : Http.Server.t;
    mu : Mutex.t;
    coverage : Coverage.t;
    corpus : Corpus.t;
    known : (string, unit) Hashtbl.t;  (* source digests already admitted *)
    mutable next_seed : int;
    mutable leases : lease list;  (* outstanding, oldest first *)
    chunk : int;
    lease_timeout : float;
    fleet : Fleet.t;
    obs : Obs.t option;
    mutable syncs : int;
  }

  let locked t f =
    Mutex.lock t.mu;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

  (* ---- GET /fuzz/work: lease a seed range (work stealing) ---- *)

  let work_response t query =
    let worker = Option.value ~default:"anonymous" (List.assoc_opt "worker" query) in
    match Http.parse_count "n" query ~default:t.chunk with
    | Error msg -> Http.bad_request msg
    | Ok n ->
      let n = max 1 n in
      let lo, hi, stolen =
        locked t (fun () ->
            let now = Unix.gettimeofday () in
            match
              List.find_opt (fun l -> now -. l.l_issued > t.lease_timeout) t.leases
            with
            | Some l ->
              (* expired: some worker leased it and never reported done —
                 steal the range instead of leaving a seed hole *)
              l.l_worker <- worker;
              l.l_issued <- now;
              (l.l_lo, l.l_hi, true)
            | None ->
              let lo = t.next_seed in
              let hi = lo + n in
              t.next_seed <- hi;
              t.leases <-
                t.leases @ [ { l_worker = worker; l_lo = lo; l_hi = hi; l_issued = now } ];
              (lo, hi, false))
      in
      json
        (Jsonx.to_string
           (Jsonx.Assoc
              [ ("lo", Jsonx.Int lo); ("hi", Jsonx.Int hi); ("stolen", Jsonx.Bool stolen) ]))

  (* ---- POST /fuzz/done: release a lease ---- *)

  let done_response t body =
    match Jsonx.parse body with
    | exception Jsonx.Parse_error msg -> json_error 400 ("bad body: " ^ msg)
    | j ->
      let lo = Jsonx.to_int (Jsonx.member "lo" j) in
      let hi = Jsonx.to_int (Jsonx.member "hi" j) in
      locked t (fun () ->
          t.leases <- List.filter (fun l -> not (l.l_lo = lo && l.l_hi = hi)) t.leases);
      json {|{"ok":true}|}

  (* ---- POST /fuzz/coverage: two-way union merge ---- *)

  let coverage_response t body =
    match Jsonx.parse body with
    | exception Jsonx.Parse_error msg -> json_error 400 ("bad body: " ^ msg)
    | j ->
      let sent = features_of_json (Jsonx.member "features" j) in
      let fresh, missing, total =
        locked t (fun () ->
            let fresh = Coverage.add_features t.coverage sent in
            let have = Hashtbl.create (List.length sent) in
            List.iter (fun f -> Hashtbl.replace have f ()) sent;
            let missing =
              List.filter (fun f -> not (Hashtbl.mem have f)) (Coverage.features t.coverage)
            in
            t.syncs <- t.syncs + 1;
            (fresh, missing, Coverage.count t.coverage))
      in
      Obs.incr t.obs "fuzz.corpus_syncs";
      json
        (Jsonx.to_string
           (Jsonx.Assoc
              [
                ("new", Jsonx.Int fresh);
                ("total", Jsonx.Int total);
                ("missing", features_to_json missing);
              ]))

  (* ---- POST /fuzz/interesting: deduplicated input upload ---- *)

  let interesting_response t body =
    match Jsonx.parse body with
    | exception Jsonx.Parse_error msg -> json_error 400 ("bad body: " ^ msg)
    | j -> (
      match Jsonx.member "source" j with
      | Jsonx.String source when source <> "" ->
        let il = match Jsonx.member "il" j with Jsonx.String s -> Some s | _ -> None in
        let gain =
          match Jsonx.member "gain" j with Jsonx.Int g -> max 1 g | _ -> 1
        in
        let admitted, id =
          locked t (fun () ->
              let d = digest source in
              if Hashtbl.mem t.known d then (false, -1)
              else begin
                Hashtbl.replace t.known d ();
                let e = Corpus.add t.corpus ?il ~gain source in
                (true, e.Corpus.id)
              end)
        in
        if admitted then Obs.incr t.obs "fuzz.uploads_admitted";
        json
          (Jsonx.to_string
             (Jsonx.Assoc [ ("admitted", Jsonx.Bool admitted); ("id", Jsonx.Int id) ]))
      | _ -> json_error 400 "source: required")

  (* ---- GET /fuzz/corpus?since=N: corpus broadcast ---- *)

  let corpus_response t query =
    match Http.parse_count ~max_value:max_int "since" query ~default:0 with
    | Error msg -> Http.bad_request msg
    | Ok since ->
      let entries, next =
        locked t (fun () ->
            let es =
              List.filter (fun e -> e.Corpus.id >= since) (Corpus.entries t.corpus)
            in
            let next =
              List.fold_left (fun acc e -> max acc (e.Corpus.id + 1)) since es
            in
            (es, next))
      in
      json
        (Jsonx.to_string
           (Jsonx.Assoc
              [
                ("entries", Jsonx.List (List.map entry_to_json entries));
                ("next", Jsonx.Int next);
              ]))

  (* ---- GET /fuzz/stats ---- *)

  let stats_response t =
    let body =
      locked t (fun () ->
          Jsonx.to_string
            (Jsonx.Assoc
               [
                 ("coverage", Jsonx.Int (Coverage.count t.coverage));
                 ("corpus", Jsonx.Int (Corpus.length t.corpus));
                 ("next_seed", Jsonx.Int t.next_seed);
                 ("leases", Jsonx.Int (List.length t.leases));
                 ("syncs", Jsonx.Int t.syncs);
                 ( "workers",
                   Jsonx.List (List.map (fun c -> Jsonx.String c) (Fleet.clients t.fleet))
                 );
               ]))
    in
    json body

  (* ---- fleet telemetry: the jitbulld /push + /fleet pair ---- *)

  let push_response t body =
    match Fleet.decode_push body with
    | Error msg -> json_error 400 ("bad push: " ^ msg)
    | Ok (s, deltas) ->
      Fleet.apply t.fleet s ~deltas;
      json
        (Jsonx.to_string
           (Jsonx.Assoc
              [
                ("ok", Jsonx.Bool true);
                ("clients", Jsonx.Int (List.length (Fleet.clients t.fleet)));
              ]))

  let fleet_response t query =
    match List.assoc_opt "format" query with
    | Some "html" ->
      Http.respond ~content_type:"text/html; charset=utf-8" (Fleet.render_html t.fleet)
    | Some "json" ->
      Http.respond ~content_type:"application/json"
        (Jsonx.to_string (Fleet.to_json t.fleet))
    | _ ->
      Http.respond ~content_type:"text/plain; version=0.0.4"
        (Fleet.render_prometheus t.fleet)

  let handle t (req : Http.request) =
    match (req.Http.rq_path, req.Http.rq_meth) with
    | "/fuzz/work", "GET" -> work_response t req.Http.rq_query
    | "/fuzz/done", "POST" -> done_response t req.Http.rq_body
    | "/fuzz/coverage", "POST" -> coverage_response t req.Http.rq_body
    | "/fuzz/interesting", "POST" -> interesting_response t req.Http.rq_body
    | "/fuzz/corpus", "GET" -> corpus_response t req.Http.rq_query
    | "/fuzz/stats", "GET" -> stats_response t
    | "/push", "POST" -> push_response t req.Http.rq_body
    | "/push", _ -> json_error 405 "POST required"
    | "/fleet", _ -> fleet_response t req.Http.rq_query
    | ("/fuzz/work" | "/fuzz/corpus" | "/fuzz/stats"), _ -> json_error 405 "GET required"
    | ("/fuzz/done" | "/fuzz/coverage" | "/fuzz/interesting"), _ ->
      json_error 405 "POST required"
    | _ -> Http.not_found ()

  let start ?(config = Oracle.default_config) ?corpus_dir ?(chunk = 64)
      ?(lease_timeout = 30.) ?obs ~port () =
    let corpus = Corpus.create ?dir:corpus_dir () in
    let coverage = Coverage.create () in
    let known = Hashtbl.create 256 in
    (* a restarted master replays its persisted corpus so the coverage
       map (and dedup set) match what the entries actually cover *)
    List.iter
      (fun (e : Corpus.entry) ->
        Hashtbl.replace known (digest e.Corpus.source) ();
        ignore (Coverage.add_features coverage (features_of_source ~config e.Corpus.source)))
      (Corpus.entries corpus);
    let rec t =
      lazy
        {
          server =
            Http.Server.start ~handler:(fun req -> handle (Lazy.force t) req) ~port ();
          mu = Mutex.create ();
          coverage;
          corpus;
          known;
          next_seed = 0;
          leases = [];
          chunk;
          lease_timeout;
          fleet = Fleet.create ();
          obs;
          syncs = 0;
        }
    in
    Lazy.force t

  let port t = Http.Server.port t.server
  let coverage_count t = locked t (fun () -> Coverage.count t.coverage)
  let corpus_size t = locked t (fun () -> Corpus.length t.corpus)
  let corpus_entries t = locked t (fun () -> Corpus.entries t.corpus)
  let syncs t = locked t (fun () -> t.syncs)
  let stop t = Http.Server.stop t.server
end

(* ------------------------------------------------------------------ *)
(* Worker                                                             *)
(* ------------------------------------------------------------------ *)

module Worker = struct
  type result = {
    w_rounds : int;
    w_execs : int;
    w_signals : Harness.finding list;
    w_coverage : int;
    w_corpus_size : int;
    w_uploaded : int;
    w_imported : int;
    w_il_yield : Harness.yield;
    w_ast_yield : Harness.yield;
    w_cve_execs : (VC.cve * int) list;
  }

  let get conn path =
    let status, _, body = Http.Conn.request conn path in
    if status <> 200 then failwith (Printf.sprintf "GET %s: %d" path status);
    Jsonx.parse body

  let post conn path payload =
    let status, _, body =
      Http.Conn.request conn ~meth:"POST" ~body:(Jsonx.to_string payload) path
    in
    if status <> 200 then failwith (Printf.sprintf "POST %s: %d" path status);
    Jsonx.parse body

  let empty_totals =
    { Audit.tt_records = 0; tt_allow = 0; tt_disable = 0; tt_forbid = 0; tt_cache_hits = 0 }

  let run ?(config = Oracle.default_config) ?(il = false) ?(rounds = 2)
      ?(execs_per_round = 200) ?chunk ?rng_seed ?(track_cves = false) ~id ~port () =
    let conn = Http.Conn.connect ~port () in
    Fun.protect
      ~finally:(fun () -> Http.Conn.close conn)
      (fun () ->
        let obs = Obs.create ~capacity:64 ~audit_capacity:8 () in
        (* the campaign maintains fuzz.il_mutants / fuzz.ast_mutants /
           fuzz.valid_ratio on the config's obs handle; pointing it at
           the worker's own registry puts them in every fleet push *)
        let config = { config with Engine.obs = Some obs } in
        (* local campaign state persists across rounds *)
        let coverage = Coverage.create () in
        let corpus = Corpus.create () in
        let known = Hashtbl.create 64 in
        let rng_seed =
          match rng_seed with Some s -> s | None -> Hashtbl.hash id land 0xffff
        in
        let execs = ref 0 in
        let signals = ref [] in
        let uploaded = ref 0 in
        let imported = ref 0 in
        let il_yield = ref { Harness.y_mutants = 0; y_valid = 0 } in
        let ast_yield = ref { Harness.y_mutants = 0; y_valid = 0 } in
        let cve_execs = ref [] in
        let since = ref 0 in
        for round = 0 to rounds - 1 do
          (* 1. lease a seed range *)
          let chunk_q = match chunk with None -> "" | Some n -> Printf.sprintf "&n=%d" n in
          let w = get conn (Printf.sprintf "/fuzz/work?worker=%s%s" id chunk_q) in
          let lo = Jsonx.to_int (Jsonx.member "lo" w) in
          let hi = Jsonx.to_int (Jsonx.member "hi" w) in
          (* 2. local campaign over the leased generator range; the first
             round also seeds the known-exploit demonstrators, the same
             seed corpus a local guided campaign starts from *)
          let seed_sources =
            let range = List.init (hi - lo) (fun i -> Generator.aggressive ~seed:(lo + i)) in
            if round = 0 then Harness.vdc_seed_sources () @ range else range
          in
          let before = Corpus.length corpus in
          let g =
            Harness.guided_campaign ~config ~corpus ~coverage ~il ~track_cves
              ~rng_seed:(rng_seed + round) ~seed_sources ~max_execs:execs_per_round ()
          in
          let execs_before = !execs in
          execs := !execs + g.Harness.g_execs;
          signals := !signals @ g.Harness.g_signals;
          (* attribution restarts per round; keep only first sighting of
             each CVE, exec counts made cumulative across rounds *)
          List.iter
            (fun (cve, e) ->
              if not (List.mem_assoc cve !cve_execs) then
                cve_execs := !cve_execs @ [ (cve, execs_before + e) ])
            g.Harness.g_cve_execs;
          il_yield :=
            {
              Harness.y_mutants = !il_yield.Harness.y_mutants + g.Harness.g_il_yield.Harness.y_mutants;
              y_valid = !il_yield.Harness.y_valid + g.Harness.g_il_yield.Harness.y_valid;
            };
          ast_yield :=
            {
              Harness.y_mutants = !ast_yield.Harness.y_mutants + g.Harness.g_ast_yield.Harness.y_mutants;
              y_valid = !ast_yield.Harness.y_valid + g.Harness.g_ast_yield.Harness.y_valid;
            };
          Obs.add (Some obs) "fuzz.execs" g.Harness.g_execs;
          Obs.set_gauge (Some obs) "fuzz.coverage" (float_of_int (Coverage.count coverage));
          (* 3. upload what this round found *)
          let fresh =
            let all = Corpus.entries corpus in
            List.filteri (fun i _ -> i >= before) all
          in
          List.iter
            (fun (e : Corpus.entry) ->
              let d = digest e.Corpus.source in
              if not (Hashtbl.mem known d) then begin
                Hashtbl.replace known d ();
                let payload =
                  Jsonx.Assoc
                    [
                      ("worker", Jsonx.String id);
                      ("source", Jsonx.String e.Corpus.source);
                      ( "il",
                        match e.Corpus.il with
                        | None -> Jsonx.Null
                        | Some t -> Jsonx.String t );
                      ("gain", Jsonx.Int e.Corpus.gain);
                    ]
                in
                let r = post conn "/fuzz/interesting" payload in
                match Jsonx.member "admitted" r with
                | Jsonx.Bool true -> incr uploaded
                | _ -> ()
              end)
            fresh;
          (* 4. two-way coverage union *)
          let r =
            post conn "/fuzz/coverage"
              (Jsonx.Assoc
                 [
                   ("worker", Jsonx.String id);
                   ("features", features_to_json (Coverage.features coverage));
                 ])
          in
          ignore (Coverage.add_features coverage (features_of_json (Jsonx.member "missing" r)));
          Obs.incr (Some obs) "fuzz.corpus_syncs";
          (* 5. corpus broadcast: import entries other workers found *)
          let b = get conn (Printf.sprintf "/fuzz/corpus?since=%d" !since) in
          since := Jsonx.to_int (Jsonx.member "next" b);
          List.iter
            (fun ej ->
              match Jsonx.member "source" ej with
              | Jsonx.String source ->
                let d = digest source in
                if not (Hashtbl.mem known d) then begin
                  Hashtbl.replace known d ();
                  let il =
                    match Jsonx.member "il" ej with Jsonx.String s -> Some s | _ -> None
                  in
                  let gain =
                    match Jsonx.member "gain" ej with Jsonx.Int g -> max 1 g | _ -> 1
                  in
                  ignore (Corpus.add corpus ?il ~gain source);
                  incr imported
                end
              | _ -> ())
            (Jsonx.to_list_exn (Jsonx.member "entries" b));
          (* 6. fleet push: per-worker series on the master's /fleet *)
          let snapshot =
            {
              Fleet.sn_client = id;
              sn_ts = Obs.now (Some obs);
              sn_totals = empty_totals;
              sn_install_p99 = 0.;
              sn_metrics = Metrics.view_to_json (Obs.view (Some obs));
            }
          in
          ignore
            (Http.Conn.request conn ~meth:"POST" ~body:(Fleet.encode_push snapshot [])
               "/push");
          (* 7. release the lease *)
          ignore
            (post conn "/fuzz/done"
               (Jsonx.Assoc
                  [
                    ("worker", Jsonx.String id);
                    ("lo", Jsonx.Int lo);
                    ("hi", Jsonx.Int hi);
                  ]))
        done;
        {
          w_rounds = rounds;
          w_execs = !execs;
          w_signals = !signals;
          w_coverage = Coverage.count coverage;
          w_corpus_size = Corpus.length corpus;
          w_uploaded = !uploaded;
          w_imported = !imported;
          w_il_yield = !il_yield;
          w_ast_yield = !ast_yield;
          w_cve_execs = !cve_execs;
        })
end

(* ------------------------------------------------------------------ *)
(* Distillation                                                       *)
(* ------------------------------------------------------------------ *)

type distilled = {
  d_entries : Corpus.entry list;
  d_covers : int list;
  d_features : int;
  d_total : int;
}

let distill ?(config = Oracle.default_config) entries =
  let scored =
    List.map (fun (e : Corpus.entry) -> (e, features_of_source ~config e.Corpus.source)) entries
  in
  let all = Coverage.create () in
  List.iter (fun (_, fs) -> ignore (Coverage.add_features all fs)) scored;
  let covered = Coverage.create () in
  let kept = ref [] in
  let covers = ref [] in
  let remaining = ref scored in
  let continue = ref true in
  while !continue do
    let best =
      List.fold_left
        (fun best (e, fs) ->
          let fresh = List.length (List.filter (fun f -> not (Coverage.seen covered f)) fs) in
          match best with
          | Some (_, _, best_fresh) when best_fresh >= fresh -> best
          | _ when fresh > 0 -> Some (e, fs, fresh)
          | _ -> best)
        None !remaining
    in
    match best with
    | None -> continue := false
    | Some ((e : Corpus.entry), fs, fresh) ->
      ignore (Coverage.add_features covered fs);
      kept := e :: !kept;
      covers := fresh :: !covers;
      remaining := List.filter (fun ((r : Corpus.entry), _) -> r.Corpus.id <> e.Corpus.id) !remaining
  done;
  {
    d_entries = List.rev !kept;
    d_covers = List.rev !covers;
    d_features = Coverage.count all;
    d_total = List.length entries;
  }

let manifest_version = "jitbull distilled corpus v1"

let manifest d =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (manifest_version ^ "\n");
  Buffer.add_string buf (Printf.sprintf "entries %d\n" (List.length d.d_entries));
  Buffer.add_string buf (Printf.sprintf "features %d\n" d.d_features);
  Buffer.add_string buf (Printf.sprintf "of %d\n" d.d_total);
  List.iteri
    (fun ord ((e : Corpus.entry), cover) ->
      Buffer.add_string buf
        (Printf.sprintf "entry %06d cover %d md5 %s %s\n" ord cover
           (digest e.Corpus.source)
           (match e.Corpus.il with Some _ -> "il" | None -> "js")))
    (List.combine d.d_entries d.d_covers);
  Buffer.contents buf

let rec mkdir_p path =
  if path <> "" && path <> "/" && path <> "." && not (Sys.file_exists path) then begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc contents)

let write_distilled ~dir d =
  mkdir_p dir;
  List.iteri
    (fun ord (e : Corpus.entry) ->
      write_file (Filename.concat dir (Printf.sprintf "%06d.js" ord)) e.Corpus.source;
      match e.Corpus.il with
      | None -> ()
      | Some t -> write_file (Filename.concat dir (Printf.sprintf "%06d.il" ord)) t)
    d.d_entries;
  write_file (Filename.concat dir "MANIFEST") (manifest d)
