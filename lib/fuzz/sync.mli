(** Distributed fuzzing campaigns: master/worker corpus sync over the
    dependency-free HTTP layer, plus corpus distillation for CI.

    Modeled on Fuzzilli's master/worker topology: one {!Master} owns the
    authoritative coverage map and corpus; {!Worker}s run local
    coverage-guided campaigns ({!Harness.guided_campaign}) and
    periodically

    - lease a generator-seed range from [GET /fuzz/work] (work stealing:
      a range whose lease expires before [POST /fuzz/done] is re-issued
      to the next worker that asks),
    - upload locally-interesting inputs to [POST /fuzz/interesting]
      (deduplicated by source digest, so re-uploads are idempotent),
    - sync coverage through [POST /fuzz/coverage] — the master unions
      the worker's feature hashes into its map and answers with the
      features the worker was missing, so both sides converge on the
      union with one round-trip regardless of how often it is repeated,
    - download corpus entries they have not seen from
      [GET /fuzz/corpus?since=N] (the periodic corpus broadcast), and
    - push their local metrics ({!Jitbull_obs.Fleet} snapshot) to
      [POST /push]; the master serves the per-worker series on
      [GET /fleet] exactly like jitbulld.

    Every sync bumps the [fuzz.corpus_syncs] counter on both sides.
    With a [corpus_dir] the master's corpus is write-through persistent
    ({!Corpus}), and a restarted master replays it into a fresh coverage
    map — distilled entries survive. *)

(** {1 Master} *)

module Master : sig
  type t

  (** [start ()] binds 127.0.0.1:[port] ([port = 0] picks a free one).
      [corpus_dir] makes the corpus persistent (entries already there
      are reloaded and replayed into the coverage map). [chunk] is the
      default work-lease width in seeds (default 64); [lease_timeout]
      (seconds, default 30) is the work-stealing horizon. [config] is
      the engine the master replays reloaded entries under (default
      {!Oracle.default_config}). *)
  val start :
    ?config:Jitbull_jit.Engine.config ->
    ?corpus_dir:string ->
    ?chunk:int ->
    ?lease_timeout:float ->
    ?obs:Jitbull_obs.Obs.t ->
    port:int ->
    unit ->
    t

  val port : t -> int
  val coverage_count : t -> int
  val corpus_size : t -> int
  val corpus_entries : t -> Corpus.entry list

  (** Coverage syncs served so far ([fuzz.corpus_syncs]). *)
  val syncs : t -> int

  (** Close the listening socket and join the serving domains.
      Idempotent. *)
  val stop : t -> unit
end

(** {1 Worker} *)

module Worker : sig
  type result = {
    w_rounds : int;
    w_execs : int;
    w_signals : Harness.finding list;  (** oldest first, across rounds *)
    w_coverage : int;  (** local map size after the last sync *)
    w_corpus_size : int;
    w_uploaded : int;  (** locally-found entries sent to the master *)
    w_imported : int;  (** master entries admitted into the local corpus *)
    w_il_yield : Harness.yield;
    w_ast_yield : Harness.yield;
    w_cve_execs : (Jitbull_passes.Vuln_config.cve * int) list;
        (** first attribution of each CVE ([track_cves]); exec counts
            are cumulative across rounds *)
  }

  (** [run ~id ~port ()] — the worker loop: [rounds] iterations of
      lease range → local campaign of [execs_per_round] instrumented
      executions → upload interesting → coverage sync → corpus download
      → fleet push → release lease. [il] selects the typed-IL mutation
      mode of {!Harness.guided_campaign}. [rng_seed] defaults to a hash
      of [id] so concurrent workers explore different mutation streams.
      Blocking; run each worker in its own thread for a multi-worker
      topology. *)
  val run :
    ?config:Jitbull_jit.Engine.config ->
    ?il:bool ->
    ?rounds:int ->
    ?execs_per_round:int ->
    ?chunk:int ->
    ?rng_seed:int ->
    ?track_cves:bool ->
    id:string ->
    port:int ->
    unit ->
    result
end

(** {1 Distillation} *)

type distilled = {
  d_entries : Corpus.entry list;
      (** greedy cover order: each entry contributes ≥ 1 feature no
          earlier entry covers *)
  d_covers : int list;  (** new features per entry, same order *)
  d_features : int;  (** features of the full input set *)
  d_total : int;  (** entries before minimization *)
}

(** [distill entries] — minimize to a coverage-preserving subset:
    replay every entry under [config] (default {!Oracle.default_config}),
    then greedily keep the entry covering the most uncovered features
    (ties to the smallest id) until the kept set covers everything the
    full set covers. Deterministic for a fixed entry list and config. *)
val distill :
  ?config:Jitbull_jit.Engine.config -> Corpus.entry list -> distilled

(** The first line of every manifest; bump when the format changes. *)
val manifest_version : string

(** The committed-corpus manifest (golden-tested, stable):
    version line, [entries]/[features]/[of] counts, then one
    [entry <ord> cover <n> md5 <hex> <js|il>] line per kept entry in
    cover order. *)
val manifest : distilled -> string

(** [write_distilled ~dir d] — write the kept entries as
    [NNNNNN.js] (+ [NNNNNN.il] sidecars when present, renumbered in
    cover order) plus [MANIFEST] into [dir] (created if needed). *)
val write_distilled : dir:string -> distilled -> unit
