module Ast = Jitbull_frontend.Ast
module Parser = Jitbull_frontend.Parser
module Value = Jitbull_runtime.Value
module Value_ops = Jitbull_runtime.Value_ops
module Heap = Jitbull_runtime.Heap
module Realm = Jitbull_runtime.Realm
module Builtins = Jitbull_runtime.Builtins
module Errors = Jitbull_runtime.Errors

exception Timeout

type outcome = {
  result : Value.t;
  output : string;
}

(* Non-local control flow inside a function body. *)
exception Return_exc of Value.t
exception Break_exc
exception Continue_exc

type env = {
  realm : Realm.t;
  functions : Ast.func array;
  globals : (string, Value.t) Hashtbl.t;
  mutable steps : int;
  max_steps : int;  (* -1 = unbounded *)
  mutable depth : int;  (* live user-function call depth *)
}

let tick env =
  if env.max_steps >= 0 then begin
    env.steps <- env.steps + 1;
    if env.steps > env.max_steps then raise Timeout
  end

type scope = {
  locals : (string, Value.t) Hashtbl.t option;  (* None at top level *)
}

let lookup env scope name =
  let local =
    match scope.locals with
    | Some tbl -> Hashtbl.find_opt tbl name
    | None -> None
  in
  match local with
  | Some v -> v
  | None -> (
    match Hashtbl.find_opt env.globals name with
    | Some v -> v
    | None ->
      if Builtins.is_namespace name then Value.Builtin name
      else if Builtins.is_global_function name then Value.Builtin name
      else Errors.type_error "%s is not defined" name)

let assign_var env scope name v =
  match scope.locals with
  | Some tbl when Hashtbl.mem tbl name -> Hashtbl.replace tbl name v
  | Some _ | None -> Hashtbl.replace env.globals name v

let rec eval env scope (e : Ast.expr) : Value.t =
  tick env;
  match e with
  | Ast.Number f -> Value.Number f
  | Ast.String s -> Value.String s
  | Ast.Bool b -> Value.Bool b
  | Ast.Null -> Value.Null
  | Ast.Undefined -> Value.Undefined
  | Ast.Ident name -> lookup env scope name
  | Ast.Array_lit es ->
    let h = Heap.alloc_array env.realm.Realm.heap ~length:(List.length es) in
    List.iteri (fun i e -> Heap.set env.realm.Realm.heap h i (eval env scope e)) es;
    Value.Array h
  | Ast.Object_lit fields ->
    let tbl = Hashtbl.create (max 4 (List.length fields)) in
    List.iter (fun (k, e) -> Hashtbl.replace tbl k (eval env scope e)) fields;
    Value.Object tbl
  | Ast.Unary (op, e) -> Value_ops.unary op (eval env scope e)
  | Ast.Binary (op, a, b) ->
    let va = eval env scope a in
    let vb = eval env scope b in
    Value_ops.binary op va vb
  | Ast.Logical (Ast.And, a, b) ->
    let va = eval env scope a in
    if Value_ops.to_boolean va then eval env scope b else va
  | Ast.Logical (Ast.Or, a, b) ->
    let va = eval env scope a in
    if Value_ops.to_boolean va then va else eval env scope b
  | Ast.Conditional (c, t, f) ->
    if Value_ops.to_boolean (eval env scope c) then eval env scope t else eval env scope f
  | Ast.Assign (lv, rhs) -> (
    match lv with
    | Ast.Lvar name ->
      let v = eval env scope rhs in
      assign_var env scope name v;
      v
    | Ast.Lindex (o, i) ->
      let recv = eval env scope o in
      let idx = eval env scope i in
      let v = eval env scope rhs in
      (match (recv, Value_ops.to_index idx) with
      | Value.Array h, Some i -> Heap.set env.realm.Realm.heap h i v
      | Value.Object tbl, _ -> Hashtbl.replace tbl (Value_ops.to_string idx) v
      | Value.Array _, None ->
        Errors.type_error "invalid array index %s" (Value.to_display idx)
      | recv, _ -> Errors.type_error "cannot index %s" (Value.type_name recv));
      v
    | Ast.Lmember (o, name) ->
      let recv = eval env scope o in
      let v = eval env scope rhs in
      Builtins.set_member env.realm recv name v;
      v)
  | Ast.Call (callee, args) -> eval_call env scope callee args
  | Ast.Member (o, name) -> (
    match o with
    | Ast.Ident ns when Builtins.is_namespace ns && not (is_shadowed env scope ns) ->
      Builtins.namespace_member ns name
    | _ -> Builtins.get_member env.realm (eval env scope o) name)
  | Ast.Index (o, i) -> (
    let recv = eval env scope o in
    let idx = eval env scope i in
    match (recv, Value_ops.to_index idx) with
    | Value.Array h, Some i -> Heap.get env.realm.Realm.heap h i
    | Value.Object tbl, _ -> (
      match Hashtbl.find_opt tbl (Value_ops.to_string idx) with
      | Some v -> v
      | None -> Value.Undefined)
    | Value.String s, Some i ->
      if i < String.length s then Value.String (String.make 1 s.[i]) else Value.Undefined
    | Value.Array _, None -> Value.Undefined
    | recv, _ -> Errors.type_error "cannot index %s" (Value.type_name recv))
  | Ast.Func_expr _ ->
    (* the parser lambda-lifts all function expressions *)
    Errors.type_error "internal error: unlifted function expression"

and is_shadowed env scope name =
  (match scope.locals with Some tbl -> Hashtbl.mem tbl name | None -> false)
  || Hashtbl.mem env.globals name

and eval_call env scope callee args =
  match callee with
  | Ast.Member (Ast.Ident ns, fn) when Builtins.is_namespace ns && not (is_shadowed env scope ns)
    ->
    let vargs = List.map (eval env scope) args in
    Builtins.call_namespace env.realm ns fn vargs
  | Ast.Member (o, name) -> (
    let recv = eval env scope o in
    let vargs = List.map (eval env scope) args in
    match Builtins.call_method env.realm recv name vargs with
    | `Value v -> v
    | `User_function (idx, vargs) -> call_function env idx vargs)
  | _ -> (
    let f = eval env scope callee in
    let vargs = List.map (eval env scope) args in
    match f with
    | Value.Function idx -> call_function env idx vargs
    | Value.Builtin name -> Builtins.call_builtin env.realm name vargs
    | v -> Errors.type_error "%s is not a function" (Value.type_name v))

and call_function env idx vargs =
  (* Real engines throw here too ("maximum call stack size exceeded");
     without the bound, runaway-recursive fuzzer mutants build stacks
     deep enough to make every minor GC scan quadratic. *)
  if env.depth >= 256 then Errors.type_error "maximum call stack size exceeded";
  env.depth <- env.depth + 1;
  Fun.protect
    ~finally:(fun () -> env.depth <- env.depth - 1)
    (fun () -> call_function_body env idx vargs)

and call_function_body env idx vargs =
  let f = env.functions.(idx) in
  let locals = Hashtbl.create 16 in
  List.iteri
    (fun i p ->
      let v = match List.nth_opt vargs i with Some v -> v | None -> Value.Undefined in
      Hashtbl.replace locals p v)
    f.Ast.params;
  List.iter
    (fun x -> if not (Hashtbl.mem locals x) then Hashtbl.replace locals x Value.Undefined)
    (Ast.declared_vars f.Ast.body);
  let scope = { locals = Some locals } in
  try
    exec_stmts env scope f.Ast.body;
    Value.Undefined
  with Return_exc v -> v

and exec_stmts env scope stmts = List.iter (exec_stmt env scope) stmts

and exec_stmt env scope (s : Ast.stmt) : unit =
  tick env;
  match s with
  | Ast.Var (name, init) -> (
    match init with
    | Some e ->
      let v = eval env scope e in
      (* a hoisted local exists already; at top level this creates a
         global *)
      (match scope.locals with
      | Some tbl -> Hashtbl.replace tbl name v
      | None -> Hashtbl.replace env.globals name v)
    | None -> (
      (* [var x;] without initializer: declaration only — it must not
         reset a value assigned before the (hoisted) declaration *)
      match scope.locals with
      | Some _ -> ()
      | None ->
        if not (Hashtbl.mem env.globals name) then
          Hashtbl.replace env.globals name Value.Undefined))
  | Ast.Expr_stmt e -> ignore (eval env scope e)
  | Ast.If (c, t, f) ->
    if Value_ops.to_boolean (eval env scope c) then exec_stmts env scope t
    else exec_stmts env scope f
  | Ast.While (c, body) ->
    let rec loop () =
      if Value_ops.to_boolean (eval env scope c) then begin
        (try exec_stmts env scope body with Continue_exc -> ());
        loop ()
      end
    in
    (try loop () with Break_exc -> ())
  | Ast.For (init, cond, update, body) ->
    Option.iter (exec_stmt env scope) init;
    let continue_cond () =
      match cond with
      | Some c -> Value_ops.to_boolean (eval env scope c)
      | None -> true
    in
    let rec loop () =
      if continue_cond () then begin
        (try exec_stmts env scope body with Continue_exc -> ());
        Option.iter (fun u -> ignore (eval env scope u)) update;
        loop ()
      end
    in
    (try loop () with Break_exc -> ())
  | Ast.Return e ->
    let v = match e with Some e -> eval env scope e | None -> Value.Undefined in
    raise (Return_exc v)
  | Ast.Break -> raise Break_exc
  | Ast.Continue -> raise Continue_exc
  | Ast.Block body -> exec_stmts env scope body

let run ?realm ?(max_steps = -1) (program : Ast.program) =
  let realm = match realm with Some r -> r | None -> Realm.create () in
  let env =
    {
      realm;
      functions = Array.of_list program.Ast.functions;
      globals = Hashtbl.create 64;
      steps = 0;
      max_steps;
      depth = 0;
    }
  in
  List.iteri
    (fun i (f : Ast.func) -> Hashtbl.replace env.globals f.Ast.name (Value.Function i))
    program.Ast.functions;
  let scope = { locals = None } in
  let last = ref Value.Undefined in
  (* [return]/[break]/[continue] at the top level are syntax errors in
     real JS; surface them as runtime errors instead of leaking the
     interpreter's internal control-flow exceptions (fuzzer mutants hit
     this). *)
  (try
     List.iter
       (fun s ->
         match s with
         | Ast.Expr_stmt e -> last := eval env scope e
         | s -> exec_stmt env scope s)
       program.Ast.main
   with
  | Return_exc _ -> raise (Errors.Type_error "return outside function")
  | Break_exc | Continue_exc -> raise (Errors.Type_error "break or continue outside loop"));
  { result = !last; output = Realm.output realm }

let run_source ?realm ?max_steps source = run ?realm ?max_steps (Parser.parse source)
