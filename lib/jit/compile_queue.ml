type state =
  | Pending
  | Running
  | Done
  | Cancelled

type job = { state : state Atomic.t }

type t = {
  n_workers : int;
  capacity : int;
  q : (job * (unit -> unit)) Queue.t;
  mu : Mutex.t;
  not_empty : Condition.t;
  not_full : Condition.t;
  idle : Condition.t;
  mutable running : int;
  mutable stop : bool;
  mutable submitted : int;
  mutable completed : int;
  mutable cancelled : int;
  mutable domains : unit Domain.t list;
}

let hard_cap = 8

let default_jobs () = max 0 (min 4 (Domain.recommended_domain_count () - 1))

let signal_idle_if_quiet t =
  if Queue.is_empty t.q && t.running = 0 then Condition.broadcast t.idle

let rec worker t =
  Mutex.lock t.mu;
  while Queue.is_empty t.q && not t.stop do
    Condition.wait t.not_empty t.mu
  done;
  if Queue.is_empty t.q then
    (* stop requested and nothing left: exit. A stop with jobs still queued
       drains them first, so [shutdown] never abandons accepted work. *)
    Mutex.unlock t.mu
  else begin
    let job, work = Queue.pop t.q in
    Condition.signal t.not_full;
    if Atomic.compare_and_set job.state Pending Running then begin
      t.running <- t.running + 1;
      Mutex.unlock t.mu;
      (* [work] is expected to catch its own exceptions and publish them
         as results; a leak here must not kill the worker domain *)
      (try work () with _ -> ());
      Atomic.set job.state Done;
      Mutex.lock t.mu;
      t.running <- t.running - 1;
      t.completed <- t.completed + 1;
      signal_idle_if_quiet t;
      Mutex.unlock t.mu
    end
    else begin
      (* cancelled while queued: skip the work *)
      signal_idle_if_quiet t;
      Mutex.unlock t.mu
    end;
    worker t
  end

let create ?(capacity = 64) ~jobs () =
  if jobs < 1 then invalid_arg "Compile_queue.create: jobs must be >= 1";
  let t =
    {
      n_workers = min jobs hard_cap;
      capacity = max 1 capacity;
      q = Queue.create ();
      mu = Mutex.create ();
      not_empty = Condition.create ();
      not_full = Condition.create ();
      idle = Condition.create ();
      running = 0;
      stop = false;
      submitted = 0;
      completed = 0;
      cancelled = 0;
      domains = [];
    }
  in
  t.domains <- List.init t.n_workers (fun _ -> Domain.spawn (fun () -> worker t));
  t

let jobs t = t.n_workers

let enqueue_locked t work =
  let job = { state = Atomic.make Pending } in
  Queue.push (job, work) t.q;
  t.submitted <- t.submitted + 1;
  Condition.signal t.not_empty;
  job

let submit t work =
  Mutex.lock t.mu;
  if t.stop then begin
    Mutex.unlock t.mu;
    invalid_arg "Compile_queue.submit: queue is shut down"
  end;
  while Queue.length t.q >= t.capacity && not t.stop do
    Condition.wait t.not_full t.mu
  done;
  let job = enqueue_locked t work in
  Mutex.unlock t.mu;
  job

let try_submit t work =
  Mutex.lock t.mu;
  let r =
    if t.stop || Queue.length t.q >= t.capacity then None
    else Some (enqueue_locked t work)
  in
  Mutex.unlock t.mu;
  r

let cancel t job =
  if Atomic.compare_and_set job.state Pending Cancelled then begin
    Mutex.lock t.mu;
    t.cancelled <- t.cancelled + 1;
    (* a worker may be blocked on this job's slot; wake the idle waiters
       in case the cancelled job was the only queued work *)
    signal_idle_if_quiet t;
    Mutex.unlock t.mu;
    true
  end
  else false

let job_state job = Atomic.get job.state

let pending t =
  Mutex.lock t.mu;
  let n =
    Queue.fold (fun acc (j, _) -> if Atomic.get j.state = Pending then acc + 1 else acc) 0 t.q
  in
  Mutex.unlock t.mu;
  n

let in_flight t =
  Mutex.lock t.mu;
  let n = t.running in
  Mutex.unlock t.mu;
  n

let wait_idle t =
  Mutex.lock t.mu;
  (* cancelled jobs still occupy queue slots until a worker pops them, so
     "quiet" is: no runnable queued job and no running worker *)
  let runnable () =
    Queue.fold (fun acc (j, _) -> acc || Atomic.get j.state = Pending) false t.q
  in
  while (runnable () || t.running > 0) && not t.stop do
    Condition.wait t.idle t.mu
  done;
  Mutex.unlock t.mu

let stats t =
  Mutex.lock t.mu;
  let s = (t.submitted, t.completed, t.cancelled) in
  Mutex.unlock t.mu;
  s

let shutdown t =
  Mutex.lock t.mu;
  if not t.stop then begin
    t.stop <- true;
    Condition.broadcast t.not_empty;
    Condition.broadcast t.not_full;
    Condition.broadcast t.idle;
    Mutex.unlock t.mu;
    List.iter Domain.join t.domains;
    t.domains <- []
  end
  else Mutex.unlock t.mu
