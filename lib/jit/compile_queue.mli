(** A fixed pool of helper domains executing compile jobs off the main
    thread, in the role of SpiderMonkey's Ion helper-thread pool: the
    engine enqueues a closure capturing frozen compile inputs, keeps
    running baseline code, and installs the published result at the next
    function-entry safepoint.

    The queue is bounded: {!submit} blocks the caller when full
    (backpressure), {!try_submit} refuses instead so the engine can fall
    back to a synchronous compile. Jobs are cancellable only while still
    queued — once a worker claims a job it runs to completion and the
    caller discards the stale result at install time.

    Work closures must not raise: an escaping exception is swallowed (the
    worker domain survives); publish failures as part of the result. *)

type t

type job

type state =
  | Pending  (** queued, not yet claimed by a worker *)
  | Running
  | Done
  | Cancelled

(** Helper domains to use by default: [recommended_domain_count - 1]
    clamped to [0, 4]. 0 means "no pool" (synchronous compilation). *)
val default_jobs : unit -> int

(** [create ~jobs ()] spawns [jobs] (≥ 1, silently capped at 8) worker
    domains sharing one FIFO queue of at most [capacity] (default 64)
    queued jobs. Raises [Invalid_argument] when [jobs < 1] — callers
    wanting synchronous compilation simply don't create a pool. *)
val create : ?capacity:int -> jobs:int -> unit -> t

(** Number of worker domains actually spawned. *)
val jobs : t -> int

(** [submit t work] enqueues [work]; blocks while the queue is full.
    Raises [Invalid_argument] after {!shutdown}. *)
val submit : t -> (unit -> unit) -> job

(** Non-blocking variant: [None] when the queue is full or shut down. *)
val try_submit : t -> (unit -> unit) -> job option

(** [cancel t job] — true iff the job was still [Pending] and is now
    [Cancelled] (its closure will never run). Racing a worker claiming
    the job loses cleanly: the job runs and [cancel] returns false. *)
val cancel : t -> job -> bool

val job_state : job -> state

(** Queued-and-runnable job count (excludes cancelled and claimed). *)
val pending : t -> int

(** Jobs currently executing on a worker domain. *)
val in_flight : t -> int

(** Blocks until no runnable job is queued and no job is executing. The
    caller is expected to poll its own result mailbox afterwards. *)
val wait_idle : t -> unit

(** [(submitted, completed, cancelled)] lifetime totals. *)
val stats : t -> int * int * int

(** Stops accepting work, lets workers drain every still-runnable queued
    job, and joins the worker domains. Idempotent. *)
val shutdown : t -> unit
