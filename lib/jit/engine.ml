module Value = Jitbull_runtime.Value
module Realm = Jitbull_runtime.Realm
module Heap = Jitbull_runtime.Heap
module Vm = Jitbull_bytecode.Vm
module Op = Jitbull_bytecode.Op
module Feedback = Jitbull_bytecode.Feedback
module Compiler = Jitbull_bytecode.Compiler
module Parser = Jitbull_frontend.Parser
module Builder = Jitbull_mir.Builder
module Snapshot = Jitbull_mir.Snapshot
module Pipeline = Jitbull_passes.Pipeline
module Vuln_config = Jitbull_passes.Vuln_config
module Lir = Jitbull_lir.Lir
module Lower = Jitbull_lir.Lower
module Regalloc = Jitbull_lir.Regalloc
module Executor = Jitbull_lir.Executor
module Native = Jitbull_native.Native
module Obs = Jitbull_obs.Obs
module Clock = Jitbull_obs.Clock
module Jsonx = Jitbull_obs.Jsonx

let log_src = Logs.Src.create "jitbull.engine" ~doc:"JIT engine tier-up and policy events"

module Log = (val Logs.src_log log_src : Logs.LOG)

type decision =
  | Allow
  | Disable_passes of string list
  | Forbid_jit

(* What the engine knows about the compile it is asking a verdict for —
   handed to the analyzer so the audit trail can tie the decision to the
   exact bytecode + type-feedback state it was made against. *)
type compile_ctx = {
  cc_bytecode_hash : int;
  cc_feedback_hash : int;
}

type analyzer =
  ctx:compile_ctx ->
  func_index:int ->
  name:string ->
  trace:(string * Snapshot.t) list ->
  decision

(* The policy-decision cache: verdicts keyed by a hash of everything the
   traced compile consumes (bytecode, type feedback, depth-1 inline
   callees), invalidated wholesale whenever the [generation] closure — the
   DNA database's mutation counter — moves. A hit skips the snapshot
   trace, the Δ extraction and the DB comparison entirely; a Forbid hit
   even skips the Ion compile.

   Lookups/stores come from helper compile domains as well as the main
   thread, so every operation runs under the cache's mutex. *)
module Policy_cache = struct
  type t = {
    table : (int, decision) Hashtbl.t;
    generation : unit -> int;
    max_entries : int;
    mu : Mutex.t;
    mutable gen_seen : int;
    mutable hits : int;
    mutable misses : int;
    mutable invalidations : int;
  }

  let create ?(max_entries = 4096) ?(generation = fun () -> 0) () =
    {
      table = Hashtbl.create 64;
      generation;
      max_entries;
      mu = Mutex.create ();
      gen_seen = generation ();
      hits = 0;
      misses = 0;
      invalidations = 0;
    }

  let locked t f =
    Mutex.lock t.mu;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

  let revalidate t =
    let g = t.generation () in
    if g <> t.gen_seen then begin
      Hashtbl.reset t.table;
      t.gen_seen <- g;
      t.invalidations <- t.invalidations + 1
    end

  let lookup t key =
    locked t (fun () ->
        revalidate t;
        match Hashtbl.find_opt t.table key with
        | Some d ->
          t.hits <- t.hits + 1;
          Some d
        | None ->
          t.misses <- t.misses + 1;
          None)

  (* [if_generation] makes the store conditional: a verdict computed
     against DB generation [g] is dropped when the DB has moved on by
     store time — without the check, a helper domain racing [Db.add]
     could cache an old-DB verdict under the new generation and every
     later compile of that function would reuse it. The comparison runs
     under the mutex, so it cannot itself race [revalidate]. *)
  let store ?if_generation t key decision =
    locked t (fun () ->
        revalidate t;
        match if_generation with
        | Some g when g <> t.gen_seen -> ()
        | _ ->
          if Hashtbl.length t.table >= t.max_entries then Hashtbl.reset t.table;
          Hashtbl.replace t.table key decision)

  (* Eager drop, for push-driven invalidation: a remote verdict client
     that just observed a generation bump flushes immediately instead of
     waiting for the next lookup's [revalidate] to notice. *)
  let flush t =
    locked t (fun () ->
        t.gen_seen <- t.generation ();
        if Hashtbl.length t.table > 0 then begin
          Hashtbl.reset t.table;
          t.invalidations <- t.invalidations + 1
        end)

  let hits t = locked t (fun () -> t.hits)
  let misses t = locked t (fun () -> t.misses)
  let invalidations t = locked t (fun () -> t.invalidations)
  let length t = locked t (fun () -> Hashtbl.length t.table)
  let current_generation t = t.generation ()
end

type config = {
  baseline_threshold : int;
  ion_threshold : int;
  vulns : Vuln_config.t;
  analyzer : analyzer option;
  verify_passes : bool;
  max_bailouts : int;
  jit_enabled : bool;
  native : bool;
  obs : Obs.t option;
  policy_cache : Policy_cache.t option;
  compile_pool : Compile_queue.t option;
}

let default_config =
  {
    baseline_threshold = 8;
    ion_threshold = 32;
    vulns = Vuln_config.none;
    analyzer = None;
    verify_passes = false;
    max_bailouts = 8;
    jit_enabled = true;
    native = true;
    obs = None;
    policy_cache = None;
    compile_pool = None;
  }

type stats = {
  mutable nr_jit : int;
  mutable nr_disjit : int;
  mutable nr_nojit : int;
  mutable baseline_compiles : int;
  mutable ion_compiles : int;
  mutable bailouts : int;
  mutable deopts : int;
  mutable peephole_removed : int;  (* LIR instructions deleted post-regalloc *)
  mutable async_installs : int;
  mutable stale_results : int;
  mutable main_stall_seconds : float;
  mutable native_installs : int;  (* Ion installs backed by machine code *)
}

type tier =
  | Interpreted
  | Baseline
  | Ion
  | Blacklisted

(* A compile that finished on a helper domain, waiting in the mailbox for
   the main thread to install at the next function-entry safepoint. *)
type async_result =
  | A_install of {
      decision : decision option;  (* [None] = no analyzer configured *)
      lir : Lir.func option;  (* [None] when the verdict forbids JIT *)
      traced : bool;  (* a snapshot-traced compile ran (cache miss) *)
      peephole : int;
    }
  | A_error of exn

type inflight = {
  job : Compile_queue.job;
  enq_gen : int;  (* DB generation at enqueue; moved = result is stale *)
  enq_time : float;
  anchor : int option;  (* trace id of the tier_up_request event: the
                           cross-domain parent of the compile spans and
                           the install event *)
}

type t = {
  vm : Vm.t;
  config : config;
  stats : stats;
  tiers : tier array;
  bailout_counts : int array;
  (* globals assigned anywhere by [store_global] bytecode: a function name
     in this set may be rebound at runtime, so it must not be inlined *)
  reassigned_globals : (string, unit) Hashtbl.t;
  mutable sentinel_installed : bool;
  (* ---- background-compilation state ----
     Helper domains push finished results into [results] and raise
     [results_ready]; the main thread polls the flag at every function
     entry (the safepoint) and installs. [async_inflight] is touched by
     the main thread only. *)
  (* each mailbox item carries its publish time, so the main thread can
     histogram the publish → safepoint-install latency *)
  results : (int * float * async_result) Queue.t;
  results_mu : Mutex.t;
  results_ready : bool Atomic.t;
  async_inflight : (int, inflight) Hashtbl.t;
  (* ---- native Ion tier ----
     Per-function installed machine code; [None] runs the LIR executor.
     [native_fallback] is the reason the backend is off for this engine
     ([config] / [arch] / [env]), fixed at create time — [None] = on. *)
  native_codes : Native.code option array;
  native_fallback : string option;
}

let compute_reassigned (program : Op.program) =
  let tbl = Hashtbl.create 16 in
  let scan (f : Op.func) =
    Array.iter
      (function
        | Op.Store_global name -> Hashtbl.replace tbl name ()
        | _ -> ())
      f.Op.code
  in
  Array.iter scan program.Op.funcs;
  scan program.Op.main;
  tbl

let vm t = t.vm
let stats t = t.stats
let realm t = t.vm.Vm.realm
let obs t = t.config.obs
let tier_of t idx = t.tiers.(idx)
let native_code_of t idx = t.native_codes.(idx)

let func_field t idx = ("func", Jsonx.String t.vm.Vm.program.Op.funcs.(idx).Op.name)

(* DB generation as seen through the policy cache; without a cache there
   is no generation source and async results are never considered stale. *)
let current_gen t =
  match t.config.policy_cache with
  | Some c -> Policy_cache.current_generation c
  | None -> 0

(* Main-thread time spent blocked on compilation: the whole compile in
   synchronous mode, only the [drain] waits in background mode. *)
let stalled t f =
  let t0 = Clock.now () in
  Fun.protect
    ~finally:(fun () ->
      t.stats.main_stall_seconds <-
        t.stats.main_stall_seconds +. Float.max 0.0 (Clock.now () -. t0);
      (* mirrored as a gauge so /healthz can threshold on it *)
      Obs.set_gauge t.config.obs "engine.main_stall_seconds"
        t.stats.main_stall_seconds)
    f

(* ---- compilation ---- *)

let executor_callbacks t : Executor.callbacks =
  {
    Executor.call_function = (fun idx args -> Vm.call_function t.vm idx args);
    lookup_global = (fun name -> Vm.load_global t.vm name);
    store_global = (fun name v -> Vm.store_global t.vm name v);
    declare_global = (fun name -> Vm.declare_global t.vm name);
  }

(* Inline resolver: name → freshly built callee MIR, for names statically
   bound to a function and never reassigned. The callee MIR uses the
   callee's own warm feedback. *)
let inline_resolver t ~caller_idx : string -> Jitbull_mir.Mir.t option =
 fun name ->
  if Hashtbl.mem t.reassigned_globals name then None
  else
    match Hashtbl.find_opt t.vm.Vm.globals name with
    | Some (Value.Function idx) when idx <> caller_idx ->
      let func = t.vm.Vm.program.Op.funcs.(idx) in
      Some (Builder.build func ~feedback_row:t.vm.Vm.feedback.(idx))
    | _ -> None

(* Enqueue-time snapshot of the inline resolver: the callees it would
   resolve, with their feedback rows deep-copied, so a helper domain
   never reads live VM state. Mirrors [inline_resolver]'s conditions. *)
let snapshot_resolver t ~caller_idx (func : Op.func) :
    string -> Jitbull_mir.Mir.t option =
  let tbl = Hashtbl.create 8 in
  Array.iter
    (function
      | Op.Load_global name
        when (not (Hashtbl.mem t.reassigned_globals name))
             && not (Hashtbl.mem tbl name) -> (
        match Hashtbl.find_opt t.vm.Vm.globals name with
        | Some (Value.Function cidx) when cidx <> caller_idx ->
          Hashtbl.add tbl name
            ( t.vm.Vm.program.Op.funcs.(cidx),
              Feedback.copy_row t.vm.Vm.feedback.(cidx) )
        | _ -> ())
      | _ -> ())
    func.Op.code;
  fun name ->
    match Hashtbl.find_opt tbl name with
    | Some (cf, row) -> Some (Builder.build cf ~feedback_row:row)
    | None -> None

(* The two optimizing compile bodies, parameterized over the feedback row
   and resolver so they can run on a helper domain against frozen
   enqueue-time snapshots. They mutate no engine state: the peephole
   count is returned for the main thread to account. *)

let compile_opt_with config (func : Op.func) ~feedback_row ~resolver ~disabled =
  let g = Builder.build func ~feedback_row in
  Pipeline.run_quiet config.vulns ?obs:config.obs ~inline_resolver:resolver
    ~disabled ~verify:config.verify_passes g;
  let lir = Lower.lower g in
  Regalloc.allocate lir;
  let removed = Jitbull_lir.Peephole.run lir in
  (lir, removed)

let compile_traced_with config (func : Op.func) ~feedback_row ~resolver ~disabled =
  let g = Builder.build func ~feedback_row in
  let trace =
    Pipeline.run config.vulns ?obs:config.obs ~inline_resolver:resolver
      ~disabled ~verify:config.verify_passes g
  in
  let lir = Lower.lower g in
  Regalloc.allocate lir;
  let removed = Jitbull_lir.Peephole.run lir in
  (lir, trace, removed)

let compile_lir t idx ~optimize ~disabled =
  let func = t.vm.Vm.program.Op.funcs.(idx) in
  if optimize then begin
    (* no snapshots: either no analyzer is installed (the paper's
       zero-overhead empty-DB case) or this is the post-verdict
       recompilation, which is not re-analyzed *)
    let lir, removed =
      compile_opt_with t.config func ~feedback_row:t.vm.Vm.feedback.(idx)
        ~resolver:(inline_resolver t ~caller_idx:idx)
        ~disabled
    in
    t.stats.peephole_removed <- t.stats.peephole_removed + removed;
    lir
  end
  else begin
    (* the baseline tier does not speculate: like Baseline's inline caches
       it handles every type dynamically, so it can never bail out. Only
       Ion consumes type feedback. *)
    let feedback_row =
      Array.init
        (Array.length t.vm.Vm.feedback.(idx))
        (fun _ -> Feedback.fresh_site ())
    in
    let g = Builder.build func ~feedback_row in
    (* baseline: only the mandatory structural passes, no optimization *)
    let ctx = Jitbull_passes.Pass.make_ctx t.config.vulns in
    let split = Jitbull_passes.Split_critical_edges.pass in
    split.Jitbull_passes.Pass.run ctx g;
    Jitbull_mir.Mir.renumber g;
    let lir = Lower.lower g in
    Regalloc.allocate lir;
    t.stats.peephole_removed <- t.stats.peephole_removed + Jitbull_lir.Peephole.run lir;
    lir
  end

(* The traced optimizing compile: builds MIR, runs the pipeline collecting
   snapshots, returns both. *)
let compile_traced t idx ~disabled =
  let func = t.vm.Vm.program.Op.funcs.(idx) in
  let lir, trace, removed =
    compile_traced_with t.config func ~feedback_row:t.vm.Vm.feedback.(idx)
      ~resolver:(inline_resolver t ~caller_idx:idx)
      ~disabled
  in
  t.stats.peephole_removed <- t.stats.peephole_removed + removed;
  (lir, trace)

(* Drop a queued-but-unclaimed compile job for [idx], if any. A job that
   already started runs to completion; its result is discarded as stale
   at the safepoint. Main thread only. *)
let cancel_inflight t idx =
  match t.config.compile_pool with
  | None -> ()
  | Some pool -> (
    match Hashtbl.find_opt t.async_inflight idx with
    | Some info when Compile_queue.cancel pool info.job ->
      Hashtbl.remove t.async_inflight idx;
      Obs.incr t.config.obs "compile.cancelled"
    | _ -> ())

(* Drop the machine code backing function [idx], if any. The unmap is
   deferred by {!Native.release} while recursive native activations are
   still on the stack. *)
let release_native t idx =
  match t.native_codes.(idx) with
  | Some code ->
    t.native_codes.(idx) <- None;
    Native.release code
  | None -> ()

(* [install ~tier_native:true] backs the dispatch entry with generated
   x86-64 code when the backend is on; the LIR executor remains the
   automatic fallback (and the baseline tier, which never asks). Emission
   happens here — on the main thread, strictly after the go/no-go verdict
   admitted the compile — so a Forbid never maps a code page. *)
let install ?(tier_native = false) t idx (lir : Lir.func) =
  let cb = executor_callbacks t in
  let realm = t.vm.Vm.realm in
  let obs = t.config.obs in
  release_native t idx;
  let native_code =
    if not tier_native then None
    else
      match t.native_fallback with
      | Some cause ->
        Obs.incr obs ("native.fallback_total." ^ cause);
        None
      | None ->
        let code = Obs.time obs "native.emit" (fun () -> Native.compile lir) in
        t.stats.native_installs <- t.stats.native_installs + 1;
        t.native_codes.(idx) <- Some code;
        Obs.incr obs "native.compiled_funcs";
        Obs.add obs "native.code_bytes" (Native.code_size code);
        Some code
  in
  let exec =
    match native_code with
    | None -> fun args -> Executor.run lir realm cb args
    | Some code -> (
      match obs with
      | None -> fun args -> Native.run code realm cb args
      | Some _ ->
        (* flush per-call exit-counter deltas (return/hostop/bailout/test)
           into the metric registry; bailouts propagate through finally *)
        fun args ->
          let b = Native.exits code in
          Fun.protect
            ~finally:(fun () ->
              let a = Native.exits code in
              let d name v0 v1 = if v1 > v0 then Obs.add obs name (v1 - v0) in
              d "native.exits_total.return" b.Native.t_return a.Native.t_return;
              d "native.exits_total.hostop" b.Native.t_hostop a.Native.t_hostop;
              d "native.exits_total.bailout" b.Native.t_bailout a.Native.t_bailout;
              d "native.exits_total.test" b.Native.t_test a.Native.t_test)
            (fun () -> Native.run code realm cb args))
  in
  let entry args =
    try exec args
    with Lir.Bailout reason ->
      Log.debug (fun m -> m "bailout in %s: %s" lir.Lir.name reason);
      t.stats.bailouts <- t.stats.bailouts + 1;
      t.bailout_counts.(idx) <- t.bailout_counts.(idx) + 1;
      Obs.incr t.config.obs "engine.bailouts";
      Obs.event t.config.obs "bailout"
        ~fields:[ func_field t idx; ("reason", Jsonx.String reason) ];
      if t.bailout_counts.(idx) > t.config.max_bailouts then begin
        (* deoptimize for good: drop the compiled code *)
        Log.info (fun m -> m "deopt: blacklisting %s after %d bailouts" lir.Lir.name
                     t.bailout_counts.(idx));
        t.vm.Vm.dispatch.(idx) <- None;
        t.tiers.(idx) <- Blacklisted;
        release_native t idx;
        cancel_inflight t idx;
        t.stats.deopts <- t.stats.deopts + 1;
        Obs.incr t.config.obs "engine.deopts";
        Obs.event t.config.obs "deopt"
          ~fields:[ func_field t idx; ("bailouts", Jsonx.Int t.bailout_counts.(idx)) ]
      end;
      (* replay from function entry in the interpreter tier *)
      Vm.interpret t.vm ~func_index:idx t.vm.Vm.program.Op.funcs.(idx) args
  in
  t.vm.Vm.dispatch.(idx) <- Some entry

let ensure_sentinel t =
  if not t.sentinel_installed then begin
    ignore (Heap.alloc_sentinel t.vm.Vm.realm.Realm.heap);
    t.sentinel_installed <- true
  end

let tier_up t idx tier_name =
  Obs.incr t.config.obs ("engine.tier_up." ^ tier_name);
  Obs.event t.config.obs "tier_up"
    ~fields:[ func_field t idx; ("tier", Jsonx.String tier_name) ]

(* ---- policy-cache keys ----

   The traced Ion compile is a function of the bytecode, the function's
   type-feedback row, and (through the inline resolver) the bytecode and
   feedback of every statically bound callee it loads — so the cache key
   hashes all three. Feedback is included deliberately: a re-JIT after a
   bailout sees different feedback, gets a different key, and is
   re-analyzed rather than served a stale verdict. *)

let hash_mix h x = (h * 0x01000193) lxor x [@@inline]

let func_code_hash (f : Op.func) =
  Array.fold_left (fun h op -> hash_mix h (Hashtbl.hash op)) 0x811C9DC5 f.Op.code

let feedback_hash row =
  Array.fold_left (fun h site -> hash_mix h (Hashtbl.hash site)) 17 row

let policy_key t idx =
  let func = t.vm.Vm.program.Op.funcs.(idx) in
  let h =
    ref (hash_mix (func_code_hash func) (feedback_hash t.vm.Vm.feedback.(idx)))
  in
  (* depth-1 inline closure: the callees [inline_resolver] would build MIR
     for, hashed with their own feedback *)
  Array.iter
    (function
      | Op.Load_global name when not (Hashtbl.mem t.reassigned_globals name) -> (
        match Hashtbl.find_opt t.vm.Vm.globals name with
        | Some (Value.Function cidx) when cidx <> idx ->
          let cf = t.vm.Vm.program.Op.funcs.(cidx) in
          h :=
            hash_mix
              (hash_mix !h (func_code_hash cf))
              (feedback_hash t.vm.Vm.feedback.(cidx))
        | _ -> ())
      | _ -> ())
    func.Op.code;
  !h

(* On a policy-cache hit the analyzer never runs, so the engine itself
   appends the audit record: the verdict is replayed with no fresh match
   evidence (Thr/Ratio and DB size are the analyzer's business — 0 here),
   against the generation the cache revalidated on. *)
let audit_cache_hit t idx ctx d =
  match t.config.obs with
  | None -> ()
  | Some o ->
    let verdict =
      match d with
      | Allow -> Jitbull_obs.Audit.Allow
      | Disable_passes ps -> Jitbull_obs.Audit.Disable ps
      | Forbid_jit -> Jitbull_obs.Audit.Forbid
    in
    ignore
      (Jitbull_obs.Audit.append (Obs.audit o)
         ~func_name:t.vm.Vm.program.Op.funcs.(idx).Op.name ~func_index:idx
         ~bytecode_hash:ctx.cc_bytecode_hash ~feedback_hash:ctx.cc_feedback_hash
         ~verdict ~matches:[] ~thr:0 ~ratio:0.0 ~prefilter_candidates:0
         ~prefilter_hits:0 ~db_generation:(current_gen t) ~db_size:0
         ~source:Jitbull_obs.Audit.Cache_hit ~duration:0.0 ())

let blacklist t idx reason =
  t.stats.nr_nojit <- t.stats.nr_nojit + 1;
  t.vm.Vm.dispatch.(idx) <- None;
  t.tiers.(idx) <- Blacklisted;
  release_native t idx;
  cancel_inflight t idx;
  Obs.incr t.config.obs "engine.blacklisted";
  Obs.event t.config.obs "blacklist"
    ~fields:[ func_field t idx; ("reason", Jsonx.String reason) ]

(* Go/no-go verdict kind counters: one increment per decision applied
   (fresh or cached, sync or async) — a cheap engine-event signal the
   fuzzer's coverage map consumes alongside bailout/blacklist events. *)
let record_verdict obs = function
  | Allow -> Obs.incr obs "engine.verdict.allow"
  | Disable_passes _ -> Obs.incr obs "engine.verdict.disable"
  | Forbid_jit -> Obs.incr obs "engine.verdict.forbid"

let ion_compile t idx =
  ensure_sentinel t;
  t.stats.nr_jit <- t.stats.nr_jit + 1;
  t.stats.ion_compiles <- t.stats.ion_compiles + 1;
  Log.debug (fun m ->
      m "ion-compiling %s (invocations reached %d)"
        t.vm.Vm.program.Op.funcs.(idx).Op.name t.config.ion_threshold);
  let obs = t.config.obs in
  match t.config.analyzer with
  | None ->
    let lir =
      Obs.span obs ~fields:[ func_field t idx ] "compile_ion" (fun () ->
          compile_lir t idx ~optimize:true ~disabled:[])
    in
    install ~tier_native:true t idx lir;
    t.tiers.(idx) <- Ion;
    tier_up t idx "ion"
  | Some analyze -> (
    let func = t.vm.Vm.program.Op.funcs.(idx) in
    let name = func.Op.name in
    let ctx =
      {
        cc_bytecode_hash = func_code_hash func;
        cc_feedback_hash = feedback_hash t.vm.Vm.feedback.(idx);
      }
    in
    let cache = t.config.policy_cache in
    let key = match cache with Some _ -> policy_key t idx | None -> 0 in
    let cached =
      match cache with Some c -> Policy_cache.lookup c key | None -> None
    in
    (match (cache, cached) with
    | Some _, Some d ->
      Obs.incr obs "policy.cache_hits";
      Obs.event obs "policy_cache_hit" ~fields:[ func_field t idx ];
      audit_cache_hit t idx ctx d
    | Some _, None -> Obs.incr obs "policy.cache_misses"
    | None, _ -> ());
    (* On a cache hit [precompiled] stays [None]: the traced compile, the
       Δ extraction and the DB comparison are all skipped (and so is the
       monitor record — only fresh analyses are recorded; the audit trail
       gets a [Cache_hit] record instead). *)
    let decision, precompiled =
      match cached with
      | Some d -> (d, None)
      | None ->
        let g0 = current_gen t in
        let lir, trace =
          Obs.span obs
            ~fields:[ func_field t idx; ("traced", Jsonx.Bool true) ]
            "compile_ion"
            (fun () -> compile_traced t idx ~disabled:[])
        in
        let d = analyze ~ctx ~func_index:idx ~name ~trace in
        (match cache with
        | Some c -> Policy_cache.store ~if_generation:g0 c key d
        | None -> ());
        (d, Some lir)
    in
    record_verdict obs decision;
    match decision with
    | Allow ->
      let lir =
        match precompiled with
        | Some lir -> lir
        | None ->
          Obs.span obs
            ~fields:[ func_field t idx; ("cached_verdict", Jsonx.Bool true) ]
            "compile_ion"
            (fun () -> compile_lir t idx ~optimize:true ~disabled:[])
      in
      install ~tier_native:true t idx lir;
      t.tiers.(idx) <- Ion;
      tier_up t idx "ion"
    | Disable_passes passes when List.for_all Pipeline.can_disable passes ->
      Log.info (fun m ->
          m "JITBULL: recompiling %s without dangerous passes [%s]" name
            (String.concat ", " passes));
      (* from a cached verdict this is the first (and only) compile of the
         function, not a recompilation after a traced compile *)
      (match precompiled with
      | Some _ ->
        t.stats.ion_compiles <- t.stats.ion_compiles + 1;
        Obs.incr obs "engine.recompiles"
      | None -> ());
      t.stats.nr_disjit <- t.stats.nr_disjit + 1;
      let lir =
        Obs.span obs
          ~fields:
            [
              func_field t idx;
              ("disabled", Jsonx.List (List.map (fun p -> Jsonx.String p) passes));
            ]
          "compile_ion"
          (fun () -> compile_lir t idx ~optimize:true ~disabled:passes)
      in
      install ~tier_native:true t idx lir;
      t.tiers.(idx) <- Ion;
      tier_up t idx "ion"
    | Disable_passes passes ->
      (* scenario 3: a mandatory pass matched — no JIT for this function *)
      Log.info (fun m ->
          m "JITBULL: mandatory pass among [%s] matched — no JIT for %s"
            (String.concat ", " passes) name);
      blacklist t idx "mandatory_pass"
    | Forbid_jit ->
      Log.info (fun m -> m "JITBULL: JIT forbidden for %s" name);
      blacklist t idx "forbid_jit")

let baseline_compile t idx =
  ensure_sentinel t;
  Log.debug (fun m -> m "baseline-compiling %s" t.vm.Vm.program.Op.funcs.(idx).Op.name);
  t.stats.baseline_compiles <- t.stats.baseline_compiles + 1;
  let lir =
    Obs.span t.config.obs ~fields:[ func_field t idx ] "compile_baseline" (fun () ->
        compile_lir t idx ~optimize:false ~disabled:[])
  in
  install t idx lir;
  t.tiers.(idx) <- Baseline;
  tier_up t idx "baseline"

(* ---- background (off-main-thread) Ion compilation ---- *)

(* Helper-domain side: push a finished compile into the mailbox and raise
   the flag the safepoint polls. *)
let publish t idx result =
  Mutex.lock t.results_mu;
  Queue.push (idx, Clock.now (), result) t.results;
  Mutex.unlock t.results_mu;
  Atomic.set t.results_ready true

let set_queue_depth t pool =
  Obs.set_gauge t.config.obs "compile.queue_depth"
    (float_of_int (Compile_queue.pending pool))

(* Main-thread side: install one finished background compile, replicating
   the synchronous [ion_compile] accounting exactly. A result is stale —
   counted and dropped — when the function was blacklisted mid-compile or
   the DNA DB generation moved since enqueue (the verdict may no longer
   hold; the next invocation re-enqueues against the new generation). *)
let apply_async t idx (info : inflight) ~published result =
  let obs = t.config.obs in
  let now = Clock.now () in
  (* enqueue → install (the whole background round trip) and
     publish → install (how long a finished compile waited for the main
     thread to reach a safepoint) *)
  Obs.observe obs ~bounds:Jitbull_obs.Metrics.queue_latency_bounds
    "compile.queued_seconds"
    (Float.max 0.0 (now -. info.enq_time));
  Obs.observe obs ~bounds:Jitbull_obs.Metrics.queue_latency_bounds
    "compile.install_latency_seconds"
    (Float.max 0.0 (now -. published));
  let stale why =
    t.stats.stale_results <- t.stats.stale_results + 1;
    Obs.incr obs "engine.stale_results";
    Obs.event obs "stale_result" ?parent:info.anchor
      ~fields:[ func_field t idx; ("why", Jsonx.String why) ]
  in
  if t.tiers.(idx) = Blacklisted then stale "blacklisted"
  else if info.enq_gen <> current_gen t then stale "generation_moved"
  else
    match result with
    | A_error e -> raise e
    | A_install { decision; lir; traced; peephole } -> (
      t.stats.peephole_removed <- t.stats.peephole_removed + peephole;
      t.stats.nr_jit <- t.stats.nr_jit + 1;
      t.stats.ion_compiles <- t.stats.ion_compiles + 1;
      let name = t.vm.Vm.program.Op.funcs.(idx).Op.name in
      let install_ion lir =
        install ~tier_native:true t idx lir;
        t.tiers.(idx) <- Ion;
        tier_up t idx "ion";
        t.stats.async_installs <- t.stats.async_installs + 1;
        Obs.incr obs "engine.async_installs";
        Obs.event obs "async_install" ?parent:info.anchor
          ~fields:[ func_field t idx ]
      in
      match (decision, lir) with
      | (None | Some Allow), Some lir -> install_ion lir
      | Some (Disable_passes passes), Some lir ->
        Log.info (fun m ->
            m "JITBULL: recompiling %s without dangerous passes [%s]" name
              (String.concat ", " passes));
        if traced then begin
          t.stats.ion_compiles <- t.stats.ion_compiles + 1;
          Obs.incr obs "engine.recompiles"
        end;
        t.stats.nr_disjit <- t.stats.nr_disjit + 1;
        install_ion lir
      | Some (Disable_passes passes), None ->
        Log.info (fun m ->
            m "JITBULL: mandatory pass among [%s] matched — no JIT for %s"
              (String.concat ", " passes) name);
        blacklist t idx "mandatory_pass"
      | Some Forbid_jit, _ ->
        Log.info (fun m -> m "JITBULL: JIT forbidden for %s" name);
        blacklist t idx "forbid_jit"
      | (None | Some Allow), None -> assert false)

(* The safepoint: called at every function entry (and from [drain]).
   Clears the flag before draining so a publish racing the drain leaves
   the flag set for the next poll. *)
let poll t =
  if Atomic.get t.results_ready then begin
    Atomic.set t.results_ready false;
    Mutex.lock t.results_mu;
    let batch = ref [] in
    while not (Queue.is_empty t.results) do
      batch := Queue.pop t.results :: !batch
    done;
    Mutex.unlock t.results_mu;
    List.iter
      (fun (idx, published, result) ->
        match Hashtbl.find_opt t.async_inflight idx with
        | Some info ->
          Hashtbl.remove t.async_inflight idx;
          apply_async t idx info ~published result
        | None ->
          (* the request was cancelled after the worker claimed it *)
          t.stats.stale_results <- t.stats.stale_results + 1;
          Obs.incr t.config.obs "engine.stale_results")
      (List.rev !batch);
    match t.config.compile_pool with
    | Some pool -> set_queue_depth t pool
    | None -> ()
  end

(* Enqueue an Ion compile for [idx] on the helper pool. Everything the
   compile reads — the function's feedback row and the inline-resolver
   closure over its callees — is snapshotted here, on the main thread;
   the helper domain touches no live VM state. Cached Forbid/mandatory
   verdicts apply immediately (nothing to compile); cached Allow/Disable
   verdicts still compile, just without the snapshot trace. When the
   queue is full the engine falls back to a synchronous compile rather
   than dropping the tier-up. *)
let enqueue_ion t pool idx =
  ensure_sentinel t;
  let obs = t.config.obs in
  let func = t.vm.Vm.program.Op.funcs.(idx) in
  let name = func.Op.name in
  let config = t.config in
  (* The cross-domain trace edge: an anchored point event stands for this
     tier-up request on the main thread; the helper-domain queue-wait and
     compile spans, and the eventual install/stale event at the
     safepoint, all carry its id as their parent. *)
  let anchor = Obs.alloc_id obs in
  let enq_rel = Obs.now obs in
  Obs.event obs ?id:anchor ~fields:[ func_field t idx ] "tier_up_request";
  (* Wrap the worker body: measure time spent waiting in the queue (a
     synthesized [queue_wait] span — its start was stamped here, on the
     main thread), then run the compile under a [compile_task] span so
     every span the helper opens ([compile_ion], [policy_decide],
     [pass.<name>], …) parents back to the anchor through it. *)
  let in_task body () =
    let wait = Float.max 0.0 (Obs.now obs -. enq_rel) in
    Obs.observe obs ~bounds:Jitbull_obs.Metrics.queue_latency_bounds
      "compile.queue_wait_seconds" wait;
    Obs.record_span obs ?parent:anchor ~ts:enq_rel ~dur:wait
      ~fields:[ ("func", Jsonx.String name) ]
      "queue_wait";
    Obs.span obs ?parent:anchor
      ~fields:[ ("func", Jsonx.String name) ]
      "compile_task" body
  in
  let submit work =
    match Compile_queue.try_submit pool work with
    | Some job ->
      Hashtbl.replace t.async_inflight idx
        { job; enq_gen = current_gen t; enq_time = Clock.now (); anchor };
      Obs.incr obs "compile.enqueued";
      set_queue_depth t pool
    | None ->
      Obs.incr obs "compile.queue_full";
      stalled t (fun () -> ion_compile t idx)
  in
  match t.config.analyzer with
  | None ->
    let feedback_row = Feedback.copy_row t.vm.Vm.feedback.(idx) in
    let resolver = snapshot_resolver t ~caller_idx:idx func in
    submit
      (in_task (fun () ->
           let result =
             try
               let lir, removed =
                 Obs.span obs
                   ~fields:[ ("func", Jsonx.String name); ("async", Jsonx.Bool true) ]
                   "compile_ion"
                   (fun () ->
                     compile_opt_with config func ~feedback_row ~resolver ~disabled:[])
               in
               A_install
                 { decision = None; lir = Some lir; traced = false; peephole = removed }
             with e -> A_error e
           in
           publish t idx result))
  | Some analyze -> (
    let cache = t.config.policy_cache in
    let key = match cache with Some _ -> policy_key t idx | None -> 0 in
    let cached =
      match cache with Some c -> Policy_cache.lookup c key | None -> None
    in
    (match (cache, cached) with
    | Some _, Some d ->
      Obs.incr obs "policy.cache_hits";
      Obs.event obs "policy_cache_hit" ~fields:[ func_field t idx ];
      audit_cache_hit t idx
        {
          cc_bytecode_hash = func_code_hash func;
          cc_feedback_hash = feedback_hash t.vm.Vm.feedback.(idx);
        }
        d
    | Some _, None -> Obs.incr obs "policy.cache_misses"
    | None, _ -> ());
    match cached with
    | Some Forbid_jit ->
      t.stats.nr_jit <- t.stats.nr_jit + 1;
      t.stats.ion_compiles <- t.stats.ion_compiles + 1;
      record_verdict obs Forbid_jit;
      Log.info (fun m -> m "JITBULL: JIT forbidden for %s" name);
      blacklist t idx "forbid_jit"
    | Some (Disable_passes passes)
      when not (List.for_all Pipeline.can_disable passes) ->
      t.stats.nr_jit <- t.stats.nr_jit + 1;
      t.stats.ion_compiles <- t.stats.ion_compiles + 1;
      record_verdict obs (Disable_passes passes);
      Log.info (fun m ->
          m "JITBULL: mandatory pass among [%s] matched — no JIT for %s"
            (String.concat ", " passes) name);
      blacklist t idx "mandatory_pass"
    | cached ->
      (* [None], or a cached Allow / disableable Disable_passes *)
      (match cached with Some d -> record_verdict obs d | None -> ());
      let feedback_row = Feedback.copy_row t.vm.Vm.feedback.(idx) in
      let resolver = snapshot_resolver t ~caller_idx:idx func in
      let g0 = current_gen t in
      submit
        (in_task (fun () ->
          let result =
            try
              match cached with
              | Some d ->
                let disabled =
                  match d with Disable_passes ps -> ps | _ -> []
                in
                let lir, removed =
                  Obs.span obs
                    ~fields:
                      [
                        ("func", Jsonx.String name);
                        ("async", Jsonx.Bool true);
                        ("cached_verdict", Jsonx.Bool true);
                      ]
                    "compile_ion"
                    (fun () ->
                      compile_opt_with config func ~feedback_row ~resolver ~disabled)
                in
                A_install
                  { decision = Some d; lir = Some lir; traced = false; peephole = removed }
              | None -> (
                let lir, trace, removed =
                  Obs.span obs
                    ~fields:
                      [
                        ("func", Jsonx.String name);
                        ("async", Jsonx.Bool true);
                        ("traced", Jsonx.Bool true);
                      ]
                    "compile_ion"
                    (fun () ->
                      compile_traced_with config func ~feedback_row ~resolver
                        ~disabled:[])
                in
                let ctx =
                  {
                    cc_bytecode_hash = func_code_hash func;
                    cc_feedback_hash = feedback_hash feedback_row;
                  }
                in
                let d = analyze ~ctx ~func_index:idx ~name ~trace in
                (match cache with
                | Some c -> Policy_cache.store ~if_generation:g0 c key d
                | None -> ());
                record_verdict obs d;
                match d with
                | Allow ->
                  A_install
                    { decision = Some d; lir = Some lir; traced = true; peephole = removed }
                | Disable_passes passes when List.for_all Pipeline.can_disable passes ->
                  let lir2, removed2 =
                    Obs.span obs
                      ~fields:
                        [
                          ("func", Jsonx.String name);
                          ("async", Jsonx.Bool true);
                          ( "disabled",
                            Jsonx.List (List.map (fun p -> Jsonx.String p) passes) );
                        ]
                      "compile_ion"
                      (fun () ->
                        compile_opt_with config func ~feedback_row ~resolver
                          ~disabled:passes)
                  in
                  A_install
                    {
                      decision = Some d;
                      lir = Some lir2;
                      traced = true;
                      peephole = removed + removed2;
                    }
                | Disable_passes _ | Forbid_jit ->
                  A_install
                    { decision = Some d; lir = None; traced = true; peephole = removed })
            with e -> A_error e
          in
          publish t idx result)))

(* Tier-up to Ion: synchronous without a pool; with a pool, make sure the
   function stops interpreting (so its feedback row is frozen — the
   baseline tier neither speculates nor collects feedback), then enqueue.
   A function with a compile already in flight just keeps running
   baseline code. *)
let request_ion t idx =
  match t.config.compile_pool with
  | None -> stalled t (fun () -> ion_compile t idx)
  | Some pool ->
    if not (Hashtbl.mem t.async_inflight idx) then begin
      if t.tiers.(idx) = Interpreted then baseline_compile t idx;
      enqueue_ion t pool idx
    end

let drain t =
  match t.config.compile_pool with
  | None -> ()
  | Some pool ->
    if Hashtbl.length t.async_inflight > 0 then
      stalled t (fun () ->
          while Hashtbl.length t.async_inflight > 0 do
            Compile_queue.wait_idle pool;
            poll t
          done)

let on_invoke t (_vm : Vm.t) idx count =
  if t.config.jit_enabled then begin
    (* safepoint: install any background compile that finished *)
    poll t;
    match t.tiers.(idx) with
    | Blacklisted | Ion -> ()
    | Interpreted ->
      if count >= t.config.ion_threshold then request_ion t idx
      else if count >= t.config.baseline_threshold then baseline_compile t idx
    | Baseline -> if count >= t.config.ion_threshold then request_ion t idx
  end

let create ?realm config (program : Op.program) =
  let vm = Vm.create ?realm program in
  let n = Array.length program.Op.funcs in
  let t =
    {
      vm;
      config;
      stats =
        {
          nr_jit = 0;
          nr_disjit = 0;
          nr_nojit = 0;
          baseline_compiles = 0;
          ion_compiles = 0;
          bailouts = 0;
          deopts = 0;
          peephole_removed = 0;
          async_installs = 0;
          stale_results = 0;
          main_stall_seconds = 0.0;
          native_installs = 0;
        };
      tiers = Array.make n Interpreted;
      bailout_counts = Array.make n 0;
      reassigned_globals = compute_reassigned program;
      sentinel_installed = false;
      results = Queue.create ();
      results_mu = Mutex.create ();
      results_ready = Atomic.make false;
      async_inflight = Hashtbl.create 8;
      native_codes = Array.make n None;
      native_fallback =
        (if not config.native then Some "config"
         else if not (Native.available ()) then Some "arch"
         else if not (Native.enabled ()) then Some "env"
         else None);
    }
  in
  (match config.obs with
  | Some o -> Vm.install_obs vm o
  | None -> ());
  vm.Vm.on_invoke <- Some (fun vm idx count -> on_invoke t vm idx count);
  t

let run t =
  let out = Vm.run t.vm in
  drain t;
  out

let run_source ?realm config source =
  let program = Parser.parse source in
  let bc = Compiler.compile program in
  let t = create ?realm config bc in
  let out = run t in
  (out, t)
