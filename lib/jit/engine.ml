module Value = Jitbull_runtime.Value
module Realm = Jitbull_runtime.Realm
module Heap = Jitbull_runtime.Heap
module Vm = Jitbull_bytecode.Vm
module Op = Jitbull_bytecode.Op
module Compiler = Jitbull_bytecode.Compiler
module Parser = Jitbull_frontend.Parser
module Builder = Jitbull_mir.Builder
module Snapshot = Jitbull_mir.Snapshot
module Pipeline = Jitbull_passes.Pipeline
module Vuln_config = Jitbull_passes.Vuln_config
module Lir = Jitbull_lir.Lir
module Lower = Jitbull_lir.Lower
module Regalloc = Jitbull_lir.Regalloc
module Executor = Jitbull_lir.Executor
module Obs = Jitbull_obs.Obs
module Jsonx = Jitbull_obs.Jsonx

let log_src = Logs.Src.create "jitbull.engine" ~doc:"JIT engine tier-up and policy events"

module Log = (val Logs.src_log log_src : Logs.LOG)

type decision =
  | Allow
  | Disable_passes of string list
  | Forbid_jit

type analyzer =
  func_index:int -> name:string -> trace:(string * Snapshot.t) list -> decision

(* The policy-decision cache: verdicts keyed by a hash of everything the
   traced compile consumes (bytecode, type feedback, depth-1 inline
   callees), invalidated wholesale whenever the [generation] closure — the
   DNA database's mutation counter — moves. A hit skips the snapshot
   trace, the Δ extraction and the DB comparison entirely; a Forbid hit
   even skips the Ion compile. *)
module Policy_cache = struct
  type t = {
    table : (int, decision) Hashtbl.t;
    generation : unit -> int;
    max_entries : int;
    mutable gen_seen : int;
    mutable hits : int;
    mutable misses : int;
    mutable invalidations : int;
  }

  let create ?(max_entries = 4096) ?(generation = fun () -> 0) () =
    {
      table = Hashtbl.create 64;
      generation;
      max_entries;
      gen_seen = generation ();
      hits = 0;
      misses = 0;
      invalidations = 0;
    }

  let revalidate t =
    let g = t.generation () in
    if g <> t.gen_seen then begin
      Hashtbl.reset t.table;
      t.gen_seen <- g;
      t.invalidations <- t.invalidations + 1
    end

  let lookup t key =
    revalidate t;
    match Hashtbl.find_opt t.table key with
    | Some d ->
      t.hits <- t.hits + 1;
      Some d
    | None ->
      t.misses <- t.misses + 1;
      None

  let store t key decision =
    revalidate t;
    if Hashtbl.length t.table >= t.max_entries then Hashtbl.reset t.table;
    Hashtbl.replace t.table key decision

  let hits t = t.hits
  let misses t = t.misses
  let invalidations t = t.invalidations
  let length t = Hashtbl.length t.table
end

type config = {
  baseline_threshold : int;
  ion_threshold : int;
  vulns : Vuln_config.t;
  analyzer : analyzer option;
  verify_passes : bool;
  max_bailouts : int;
  jit_enabled : bool;
  obs : Obs.t option;
  policy_cache : Policy_cache.t option;
}

let default_config =
  {
    baseline_threshold = 8;
    ion_threshold = 32;
    vulns = Vuln_config.none;
    analyzer = None;
    verify_passes = false;
    max_bailouts = 8;
    jit_enabled = true;
    obs = None;
    policy_cache = None;
  }

type stats = {
  mutable nr_jit : int;
  mutable nr_disjit : int;
  mutable nr_nojit : int;
  mutable baseline_compiles : int;
  mutable ion_compiles : int;
  mutable bailouts : int;
  mutable deopts : int;
  mutable peephole_removed : int;  (* LIR instructions deleted post-regalloc *)
}

type tier =
  | Interpreted
  | Baseline
  | Ion
  | Blacklisted

type t = {
  vm : Vm.t;
  config : config;
  stats : stats;
  tiers : tier array;
  bailout_counts : int array;
  (* globals assigned anywhere by [store_global] bytecode: a function name
     in this set may be rebound at runtime, so it must not be inlined *)
  reassigned_globals : (string, unit) Hashtbl.t;
  mutable sentinel_installed : bool;
}

let compute_reassigned (program : Op.program) =
  let tbl = Hashtbl.create 16 in
  let scan (f : Op.func) =
    Array.iter
      (function
        | Op.Store_global name -> Hashtbl.replace tbl name ()
        | _ -> ())
      f.Op.code
  in
  Array.iter scan program.Op.funcs;
  scan program.Op.main;
  tbl

let vm t = t.vm
let stats t = t.stats
let realm t = t.vm.Vm.realm
let obs t = t.config.obs

let func_field t idx = ("func", Jsonx.String t.vm.Vm.program.Op.funcs.(idx).Op.name)

(* ---- compilation ---- *)

let executor_callbacks t : Executor.callbacks =
  {
    Executor.call_function = (fun idx args -> Vm.call_function t.vm idx args);
    lookup_global = (fun name -> Vm.load_global t.vm name);
    store_global = (fun name v -> Vm.store_global t.vm name v);
    declare_global = (fun name -> Vm.declare_global t.vm name);
  }

(* Inline resolver: name → freshly built callee MIR, for names statically
   bound to a function and never reassigned. The callee MIR uses the
   callee's own warm feedback. *)
let inline_resolver t ~caller_idx : string -> Jitbull_mir.Mir.t option =
 fun name ->
  if Hashtbl.mem t.reassigned_globals name then None
  else
    match Hashtbl.find_opt t.vm.Vm.globals name with
    | Some (Value.Function idx) when idx <> caller_idx ->
      let func = t.vm.Vm.program.Op.funcs.(idx) in
      Some (Builder.build func ~feedback_row:t.vm.Vm.feedback.(idx))
    | _ -> None

let compile_lir t idx ~optimize ~disabled =
  let func = t.vm.Vm.program.Op.funcs.(idx) in
  let feedback_row =
    if optimize then t.vm.Vm.feedback.(idx)
    else
      (* the baseline tier does not speculate: like Baseline's inline
         caches it handles every type dynamically, so it can never bail
         out. Only Ion consumes type feedback. *)
      Array.init
        (Array.length t.vm.Vm.feedback.(idx))
        (fun _ -> Jitbull_bytecode.Feedback.fresh_site ())
  in
  let g = Builder.build func ~feedback_row in
  (if optimize then
     (* no snapshots: either no analyzer is installed (the paper's
        zero-overhead empty-DB case) or this is the post-verdict
        recompilation, which is not re-analyzed *)
     Pipeline.run_quiet t.config.vulns ?obs:t.config.obs
       ~inline_resolver:(inline_resolver t ~caller_idx:idx)
       ~disabled ~verify:t.config.verify_passes g
   else begin
     (* baseline: only the mandatory structural passes, no optimization *)
     let ctx = Jitbull_passes.Pass.make_ctx t.config.vulns in
     let split = Jitbull_passes.Split_critical_edges.pass in
     split.Jitbull_passes.Pass.run ctx g;
     Jitbull_mir.Mir.renumber g
   end);
  let lir = Lower.lower g in
  Regalloc.allocate lir;
  t.stats.peephole_removed <- t.stats.peephole_removed + Jitbull_lir.Peephole.run lir;
  lir

(* The traced optimizing compile: builds MIR, runs the pipeline collecting
   snapshots, returns both. *)
let compile_traced t idx ~disabled =
  let func = t.vm.Vm.program.Op.funcs.(idx) in
  let feedback_row = t.vm.Vm.feedback.(idx) in
  let g = Builder.build func ~feedback_row in
  let trace =
    Pipeline.run t.config.vulns ?obs:t.config.obs
      ~inline_resolver:(inline_resolver t ~caller_idx:idx)
      ~disabled ~verify:t.config.verify_passes g
  in
  let lir = Lower.lower g in
  Regalloc.allocate lir;
  t.stats.peephole_removed <- t.stats.peephole_removed + Jitbull_lir.Peephole.run lir;
  (lir, trace)

let install t idx (lir : Lir.func) =
  let cb = executor_callbacks t in
  let realm = t.vm.Vm.realm in
  let entry args =
    try Executor.run lir realm cb args
    with Lir.Bailout reason ->
      Log.debug (fun m -> m "bailout in %s: %s" lir.Lir.name reason);
      t.stats.bailouts <- t.stats.bailouts + 1;
      t.bailout_counts.(idx) <- t.bailout_counts.(idx) + 1;
      Obs.incr t.config.obs "engine.bailouts";
      Obs.event t.config.obs "bailout"
        ~fields:[ func_field t idx; ("reason", Jsonx.String reason) ];
      if t.bailout_counts.(idx) > t.config.max_bailouts then begin
        (* deoptimize for good: drop the compiled code *)
        Log.info (fun m -> m "deopt: blacklisting %s after %d bailouts" lir.Lir.name
                     t.bailout_counts.(idx));
        t.vm.Vm.dispatch.(idx) <- None;
        t.tiers.(idx) <- Blacklisted;
        t.stats.deopts <- t.stats.deopts + 1;
        Obs.incr t.config.obs "engine.deopts";
        Obs.event t.config.obs "deopt"
          ~fields:[ func_field t idx; ("bailouts", Jsonx.Int t.bailout_counts.(idx)) ]
      end;
      (* replay from function entry in the interpreter tier *)
      Vm.interpret t.vm ~func_index:idx t.vm.Vm.program.Op.funcs.(idx) args
  in
  t.vm.Vm.dispatch.(idx) <- Some entry

let ensure_sentinel t =
  if not t.sentinel_installed then begin
    ignore (Heap.alloc_sentinel t.vm.Vm.realm.Realm.heap);
    t.sentinel_installed <- true
  end

let tier_up t idx tier_name =
  Obs.incr t.config.obs ("engine.tier_up." ^ tier_name);
  Obs.event t.config.obs "tier_up"
    ~fields:[ func_field t idx; ("tier", Jsonx.String tier_name) ]

(* ---- policy-cache keys ----

   The traced Ion compile is a function of the bytecode, the function's
   type-feedback row, and (through the inline resolver) the bytecode and
   feedback of every statically bound callee it loads — so the cache key
   hashes all three. Feedback is included deliberately: a re-JIT after a
   bailout sees different feedback, gets a different key, and is
   re-analyzed rather than served a stale verdict. *)

let hash_mix h x = (h * 0x01000193) lxor x [@@inline]

let func_code_hash (f : Op.func) =
  Array.fold_left (fun h op -> hash_mix h (Hashtbl.hash op)) 0x811C9DC5 f.Op.code

let feedback_hash row =
  Array.fold_left (fun h site -> hash_mix h (Hashtbl.hash site)) 17 row

let policy_key t idx =
  let func = t.vm.Vm.program.Op.funcs.(idx) in
  let h =
    ref (hash_mix (func_code_hash func) (feedback_hash t.vm.Vm.feedback.(idx)))
  in
  (* depth-1 inline closure: the callees [inline_resolver] would build MIR
     for, hashed with their own feedback *)
  Array.iter
    (function
      | Op.Load_global name when not (Hashtbl.mem t.reassigned_globals name) -> (
        match Hashtbl.find_opt t.vm.Vm.globals name with
        | Some (Value.Function cidx) when cidx <> idx ->
          let cf = t.vm.Vm.program.Op.funcs.(cidx) in
          h :=
            hash_mix
              (hash_mix !h (func_code_hash cf))
              (feedback_hash t.vm.Vm.feedback.(cidx))
        | _ -> ())
      | _ -> ())
    func.Op.code;
  !h

let blacklist t idx reason =
  t.stats.nr_nojit <- t.stats.nr_nojit + 1;
  t.vm.Vm.dispatch.(idx) <- None;
  t.tiers.(idx) <- Blacklisted;
  Obs.incr t.config.obs "engine.blacklisted";
  Obs.event t.config.obs "blacklist"
    ~fields:[ func_field t idx; ("reason", Jsonx.String reason) ]

let ion_compile t idx =
  ensure_sentinel t;
  t.stats.nr_jit <- t.stats.nr_jit + 1;
  t.stats.ion_compiles <- t.stats.ion_compiles + 1;
  Log.debug (fun m ->
      m "ion-compiling %s (invocations reached %d)"
        t.vm.Vm.program.Op.funcs.(idx).Op.name t.config.ion_threshold);
  let obs = t.config.obs in
  match t.config.analyzer with
  | None ->
    let lir =
      Obs.span obs ~fields:[ func_field t idx ] "compile_ion" (fun () ->
          compile_lir t idx ~optimize:true ~disabled:[])
    in
    install t idx lir;
    t.tiers.(idx) <- Ion;
    tier_up t idx "ion"
  | Some analyze -> (
    let name = t.vm.Vm.program.Op.funcs.(idx).Op.name in
    let cache = t.config.policy_cache in
    let key = match cache with Some _ -> policy_key t idx | None -> 0 in
    let cached =
      match cache with Some c -> Policy_cache.lookup c key | None -> None
    in
    (match (cache, cached) with
    | Some _, Some _ ->
      Obs.incr obs "policy.cache_hits";
      Obs.event obs "policy_cache_hit" ~fields:[ func_field t idx ]
    | Some _, None -> Obs.incr obs "policy.cache_misses"
    | None, _ -> ());
    (* On a cache hit [precompiled] stays [None]: the traced compile, the
       Δ extraction and the DB comparison are all skipped (and so is the
       monitor record — only fresh analyses are recorded). *)
    let decision, precompiled =
      match cached with
      | Some d -> (d, None)
      | None ->
        let lir, trace =
          Obs.span obs
            ~fields:[ func_field t idx; ("traced", Jsonx.Bool true) ]
            "compile_ion"
            (fun () -> compile_traced t idx ~disabled:[])
        in
        let d = analyze ~func_index:idx ~name ~trace in
        (match cache with Some c -> Policy_cache.store c key d | None -> ());
        (d, Some lir)
    in
    match decision with
    | Allow ->
      let lir =
        match precompiled with
        | Some lir -> lir
        | None ->
          Obs.span obs
            ~fields:[ func_field t idx; ("cached_verdict", Jsonx.Bool true) ]
            "compile_ion"
            (fun () -> compile_lir t idx ~optimize:true ~disabled:[])
      in
      install t idx lir;
      t.tiers.(idx) <- Ion;
      tier_up t idx "ion"
    | Disable_passes passes when List.for_all Pipeline.can_disable passes ->
      Log.info (fun m ->
          m "JITBULL: recompiling %s without dangerous passes [%s]" name
            (String.concat ", " passes));
      (* from a cached verdict this is the first (and only) compile of the
         function, not a recompilation after a traced compile *)
      (match precompiled with
      | Some _ ->
        t.stats.ion_compiles <- t.stats.ion_compiles + 1;
        Obs.incr obs "engine.recompiles"
      | None -> ());
      t.stats.nr_disjit <- t.stats.nr_disjit + 1;
      let lir =
        Obs.span obs
          ~fields:
            [
              func_field t idx;
              ("disabled", Jsonx.List (List.map (fun p -> Jsonx.String p) passes));
            ]
          "compile_ion"
          (fun () -> compile_lir t idx ~optimize:true ~disabled:passes)
      in
      install t idx lir;
      t.tiers.(idx) <- Ion;
      tier_up t idx "ion"
    | Disable_passes passes ->
      (* scenario 3: a mandatory pass matched — no JIT for this function *)
      Log.info (fun m ->
          m "JITBULL: mandatory pass among [%s] matched — no JIT for %s"
            (String.concat ", " passes) name);
      blacklist t idx "mandatory_pass"
    | Forbid_jit ->
      Log.info (fun m -> m "JITBULL: JIT forbidden for %s" name);
      blacklist t idx "forbid_jit")

let baseline_compile t idx =
  ensure_sentinel t;
  Log.debug (fun m -> m "baseline-compiling %s" t.vm.Vm.program.Op.funcs.(idx).Op.name);
  t.stats.baseline_compiles <- t.stats.baseline_compiles + 1;
  let lir =
    Obs.span t.config.obs ~fields:[ func_field t idx ] "compile_baseline" (fun () ->
        compile_lir t idx ~optimize:false ~disabled:[])
  in
  install t idx lir;
  t.tiers.(idx) <- Baseline;
  tier_up t idx "baseline"

let on_invoke t (_vm : Vm.t) idx count =
  if t.config.jit_enabled then begin
    match t.tiers.(idx) with
    | Blacklisted | Ion -> ()
    | Interpreted ->
      if count >= t.config.ion_threshold then ion_compile t idx
      else if count >= t.config.baseline_threshold then baseline_compile t idx
    | Baseline -> if count >= t.config.ion_threshold then ion_compile t idx
  end

let create ?realm config (program : Op.program) =
  let vm = Vm.create ?realm program in
  let n = Array.length program.Op.funcs in
  let t =
    {
      vm;
      config;
      stats =
        {
          nr_jit = 0;
          nr_disjit = 0;
          nr_nojit = 0;
          baseline_compiles = 0;
          ion_compiles = 0;
          bailouts = 0;
          deopts = 0;
          peephole_removed = 0;
        };
      tiers = Array.make n Interpreted;
      bailout_counts = Array.make n 0;
      reassigned_globals = compute_reassigned program;
      sentinel_installed = false;
    }
  in
  (match config.obs with
  | Some o -> Vm.install_obs vm o
  | None -> ());
  vm.Vm.on_invoke <- Some (fun vm idx count -> on_invoke t vm idx count);
  t

let run t = Vm.run t.vm

let run_source ?realm config source =
  let program = Parser.parse source in
  let bc = Compiler.compile program in
  let t = create ?realm config bc in
  let out = run t in
  (out, t)
