(** The tiered execution engine: interpreter → baseline JIT → optimizing
    (Ion-like) JIT, mirroring Fig. 1 of the paper.

    - After [baseline_threshold] invocations (paper: 100; scaled default 8)
      a function is compiled without optimization (MIR built from feedback,
      mandatory passes only, lowered and register-allocated).
    - After [ion_threshold] invocations (paper: 1500; scaled default 32)
      the full 18-pass pipeline runs. If a JITBULL [analyzer] is installed,
      the per-pass IR snapshots are handed to it and its verdict drives the
      paper's go/no-go policy: [Allow] installs the code; [Disable_passes]
      triggers one recompilation with those passes off (the paper's
      [Recompile] flag) when all are disableable, else the function is
      blacklisted; [Forbid_jit] blacklists directly (no-JIT for that
      function only).
    - A failed guard raises a bailout; the engine re-executes the call in
      the interpreter tier and blacklists the function after
      [max_bailouts] (replay-from-entry deoptimization; see DESIGN.md for
      the fidelity note).

    With a [compile_pool] configured, the Ion tier-up runs off the main
    thread: the engine snapshots the compile inputs (feedback row, callee
    closure), enqueues a job on the helper-domain pool, and keeps
    executing baseline code; the finished [(code, verdict)] is installed
    at the next function-entry safepoint. See DESIGN.md §9 for the
    staleness rules and memory-model notes.

    The heap sentinel standing in for JIT code pointers is installed when
    the first function is JIT-compiled; the VM checks it on every transfer
    to compiled code. *)

module Value = Jitbull_runtime.Value

type decision =
  | Allow
  | Disable_passes of string list
  | Forbid_jit

(** What the engine knows about the compile a verdict is being asked
    for: hashes of the function's bytecode and of the type-feedback row
    the compile consumed (the enqueue-time snapshot in background mode).
    The analyzer records them in the audit trail so a decision can be
    tied to the exact program state it was made against. *)
type compile_ctx = {
  cc_bytecode_hash : int;
  cc_feedback_hash : int;
}

type analyzer =
  ctx:compile_ctx ->
  func_index:int ->
  name:string ->
  trace:(string * Jitbull_mir.Snapshot.t) list ->
  decision

(** The policy-decision cache: go/no-go verdicts memoized across Ion
    compiles (and across engines sharing one {!config}), keyed by a hash
    of the function's bytecode, its type-feedback row and the bytecode +
    feedback of its statically bound callees (the inline resolver's
    inputs). The [generation] closure — typically the DNA database's
    mutation counter — is consulted on every access; when it moves, the
    whole cache is dropped, so [Db.add]/[Db.remove_cve] invalidate
    previously cached verdicts.

    On a hit the engine skips the snapshot-traced compile, the Δ
    extraction and the DB comparison (a [Forbid_jit] hit skips compilation
    entirely) and applies the cached verdict directly; the analyzer is not
    called, so no monitor record is produced for that compile.
    [policy.cache_hits] / [policy.cache_misses] count effectiveness.

    All operations are domain-safe (internal mutex): helper compile
    domains look up and store verdicts concurrently with the main
    thread. *)
module Policy_cache : sig
  type t

  val create : ?max_entries:int -> ?generation:(unit -> int) -> unit -> t

  (** [lookup]/[store] are exposed for tests and tools; the engine drives
      them internally. Both revalidate against [generation] first.
      [store ~if_generation:g] drops the verdict when the generation has
      moved past [g] — helper domains pass the generation they computed
      the verdict against, so a verdict racing [Db.add] is never cached
      under the post-mutation generation. *)
  val lookup : t -> int -> decision option

  val store : ?if_generation:int -> t -> int -> decision -> unit

  (** [flush t] drops every cached verdict now and resyncs to the
      current generation — push-driven invalidation for remote clients
      that just observed a DB-generation bump (counted in
      {!invalidations} when anything was dropped). Lookups would notice
      the moved generation on their own; flushing closes the window in
      which a pre-bump verdict could still be served. *)
  val flush : t -> unit

  val hits : t -> int
  val misses : t -> int

  (** [invalidations t] — generation-change flushes observed. *)
  val invalidations : t -> int

  val length : t -> int

  (** The [generation] closure's current value (no lock; the closure is
      expected to be domain-safe itself). *)
  val current_generation : t -> int
end

type config = {
  baseline_threshold : int;
  ion_threshold : int;
  vulns : Jitbull_passes.Vuln_config.t;
  analyzer : analyzer option;
  verify_passes : bool;  (** run the MIR verifier after every pass *)
  max_bailouts : int;
  jit_enabled : bool;  (** [false] = the paper's "NoJIT" configuration *)
  native : bool;
      (** back Ion-tier installs with generated x86-64 machine code
          (default [true]). Ignored — with a [native.fallback_total]
          counter bump — when the host is not x86-64/POSIX or
          [JITBULL_NO_NATIVE] is set; the LIR executor then runs the
          code, byte-for-byte equivalently. The baseline tier always
          uses the executor. Evaluated once at {!create}. *)
  obs : Jitbull_obs.Obs.t option;
      (** telemetry: compile spans ([compile_baseline]/[compile_ion] plus
          per-pass spans in the pipeline), [tier_up]/[bailout]/[deopt]/
          [blacklist] events, and VM dispatch counters. [None] (default)
          records nothing and adds no measurable cost. *)
  policy_cache : Policy_cache.t option;
      (** memoized go/no-go verdicts; [None] (default) analyzes every Ion
          compile afresh. Only consulted when [analyzer] is present. *)
  compile_pool : Compile_queue.t option;
      (** helper-domain pool for off-main-thread Ion compilation; [None]
          (default) compiles synchronously at the tier-up site. The pool
          is owned by the caller (shareable across engines) and must be
          {!Compile_queue.shutdown} by it. Background mode also needs a
          [policy_cache] with a DB-generation closure for results to be
          invalidated by concurrent DB mutation — without one, finished
          compiles are never considered stale. *)
}

val default_config : config

type stats = {
  mutable nr_jit : int;  (** functions Ion-compiled (paper's Nr_JIT) *)
  mutable nr_disjit : int;  (** … with ≥1 pass disabled (Nr_DisJIT) *)
  mutable nr_nojit : int;  (** … forbidden from JIT (Nr_NoJIT) *)
  mutable baseline_compiles : int;
  mutable ion_compiles : int;  (** including recompilations *)
  mutable bailouts : int;
  mutable deopts : int;  (** functions blacklisted after repeated bailouts *)
  mutable peephole_removed : int;
      (** LIR instructions deleted by the post-allocation peephole *)
  mutable async_installs : int;
      (** background compiles installed at a safepoint *)
  mutable stale_results : int;
      (** background compiles discarded (function blacklisted or DB
          generation moved mid-compile) *)
  mutable main_stall_seconds : float;
      (** main-thread time blocked on compilation: the whole Ion compile
          in synchronous mode, only {!drain} waits in background mode *)
  mutable native_installs : int;
      (** Ion installs backed by native machine code (never counts a
          forbidden or blacklisted compile: emission is post-verdict) *)
}

type tier =
  | Interpreted
  | Baseline
  | Ion
  | Blacklisted

type t

val create : ?realm:Jitbull_runtime.Realm.t -> config -> Jitbull_bytecode.Op.program -> t

val vm : t -> Jitbull_bytecode.Vm.t

val stats : t -> stats

val realm : t -> Jitbull_runtime.Realm.t

val obs : t -> Jitbull_obs.Obs.t option

(** Current tier of function [idx]. With a compile pool, a function stays
    [Baseline] until its background compile is installed at a safepoint. *)
val tier_of : t -> int -> tier

(** Machine code currently installed for function [idx], when the native
    backend compiled it (exposed for tests asserting the code-page
    lifecycle). *)
val native_code_of : t -> int -> Jitbull_native.Native.code option

(** [drain t] blocks until every in-flight background compile has been
    published and applied (installed or discarded as stale). No-op
    without a [compile_pool]. {!run} drains before returning; tests
    driving {!Jitbull_bytecode.Vm.call_function} directly use this as a
    barrier. *)
val drain : t -> unit

(** [run t] executes the program's top level, waits for in-flight
    background compiles, and returns everything printed. *)
val run : t -> string

(** [run_source ?realm config source] — parse, compile, create, run;
    returns the output and the engine for inspection. *)
val run_source :
  ?realm:Jitbull_runtime.Realm.t -> config -> string -> string * t
