(** The tiered execution engine: interpreter → baseline JIT → optimizing
    (Ion-like) JIT, mirroring Fig. 1 of the paper.

    - After [baseline_threshold] invocations (paper: 100; scaled default 8)
      a function is compiled without optimization (MIR built from feedback,
      mandatory passes only, lowered and register-allocated).
    - After [ion_threshold] invocations (paper: 1500; scaled default 32)
      the full 18-pass pipeline runs. If a JITBULL [analyzer] is installed,
      the per-pass IR snapshots are handed to it and its verdict drives the
      paper's go/no-go policy: [Allow] installs the code; [Disable_passes]
      triggers one recompilation with those passes off (the paper's
      [Recompile] flag) when all are disableable, else the function is
      blacklisted; [Forbid_jit] blacklists directly (no-JIT for that
      function only).
    - A failed guard raises a bailout; the engine re-executes the call in
      the interpreter tier and blacklists the function after
      [max_bailouts] (replay-from-entry deoptimization; see DESIGN.md for
      the fidelity note).

    The heap sentinel standing in for JIT code pointers is installed when
    the first function is JIT-compiled; the VM checks it on every transfer
    to compiled code. *)

module Value = Jitbull_runtime.Value

type decision =
  | Allow
  | Disable_passes of string list
  | Forbid_jit

type analyzer =
  func_index:int ->
  name:string ->
  trace:(string * Jitbull_mir.Snapshot.t) list ->
  decision

(** The policy-decision cache: go/no-go verdicts memoized across Ion
    compiles (and across engines sharing one {!config}), keyed by a hash
    of the function's bytecode, its type-feedback row and the bytecode +
    feedback of its statically bound callees (the inline resolver's
    inputs). The [generation] closure — typically the DNA database's
    mutation counter — is consulted on every access; when it moves, the
    whole cache is dropped, so [Db.add]/[Db.remove_cve] invalidate
    previously cached verdicts.

    On a hit the engine skips the snapshot-traced compile, the Δ
    extraction and the DB comparison (a [Forbid_jit] hit skips compilation
    entirely) and applies the cached verdict directly; the analyzer is not
    called, so no monitor record is produced for that compile.
    [policy.cache_hits] / [policy.cache_misses] count effectiveness. *)
module Policy_cache : sig
  type t

  val create : ?max_entries:int -> ?generation:(unit -> int) -> unit -> t

  (** [lookup]/[store] are exposed for tests and tools; the engine drives
      them internally. Both revalidate against [generation] first. *)
  val lookup : t -> int -> decision option

  val store : t -> int -> decision -> unit
  val hits : t -> int
  val misses : t -> int

  (** [invalidations t] — generation-change flushes observed. *)
  val invalidations : t -> int

  val length : t -> int
end

type config = {
  baseline_threshold : int;
  ion_threshold : int;
  vulns : Jitbull_passes.Vuln_config.t;
  analyzer : analyzer option;
  verify_passes : bool;  (** run the MIR verifier after every pass *)
  max_bailouts : int;
  jit_enabled : bool;  (** [false] = the paper's "NoJIT" configuration *)
  obs : Jitbull_obs.Obs.t option;
      (** telemetry: compile spans ([compile_baseline]/[compile_ion] plus
          per-pass spans in the pipeline), [tier_up]/[bailout]/[deopt]/
          [blacklist] events, and VM dispatch counters. [None] (default)
          records nothing and adds no measurable cost. *)
  policy_cache : Policy_cache.t option;
      (** memoized go/no-go verdicts; [None] (default) analyzes every Ion
          compile afresh. Only consulted when [analyzer] is present. *)
}

val default_config : config

type stats = {
  mutable nr_jit : int;  (** functions Ion-compiled (paper's Nr_JIT) *)
  mutable nr_disjit : int;  (** … with ≥1 pass disabled (Nr_DisJIT) *)
  mutable nr_nojit : int;  (** … forbidden from JIT (Nr_NoJIT) *)
  mutable baseline_compiles : int;
  mutable ion_compiles : int;  (** including recompilations *)
  mutable bailouts : int;
  mutable deopts : int;  (** functions blacklisted after repeated bailouts *)
  mutable peephole_removed : int;
      (** LIR instructions deleted by the post-allocation peephole *)
}

type t

val create : ?realm:Jitbull_runtime.Realm.t -> config -> Jitbull_bytecode.Op.program -> t

val vm : t -> Jitbull_bytecode.Vm.t

val stats : t -> stats

val realm : t -> Jitbull_runtime.Realm.t

val obs : t -> Jitbull_obs.Obs.t option

(** [run t] executes the program's top level and returns everything
    printed. *)
val run : t -> string

(** [run_source ?realm config source] — parse, compile, create, run;
    returns the output and the engine for inspection. *)
val run_source :
  ?realm:Jitbull_runtime.Realm.t -> config -> string -> string * t
