module Value = Jitbull_runtime.Value
module Value_ops = Jitbull_runtime.Value_ops
module Heap = Jitbull_runtime.Heap
module Realm = Jitbull_runtime.Realm
module Builtins = Jitbull_runtime.Builtins
module Errors = Jitbull_runtime.Errors
module Mir = Jitbull_mir.Mir
module Ast = Jitbull_frontend.Ast

type callbacks = {
  call_function : int -> Value.t list -> Value.t;
  lookup_global : string -> Value.t;
  store_global : string -> Value.t -> unit;
  declare_global : string -> unit;
}

(* The raw reinterpretation a removed unbox guard exposes: machine code
   that expected a double reads whatever bits are in the register. Arrays
   leak their elements base address — the classic type-confusion
   info-leak. *)
let raw_number (realm : Realm.t) (v : Value.t) =
  match v with
  | Value.Number f -> f
  | Value.Bool true -> 1.0
  | Value.Bool false -> 0.0
  | Value.Array h -> float_of_int (Heap.base_addr realm.Realm.heap h + 2)
  | Value.String s -> float_of_int (String.length s)
  | Value.Null | Value.Undefined -> 0.0
  | Value.Object _ | Value.Function _ | Value.Builtin _ -> Float.nan

let bailout fmt = Format.kasprintf (fun s -> raise (Lir.Bailout s)) fmt

let ast_of_num_binop : Mir.num_binop -> Ast.binop = function
  | Mir.NSub -> Ast.Sub
  | Mir.NMul -> Ast.Mul
  | Mir.NDiv -> Ast.Div
  | Mir.NMod -> Ast.Mod
  | Mir.NBit_and -> Ast.Bit_and
  | Mir.NBit_or -> Ast.Bit_or
  | Mir.NBit_xor -> Ast.Bit_xor
  | Mir.NShl -> Ast.Shl
  | Mir.NShr -> Ast.Shr
  | Mir.NUshr -> Ast.Ushr

let ast_of_compare : Mir.compare_op -> Ast.binop = function
  | Mir.CLt -> Ast.Lt
  | Mir.CLe -> Ast.Le
  | Mir.CGt -> Ast.Gt
  | Mir.CGe -> Ast.Ge
  | Mir.CEq -> Ast.Eq
  | Mir.CNeq -> Ast.Neq
  | Mir.CStrict_eq -> Ast.Strict_eq
  | Mir.CStrict_neq -> Ast.Strict_neq

(* An element handle: the result of [Kelements]. We model the elements
   pointer as the array handle; reallocation safety is therefore the
   heap's concern, matching the paper's focus on length (not pointer)
   staleness. A removed [guard_array] cannot occur (guards with uses are
   never dropped), so [Kelements] always sees an array. *)

let run (f : Lir.func) (realm : Realm.t) (cb : callbacks) (args : Value.t list) : Value.t =
  let regs = Array.make (max f.Lir.n_regs 1) Value.Undefined in
  let heap = realm.Realm.heap in
  let args = Array.of_list args in
  let code = f.Lir.code in
  let set d v = if d >= 0 then regs.(d) <- v in
  let pc = ref 0 in
  (* Allocation-free loop exit: [Kreturn] writes the sentinel-guarded
     result cell and clears the flag — no option box, and no polymorphic
     compare per dispatched instruction. *)
  let result = ref Value.Undefined in
  let running = ref true in
  while !running do
    let i = code.(!pc) in
    incr pc;
    match i.Lir.kind with
    | Lir.Kconst -> set i.Lir.dst f.Lir.consts.(i.Lir.imm)
    | Lir.Kparam ->
      set i.Lir.dst (if i.Lir.imm < Array.length args then args.(i.Lir.imm) else Value.Undefined)
    | Lir.Kmove -> set i.Lir.dst regs.(i.Lir.a)
    | Lir.Kunbox_number -> (
      match regs.(i.Lir.a) with
      | Value.Number _ as v -> set i.Lir.dst v
      | v -> bailout "unbox_number: %s" (Value.type_name v))
    | Lir.Kunbox_int32 -> (
      match regs.(i.Lir.a) with
      | Value.Number n as v when Float.is_integer n && Float.abs n <= 2147483648.0 ->
        set i.Lir.dst v
      | v -> bailout "unbox_int32: %s" (Value.to_display v))
    | Lir.Kguard_array -> (
      match regs.(i.Lir.a) with
      | Value.Array _ as v -> set i.Lir.dst v
      | v -> bailout "guard_array: %s" (Value.type_name v))
    | Lir.Kbounds_check ->
      let idx = raw_number realm regs.(i.Lir.a) in
      let len = raw_number realm regs.(i.Lir.b) in
      if idx < 0.0 || idx >= len then bailout "bounds_check: %g >= %g" idx len
      else set i.Lir.dst regs.(i.Lir.a)
    | Lir.Kadd -> set i.Lir.dst (Value_ops.binary Ast.Add regs.(i.Lir.a) regs.(i.Lir.b))
    | Lir.Kbin nop ->
      (* operands were unbox-guarded at compile time; if the guard was
         (wrongly) removed this reinterprets raw values *)
      let x = raw_number realm regs.(i.Lir.a) in
      let y = raw_number realm regs.(i.Lir.b) in
      set i.Lir.dst
        (Value_ops.binary (ast_of_num_binop nop) (Value.Number x) (Value.Number y))
    | Lir.Kcompare cop ->
      set i.Lir.dst (Value_ops.binary (ast_of_compare cop) regs.(i.Lir.a) regs.(i.Lir.b))
    | Lir.Knegate -> set i.Lir.dst (Value.Number (-.raw_number realm regs.(i.Lir.a)))
    | Lir.Kbitnot ->
      set i.Lir.dst (Value_ops.unary Ast.Bit_not (Value.Number (raw_number realm regs.(i.Lir.a))))
    | Lir.Knot -> set i.Lir.dst (Value.Bool (not (Value_ops.to_boolean regs.(i.Lir.a))))
    | Lir.Ktypeof -> set i.Lir.dst (Value.String (Value.type_name regs.(i.Lir.a)))
    | Lir.Ktonumber -> set i.Lir.dst (Value.Number (Value_ops.to_number regs.(i.Lir.a)))
    | Lir.Knew_array -> set i.Lir.dst (Value.Array (Heap.alloc_array heap ~length:i.Lir.imm))
    | Lir.Knew_object ->
      let tbl = Hashtbl.create 8 in
      set i.Lir.dst (Value.Object tbl)
    | Lir.Kelements -> (
      match regs.(i.Lir.a) with
      | Value.Array h -> set i.Lir.dst (Value.Array h)
      | v ->
        (* only reachable through a type-confused register *)
        set i.Lir.dst (Value.Array (int_of_float (raw_number realm v))))
    | Lir.Kinit_length -> (
      match regs.(i.Lir.a) with
      | Value.Array h -> set i.Lir.dst (Value.Number (float_of_int (Heap.length heap h)))
      | v -> bailout "init_length: %s" (Value.type_name v))
    | Lir.Kload_element -> (
      match regs.(i.Lir.a) with
      | Value.Array h ->
        let idx = int_of_float (raw_number realm regs.(i.Lir.b)) in
        set i.Lir.dst (Heap.get_unchecked heap h idx)
      | v -> bailout "load_element: %s" (Value.type_name v))
    | Lir.Kstore_element -> (
      match regs.(i.Lir.a) with
      | Value.Array h ->
        let idx = int_of_float (raw_number realm regs.(i.Lir.b)) in
        Heap.set_unchecked heap h idx regs.(i.Lir.c)
      | v -> bailout "store_element: %s" (Value.type_name v))
    | Lir.Karray_length -> (
      match regs.(i.Lir.a) with
      | Value.Array h -> set i.Lir.dst (Value.Number (float_of_int (Heap.length heap h)))
      | v -> bailout "array_length: %s" (Value.type_name v))
    | Lir.Kset_array_length -> (
      match regs.(i.Lir.a) with
      | Value.Array h ->
        Heap.set_length heap h (int_of_float (raw_number realm regs.(i.Lir.b)))
      | v -> bailout "set_array_length: %s" (Value.type_name v))
    | Lir.Karray_push -> (
      match regs.(i.Lir.a) with
      | Value.Array h ->
        Heap.push heap h regs.(i.Lir.b);
        set i.Lir.dst (Value.Number (float_of_int (Heap.length heap h)))
      | v -> bailout "array_push: %s" (Value.type_name v))
    | Lir.Karray_pop -> (
      match regs.(i.Lir.a) with
      | Value.Array h -> set i.Lir.dst (Heap.pop heap h)
      | v -> bailout "array_pop: %s" (Value.type_name v))
    | Lir.Kget_prop -> set i.Lir.dst (Builtins.get_member realm regs.(i.Lir.a) f.Lir.names.(i.Lir.imm))
    | Lir.Kset_prop -> Builtins.set_member realm regs.(i.Lir.a) f.Lir.names.(i.Lir.imm) regs.(i.Lir.b)
    | Lir.Kget_index_gen -> (
      let recv = regs.(i.Lir.a) in
      let idx = regs.(i.Lir.b) in
      match (recv, Value_ops.to_index idx) with
      | Value.Array h, Some k -> set i.Lir.dst (Heap.get heap h k)
      | Value.Object tbl, _ ->
        set i.Lir.dst
          (match Hashtbl.find_opt tbl (Value_ops.to_string idx) with
          | Some v -> v
          | None -> Value.Undefined)
      | Value.String s, Some k ->
        set i.Lir.dst
          (if k < String.length s then Value.String (String.make 1 s.[k]) else Value.Undefined)
      | Value.Array _, None -> set i.Lir.dst Value.Undefined
      | v, _ -> Errors.type_error "cannot index %s" (Value.type_name v))
    | Lir.Kset_index_gen -> (
      let recv = regs.(i.Lir.a) in
      let idx = regs.(i.Lir.b) in
      let v = regs.(i.Lir.c) in
      match (recv, Value_ops.to_index idx) with
      | Value.Array h, Some k -> Heap.set heap h k v
      | Value.Object tbl, _ -> Hashtbl.replace tbl (Value_ops.to_string idx) v
      | Value.Array _, None -> Errors.type_error "invalid array index %s" (Value.to_display idx)
      | recv, _ -> Errors.type_error "cannot index %s" (Value.type_name recv))
    | Lir.Kload_global -> set i.Lir.dst (cb.lookup_global f.Lir.names.(i.Lir.imm))
    | Lir.Kstore_global -> cb.store_global f.Lir.names.(i.Lir.imm) regs.(i.Lir.a)
    | Lir.Kdeclare_global -> cb.declare_global f.Lir.names.(i.Lir.imm)
    | Lir.Kcall -> (
      let callee = regs.(i.Lir.a) in
      let vargs =
        Array.fold_right (fun r acc -> regs.(r) :: acc) f.Lir.call_args.(i.Lir.imm) []
      in
      match callee with
      | Value.Function idx -> set i.Lir.dst (cb.call_function idx vargs)
      | Value.Builtin name -> set i.Lir.dst (Builtins.call_builtin realm name vargs)
      | v -> Errors.type_error "%s is not a function" (Value.type_name v))
    | Lir.Kcall_method -> (
      let recv = regs.(i.Lir.a) in
      let name = f.Lir.names.(i.Lir.imm2) in
      let vargs =
        Array.fold_right (fun r acc -> regs.(r) :: acc) f.Lir.call_args.(i.Lir.imm) []
      in
      match Builtins.call_method realm recv name vargs with
      | `Value v -> set i.Lir.dst v
      | `User_function (idx, vargs) -> set i.Lir.dst (cb.call_function idx vargs))
    | Lir.Kgoto -> pc := i.Lir.imm
    | Lir.Ktest -> pc := (if Value_ops.to_boolean regs.(i.Lir.a) then i.Lir.imm else i.Lir.b)
    | Lir.Kreturn ->
      running := false;
      result := (if i.Lir.a >= 0 then regs.(i.Lir.a) else Value.Undefined)
  done;
  !result
