(** The "machine code" tier: a register-file interpreter for allocated
    LIR.

    Semantics notes that matter to the security model:
    - guards raise {!Lir.Bailout} when their check fails; the engine then
      re-executes the call in the interpreter tier (deoptimization);
    - element loads/stores are {e unchecked} — if the protecting
      [bounds_check] was (wrongly) optimized away, they access the flat
      heap directly and can read/corrupt neighbouring objects or raise
      {!Jitbull_runtime.Errors.Crash};
    - numeric operations on operands whose [unbox_number] guard was
      (wrongly) removed {e reinterpret the raw value}: an array is seen as
      its base heap address — the address-disclosure behaviour of a real
      type-confusion (CVE-2019-9791's model). *)

(** The raw reinterpretation a removed unbox guard exposes: the numeric
    view machine code has of an arbitrary register.  Arrays leak their
    elements base address.  Exposed so the native backend's exit-to-host
    operations reproduce the executor's type-confusion semantics
    exactly. *)
val raw_number : Jitbull_runtime.Realm.t -> Jitbull_runtime.Value.t -> float

(** The AST operators LIR numeric/compare kinds evaluate through —
    shared with the native backend so both tiers call the identical
    {!Jitbull_runtime.Value_ops.binary} cases. *)
val ast_of_num_binop : Jitbull_mir.Mir.num_binop -> Jitbull_frontend.Ast.binop

val ast_of_compare : Jitbull_mir.Mir.compare_op -> Jitbull_frontend.Ast.binop

type callbacks = {
  call_function : int -> Jitbull_runtime.Value.t list -> Jitbull_runtime.Value.t;
      (** re-enter the engine for user calls *)
  lookup_global : string -> Jitbull_runtime.Value.t;
  store_global : string -> Jitbull_runtime.Value.t -> unit;
  declare_global : string -> unit;  (** define as undefined if absent *)
}

(** [run func realm callbacks args] executes the function. Raises
    {!Lir.Bailout} on failed guards. *)
val run :
  Lir.func ->
  Jitbull_runtime.Realm.t ->
  callbacks ->
  Jitbull_runtime.Value.t list ->
  Jitbull_runtime.Value.t
