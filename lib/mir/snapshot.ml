type entry = {
  num : int;
  opcode : string;
  operands : int list;
}

type t = {
  func_name : string;
  n_blocks : int;
  entries : entry list;
}

let take (g : Mir.t) : t =
  let entries =
    List.concat_map
      (fun (b : Mir.block) ->
        List.map
          (fun (i : Mir.instr) ->
            {
              num = i.Mir.num;
              opcode = Mir.opcode_name i.Mir.opcode;
              operands = List.map (fun (o : Mir.instr) -> o.Mir.num) i.Mir.operands;
            })
          (Mir.instructions b))
      g.Mir.blocks
  in
  { func_name = g.Mir.name; n_blocks = List.length g.Mir.blocks; entries }

let entry_count t = List.length t.entries

let to_string t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "snapshot %s\n" t.func_name);
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "%d %s %s\n" e.num e.opcode
           (String.concat " " (List.map string_of_int e.operands))))
    t.entries;
  Buffer.contents buf
