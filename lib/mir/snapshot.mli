(** Immutable textual snapshot of a MIR graph, taken between optimization
    passes.

    This is the value the paper calls [IRᵢ]: JITBULL's Δ extractor works
    on pairs of consecutive snapshots, never on the live (mutable) graph.
    Entries carry the display number, the opcode {e name} (chains compare
    across functions by opcode, so renumbering and renaming are
    invisible), and operand numbers. *)

type entry = {
  num : int;
  opcode : string;
  operands : int list;
}

type t = {
  func_name : string;
  n_blocks : int;  (** block count at snapshot time, for the IR-diff layer *)
  entries : entry list;
}

(** [take g] snapshots [g] in block order. *)
val take : Mir.t -> t

val entry_count : t -> int

val to_string : t -> string
