(* A small x86-64 encoder: exactly the instruction forms the LIR
   lowering needs, emitted in two passes.  Pass 1 appends bytes to a
   growable buffer, recording a fixup for every rel32 branch whose label
   is not yet bound; pass 2 ({!finalize}) patches the displacements once
   every label has a position.

   Generated code addresses every LIR register slot as
   [%rdi + 8*slot] with a disp32 — uniform encodings keep the emitter
   (and its golden-byte tests) simple, and slot counts never approach
   the 2^31/8 disp32 ceiling.  Only caller-saved registers are used, so
   functions need no prologue: the emitter never touches rsp, rbp, rbx
   or r12-r15. *)

(* GPR numbers in ModRM encoding order. *)
let rax = 0
let rcx = 1
let rdx = 2
let rdi = 7
let r8 = 8
let r11 = 11

(* XMM register numbers. *)
let xmm0 = 0
let xmm1 = 1

(* Condition codes (the low nibble of 0F 8x / 0F 9x). *)
let cc_b = 0x2
let cc_ae = 0x3
let cc_e = 0x4
let cc_ne = 0x5
let cc_a = 0x7
let cc_p = 0xA
let cc_np = 0xB
let cc_l = 0xC
let cc_g = 0xF

type label = {
  mutable target : int;  (* byte position, -1 while unbound *)
  mutable holes : int list;  (* positions of rel32 placeholders *)
}

type t = {
  buf : Buffer.t;
  mutable labels : label list;
}

let create () = { buf = Buffer.create 256; labels = [] }
let pos t = Buffer.length t.buf

let new_label t =
  let l = { target = -1; holes = [] } in
  t.labels <- l :: t.labels;
  l

let bind t l = l.target <- pos t

let byte t b = Buffer.add_char t.buf (Char.chr (b land 0xFF))

let le32 t n =
  byte t n;
  byte t (n asr 8);
  byte t (n asr 16);
  byte t (n asr 24)

let le64 t (n : int64) =
  for i = 0 to 7 do
    byte t (Int64.to_int (Int64.shift_right_logical n (8 * i)))
  done

(* REX prefix; [reg] extends the ModRM reg field, [rm] the r/m field. *)
let rex t ~w ~reg ~rm =
  let v =
    0x40
    lor (if w then 0x8 else 0)
    lor ((reg lsr 3) lsl 2)
    lor (rm lsr 3)
  in
  if v <> 0x40 || w then byte t v

let rex_w t ~reg ~rm = rex t ~w:true ~reg ~rm

(* Optional REX for 32-bit / 8-bit forms: only when a high register
   needs the extension bits. *)
let rex_opt t ~reg ~rm = if reg >= 8 || rm >= 8 then rex t ~w:false ~reg ~rm

let modrm_direct t ~reg ~rm =
  byte t (0xC0 lor ((reg land 7) lsl 3) lor (rm land 7))

(* ModRM for [rdi + disp32]; rdi (=7) needs no SIB byte. *)
let modrm_rdi_disp t ~reg ~disp =
  byte t (0x80 lor ((reg land 7) lsl 3) lor rdi);
  le32 t disp

(* ---- moves ---- *)

(* mov r64, [rdi + 8*slot] *)
let mov_r_slot t r slot =
  rex_w t ~reg:r ~rm:rdi;
  byte t 0x8B;
  modrm_rdi_disp t ~reg:r ~disp:(8 * slot)

(* mov [rdi + 8*slot], r64 *)
let mov_slot_r t slot r =
  rex_w t ~reg:r ~rm:rdi;
  byte t 0x89;
  modrm_rdi_disp t ~reg:r ~disp:(8 * slot)

(* mov r64, r64 *)
let mov_rr t ~dst ~src =
  rex_w t ~reg:src ~rm:dst;
  byte t 0x89;
  modrm_direct t ~reg:src ~rm:dst

(* movabs r64, imm64 *)
let movabs t r (imm : int64) =
  rex_w t ~reg:0 ~rm:r;
  byte t (0xB8 lor (r land 7));
  le64 t imm

(* mov eax, imm32 (zero-extends into rax — the exit-code load) *)
let mov_eax_imm t imm =
  byte t 0xB8;
  le32 t imm

(* mov r8(low byte), imm8 — al/cl/dl/bl only *)
let mov_r8_imm t r imm =
  assert (r < 4);
  byte t (0xB0 lor r);
  byte t imm

let ret t = byte t 0xC3

(* ---- integer ALU ---- *)

(* cmp a, b (64-bit) *)
let cmp_rr t a b =
  rex_w t ~reg:b ~rm:a;
  byte t 0x39;
  modrm_direct t ~reg:b ~rm:a

(* add a, b (64-bit) *)
let add_rr t a b =
  rex_w t ~reg:b ~rm:a;
  byte t 0x01;
  modrm_direct t ~reg:b ~rm:a

(* xor a, b (64-bit) *)
let xor_rr t a b =
  rex_w t ~reg:b ~rm:a;
  byte t 0x31;
  modrm_direct t ~reg:b ~rm:a

(* 32-bit ALU ops, opcode per operation: and=0x21 or=0x09 xor=0x31 *)
let alu32 t ~opcode a b =
  rex_opt t ~reg:b ~rm:a;
  byte t opcode;
  modrm_direct t ~reg:b ~rm:a

let and_rr32 t a b = alu32 t ~opcode:0x21 a b
let or_rr32 t a b = alu32 t ~opcode:0x09 a b
let xor_rr32 t a b = alu32 t ~opcode:0x31 a b

(* cmp r32, imm32 *)
let cmp_r32_imm t r imm =
  rex_opt t ~reg:0 ~rm:r;
  byte t 0x81;
  modrm_direct t ~reg:7 ~rm:r;
  le32 t imm

(* shr r64, imm8 *)
let shr_r_imm t r imm =
  rex_w t ~reg:0 ~rm:r;
  byte t 0xC1;
  modrm_direct t ~reg:5 ~rm:r;
  byte t imm

(* 32-bit shifts by %cl: /4 shl, /5 shr, /7 sar *)
let shift_cl32 t ~ext r =
  rex_opt t ~reg:0 ~rm:r;
  byte t 0xD3;
  modrm_direct t ~reg:ext ~rm:r

let shl_cl32 t r = shift_cl32 t ~ext:4 r
let shr_cl32 t r = shift_cl32 t ~ext:5 r
let sar_cl32 t r = shift_cl32 t ~ext:7 r

(* movsxd r64, r32 *)
let movsxd t ~dst ~src =
  rex_w t ~reg:dst ~rm:src;
  byte t 0x63;
  modrm_direct t ~reg:dst ~rm:src

(* movzx eax, al *)
let movzx_eax_al t =
  byte t 0x0F;
  byte t 0xB6;
  byte t 0xC0

(* setcc r8 — al/cl/dl/bl only *)
let setcc t cc r =
  assert (r < 4);
  byte t 0x0F;
  byte t (0x90 lor cc);
  modrm_direct t ~reg:0 ~rm:r

(* and a8, b8 / or a8, b8 — low-byte registers *)
let and_r8 t a b =
  assert (a < 4 && b < 4);
  byte t 0x20;
  modrm_direct t ~reg:b ~rm:a

let or_r8 t a b =
  assert (a < 4 && b < 4);
  byte t 0x08;
  modrm_direct t ~reg:b ~rm:a

(* xor al, imm8 *)
let xor_al_imm t imm =
  byte t 0x34;
  byte t imm

(* test al, al *)
let test_al_al t =
  byte t 0x84;
  modrm_direct t ~reg:rax ~rm:rax

(* ---- SSE2 scalar double ---- *)

(* movq xmm, r64 *)
let movq_x_r t x r =
  byte t 0x66;
  rex_w t ~reg:x ~rm:r;
  byte t 0x0F;
  byte t 0x6E;
  modrm_direct t ~reg:x ~rm:r

(* movq r64, xmm *)
let movq_r_x t r x =
  byte t 0x66;
  rex_w t ~reg:x ~rm:r;
  byte t 0x0F;
  byte t 0x7E;
  modrm_direct t ~reg:x ~rm:r

(* addsd/subsd/mulsd/divsd x1, x2 *)
let sse_arith t ~opcode x1 x2 =
  byte t 0xF2;
  rex_opt t ~reg:x1 ~rm:x2;
  byte t 0x0F;
  byte t opcode;
  modrm_direct t ~reg:x1 ~rm:x2

let addsd t x1 x2 = sse_arith t ~opcode:0x58 x1 x2
let subsd t x1 x2 = sse_arith t ~opcode:0x5C x1 x2
let mulsd t x1 x2 = sse_arith t ~opcode:0x59 x1 x2
let divsd t x1 x2 = sse_arith t ~opcode:0x5E x1 x2

(* ucomisd x1, x2 *)
let ucomisd t x1 x2 =
  byte t 0x66;
  rex_opt t ~reg:x1 ~rm:x2;
  byte t 0x0F;
  byte t 0x2E;
  modrm_direct t ~reg:x1 ~rm:x2

(* xorpd x1, x2 *)
let xorpd t x1 x2 =
  byte t 0x66;
  rex_opt t ~reg:x1 ~rm:x2;
  byte t 0x0F;
  byte t 0x57;
  modrm_direct t ~reg:x1 ~rm:x2

(* cvttsd2si r64, xmm *)
let cvttsd2si t r x =
  byte t 0xF2;
  rex_w t ~reg:r ~rm:x;
  byte t 0x0F;
  byte t 0x2C;
  modrm_direct t ~reg:r ~rm:x

(* cvtsi2sd xmm, r64 *)
let cvtsi2sd t x r =
  byte t 0xF2;
  rex_w t ~reg:x ~rm:r;
  byte t 0x0F;
  byte t 0x2A;
  modrm_direct t ~reg:x ~rm:r

(* ---- branches (pass-1 holes, pass-2 patches) ---- *)

let hole t l =
  l.holes <- pos t :: l.holes;
  le32 t 0

(* jcc rel32 *)
let jcc t cc l =
  byte t 0x0F;
  byte t (0x80 lor cc);
  hole t l

(* jmp rel32 *)
let jmp t l =
  byte t 0xE9;
  hole t l

let finalize t =
  let code = Buffer.to_bytes t.buf in
  List.iter
    (fun l ->
      if l.holes <> [] then begin
        if l.target < 0 then failwith "Asm.finalize: unbound label";
        List.iter
          (fun h ->
            let rel = l.target - (h + 4) in
            Bytes.set_int32_le code h (Int32.of_int rel))
          l.holes
      end)
    t.labels;
  code
