(** x86-64 instruction encoder for the native Ion tier: two-pass
    emit-and-patch.  Pass 1 ({!jcc}/{!jmp} on unbound labels) records a
    rel32 hole; pass 2 ({!finalize}) patches every hole from the bound
    label positions and returns the finished code bytes.

    Only the forms the LIR lowering needs are provided, all with fixed,
    golden-byte-testable encodings: slot loads/stores use a uniform
    [\[%rdi + disp32\]] addressing mode, and every instruction clobbers
    caller-saved registers only. *)

(* GPR / XMM numbers in hardware encoding order. *)
val rax : int
val rcx : int
val rdx : int
val rdi : int
val r8 : int
val r11 : int
val xmm0 : int
val xmm1 : int

(* Condition codes for {!jcc} / {!setcc}. *)
val cc_b : int
val cc_ae : int
val cc_e : int
val cc_ne : int
val cc_a : int
val cc_p : int
val cc_np : int
val cc_l : int
val cc_g : int

type label
type t

val create : unit -> t

(** Current byte position (the offset recorded per LIR pc). *)
val pos : t -> int

val new_label : t -> label
val bind : t -> label -> unit

(** moves *)

val mov_r_slot : t -> int -> int -> unit  (** mov r64, [rdi+8*slot] *)

val mov_slot_r : t -> int -> int -> unit  (** mov [rdi+8*slot], r64 *)

val mov_rr : t -> dst:int -> src:int -> unit
val movabs : t -> int -> int64 -> unit
val mov_eax_imm : t -> int -> unit
val mov_r8_imm : t -> int -> int -> unit
val ret : t -> unit

(** integer ALU *)

val cmp_rr : t -> int -> int -> unit
val add_rr : t -> int -> int -> unit
val xor_rr : t -> int -> int -> unit
val and_rr32 : t -> int -> int -> unit
val or_rr32 : t -> int -> int -> unit
val xor_rr32 : t -> int -> int -> unit
val cmp_r32_imm : t -> int -> int -> unit
val shr_r_imm : t -> int -> int -> unit
val shl_cl32 : t -> int -> unit
val shr_cl32 : t -> int -> unit
val sar_cl32 : t -> int -> unit
val movsxd : t -> dst:int -> src:int -> unit
val movzx_eax_al : t -> unit
val setcc : t -> int -> int -> unit
val and_r8 : t -> int -> int -> unit
val or_r8 : t -> int -> int -> unit
val xor_al_imm : t -> int -> unit
val test_al_al : t -> unit

(** SSE2 scalar double *)

val movq_x_r : t -> int -> int -> unit
val movq_r_x : t -> int -> int -> unit
val addsd : t -> int -> int -> unit
val subsd : t -> int -> int -> unit
val mulsd : t -> int -> int -> unit
val divsd : t -> int -> int -> unit
val ucomisd : t -> int -> int -> unit
val xorpd : t -> int -> int -> unit
val cvttsd2si : t -> int -> int -> unit
val cvtsi2sd : t -> int -> int -> unit

(** branches *)

val jcc : t -> int -> label -> unit
val jmp : t -> label -> unit

(** Patch every recorded rel32 hole and return the code. *)
val finalize : t -> bytes
