(* Executable-memory regions with strict W^X discipline.

   A region's lifecycle is: [install] maps anonymous RW pages, copies the
   emitted bytes in, and flips the mapping to RX before returning — the
   bytes are never writable and executable at the same time, and the
   region is never written again.  [release] unmaps; it is idempotent so
   the deferred-unmap bookkeeping in {!Native} can call it from whichever
   side (blacklist or last live activation) loses the race.

   The cumulative counters are process-global and atomic: engines on
   helper domains (QCheck stress runs several at once) all fund the same
   totals, and the go/no-go security tests assert over them ("no page was
   ever mapped for a forbidden compile"). *)

type regfile =
  (int64, Bigarray.int64_elt, Bigarray.c_layout) Bigarray.Array1.t

external jb_native_available : unit -> bool = "jb_native_available" [@@noalloc]
external jb_page_size : unit -> int = "jb_page_size" [@@noalloc]
external jb_map_rw : int -> nativeint = "jb_map_rw"
external jb_fill : nativeint -> bytes -> int -> unit = "jb_fill" [@@noalloc]
external jb_protect_rx : nativeint -> int -> bool = "jb_protect_rx" [@@noalloc]
external jb_unmap : nativeint -> int -> unit = "jb_unmap" [@@noalloc]
external jb_call : nativeint -> int -> regfile -> int = "jb_native_call" [@@noalloc]

let available = jb_native_available ()
let page_size = jb_page_size ()

let maps_total = Atomic.make 0
let unmaps_total = Atomic.make 0
let live_regions = Atomic.make 0
let live_bytes = Atomic.make 0

type region = {
  addr : nativeint;
  size : int;  (* mapped size, page-rounded *)
  code_size : int;  (* bytes of actual machine code *)
  mutable mapped : bool;
}

let round_to_pages n = (n + page_size - 1) / page_size * page_size

let install (code : bytes) =
  if not available then failwith "Exec_mem.install: no native backend";
  let code_size = Bytes.length code in
  let size = round_to_pages (max code_size 1) in
  let addr = jb_map_rw size in
  if Nativeint.equal addr 0n then failwith "Exec_mem.install: mmap failed";
  jb_fill addr code code_size;
  if not (jb_protect_rx addr size) then begin
    jb_unmap addr size;
    failwith "Exec_mem.install: mprotect(RX) failed"
  end;
  Atomic.incr maps_total;
  Atomic.incr live_regions;
  ignore (Atomic.fetch_and_add live_bytes size);
  { addr; size; code_size; mapped = true }

let release r =
  if r.mapped then begin
    r.mapped <- false;
    jb_unmap r.addr r.size;
    Atomic.incr unmaps_total;
    Atomic.decr live_regions;
    ignore (Atomic.fetch_and_add live_bytes (-r.size))
  end

let call r off regs = jb_call r.addr off regs

let make_regfile slots =
  Bigarray.Array1.create Bigarray.int64 Bigarray.c_layout (max slots 1)

type stats = {
  s_maps_total : int;
  s_unmaps_total : int;
  s_live_regions : int;
  s_live_bytes : int;
}

let stats () =
  {
    s_maps_total = Atomic.get maps_total;
    s_unmaps_total = Atomic.get unmaps_total;
    s_live_regions = Atomic.get live_regions;
    s_live_bytes = Atomic.get live_bytes;
  }
