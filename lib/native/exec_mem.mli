(** Executable memory for the native Ion tier, with strict W^X: code is
    emitted into an ordinary OCaml [bytes] buffer, copied into a fresh
    RW anonymous mapping, and the mapping is flipped to RX before
    {!install} returns.  No path ever yields a writable+executable page,
    and an installed region is immutable until {!release} unmaps it. *)

(** The unboxed register file generated code runs over: NaN-boxed 64-bit
    values in C-allocated (GC-stable) memory, addressed as
    [\[%rdi + 8*slot\]]. *)
type regfile =
  (int64, Bigarray.int64_elt, Bigarray.c_layout) Bigarray.Array1.t

(** Whether the backend can run here: compiled for x86-64 on a POSIX
    host.  When [false], {!install} fails and callers must keep using
    the LIR executor. *)
val available : bool

val page_size : int

type region = private {
  addr : nativeint;
  size : int;  (** mapped size, page-rounded *)
  code_size : int;  (** emitted machine-code bytes *)
  mutable mapped : bool;
}

(** Map, fill, and seal (RX) a region holding [code]. *)
val install : bytes -> region

(** Unmap.  Idempotent. *)
val release : region -> unit

(** [call r off regs] enters the generated code at byte offset [off]
    with [regs] in the first argument register, returning the packed
    [(lir_pc lsl 4) lor reason] exit code.  Allocation-free. *)
val call : region -> int -> regfile -> int

val make_regfile : int -> regfile

(** Process-global cumulative mapping counters (atomic; shared across
    domains).  [s_maps_total] only ever grows — tests assert a forbidden
    compile leaves it unchanged. *)
type stats = {
  s_maps_total : int;
  s_unmaps_total : int;
  s_live_regions : int;
  s_live_bytes : int;
}

val stats : unit -> stats
