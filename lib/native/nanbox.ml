(* NaN-boxing codec for the unboxed register file.

   Doubles are stored as their raw IEEE-754 bits.  Everything else lives
   in the tag space: bits unsigned-≥ 0xFFFC_0000_0000_0000, keyed by the
   top 16 bits.  That space is unreachable by arithmetic: the x86 default
   QNaN is 0xFFF8_…, libm NaNs are 0x7FF8_…, and SSE NaN propagation
   preserves operand payloads — and every NaN entering the register file
   from the host is canonicalized first, so generated code can test
   "is this a number?" with one unsigned compare against the boundary.

   Tag layout (top 16 bits / payload in the low 48):
   - 0xFFFC  singletons: payload 0 undefined, 1 null, 2 false, 3 true
   - 0xFFFD  Array       payload = heap handle
   - 0xFFFE  Function    payload = function-table index
   - 0xFFFF  side ref    payload = index into the activation's side table
             (String / Object / Builtin — values the 48-bit payload
             cannot carry; the OCaml side table keeps them GC-rooted) *)

module Value = Jitbull_runtime.Value

let tag_shift = 48
let tag_singleton = 0xFFFC
let tag_array = 0xFFFD
let tag_function = 0xFFFE
let tag_side = 0xFFFF

let bits_min_tag = 0xFFFC000000000000L
let bits_undefined = 0xFFFC000000000000L
let bits_null = 0xFFFC000000000001L
let bits_false = 0xFFFC000000000002L
let bits_true = 0xFFFC000000000003L
let canonical_nan = 0x7FF8000000000000L
let payload_mask = 0x0000FFFFFFFFFFFFL

(* Per-activation side table; slots [0, preload) hold the function's
   non-immediate constants and survive {!reset}. *)
type side = {
  mutable items : Value.t array;
  mutable n : int;
}

let side_create () = { items = Array.make 16 Value.Undefined; n = 0 }

let side_push side v =
  if side.n = Array.length side.items then begin
    let bigger = Array.make (2 * side.n) Value.Undefined in
    Array.blit side.items 0 bigger 0 side.n;
    side.items <- bigger
  end;
  side.items.(side.n) <- v;
  side.n <- side.n + 1;
  side.n - 1

let side_reset side ~preload = side.n <- preload

let tagged tag payload =
  Int64.logor
    (Int64.shift_left (Int64.of_int tag) tag_shift)
    (Int64.logand (Int64.of_int payload) payload_mask)

let is_number bits = Int64.unsigned_compare bits bits_min_tag < 0

let encode side (v : Value.t) : int64 =
  match v with
  | Value.Number f ->
    if Float.is_nan f then canonical_nan else Int64.bits_of_float f
  | Value.Undefined -> bits_undefined
  | Value.Null -> bits_null
  | Value.Bool false -> bits_false
  | Value.Bool true -> bits_true
  | Value.Array h -> tagged tag_array h
  | Value.Function i -> tagged tag_function i
  | Value.String _ | Value.Object _ | Value.Builtin _ ->
    tagged tag_side (side_push side v)

let decode side (bits : int64) : Value.t =
  if is_number bits then Value.Number (Int64.float_of_bits bits)
  else
    let tag = Int64.to_int (Int64.shift_right_logical bits tag_shift) in
    let payload = Int64.to_int (Int64.logand bits payload_mask) in
    if tag = tag_singleton then
      match payload with
      | 0 -> Value.Undefined
      | 1 -> Value.Null
      | 2 -> Value.Bool false
      | _ -> Value.Bool true
    else if tag = tag_array then Value.Array payload
    else if tag = tag_function then Value.Function payload
    else side.items.(payload)
