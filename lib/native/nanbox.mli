(** NaN-boxing codec between {!Jitbull_runtime.Value.t} and the int64
    register file.  Doubles are raw bits (NaNs canonicalized on encode);
    non-numbers occupy the tag space at unsigned-≥ {!bits_min_tag},
    which no arithmetic result can reach.  Heap-shaped values (strings,
    objects, builtins) are boxed through a per-activation [side] table
    that keeps them rooted for the OCaml GC. *)

module Value = Jitbull_runtime.Value

val tag_shift : int
val tag_singleton : int
val tag_array : int
val tag_function : int
val tag_side : int

val bits_min_tag : int64
val bits_undefined : int64
val bits_null : int64
val bits_false : int64
val bits_true : int64
val canonical_nan : int64
val payload_mask : int64

type side

val side_create : unit -> side

(** Append a value, returning its slot. *)
val side_push : side -> Value.t -> int

(** Drop every slot at or past [preload] (the constant prefix stays). *)
val side_reset : side -> preload:int -> unit

val tagged : int -> int -> int64
val is_number : int64 -> bool
val encode : side -> Value.t -> int64
val decode : side -> int64 -> Value.t
