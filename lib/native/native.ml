(* The native Ion tier: lowers allocated LIR to x86-64 and runs it over
   an unboxed NaN-boxed register file.

   Design: generated code covers the numeric core — const/move/guards/
   bounds checks/float arithmetic/compares/branches — and *exits to the
   host* for everything else.  Every exit returns a packed
   [(lir_pc lsl 4) lor reason] in rax; the host performs the operation on
   decoded values (sharing the executor's raw_number/Value_ops semantics
   bit for bit, including the type-confusion behaviour a removed guard
   exposes) and re-enters the code at the byte offset recorded for the
   next LIR pc.  Guard failures exit with a bailout reason; the host
   formats the executor-identical message and raises {!Lir.Bailout}, so
   the engine's deopt path is tier-agnostic.

   Fast paths never assume well-typedness the executor would not: each
   checks its operands are numbers (one unsigned compare against the
   NaN-box tag boundary) and otherwise defers to the host, so a
   type-confused register flows through raw_number exactly as in the
   executor — the differential oracle must not be able to tell the tiers
   apart, even under vulnerable go/no-go configurations. *)

module Value = Jitbull_runtime.Value
module Value_ops = Jitbull_runtime.Value_ops
module Heap = Jitbull_runtime.Heap
module Realm = Jitbull_runtime.Realm
module Builtins = Jitbull_runtime.Builtins
module Errors = Jitbull_runtime.Errors
module Mir = Jitbull_mir.Mir
module Ast = Jitbull_frontend.Ast
module Lir = Jitbull_lir.Lir
module Executor = Jitbull_lir.Executor
module Profile = Jitbull_obs.Profile

(* Ticks landing in the host-operation gate (decode, host op, re-enter)
   rather than in a registered code page. *)
let prof_host = Profile.tag "native;host"

let available () = Exec_mem.available

(* JITBULL_NO_NATIVE forces the LIR-executor fallback; unset, "" and "0"
   leave the backend on (tests toggle via putenv). *)
let forced_off () =
  match Sys.getenv_opt "JITBULL_NO_NATIVE" with
  | Some s -> s <> "" && s <> "0"
  | None -> false

let enabled () = available () && not (forced_off ())

(* Exit reasons (low 4 bits of the packed exit code). *)
let reason_return = 0
let reason_hostop = 1
let reason_bailout = 2
let reason_test = 3

type counters = {
  mutable c_return : int;
  mutable c_hostop : int;
  mutable c_bailout : int;
  mutable c_test : int;
}

type exit_totals = {
  t_return : int;
  t_hostop : int;
  t_bailout : int;
  t_test : int;
}

(* A pooled activation: the C-allocated register file plus the OCaml
   side table that keeps boxed values GC-rooted while their NaN-boxed
   references live in the regfile. *)
type activation = {
  regs : Exec_mem.regfile;
  side : Nanbox.side;
}

type code = {
  func : Lir.func;
  region : Exec_mem.region;
  offsets : int array;  (* LIR pc -> byte offset (re-entry points) *)
  n_slots : int;  (* n_regs + arity arg-staging slots *)
  const_preload : Value.t array;  (* boxed consts, side slots [0..) *)
  counters : counters;
  prof_slot : int;  (* sampling-profiler page-table slot, -1 if none *)
  mutable pool : activation list;
  mutable active : int;  (* live activations (recursion depth) *)
  mutable dead : bool;  (* released; unmap when [active] drains *)
}

let code_size code = code.region.Exec_mem.code_size
let region code = code.region

let exits code =
  {
    t_return = code.counters.c_return;
    t_hostop = code.counters.c_hostop;
    t_bailout = code.counters.c_bailout;
    t_test = code.counters.c_test;
  }

(* ---- compilation ---- *)

let compile (f : Lir.func) : code =
  let asm = Asm.create () in
  let insts = f.Lir.code in
  let len = Array.length insts in
  let n_regs = max f.Lir.n_regs 1 in
  let n_slots = n_regs + f.Lir.arity in
  (* Constants become immediates; heap-shaped ones are preloaded into
     the side table at fixed indices, so their NaN-boxed bits are also
     compile-time immediates. *)
  let preload = ref [] in
  let n_preload = ref 0 in
  let const_bits =
    Array.map
      (fun (v : Value.t) ->
        match v with
        | Value.String _ | Value.Object _ | Value.Builtin _ ->
          let k = !n_preload in
          incr n_preload;
          preload := v :: !preload;
          Nanbox.tagged Nanbox.tag_side k
        | v ->
          let scratch = Nanbox.side_create () in
          Nanbox.encode scratch v)
      f.Lir.consts
  in
  let pc_labels = Array.init len (fun _ -> Asm.new_label asm) in
  let offsets = Array.make len 0 in
  (* Exit stubs are shared per (pc, reason) and emitted after the main
     body, in first-use order, so the layout is deterministic. *)
  let exit_tbl = Hashtbl.create 16 in
  let exit_order = ref [] in
  let exit_label pc reason =
    match Hashtbl.find_opt exit_tbl (pc, reason) with
    | Some l -> l
    | None ->
      let l = Asm.new_label asm in
      Hashtbl.add exit_tbl (pc, reason) l;
      exit_order := ((pc, reason), l) :: !exit_order;
      l
  in
  let exit_now pc reason =
    Asm.mov_eax_imm asm ((pc lsl 4) lor reason);
    Asm.ret asm
  in
  let store_dst (i : Lir.inst) r =
    if i.Lir.dst >= 0 then Asm.mov_slot_r asm i.Lir.dst r
  in
  (* gpr <- slot; exit unless the bits are a number.  Leaves the tag
     boundary in r11 for follow-up operand checks. *)
  let load_number slot gpr fail =
    Asm.mov_r_slot asm gpr slot;
    Asm.movabs asm Asm.r11 Nanbox.bits_min_tag;
    Asm.cmp_rr asm gpr Asm.r11;
    Asm.jcc asm Asm.cc_ae fail
  in
  let check_number gpr fail =
    (* r11 still holds the boundary *)
    Asm.cmp_rr asm gpr Asm.r11;
    Asm.jcc asm Asm.cc_ae fail
  in
  (* dst64 <- exactly-representable int32 of the double whose bits are in
     [src]; branches to [fail] when the value does not round-trip or
     overflows int32 (clobbers xmm0, xmm1, r11). *)
  let to_int32_exact ~src ~dst fail =
    Asm.movq_x_r asm Asm.xmm0 src;
    Asm.cvttsd2si asm dst Asm.xmm0;
    Asm.cvtsi2sd asm Asm.xmm1 dst;
    Asm.ucomisd asm Asm.xmm1 Asm.xmm0;
    Asm.jcc asm Asm.cc_p fail;
    Asm.jcc asm Asm.cc_ne fail;
    Asm.movsxd asm ~dst:Asm.r11 ~src:dst;
    Asm.cmp_rr asm Asm.r11 dst;
    Asm.jcc asm Asm.cc_ne fail
  in
  (* Boxed boolean from the flag byte in al. *)
  let box_bool (i : Lir.inst) =
    Asm.movzx_eax_al asm;
    Asm.movabs asm Asm.rcx Nanbox.bits_false;
    Asm.add_rr asm Asm.rax Asm.rcx;
    store_dst i Asm.rax
  in
  (* al <- truthiness of slot [a]; side-table refs (strings/objects/
     builtins) jump to [xl] for the host to decide. *)
  let truthiness a_slot xl =
    Asm.mov_r_slot asm Asm.rax a_slot;
    Asm.movabs asm Asm.r11 Nanbox.bits_min_tag;
    Asm.cmp_rr asm Asm.rax Asm.r11;
    let tagged_l = Asm.new_label asm in
    let truthy_l = Asm.new_label asm in
    let done_l = Asm.new_label asm in
    Asm.jcc asm Asm.cc_ae tagged_l;
    (* number: falsy iff +0, -0 or NaN — ucomisd vs 0 sets ZF for all *)
    Asm.movq_x_r asm Asm.xmm0 Asm.rax;
    Asm.xorpd asm Asm.xmm1 Asm.xmm1;
    Asm.ucomisd asm Asm.xmm0 Asm.xmm1;
    Asm.setcc asm Asm.cc_ne Asm.rax;
    Asm.jmp asm done_l;
    Asm.bind asm tagged_l;
    Asm.mov_rr asm ~dst:Asm.rcx ~src:Asm.rax;
    Asm.shr_r_imm asm Asm.rcx Nanbox.tag_shift;
    Asm.cmp_r32_imm asm Asm.rcx Nanbox.tag_side;
    Asm.jcc asm Asm.cc_e xl;
    Asm.cmp_r32_imm asm Asm.rcx Nanbox.tag_singleton;
    Asm.jcc asm Asm.cc_ne truthy_l;
    (* singleton: only [true] (payload 3) is truthy *)
    Asm.cmp_r32_imm asm Asm.rax 3;
    Asm.setcc asm Asm.cc_e Asm.rax;
    Asm.jmp asm done_l;
    Asm.bind asm truthy_l;
    (* arrays and functions are always truthy *)
    Asm.mov_r8_imm asm Asm.rax 1;
    Asm.bind asm done_l
  in
  Array.iteri
    (fun pc (i : Lir.inst) ->
      offsets.(pc) <- Asm.pos asm;
      Asm.bind asm pc_labels.(pc);
      match i.Lir.kind with
      | Lir.Kconst ->
        if i.Lir.dst >= 0 then begin
          Asm.movabs asm Asm.rax const_bits.(i.Lir.imm);
          store_dst i Asm.rax
        end
      | Lir.Kparam ->
        if i.Lir.dst >= 0 then begin
          if i.Lir.imm >= 0 && i.Lir.imm < f.Lir.arity then
            Asm.mov_r_slot asm Asm.rax (n_regs + i.Lir.imm)
          else Asm.movabs asm Asm.rax Nanbox.bits_undefined;
          store_dst i Asm.rax
        end
      | Lir.Kmove ->
        if i.Lir.dst >= 0 then begin
          Asm.mov_r_slot asm Asm.rax i.Lir.a;
          store_dst i Asm.rax
        end
      | Lir.Kunbox_number ->
        load_number i.Lir.a Asm.rax (exit_label pc reason_bailout);
        store_dst i Asm.rax
      | Lir.Kunbox_int32 ->
        let bail = exit_label pc reason_bailout in
        load_number i.Lir.a Asm.rax bail;
        (* the executor accepts integers with |n| <= 2^31 (inclusive);
           the round-trip handles -0.0 (exact) and NaN (unordered) *)
        Asm.movq_x_r asm Asm.xmm0 Asm.rax;
        Asm.cvttsd2si asm Asm.rcx Asm.xmm0;
        Asm.cvtsi2sd asm Asm.xmm1 Asm.rcx;
        Asm.ucomisd asm Asm.xmm1 Asm.xmm0;
        Asm.jcc asm Asm.cc_p bail;
        Asm.jcc asm Asm.cc_ne bail;
        Asm.movabs asm Asm.r11 2147483648L;
        Asm.cmp_rr asm Asm.rcx Asm.r11;
        Asm.jcc asm Asm.cc_g bail;
        Asm.movabs asm Asm.r11 (-2147483648L);
        Asm.cmp_rr asm Asm.rcx Asm.r11;
        Asm.jcc asm Asm.cc_l bail;
        store_dst i Asm.rax
      | Lir.Kguard_array ->
        let bail = exit_label pc reason_bailout in
        Asm.mov_r_slot asm Asm.rax i.Lir.a;
        Asm.mov_rr asm ~dst:Asm.rcx ~src:Asm.rax;
        Asm.shr_r_imm asm Asm.rcx Nanbox.tag_shift;
        Asm.cmp_r32_imm asm Asm.rcx Nanbox.tag_array;
        Asm.jcc asm Asm.cc_ne bail;
        store_dst i Asm.rax
      | Lir.Kbounds_check ->
        (* numbers-only fast path; anything else needs raw_number, so the
           host handles it (and formats the bailout message if it fails).
           Executor semantics: fail iff idx < 0 || idx >= len — a NaN
           index or length makes both comparisons false, i.e. passes. *)
        let bail = exit_label pc reason_bailout in
        let host = exit_label pc reason_hostop in
        load_number i.Lir.a Asm.rax host;
        Asm.mov_r_slot asm Asm.rdx i.Lir.b;
        check_number Asm.rdx host;
        Asm.movq_x_r asm Asm.xmm0 Asm.rax;
        Asm.xorpd asm Asm.xmm1 Asm.xmm1;
        Asm.ucomisd asm Asm.xmm0 Asm.xmm1;
        let not_neg = Asm.new_label asm in
        Asm.jcc asm Asm.cc_p not_neg;
        Asm.jcc asm Asm.cc_b bail;
        Asm.bind asm not_neg;
        Asm.movq_x_r asm Asm.xmm1 Asm.rdx;
        Asm.ucomisd asm Asm.xmm0 Asm.xmm1;
        Asm.jcc asm Asm.cc_ae bail;
        store_dst i Asm.rax
      | Lir.Kadd ->
        (* generic JS +: only the number+number case stays native *)
        let host = exit_label pc reason_hostop in
        load_number i.Lir.a Asm.rax host;
        Asm.mov_r_slot asm Asm.rdx i.Lir.b;
        check_number Asm.rdx host;
        Asm.movq_x_r asm Asm.xmm0 Asm.rax;
        Asm.movq_x_r asm Asm.xmm1 Asm.rdx;
        Asm.addsd asm Asm.xmm0 Asm.xmm1;
        Asm.movq_r_x asm Asm.rax Asm.xmm0;
        store_dst i Asm.rax
      | Lir.Kbin op -> (
        match op with
        | Mir.NSub | Mir.NMul | Mir.NDiv ->
          let host = exit_label pc reason_hostop in
          load_number i.Lir.a Asm.rax host;
          Asm.mov_r_slot asm Asm.rdx i.Lir.b;
          check_number Asm.rdx host;
          Asm.movq_x_r asm Asm.xmm0 Asm.rax;
          Asm.movq_x_r asm Asm.xmm1 Asm.rdx;
          (match op with
          | Mir.NSub -> Asm.subsd asm Asm.xmm0 Asm.xmm1
          | Mir.NMul -> Asm.mulsd asm Asm.xmm0 Asm.xmm1
          | _ -> Asm.divsd asm Asm.xmm0 Asm.xmm1);
          Asm.movq_r_x asm Asm.rax Asm.xmm0;
          store_dst i Asm.rax
        | Mir.NMod ->
          (* fmod semantics differ from hardware remainders; host op *)
          exit_now pc reason_hostop
        | Mir.NBit_and | Mir.NBit_or | Mir.NBit_xor | Mir.NShl | Mir.NShr
        | Mir.NUshr ->
          (* int32 fast path only when both operands are exactly
             representable int32s; to_int32's modular wrap for large or
             fractional doubles is the host's job *)
          let host = exit_label pc reason_hostop in
          load_number i.Lir.a Asm.rax host;
          Asm.mov_r_slot asm Asm.rdx i.Lir.b;
          check_number Asm.rdx host;
          to_int32_exact ~src:Asm.rax ~dst:Asm.r8 host;
          to_int32_exact ~src:Asm.rdx ~dst:Asm.rcx host;
          (match op with
          | Mir.NBit_and -> Asm.and_rr32 asm Asm.r8 Asm.rcx
          | Mir.NBit_or -> Asm.or_rr32 asm Asm.r8 Asm.rcx
          | Mir.NBit_xor -> Asm.xor_rr32 asm Asm.r8 Asm.rcx
          | Mir.NShl -> Asm.shl_cl32 asm Asm.r8
          | Mir.NShr -> Asm.sar_cl32 asm Asm.r8  (* JS >> is arithmetic *)
          | _ -> Asm.shr_cl32 asm Asm.r8);
          (* 32-bit shifts mask the count to 5 bits in hardware, exactly
             JS's [count land 31] *)
          (match op with
          | Mir.NUshr ->
            (* the 32-bit result zero-extends: already an exact uint32 *)
            Asm.cvtsi2sd asm Asm.xmm0 Asm.r8
          | _ ->
            Asm.movsxd asm ~dst:Asm.rax ~src:Asm.r8;
            Asm.cvtsi2sd asm Asm.xmm0 Asm.rax);
          Asm.movq_r_x asm Asm.rax Asm.xmm0;
          store_dst i Asm.rax)
      | Lir.Kcompare cop ->
        let host = exit_label pc reason_hostop in
        load_number i.Lir.a Asm.rax host;
        Asm.mov_r_slot asm Asm.rdx i.Lir.b;
        check_number Asm.rdx host;
        Asm.movq_x_r asm Asm.xmm0 Asm.rax;
        Asm.movq_x_r asm Asm.xmm1 Asm.rdx;
        (* ucomisd only sets CF/ZF usefully for >/>=; flip operands for
           </<=.  NaN (unordered: ZF=PF=CF=1) must compare false except
           for != — hence the parity fixups on equality. *)
        (match cop with
        | Mir.CLt ->
          Asm.ucomisd asm Asm.xmm1 Asm.xmm0;
          Asm.setcc asm Asm.cc_a Asm.rax
        | Mir.CLe ->
          Asm.ucomisd asm Asm.xmm1 Asm.xmm0;
          Asm.setcc asm Asm.cc_ae Asm.rax
        | Mir.CGt ->
          Asm.ucomisd asm Asm.xmm0 Asm.xmm1;
          Asm.setcc asm Asm.cc_a Asm.rax
        | Mir.CGe ->
          Asm.ucomisd asm Asm.xmm0 Asm.xmm1;
          Asm.setcc asm Asm.cc_ae Asm.rax
        | Mir.CEq | Mir.CStrict_eq ->
          Asm.ucomisd asm Asm.xmm0 Asm.xmm1;
          Asm.setcc asm Asm.cc_e Asm.rax;
          Asm.setcc asm Asm.cc_np Asm.rcx;
          Asm.and_r8 asm Asm.rax Asm.rcx
        | Mir.CNeq | Mir.CStrict_neq ->
          Asm.ucomisd asm Asm.xmm0 Asm.xmm1;
          Asm.setcc asm Asm.cc_ne Asm.rax;
          Asm.setcc asm Asm.cc_p Asm.rcx;
          Asm.or_r8 asm Asm.rax Asm.rcx);
        box_bool i
      | Lir.Knegate ->
        let host = exit_label pc reason_hostop in
        load_number i.Lir.a Asm.rax host;
        (* IEEE negation flips the sign bit, NaNs included *)
        Asm.movabs asm Asm.rcx Int64.min_int;
        Asm.xor_rr asm Asm.rax Asm.rcx;
        store_dst i Asm.rax
      | Lir.Knot ->
        let host = exit_label pc reason_hostop in
        truthiness i.Lir.a host;
        Asm.xor_al_imm asm 1;
        box_bool i
      | Lir.Ktest ->
        let xl = exit_label pc reason_test in
        truthiness i.Lir.a xl;
        Asm.test_al_al asm;
        Asm.jcc asm Asm.cc_ne pc_labels.(i.Lir.imm);
        Asm.jmp asm pc_labels.(i.Lir.b)
      | Lir.Kgoto -> Asm.jmp asm pc_labels.(i.Lir.imm)
      | Lir.Kreturn -> exit_now pc reason_return
      | Lir.Kbitnot | Lir.Ktypeof | Lir.Ktonumber | Lir.Knew_array
      | Lir.Knew_object | Lir.Kelements | Lir.Kinit_length
      | Lir.Kload_element | Lir.Kstore_element | Lir.Karray_length
      | Lir.Kset_array_length | Lir.Karray_push | Lir.Karray_pop
      | Lir.Kget_prop | Lir.Kset_prop | Lir.Kget_index_gen
      | Lir.Kset_index_gen | Lir.Kload_global | Lir.Kstore_global
      | Lir.Kdeclare_global | Lir.Kcall | Lir.Kcall_method ->
        exit_now pc reason_hostop)
    insts;
  List.iter
    (fun ((pc, reason), l) ->
      Asm.bind asm l;
      exit_now pc reason)
    (List.rev !exit_order);
  let region = Exec_mem.install (Asm.finalize asm) in
  {
    func = f;
    region;
    offsets;
    n_slots;
    const_preload = Array.of_list (List.rev !preload);
    counters = { c_return = 0; c_hostop = 0; c_bailout = 0; c_test = 0 };
    prof_slot =
      Profile.register_page ~addr:region.Exec_mem.addr
        ~size:region.Exec_mem.code_size
        ("native;" ^ f.Lir.name);
    pool = [];
    active = 0;
    dead = false;
  }

(* ---- activation pool & code-page lifecycle ---- *)

let acquire code =
  code.active <- code.active + 1;
  match code.pool with
  | act :: rest ->
    code.pool <- rest;
    Nanbox.side_reset act.side ~preload:(Array.length code.const_preload);
    act
  | [] ->
    let side = Nanbox.side_create () in
    Array.iter (fun v -> ignore (Nanbox.side_push side v)) code.const_preload;
    { regs = Exec_mem.make_regfile code.n_slots; side }

(* Unmap the page.  Drop the profiler slot FIRST so a tick can never
   land in an address range that is being recycled under a new name. *)
let unmap code =
  Profile.drop_page code.prof_slot;
  Exec_mem.release code.region

let release_activation code act =
  code.pool <- act :: code.pool;
  code.active <- code.active - 1;
  if code.dead && code.active = 0 then unmap code

(* Mark dead; the unmap is deferred until recursive activations drain so
   we never pull an executing page.  Idempotent. *)
let release code =
  code.dead <- true;
  if code.active = 0 then unmap code

(* ---- exit-to-host operations ---- *)

let bailout fmt = Format.kasprintf (fun s -> raise (Lir.Bailout s)) fmt

(* Guard-failure exits: decode the offending register and raise with the
   message the executor would have produced. *)
let host_bailout (realm : Realm.t) act (i : Lir.inst) =
  let get r = Nanbox.decode act.side (Bigarray.Array1.get act.regs r) in
  match i.Lir.kind with
  | Lir.Kunbox_number -> bailout "unbox_number: %s" (Value.type_name (get i.Lir.a))
  | Lir.Kunbox_int32 -> bailout "unbox_int32: %s" (Value.to_display (get i.Lir.a))
  | Lir.Kguard_array -> bailout "guard_array: %s" (Value.type_name (get i.Lir.a))
  | Lir.Kbounds_check ->
    let idx = Executor.raw_number realm (get i.Lir.a) in
    let len = Executor.raw_number realm (get i.Lir.b) in
    bailout "bounds_check: %g >= %g" idx len
  | k -> bailout "native guard: %s" (Lir.kind_name k)

(* One host-performed LIR instruction, mirroring the executor case for
   case — including the unchecked element accesses and raw_number
   reinterpretation that model the vulnerable configurations. *)
let host_op code act (realm : Realm.t) (cb : Executor.callbacks) pc =
  let f = code.func in
  let i = f.Lir.code.(pc) in
  let heap = realm.Realm.heap in
  let get r = Nanbox.decode act.side (Bigarray.Array1.get act.regs r) in
  let set d v =
    if d >= 0 then Bigarray.Array1.set act.regs d (Nanbox.encode act.side v)
  in
  let raw v = Executor.raw_number realm v in
  match i.Lir.kind with
  | Lir.Kbounds_check ->
    let idx = raw (get i.Lir.a) in
    let len = raw (get i.Lir.b) in
    if idx < 0.0 || idx >= len then bailout "bounds_check: %g >= %g" idx len
    else set i.Lir.dst (get i.Lir.a)
  | Lir.Kadd -> set i.Lir.dst (Value_ops.binary Ast.Add (get i.Lir.a) (get i.Lir.b))
  | Lir.Kbin nop ->
    let x = raw (get i.Lir.a) in
    let y = raw (get i.Lir.b) in
    set i.Lir.dst
      (Value_ops.binary (Executor.ast_of_num_binop nop) (Value.Number x)
         (Value.Number y))
  | Lir.Kcompare cop ->
    set i.Lir.dst
      (Value_ops.binary (Executor.ast_of_compare cop) (get i.Lir.a) (get i.Lir.b))
  | Lir.Knegate -> set i.Lir.dst (Value.Number (-.raw (get i.Lir.a)))
  | Lir.Kbitnot ->
    set i.Lir.dst (Value_ops.unary Ast.Bit_not (Value.Number (raw (get i.Lir.a))))
  | Lir.Knot -> set i.Lir.dst (Value.Bool (not (Value_ops.to_boolean (get i.Lir.a))))
  | Lir.Ktypeof -> set i.Lir.dst (Value.String (Value.type_name (get i.Lir.a)))
  | Lir.Ktonumber -> set i.Lir.dst (Value.Number (Value_ops.to_number (get i.Lir.a)))
  | Lir.Knew_array -> set i.Lir.dst (Value.Array (Heap.alloc_array heap ~length:i.Lir.imm))
  | Lir.Knew_object -> set i.Lir.dst (Value.Object (Hashtbl.create 8))
  | Lir.Kelements -> (
    match get i.Lir.a with
    | Value.Array h -> set i.Lir.dst (Value.Array h)
    | v -> set i.Lir.dst (Value.Array (int_of_float (raw v))))
  | Lir.Kinit_length -> (
    match get i.Lir.a with
    | Value.Array h -> set i.Lir.dst (Value.Number (float_of_int (Heap.length heap h)))
    | v -> bailout "init_length: %s" (Value.type_name v))
  | Lir.Kload_element -> (
    match get i.Lir.a with
    | Value.Array h ->
      let idx = int_of_float (raw (get i.Lir.b)) in
      set i.Lir.dst (Heap.get_unchecked heap h idx)
    | v -> bailout "load_element: %s" (Value.type_name v))
  | Lir.Kstore_element -> (
    match get i.Lir.a with
    | Value.Array h ->
      let idx = int_of_float (raw (get i.Lir.b)) in
      Heap.set_unchecked heap h idx (get i.Lir.c)
    | v -> bailout "store_element: %s" (Value.type_name v))
  | Lir.Karray_length -> (
    match get i.Lir.a with
    | Value.Array h -> set i.Lir.dst (Value.Number (float_of_int (Heap.length heap h)))
    | v -> bailout "array_length: %s" (Value.type_name v))
  | Lir.Kset_array_length -> (
    match get i.Lir.a with
    | Value.Array h -> Heap.set_length heap h (int_of_float (raw (get i.Lir.b)))
    | v -> bailout "set_array_length: %s" (Value.type_name v))
  | Lir.Karray_push -> (
    match get i.Lir.a with
    | Value.Array h ->
      Heap.push heap h (get i.Lir.b);
      set i.Lir.dst (Value.Number (float_of_int (Heap.length heap h)))
    | v -> bailout "array_push: %s" (Value.type_name v))
  | Lir.Karray_pop -> (
    match get i.Lir.a with
    | Value.Array h -> set i.Lir.dst (Heap.pop heap h)
    | v -> bailout "array_pop: %s" (Value.type_name v))
  | Lir.Kget_prop ->
    set i.Lir.dst (Builtins.get_member realm (get i.Lir.a) f.Lir.names.(i.Lir.imm))
  | Lir.Kset_prop ->
    Builtins.set_member realm (get i.Lir.a) f.Lir.names.(i.Lir.imm) (get i.Lir.b)
  | Lir.Kget_index_gen -> (
    let recv = get i.Lir.a in
    let idx = get i.Lir.b in
    match (recv, Value_ops.to_index idx) with
    | Value.Array h, Some k -> set i.Lir.dst (Heap.get heap h k)
    | Value.Object tbl, _ ->
      set i.Lir.dst
        (match Hashtbl.find_opt tbl (Value_ops.to_string idx) with
        | Some v -> v
        | None -> Value.Undefined)
    | Value.String s, Some k ->
      set i.Lir.dst
        (if k < String.length s then Value.String (String.make 1 s.[k])
         else Value.Undefined)
    | Value.Array _, None -> set i.Lir.dst Value.Undefined
    | v, _ -> Errors.type_error "cannot index %s" (Value.type_name v))
  | Lir.Kset_index_gen -> (
    let recv = get i.Lir.a in
    let idx = get i.Lir.b in
    let v = get i.Lir.c in
    match (recv, Value_ops.to_index idx) with
    | Value.Array h, Some k -> Heap.set heap h k v
    | Value.Object tbl, _ -> Hashtbl.replace tbl (Value_ops.to_string idx) v
    | Value.Array _, None ->
      Errors.type_error "invalid array index %s" (Value.to_display idx)
    | recv, _ -> Errors.type_error "cannot index %s" (Value.type_name recv))
  | Lir.Kload_global -> set i.Lir.dst (cb.Executor.lookup_global f.Lir.names.(i.Lir.imm))
  | Lir.Kstore_global -> cb.Executor.store_global f.Lir.names.(i.Lir.imm) (get i.Lir.a)
  | Lir.Kdeclare_global -> cb.Executor.declare_global f.Lir.names.(i.Lir.imm)
  | Lir.Kcall -> (
    let callee = get i.Lir.a in
    let vargs =
      Array.fold_right (fun r acc -> get r :: acc) f.Lir.call_args.(i.Lir.imm) []
    in
    match callee with
    | Value.Function idx -> set i.Lir.dst (cb.Executor.call_function idx vargs)
    | Value.Builtin name -> set i.Lir.dst (Builtins.call_builtin realm name vargs)
    | v -> Errors.type_error "%s is not a function" (Value.type_name v))
  | Lir.Kcall_method -> (
    let recv = get i.Lir.a in
    let name = f.Lir.names.(i.Lir.imm2) in
    let vargs =
      Array.fold_right (fun r acc -> get r :: acc) f.Lir.call_args.(i.Lir.imm) []
    in
    match Builtins.call_method realm recv name vargs with
    | `Value v -> set i.Lir.dst v
    | `User_function (idx, vargs) -> set i.Lir.dst (cb.Executor.call_function idx vargs))
  | Lir.Kconst | Lir.Kparam | Lir.Kmove | Lir.Kunbox_number | Lir.Kunbox_int32
  | Lir.Kguard_array | Lir.Kgoto | Lir.Ktest | Lir.Kreturn ->
    (* never exit with a hostop reason *)
    assert false

(* ---- entry ---- *)

let run code (realm : Realm.t) (cb : Executor.callbacks) (args : Value.t list) :
    Value.t =
  let f = code.func in
  let act = acquire code in
  Fun.protect
    ~finally:(fun () -> release_activation code act)
    (fun () ->
      let regs = act.regs in
      Bigarray.Array1.fill regs Nanbox.bits_undefined;
      let n_regs = max f.Lir.n_regs 1 in
      List.iteri
        (fun k v ->
          if k < f.Lir.arity then
            Bigarray.Array1.set regs (n_regs + k) (Nanbox.encode act.side v))
        args;
      let c = code.counters in
      let rec loop off =
        let packed = Exec_mem.call code.region off regs in
        let pc = packed lsr 4 in
        let reason = packed land 0xF in
        if reason = reason_return then begin
          c.c_return <- c.c_return + 1;
          let i = f.Lir.code.(pc) in
          if i.Lir.a >= 0 then
            Nanbox.decode act.side (Bigarray.Array1.get regs i.Lir.a)
          else Value.Undefined
        end
        else if reason = reason_hostop then begin
          c.c_hostop <- c.c_hostop + 1;
          Profile.with_tag prof_host (fun () -> host_op code act realm cb pc);
          loop code.offsets.(pc + 1)
        end
        else if reason = reason_test then begin
          c.c_test <- c.c_test + 1;
          let i = f.Lir.code.(pc) in
          let truthy =
            Value_ops.to_boolean
              (Nanbox.decode act.side (Bigarray.Array1.get regs i.Lir.a))
          in
          loop code.offsets.(if truthy then i.Lir.imm else i.Lir.b)
        end
        else begin
          c.c_bailout <- c.c_bailout + 1;
          host_bailout realm act f.Lir.code.(pc)
        end
      in
      loop code.offsets.(0))
