(** The native Ion tier: lowers allocated LIR to x86-64 machine code in
    W^X executable memory and runs it over an unboxed NaN-boxed register
    file, exiting to the host for runtime operations and deopts.

    Differential contract: for every LIR function and every argument
    list, {!run} returns the same value, raises the same
    {!Jitbull_lir.Lir.Bailout} message, or raises the same runtime error
    as {!Jitbull_lir.Executor.run} — including under vulnerable go/no-go
    configurations where removed guards expose type-confusion semantics.
    The fuzzer's tier-agreement oracle holds the backend to this. *)

module Value = Jitbull_runtime.Value
module Realm = Jitbull_runtime.Realm
module Lir = Jitbull_lir.Lir
module Executor = Jitbull_lir.Executor

(** x86-64 POSIX host? *)
val available : unit -> bool

(** [available] and not forced off via [JITBULL_NO_NATIVE]. *)
val enabled : unit -> bool

type code

(** Lower a LIR function and install it into fresh RX memory.  Call only
    after the go/no-go verdict admits the compile: a Forbid must never
    reach this point (tests assert no page is ever mapped for a
    forbidden function). *)
val compile : Lir.func -> code

(** Execute.  Raises {!Lir.Bailout} with an executor-identical message
    on failed guards. *)
val run :
  code -> Realm.t -> Executor.callbacks -> Value.t list -> Value.t

(** Unmap the code pages (deferred while recursive activations are still
    on the stack).  Idempotent. *)
val release : code -> unit

val code_size : code -> int
val region : code -> Exec_mem.region

type exit_totals = {
  t_return : int;
  t_hostop : int;
  t_bailout : int;
  t_test : int;
}

(** Cumulative exit counts since compile — the engine flushes deltas to
    observability. *)
val exits : code -> exit_totals
