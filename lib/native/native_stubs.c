/* C side of the native Ion tier: executable-memory management and the
 * single call gate into generated code.
 *
 * W^X discipline lives here: pages are mapped RW (never executable),
 * filled from an OCaml buffer, then flipped to RX with mprotect.  There
 * is no code path that yields a writable+executable mapping.
 *
 * Generated code follows a minimal contract: it receives the register
 * file pointer in %rdi (SysV first argument), clobbers only caller-saved
 * registers, touches no stack beyond its own return address, and returns
 * a packed (lir_pc << 4) | reason exit code in %rax.  That makes the
 * call gate a plain C function-pointer call.
 */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <caml/bigarray.h>
#include <stdint.h>
#include <string.h>

#if defined(__x86_64__) && !defined(_WIN32)
#define JB_NATIVE 1
#include <sys/mman.h>
#include <unistd.h>
#endif

CAMLprim value jb_native_available(value unit)
{
  (void)unit;
#ifdef JB_NATIVE
  return Val_true;
#else
  return Val_false;
#endif
}

CAMLprim value jb_page_size(value unit)
{
  (void)unit;
#ifdef JB_NATIVE
  return Val_long(sysconf(_SC_PAGESIZE));
#else
  return Val_long(4096);
#endif
}

/* Map [size] bytes anonymous RW.  Returns the address, or 0 on failure. */
CAMLprim value jb_map_rw(value size)
{
#ifdef JB_NATIVE
  void *p = mmap(NULL, Long_val(size), PROT_READ | PROT_WRITE,
                 MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (p == MAP_FAILED) return caml_copy_nativeint(0);
  return caml_copy_nativeint((intnat)p);
#else
  (void)size;
  return caml_copy_nativeint(0);
#endif
}

/* Copy [len] bytes of emitted code into a still-RW mapping. */
CAMLprim value jb_fill(value addr, value code, value len)
{
#ifdef JB_NATIVE
  memcpy((void *)Nativeint_val(addr), Bytes_val(code), Long_val(len));
#else
  (void)addr; (void)code; (void)len;
#endif
  return Val_unit;
}

/* Flip a filled mapping to RX.  Never PROT_WRITE|PROT_EXEC. */
CAMLprim value jb_protect_rx(value addr, value size)
{
#ifdef JB_NATIVE
  return Val_bool(mprotect((void *)Nativeint_val(addr), Long_val(size),
                           PROT_READ | PROT_EXEC) == 0);
#else
  (void)addr; (void)size;
  return Val_false;
#endif
}

CAMLprim value jb_unmap(value addr, value size)
{
#ifdef JB_NATIVE
  munmap((void *)Nativeint_val(addr), Long_val(size));
#else
  (void)addr; (void)size;
#endif
  return Val_unit;
}

/* Enter generated code at [base + off] with the register file as the
 * sole argument.  The packed exit code fits comfortably in an OCaml
 * immediate (pc is bounded by the LIR length). */
CAMLprim value jb_native_call(value base, value off, value regs)
{
#ifdef JB_NATIVE
  int64_t (*fn)(int64_t *) =
      (int64_t (*)(int64_t *))((char *)Nativeint_val(base) + Long_val(off));
  return Val_long(fn((int64_t *)Caml_ba_data_val(regs)));
#else
  (void)base; (void)off; (void)regs;
  return Val_long(-1);
#endif
}
